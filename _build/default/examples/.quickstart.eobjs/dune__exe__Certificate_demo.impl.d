examples/certificate_demo.ml: Array Core Delay Format Linalg List Protocol Simulate String Topology
