examples/certificate_demo.mli:
