examples/custom_topology.ml: Analysis Bounds Core Delay Format List Protocol Search Simulate String Topology
