examples/fault_tolerance.ml: Core Delay Format List Option Printf Protocol Simulate Topology Util
