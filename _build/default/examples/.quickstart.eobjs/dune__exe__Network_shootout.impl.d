examples/network_shootout.ml: Bounds Core List Printf Protocol Simulate Topology Util
