examples/network_shootout.mli:
