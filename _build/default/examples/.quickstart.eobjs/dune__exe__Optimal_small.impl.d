examples/optimal_small.ml: Core Format List Protocol Search Topology Util
