examples/optimal_small.mli:
