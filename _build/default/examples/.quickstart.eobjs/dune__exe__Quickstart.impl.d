examples/quickstart.ml: Analysis Core Format Protocol Simulate Topology
