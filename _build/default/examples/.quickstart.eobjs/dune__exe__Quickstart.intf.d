examples/quickstart.mli:
