examples/systolic_tradeoff.ml: Bounds Core Format List Protocol Search Simulate Topology Util
