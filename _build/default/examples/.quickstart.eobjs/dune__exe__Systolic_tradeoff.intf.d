examples/systolic_tradeoff.mli:
