(* Certificate demo: bring your own protocol, get a provable lower bound.

   This walks the full delay-digraph pipeline of Section 4 on a hand-
   written systolic protocol for a 4x4 torus, printing the intermediate
   objects the paper draws in Figs. 1-3:

     protocol -> delay digraph -> local matrices Mx(λ) -> ‖M(λ)‖
              -> Theorem 4.1 certificate.

   Run with:  dune exec examples/certificate_demo.exe *)

open Core
module Digraph = Topology.Digraph
module Dense = Linalg.Dense

let () =
  let g = Topology.Families.torus 4 4 in
  Format.printf "Network: %a@." Digraph.pp g;

  (* A hand-written period-4 half-duplex protocol: items flow rightward
     and downward along the wrap-around rings, alternating the even and
     odd perfect matchings of each direction.  One-way flow is enough for
     gossip because the torus rings wrap. *)
  let idx r c = (r * 4) + c in
  let horizontal parity =
    List.concat_map
      (fun r ->
        List.map (fun c -> (idx r c, idx r ((c + 1) mod 4))) [ parity; parity + 2 ])
      [ 0; 1; 2; 3 ]
  in
  let vertical parity =
    List.concat_map
      (fun c ->
        List.map (fun r -> (idx r c, idx ((r + 1) mod 4) c)) [ parity; parity + 2 ])
      [ 0; 1; 2; 3 ]
  in
  let protocol =
    Protocol.Systolic.make g Protocol.Protocol.Half_duplex
      [ horizontal 0; vertical 0; horizontal 1; vertical 1 ]
  in
  Format.printf "Hand-written 4-systolic protocol:@\n%a@."
    Protocol.Systolic.pp protocol;

  (* Execute. *)
  let gossip_time =
    match Simulate.Engine.gossip_time protocol with
    | Some t ->
        Format.printf "Measured gossip time: %d rounds@." t;
        t
    | None -> failwith "protocol does not gossip"
  in

  (* Delay digraph (Definition 3.3). *)
  let dg = Delay.Delay_digraph.of_systolic protocol ~length:gossip_time in
  Format.printf "Delay digraph: %d activations, %d delay arcs@."
    (Delay.Delay_digraph.n_activations dg)
    (Delay.Delay_digraph.n_delay_arcs dg);

  (* The local pattern at vertex 0 and its matrices (Figs. 1-3). *)
  let pattern_raw = Protocol.Systolic.active_pattern protocol 0 in
  Format.printf "Vertex 0 round pattern: %s@."
    (String.concat ""
       (List.map
          (function `L -> "L" | `R -> "R" | `Both -> "B" | `Idle -> ".")
          (Array.to_list pattern_raw)));
  (match Delay.Local_matrix.of_activation_pattern pattern_raw with
  | Some pat ->
      let lambda = 0.6 in
      Format.printf "Block sizes: l = %s, r = %s (k = %d, s = %d)@."
        (String.concat ";"
           (Array.to_list (Array.map string_of_int (Delay.Local_matrix.l pat))))
        (String.concat ";"
           (Array.to_list (Array.map string_of_int (Delay.Local_matrix.r pat))))
        (Delay.Local_matrix.blocks pat)
        (Delay.Local_matrix.period pat);
      Format.printf "Mx(0.6) over h = 4 repetitions (Fig. 1):@\n%a@."
        Dense.pp
        (Delay.Local_matrix.mx pat ~h:4 ~lambda);
      Format.printf "Nx(0.6) (Fig. 3):@\n%a@." Dense.pp
        (Delay.Local_matrix.nx pat ~h:4 ~lambda);
      Format.printf "Ox(0.6) (Fig. 3):@\n%a@." Dense.pp
        (Delay.Local_matrix.ox pat ~h:4 ~lambda)
  | None -> Format.printf "vertex 0 idle or one-sided@.");

  (* Norm of the global delay matrix vs the closed form of Lemma 4.3. *)
  let lambda = 0.6 in
  let nu = Delay.Delay_matrix.norm dg lambda in
  let cf =
    Delay.Delay_matrix.closed_form_bound ~mode:Protocol.Protocol.Half_duplex
      ~window:4 lambda
  in
  Format.printf "‖M(%.1f)‖ = %.4f  <=  closed form %.4f (Lemma 4.3)@." lambda
    nu cf;

  (* Certificate. *)
  let cert =
    Delay.Certificate.certify dg ~mode:Protocol.Protocol.Half_duplex
  in
  Format.printf
    "Theorem 4.1 certificate: gossip needs >= %d rounds (measured %d)@."
    cert.Delay.Certificate.bound gossip_time
