(* Bring your own network: the downstream-user story end to end.

   Suppose you operate a small cluster with a bespoke interconnect — here,
   two 8-node rings bridged by four cross links — and want to know how
   fast periodic all-to-all exchange can possibly be, and how close a
   simple schedule gets.  Nothing below uses the built-in families: the
   network is built arc by arc.

   Run with:  dune exec examples/custom_topology.exe *)

open Core
module Digraph = Topology.Digraph

let my_cluster () =
  (* vertices 0..7: ring A; 8..15: ring B; bridges at 0-8, 2-10, 4-12,
     6-14 *)
  let ring base = List.init 8 (fun i -> (base + i, base + ((i + 1) mod 8))) in
  let bridges = [ (0, 8); (2, 10); (4, 12); (6, 14) ] in
  let edges = ring 0 @ ring 8 @ bridges in
  let arcs = List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) edges in
  Digraph.make ~name:"bridged-rings" 16 arcs

let () =
  let g = my_cluster () in
  Format.printf "Network: %a@." Digraph.pp g;
  Format.printf "diameter %d, degree parameter %d, strongly connected %b@.@."
    (Topology.Metrics.diameter g)
    (Digraph.degree_parameter g)
    (Digraph.is_strongly_connected g);

  (* What the theory says before writing any protocol. *)
  let report = Analysis.analyze_network g in
  Format.printf "%a@." Analysis.pp_network_report report;

  (* A first protocol: periodic edge-coloring schedule. *)
  let periodic = Protocol.Builders.edge_coloring_half_duplex g in
  let base = Simulate.Engine.gossip_time periodic in
  Format.printf "periodic coloring protocol (s = %d): gossip in %s rounds@."
    (Protocol.Systolic.period periodic)
    (match base with Some t -> string_of_int t | None -> "DNF");

  (* Let the optimizer look for something better at the same period. *)
  let improved_sys, improved = Search.Optimizer.improve periodic in
  Format.printf "after hill climbing: %s rounds@."
    (match improved with Some t -> string_of_int t | None -> "DNF");

  (* Certify the improved protocol — a bound no protocol with this
     period can beat on this network... for THIS protocol's schedule;
     the horizon-free variant stabilizes the expansion automatically. *)
  let cert = Delay.Certificate.certify_systolic ~refine:true improved_sys in
  Format.printf
    "Theorem 4.1 certificate for the improved protocol: >= %d rounds@."
    cert.Delay.Certificate.bound;

  (* Exact optimum is out of reach at n = 16 by exhaustive search, but
     the trivial bounds frame the answer. *)
  let oracle =
    Bounds.Oracle.lower_bounds g ~mode:Protocol.Protocol.Half_duplex
      ~s:(Some (Protocol.Systolic.period improved_sys))
  in
  Format.printf
    "sound bounds: diameter %d, doubling %d => any protocol needs >= %d rounds@."
    oracle.Bounds.Oracle.diameter oracle.Bounds.Oracle.doubling
    oracle.Bounds.Oracle.sound;

  (* Export for inspection. *)
  print_endline "\nGraphviz of the network (first lines):";
  let dot = Topology.Dot.of_digraph g in
  String.split_on_char '\n' dot
  |> List.filteri (fun i _ -> i < 5)
  |> List.iter print_endline;
  print_endline "..."
