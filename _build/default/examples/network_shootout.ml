(* Network shootout: which interconnection topology gossips fastest?

   The paper's motivation: hypercube-derived constant-degree networks
   (Butterfly, de Bruijn, Kautz) try to match the hypercube's O(log n)
   dissemination with bounded degree, and the lower-bound machinery
   quantifies exactly how close each can get.  This example lines up
   comparable-size instances of each family and reports, side by side:

     - the trivial bound (diameter),
     - the paper's non-systolic lower bound 1.4404·log n,
     - the family-refined non-systolic lower bound (Theorem 5.1),
     - the measured gossip time of a concrete periodic protocol.

   Run with:  dune exec examples/network_shootout.exe *)

open Core
module Table = Util.Table
module Families = Topology.Families
module Metrics = Topology.Metrics
module Digraph = Topology.Digraph

let contenders =
  [
    ("hypercube", Families.hypercube 7, 1.0);
    ("butterfly", Families.butterfly 2 5, 1.0);
    ("wrapped butterfly", Families.wrapped_butterfly 2 5, 1.9750);
    ("de Bruijn", Families.de_bruijn 2 7, 1.5876);
    ("Kautz", Families.kautz 2 7, 1.5876);
    ("torus", Families.torus 12 12, 1.0);
    ("complete", Families.complete 128, 1.0);
  ]
(* third column: the paper's refined non-systolic coefficient where one is
   known (Fig. 6); 1.0 marks "no refined bound, use the general one". *)

let () =
  let t =
    Table.make ~title:"Gossip shootout at comparable sizes (half-duplex)"
      [ "network"; "n"; "deg"; "diam"; "1.4404·log n"; "refined LB"; "measured" ]
  in
  List.iter
    (fun (name, g, refined_coeff) ->
      let n = Digraph.n_vertices g in
      let logn = Util.Numeric.log2 (float_of_int n) in
      let general = Bounds.General.e_inf *. logn in
      let refined =
        if refined_coeff > 1.0 then Printf.sprintf "%.1f" (refined_coeff *. logn)
        else "-"
      in
      let protocol =
        (* recursive doubling beats edge coloring on the hypercube and the
           complete graph; elsewhere use the generic periodic protocol *)
        if name = "hypercube" then
          Protocol.Builders.hypercube_sweep ~dim:7 ~full_duplex:false
        else if name = "complete" then
          Protocol.Builders.complete_doubling ~dim:7 ~full_duplex:false
        else Protocol.Builders.edge_coloring_half_duplex g
      in
      let measured =
        match Simulate.Engine.gossip_time protocol with
        | Some rounds -> string_of_int rounds
        | None -> "DNF"
      in
      Table.add_row t
        [
          name;
          string_of_int n;
          string_of_int (Digraph.degree_parameter g + 1);
          string_of_int (Metrics.diameter g);
          Printf.sprintf "%.1f" general;
          refined;
          measured;
        ])
    contenders;
  Table.print t;
  print_endline
    "The 'measured' column is a greedy periodic protocol (upper bound), so\n\
     measured >= refined LB >= 1.4404·log n must hold for every row; low-\n\
     degree networks pay a visible factor over the hypercube, exactly the\n\
     effect the paper's refined bounds quantify."
