(* Exact optima on small networks: the price of systolization, measured.

   Hromkovič et al. [8] asked how much must be paid for systolizing a
   gossip protocol, and proved that on paths the half-duplex systolic
   gossip complexity is strictly higher than the unrestricted one.  On
   networks small enough for exhaustive search we can watch that happen:
   this example computes, for each network, the exact unrestricted gossip
   number and the exact best s-systolic gossip time for each period s.

   Run with:  dune exec examples/optimal_small.exe *)

open Core
module Table = Util.Table
module SO = Search.Systolic_optimal

let networks =
  [
    ("path P4", Topology.Families.path 4, Protocol.Protocol.Half_duplex);
    ("path P5", Topology.Families.path 5, Protocol.Protocol.Half_duplex);
    ("cycle C4", Topology.Families.cycle 4, Protocol.Protocol.Half_duplex);
    ("cycle C6", Topology.Families.cycle 6, Protocol.Protocol.Half_duplex);
    ("star S5", Topology.Families.star 5, Protocol.Protocol.Half_duplex);
    ("K4 full-duplex", Topology.Families.complete 4, Protocol.Protocol.Full_duplex);
  ]

let () =
  let t =
    Table.make ~title:"Exact gossip optima (exhaustive search, half-duplex unless noted)"
      [ "network"; "unrestricted"; "s=2"; "s=3"; "s=4"; "s=5" ]
  in
  List.iter
    (fun (name, g, mode) ->
      let systolic, unrestricted = SO.price_of_systolization ~s_max:5 g mode in
      let cell s =
        match List.assoc s systolic with
        | SO.Found r -> string_of_int r.SO.rounds
        | SO.Infeasible -> "impossible"
        | SO.Too_large -> "-"
      in
      Table.add_row t
        (name
        :: (match unrestricted with Some v -> string_of_int v | None -> "?")
        :: List.map cell [ 2; 3; 4; 5 ]))
    networks;
  Table.print t;
  print_endline
    "Highlights:\n\
    \  - P4/P5: no 2- or 3-systolic protocol can gossip at all (the period\n\
    \    cannot orient all three path edges both ways), and on P5 the best\n\
    \    4-systolic protocol needs 8 rounds against the unrestricted 6 —\n\
    \    the strict systolization gap of [8], exhibited by exhaustive search.\n\
    \  - cycles admit 2-systolic gossip (a directed cycle) but pay n-1+\n\
    \    rounds, the Section 4 remark of the paper.";
  (* show one witness period *)
  match SO.systolic_gossip_number (Topology.Families.path 5)
          Protocol.Protocol.Half_duplex ~s:5 with
  | SO.Found r ->
      let sys =
        Protocol.Systolic.make (Topology.Families.path 5)
          Protocol.Protocol.Half_duplex r.SO.period
      in
      Format.printf "@.An optimal 5-systolic period for P5 (%d rounds):@.%a@."
        r.SO.rounds Protocol.Systolic.pp sys
  | _ -> ()
