(* Quickstart: build a network, run a systolic gossip protocol on it,
   and compare the measured gossip time against the paper's lower bounds.

   Run with:  dune exec examples/quickstart.exe *)

open Core

let () =
  (* 1. Build a network: the binary de Bruijn graph DB(2,5), 32 nodes. *)
  let g = Topology.Families.de_bruijn 2 5 in
  Format.printf "Network: %a@." Topology.Digraph.pp g;

  (* 2. Ask the closed-form theory what any systolic protocol must pay. *)
  let report = Analysis.analyze_network g in
  Format.printf "%a@." Analysis.pp_network_report report;

  (* 3. Build a concrete systolic protocol: Liestman-Richards periodic
     gossiping from a greedy edge coloring, half-duplex. *)
  let protocol = Protocol.Builders.edge_coloring_half_duplex g in
  Format.printf "Protocol period s = %d rounds@."
    (Protocol.Systolic.period protocol);

  (* 4. Execute it in the whispering model. *)
  (match Simulate.Engine.gossip_time protocol with
  | Some t -> Format.printf "Measured gossip time: %d rounds@." t
  | None -> Format.printf "Protocol did not complete gossip!@.");

  (* 5. Certify a lower bound for this very protocol from its delay
     matrix (Theorem 4.1, finite-n form). *)
  let cert_report = Analysis.certify_protocol protocol in
  Format.printf "%a@." Analysis.pp_protocol_report cert_report
