(* The price of systolization: how does the achievable gossip time vary
   with the period s?

   The paper's headline table (Fig. 4) says the lower bound coefficient
   e(s) falls from 2.8808 at s = 3 toward 1.4404 as s grows: very short
   periods provably cost real time.  This example shows the matching
   empirical effect from the upper side: on a fixed network we search
   random s-systolic protocols for each period and report the best gossip
   time found, next to the e(s)·log n lower-bound main term.

   Run with:  dune exec examples/systolic_tradeoff.exe *)

open Core
module Table = Util.Table

(* random sampling + hill climbing: the climber repairs most of the
   non-completing periods random sampling drowns in *)
let best_gossip g mode ~period ~tries =
  let best = ref None in
  for seed = 1 to tries do
    let sys =
      Protocol.Builders.random_systolic g mode ~period ~seed ~density:1.0
    in
    match Simulate.Engine.gossip_time ~cap:400 sys with
    | Some t -> (
        match !best with
        | Some b when b <= t -> ()
        | _ -> best := Some t)
    | None -> ()
  done;
  let options =
    { Search.Optimizer.default_options with iterations = 300; restarts = 2 }
  in
  (match Search.Optimizer.search ~options g mode ~s:period with
  | _, Some t -> (
      match !best with Some b when b <= t -> () | _ -> best := Some t)
  | _, None -> ());
  !best

let () =
  let g = Topology.Families.de_bruijn 2 5 in
  let n = Topology.Digraph.n_vertices g in
  let logn = Util.Numeric.log2 (float_of_int n) in
  Format.printf "Network: %a@.@." Topology.Digraph.pp g;
  let t =
    Table.make
      ~title:"Period s vs gossip time on DB(2,5), half-duplex (32 nodes)"
      [ "s"; "e(s)"; "e(s)·log n"; "best found (random + hill climbing)" ]
  in
  List.iter
    (fun s ->
      let e = Bounds.General.e s in
      let found =
        match best_gossip g Protocol.Protocol.Half_duplex ~period:s ~tries:200 with
        | Some b -> string_of_int b
        | None -> "none found"
      in
      Table.add_row t
        [
          string_of_int s;
          Table.cell_f e;
          Table.cell_f ~decimals:2 (e *. logn);
          found;
        ])
    [ 3; 4; 5; 6; 7; 8 ];
  Table.print t;
  print_endline
    "e(s) decreases with s: longer periods buy faster gossip.  The searched\n\
     upper bounds are loose but every one sits above the bound, and the\n\
     smallest periods visibly struggle — the search finds no completing\n\
     3-systolic protocol on this network at all."
