lib/bounds/broadcast.ml: General Gossip_topology Gossip_util
