lib/bounds/broadcast.mli: Gossip_topology
