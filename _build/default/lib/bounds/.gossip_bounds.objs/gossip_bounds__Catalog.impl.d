lib/bounds/catalog.ml: Gossip_topology Gossip_util List Printf
