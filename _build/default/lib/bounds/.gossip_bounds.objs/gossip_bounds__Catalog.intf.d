lib/bounds/catalog.mli: Gossip_topology
