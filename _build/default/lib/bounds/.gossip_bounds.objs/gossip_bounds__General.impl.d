lib/bounds/general.ml: Gossip_linalg Gossip_util
