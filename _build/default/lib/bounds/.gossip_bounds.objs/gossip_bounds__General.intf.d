lib/bounds/general.mli:
