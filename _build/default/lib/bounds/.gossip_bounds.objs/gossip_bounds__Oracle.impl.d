lib/bounds/oracle.ml: Broadcast Catalog Float General Gossip_protocol Gossip_topology Gossip_util List Option Separator_bounds
