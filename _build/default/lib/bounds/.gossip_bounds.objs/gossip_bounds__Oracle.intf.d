lib/bounds/oracle.mli: Gossip_protocol Gossip_topology
