lib/bounds/separator_bounds.ml: General Gossip_util
