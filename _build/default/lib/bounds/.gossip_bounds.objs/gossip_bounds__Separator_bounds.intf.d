lib/bounds/separator_bounds.mli:
