lib/bounds/tables.ml: Catalog Float General Gossip_util List Printf Separator_bounds
