lib/bounds/tables.mli:
