module Digraph = Gossip_topology.Digraph
module Metrics = Gossip_topology.Metrics

let c d =
  if d < 2 then invalid_arg "Broadcast.c: degree parameter must be >= 2";
  General.e_fd (d + 1)

let trivial ~n =
  if n <= 1 then 0
  else int_of_float (ceil (Gossip_util.Numeric.log2 (float_of_int n)))

let lower_bound g =
  let n = Digraph.n_vertices g in
  let diam = Metrics.diameter g in
  if diam = Metrics.unreachable then Metrics.unreachable
  else max (trivial ~n) diam

let asymptotic_coefficient g =
  let d = max 2 (Digraph.degree_parameter g) in
  c d
