(** Broadcasting lower bounds (the [22,2] constants the paper compares
    against).

    The paper repeatedly benchmarks its gossip bounds against what
    broadcasting already implies: for bounded-degree networks,
    [b(G) ≥ c(d)·log n] with [c(2) = 1.4404], [c(3) = 1.1374],
    [c(4) = 1.0562] and [c(d) → 1 + log(e)/(2d)]... and a full-duplex
    s-systolic gossip protocol yields a broadcast protocol on a network
    of degree [s - 1], which is why Section 6's general full-duplex
    bounds coincide with these constants: [c(d) = e_fd(d + 1)]. *)

(** [c d] is the bounded-degree broadcasting constant of [22,2]: the
    informational bound where one vertex can inform at most one neighbour
    per round along at most [d] "useful" directions.  Computed as the
    root of [λ + λ² + ... + λ^d = 1] — identically
    {!General.e_fd}[(d + 1)].
    @raise Invalid_argument if [d < 2] (degree-1 networks are paths, where
    broadcasting is linear, not logarithmic). *)
val c : int -> float

(** [trivial ~n] is [⌈log₂ n⌉] — the information-doubling bound that
    holds on every network in every mode. *)
val trivial : n:int -> int

(** [lower_bound g] is the best {e finite-n sound} broadcast lower bound
    for the concrete network [g]: [max(⌈log₂ n⌉, diameter)].  The
    [c(d)·log n] asymptotic term carries a [-O(log log n)] correction, so
    it is reported separately by {!asymptotic_coefficient} rather than
    mixed into a claimed-sound number. *)
val lower_bound : Gossip_topology.Digraph.t -> int

(** [asymptotic_coefficient g] is [c(degree_parameter g)] — the
    coefficient of [log n] in the broadcasting bound for [g]'s family. *)
val asymptotic_coefficient : Gossip_topology.Digraph.t -> float
