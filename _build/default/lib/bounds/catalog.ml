module Families = Gossip_topology.Families
module Separator = Gossip_topology.Separator

type t = {
  key : string;
  d : int;
  directed : bool;
  alpha : float;
  ell : float;
  verified_ell : float;
  diameter_coeff : float;
  build : int -> Gossip_topology.Digraph.t;
  separator : int -> Gossip_topology.Separator.t;
}

let log2 = Gossip_util.Numeric.log2

let bf d =
  let ld = log2 (float_of_int d) in
  {
    key = Printf.sprintf "BF(%d,D)" d;
    d;
    directed = false;
    alpha = ld /. 2.0;
    ell = 2.0 /. ld;
    verified_ell = 2.0 /. ld;
    diameter_coeff = 2.0 /. ld;
    build = (fun dim -> Families.butterfly d dim);
    separator = (fun dim -> Separator.butterfly ~d ~dim);
  }

let dwbf d =
  let ld = log2 (float_of_int d) in
  {
    key = Printf.sprintf "dWBF(%d,D)" d;
    d;
    directed = true;
    alpha = ld /. 2.0;
    ell = 2.0 /. ld;
    verified_ell = 2.0 /. ld;
    diameter_coeff = 2.0 /. ld;
    build = (fun dim -> Families.wrapped_butterfly_directed d dim);
    separator = (fun dim -> Separator.wrapped_butterfly_directed ~d ~dim);
  }

let wbf d =
  let ld = log2 (float_of_int d) in
  {
    key = Printf.sprintf "WBF(%d,D)" d;
    d;
    directed = false;
    alpha = 2.0 *. ld /. 3.0;
    ell = 3.0 /. (2.0 *. ld);
    verified_ell = 3.0 /. (2.0 *. ld);
    diameter_coeff = 1.5 /. ld;
    build = (fun dim -> Families.wrapped_butterfly d dim);
    separator = (fun dim -> Separator.wrapped_butterfly ~d ~dim);
  }

let ddb d =
  let ld = log2 (float_of_int d) in
  {
    key = Printf.sprintf "dDB(%d,D)" d;
    d;
    directed = true;
    alpha = ld;
    ell = 1.0 /. ld;
    verified_ell = 1.0 /. ld;
    diameter_coeff = 1.0 /. ld;
    build = (fun dim -> Families.de_bruijn_directed d dim);
    separator = (fun dim -> Separator.de_bruijn ~d ~dim);
  }

let db d =
  let ld = log2 (float_of_int d) in
  {
    key = Printf.sprintf "DB(%d,D)" d;
    d;
    directed = false;
    alpha = ld;
    ell = 1.0 /. ld;
    verified_ell = 1.0 /. (2.0 *. ld);
    diameter_coeff = 1.0 /. ld;
    build = (fun dim -> Families.de_bruijn d dim);
    separator = (fun dim -> Separator.de_bruijn_undirected ~d ~dim);
  }

let dk d =
  let ld = log2 (float_of_int d) in
  {
    key = Printf.sprintf "dK(%d,D)" d;
    d;
    directed = true;
    alpha = ld;
    ell = 1.0 /. ld;
    verified_ell = 1.0 /. ld;
    diameter_coeff = 1.0 /. ld;
    build = (fun dim -> Families.kautz_directed d dim);
    separator = (fun dim -> Separator.kautz ~d ~dim);
  }

let k d =
  let ld = log2 (float_of_int d) in
  {
    key = Printf.sprintf "K(%d,D)" d;
    d;
    directed = false;
    alpha = ld;
    ell = 1.0 /. ld;
    verified_ell = 1.0 /. (2.0 *. ld);
    diameter_coeff = 1.0 /. ld;
    build = (fun dim -> Families.kautz d dim);
    separator = (fun dim -> Separator.kautz_undirected ~d ~dim);
  }

let families =
  List.concat_map (fun d -> [ bf d; dwbf d; wbf d; ddb d; db d; dk d; k d ]) [ 2; 3 ]

let find key = List.find_opt (fun f -> f.key = key) families

let undirected_families = List.filter (fun f -> not f.directed) families
