(** Catalog of the network families of the paper's evaluation.

    One descriptor per table row of Figs. 5, 6 and 8: the published
    ⟨α, l⟩ parameters (used to regenerate the numeric tables), the
    diameter coefficient (diameter / log₂ n, the trivial bound quoted in
    Fig. 6), whether the family is a symmetric digraph (half-/full-duplex
    capable), and constructors for concrete instances and their verified
    separators.

    For undirected de Bruijn and Kautz graphs the published tables use
    [l = 1/log d], but the separator our machinery can actually verify on
    instances is the middle-block one with [l = 1/(2 log d)] (see
    {!Gossip_topology.Separator}); [verified_ell] records that value,
    [ell] the published one. *)

type t = {
  key : string;  (** display name, e.g. ["WBF(2,D)"] *)
  d : int;  (** the fixed degree parameter of the family *)
  directed : bool;  (** [true] when the family is a one-way digraph *)
  alpha : float;  (** published separator density exponent *)
  ell : float;  (** published separator distance coefficient *)
  verified_ell : float;  (** distance coefficient our separator certifies *)
  diameter_coeff : float;  (** asymptotic diameter / log₂ n *)
  build : int -> Gossip_topology.Digraph.t;  (** instance of dimension D *)
  separator : int -> Gossip_topology.Separator.t;
      (** verified separator for the instance of dimension D *)
}

(** [families] lists BF, directed WBF, WBF, directed DB, DB, directed K
    and K for [d = 2, 3], in Fig. 5 order. *)
val families : t list

(** [find key] retrieves a descriptor by display name. *)
val find : string -> t option

(** [undirected_families] filters the symmetric ones (rows of Fig. 8). *)
val undirected_families : t list
