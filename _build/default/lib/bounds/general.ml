module Numeric = Gossip_util.Numeric
module Poly = Gossip_linalg.Poly

let check_lambda lambda =
  if not (lambda > 0.0 && lambda < 1.0) then
    invalid_arg "General: lambda must be in (0, 1)"

let norm_function s lambda =
  if s < 3 then invalid_arg "General.norm_function: s must be >= 3";
  check_lambda lambda;
  let hi = (s + 1) / 2 and lo = s / 2 in
  lambda *. sqrt (Poly.delay_eval hi lambda) *. sqrt (Poly.delay_eval lo lambda)

let norm_function_inf lambda =
  check_lambda lambda;
  lambda /. (1.0 -. (lambda *. lambda))

let norm_function_fd s lambda =
  if s < 3 then invalid_arg "General.norm_function_fd: s must be >= 3";
  check_lambda lambda;
  Poly.geometric lambda (s - 1)

let norm_function_fd_inf lambda =
  check_lambda lambda;
  lambda /. (1.0 -. lambda)

(* All four norm functions are strictly increasing in λ on (0, 1) and
   cross 1 exactly once; a bracketed Brent solve is enough. *)
let solve_unit f =
  Numeric.brent ~tol:1e-14 ~lo:1e-9 ~hi:(1.0 -. 1e-9) (fun l -> f l -. 1.0)

let lambda_star s = solve_unit (norm_function s)

let lambda_star_inf = 1.0 /. Numeric.phi

let lambda_star_fd s = solve_unit (norm_function_fd s)

let lambda_star_fd_inf = 0.5

let e_of_lambda lambda = 1.0 /. Numeric.log2 (1.0 /. lambda)

let e s = e_of_lambda (lambda_star s)

let e_inf = e_of_lambda lambda_star_inf

let e_fd s = e_of_lambda (lambda_star_fd s)

let e_fd_inf = 1.0

let coefficient_of_log ~e_coeff ~n =
  e_coeff *. Numeric.log2 (float_of_int n)

let rounds_lower_bound ~n ~s =
  int_of_float (ceil (coefficient_of_log ~e_coeff:(e s) ~n))

let lambda_star_poly s =
  if s < 3 then invalid_arg "General.lambda_star_poly: s must be >= 3";
  let open Gossip_linalg in
  let hi = (s + 1) / 2 and lo = s / 2 in
  let square = Poly.mul (Poly.monomial 2 1.0) in
  let p = square (Poly.mul (Poly.delay hi) (Poly.delay lo)) in
  Numeric.bisect ~tol:1e-14 ~lo:1e-9 ~hi:(1.0 -. 1e-9) (fun l ->
      Poly.eval p l -. 1.0)
