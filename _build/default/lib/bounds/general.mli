(** The general lower bounds of Corollary 4.4 and Section 6.

    Directed / half-duplex (Corollary 4.4): any s-systolic gossip protocol
    takes at least [e(s)·log n − O(log log n)] rounds, where
    [e(s) = 1/log(1/λ)] and λ is the unique root in (0, 1) of
    [λ·sqrt(p⌈s/2⌉(λ))·sqrt(p⌊s/2⌋(λ)) = 1].
    As [s → ∞] the equation degenerates to [λ/(1-λ²) = 1], [1/λ] the
    golden ratio, recovering the classical [1.4404·log n] bound of
    [4,17,15,26] up to [O(log log n)].

    Full-duplex (Section 6): same statement with the norm function
    [λ + λ² + ... + λ^(s-1)]; the resulting [e(s)] coincide with the
    broadcasting constants [c(d)] of [22,2] ([1.4404, 1.1374, 1.0562, ...]
    for [s = 3, 4, 5, ...]). *)

(** [norm_function s lambda] is
    [λ·sqrt(p⌈s/2⌉(λ))·sqrt(p⌊s/2⌋(λ))] — the Lemma 4.3 bound on
    [‖M(λ)‖] for period [s].
    @raise Invalid_argument if [s < 3] or [λ] outside (0, 1). *)
val norm_function : int -> float -> float

(** [norm_function_inf lambda] is the [s → ∞] limit [λ/(1-λ²)]. *)
val norm_function_inf : float -> float

(** [norm_function_fd s lambda] is the full-duplex
    [λ + λ² + ... + λ^(s-1)]. *)
val norm_function_fd : int -> float -> float

(** [norm_function_fd_inf lambda] is [λ/(1-λ)]. *)
val norm_function_fd_inf : float -> float

(** [lambda_star s] is the unique [λ ∈ (0,1)] with
    [norm_function s λ = 1]. *)
val lambda_star : int -> float

(** [lambda_star_inf] is [1/φ = 0.6180...]. *)
val lambda_star_inf : float

(** [lambda_star_fd s] solves [norm_function_fd s λ = 1]. *)
val lambda_star_fd : int -> float

(** [lambda_star_fd_inf] is [1/2]. *)
val lambda_star_fd_inf : float

(** [e s] is the directed/half-duplex systolic coefficient
    [1/log(1/lambda_star s)] — e.g. [e 3 = 2.8808], [e 4 = 1.8133]. *)
val e : int -> float

(** [e_inf] is [1.4404...], the non-systolic coefficient. *)
val e_inf : float

(** [e_fd s] and [e_fd_inf] are the full-duplex analogues
    ([e_fd 3 = 1.4404], [e_fd 4 = 1.1374], ...; [e_fd_inf = 1]). *)
val e_fd : int -> float

val e_fd_inf : float

(** [rounds_lower_bound ~n ~s] is the asymptotic main term
    [⌈e(s)·log₂ n⌉].  Beware: the theorem subtracts an [O(log log n)]
    correction, so this is {e not} a strict finite-[n] bound — use
    {!Gossip_delay.Certificate} when a sound finite-[n] bound is needed. *)
val rounds_lower_bound : n:int -> s:int -> int

(** [coefficient_of_log ~e_coeff ~n] is [e·log₂ n] as a float. *)
val coefficient_of_log : e_coeff:float -> n:int -> float

(** [lambda_star_poly s] recomputes {!lambda_star} by a fully independent
    route: squaring the defining equation gives the polynomial
    [λ²·p⌈s/2⌉(λ)·p⌊s/2⌋(λ) - 1 = 0], built symbolically with
    {!Gossip_linalg.Poly} and solved by bisection.  Used as a
    cross-check in the tests. *)
val lambda_star_poly : int -> float
