module Numeric = Gossip_util.Numeric

let maximize ~alpha ~ell ~f =
  (* The admissible region is (0, λ_star] with f(λ_star) = 1; the objective is
     smooth there, and grid + golden refinement is robust to the flat
     regions near both ends. *)
  let lambda_star =
    Numeric.brent ~tol:1e-14 ~lo:1e-9 ~hi:(1.0 -. 1e-9) (fun l -> f l -. 1.0)
  in
  let objective lambda =
    if lambda <= 0.0 || lambda >= 1.0 then neg_infinity
    else
      let v = f lambda in
      if v > 1.0 then neg_infinity
      else ell *. (alpha -. Numeric.log2 v) /. Numeric.log2 (1.0 /. lambda)
  in
  Numeric.grid_max ~points:4000 ~lo:1e-6 ~hi:lambda_star objective

let e_half_duplex ~alpha ~ell ~s =
  snd (maximize ~alpha ~ell ~f:(General.norm_function s))

let e_half_duplex_inf ~alpha ~ell =
  snd (maximize ~alpha ~ell ~f:General.norm_function_inf)

let e_full_duplex ~alpha ~ell ~s =
  snd (maximize ~alpha ~ell ~f:(General.norm_function_fd s))

let e_full_duplex_inf ~alpha ~ell =
  snd (maximize ~alpha ~ell ~f:General.norm_function_fd_inf)
