(** Topology-refined lower bounds (Theorem 5.1 and its full-duplex
    analogue).

    For a family with an ⟨α, l⟩-separator and norm function [f] (one of
    the four in {!General}), any protocol takes at least
    [e·log n·(1 - o(1))] rounds with

    [e = max over 0 < λ < 1, f(λ) ≤ 1 of  l·(α - log₂ f(λ)) / log₂(1/λ)].

    At the endpoint λ_star (where [f(λ_star) = 1]) the expression equals
    [α·l / log₂(1/λ_star) ≤ e(s)]; pushing λ below λ_star trades norm slack for
    distance and often wins — e.g. [WBF(2,D)], [s = 4]: 2.0218 versus the
    general 1.8133. *)

(** [maximize ~alpha ~ell ~f] evaluates the max above for an arbitrary
    increasing norm function [f] with [f(λ_star) = 1] somewhere in (0,1).
    Returns [(λ_opt, e)]. *)
val maximize : alpha:float -> ell:float -> f:(float -> float) -> float * float

(** [e_half_duplex ~alpha ~ell ~s] — Theorem 5.1 with the systolic
    directed/half-duplex norm function. *)
val e_half_duplex : alpha:float -> ell:float -> s:int -> float

(** [e_half_duplex_inf ~alpha ~ell] — the non-systolic ([s → ∞])
    corollary (Corollary 5.3 / Fig. 6). *)
val e_half_duplex_inf : alpha:float -> ell:float -> float

(** [e_full_duplex ~alpha ~ell ~s] — the Section 6 full-duplex variant
    (Fig. 8). *)
val e_full_duplex : alpha:float -> ell:float -> s:int -> float

(** [e_full_duplex_inf ~alpha ~ell] — full-duplex non-systolic. *)
val e_full_duplex_inf : alpha:float -> ell:float -> float
