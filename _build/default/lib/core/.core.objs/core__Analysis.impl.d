lib/core/analysis.ml: Format Gossip_bounds Gossip_delay Gossip_protocol Gossip_simulate Gossip_topology List
