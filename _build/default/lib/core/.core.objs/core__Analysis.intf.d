lib/core/analysis.mli: Format Gossip_delay Gossip_protocol Gossip_topology
