lib/delay/certificate.ml: Array Delay_digraph Delay_matrix Gossip_protocol Gossip_topology Hashtbl List
