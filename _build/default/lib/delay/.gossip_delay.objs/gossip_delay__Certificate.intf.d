lib/delay/certificate.mli: Delay_digraph Gossip_linalg Gossip_protocol Gossip_topology
