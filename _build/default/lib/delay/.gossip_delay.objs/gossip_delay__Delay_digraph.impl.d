lib/delay/delay_digraph.ml: Array Gossip_protocol Gossip_topology Hashtbl List Printf Queue
