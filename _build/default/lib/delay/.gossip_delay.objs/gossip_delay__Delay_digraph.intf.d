lib/delay/delay_digraph.mli: Gossip_protocol Gossip_topology
