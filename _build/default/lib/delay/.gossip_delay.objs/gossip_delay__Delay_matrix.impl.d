lib/delay/delay_matrix.ml: Array Delay_digraph Float Fun Gossip_linalg Gossip_protocol Gossip_topology Gossip_util
