lib/delay/delay_matrix.mli: Delay_digraph Gossip_linalg Gossip_protocol
