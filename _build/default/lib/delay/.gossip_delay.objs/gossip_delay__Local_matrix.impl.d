lib/delay/local_matrix.ml: Array Gossip_linalg List
