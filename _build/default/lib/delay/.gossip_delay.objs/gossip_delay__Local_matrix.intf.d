lib/delay/local_matrix.mli: Gossip_linalg
