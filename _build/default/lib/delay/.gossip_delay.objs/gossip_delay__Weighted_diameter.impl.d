lib/delay/weighted_diameter.ml: Array Gossip_linalg Gossip_topology Gossip_util Hashtbl List
