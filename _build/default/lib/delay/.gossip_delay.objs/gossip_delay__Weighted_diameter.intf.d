lib/delay/weighted_diameter.mli: Gossip_linalg Gossip_topology
