(** The delay matrix [M(λ)] (Definition 3.4) and its per-vertex blocks.

    [M(λ)] is indexed by arc activations; entry
    [(x,y,i), (y,z,j) ↦ λ^(j-i)] when the delay digraph has that arc, 0
    otherwise.  Its key property: [(M(λ)^k)_{a,b} = Σ_paths λ^length]
    over the [k]-arc dipaths from [a] to [b], so powers of [M(λ)] count
    delay-weighted dissemination paths.

    After simultaneous row/column permutation [M(λ)] splits into [n]
    blocks that share no rows or columns — one block [Mx(λ)] per network
    vertex [x], with rows the in-activations of [x] and columns its
    out-activations (Section 4).  By norm property 8,
    [‖M(λ)‖ = max_x ‖Mx(λ)‖]; both sides are computed here and
    cross-checked in the tests. *)

(** [sparse dg lambda] is the global [M(λ)] as a sparse matrix in
    activation order.
    @raise Invalid_argument unless [0 < λ < 1]. *)
val sparse : Delay_digraph.t -> float -> Gossip_linalg.Sparse.t

(** [vertex_block dg lambda x] is [Mx(λ)]: rows indexed by
    [activations_in dg x], columns by [activations_out dg x], entries
    [λ^(j-i)] when [1 ≤ j - i < window]. *)
val vertex_block : Delay_digraph.t -> float -> int -> Gossip_linalg.Dense.t

(** [norm ?options dg lambda] is [‖M(λ)‖] by power iteration on the
    global sparse matrix. *)
val norm :
  ?options:Gossip_linalg.Spectral.options -> Delay_digraph.t -> float -> float

(** [norm_blockwise ?options ?domains dg lambda] is [max_x ‖Mx(λ)‖] —
    equal to {!norm} by norm property 8, but cheaper on large networks
    since the blocks are small, and parallel over vertices ([domains]
    defaults to {!Gossip_util.Parallel.recommended_domains}). *)
val norm_blockwise :
  ?options:Gossip_linalg.Spectral.options ->
  ?domains:int ->
  Delay_digraph.t ->
  float ->
  float

(** [closed_form_bound ~mode ~window lambda] is the paper's closed-form
    upper bound on [‖M(λ)‖]:
    [λ·sqrt(p⌈s/2⌉(λ))·sqrt(p⌊s/2⌋(λ))] in directed/half-duplex mode
    (Lemma 4.3) and [λ + λ² + ... + λ^(s-1)] in full-duplex mode
    (Lemma 6.1). *)
val closed_form_bound :
  mode:Gossip_protocol.Protocol.mode -> window:int -> float -> float
