module Dense = Gossip_linalg.Dense
module Vec = Gossip_linalg.Vec
module Poly = Gossip_linalg.Poly

type pattern = { l : int array; r : int array }

let make_pattern ~l ~r =
  if Array.length l <> Array.length r then
    invalid_arg "Local_matrix.make_pattern: block count mismatch";
  if Array.length l = 0 then
    invalid_arg "Local_matrix.make_pattern: empty pattern";
  if Array.exists (fun b -> b < 1) l || Array.exists (fun b -> b < 1) r then
    invalid_arg "Local_matrix.make_pattern: blocks must be positive";
  { l = Array.copy l; r = Array.copy r }

let blocks p = Array.length p.l

let period p =
  Array.fold_left ( + ) 0 p.l + Array.fold_left ( + ) 0 p.r

let l p = Array.copy p.l
let r p = Array.copy p.r

let of_activation_pattern a =
  let s = Array.length a in
  if s = 0 || Array.exists (fun x -> x = `Both) a then None
  else begin
    let has_l = Array.exists (fun x -> x = `L) a in
    let has_r = Array.exists (fun x -> x = `R) a in
    if not (has_l && has_r) then None
    else begin
      (* Complete idle rounds: extend the preceding (cyclically) block. *)
      let completed = Array.make s `L in
      (* find a non-idle anchor *)
      let anchor = ref 0 in
      while a.(!anchor) = `Idle do
        incr anchor
      done;
      for off = 0 to s - 1 do
        let i = (!anchor + off) mod s in
        completed.(i) <-
          (match a.(i) with
          | `L -> `L
          | `R -> `R
          | `Idle | `Both -> completed.((i + s - 1) mod s))
      done;
      (* Rotate to start at an R->L boundary. *)
      let start = ref (-1) in
      for i = 0 to s - 1 do
        if
          !start = -1
          && completed.(i) = `L
          && completed.((i + s - 1) mod s) = `R
        then start := i
      done;
      if !start = -1 then None (* all one type after completion *)
      else begin
        let rot = Array.init s (fun i -> completed.((!start + i) mod s)) in
        (* Run-length encode the alternating blocks. *)
        let ls = ref [] and rs = ref [] in
        let i = ref 0 in
        while !i < s do
          let kind = rot.(!i) in
          let j = ref !i in
          while !j < s && rot.(!j) = kind do
            incr j
          done;
          let len = !j - !i in
          (match kind with `L -> ls := len :: !ls | `R -> rs := len :: !rs
          | `Both | `Idle -> assert false);
          i := !j
        done;
        let l = Array.of_list (List.rev !ls)
        and r = Array.of_list (List.rev !rs) in
        if Array.length l = Array.length r then Some (make_pattern ~l ~r)
        else None
      end
    end
  end

let ext arr k i = arr.(i mod k)

let d p ~i ~j =
  if j < i then invalid_arg "Local_matrix.d: j < i";
  let k = blocks p in
  let acc = ref 1 in
  for c = i to j - 1 do
    acc := !acc + ext p.r k c + ext p.l k (c + 1)
  done;
  !acc

let block_offsets sizes =
  let n = Array.length sizes in
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + sizes.(i)
  done;
  off

let mx p ~h ~lambda =
  if h < 1 then invalid_arg "Local_matrix.mx: h must be >= 1";
  let k = blocks p in
  let lsz = Array.init h (fun i -> ext p.l k i) in
  let rsz = Array.init h (fun j -> ext p.r k j) in
  let roff = block_offsets lsz and coff = block_offsets rsz in
  let m = Dense.create roff.(h) coff.(h) 0.0 in
  for i = 0 to h - 1 do
    for j = i to min (h - 1) (i + k - 1) do
      let dij = d p ~i ~j in
      for u = 0 to lsz.(i) - 1 do
        for v = 0 to rsz.(j) - 1 do
          Dense.set m (roff.(i) + u) (coff.(j) + v)
            (lambda ** float_of_int (dij + u + v))
        done
      done
    done
  done;
  m

let nx p ~h ~lambda =
  if h < 1 then invalid_arg "Local_matrix.nx: h must be >= 1";
  let k = blocks p in
  Dense.init h h (fun i j ->
      if j >= i && j < i + k then
        (lambda ** float_of_int (d p ~i ~j))
        *. Poly.delay_eval (ext p.r k j) lambda
      else 0.0)

let ox p ~h ~lambda =
  if h < 1 then invalid_arg "Local_matrix.ox: h must be >= 1";
  let k = blocks p in
  Dense.init h h (fun i j ->
      if j <= i && j > i - k then
        (lambda ** float_of_int (d p ~i:j ~j:i))
        *. Poly.delay_eval (ext p.l k j) lambda
      else 0.0)

let semi_eigenvector p ~h ~lambda =
  let k = blocks p in
  Vec.init h (fun j ->
      let expo = ref 0 in
      for c = 0 to j - 1 do
        expo := !expo + ext p.r k c - ext p.l k (c + 1)
      done;
      lambda ** float_of_int !expo)

let nx_semi_eigenvalue p lambda =
  let total_r = Array.fold_left ( + ) 0 p.r in
  lambda *. Poly.delay_eval total_r lambda

let ox_semi_eigenvalue p lambda =
  let total_l = Array.fold_left ( + ) 0 p.l in
  lambda *. Poly.delay_eval total_l lambda

let full_duplex_local ~window ~rounds ~lambda =
  if window < 2 then invalid_arg "Local_matrix.full_duplex_local: window < 2";
  if rounds < 1 then invalid_arg "Local_matrix.full_duplex_local: rounds < 1";
  Dense.init rounds rounds (fun i j ->
      let delay = j - i in
      if delay >= 1 && delay < window then lambda ** float_of_int delay
      else 0.0)
