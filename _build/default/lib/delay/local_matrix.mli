(** Local protocol patterns and the matrices [Mx(λ)], [Nx(λ)], [Ox(λ)].

    Section 4 shows that, locally at a vertex [x], an s-systolic protocol
    is a cyclic alternation of [k] blocks of consecutive left (incoming)
    activations of sizes [l_0, ..., l_{k-1}] and right (outgoing) blocks
    of sizes [r_0, ..., r_{k-1}], with [Σ(l_j + r_j) = s].  Over [h]
    block repetitions the local delay matrix [Mx(λ)] decomposes into
    rank-one blocks [B_{i,j} = λ^{d_{i,j}} Λ0_{l_i} (Λ0_{r_j})ᵀ]
    (Figs. 1–2), reduces to the [h × h] matrices [Nx(λ)] and [Ox(λ)]
    (Fig. 3), and admits the explicit semi-eigenvector [e] of Lemma 4.2
    — which is how Lemma 4.3's closed-form bound
    [‖Mx(λ)‖ ≤ λ·sqrt(p⌈s/2⌉)·sqrt(p⌊s/2⌋)] is proved.  This module
    builds all of those objects so the tests can replay the proof
    numerically. *)

type pattern
(** [k] alternating left/right block sizes, all positive. *)

(** [make_pattern ~l ~r] packages block sizes.
    @raise Invalid_argument if lengths differ, are zero, or any block is
    [< 1]. *)
val make_pattern : l:int array -> r:int array -> pattern

(** [blocks p] is [k]; [period p] is [s = Σ(l_j + r_j)]. *)
val blocks : pattern -> int

val period : pattern -> int

(** [l p] and [r p] are copies of the block-size arrays. *)
val l : pattern -> int array

val r : pattern -> int array

(** [of_activation_pattern a] reads a cyclic [`L/`R/`Idle] round pattern
    (as produced by {!Gossip_protocol.Systolic.active_pattern}) into a
    pattern, completing idle rounds by extending the preceding block —
    completion can only increase the local matrix entrywise, which is the
    direction the upper-bound argument needs.  Returns [None] when the
    vertex never receives, never sends, or the pattern contains [`Both]
    (full-duplex; see {!full_duplex_local}). *)
val of_activation_pattern :
  [ `L | `R | `Both | `Idle ] array -> pattern option

(** [d p ~i ~j] is the delay [d_{i,j} = 1 + Σ_{c=i}^{j-1} (r_c + l_{c+1})]
    between the last activation of left block [i] and the first of right
    block [j], block indices extended periodically.
    @raise Invalid_argument if [j < i]. *)
val d : pattern -> i:int -> j:int -> int

(** [mx p ~h ~lambda] is the local matrix [Mx(λ)] over [h] block
    repetitions: [Σ l] rows (each left block in reverse round order) and
    [Σ r] columns (round order), as in Fig. 1. *)
val mx : pattern -> h:int -> lambda:float -> Gossip_linalg.Dense.t

(** [nx p ~h ~lambda] is the reduced [h × h] matrix with
    [N_{i,j} = λ^{d_{i,j}}·p_{r_j}(λ)] for [i ≤ j < i + k] (Fig. 3). *)
val nx : pattern -> h:int -> lambda:float -> Gossip_linalg.Dense.t

(** [ox p ~h ~lambda] is the reduced [h × h] matrix with
    [O_{i,j} = λ^{d_{j,i}}·p_{l_j}(λ)] for [i - k < j ≤ i] (Fig. 3). *)
val ox : pattern -> h:int -> lambda:float -> Gossip_linalg.Dense.t

(** [semi_eigenvector p ~h ~lambda] is the vector [e] of Lemma 4.2:
    [e_j = λ^(Σ_{c<j} (r_c - l_{c+1}))]. *)
val semi_eigenvector : pattern -> h:int -> lambda:float -> Gossip_linalg.Vec.t

(** [nx_semi_eigenvalue p lambda] is [λ·p_{r_0+...+r_{k-1}}(λ)] and
    [ox_semi_eigenvalue p lambda] is [λ·p_{l_0+...+l_{k-1}}(λ)] — the
    semi-eigenvalues of Lemma 4.2. *)
val nx_semi_eigenvalue : pattern -> float -> float

val ox_semi_eigenvalue : pattern -> float -> float

(** [full_duplex_local ~window ~rounds ~lambda] is the full-duplex local
    matrix of Fig. 7: [rounds × rounds], entry [(i, j) = λ^(j-i)] for
    [1 ≤ j - i < window]. *)
val full_duplex_local :
  window:int -> rounds:int -> lambda:float -> Gossip_linalg.Dense.t
