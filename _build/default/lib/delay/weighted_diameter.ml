module Sparse = Gossip_linalg.Sparse
module Spectral = Gossip_linalg.Spectral

type t = { n : int; arcs : (int * int * int) array }

let make n arcs =
  if n < 0 then invalid_arg "Weighted_diameter.make: negative vertex count";
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Weighted_diameter.make: vertex out of range";
      if u = v then invalid_arg "Weighted_diameter.make: self-loop";
      if w < 1 then invalid_arg "Weighted_diameter.make: weight must be >= 1";
      if Hashtbl.mem seen (u, v) then
        invalid_arg "Weighted_diameter.make: duplicate arc";
      Hashtbl.replace seen (u, v) ())
    arcs;
  { n; arcs = Array.of_list arcs }

let of_digraph ?(weight = 1) g =
  if weight < 1 then invalid_arg "Weighted_diameter.of_digraph: bad weight";
  let arcs = List.map (fun (u, v) -> (u, v, weight)) (Gossip_topology.Digraph.arcs g) in
  make (Gossip_topology.Digraph.n_vertices g) arcs

let n_vertices w = w.n
let n_arcs w = Array.length w.arcs

let matrix w lambda =
  if not (lambda > 0.0 && lambda < 1.0) then
    invalid_arg "Weighted_diameter.matrix: lambda must be in (0, 1)";
  Sparse.of_triplets ~rows:w.n ~cols:w.n
    (Array.to_list
       (Array.map (fun (u, v, wt) -> (u, v, lambda ** float_of_int wt)) w.arcs))

(* Dijkstra with a simple binary-heap-free O(n²+m) scan: fine for the
   sizes this module targets. *)
let dijkstra w src =
  let dist = Array.make w.n max_int in
  let visited = Array.make w.n false in
  let adj = Array.make w.n [] in
  Array.iter (fun (u, v, wt) -> adj.(u) <- (v, wt) :: adj.(u)) w.arcs;
  dist.(src) <- 0;
  for _ = 1 to w.n do
    let u = ref (-1) in
    for v = 0 to w.n - 1 do
      if (not visited.(v)) && dist.(v) < max_int
         && (!u = -1 || dist.(v) < dist.(!u))
      then u := v
    done;
    if !u >= 0 then begin
      visited.(!u) <- true;
      List.iter
        (fun (v, wt) ->
          if dist.(!u) + wt < dist.(v) then dist.(v) <- dist.(!u) + wt)
        adj.(!u)
    end
  done;
  dist

let diameter w =
  let best = ref 0 in
  (try
     for v = 0 to w.n - 1 do
       let dist = dijkstra w v in
       Array.iter
         (fun d ->
           if d = max_int then begin
             best := max_int;
             raise Exit
           end
           else if d > !best then best := d)
         dist
     done
   with Exit -> ());
  !best

let default_lambdas = List.init 18 (fun i -> 0.05 +. (0.05 *. float_of_int i))

let lower_bound ?(lambdas = default_lambdas) w =
  if w.n <= 1 then 0
  else begin
    let log2 = Gossip_util.Numeric.log2 in
    let best = ref 1 in
    List.iter
      (fun lambda ->
        if lambda > 0.0 && lambda < 1.0 then begin
          let nu = Spectral.norm2_sparse (matrix w lambda) in
          if nu < 1.0 && nu > 0.0 then begin
            let bound =
              (log2 (float_of_int (w.n - 1)) -. log2 (nu /. (1.0 -. nu)))
              /. log2 (1.0 /. lambda)
            in
            let bound = int_of_float (ceil bound) in
            if bound > !best then best := bound
          end
        end)
      lambdas;
    !best
  end
