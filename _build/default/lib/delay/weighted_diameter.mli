(** Norm-based lower bounds on the diameter of weighted digraphs.

    The paper's conclusion suggests the delay-matrix technique "can be
    applied also in other more general contexts ... for instance to
    establish lower bounds on the diameter of weighted digraphs"; this
    module implements that extension.

    Let [G] be a strongly connected digraph with positive integer arc
    weights and let [B(λ)] be the matrix with [B(λ)_{u,v} = λ^{w(u,v)}]
    on arcs and 0 elsewhere.  Since [(B^k)_{u,v} = Σ_paths λ^weight], for
    every ordered pair [Σ_{k≥1} (B^k)_{u,v} ≥ λ^{dist(u,v)} ≥ λ^D] where
    [D] is the weighted diameter.  Taking norms as in Theorem 4.1, when
    [ν = ‖B(λ)‖ < 1]:

    [ν / (1 - ν)  ≥  ‖Σ B^k‖  ≥  λ^D·(n - 1)]

    hence [D ≥ (log₂(n - 1) - log₂(ν/(1 - ν))) / log₂(1/λ)].  Maximizing
    over λ gives the bound. *)

(** A weighted digraph: arcs with positive integer weights.  Duplicate
    arcs are rejected. *)
type t

(** [make n arcs] builds a weighted digraph on [n] vertices from
    [(src, dst, weight)] triples.
    @raise Invalid_argument on out-of-range vertices, self-loops,
    non-positive weights or duplicate arcs. *)
val make : int -> (int * int * int) list -> t

(** [of_digraph ?weight g] lifts an unweighted digraph (default weight
    1 per arc, in which case the bound concerns the ordinary diameter). *)
val of_digraph : ?weight:int -> Gossip_topology.Digraph.t -> t

(** [n_vertices w] and [n_arcs w]. *)
val n_vertices : t -> int

val n_arcs : t -> int

(** [matrix w lambda] is [B(λ)] as a sparse matrix. *)
val matrix : t -> float -> Gossip_linalg.Sparse.t

(** [diameter w] — exact weighted diameter by Dijkstra from every vertex
    ([max_int] when not strongly connected). *)
val diameter : t -> int

(** [lower_bound ?lambdas w] — the norm-based diameter lower bound,
    maximized over a λ grid.  Always [≥ 1] for a nontrivial digraph, and
    (checked in the tests) never exceeds {!diameter}. *)
val lower_bound : ?lambdas:float list -> t -> int
