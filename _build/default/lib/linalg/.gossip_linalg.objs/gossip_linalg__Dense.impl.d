lib/linalg/dense.ml: Array Float Format Gossip_util List
