lib/linalg/lanczos.ml: Array Dense Float Gossip_util List Sparse Vec
