lib/linalg/lanczos.mli: Dense Sparse Vec
