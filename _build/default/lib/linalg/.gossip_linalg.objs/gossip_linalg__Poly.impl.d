lib/linalg/poly.ml: Array Format Gossip_util
