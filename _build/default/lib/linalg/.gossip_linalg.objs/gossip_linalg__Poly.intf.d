lib/linalg/poly.mli: Format
