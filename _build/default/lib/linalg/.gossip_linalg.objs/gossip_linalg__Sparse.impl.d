lib/linalg/sparse.ml: Array Dense List Printf
