lib/linalg/sparse.mli: Dense Vec
