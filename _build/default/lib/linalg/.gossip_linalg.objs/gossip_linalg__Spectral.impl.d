lib/linalg/spectral.ml: Array Dense Float Gossip_util Sparse Vec
