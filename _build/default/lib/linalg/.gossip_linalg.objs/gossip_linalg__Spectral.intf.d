lib/linalg/spectral.mli: Dense Sparse Vec
