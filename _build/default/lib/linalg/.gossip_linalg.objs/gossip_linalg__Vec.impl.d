lib/linalg/vec.ml: Array Float Format Gossip_util
