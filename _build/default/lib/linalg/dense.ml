type t = { rows : int; cols : int; data : float array }

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Dense.create: negative dimension";
  { rows; cols; data = Array.make (max 1 (rows * cols)) x }

let init rows cols f =
  let m = create rows cols 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let of_arrays arr =
  let rows = Array.length arr in
  if rows = 0 then create 0 0 0.0
  else begin
    let cols = Array.length arr.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> cols then invalid_arg "Dense.of_arrays: ragged rows")
      arr;
    init rows cols (fun i j -> arr.(i).(j))
  end

let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Dense.get: index out of bounds";
  m.data.((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Dense.set: index out of bounds";
  m.data.((i * m.cols) + j) <- x

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let copy m = { m with data = Array.copy m.data }

let transpose m = init m.cols m.rows (fun i j -> m.data.((j * m.cols) + i))

let mul a b =
  if a.cols <> b.rows then invalid_arg "Dense.mul: dimension mismatch";
  let c = create a.rows b.cols 0.0 in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          c.data.((i * b.cols) + j) <-
            c.data.((i * b.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let mv m x =
  if Array.length x <> m.cols then invalid_arg "Dense.mv: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. x.(j))
      done;
      !acc)

let tmv m x =
  if Array.length x <> m.rows then invalid_arg "Dense.tmv: dimension mismatch";
  let y = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then
      for j = 0 to m.cols - 1 do
        y.(j) <- y.(j) +. (m.data.((i * m.cols) + j) *. xi)
      done
  done;
  y

let same_dims name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (name ^ ": dimension mismatch")

let add a b =
  same_dims "Dense.add" a b;
  { a with data = Array.mapi (fun i x -> x +. b.data.(i)) a.data }

let sub a b =
  same_dims "Dense.sub" a b;
  { a with data = Array.mapi (fun i x -> x -. b.data.(i)) a.data }

let scale m c = { m with data = Array.map (fun x -> c *. x) m.data }

let map f m = { m with data = Array.map f m.data }

let gram m = mul (transpose m) m

let leq a b =
  same_dims "Dense.leq" a b;
  Array.for_all2 (fun x y -> x <= y) a.data b.data

let nonneg m = Array.for_all (fun x -> x >= 0.0) m.data

let is_symmetric ?(eps = 1e-9) m =
  m.rows = m.cols
  && (let ok = ref true in
      for i = 0 to m.rows - 1 do
        for j = i + 1 to m.cols - 1 do
          if
            not
              (Gossip_util.Numeric.approx_equal ~eps
                 m.data.((i * m.cols) + j)
                 m.data.((j * m.cols) + i))
          then ok := false
        done
      done;
      !ok)

let frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let norm1 m =
  let best = ref 0.0 in
  for j = 0 to m.cols - 1 do
    let s = ref 0.0 in
    for i = 0 to m.rows - 1 do
      s := !s +. Float.abs m.data.((i * m.cols) + j)
    done;
    if !s > !best then best := !s
  done;
  !best

let norm_inf m =
  let best = ref 0.0 in
  for i = 0 to m.rows - 1 do
    let s = ref 0.0 in
    for j = 0 to m.cols - 1 do
      s := !s +. Float.abs m.data.((i * m.cols) + j)
    done;
    if !s > !best then best := !s
  done;
  !best

let valid_permutation p n =
  Array.length p = n
  &&
  let seen = Array.make n false in
  Array.for_all
    (fun i ->
      if i < 0 || i >= n || seen.(i) then false
      else begin
        seen.(i) <- true;
        true
      end)
    p

let permute_rows m p =
  if not (valid_permutation p m.rows) then
    invalid_arg "Dense.permute_rows: not a permutation";
  init m.rows m.cols (fun i j -> m.data.((p.(i) * m.cols) + j))

let permute_cols m p =
  if not (valid_permutation p m.cols) then
    invalid_arg "Dense.permute_cols: not a permutation";
  init m.rows m.cols (fun i j -> m.data.((i * m.cols) + p.(j)))

let block_diag ms =
  let total_rows = List.fold_left (fun acc m -> acc + m.rows) 0 ms in
  let total_cols = List.fold_left (fun acc m -> acc + m.cols) 0 ms in
  let result = create total_rows total_cols 0.0 in
  let _ =
    List.fold_left
      (fun (r0, c0) m ->
        for i = 0 to m.rows - 1 do
          for j = 0 to m.cols - 1 do
            set result (r0 + i) (c0 + j) m.data.((i * m.cols) + j)
          done
        done;
        (r0 + m.rows, c0 + m.cols))
      (0, 0) ms
  in
  result

let submatrix m ~row ~col ~rows ~cols =
  if row < 0 || col < 0 || row + rows > m.rows || col + cols > m.cols then
    invalid_arg "Dense.submatrix: block out of bounds";
  init rows cols (fun i j -> m.data.(((row + i) * m.cols) + (col + j)))

let outer x y =
  init (Array.length x) (Array.length y) (fun i j -> x.(i) *. y.(j))

let equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Gossip_util.Numeric.approx_equal ~eps x y)
       a.data b.data

let row m i = Array.init m.cols (fun j -> get m i j)

let col m j = Array.init m.rows (fun i -> get m i j)

let pp ppf m =
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%8.4f" (get m i j)
    done;
    Format.fprintf ppf "]";
    if i < m.rows - 1 then Format.fprintf ppf "@\n"
  done
