(** Dense row-major matrices.

    The local matrices [Mx(λ)], their rank-reduced forms [Nx(λ)], [Ox(λ)]
    and the Gram products [MᵀM] the paper analyses are all small — the side
    is bounded by the protocol length at a single vertex — so dense storage
    is the right representation; the (large) global delay matrix [M(λ)]
    lives in {!Sparse}. *)

type t

(** [create rows cols x] is a [rows × cols] matrix filled with [x]. *)
val create : int -> int -> float -> t

(** [init rows cols f] has entry [(i, j)] equal to [f i j]. *)
val init : int -> int -> (int -> int -> float) -> t

(** [of_arrays rows] builds a matrix from row arrays, which must all have
    the same length.
    @raise Invalid_argument on ragged input or empty matrix dimensions
    below zero. *)
val of_arrays : float array array -> t

(** [rows m] and [cols m] are the dimensions. *)
val rows : t -> int

val cols : t -> int

(** [get m i j] / [set m i j x] access entry [(i, j)], zero-indexed. *)
val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

(** [identity n] is the [n × n] identity. *)
val identity : int -> t

(** [copy m] is a deep copy. *)
val copy : t -> t

(** [transpose m] is a fresh transpose. *)
val transpose : t -> t

(** [mul a b] is the matrix product.
    @raise Invalid_argument on inner-dimension mismatch. *)
val mul : t -> t -> t

(** [mv m x] is the matrix-vector product. *)
val mv : t -> Vec.t -> Vec.t

(** [tmv m x] is [mᵀ·x] without materializing the transpose. *)
val tmv : t -> Vec.t -> Vec.t

(** [add a b] and [sub a b] are entrywise. *)
val add : t -> t -> t

val sub : t -> t -> t

(** [scale m c] multiplies every entry by [c]. *)
val scale : t -> float -> t

(** [map f m] applies [f] entrywise. *)
val map : (float -> float) -> t -> t

(** [gram m] is [mᵀ·m], the symmetric positive semidefinite matrix whose
    spectral radius is [‖m‖²] (Section 2 of the paper). *)
val gram : t -> t

(** [leq a b] is the entrywise order [a ≤ b] used in norm property 4. *)
val leq : t -> t -> bool

(** [nonneg m] is [true] iff every entry is [>= 0]. *)
val nonneg : t -> bool

(** [is_symmetric ?eps m] tests [m = mᵀ] approximately. *)
val is_symmetric : ?eps:float -> t -> bool

(** [frobenius m] is the Frobenius norm, an upper bound on [‖m‖₂]. *)
val frobenius : t -> float

(** [norm1 m] is the maximum absolute column sum. *)
val norm1 : t -> float

(** [norm_inf m] is the maximum absolute row sum. *)
val norm_inf : t -> float

(** [permute_rows m p] returns the matrix whose row [i] is row [p.(i)] of
    [m]; [permute_cols] likewise for columns.  Norm property 7 states these
    leave the Euclidean norm unchanged. *)
val permute_rows : t -> int array -> t

val permute_cols : t -> int array -> t

(** [block_diag ms] embeds the given matrices as diagonal blocks of an
    otherwise null matrix (norm property 8: the norm of the result is the
    max of the block norms). *)
val block_diag : t list -> t

(** [submatrix m ~row ~col ~rows ~cols] extracts a copy of the block. *)
val submatrix : t -> row:int -> col:int -> rows:int -> cols:int -> t

(** [outer x y] is the rank-one product [x·yᵀ], the building block of the
    paper's [B_{i,j} = λ^{d_{i,j}} Λ0_{l_i} (Λ0_{r_j})ᵀ]. *)
val outer : Vec.t -> Vec.t -> t

(** [equal ?eps a b] is entrywise approximate equality. *)
val equal : ?eps:float -> t -> t -> bool

(** [row m i] is a copy of row [i]. *)
val row : t -> int -> Vec.t

(** [col m j] is a copy of column [j]. *)
val col : t -> int -> Vec.t

(** [pp] prints rows on separate lines with aligned 4-decimal entries. *)
val pp : Format.formatter -> t -> unit
