type result = { largest : float; second : float option; iterations : int }

(* Number of eigenvalues of the tridiagonal (diag, off) strictly below x,
   via the Sturm sequence of leading-principal-minor ratios. *)
let sturm_count ~diag ~off x =
  let n = Array.length diag in
  let count = ref 0 in
  let d = ref 1.0 in
  for i = 0 to n - 1 do
    let b2 = if i = 0 then 0.0 else off.(i - 1) *. off.(i - 1) in
    let di = diag.(i) -. x -. (b2 /. !d) in
    (* guard against exact zeros that would poison the recurrence *)
    let di = if Float.abs di < 1e-300 then -1e-300 else di in
    if di < 0.0 then incr count;
    d := di
  done;
  !count

let tridiagonal_eigenvalues ~diag ~off =
  let n = Array.length diag in
  if Array.length off <> max 0 (n - 1) then
    invalid_arg "Lanczos.tridiagonal_eigenvalues: off-diagonal length";
  if n = 0 then [||]
  else begin
    (* Gershgorin interval *)
    let lo = ref infinity and hi = ref neg_infinity in
    for i = 0 to n - 1 do
      let r =
        (if i > 0 then Float.abs off.(i - 1) else 0.0)
        +. if i < n - 1 then Float.abs off.(i) else 0.0
      in
      lo := Float.min !lo (diag.(i) -. r);
      hi := Float.max !hi (diag.(i) +. r)
    done;
    let lo = !lo -. 1e-9 and hi = !hi +. 1e-9 in
    Array.init n (fun k ->
        (* k-th smallest eigenvalue: bisect on the Sturm count *)
        let a = ref lo and b = ref hi in
        for _ = 1 to 100 do
          let mid = 0.5 *. (!a +. !b) in
          if sturm_count ~diag ~off mid > k then b := mid else a := mid
        done;
        0.5 *. (!a +. !b))
  end

let symmetric ?steps ?(seed = 7) ~dim apply =
  if dim < 0 then invalid_arg "Lanczos.symmetric: negative dimension";
  if dim = 0 then { largest = 0.0; second = None; iterations = 0 }
  else begin
    let steps = match steps with Some s -> max 1 s | None -> min dim 64 in
    let rng = Gossip_util.Prng.create seed in
    let v = Vec.init dim (fun _ -> 0.5 +. Gossip_util.Prng.float rng 1.0) in
    ignore (Vec.normalize v);
    let basis = ref [ Array.copy v ] in
    let alphas = ref [] and betas = ref [] in
    let vprev = ref (Vec.create dim 0.0) in
    let vcur = ref v in
    let beta_prev = ref 0.0 in
    let iterations = ref 0 in
    (try
       for _ = 1 to steps do
         let w = apply !vcur in
         Vec.axpy ~alpha:(-. !beta_prev) !vprev w;
         let alpha = Vec.dot w !vcur in
         Vec.axpy ~alpha:(-.alpha) !vcur w;
         (* full reorthogonalization: cheap and rock solid at our sizes *)
         List.iter
           (fun u ->
             let c = Vec.dot w u in
             if c <> 0.0 then Vec.axpy ~alpha:(-.c) u w)
           !basis;
         alphas := alpha :: !alphas;
         incr iterations;
         let beta = Vec.norm2 w in
         if beta < 1e-13 then raise Exit;
         betas := beta :: !betas;
         Vec.scale_into w (1.0 /. beta);
         vprev := !vcur;
         vcur := w;
         beta_prev := beta;
         basis := Array.copy w :: !basis
       done
     with Exit -> ());
    let diag = Array.of_list (List.rev !alphas) in
    let off =
      let b = Array.of_list (List.rev !betas) in
      if Array.length b >= Array.length diag then
        Array.sub b 0 (max 0 (Array.length diag - 1))
      else b
    in
    let eigs = tridiagonal_eigenvalues ~diag ~off in
    let m = Array.length eigs in
    {
      largest = (if m > 0 then eigs.(m - 1) else 0.0);
      second = (if m > 1 then Some eigs.(m - 2) else None);
      iterations = !iterations;
    }
  end

let norm2_dense ?steps m =
  let gram x = Dense.tmv m (Dense.mv m x) in
  let r = symmetric ?steps ~dim:(Dense.cols m) gram in
  sqrt (Float.max 0.0 r.largest)

let norm2_sparse ?steps m =
  let gram x = Sparse.tmv m (Sparse.mv m x) in
  let r = symmetric ?steps ~dim:(Sparse.cols m) gram in
  sqrt (Float.max 0.0 r.largest)
