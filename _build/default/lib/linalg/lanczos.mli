(** Lanczos iteration for extremal eigenvalues of symmetric operators.

    Power iteration (in {!Spectral}) converges linearly with ratio
    [λ₂/λ₁]; the delay-matrix Gram operators often have clustered top
    eigenvalues (many identical vertex blocks), where Lanczos'
    Krylov-subspace view converges much faster and additionally exposes
    the spectral gap.  Used as a cross-check of {!Spectral} in the test
    suite and available to callers who need eigenvalue pairs. *)

(** Result of a Lanczos run. *)
type result = {
  largest : float;  (** top eigenvalue estimate *)
  second : float option;  (** second eigenvalue when the Krylov space saw one *)
  iterations : int;  (** Krylov dimension actually built *)
}

(** [symmetric ?steps ?seed ~dim apply] runs at most [steps] (default
    [min dim 64]) Lanczos steps on the symmetric operator
    [apply : v ↦ A·v] of dimension [dim], with full reorthogonalization
    (numerically safe at these sizes).  The eigenvalues of the resulting
    tridiagonal matrix are extracted by bisection.
    @raise Invalid_argument if [dim < 0]. *)
val symmetric :
  ?steps:int -> ?seed:int -> dim:int -> (Vec.t -> Vec.t) -> result

(** [norm2_dense ?steps m] is [‖m‖₂] via Lanczos on [mᵀm] — same value as
    {!Spectral.norm2_dense}, different algorithm. *)
val norm2_dense : ?steps:int -> Dense.t -> float

(** [norm2_sparse ?steps m] — sparse variant. *)
val norm2_sparse : ?steps:int -> Sparse.t -> float

(** [tridiagonal_eigenvalues ~diag ~off] returns all eigenvalues of the
    symmetric tridiagonal matrix with diagonal [diag] and off-diagonal
    [off] ([length off = length diag - 1]), ascending, by bisection with
    Sturm sequences.  Exposed for testing. *)
val tridiagonal_eigenvalues : diag:float array -> off:float array -> float array
