type t = float array
(* Invariant: no trailing zero coefficient except the canonical zero
   polynomial [|0.|]. *)

let trim c =
  let d = ref (Array.length c - 1) in
  while !d > 0 && c.(!d) = 0.0 do
    decr d
  done;
  Array.sub c 0 (!d + 1)

let of_coeffs c = if Array.length c = 0 then [| 0.0 |] else trim (Array.copy c)

let coeffs p = Array.copy p

let zero = [| 0.0 |]
let one = [| 1.0 |]
let x = [| 0.0; 1.0 |]

let degree p = if Array.length p = 1 && p.(0) = 0.0 then -1 else Array.length p - 1

let eval p v =
  let acc = ref 0.0 in
  for k = Array.length p - 1 downto 0 do
    acc := (!acc *. v) +. p.(k)
  done;
  !acc

let add p q =
  let n = max (Array.length p) (Array.length q) in
  let get c k = if k < Array.length c then c.(k) else 0.0 in
  trim (Array.init n (fun k -> get p k +. get q k))

let mul p q =
  if degree p = -1 || degree q = -1 then zero
  else begin
    let r = Array.make (Array.length p + Array.length q - 1) 0.0 in
    Array.iteri
      (fun i pi ->
        if pi <> 0.0 then
          Array.iteri (fun j qj -> r.(i + j) <- r.(i + j) +. (pi *. qj)) q)
      p;
    trim r
  end

let scale p c = trim (Array.map (fun v -> c *. v) p)

let monomial k c =
  if k < 0 then invalid_arg "Poly.monomial: negative degree";
  let r = Array.make (k + 1) 0.0 in
  r.(k) <- c;
  trim r

let equal ?(eps = 1e-12) p q =
  Array.length p = Array.length q
  && Array.for_all2 (fun a b -> Gossip_util.Numeric.approx_equal ~eps a b) p q

let pp ppf p =
  let first = ref true in
  Array.iteri
    (fun k c ->
      if c <> 0.0 || (k = 0 && degree p = -1) then begin
        if not !first then Format.fprintf ppf " + ";
        (match k with
        | 0 -> Format.fprintf ppf "%g" c
        | 1 -> if c = 1.0 then Format.fprintf ppf "X" else Format.fprintf ppf "%g X" c
        | _ ->
            if c = 1.0 then Format.fprintf ppf "X^%d" k
            else Format.fprintf ppf "%g X^%d" c k);
        first := false
      end)
    p;
  if !first then Format.fprintf ppf "0"

let delay i =
  if i < 1 then invalid_arg "Poly.delay: index must be >= 1";
  let r = Array.make ((2 * i) - 1) 0.0 in
  for j = 0 to i - 1 do
    r.(2 * j) <- 1.0
  done;
  trim r

let delay_eval i lambda =
  if i < 0 then invalid_arg "Poly.delay_eval: negative index";
  let l2 = lambda *. lambda in
  let acc = ref 0.0 and pow = ref 1.0 in
  for _ = 1 to i do
    acc := !acc +. !pow;
    pow := !pow *. l2
  done;
  !acc

let delay_eval_inf lambda =
  if lambda < 0.0 || lambda >= 1.0 then
    invalid_arg "Poly.delay_eval_inf: lambda must be in [0, 1)";
  1.0 /. (1.0 -. (lambda *. lambda))

let geometric lambda count =
  if count < 0 then invalid_arg "Poly.geometric: negative count";
  let acc = ref 0.0 and pow = ref lambda in
  for _ = 1 to count do
    acc := !acc +. !pow;
    pow := !pow *. lambda
  done;
  !acc
