(** Polynomials, and the paper's delay polynomials [p_i(λ)].

    Section 4 of the paper defines, for every integer [i > 0],
    [p_i(λ) = 1 + λ² + λ⁴ + ... + λ^(2i-2)]  ([i] terms), and proves two
    identities the whole bound rests on:

    - composition: [p_i(λ) + λ^(2i)·p_j(λ) = p_{i+j}(λ)];
    - unbalancing only helps the adversary: for [i ≥ j],
      [p_{i+1}(λ)·p_{j-1}(λ) < p_i(λ)·p_j(λ)], which is why the worst
      split of the period [s] is the balanced [⌈s/2⌉, ⌊s/2⌋].

    The generic polynomial type supports the algebra needed by the tests
    that re-check those identities symbolically. *)

type t
(** A polynomial with float coefficients, index = degree. *)

(** [of_coeffs c] has coefficient [c.(k)] for degree [k].  Trailing zeros
    are trimmed. *)
val of_coeffs : float array -> t

(** [coeffs p] is the (trimmed) coefficient array; [[|0.|]] for zero. *)
val coeffs : t -> float array

(** [zero], [one], [x] are the obvious constants. *)
val zero : t

val one : t
val x : t

(** [degree p] is the degree, [-1] for the zero polynomial. *)
val degree : t -> int

(** [eval p v] evaluates with Horner's scheme. *)
val eval : t -> float -> float

(** [add], [mul], [scale] are polynomial algebra. *)
val add : t -> t -> t

val mul : t -> t -> t
val scale : t -> float -> t

(** [monomial k c] is [c·X^k]. *)
val monomial : int -> float -> t

(** [equal ?eps p q] compares coefficientwise. *)
val equal : ?eps:float -> t -> t -> bool

(** [pp] prints in the usual [c0 + c1 X + ...] notation. *)
val pp : Format.formatter -> t -> unit

(** [delay i] is the paper's [p_i] as a polynomial:
    [1 + X² + ... + X^(2i-2)].
    @raise Invalid_argument if [i < 1]. *)
val delay : int -> t

(** [delay_eval i lambda] evaluates [p_i(λ)] directly in O(i) without
    building the polynomial; for [i = 0] it returns [0.] (empty sum), which
    is the natural extension used when one side of the period split is
    empty. *)
val delay_eval : int -> float -> float

(** [delay_eval_inf lambda] is [lim_{i→∞} p_i(λ) = 1/(1-λ²)] for
    [0 ≤ λ < 1], the value used by the non-systolic corollaries.
    @raise Invalid_argument if [λ] is outside [0, 1). *)
val delay_eval_inf : float -> float

(** [geometric lambda count] is [λ + λ² + ... + λ^count], the full-duplex
    bound function of Section 6 with [count = s - 1]. *)
val geometric : float -> int -> float
