type t = {
  rows : int;
  cols : int;
  row_ptr : int array; (* length rows + 1 *)
  col_idx : int array; (* length nnz, sorted within each row *)
  values : float array; (* length nnz *)
}

let rows m = m.rows
let cols m = m.cols
let nnz m = Array.length m.values

let of_triplets ~rows ~cols entries =
  if rows < 0 || cols < 0 then invalid_arg "Sparse.of_triplets: negative dims";
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg
          (Printf.sprintf "Sparse.of_triplets: entry (%d,%d) out of %dx%d" i j
             rows cols))
    entries;
  let entries =
    List.sort
      (fun (i1, j1, _) (i2, j2, _) -> compare (i1, j1) (i2, j2))
      entries
  in
  (* Merge duplicates, drop zeros. *)
  let merged = ref [] in
  List.iter
    (fun (i, j, v) ->
      match !merged with
      | (i', j', v') :: rest when i = i' && j = j' ->
          merged := (i, j, v +. v') :: rest
      | _ -> merged := (i, j, v) :: !merged)
    entries;
  let compact = List.filter (fun (_, _, v) -> v <> 0.0) (List.rev !merged) in
  let count = List.length compact in
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make count 0 in
  let values = Array.make count 0.0 in
  List.iteri
    (fun k (i, j, v) ->
      row_ptr.(i + 1) <- row_ptr.(i + 1) + 1;
      col_idx.(k) <- j;
      values.(k) <- v)
    compact;
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  { rows; cols; row_ptr; col_idx; values }

let of_dense d =
  let entries = ref [] in
  for i = Dense.rows d - 1 downto 0 do
    for j = Dense.cols d - 1 downto 0 do
      let v = Dense.get d i j in
      if v <> 0.0 then entries := (i, j, v) :: !entries
    done
  done;
  of_triplets ~rows:(Dense.rows d) ~cols:(Dense.cols d) !entries

let to_dense m =
  let d = Dense.create m.rows m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      Dense.set d i m.col_idx.(k) m.values.(k)
    done
  done;
  d

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Sparse.get: index out of bounds";
  let lo = ref m.row_ptr.(i) and hi = ref (m.row_ptr.(i + 1) - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = m.col_idx.(mid) in
    if c = j then begin
      result := m.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let mv m x =
  if Array.length x <> m.cols then invalid_arg "Sparse.mv: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
      done;
      !acc)

let tmv m x =
  if Array.length x <> m.rows then invalid_arg "Sparse.tmv: dimension mismatch";
  let y = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        let j = m.col_idx.(k) in
        y.(j) <- y.(j) +. (m.values.(k) *. xi)
      done
  done;
  y

let iter f m =
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      f i m.col_idx.(k) m.values.(k)
    done
  done

let transpose m =
  let entries = ref [] in
  iter (fun i j v -> entries := (j, i, v) :: !entries) m;
  of_triplets ~rows:m.cols ~cols:m.rows !entries

let scale m c = { m with values = Array.map (fun v -> c *. v) m.values }

let map_values f m = { m with values = Array.map f m.values }

let row_nnz m i =
  if i < 0 || i >= m.rows then invalid_arg "Sparse.row_nnz: row out of bounds";
  m.row_ptr.(i + 1) - m.row_ptr.(i)

let max_row_nnz m =
  let best = ref 0 in
  for i = 0 to m.rows - 1 do
    best := max !best (row_nnz m i)
  done;
  !best

let nonneg m = Array.for_all (fun v -> v >= 0.0) m.values
