(** Sparse matrices in compressed-sparse-row form.

    The global delay matrix [M(λ)] of Definition 3.4 has one row and one
    column per arc activation of the protocol — up to [t·n/2] of them — but
    each row holds at most [s - 1] nonzeros (the delays within one systolic
    period), so CSR with matrix-vector products is the natural
    representation for the power iterations that evaluate [‖M(λ)‖]. *)

type t

(** [of_triplets ~rows ~cols entries] builds the matrix from
    [(row, col, value)] triplets.  Duplicate positions are summed; zero
    values are dropped.
    @raise Invalid_argument on out-of-range indices or negative dims. *)
val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t

(** [of_dense m] converts, dropping exact zeros. *)
val of_dense : Dense.t -> t

(** [to_dense m] materializes the full matrix. *)
val to_dense : t -> Dense.t

(** [rows m], [cols m] are the dimensions, [nnz m] the stored entries. *)
val rows : t -> int

val cols : t -> int
val nnz : t -> int

(** [get m i j] is entry [(i, j)] (logarithmic in the row's nnz). *)
val get : t -> int -> int -> float

(** [mv m x] is [m·x]. *)
val mv : t -> Vec.t -> Vec.t

(** [tmv m x] is [mᵀ·x]. *)
val tmv : t -> Vec.t -> Vec.t

(** [transpose m] is a fresh CSR transpose. *)
val transpose : t -> t

(** [scale m c] multiplies all values by [c]. *)
val scale : t -> float -> t

(** [map_values f m] applies [f] to every stored value (zeros produced by
    [f] are kept stored; use {!of_triplets} to re-compact). *)
val map_values : (float -> float) -> t -> t

(** [iter f m] applies [f row col value] to every stored entry. *)
val iter : (int -> int -> float -> unit) -> t -> unit

(** [row_nnz m i] is the number of stored entries in row [i]. *)
val row_nnz : t -> int -> int

(** [max_row_nnz m] is the largest row population — bounded by [s - 1] for
    delay matrices of s-systolic protocols. *)
val max_row_nnz : t -> int

(** [nonneg m] is [true] iff all stored values are [>= 0]. *)
val nonneg : t -> bool
