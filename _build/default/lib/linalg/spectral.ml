type options = { tol : float; max_iter : int; seed : int }

let default_options = { tol = 1e-12; max_iter = 10_000; seed = 42 }

(* Deterministic strictly positive start vector: a positive start is
   mandatory for Perron-Frobenius convergence on non-negative matrices and
   harmless for Gram operators. *)
let start_vector options n =
  let rng = Gossip_util.Prng.create options.seed in
  let v = Array.init n (fun _ -> 0.5 +. Gossip_util.Prng.float rng 1.0) in
  ignore (Vec.normalize v);
  v

(* Power iteration for a symmetric positive semidefinite operator; returns
   the dominant eigenvalue. The Rayleigh quotient of a PSD operator
   increases monotonically along the iteration, so the stopping rule on
   its relative change is sound. *)
let dominant_eig_psd options apply n =
  if n = 0 then 0.0
  else begin
    let x = ref (start_vector options n) in
    let eig = ref 0.0 in
    (try
       for _ = 1 to options.max_iter do
         let y = apply !x in
         let ny = Vec.norm2 y in
         if ny = 0.0 then begin
           eig := 0.0;
           raise Exit
         end;
         Vec.scale_into y (1.0 /. ny);
         let rayleigh = Vec.dot y (apply y) in
         if
           Float.abs (rayleigh -. !eig)
           <= options.tol *. Float.max 1.0 (Float.abs rayleigh)
         then begin
           eig := rayleigh;
           raise Exit
         end;
         eig := rayleigh;
         x := y
       done
     with Exit -> ());
    Float.max 0.0 !eig
  end

let norm2_of_ops ?(options = default_options) ~rows ~cols ~mv ~tmv () =
  if rows = 0 || cols = 0 then 0.0
  else
    let gram_apply x = tmv (mv x) in
    sqrt (dominant_eig_psd options gram_apply cols)

let norm2_dense ?(options = default_options) m =
  norm2_of_ops ~options ~rows:(Dense.rows m) ~cols:(Dense.cols m)
    ~mv:(Dense.mv m) ~tmv:(Dense.tmv m) ()

let norm2_sparse ?(options = default_options) m =
  norm2_of_ops ~options ~rows:(Sparse.rows m) ~cols:(Sparse.cols m)
    ~mv:(Sparse.mv m) ~tmv:(Sparse.tmv m) ()

let spectral_radius_nonneg ?(options = default_options) m =
  if Dense.rows m <> Dense.cols m then
    invalid_arg "Spectral.spectral_radius_nonneg: matrix not square";
  if not (Dense.nonneg m) then
    invalid_arg "Spectral.spectral_radius_nonneg: negative entry";
  let n = Dense.rows m in
  if n = 0 then 0.0
  else begin
    (* ρ(M) = sqrt(ρ(M²ᵀM²))^(1/2)-style tricks are unreliable for
       non-normal M; instead we use the fact that for non-negative M,
       ρ(M) = lim ‖M^k x‖ / ‖M^(k-1) x‖ for positive x, and that the
       iteration below stabilizes on that ratio. *)
    let x = ref (start_vector options n) in
    let estimate = ref 0.0 in
    (try
       for _ = 1 to options.max_iter do
         let y = Dense.mv m !x in
         let ny = Vec.norm2 y in
         if ny = 0.0 then begin
           estimate := 0.0;
           raise Exit
         end;
         Vec.scale_into y (1.0 /. ny);
         if
           Float.abs (ny -. !estimate)
           <= options.tol *. Float.max 1.0 (Float.abs ny)
         then begin
           estimate := ny;
           raise Exit
         end;
         estimate := ny;
         x := y
       done
     with Exit -> ());
    !estimate
  end

let collatz_wielandt_bounds m x =
  if Dense.rows m <> Dense.cols m then
    invalid_arg "Spectral.collatz_wielandt_bounds: matrix not square";
  if Array.exists (fun v -> v <= 0.0) x then
    invalid_arg "Spectral.collatz_wielandt_bounds: vector not positive";
  let y = Dense.mv m x in
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iteri
    (fun i yi ->
      let r = yi /. x.(i) in
      if r < !lo then lo := r;
      if r > !hi then hi := r)
    y;
  (!lo, !hi)

let is_semi_eigenvector ?(eps = 1e-9) m x e =
  Array.length x = Dense.cols m
  && Dense.rows m = Dense.cols m
  &&
  let y = Dense.mv m x in
  Array.for_all2
    (fun yi xi -> yi <= (e *. xi) +. (eps *. Float.max 1.0 (Float.abs (e *. xi))))
    y x
