(** Spectral radius and Euclidean matrix norm via power iteration.

    The paper's whole machinery funnels into two numeric quantities:
    [‖M‖₂ = sqrt(ρ(MᵀM))] for the delay matrix and its local blocks, and
    [ρ(Ox(λ)Nx(λ))] for the reduced matrices (Lemmas 2.1, 2.2, 4.3).  We
    evaluate both by power iteration: on the symmetric positive
    semidefinite Gram operator for the norm, and directly — with a
    strictly positive start vector, valid for non-negative matrices by
    Perron–Frobenius — for the spectral radius. *)

(** Convergence parameters. [tol] is the relative change of the eigenvalue
    estimate between sweeps; [max_iter] caps the sweeps. *)
type options = { tol : float; max_iter : int; seed : int }

(** [default_options] is [{ tol = 1e-12; max_iter = 10_000; seed = 42 }]. *)
val default_options : options

(** [norm2_dense ?options m] is the Euclidean (spectral) norm of [m]. *)
val norm2_dense : ?options:options -> Dense.t -> float

(** [norm2_sparse ?options m] is the Euclidean norm of a sparse matrix,
    computed without densifying. *)
val norm2_sparse : ?options:options -> Sparse.t -> float

(** [norm2_of_ops ?options ~rows ~cols ~mv ~tmv ()] is the Euclidean norm
    of the linear operator given by matrix-vector products with the matrix
    and its transpose. *)
val norm2_of_ops :
  ?options:options ->
  rows:int ->
  cols:int ->
  mv:(Vec.t -> Vec.t) ->
  tmv:(Vec.t -> Vec.t) ->
  unit ->
  float

(** [spectral_radius_nonneg ?options m] estimates [ρ(m)] for a square
    matrix with non-negative entries (power iteration from a positive
    vector).
    @raise Invalid_argument if [m] is not square or has a negative
    entry. *)
val spectral_radius_nonneg : ?options:options -> Dense.t -> float

(** [collatz_wielandt_bounds m x] is [(min_i (Mx)_i/x_i, max_i (Mx)_i/x_i)]
    for a strictly positive [x]: by Collatz–Wielandt both bracket [ρ(m)]
    for non-negative [m].  This is the finite-precision face of the
    paper's Lemma 2.1: a positive semi-eigenvector with semi-eigenvalue
    [e] certifies [ρ(m) ≤ e].
    @raise Invalid_argument if some [x_i ≤ 0]. *)
val collatz_wielandt_bounds : Dense.t -> Vec.t -> float * float

(** [is_semi_eigenvector ?eps m x e] checks Definition 2.2:
    [M·x ≤ e·x] componentwise (within [eps]). *)
val is_semi_eigenvector : ?eps:float -> Dense.t -> Vec.t -> float -> bool
