type t = float array

let create n x = Array.make n x

let init = Array.init

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (name ^ ": dimension mismatch")

let dot a b =
  check_dims "Vec.dot" a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm1 a = Array.fold_left (fun acc x -> acc +. Float.abs x) 0.0 a

let norm_inf a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 a

let scale a c = Array.map (fun x -> c *. x) a

let scale_into a c =
  for i = 0 to Array.length a - 1 do
    a.(i) <- c *. a.(i)
  done

let add a b =
  check_dims "Vec.add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims "Vec.sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let axpy ~alpha x y =
  check_dims "Vec.axpy" x y;
  for i = 0 to Array.length y - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let normalize a =
  let n = norm2 a in
  if n > 0.0 then scale_into a (1.0 /. n);
  n

let concat vs = Array.concat vs

let lambda_profile n lambda = Array.init n (fun i -> lambda ** float_of_int i)

let equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Gossip_util.Numeric.approx_equal ~eps x y) a b

let pp ppf a =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf x -> Format.fprintf ppf "%.4f" x))
    (Array.to_list a)
