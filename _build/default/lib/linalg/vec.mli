(** Dense float vectors.

    The delay-matrix machinery of the paper manipulates vectors in three
    places: the semi-eigenvector [e] of Lemma 4.2, the profile vectors
    [Λ0_i = (1, λ, ..., λ^(i-1))ᵀ] of Section 4, and the iterates of the
    power method used to evaluate spectral radii.  Vectors are plain
    [float array]s; this module gathers the operations we need with
    explicit, allocation-conscious signatures. *)

type t = float array

(** [create n x] is a vector of [n] copies of [x]. *)
val create : int -> float -> t

(** [init n f] is [| f 0; ...; f (n-1) |]. *)
val init : int -> (int -> float) -> t

(** [dot a b] is the inner product.
    @raise Invalid_argument on dimension mismatch. *)
val dot : t -> t -> float

(** [norm2 a] is the Euclidean norm. *)
val norm2 : t -> float

(** [norm1 a] is the sum of absolute values. *)
val norm1 : t -> float

(** [norm_inf a] is the largest absolute component. *)
val norm_inf : t -> float

(** [scale a c] is a fresh [c·a]. *)
val scale : t -> float -> t

(** [scale_into a c] rescales [a] in place. *)
val scale_into : t -> float -> unit

(** [add a b] is a fresh [a + b]. *)
val add : t -> t -> t

(** [sub a b] is a fresh [a - b]. *)
val sub : t -> t -> t

(** [axpy ~alpha x y] updates [y <- alpha·x + y] in place. *)
val axpy : alpha:float -> t -> t -> unit

(** [normalize a] rescales [a] in place to unit Euclidean norm and returns
    the previous norm; a zero vector is left untouched and [0.] returned. *)
val normalize : t -> float

(** [concat vs] is the vertical concatenation, written [x◦y] in Section 4
    of the paper. *)
val concat : t list -> t

(** [lambda_profile n lambda] is the paper's [Λ0_n] vector
    [(1, λ, λ², ..., λ^(n-1))ᵀ]. *)
val lambda_profile : int -> float -> t

(** [equal ?eps a b] is componentwise approximate equality. *)
val equal : ?eps:float -> t -> t -> bool

(** [pp] prints as [[x1; x2; ...]] with 4 decimals. *)
val pp : Format.formatter -> t -> unit
