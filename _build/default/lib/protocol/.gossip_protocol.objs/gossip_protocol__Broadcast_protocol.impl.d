lib/protocol/broadcast_protocol.ml: Array Gossip_topology List Protocol Systolic
