lib/protocol/broadcast_protocol.mli: Gossip_topology Protocol Systolic
