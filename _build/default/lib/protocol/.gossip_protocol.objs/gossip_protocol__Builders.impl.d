lib/protocol/builders.ml: Array Fun Gossip_topology Gossip_util Hashtbl List Protocol Systolic
