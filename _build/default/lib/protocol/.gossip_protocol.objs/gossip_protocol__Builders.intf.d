lib/protocol/builders.mli: Gossip_topology Protocol Systolic
