lib/protocol/protocol.ml: Array Format Gossip_topology Hashtbl List Printf
