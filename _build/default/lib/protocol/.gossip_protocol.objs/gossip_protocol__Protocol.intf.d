lib/protocol/protocol.mli: Format Gossip_topology
