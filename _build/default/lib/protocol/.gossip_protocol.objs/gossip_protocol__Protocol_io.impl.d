lib/protocol/protocol_io.ml: Buffer Fun Gossip_topology List Printf Protocol String Systolic
