lib/protocol/protocol_io.mli: Systolic
