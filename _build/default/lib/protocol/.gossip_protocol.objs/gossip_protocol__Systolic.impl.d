lib/protocol/systolic.ml: Array Format List Protocol
