lib/protocol/systolic.mli: Format Gossip_topology Protocol
