module Digraph = Gossip_topology.Digraph

let greedy_schedule g ~src ~mode =
  let n = Digraph.n_vertices g in
  if src < 0 || src >= n then
    invalid_arg "Broadcast_protocol.greedy_schedule: src out of range";
  let informed = Array.make n false in
  informed.(src) <- true;
  let informed_count = ref 1 in
  let rounds = ref [] in
  let progress = ref true in
  while !informed_count < n && !progress do
    (* one round: match informed senders to uninformed receivers,
       preferring receivers with many uninformed out-neighbours (they
       amplify next round) — a cheap greedy heuristic *)
    let busy = Array.make n false in
    let round = ref [] in
    let receivers_of u =
      Array.to_list
        (Array.of_list
           (List.filter
              (fun v -> (not informed.(v)) && not busy.(v))
              (Array.to_list (Digraph.out_neighbors g u))))
    in
    let score v =
      Array.fold_left
        (fun acc w -> if informed.(w) then acc else acc + 1)
        0 (Digraph.out_neighbors g v)
    in
    for u = 0 to n - 1 do
      if informed.(u) && not busy.(u) then begin
        match receivers_of u with
        | [] -> ()
        | candidates ->
            let v =
              List.fold_left
                (fun best v ->
                  match best with
                  | None -> Some v
                  | Some b -> if score v > score b then Some v else best)
                None candidates
            in
            (match v with
            | Some v ->
                busy.(u) <- true;
                busy.(v) <- true;
                round := (u, v) :: !round
            | None -> ())
      end
    done;
    if !round = [] then progress := false
    else begin
      List.iter
        (fun (_, v) ->
          informed.(v) <- true;
          incr informed_count)
        !round;
      rounds := List.rev !round :: !rounds
    end
  done;
  Protocol.make g mode (List.rev !rounds)

let systolized g ~src ~mode =
  Systolic.of_protocol (greedy_schedule g ~src ~mode)
