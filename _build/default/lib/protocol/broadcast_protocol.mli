(** Broadcast protocols (one-to-all dissemination).

    The paper leans on broadcasting twice: its lower bounds are compared
    against the broadcasting constants of [22,2], and [8] observed that
    — unlike gossiping — "broadcasting strategies can be systolized at no
    cost".  This module builds concrete broadcast protocols:

    - {!greedy_schedule}: the classical greedy broadcast — each round,
      match informed vertices to uninformed neighbours (a matching, so it
      is a valid whispering round) until everyone is informed.  On many
      networks this is within a small factor of the optimum
      [max(⌈log₂ n⌉, eccentricity)].
    - {!systolized}: wrap the finite schedule as a systolic protocol
      whose period is the whole schedule — broadcast completes within the
      first period, so the systolization is indeed free, which the tests
      verify against {!greedy_schedule}'s round count. *)

(** [greedy_schedule g ~src ~mode] — a finite protocol broadcasting
    [src]'s item.  In full-duplex mode rounds are reversal-closed like
    everywhere else; informativeness only uses the forward direction.
    @raise Invalid_argument if [src] is out of range, or (in half-/full-
    duplex modes) [g] is not symmetric; returns a protocol that fails to
    reach unreachable vertices only if [g] is not strongly connected. *)
val greedy_schedule :
  Gossip_topology.Digraph.t ->
  src:int ->
  mode:Protocol.mode ->
  Protocol.t

(** [systolized g ~src ~mode] is [greedy_schedule] packaged as an
    s-systolic protocol with [s] = schedule length. *)
val systolized :
  Gossip_topology.Digraph.t ->
  src:int ->
  mode:Protocol.mode ->
  Systolic.t
