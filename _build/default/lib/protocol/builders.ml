module Digraph = Gossip_topology.Digraph
module Families = Gossip_topology.Families
module Coloring = Gossip_topology.Coloring

let forward classes = List.map (fun cls -> List.map (fun (u, v) -> (u, v)) cls) classes

let backward classes = List.map (fun cls -> List.map (fun (u, v) -> (v, u)) cls) classes

let edge_coloring_half_duplex g =
  let classes = Coloring.best g in
  Systolic.make g Protocol.Half_duplex (forward classes @ backward classes)

let edge_coloring_full_duplex g =
  let classes = Coloring.best g in
  Systolic.make g Protocol.Full_duplex (forward classes)

let hypercube_rounds ~dim ~full_duplex =
  let rounds = ref [] in
  for k = dim - 1 downto 0 do
    let bit = 1 lsl k in
    let lows = List.init (1 lsl dim) (fun v -> v) in
    let pairs = List.filter (fun v -> v land bit = 0) lows in
    let fwd = List.map (fun v -> (v, v lxor bit)) pairs in
    if full_duplex then rounds := fwd :: !rounds
    else begin
      let bwd = List.map (fun v -> (v lxor bit, v)) pairs in
      rounds := fwd :: bwd :: !rounds
    end
  done;
  !rounds

let hypercube_sweep ~dim ~full_duplex =
  let g = Families.hypercube dim in
  let mode = if full_duplex then Protocol.Full_duplex else Protocol.Half_duplex in
  Systolic.make g mode (hypercube_rounds ~dim ~full_duplex)

let complete_doubling ~dim ~full_duplex =
  let g = Families.complete (1 lsl dim) in
  let mode = if full_duplex then Protocol.Full_duplex else Protocol.Half_duplex in
  Systolic.make g mode (hypercube_rounds ~dim ~full_duplex)

let path_wave n =
  let g = Families.path n in
  let edges parity = List.filter (fun i -> i mod 2 = parity) (List.init (n - 1) Fun.id) in
  let fwd parity = List.map (fun i -> (i, i + 1)) (edges parity) in
  let bwd parity = List.map (fun i -> (i + 1, i)) (edges parity) in
  Systolic.make g Protocol.Half_duplex [ fwd 0; fwd 1; bwd 0; bwd 1 ]

let cycle_rotate n =
  if n mod 2 <> 0 then invalid_arg "Builders.cycle_rotate: n must be even";
  let g = Families.cycle n in
  let matching parity =
    List.filter_map
      (fun i -> if i mod 2 = parity then Some (i, (i + 1) mod n) else None)
      (List.init n Fun.id)
  in
  let rev = List.map (fun (u, v) -> (v, u)) in
  let m0 = matching 0 and m1 = matching 1 in
  Systolic.make g Protocol.Half_duplex [ m0; m1; rev m0; rev m1 ]

let random_round rng g mode density =
  let busy = Hashtbl.create 64 in
  let free v = not (Hashtbl.mem busy v) in
  let take u v =
    Hashtbl.replace busy u ();
    Hashtbl.replace busy v ()
  in
  match mode with
  | Protocol.Full_duplex ->
      let edges = Array.of_list (Digraph.undirected_edges g) in
      Gossip_util.Prng.shuffle rng edges;
      let budget =
        int_of_float (ceil (density *. float_of_int (Array.length edges)))
      in
      let picked = ref [] and count = ref 0 in
      Array.iter
        (fun (u, v) ->
          if !count < budget && free u && free v then begin
            take u v;
            picked := (u, v) :: !picked;
            incr count
          end)
        edges;
      !picked
  | Protocol.Directed | Protocol.Half_duplex ->
      let arcs = Array.of_list (Digraph.arcs g) in
      Gossip_util.Prng.shuffle rng arcs;
      let budget =
        int_of_float (ceil (density *. float_of_int (Array.length arcs) /. 2.0))
      in
      let picked = ref [] and count = ref 0 in
      Array.iter
        (fun (u, v) ->
          if !count < budget && free u && free v then begin
            take u v;
            picked := (u, v) :: !picked;
            incr count
          end)
        arcs;
      !picked

let random_systolic g mode ~period ~seed ~density =
  if period < 1 then invalid_arg "Builders.random_systolic: period must be >= 1";
  if density < 0.0 || density > 1.0 then
    invalid_arg "Builders.random_systolic: density must be in [0, 1]";
  let rng = Gossip_util.Prng.create seed in
  let rounds = List.init period (fun _ -> random_round rng g mode density) in
  Systolic.make g mode rounds

let tree_updown ~d ~depth =
  let g = Families.complete_dary_tree d depth in
  let n = Digraph.n_vertices g in
  (* vertices are level-ordered: children of i are d·i + 1 .. d·i + d *)
  let level v =
    let rec go v acc = if v = 0 then acc else go ((v - 1) / d) (acc + 1) in
    go v 0
  in
  let class_edges k j =
    (* parent at level k, its j-th child (1-based j) *)
    List.filter_map
      (fun p ->
        if level p = k && (d * p) + j < n then Some (p, (d * p) + j) else None)
      (List.init n Fun.id)
  in
  let up = ref [] and down = ref [] in
  for k = depth - 1 downto 0 do
    for j = 1 to d do
      let edges = class_edges k j in
      if edges <> [] then begin
        up := List.map (fun (p, c) -> (c, p)) edges :: !up;
        down := List.map (fun (p, c) -> (p, c)) edges :: !down
      end
    done
  done;
  (* up sweeps deepest-first (they were pushed in k-descending order, so
     reverse the accumulated list), down sweeps shallowest-first *)
  Systolic.make g Protocol.Half_duplex (List.rev !up @ !down)

let grid_rowcol ~rows ~cols =
  let g = Families.grid rows cols in
  let idx r c = (r * cols) + c in
  let row_edges parity =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun c ->
            if c mod 2 = parity && c + 1 < cols then Some (idx r c, idx r (c + 1))
            else None)
          (List.init cols Fun.id))
      (List.init rows Fun.id)
  in
  let col_edges parity =
    List.concat_map
      (fun c ->
        List.filter_map
          (fun r ->
            if r mod 2 = parity && r + 1 < rows then Some (idx r c, idx (r + 1) c)
            else None)
          (List.init rows Fun.id))
      (List.init cols Fun.id)
  in
  let rev = List.map (fun (u, v) -> (v, u)) in
  let re = row_edges 0 and ro = row_edges 1 in
  let ce = col_edges 0 and co = col_edges 1 in
  Systolic.make g Protocol.Half_duplex
    [ re; ro; rev re; rev ro; ce; co; rev ce; rev co ]

let knoedel_sweep ~delta ~n =
  let g = Gossip_topology.Extra_families.knoedel ~delta ~n in
  let half = n / 2 in
  let round k =
    List.init half (fun j -> (j, half + ((j + (1 lsl k) - 1) mod half)))
  in
  Systolic.make g Protocol.Full_duplex (List.init delta round)
