(** Ready-made gossip protocols.

    These play the role of the cited upper-bound constructions
    ([8,11,14,20,24,25]): concrete, verifiable protocols whose measured
    gossip times sandwich the lower bounds in the benchmark tables.  None
    of them claims optimality — the reproduction only needs valid upper
    bounds of the right shape. *)

(** [edge_coloring_half_duplex g] — color the edges (best of greedy and
    Misra-Gries, at most Δ+1 classes), then cycle
    through the color classes sending "forward" (lower index to higher)
    for one sweep and "backward" for the next: an s-systolic half-duplex
    protocol with [s = 2·colors].  Works on any symmetric digraph. *)
val edge_coloring_half_duplex : Gossip_topology.Digraph.t -> Systolic.t

(** [edge_coloring_full_duplex g] — one full-duplex round per color class;
    [s = colors].  This is Liestman–Richards periodic gossiping. *)
val edge_coloring_full_duplex : Gossip_topology.Digraph.t -> Systolic.t

(** [hypercube_sweep ~dim ~full_duplex] — dimension-order allgather on
    [Q(dim)]: in full-duplex mode one exchange round per dimension
    (gossip in exactly [dim = log n] rounds, optimal); in half-duplex two
    rounds per dimension. *)
val hypercube_sweep : dim:int -> full_duplex:bool -> Systolic.t

(** [complete_doubling ~dim ~full_duplex] — the same recursive-doubling
    pattern run on the complete graph [K(2^dim)] (items always fit the
    hypercube sub-edges of [K_n]). *)
val complete_doubling : dim:int -> full_duplex:bool -> Systolic.t

(** [path_wave n] — the period-4 half-duplex protocol on the path
    [P(n)]: even edges forward, odd edges forward, even backward, odd
    backward. Gossip completes in [2n + O(1)] rounds. *)
val path_wave : int -> Systolic.t

(** [cycle_rotate n] — half-duplex protocol on the cycle [C(n)] ([n]
    even): alternate the two perfect matchings, reversing direction every
    other sweep ([s = 4]); items travel one direction at one edge per two
    rounds.
    @raise Invalid_argument if [n] is odd (use {!edge_coloring_half_duplex}
    then). *)
val cycle_rotate : int -> Systolic.t

(** [random_systolic g mode ~period ~seed ~density] — a valid random
    [s]-systolic protocol: every round is a random matching for the mode
    containing roughly [density · max_matching] arcs (density in [0, 1]).
    The workhorse of the property-based tests. *)
val random_systolic :
  Gossip_topology.Digraph.t ->
  Protocol.mode ->
  period:int ->
  seed:int ->
  density:float ->
  Systolic.t

(** [tree_updown ~d ~depth] — gather-then-scatter on the complete d-ary
    tree: the period sweeps each (level, child-index) matching upward from
    the deepest level, then downward; [s = 2·d·depth] and one period
    completes gossip. *)
val tree_updown : d:int -> depth:int -> Systolic.t

(** [grid_rowcol ~rows ~cols] — period-8 half-duplex protocol on the
    mesh: wave along rows (even edges, odd edges, then reversed), then
    along columns; items zigzag towards every corner. *)
val grid_rowcol : rows:int -> cols:int -> Systolic.t

(** [knoedel_sweep ~delta ~n] — the classical Knödel gossip protocol on
    [W_{Δ,n}]: full-duplex round [k] exchanges along all edges of offset
    [2^k - 1] simultaneously (a perfect matching); period [Δ]. *)
val knoedel_sweep : delta:int -> n:int -> Systolic.t
