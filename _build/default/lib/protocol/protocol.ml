module Digraph = Gossip_topology.Digraph

type mode = Directed | Half_duplex | Full_duplex

type round = (int * int) list

type t = { graph : Digraph.t; mode : mode; rounds : round array }

let mode_to_string = function
  | Directed -> "directed"
  | Half_duplex -> "half-duplex"
  | Full_duplex -> "full-duplex"

let is_matching_for mode round =
  (* Invariant: if (v, u) is accepted, then u and v are touched only by
     (v, u) (and later possibly (u, v)) — so in full-duplex mode a busy
     endpoint is acceptable exactly when the opposite arc is present. *)
  let arcs = Hashtbl.create 16 in
  let busy = Hashtbl.create 16 in
  List.for_all
    (fun (u, v) ->
      if u = v then false
      else if Hashtbl.mem arcs (u, v) then false (* duplicate arc *)
      else begin
        let endpoint_busy = Hashtbl.mem busy u || Hashtbl.mem busy v in
        let ok =
          match mode with
          | Directed | Half_duplex -> not endpoint_busy
          | Full_duplex -> (not endpoint_busy) || Hashtbl.mem arcs (v, u)
        in
        if ok then begin
          Hashtbl.replace arcs (u, v) ();
          Hashtbl.replace busy u ();
          Hashtbl.replace busy v ()
        end;
        ok
      end)
    round

let close_full_duplex round =
  let set = Hashtbl.create 16 in
  List.iter (fun (u, v) -> Hashtbl.replace set (u, v) ()) round;
  List.iter (fun (u, v) -> Hashtbl.replace set (v, u) ()) round;
  List.sort compare (Hashtbl.fold (fun arc () acc -> arc :: acc) set [])

let make g mode rounds =
  (match mode with
  | Half_duplex | Full_duplex ->
      if not (Digraph.is_symmetric g) then
        invalid_arg
          (Printf.sprintf
             "Protocol.make: %s mode requires a symmetric digraph (%s)"
             (mode_to_string mode) (Digraph.name g))
  | Directed -> ());
  let rounds =
    match mode with
    | Full_duplex -> List.map close_full_duplex rounds
    | Directed | Half_duplex -> rounds
  in
  List.iteri
    (fun i round ->
      List.iter
        (fun (u, v) ->
          if not (Digraph.mem_arc g u v) then
            invalid_arg
              (Printf.sprintf "Protocol.make: round %d uses missing arc (%d,%d)"
                 i u v))
        round;
      if not (is_matching_for mode round) then
        invalid_arg
          (Printf.sprintf "Protocol.make: round %d is not a %s matching" i
             (mode_to_string mode)))
    rounds;
  { graph = g; mode; rounds = Array.of_list rounds }

let graph p = p.graph
let mode p = p.mode
let length p = Array.length p.rounds

let round p i =
  if i < 0 || i >= length p then invalid_arg "Protocol.round: out of range";
  p.rounds.(i)

let rounds p = Array.to_list p.rounds

let truncate p t =
  if t < 0 || t > length p then invalid_arg "Protocol.truncate: bad length";
  { p with rounds = Array.sub p.rounds 0 t }

let append a b =
  if Digraph.name a.graph <> Digraph.name b.graph
     || Digraph.n_vertices a.graph <> Digraph.n_vertices b.graph
  then invalid_arg "Protocol.append: different graphs";
  if a.mode <> b.mode then invalid_arg "Protocol.append: different modes";
  { a with rounds = Array.append a.rounds b.rounds }

let arc_activations p =
  Array.fold_left (fun acc r -> acc + List.length r) 0 p.rounds

let active_rounds p v =
  Array.fold_left
    (fun acc r ->
      if List.exists (fun (u, w) -> u = v || w = v) r then acc + 1 else acc)
    0 p.rounds

let pp ppf p =
  Format.fprintf ppf "%s protocol on %s, %d rounds@\n" (mode_to_string p.mode)
    (Digraph.name p.graph) (length p);
  Array.iteri
    (fun i r ->
      Format.fprintf ppf "  round %d: %a@\n" (i + 1)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
           (fun ppf (u, v) -> Format.fprintf ppf "%d->%d" u v))
        r)
    p.rounds

let time_reversal p =
  let g = if Digraph.is_symmetric p.graph then p.graph else Digraph.reverse p.graph in
  let flipped =
    Array.to_list
      (Array.map (List.map (fun (u, v) -> (v, u))) p.rounds)
  in
  make g p.mode (List.rev flipped)
