(** Gossip protocols (Definition 3.1) and communication modes.

    A gossip protocol of length [t] for a digraph [G = (V, A)] is a
    sequence [⟨A_1, ..., A_t⟩] of arc subsets such that each [A_i] is a
    matching (no two arcs share an endpoint) and every ordered vertex pair
    is connected by a path activated in increasing rounds.  The first
    condition is structural and checked here; the second is semantic and
    checked by running the {!Gossip_simulate} engine.

    Modes:
    - [Directed]: the network is an arbitrary digraph; active arcs form a
      matching.
    - [Half_duplex]: the network is symmetric (undirected); each active
      link transmits one way per round; active arcs form a matching.
    - [Full_duplex]: the network is symmetric; links transmit both ways,
      i.e. any two active arcs either share no endpoint or are opposite.
      Rounds are canonicalized to contain both directions of every active
      edge. *)

type mode = Directed | Half_duplex | Full_duplex

(** A round is the list of active arcs [(sender, receiver)]. *)
type round = (int * int) list

type t

(** [make g mode rounds] validates and packages a protocol.
    In [Half_duplex] and [Full_duplex] modes [g] must be symmetric; in
    [Full_duplex] each round is closed under arc reversal automatically.
    @raise Invalid_argument when an arc is absent from [g], a round is
    not a matching for the mode, or the mode does not fit [g]. *)
val make : Gossip_topology.Digraph.t -> mode -> round list -> t

(** [graph p], [mode p], [length p] are the components. *)
val graph : t -> Gossip_topology.Digraph.t

val mode : t -> mode

(** [length p] is the number of rounds [t]. *)
val length : t -> int

(** [round p i] is the [i]-th round, [0 ≤ i < length p] (note: the paper
    numbers rounds from 1; we use 0-based indices).
    @raise Invalid_argument when out of range. *)
val round : t -> int -> round

(** [rounds p] lists all rounds in order. *)
val rounds : t -> round list

(** [truncate p t] keeps only the first [t] rounds.
    @raise Invalid_argument if [t < 0] or [t > length p]. *)
val truncate : t -> int -> t

(** [append a b] concatenates two protocols over the same graph and mode.
    @raise Invalid_argument on mismatched graphs or modes. *)
val append : t -> t -> t

(** [is_matching_for mode round] checks the structural condition of the
    given mode on one round (endpoint-disjointness, opposite arcs allowed
    only in full-duplex). *)
val is_matching_for : mode -> round -> bool

(** [arc_activations p] is the total number of arc activations; in
    full-duplex mode opposite pairs count as two. *)
val arc_activations : t -> int

(** [active_rounds p v] is the number of rounds in which vertex [v] is an
    endpoint of an active arc. *)
val active_rounds : t -> int -> int

(** [pp] prints a summary with one line per round. *)
val pp : Format.formatter -> t -> unit

(** [mode_to_string m] is ["directed"], ["half-duplex"] or
    ["full-duplex"]. *)
val mode_to_string : mode -> string

(** [time_reversal p] is the protocol with round order reversed and every
    arc flipped — the classical duality: an item travels the reversed
    protocol along the reversed path, so gossip protocols map to gossip
    protocols.  On a symmetric digraph the network is unchanged;
    otherwise the result lives on the reversed digraph. *)
val time_reversal : t -> t
