module Digraph = Gossip_topology.Digraph

let mode_of_string = function
  | "directed" -> Protocol.Directed
  | "half-duplex" -> Protocol.Half_duplex
  | "full-duplex" -> Protocol.Full_duplex
  | other -> invalid_arg (Printf.sprintf "Protocol_io: unknown mode %S" other)

let to_string p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "mode: %s\n" (Protocol.mode_to_string (Systolic.mode p)));
  Buffer.add_string buf
    (Printf.sprintf "vertices: %d\n"
       (Digraph.n_vertices (Systolic.graph p)));
  List.iter
    (fun round ->
      let cells = List.map (fun (u, v) -> Printf.sprintf "%d>%d" u v) round in
      Buffer.add_string buf (String.concat " " cells);
      Buffer.add_char buf '\n')
    (Systolic.period_rounds p);
  Buffer.contents buf

let parse_arc token =
  match String.index_opt token '>' with
  | None -> invalid_arg (Printf.sprintf "Protocol_io: bad arc %S" token)
  | Some i -> (
      try
        ( int_of_string (String.sub token 0 i),
          int_of_string (String.sub token (i + 1) (String.length token - i - 1))
        )
      with Failure _ ->
        invalid_arg (Printf.sprintf "Protocol_io: bad arc %S" token))

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let of_string s =
  let lines =
    s |> String.split_on_char '\n'
    |> List.map (fun l -> String.trim (strip_comment l))
    |> List.filter (fun l -> l <> "")
  in
  let mode = ref None and vertices = ref None in
  let rounds = ref [] in
  List.iter
    (fun line ->
      match String.index_opt line ':' with
      | Some i ->
          let key = String.trim (String.sub line 0 i) in
          let value =
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          (match key with
          | "mode" -> mode := Some (mode_of_string value)
          | "vertices" -> (
              match int_of_string_opt value with
              | Some n when n > 0 -> vertices := Some n
              | _ ->
                  invalid_arg
                    (Printf.sprintf "Protocol_io: bad vertex count %S" value))
          | other ->
              invalid_arg (Printf.sprintf "Protocol_io: unknown header %S" other))
      | None ->
          let arcs =
            line |> String.split_on_char ' '
            |> List.filter (fun t -> t <> "")
            |> List.map parse_arc
          in
          rounds := arcs :: !rounds)
    lines;
  let mode =
    match !mode with
    | Some m -> m
    | None -> invalid_arg "Protocol_io: missing 'mode:' header"
  in
  let n =
    match !vertices with
    | Some n -> n
    | None -> invalid_arg "Protocol_io: missing 'vertices:' header"
  in
  let rounds = List.rev !rounds in
  if rounds = [] then invalid_arg "Protocol_io: no rounds";
  List.iter
    (List.iter (fun (u, v) ->
         if u < 0 || u >= n || v < 0 || v >= n then
           invalid_arg
             (Printf.sprintf "Protocol_io: arc %d>%d outside %d vertices" u v n)))
    rounds;
  (* Synthesize the network from the arcs used. *)
  let arcs = List.concat rounds in
  let arcs =
    match mode with
    | Protocol.Directed -> arcs
    | Protocol.Half_duplex | Protocol.Full_duplex ->
        arcs @ List.map (fun (u, v) -> (v, u)) arcs
  in
  let g = Digraph.make ~name:"(loaded)" n (List.sort_uniq compare arcs) in
  Systolic.make g mode rounds

let save p path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string p))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
