(** Plain-text (de)serialization of systolic protocols.

    Format, one round per line, arcs as [src>dst] separated by spaces;
    blank lines and [#] comments ignored; a header line gives the mode
    and vertex count:

    {v
    # any comment
    mode: half-duplex
    vertices: 4
    0>1 2>3
    1>2
    2>1
    v}

    The graph is taken to be exactly the arcs mentioned (plus their
    reverses in half-/full-duplex modes), which is the natural reading of
    "here is my protocol" — validation then only has to check the
    matching conditions. *)

(** [to_string p] serializes the period of a systolic protocol. *)
val to_string : Systolic.t -> string

(** [of_string s] parses; the network is synthesized from the arcs used.
    @raise Invalid_argument on syntax errors, unknown modes, missing
    headers, vertex indices outside [0, vertices), or invalid rounds. *)
val of_string : string -> Systolic.t

(** [save p path] / [load path] — file convenience wrappers.
    @raise Sys_error on I/O failure. *)
val save : Systolic.t -> string -> unit

val load : string -> Systolic.t
