type t = { base : Protocol.t }

let make g mode period_rounds =
  if period_rounds = [] then invalid_arg "Systolic.make: empty period";
  { base = Protocol.make g mode period_rounds }

let of_protocol p =
  if Protocol.length p = 0 then invalid_arg "Systolic.of_protocol: no rounds";
  { base = p }

let graph p = Protocol.graph p.base
let mode p = Protocol.mode p.base
let period p = Protocol.length p.base

let period_round p i =
  if i < 0 then invalid_arg "Systolic.period_round: negative round";
  Protocol.round p.base (i mod period p)

let period_rounds p = Protocol.rounds p.base

let expand p ~length =
  if length < 0 then invalid_arg "Systolic.expand: negative length";
  let s = period p in
  let rounds = List.init length (fun i -> Protocol.round p.base (i mod s)) in
  Protocol.make (graph p) (mode p) rounds

let active_pattern p v =
  let s = period p in
  Array.init s (fun i ->
      let round = Protocol.round p.base i in
      let l = List.exists (fun (_, y) -> y = v) round in
      let r = List.exists (fun (x, _) -> x = v) round in
      match (l, r) with
      | true, true -> `Both
      | true, false -> `L
      | false, true -> `R
      | false, false -> `Idle)

let pp ppf p =
  Format.fprintf ppf "%d-systolic %a" (period p) Protocol.pp p.base

let rotate p k =
  let s = period p in
  let k = ((k mod s) + s) mod s in
  make (graph p) (mode p)
    (List.init s (fun i -> period_round p (i + k)))
