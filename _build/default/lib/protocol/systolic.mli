(** s-systolic protocols (Definition 3.2).

    An s-systolic protocol is the periodic repetition of [s] fixed rounds:
    [A_i = A_{i+s}] for all [i].  We store the period once and expand on
    demand; the delay-digraph machinery only ever needs the period. *)

type t

(** [make g mode period_rounds] validates the period as a protocol prefix.
    The period [s] is [List.length period_rounds] and must be positive.
    Rounds in which no arc is active are allowed (they merely waste a
    step).
    @raise Invalid_argument like {!Protocol.make}, or on an empty
    period. *)
val make :
  Gossip_topology.Digraph.t -> Protocol.mode -> Protocol.round list -> t

(** [of_protocol p] treats a complete finite protocol as one period — the
    paper's [s → ∞] view of a non-systolic protocol.
    @raise Invalid_argument if [p] has no rounds. *)
val of_protocol : Protocol.t -> t

(** [graph p], [mode p] are the components; [period p] is [s]. *)
val graph : t -> Gossip_topology.Digraph.t

val mode : t -> Protocol.mode
val period : t -> int

(** [period_round p i] is round [i mod s] of the period (0-based, any
    non-negative [i]). *)
val period_round : t -> int -> Protocol.round

(** [period_rounds p] is the period as a list. *)
val period_rounds : t -> Protocol.round list

(** [expand p ~length] is the finite protocol [⟨A_1, ..., A_length⟩]. *)
val expand : t -> length:int -> Protocol.t

(** [active_pattern p v] describes vertex [v]'s role in each round of the
    period: [`L] when an in-arc of [v] is active, [`R] when an out-arc is,
    [`Both] when both (full-duplex), [`Idle] otherwise.  This is the
    sequence from which the paper's ⟨(l_j), (r_j)⟩ run-length blocks are
    read. *)
val active_pattern : t -> int -> [ `L | `R | `Both | `Idle ] array

(** [pp] prints the period. *)
val pp : Format.formatter -> t -> unit

(** [rotate p k] starts the period [k] rounds later (cyclically).  Gossip
    times of rotations differ by less than the period. *)
val rotate : t -> int -> t
