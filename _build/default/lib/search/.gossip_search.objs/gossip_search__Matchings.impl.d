lib/search/matchings.ml: Fun Gossip_protocol Gossip_topology Hashtbl List
