lib/search/matchings.mli: Gossip_protocol Gossip_topology
