lib/search/optimal.ml: Array Gossip_protocol Gossip_topology Hashtbl List Matchings
