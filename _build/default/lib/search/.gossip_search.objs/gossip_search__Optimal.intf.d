lib/search/optimal.mli: Gossip_protocol Gossip_topology
