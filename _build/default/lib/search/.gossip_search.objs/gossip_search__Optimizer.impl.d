lib/search/optimizer.ml: Array Gossip_protocol Gossip_topology Gossip_util Hashtbl List
