lib/search/optimizer.mli: Gossip_protocol Gossip_topology
