lib/search/systolic_optimal.ml: Array Gossip_protocol Gossip_topology List Matchings Optimal Option
