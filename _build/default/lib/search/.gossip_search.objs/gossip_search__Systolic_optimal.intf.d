lib/search/systolic_optimal.mli: Gossip_protocol Gossip_topology
