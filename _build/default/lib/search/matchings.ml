module Digraph = Gossip_topology.Digraph
module Protocol = Gossip_protocol.Protocol

(* Backtracking enumeration over a candidate arc list: at each step either
   skip the next candidate or take it when its endpoints are free. *)
let enumerate candidates ~close =
  let results = ref [] in
  let rec go remaining busy chosen =
    match remaining with
    | [] -> if chosen <> [] then results := List.rev chosen :: !results
    | (u, v) :: rest ->
        go rest busy chosen;
        if (not (List.mem u busy)) && not (List.mem v busy) then
          go rest (u :: v :: busy) ((u, v) :: chosen)
  in
  go candidates [] [];
  List.map close !results

let candidates_for g mode =
  match mode with
  | Protocol.Directed | Protocol.Half_duplex -> Digraph.arcs g
  | Protocol.Full_duplex -> Digraph.undirected_edges g

let close_for mode round =
  match mode with
  | Protocol.Directed | Protocol.Half_duplex -> round
  | Protocol.Full_duplex ->
      List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) round

let all_rounds g mode =
  enumerate (candidates_for g mode) ~close:(close_for mode)

let is_maximal_matching candidates round =
  (* maximal iff no skipped candidate has both endpoints free *)
  let busy = Hashtbl.create 16 in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace busy u ();
      Hashtbl.replace busy v ())
    round;
  List.for_all
    (fun (u, v) -> Hashtbl.mem busy u || Hashtbl.mem busy v)
    candidates

let maximal_rounds g mode =
  let candidates = candidates_for g mode in
  let raw = enumerate candidates ~close:Fun.id in
  List.map (close_for mode) (List.filter (is_maximal_matching candidates) raw)

let count_all g mode = List.length (all_rounds g mode)
