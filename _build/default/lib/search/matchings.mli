(** Enumeration of the rounds available to a protocol.

    A round of a whispering-model protocol is a matching of the network's
    arcs (Definition 3.1); the exact-search procedures need the complete
    list.  Since knowledge only ever grows, a round contained in another
    is dominated by it, so optimal searches may restrict to {e maximal}
    matchings — a fact re-checked by the tests against the full
    enumeration on tiny graphs. *)

(** [all_rounds g mode] enumerates every non-empty round valid for the
    mode, including non-maximal ones.  In full-duplex mode rounds are
    reversal-closed arc sets (one per edge matching).  Exponential in the
    arc count — intended for tiny networks. *)
val all_rounds :
  Gossip_topology.Digraph.t ->
  Gossip_protocol.Protocol.mode ->
  Gossip_protocol.Protocol.round list

(** [maximal_rounds g mode] enumerates only the inclusion-maximal rounds
    — the ones an optimal protocol can be assumed to use. *)
val maximal_rounds :
  Gossip_topology.Digraph.t ->
  Gossip_protocol.Protocol.mode ->
  Gossip_protocol.Protocol.round list

(** [count_all g mode] is [List.length (all_rounds g mode)], without
    materializing intermediate lists more than necessary. *)
val count_all : Gossip_topology.Digraph.t -> Gossip_protocol.Protocol.mode -> int
