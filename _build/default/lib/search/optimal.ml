module Digraph = Gossip_topology.Digraph
module Protocol = Gossip_protocol.Protocol

type result = { rounds : int; states_explored : int }

let check_size g =
  if Digraph.n_vertices g > 24 then
    invalid_arg "Optimal: networks over 24 vertices are not searchable"

(* Apply one round to a knowledge-mask state; rounds are matchings, so in
   directed/half-duplex mode no sender is a receiver, and in full-duplex
   mode the exchange uses the pre-round masks — reading from [state] and
   writing into a copy gives exactly the synchronous semantics. *)
let apply_round state round =
  let next = Array.copy state in
  List.iter (fun (x, y) -> next.(y) <- next.(y) lor state.(x)) round;
  next

let bfs ~initial ~accept ~rounds ~max_states =
  let seen = Hashtbl.create 4096 in
  Hashtbl.replace seen initial ();
  let frontier = ref [ initial ] in
  let depth = ref 0 in
  let explored = ref 1 in
  let result = ref None in
  if accept initial then result := Some { rounds = 0; states_explored = 1 };
  while !result = None && !frontier <> [] && !explored <= max_states do
    incr depth;
    let next_frontier = ref [] in
    List.iter
      (fun state ->
        if !result = None then
          List.iter
            (fun round ->
              if !result = None then begin
                let next = apply_round state round in
                if not (Hashtbl.mem seen next) then begin
                  Hashtbl.replace seen next ();
                  incr explored;
                  if accept next then
                    result := Some { rounds = !depth; states_explored = !explored }
                  else next_frontier := next :: !next_frontier
                end
              end)
            rounds)
      !frontier;
    frontier := !next_frontier
  done;
  !result

let gossip_number ?(max_states = 2_000_000) g mode =
  check_size g;
  let n = Digraph.n_vertices g in
  let initial = Array.init n (fun v -> 1 lsl v) in
  let full = (1 lsl n) - 1 in
  let accept state = Array.for_all (fun m -> m = full) state in
  let rounds = Matchings.maximal_rounds g mode in
  bfs ~initial ~accept ~rounds ~max_states

let broadcast_number ?(max_states = 2_000_000) g mode ~src =
  check_size g;
  let n = Digraph.n_vertices g in
  if src < 0 || src >= n then invalid_arg "Optimal.broadcast_number: bad src";
  (* For broadcast only the "knows src's item" bit matters per vertex, so
     the state collapses to one bitmask, encoded as a 1-element array to
     share the BFS. *)
  let initial = [| 1 lsl src |] in
  let full = (1 lsl n) - 1 in
  let accept state = state.(0) = full in
  let rounds = Matchings.maximal_rounds g mode in
  let lift round =
    (* transition on the collapsed state: y learns if x knew *)
    round
  in
  let apply state round =
    let mask = state.(0) in
    let next = ref mask in
    List.iter
      (fun (x, y) -> if mask land (1 lsl x) <> 0 then next := !next lor (1 lsl y))
      round;
    [| !next |]
  in
  (* specialised BFS with the collapsed transition *)
  let seen = Hashtbl.create 4096 in
  Hashtbl.replace seen initial ();
  let frontier = ref [ initial ] in
  let depth = ref 0 in
  let explored = ref 1 in
  let result = ref None in
  if accept initial then result := Some { rounds = 0; states_explored = 1 };
  while !result = None && !frontier <> [] && !explored <= max_states do
    incr depth;
    let next_frontier = ref [] in
    List.iter
      (fun state ->
        if !result = None then
          List.iter
            (fun round ->
              if !result = None then begin
                let next = apply state (lift round) in
                if not (Hashtbl.mem seen next) then begin
                  Hashtbl.replace seen next ();
                  incr explored;
                  if accept next then
                    result := Some { rounds = !depth; states_explored = !explored }
                  else next_frontier := next :: !next_frontier
                end
              end)
            rounds)
      !frontier;
    frontier := !next_frontier
  done;
  !result
