(** Exact optimal gossip and broadcast times by state-space search.

    The gossip number [g(G)] (minimum length of any gossip protocol) is
    computed by breadth-first search over knowledge states: a state
    assigns each processor the set of items it knows, a transition
    applies one maximal round.  Exponential, but exact — exactly what is
    needed to (a) validate the lower-bound machinery against ground
    truth on small networks, and (b) measure the {e price of
    systolization} the paper discusses: [8] proved that on paths
    half-duplex systolic gossip is strictly slower than unrestricted
    gossip, and {!Systolic_optimal} exhibits the gap. *)

(** Search outcome. *)
type result = {
  rounds : int;  (** minimum number of rounds *)
  states_explored : int;
}

(** [gossip_number ?max_states g mode] is the exact minimum gossip time,
    or [None] if the search exceeds [max_states] (default [2_000_000])
    before completing.
    @raise Invalid_argument if [g] has more than 24 vertices (states are
    packed into integers). *)
val gossip_number :
  ?max_states:int ->
  Gossip_topology.Digraph.t ->
  Gossip_protocol.Protocol.mode ->
  result option

(** [broadcast_number ?max_states g mode ~src] — minimum rounds to spread
    item [src] to everyone. *)
val broadcast_number :
  ?max_states:int ->
  Gossip_topology.Digraph.t ->
  Gossip_protocol.Protocol.mode ->
  src:int ->
  result option
