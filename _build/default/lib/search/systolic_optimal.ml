module Digraph = Gossip_topology.Digraph
module Protocol = Gossip_protocol.Protocol

type result = {
  rounds : int;
  period : Protocol.round list;
  candidates_tried : int;
}

type outcome = Found of result | Infeasible | Too_large

(* Simulate a period directly on knowledge masks; returns completion
   round or None within the cap. *)
let simulate_period g period ~cap =
  let n = Digraph.n_vertices g in
  let state = Array.init n (fun v -> 1 lsl v) in
  let full = (1 lsl n) - 1 in
  let period = Array.of_list period in
  let s = Array.length period in
  let result = ref None in
  let t = ref 0 in
  while !result = None && !t < cap do
    let round = period.(!t mod s) in
    let snapshot = Array.copy state in
    List.iter (fun (x, y) -> state.(y) <- state.(y) lor snapshot.(x)) round;
    incr t;
    if Array.for_all (fun m -> m = full) state then result := Some !t
  done;
  !result

let int_pow b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

let systolic_gossip_number ?(max_candidates = 2_000_000) ?cap g mode ~s =
  if s < 1 then invalid_arg "Systolic_optimal: s must be >= 1";
  let n = Digraph.n_vertices g in
  let cap = match cap with Some c -> c | None -> 4 * s * n in
  let rounds = Array.of_list ([] :: Matchings.maximal_rounds g mode) in
  let base = Array.length rounds in
  let total = int_pow base s in
  if total > max_candidates then Too_large
  else begin
    let best = ref None in
    let tried = ref 0 in
    (* enumerate periods as base-[base] counters *)
    let digits = Array.make s 0 in
    let continue = ref true in
    while !continue do
      incr tried;
      let period = Array.to_list (Array.map (fun d -> rounds.(d)) digits) in
      (match simulate_period g period ~cap with
      | Some t -> (
          match !best with
          | Some (bt, _) when bt <= t -> ()
          | _ -> best := Some (t, period))
      | None -> ());
      (* increment the counter *)
      let rec bump i =
        if i < 0 then continue := false
        else if digits.(i) + 1 < base then digits.(i) <- digits.(i) + 1
        else begin
          digits.(i) <- 0;
          bump (i - 1)
        end
      in
      bump (s - 1)
    done;
    match !best with
    | Some (t, period) -> Found { rounds = t; period; candidates_tried = !tried }
    | None -> Infeasible
  end

let price_of_systolization ?(s_max = 6) g mode =
  let systolic =
    List.map
      (fun s -> (s, systolic_gossip_number g mode ~s))
      (List.init (max 0 (s_max - 1)) (fun i -> i + 2))
  in
  let unrestricted =
    Option.map (fun (r : Optimal.result) -> r.Optimal.rounds)
      (Optimal.gossip_number g mode)
  in
  (systolic, unrestricted)
