(** Exact optimal s-systolic gossip by exhaustive period enumeration.

    An s-systolic protocol is determined by its period — a sequence of
    [s] rounds — so on tiny networks the space of periods can be swept
    exhaustively and each candidate simulated.  This makes the paper's
    central question ("how much must be paid for the systolization of
    gossiping?", [8]) directly measurable: compare
    {!Optimal.gossip_number} with {!systolic_gossip_number} for small
    [s].  On paths the gap is strict, as [8] proved. *)

(** Search outcome: the best completion time, a period achieving it, and
    how many candidate periods were simulated. *)
type result = {
  rounds : int;
  period : Gossip_protocol.Protocol.round list;
  candidates_tried : int;
}

(** Sweep outcome: [Found] with the best protocol, [Infeasible] when the
    whole space was swept and no candidate completes gossip, or
    [Too_large] when the sweep would exceed the candidate budget. *)
type outcome = Found of result | Infeasible | Too_large

(** [systolic_gossip_number ?max_candidates ?cap g mode ~s] sweeps
    periods made of maximal rounds (plus the empty round, which can help
    phase alignment), simulating each for at most [cap] rounds (default
    [4·s·n]).  [max_candidates] (default [2_000_000]) bounds the sweep.
    @raise Invalid_argument if [s < 1]. *)
val systolic_gossip_number :
  ?max_candidates:int ->
  ?cap:int ->
  Gossip_topology.Digraph.t ->
  Gossip_protocol.Protocol.mode ->
  s:int ->
  outcome

(** [price_of_systolization ?s_max g mode] tabulates
    [(s, outcome)] for [s = 2 .. s_max] (default 6) next to the
    unrestricted optimum — the experiment behind the path/cycle
    discussion of [8]. *)
val price_of_systolization :
  ?s_max:int ->
  Gossip_topology.Digraph.t ->
  Gossip_protocol.Protocol.mode ->
  (int * outcome) list * int option
