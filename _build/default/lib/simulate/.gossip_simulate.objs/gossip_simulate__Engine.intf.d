lib/simulate/engine.mli: Gossip_protocol Gossip_util
