lib/simulate/faults.ml: Engine Gossip_protocol Gossip_topology Gossip_util List
