lib/simulate/faults.mli: Gossip_protocol
