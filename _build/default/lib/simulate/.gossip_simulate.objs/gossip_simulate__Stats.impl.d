lib/simulate/stats.ml: Array Engine Gossip_protocol Gossip_topology Gossip_util List
