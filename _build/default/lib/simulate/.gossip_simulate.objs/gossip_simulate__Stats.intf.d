lib/simulate/stats.mli: Gossip_protocol
