module Bitset = Gossip_util.Bitset
module Systolic = Gossip_protocol.Systolic

let arrival_times p ~horizon =
  let n = Gossip_topology.Digraph.n_vertices (Systolic.graph p) in
  let arrival = Array.make_matrix n n max_int in
  for v = 0 to n - 1 do
    arrival.(v).(v) <- 0
  done;
  let st = Engine.initial_state n in
  let round = ref 0 in
  let complete () = Engine.all_complete st in
  while !round < horizon && not (complete ()) do
    Engine.apply_round st (Systolic.period_round p !round);
    incr round;
    for v = 0 to n - 1 do
      let know = Engine.knowledge st v in
      for item = 0 to n - 1 do
        if arrival.(item).(v) = max_int && Bitset.mem know item then
          arrival.(item).(v) <- !round
      done
    done
  done;
  arrival

type summary = {
  gossip_time : int option;
  broadcast_times : int array;
  mean_arrival : float;
  max_arrival : int;
  rounds_run : int;
}

let summarize ?horizon p =
  let n = Gossip_topology.Digraph.n_vertices (Systolic.graph p) in
  let horizon =
    match horizon with
    | Some h -> h
    | None -> (8 * Systolic.period p * n) + 64
  in
  let arrival = arrival_times p ~horizon in
  let broadcast_times =
    Array.map
      (fun row -> Array.fold_left max 0 row)
      arrival
  in
  let finite = ref [] in
  Array.iter
    (fun row ->
      Array.iter (fun a -> if a < max_int then finite := a :: !finite) row)
    arrival;
  let count = List.length !finite in
  let mean_arrival =
    if count = 0 then 0.0
    else float_of_int (List.fold_left ( + ) 0 !finite) /. float_of_int count
  in
  let max_arrival =
    List.fold_left (fun acc a -> max acc a) 0 !finite
  in
  let complete = count = n * n in
  let rounds_run = min horizon (if complete then max_arrival else horizon) in
  {
    gossip_time = (if complete then Some max_arrival else None);
    broadcast_times;
    mean_arrival;
    max_arrival;
    rounds_run;
  }

let newly_informed p ~horizon =
  let n = Gossip_topology.Digraph.n_vertices (Systolic.graph p) in
  let st = Engine.initial_state n in
  let prev = ref (Engine.items_known st) in
  Array.init horizon (fun i ->
      Engine.apply_round st (Systolic.period_round p i);
      let now = Engine.items_known st in
      let delta = now - !prev in
      prev := now;
      delta)

type message_costs = { transmissions : int; useful : int; rounds : int }

let message_complexity ?horizon p =
  let n = Gossip_topology.Digraph.n_vertices (Systolic.graph p) in
  let horizon =
    match horizon with Some h -> h | None -> (8 * Systolic.period p * n) + 64
  in
  let st = Engine.initial_state n in
  let transmissions = ref 0 and useful = ref 0 in
  let rounds = ref 0 in
  while !rounds < horizon && not (Engine.all_complete st) do
    let round = Systolic.period_round p !rounds in
    let before =
      List.map (fun (_, y) -> Bitset.cardinal (Engine.knowledge st y)) round
    in
    Engine.apply_round st round;
    List.iter2
      (fun (_, y) b ->
        incr transmissions;
        if Bitset.cardinal (Engine.knowledge st y) > b then incr useful)
      round before;
    incr rounds
  done;
  { transmissions = !transmissions; useful = !useful; rounds = !rounds }
