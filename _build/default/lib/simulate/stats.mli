(** Dissemination statistics beyond the completion time.

    The lower-bound story is about the {e last} item to arrive; these
    helpers expose the whole distribution — per-item arrival times, the
    dissemination curve, per-round throughput — which the examples use to
    show {e where} a protocol loses time, not just how much. *)

(** [arrival_times p ~horizon] runs the systolic protocol for [horizon]
    rounds and returns the matrix [a] with [a.(item).(vertex)] the first
    round after which [vertex] knows [item] ([0] for the origin,
    [max_int] when it never arrives within the horizon). *)
val arrival_times :
  Gossip_protocol.Systolic.t -> horizon:int -> int array array

(** Summary of one protocol run. *)
type summary = {
  gossip_time : int option;  (** completion round *)
  broadcast_times : int array;  (** per source: when its item reached all *)
  mean_arrival : float;  (** average finite arrival time *)
  max_arrival : int;  (** worst finite arrival (= gossip time if complete) *)
  rounds_run : int;
}

(** [summarize ?horizon p] computes the summary (default horizon =
    {!Gossip_simulate.Engine} default cap). *)
val summarize : ?horizon:int -> Gossip_protocol.Systolic.t -> summary

(** [newly_informed p ~horizon] — for each executed round, how many
    (vertex, item) pairs were learned in that round; the integral of this
    curve is [n² - n] exactly when gossip completes. *)
val newly_informed : Gossip_protocol.Systolic.t -> horizon:int -> int array

(** Message complexity of one run: how many transmissions the protocol
    spent, and how many were wasted (carried no new item to the
    receiver).  Systolic protocols are oblivious, so they keep
    transmitting after saturation — the waste quantifies the overhead of
    obliviousness. *)
type message_costs = {
  transmissions : int;  (** arc activations executed *)
  useful : int;  (** activations that taught the receiver something *)
  rounds : int;  (** rounds executed (to completion or the horizon) *)
}

(** [message_complexity ?horizon p] runs the systolic protocol until
    gossip completes (or the horizon) and accounts transmissions. *)
val message_complexity :
  ?horizon:int -> Gossip_protocol.Systolic.t -> message_costs
