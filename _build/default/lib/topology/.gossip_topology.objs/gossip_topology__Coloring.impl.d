lib/topology/coloring.ml: Array Digraph Hashtbl List
