lib/topology/coloring.mli: Digraph
