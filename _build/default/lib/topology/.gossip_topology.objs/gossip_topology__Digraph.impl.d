lib/topology/digraph.ml: Array Format List Printf Queue
