lib/topology/digraph.mli: Format
