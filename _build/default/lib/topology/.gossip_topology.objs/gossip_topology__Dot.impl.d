lib/topology/dot.ml: Buffer Digraph List Printf String
