lib/topology/dot.mli: Digraph
