lib/topology/extra_families.ml: Array Digraph List Printf String
