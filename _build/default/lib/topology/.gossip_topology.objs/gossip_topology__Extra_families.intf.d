lib/topology/extra_families.mli: Digraph
