lib/topology/families.ml: Array Digraph List Printf String
