lib/topology/families.mli: Digraph
