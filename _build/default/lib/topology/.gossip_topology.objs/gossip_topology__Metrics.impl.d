lib/topology/metrics.ml: Array Digraph Gossip_util List Queue
