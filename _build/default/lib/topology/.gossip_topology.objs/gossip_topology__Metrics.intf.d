lib/topology/metrics.mli: Digraph
