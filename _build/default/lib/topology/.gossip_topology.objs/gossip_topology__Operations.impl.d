lib/topology/operations.ml: Array Digraph Hashtbl List Printf
