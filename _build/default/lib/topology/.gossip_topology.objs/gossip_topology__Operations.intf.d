lib/topology/operations.mli: Digraph
