lib/topology/random_graphs.ml: Array Digraph Gossip_util Hashtbl List Printf
