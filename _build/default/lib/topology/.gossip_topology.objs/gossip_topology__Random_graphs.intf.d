lib/topology/random_graphs.mli: Digraph
