lib/topology/separator.ml: Array Digraph Families Gossip_util List Metrics
