lib/topology/separator.mli: Digraph
