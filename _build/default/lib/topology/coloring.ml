let edge_coloring g =
  if not (Digraph.is_symmetric g) then
    invalid_arg "Coloring.edge_coloring: digraph not symmetric";
  let edges = Digraph.undirected_edges g in
  (* Greedy: give each edge the smallest color free at both endpoints.
     Sorting edges by decreasing endpoint degree keeps the color count
     close to Δ in practice. *)
  let deg v = Digraph.out_degree g v in
  let edges =
    List.sort
      (fun (a, b) (c, d) -> compare (-(deg c + deg d), (c, d)) (-(deg a + deg b), (a, b)))
      edges
  in
  let n = Digraph.n_vertices g in
  let used : (int, unit) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 4) in
  let classes : (int * int) list array ref = ref (Array.make 0 []) in
  let ensure_color c =
    if c >= Array.length !classes then begin
      let bigger = Array.make (c + 1) [] in
      Array.blit !classes 0 bigger 0 (Array.length !classes);
      classes := bigger
    end
  in
  List.iter
    (fun (u, v) ->
      let c = ref 0 in
      while Hashtbl.mem used.(u) !c || Hashtbl.mem used.(v) !c do
        incr c
      done;
      Hashtbl.replace used.(u) !c ();
      Hashtbl.replace used.(v) !c ();
      ensure_color !c;
      !classes.(!c) <- (u, v) :: !classes.(!c))
    edges;
  Array.to_list (Array.map List.rev !classes)

let is_proper g classes =
  let edges = Digraph.undirected_edges g in
  let all = List.concat classes in
  let sorted = List.sort compare all in
  let matching_ok =
    List.for_all
      (fun cls ->
        let seen = Hashtbl.create 16 in
        List.for_all
          (fun (u, v) ->
            if Hashtbl.mem seen u || Hashtbl.mem seen v then false
            else begin
              Hashtbl.replace seen u ();
              Hashtbl.replace seen v ();
              true
            end)
          cls)
      classes
  in
  matching_ok && sorted = List.sort compare edges

(* Misra-Gries edge coloring: fans, cd-path inversion, fan rotation.
   Colors are ints in [0, Δ]; state is the partial coloring
   [at.(v) : color -> neighbour] plus [edge_color : (u,v) -> color].
   All multi-edge recolorings are two-phase (clear every affected edge,
   then set the new colors): interleaving reads and writes on the shared
   [at] tables corrupts them. *)
let misra_gries g =
  if not (Digraph.is_symmetric g) then
    invalid_arg "Coloring.misra_gries: digraph not symmetric";
  let n = Digraph.n_vertices g in
  let delta = Digraph.max_out_degree g in
  let ncolors = delta + 1 in
  let at = Array.init n (fun _ -> Hashtbl.create 8) in
  let edge_color : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let key u v = (min u v, max u v) in
  let color_of u v = Hashtbl.find_opt edge_color (key u v) in
  let clear_edge u v =
    match color_of u v with
    | Some old ->
        Hashtbl.remove at.(u) old;
        Hashtbl.remove at.(v) old;
        Hashtbl.remove edge_color (key u v)
    | None -> ()
  in
  let set_color u v c =
    clear_edge u v;
    Hashtbl.replace edge_color (key u v) c;
    Hashtbl.replace at.(u) c v;
    Hashtbl.replace at.(v) c u
  in
  let recolor_edges assignments =
    List.iter (fun (u, v, _) -> clear_edge u v) assignments;
    List.iter (fun (u, v, c) -> set_color u v c) assignments
  in
  let free_color v =
    let c = ref 0 in
    while Hashtbl.mem at.(v) !c do
      incr c
    done;
    !c
  in
  let is_free v c = not (Hashtbl.mem at.(v) c) in
  (* Maximal fan of u starting at neighbour y: F[i+1] is a neighbour of u
     whose (coloured) edge colour is free at F[i]. *)
  let build_fan u y =
    let fan = ref [ y ] in
    let used = Hashtbl.create 8 in
    Hashtbl.replace used y ();
    let rec extend last =
      let next =
        Array.fold_left
          (fun acc w ->
            match acc with
            | Some _ -> acc
            | None -> (
                if Hashtbl.mem used w then None
                else
                  match color_of u w with
                  | Some c when is_free last c -> Some w
                  | _ -> None))
          None (Digraph.out_neighbors g u)
      in
      match next with
      | Some w ->
          Hashtbl.replace used w ();
          fan := w :: !fan;
          extend w
      | None -> ()
    in
    extend y;
    List.rev !fan
  in
  (* Invert the maximal path of edges alternately coloured d, c starting
     at u (u misses c by construction). *)
  let invert_cd_path u c d =
    let rec collect v want prev acc steps =
      if steps > 2 * n then
        invalid_arg "Coloring.misra_gries: cd-path invariant violated"
      else
        match Hashtbl.find_opt at.(v) want with
        | Some w when prev <> Some w ->
            collect w (if want = d then c else d) (Some v)
              ((v, w, if want = d then c else d) :: acc)
              (steps + 1)
        | _ -> List.rev acc
    in
    recolor_edges (collect u d None [] 0)
  in
  (* Find the fan prefix to rotate: walk the fan while the fan property
     holds under the CURRENT colours, stop at the first vertex missing
     d.  Vizing's argument guarantees it is found. *)
  let find_rotation_prefix u fan d =
    let rec go acc = function
      | [] -> invalid_arg "Coloring.misra_gries: fan invariant violated"
      | w :: rest ->
          if is_free w d then List.rev (w :: acc)
          else (
            match rest with
            | next :: _ -> (
                match color_of u next with
                | Some cn when is_free w cn -> go (w :: acc) rest
                | _ ->
                    invalid_arg "Coloring.misra_gries: fan invariant violated")
            | [] -> invalid_arg "Coloring.misra_gries: fan invariant violated")
    in
    go [] fan
  in
  (* Rotate: edge (u, F[i]) takes the colour of (u, F[i+1]); (u, w) gets
     d.  Colours are planned from the pre-rotation state. *)
  let rotate u fan_prefix d =
    let rec plan = function
      | a :: (b :: _ as rest) -> (
          match color_of u b with
          | Some cb -> (u, a, cb) :: plan rest
          | None -> invalid_arg "Coloring.misra_gries: fan edge uncoloured")
      | [ w ] -> [ (u, w, d) ]
      | [] -> []
    in
    recolor_edges (plan fan_prefix)
  in
  let edges = Digraph.undirected_edges g in
  List.iter
    (fun (u, v) ->
      let fan = build_fan u v in
      let c = free_color u in
      let last = List.nth fan (List.length fan - 1) in
      let d = free_color last in
      if not (is_free u d) then invert_cd_path u c d;
      (* the inversion may have changed fan-relevant colours; the prefix
         walk below revalidates the fan property as it goes *)
      rotate u (find_rotation_prefix u fan d) d)
    edges;
  (* collect classes *)
  let classes = Array.make ncolors [] in
  Hashtbl.iter
    (fun (u, v) c ->
      if c < ncolors then classes.(c) <- (u, v) :: classes.(c)
      else classes.(ncolors - 1) <- (u, v) :: classes.(ncolors - 1))
    edge_color;
  List.filter (fun cls -> cls <> []) (Array.to_list (Array.map List.rev classes))

let best g =
  let greedy = edge_coloring g in
  let mg = misra_gries g in
  if List.length mg < List.length greedy then mg else greedy
