(** Greedy proper edge coloring.

    Liestman and Richards' periodic gossiping — the origin of the systolic
    protocols studied by the paper — colors the edges of the network and
    cycles through the color classes, one matching per round.  A greedy
    coloring uses at most [2Δ - 1] colors, which yields a valid
    [s]-systolic protocol with [s ≤ 2Δ - 1] on any undirected network (and
    Vizing guarantees [Δ + 1] exists; greedy is close enough for our
    upper-bound protocols). *)

(** [edge_coloring g] colors the undirected edges of the symmetric digraph
    [g].  Returns the color classes: each inner list is a matching of
    unordered edges [(u, v)] with [u < v], classes ordered by color index.
    @raise Invalid_argument if [g] is not symmetric. *)
val edge_coloring : Digraph.t -> (int * int) list list

(** [is_proper g classes] checks that the classes partition the edge set
    of [g] and that each class is a matching. *)
val is_proper : Digraph.t -> (int * int) list list -> bool

(** [misra_gries g] colors the edges of the symmetric digraph [g] with at
    most [Δ + 1] colors (Vizing's bound), using the Misra–Gries fan/
    cd-path algorithm.  Same return shape as {!edge_coloring}; strictly
    fewer or equal classes, hence shorter systolic periods for the
    periodic protocols built on top.
    @raise Invalid_argument if [g] is not symmetric. *)
val misra_gries : Digraph.t -> (int * int) list list

(** [best g] runs both {!edge_coloring} and {!misra_gries} and returns
    whichever uses fewer colors — greedy sometimes finds a Δ-coloring on
    class-1 graphs where Misra–Gries settles for Δ+1, and vice versa.
    Guaranteed proper with at most [Δ + 1] classes. *)
val best : Digraph.t -> (int * int) list list
