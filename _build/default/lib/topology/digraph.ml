type t = {
  name : string;
  n : int;
  out_adj : int array array;
  in_adj : int array array;
  labels : string array option;
}

let make ?labels ~name n arcs =
  if n < 0 then invalid_arg "Digraph.make: negative vertex count";
  (match labels with
  | Some l when Array.length l <> n ->
      invalid_arg "Digraph.make: label array length mismatch"
  | _ -> ());
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg (Printf.sprintf "Digraph.make: arc (%d,%d) out of range" u v);
      if u = v then
        invalid_arg (Printf.sprintf "Digraph.make: self-loop at %d" u))
    arcs;
  let arcs = List.sort_uniq compare arcs in
  let out_count = Array.make n 0 and in_count = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      out_count.(u) <- out_count.(u) + 1;
      in_count.(v) <- in_count.(v) + 1)
    arcs;
  let out_adj = Array.init n (fun v -> Array.make out_count.(v) 0) in
  let in_adj = Array.init n (fun v -> Array.make in_count.(v) 0) in
  let out_pos = Array.make n 0 and in_pos = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      out_adj.(u).(out_pos.(u)) <- v;
      out_pos.(u) <- out_pos.(u) + 1;
      in_adj.(v).(in_pos.(v)) <- u;
      in_pos.(v) <- in_pos.(v) + 1)
    arcs;
  { name; n; out_adj; in_adj; labels }

let name g = g.name
let n_vertices g = g.n

let n_arcs g = Array.fold_left (fun acc a -> acc + Array.length a) 0 g.out_adj

let label g v =
  match g.labels with Some l -> l.(v) | None -> string_of_int v

let out_neighbors g v = g.out_adj.(v)
let in_neighbors g v = g.in_adj.(v)
let out_degree g v = Array.length g.out_adj.(v)
let in_degree g v = Array.length g.in_adj.(v)

let max_out_degree g =
  Array.fold_left (fun acc a -> max acc (Array.length a)) 0 g.out_adj

let max_in_degree g =
  Array.fold_left (fun acc a -> max acc (Array.length a)) 0 g.in_adj

let mem_arc g u v =
  u >= 0 && u < g.n && v >= 0 && v < g.n
  && Array.exists (fun w -> w = v) g.out_adj.(u)

let arcs g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    let nbrs = g.out_adj.(u) in
    for k = Array.length nbrs - 1 downto 0 do
      acc := (u, nbrs.(k)) :: !acc
    done
  done;
  !acc

let iter_arcs f g =
  for u = 0 to g.n - 1 do
    Array.iter (fun v -> f u v) g.out_adj.(u)
  done

let is_symmetric g =
  let ok = ref true in
  iter_arcs (fun u v -> if not (mem_arc g v u) then ok := false) g;
  !ok

let degree_parameter g =
  if is_symmetric g then max 0 (max_out_degree g - 1) else max_out_degree g

let symmetric_closure g =
  let extra = ref [] in
  iter_arcs (fun u v -> if not (mem_arc g v u) then extra := (v, u) :: !extra) g;
  make ?labels:g.labels ~name:g.name g.n (arcs g @ !extra)

let reverse g =
  {
    g with
    out_adj = g.in_adj;
    in_adj = g.out_adj;
    name = g.name ^ " (reversed)";
  }

let undirected_edges g =
  let acc = ref [] in
  iter_arcs
    (fun u v -> if u < v || not (mem_arc g v u) then
        acc := ((min u v, max u v)) :: !acc)
    g;
  List.sort_uniq compare !acc

let reaches_all adj n =
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let queue = Queue.create () in
    seen.(0) <- true;
    Queue.add 0 queue;
    let count = ref 1 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            incr count;
            Queue.add v queue
          end)
        adj.(u)
    done;
    !count = n
  end

let is_strongly_connected g = reaches_all g.out_adj g.n && reaches_all g.in_adj g.n

let rename g name = { g with name }

let pp ppf g =
  Format.fprintf ppf "%s: %d vertices, %d arcs" g.name g.n (n_arcs g)
