(** Directed graphs as processor networks.

    Following Section 3 of the paper, a network is a digraph [G = (V, A)]
    whose vertices are processors and whose arcs are one-way communication
    links; an undirected network is a symmetric digraph (each edge present
    as two opposite arcs).  Vertices are integers [0 .. n-1]; a digraph is
    immutable after construction and stores both out- and in-adjacency for
    the protocol and delay-digraph machinery. *)

type t

(** [make ?labels ~name n arcs] builds a digraph on [n] vertices from the
    arc list.  Self-loops are rejected — a processor cannot use a link to
    itself in the whispering model — and duplicate arcs are merged.
    [labels], when given, attaches a printable name to each vertex (e.g.
    ["(212, 3)"] for butterfly vertices) and must have length [n].
    @raise Invalid_argument on out-of-range endpoints, self-loops or a
    label array of the wrong length. *)
val make : ?labels:string array -> name:string -> int -> (int * int) list -> t

(** [name g] is the human-readable family name, e.g. ["DB(2,6)"]. *)
val name : t -> string

(** [n_vertices g] and [n_arcs g] are the sizes of [V] and [A]. *)
val n_vertices : t -> int

val n_arcs : t -> int

(** [label g v] is the printable vertex name (defaults to the index). *)
val label : t -> int -> string

(** [out_neighbors g v] and [in_neighbors g v] are the adjacency arrays
    (do not mutate). *)
val out_neighbors : t -> int -> int array

val in_neighbors : t -> int -> int array

(** [out_degree g v], [in_degree g v], [max_out_degree g],
    [max_in_degree g] are degree statistics. *)
val out_degree : t -> int -> int

val in_degree : t -> int -> int
val max_out_degree : t -> int
val max_in_degree : t -> int

(** [degree_parameter g] is the paper's parameter [d]: maximum out-degree
    for a general digraph; for a symmetric digraph it is the maximum
    (undirected) degree minus one. *)
val degree_parameter : t -> int

(** [mem_arc g u v] tests whether [(u, v) ∈ A]. *)
val mem_arc : t -> int -> int -> bool

(** [arcs g] lists all arcs in lexicographic order. *)
val arcs : t -> (int * int) list

(** [iter_arcs f g] applies [f u v] to every arc. *)
val iter_arcs : (int -> int -> unit) -> t -> unit

(** [is_symmetric g] is [true] iff every arc has its opposite — i.e. [g]
    models an undirected network. *)
val is_symmetric : t -> bool

(** [symmetric_closure g] adds the opposite of every arc. *)
val symmetric_closure : t -> t

(** [reverse g] reverses every arc. *)
val reverse : t -> t

(** [undirected_edges g] lists each unordered pair [{u, v}] (with [u < v])
    such that at least one of the two arcs is present. *)
val undirected_edges : t -> (int * int) list

(** [is_strongly_connected g] — gossiping is only feasible on strongly
    connected digraphs (condition 2 of Definition 3.1 requires a dipath
    between every ordered pair). *)
val is_strongly_connected : t -> bool

(** [rename g name] returns [g] with a different display name. *)
val rename : t -> string -> t

(** [pp] prints a one-line summary [name: n vertices, m arcs]. *)
val pp : Format.formatter -> t -> unit
