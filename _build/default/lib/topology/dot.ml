let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let of_arcs ~name ~directed ~vertex_label ~n arcs =
  let buf = Buffer.create 1024 in
  let kind = if directed then "digraph" else "graph" in
  let arrow = if directed then " -> " else " -- " in
  Buffer.add_string buf (Printf.sprintf "%s \"%s\" {\n" kind (escape name));
  for v = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  %d [label=\"%s\"];\n" v (escape (vertex_label v)))
  done;
  List.iter
    (fun (u, v, attr) ->
      let attr = if attr = "" then "" else Printf.sprintf " [%s]" attr in
      Buffer.add_string buf (Printf.sprintf "  %d%s%d%s;\n" u arrow v attr))
    arcs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_digraph ?(highlight = []) g =
  let directed = not (Digraph.is_symmetric g) in
  let highlighted u v =
    List.mem (u, v) highlight || ((not directed) && List.mem (v, u) highlight)
  in
  let attr u v =
    if highlighted u v then "color=red, penwidth=2.0" else ""
  in
  let arcs =
    if directed then
      List.map (fun (u, v) -> (u, v, attr u v)) (Digraph.arcs g)
    else
      List.map (fun (u, v) -> (u, v, attr u v)) (Digraph.undirected_edges g)
  in
  of_arcs ~name:(Digraph.name g) ~directed
    ~vertex_label:(Digraph.label g)
    ~n:(Digraph.n_vertices g) arcs
