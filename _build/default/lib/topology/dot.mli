(** Graphviz (DOT) export.

    Small delay digraphs and the matrix figures of the paper are much
    easier to follow as pictures; this renders any digraph — and, via the
    generic entry point, any annotated arc list — to the DOT language for
    external processing.  Symmetric digraphs render as undirected graphs
    with one edge per opposite pair. *)

(** [of_digraph ?highlight g] renders [g]; vertices carry their labels,
    arcs in [highlight] are drawn bold red (both orientations count for
    undirected output). *)
val of_digraph : ?highlight:(int * int) list -> Digraph.t -> string

(** [of_arcs ~name ~directed ~vertex_label arcs] renders an arbitrary arc
    list with string attributes: each element is
    [(src, dst, attr)] where [attr] is a raw DOT attribute list such as
    ["label=\"2\""] (may be empty). *)
val of_arcs :
  name:string ->
  directed:bool ->
  vertex_label:(int -> string) ->
  n:int ->
  (int * int * string) list ->
  string
