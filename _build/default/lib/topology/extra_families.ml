let require name cond =
  if not cond then invalid_arg ("Extra_families." ^ name ^ ": invalid dimension")

let cube_connected_cycles dim =
  require "cube_connected_cycles" (dim >= 3);
  let corners = 1 lsl dim in
  let n = dim * corners in
  let idx w i = (w * dim) + i in
  let edges = ref [] in
  for w = 0 to corners - 1 do
    for i = 0 to dim - 1 do
      (* cycle edge to the next position *)
      edges := (idx w i, idx w ((i + 1) mod dim)) :: !edges;
      (* rung edge across dimension i *)
      let w' = w lxor (1 lsl i) in
      if w < w' then edges := (idx w i, idx w' i) :: !edges
    done
  done;
    let bits w =
    String.init dim (fun j ->
        if w land (1 lsl (dim - 1 - j)) <> 0 then '1' else '0')
  in
  let labels =
    Array.init n (fun v ->
        let w = v / dim and i = v mod dim in
        Printf.sprintf "%s,%d" (bits w) i)
  in
  let arcs = List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) !edges in
  Digraph.make ~labels ~name:(Printf.sprintf "CCC(%d)" dim) n arcs

let rol dim w =
  let top = (w lsr (dim - 1)) land 1 in
  ((w lsl 1) land ((1 lsl dim) - 1)) lor top

let se_labels dim =
  let bits w =
    String.init dim (fun j ->
        if w land (1 lsl (dim - 1 - j)) <> 0 then '1' else '0')
  in
  Array.init (1 lsl dim) bits

let shuffle_exchange dim =
  require "shuffle_exchange" (dim >= 2);
  let n = 1 lsl dim in
  let edges = ref [] in
  for w = 0 to n - 1 do
    let x = w lxor 1 in
    if w < x then edges := (w, x) :: !edges;
    let s = rol dim w in
    if w <> s then edges := (min w s, max w s) :: !edges
  done;
  let edges = List.sort_uniq compare !edges in
  let arcs = List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) edges in
  Digraph.make ~labels:(se_labels dim)
    ~name:(Printf.sprintf "SE(%d)" dim)
    n arcs

let shuffle_exchange_directed dim =
  require "shuffle_exchange_directed" (dim >= 2);
  let n = 1 lsl dim in
  let arcs = ref [] in
  for w = 0 to n - 1 do
    let x = w lxor 1 in
    arcs := (w, x) :: !arcs;
    let s = rol dim w in
    if w <> s then arcs := (w, s) :: !arcs
  done;
  Digraph.make ~labels:(se_labels dim)
    ~name:(Printf.sprintf "dSE(%d)" dim)
    n !arcs

let knoedel ~delta ~n =
  require "knoedel"
    (n >= 2 && n mod 2 = 0 && delta >= 1 && 1 lsl delta <= n);
  let half = n / 2 in
  (* vertex (i, j) -> i*half + j *)
  let edges = ref [] in
  for j = 0 to half - 1 do
    for k = 0 to delta - 1 do
      let j' = (j + (1 lsl k) - 1) mod half in
      edges := (j, half + j') :: !edges
    done
  done;
  let labels =
    Array.init n (fun v ->
        Printf.sprintf "%d,%d" (v / half) (v mod half))
  in
  let arcs =
    List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) (List.sort_uniq compare !edges)
  in
  Digraph.make ~labels ~name:(Printf.sprintf "W(%d,%d)" delta n) n arcs
