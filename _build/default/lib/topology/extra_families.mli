(** Additional hypercube-derived families.

    The paper's Section 3 situates Butterfly/de Bruijn/Kautz among the
    bounded-degree relatives of the hypercube (citing Leighton [19]); the
    cube-connected cycles and shuffle-exchange networks are the other two
    classical members of that family, and make good extra benchmarks for
    the general bounds (no published separator refinement applies to
    them, so they exercise the Fig. 4 path of the code). *)

(** [cube_connected_cycles dim] — [CCC(dim)]: each hypercube corner blown
    up into a [dim]-cycle, vertex [(w, i)] joined to [(w, i±1)] and to
    [(w xor 2^i, i)].  [dim ≥ 3] (smaller dims degenerate to multi-edges).
    Undirected, [dim·2^dim] vertices, 3-regular. *)
val cube_connected_cycles : int -> Digraph.t

(** [shuffle_exchange dim] — [SE(dim)] on [2^dim] binary strings with
    exchange edges [w ↔ w xor 1] and shuffle edges [w ↔ rol(w)]
    (undirected; the two fixed points of the rotation lose their shuffle
    loop).  [dim ≥ 2]. *)
val shuffle_exchange : int -> Digraph.t

(** [shuffle_exchange_directed dim] — shuffle arcs oriented [w → rol(w)],
    exchange arcs kept in both directions. *)
val shuffle_exchange_directed : int -> Digraph.t

(** [knoedel ~delta ~n] — the Knödel graph [W_{Δ,n}] ([n] even,
    [1 ≤ Δ ≤ ⌊log₂ n⌋]): vertices [(i, j)], [i ∈ {0,1}],
    [j ∈ 0..n/2-1], with edges [(0, j) – (1, (j + 2^k - 1) mod n/2)] for
    [k = 0..Δ-1].  The classical minimum-gossip graphs: [W_{⌊log n⌋,n}]
    gossips in the optimal number of full-duplex rounds. *)
val knoedel : delta:int -> n:int -> Digraph.t
