let require name cond =
  if not cond then invalid_arg ("Families." ^ name ^ ": invalid dimension")

let ipow base e =
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * b) (b * b) (e lsr 1)
    else go acc (b * b) (e lsr 1)
  in
  go 1 base e

(* --- classical families --- *)

let undirected_of_edges ~name ?labels n edges =
  let arcs = List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) edges in
  Digraph.make ?labels ~name n arcs

let path n =
  require "path" (n >= 1);
  undirected_of_edges ~name:(Printf.sprintf "P(%d)" n) n
    (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  require "cycle" (n >= 3);
  undirected_of_edges ~name:(Printf.sprintf "C(%d)" n) n
    (List.init n (fun i -> (i, (i + 1) mod n)))

let directed_cycle n =
  require "directed_cycle" (n >= 2);
  Digraph.make ~name:(Printf.sprintf "DC(%d)" n) n
    (List.init n (fun i -> (i, (i + 1) mod n)))

let complete n =
  require "complete" (n >= 1);
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  undirected_of_edges ~name:(Printf.sprintf "K(%d)" n) n !edges

let star n =
  require "star" (n >= 2);
  undirected_of_edges ~name:(Printf.sprintf "Star(%d)" n) n
    (List.init (n - 1) (fun i -> (0, i + 1)))

let complete_bipartite a b =
  require "complete_bipartite" (a >= 1 && b >= 1);
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = 0 to b - 1 do
      edges := (u, a + v) :: !edges
    done
  done;
  undirected_of_edges ~name:(Printf.sprintf "K(%d,%d)" a b) (a + b) !edges

let hypercube dim =
  require "hypercube" (dim >= 1);
  let n = 1 lsl dim in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for bit = 0 to dim - 1 do
      let v = u lxor (1 lsl bit) in
      if u < v then edges := (u, v) :: !edges
    done
  done;
  undirected_of_edges ~name:(Printf.sprintf "Q(%d)" dim) n !edges

let grid rows cols =
  require "grid" (rows >= 1 && cols >= 1);
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (idx r c, idx r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (idx r c, idx (r + 1) c) :: !edges
    done
  done;
  undirected_of_edges ~name:(Printf.sprintf "Grid(%dx%d)" rows cols)
    (rows * cols) !edges

let torus rows cols =
  require "torus" (rows >= 3 && cols >= 3);
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges := (idx r c, idx r ((c + 1) mod cols)) :: !edges;
      edges := (idx r c, idx ((r + 1) mod rows) c) :: !edges
    done
  done;
  undirected_of_edges ~name:(Printf.sprintf "Torus(%dx%d)" rows cols)
    (rows * cols) !edges

let complete_dary_tree d depth =
  require "complete_dary_tree" (d >= 2 && depth >= 0);
  let n = (ipow d (depth + 1) - 1) / (d - 1) in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := ((v - 1) / d, v) :: !edges
  done;
  undirected_of_edges ~name:(Printf.sprintf "T(%d,%d)" d depth) n !edges

(* --- string coding --- *)

let string_of_code ~d ~dim code =
  Array.init dim (fun i -> ((code / ipow d i) mod d) + 1)

let code_of_string ~d s =
  let code = ref 0 in
  for i = Array.length s - 1 downto 0 do
    code := (!code * d) + (s.(i) - 1)
  done;
  !code

let word_label s =
  String.concat "" (List.rev_map string_of_int (Array.to_list s))

(* --- butterflies --- *)

let bf_index ~d ~dim x l = (l * ipow d dim) + x

let butterfly d dim =
  require "butterfly" (d >= 2 && dim >= 1);
  let words = ipow d dim in
  let n = (dim + 1) * words in
  let arcs = ref [] in
  let labels = Array.make n "" in
  for l = 0 to dim do
    for x = 0 to words - 1 do
      labels.(bf_index ~d ~dim x l) <-
        Printf.sprintf "%s,%d" (word_label (string_of_code ~d ~dim x)) l
    done
  done;
  for l = 1 to dim do
    for x = 0 to words - 1 do
      let u = bf_index ~d ~dim x l in
      let p = l - 1 in
      let base = x - ((x / ipow d p) mod d * ipow d p) in
      for sym = 0 to d - 1 do
        let y = base + (sym * ipow d p) in
        let v = bf_index ~d ~dim y (l - 1) in
        arcs := (u, v) :: (v, u) :: !arcs
      done
    done
  done;
  Digraph.make ~labels ~name:(Printf.sprintf "BF(%d,%d)" d dim) n !arcs

let wbf_arcs d dim =
  let words = ipow d dim in
  let arcs = ref [] in
  for l = 0 to dim - 1 do
    let p = (l + dim - 1) mod dim in
    for x = 0 to words - 1 do
      let u = (l * words) + x in
      let base = x - ((x / ipow d p) mod d * ipow d p) in
      for sym = 0 to d - 1 do
        let y = base + (sym * ipow d p) in
        let v = (p * words) + y in
        arcs := (u, v) :: !arcs
      done
    done
  done;
  !arcs

let wbf_labels d dim =
  let words = ipow d dim in
  Array.init (dim * words) (fun idx ->
      let l = idx / words and x = idx mod words in
      Printf.sprintf "%s,%d" (word_label (string_of_code ~d ~dim x)) l)

let wrapped_butterfly_directed d dim =
  require "wrapped_butterfly_directed" (d >= 2 && dim >= 2);
  Digraph.make
    ~labels:(wbf_labels d dim)
    ~name:(Printf.sprintf "dWBF(%d,%d)" d dim)
    (dim * ipow d dim) (wbf_arcs d dim)

let wrapped_butterfly d dim =
  require "wrapped_butterfly" (d >= 2 && dim >= 2);
  Digraph.rename
    (Digraph.symmetric_closure (wrapped_butterfly_directed d dim))
    (Printf.sprintf "WBF(%d,%d)" d dim)

(* --- de Bruijn --- *)

let de_bruijn_directed d dim =
  require "de_bruijn_directed" (d >= 2 && dim >= 1);
  let n = ipow d dim in
  let arcs = ref [] in
  let labels =
    Array.init n (fun x -> word_label (string_of_code ~d ~dim x))
  in
  for x = 0 to n - 1 do
    let shifted = x mod ipow d (dim - 1) * d in
    for sym = 0 to d - 1 do
      let y = shifted + sym in
      if y <> x then arcs := (x, y) :: !arcs
    done
  done;
  Digraph.make ~labels ~name:(Printf.sprintf "dDB(%d,%d)" d dim) n !arcs

let de_bruijn d dim =
  require "de_bruijn" (d >= 2 && dim >= 1);
  Digraph.rename
    (Digraph.symmetric_closure (de_bruijn_directed d dim))
    (Printf.sprintf "DB(%d,%d)" d dim)

(* --- Kautz --- *)

let kautz_vertex_of_string ~d s =
  let dim = Array.length s in
  if dim < 1 then invalid_arg "Families.kautz_vertex_of_string: empty string";
  let check_sym x = x >= 1 && x <= d + 1 in
  if not (Array.for_all check_sym s) then
    invalid_arg "Families.kautz_vertex_of_string: symbol out of range";
  for i = 0 to dim - 2 do
    if s.(i) = s.(i + 1) then
      invalid_arg "Families.kautz_vertex_of_string: repeated adjacent symbol"
  done;
  let v = ref (s.(dim - 1) - 1) in
  for i = dim - 2 downto 0 do
    let rank = if s.(i) < s.(i + 1) then s.(i) - 1 else s.(i) - 2 in
    v := (!v * d) + rank
  done;
  !v

let kautz_string_of_vertex ~d ~dim v =
  let s = Array.make dim 0 in
  let rest = ref v in
  let ranks = Array.make (max 0 (dim - 1)) 0 in
  for i = 0 to dim - 2 do
    ranks.(i) <- !rest mod d;
    rest := !rest / d
  done;
  s.(dim - 1) <- !rest + 1;
  for i = dim - 2 downto 0 do
    let r = ranks.(i) in
    s.(i) <- (if r + 1 < s.(i + 1) then r + 1 else r + 2)
  done;
  s

let kautz_directed d dim =
  require "kautz_directed" (d >= 2 && dim >= 1);
  let n = (d + 1) * ipow d (dim - 1) in
  let arcs = ref [] in
  let labels =
    Array.init n (fun v -> word_label (kautz_string_of_vertex ~d ~dim v))
  in
  for v = 0 to n - 1 do
    let s = kautz_string_of_vertex ~d ~dim v in
    let shifted = Array.make dim 0 in
    Array.blit s 0 shifted 1 (dim - 1);
    for sym = 1 to d + 1 do
      if sym <> s.(0) then begin
        shifted.(0) <- sym;
        let w = kautz_vertex_of_string ~d shifted in
        if w <> v then arcs := (v, w) :: !arcs
      end
    done
  done;
  Digraph.make ~labels ~name:(Printf.sprintf "dK(%d,%d)" d dim) n !arcs

let kautz d dim =
  require "kautz" (d >= 2 && dim >= 1);
  Digraph.rename
    (Digraph.symmetric_closure (kautz_directed d dim))
    (Printf.sprintf "K(%d,%d)" d dim)
