(** Generators for every network family the paper mentions.

    The hypercube-derived families — Butterfly, Wrapped Butterfly,
    de Bruijn, Kautz (Section 3) — are the ones the topology-specific
    bounds of Section 5 apply to; paths, cycles, trees, grids, complete
    graphs and hypercubes are the classical gossip benchmarks cited from
    [8,11,14,20] that our upper-bound protocols run on.

    Conventions: strings are over the alphabet [{1, ..., d}] (or
    [{1, ..., d+1}] for Kautz) exactly as in the paper, with [x_0] the
    rightmost symbol; every generator rejects degenerate dimensions with
    [Invalid_argument]; undirected networks are returned as symmetric
    digraphs.  De Bruijn self-loops (at constant strings) are dropped:
    a processor-bound protocol can never use them. *)

(** {1 Classical families} *)

(** [path n] is the undirected path on [n ≥ 1] vertices. *)
val path : int -> Digraph.t

(** [cycle n] is the undirected cycle, [n ≥ 3]. *)
val cycle : int -> Digraph.t

(** [directed_cycle n] is the one-way ring, [n ≥ 2]. *)
val directed_cycle : int -> Digraph.t

(** [complete n] is the complete graph [K_n], [n ≥ 1]. *)
val complete : int -> Digraph.t

(** [star n] is the star with one hub and [n - 1] leaves, [n ≥ 2]. *)
val star : int -> Digraph.t

(** [complete_bipartite a b] is [K_{a,b}], [a, b ≥ 1]. *)
val complete_bipartite : int -> int -> Digraph.t

(** [hypercube dim] is the binary hypercube on [2^dim] vertices,
    [dim ≥ 1]. *)
val hypercube : int -> Digraph.t

(** [grid rows cols] is the 2-dimensional mesh, both dims [≥ 1]. *)
val grid : int -> int -> Digraph.t

(** [torus rows cols] is the wrap-around mesh, both dims [≥ 3]. *)
val torus : int -> int -> Digraph.t

(** [complete_dary_tree d depth] is the complete [d]-ary tree of the given
    depth ([depth = 0] is a single vertex), [d ≥ 2]. *)
val complete_dary_tree : int -> int -> Digraph.t

(** {1 Hypercube-derived families of Section 3} *)

(** [butterfly d dim] is [BF(d, D)]: [(D+1)·d^D] vertices [(x, level)],
    levels [0..D], with pairwise opposite arcs between consecutive levels
    — a symmetric digraph. [d ≥ 2], [dim ≥ 1]. *)
val butterfly : int -> int -> Digraph.t

(** [wrapped_butterfly_directed d dim] is the digraph [WBF(d, D)]:
    [D·d^D] vertices, arcs from level [l] to level [(l-1) mod D] changing
    string position [(l-1) mod D]. [d ≥ 2], [dim ≥ 2]. *)
val wrapped_butterfly_directed : int -> int -> Digraph.t

(** [wrapped_butterfly d dim] is the undirected Wrapped Butterfly
    (symmetric closure of the directed one). *)
val wrapped_butterfly : int -> int -> Digraph.t

(** [de_bruijn_directed d dim] is the de Bruijn digraph [DB(d, D)] minus
    its [d] self-loops: arcs [x_{D-1}...x_0 → x_{D-2}...x_0 α].
    [d ≥ 2], [dim ≥ 1]. *)
val de_bruijn_directed : int -> int -> Digraph.t

(** [de_bruijn d dim] is the undirected de Bruijn graph. *)
val de_bruijn : int -> int -> Digraph.t

(** [kautz_directed d dim] is the Kautz digraph [K(d, D)]:
    [(d+1)·d^(D-1)] vertices (strings with no two consecutive equal
    symbols), arcs [x → x_{D-2}...x_0 α] with [α ≠ x_0].
    [d ≥ 2], [dim ≥ 1]. *)
val kautz_directed : int -> int -> Digraph.t

(** [kautz d dim] is the undirected Kautz graph. *)
val kautz : int -> int -> Digraph.t

(** {1 String coding helpers}

    Exposed for the separator constructions and the tests. *)

(** [string_of_code ~d ~dim code] decodes a base-[d] word of length [dim]
    (symbols [1..d], [x_0] = least significant) from its integer code. *)
val string_of_code : d:int -> dim:int -> int -> int array

(** [code_of_string ~d s] is the inverse of {!string_of_code}. *)
val code_of_string : d:int -> int array -> int

(** [kautz_vertex_of_string ~d s] is the vertex index of a valid Kautz
    string (symbols in [1..d+1], adjacent symbols distinct).
    @raise Invalid_argument on an invalid string. *)
val kautz_vertex_of_string : d:int -> int array -> int

(** [kautz_string_of_vertex ~d ~dim v] decodes a Kautz vertex index. *)
val kautz_string_of_vertex : d:int -> dim:int -> int -> int array
