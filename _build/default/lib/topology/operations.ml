let line_digraph g =
  let arcs = Array.of_list (Digraph.arcs g) in
  let index = Hashtbl.create (Array.length arcs) in
  Array.iteri (fun i arc -> Hashtbl.replace index arc i) arcs;
  let out = ref [] in
  Array.iteri
    (fun i (_, v) ->
      Array.iter
        (fun w ->
          match Hashtbl.find_opt index (v, w) with
          | Some j when j <> i -> out := (i, j) :: !out
          | _ -> ())
        (Digraph.out_neighbors g v))
    arcs;
  let labels =
    Array.map
      (fun (u, v) ->
        Printf.sprintf "%s>%s" (Digraph.label g u) (Digraph.label g v))
      arcs
  in
  Digraph.make ~labels
    ~name:(Printf.sprintf "L(%s)" (Digraph.name g))
    (Array.length arcs) !out

let line_vertex_of_arc g (u, v) =
  let arcs = Digraph.arcs g in
  let rec find i = function
    | [] -> raise Not_found
    | a :: rest -> if a = (u, v) then i else find (i + 1) rest
  in
  find 0 arcs

let cartesian_product a b =
  let na = Digraph.n_vertices a and nb = Digraph.n_vertices b in
  let idx x y = (x * nb) + y in
  let arcs = ref [] in
  for x = 0 to na - 1 do
    for y = 0 to nb - 1 do
      Array.iter
        (fun x' -> arcs := (idx x y, idx x' y) :: !arcs)
        (Digraph.out_neighbors a x);
      Array.iter
        (fun y' -> arcs := (idx x y, idx x y') :: !arcs)
        (Digraph.out_neighbors b y)
    done
  done;
  let labels =
    Array.init (na * nb) (fun v ->
        Printf.sprintf "(%s,%s)"
          (Digraph.label a (v / nb))
          (Digraph.label b (v mod nb)))
  in
  Digraph.make ~labels
    ~name:(Printf.sprintf "%s x %s" (Digraph.name a) (Digraph.name b))
    (na * nb) !arcs

let power g k =
  if k < 1 then invalid_arg "Operations.power: k must be >= 1";
  let rec go acc i = if i = 1 then acc else go (cartesian_product acc g) (i - 1) in
  Digraph.rename (go g k) (Printf.sprintf "%s^%d" (Digraph.name g) k)

let degree_sequences g =
  let n = Digraph.n_vertices g in
  let outs = List.init n (Digraph.out_degree g) in
  let ins = List.init n (Digraph.in_degree g) in
  (List.sort compare outs, List.sort compare ins)

let same_shape a b =
  Digraph.n_vertices a = Digraph.n_vertices b
  && Digraph.n_arcs a = Digraph.n_arcs b
  && Digraph.is_symmetric a = Digraph.is_symmetric b
  && degree_sequences a = degree_sequences b

let isomorphic_by a b f =
  let n = Digraph.n_vertices a in
  Array.length f = n
  && Digraph.n_vertices b = n
  && Digraph.n_arcs a = Digraph.n_arcs b
  && (let seen = Array.make n false in
      Array.for_all
        (fun v ->
          if v < 0 || v >= n || seen.(v) then false
          else begin
            seen.(v) <- true;
            true
          end)
        f)
  &&
  let ok = ref true in
  Digraph.iter_arcs
    (fun u v -> if not (Digraph.mem_arc b f.(u) f.(v)) then ok := false)
    a;
  !ok
