(** Graph operations: line digraphs and cartesian products.

    The families of Section 3 are not ad hoc: de Bruijn digraphs are
    iterated line digraphs of complete digraphs-with-loops, Kautz
    digraphs are iterated line digraphs of complete digraphs, grids and
    tori are cartesian products of paths and cycles, and the hypercube is
    a product power of [K₂].  These operations make those relationships
    executable, and the tests verify the classical isomorphisms by
    explicit bijections. *)

(** [line_digraph g] — vertices are the arcs of [g]; there is an arc from
    [(u, v)] to [(v, w)] for every consecutive pair.  Labels are
    ["u>v"] over [g]'s labels.  Self-loops in the result (possible when
    [g] has a 2-cycle, e.g. [(u,v) → (v,u) → (u,v)]... which is a
    2-cycle, not a loop — loops cannot arise since [g] itself has none)
    do not occur. *)
val line_digraph : Digraph.t -> Digraph.t

(** [line_vertex_of_arc g (u, v)] — index of arc [(u, v)] in
    [line_digraph g]'s vertex numbering; total order is [Digraph.arcs].
    @raise Not_found if the arc is absent. *)
val line_vertex_of_arc : Digraph.t -> int * int -> int

(** [cartesian_product a b] — vertices are pairs [(x, y)] (encoded
    [x * n_b + y]); [(x, y) → (x', y)] for arcs [x → x'] of [a] and
    [(x, y) → (x, y')] for arcs [y → y'] of [b]. *)
val cartesian_product : Digraph.t -> Digraph.t -> Digraph.t

(** [power g k] — the [k]-fold cartesian product of [g] with itself,
    [k ≥ 1].  [power (complete 2) d] is the hypercube [Q(d)]. *)
val power : Digraph.t -> int -> Digraph.t

(** [same_shape a b] — cheap isomorphism-necessary checks: vertex and arc
    counts, sorted out- and in-degree sequences, symmetry flags.  Used by
    the tests together with explicit bijections. *)
val same_shape : Digraph.t -> Digraph.t -> bool

(** [isomorphic_by a b f] — verifies that the vertex map [f] (an array of
    length [n_vertices a]) is a bijection carrying arcs of [a] exactly
    onto arcs of [b]. *)
val isomorphic_by : Digraph.t -> Digraph.t -> int array -> bool
