module Prng = Gossip_util.Prng

let regular ~n ~degree ~seed =
  if n < 2 || degree < 1 || degree >= n then
    invalid_arg "Random_graphs.regular: need 1 <= degree < n, n >= 2";
  if n * degree mod 2 <> 0 then
    invalid_arg "Random_graphs.regular: n·degree must be even";
  let rng = Prng.create seed in
  let attempt () =
    (* configuration model: one stub per (vertex, slot), random perfect
       matching of stubs *)
    let stubs = Array.init (n * degree) (fun i -> i / degree) in
    Prng.shuffle rng stubs;
    let edges = Hashtbl.create (n * degree / 2) in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < Array.length stubs do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      if u = v || Hashtbl.mem edges (min u v, max u v) then ok := false
      else Hashtbl.replace edges (min u v, max u v) ();
      i := !i + 2
    done;
    if !ok then Some (Hashtbl.fold (fun e () acc -> e :: acc) edges []) else None
  in
  let rec retry k =
    if k = 0 then failwith "Random_graphs.regular: too many restarts"
    else match attempt () with Some edges -> edges | None -> retry (k - 1)
  in
  let edges = retry 1000 in
  let arcs = List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) edges in
  Digraph.make ~name:(Printf.sprintf "R(%d,%d)" n degree) n arcs

let erdos_renyi_digraph ~n ~p ~seed =
  if n < 1 || p < 0.0 || p > 1.0 then
    invalid_arg "Random_graphs.erdos_renyi_digraph: bad parameters";
  let rng = Prng.create seed in
  let arcs = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Prng.float rng 1.0 < p then arcs := (u, v) :: !arcs
    done
  done;
  Digraph.make ~name:(Printf.sprintf "G(%d,%.2f)" n p) n !arcs

let strongly_connected_digraph ~n ~extra_arcs ~seed =
  if n < 2 || extra_arcs < 0 then
    invalid_arg "Random_graphs.strongly_connected_digraph: bad parameters";
  let rng = Prng.create seed in
  let arcs = ref (List.init n (fun i -> (i, (i + 1) mod n))) in
  let added = ref 0 and tries = ref 0 in
  while !added < extra_arcs && !tries < 100 * extra_arcs do
    incr tries;
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && not (List.mem (u, v) !arcs) then begin
      arcs := (u, v) :: !arcs;
      incr added
    end
  done;
  Digraph.make ~name:(Printf.sprintf "SC(%d,+%d)" n extra_arcs) n !arcs
