(** Random network generators.

    The paper's general bounds (Fig. 4) hold for {e every} network, so
    random instances are the natural stress test: random regular graphs
    are the classic "generic bounded-degree network", and random strongly
    connected digraphs exercise the directed machinery.  All generators
    are deterministic given the seed. *)

(** [regular ~n ~degree ~seed] — a random [degree]-regular simple
    undirected graph on [n] vertices via the configuration model with
    restarts (pairs stubs uniformly; resamples on self-loops or
    multi-edges).  Requires [n·degree] even, [degree < n].
    @raise Invalid_argument on infeasible parameters; gives up (raises
    [Failure]) only if 1000 restarts fail, which for [degree ≤ √n] is
    vanishingly unlikely. *)
val regular : n:int -> degree:int -> seed:int -> Digraph.t

(** [erdos_renyi_digraph ~n ~p ~seed] — each ordered pair becomes an arc
    independently with probability [p] (no self-loops). *)
val erdos_renyi_digraph : n:int -> p:float -> seed:int -> Digraph.t

(** [strongly_connected_digraph ~n ~extra_arcs ~seed] — a random directed
    cycle (guaranteeing strong connectivity) plus [extra_arcs] random
    chords. *)
val strongly_connected_digraph :
  n:int -> extra_arcs:int -> seed:int -> Digraph.t
