type t = { alpha : float; ell : float; v1 : int list; v2 : int list }

type measurement = { distance : int; min_size : int; n : int }

let log2 = Gossip_util.Numeric.log2

let ipow base e =
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * b) (b * b) (e lsr 1)
    else go acc (b * b) (e lsr 1)
  in
  go 1 base e

let custom ~alpha ~ell ~v1 ~v2 = { alpha; ell; v1; v2 }

let is_low ~d sym = float_of_int sym <= float_of_int d /. 2.0

(* Split by the top string symbol: "low" means x_(D-1) <= d/2. *)
let top_symbol_low ~d ~dim x =
  let s = Families.string_of_code ~d ~dim x in
  is_low ~d s.(dim - 1)

let butterfly ~d ~dim =
  let words = ipow d dim in
  let v1 = ref [] and v2 = ref [] in
  for x = 0 to words - 1 do
    (* BF index of (x, 0) is x. *)
    if top_symbol_low ~d ~dim x then v1 := x :: !v1 else v2 := x :: !v2
  done;
  { alpha = log2 (float_of_int d) /. 2.0;
    ell = 2.0 /. log2 (float_of_int d);
    v1 = !v1;
    v2 = !v2 }

let wrapped_butterfly_directed ~d ~dim =
  let words = ipow d dim in
  let v1 = ref [] and v2 = ref [] in
  for x = 0 to words - 1 do
    if top_symbol_low ~d ~dim x then v1 := (((dim - 1) * words) + x) :: !v1
    else v2 := x :: !v2
  done;
  { alpha = log2 (float_of_int d) /. 2.0;
    ell = 2.0 /. log2 (float_of_int d);
    v1 = !v1;
    v2 = !v2 }

(* Sparse checked positions h·j (h = ceil(sqrt D)), as in Lemma 3.1. *)
let sparse_positions dim =
  let h = max 1 (int_of_float (ceil (sqrt (float_of_int dim)))) in
  let rec go j acc =
    if h * j >= dim then List.rev acc else go (j + 1) ((h * j) :: acc)
  in
  go 0 []

(* Block of h consecutive positions starting at [start]. *)
let block_positions dim start =
  let h = max 1 (int_of_float (ceil (sqrt (float_of_int dim)))) in
  let stop = min dim (start + h) in
  List.init (stop - start) (fun i -> start + i)

let constrained ~d ~low positions s =
  List.for_all
    (fun p -> if low then is_low ~d s.(p) else not (is_low ~d s.(p)))
    positions

let wrapped_butterfly ~d ~dim =
  let words = ipow d dim in
  let positions = sparse_positions dim in
  let mid_level = dim / 2 in
  let v1 = ref [] and v2 = ref [] in
  for x = 0 to words - 1 do
    let s = Families.string_of_code ~d ~dim x in
    if constrained ~d ~low:true positions s then v1 := x :: !v1
    else if constrained ~d ~low:false positions s then
      v2 := ((mid_level * words) + x) :: !v2
  done;
  { alpha = 2.0 *. log2 (float_of_int d) /. 3.0;
    ell = 3.0 /. (2.0 *. log2 (float_of_int d));
    v1 = !v1;
    v2 = !v2 }

(* Shift-network separator: X1 constrains the sparse positions low, X2
   constrains a block of h consecutive positions high.  With the block at
   the top the directed distance is >= D - h + 1; with the block in the
   middle the undirected distance is >= D/2 - O(h). *)
let shift_sets ~d ~dim ~decode ~count ~block_start =
  let low_positions = sparse_positions dim in
  let high_positions = block_positions dim block_start in
  let v1 = ref [] and v2 = ref [] in
  for v = 0 to count - 1 do
    let s = decode v in
    if constrained ~d ~low:true low_positions s then v1 := v :: !v1
    else if constrained ~d ~low:false high_positions s then v2 := v :: !v2
  done;
  (!v1, !v2)

let h_of dim = max 1 (int_of_float (ceil (sqrt (float_of_int dim))))

let de_bruijn_generic ~d ~dim ~block_start ~ell =
  let count = ipow d dim in
  let v1, v2 =
    shift_sets ~d ~dim
      ~decode:(fun v -> Families.string_of_code ~d ~dim v)
      ~count ~block_start
  in
  { alpha = log2 (float_of_int d); ell; v1; v2 }

let de_bruijn ~d ~dim =
  de_bruijn_generic ~d ~dim
    ~block_start:(dim - h_of dim)
    ~ell:(1.0 /. log2 (float_of_int d))

let de_bruijn_undirected ~d ~dim =
  de_bruijn_generic ~d ~dim
    ~block_start:(max 0 ((dim - h_of dim) / 2))
    ~ell:(1.0 /. (2.0 *. log2 (float_of_int d)))

let kautz_generic ~d ~dim ~block_start ~ell =
  let count = (d + 1) * ipow d (dim - 1) in
  let v1, v2 =
    shift_sets ~d ~dim
      ~decode:(fun v -> Families.kautz_string_of_vertex ~d ~dim v)
      ~count ~block_start
  in
  { alpha = log2 (float_of_int d); ell; v1; v2 }

let kautz ~d ~dim =
  kautz_generic ~d ~dim
    ~block_start:(dim - h_of dim)
    ~ell:(1.0 /. log2 (float_of_int d))

let kautz_undirected ~d ~dim =
  kautz_generic ~d ~dim
    ~block_start:(max 0 ((dim - h_of dim) / 2))
    ~ell:(1.0 /. (2.0 *. log2 (float_of_int d)))

let measure g sep =
  if sep.v1 = [] || sep.v2 = [] then
    invalid_arg "Separator.measure: empty separator set";
  {
    distance = Metrics.set_distance g sep.v1 sep.v2;
    min_size = min (List.length sep.v1) (List.length sep.v2);
    n = Digraph.n_vertices g;
  }
