(** ⟨α, l⟩-separators (Definition 3.5) and the constructions of Lemma 3.1.

    A family has an ⟨α, l⟩-separator when every member contains vertex
    sets [V1, V2] with directed distance [l·log n − o(log n)] and both of
    size at least [2^(α·l·log n − o(log n))].  The separator feeds
    Theorem 5.1: large, far-apart sets force many distinct long dipaths
    through the delay digraph.

    Each constructor returns both the numeric parameters [(α, l)] and
    concrete vertex sets, so the tests re-measure the distance and size
    claims by BFS on generated instances.

    {b Correction to Lemma 3.1 for shift networks.}  The paper's proof
    constrains the same string positions [{h·j}] (with [h = ⌈√D⌉]) in both
    [X1] and [X2] for de Bruijn and Kautz.  In those networks arcs
    {e shift} the string, so after one hop the constrained positions of
    [X1] and [X2] no longer align and the two sets are at distance 1 (we
    measure exactly that on generated instances).  We therefore use the
    corrected sets: [X1] constrains positions [{h·j}] to low symbols and
    [X2] constrains the {e top block} [\[D-h, D)] to high symbols.  In the
    directed digraph an [t]-step walk aligns [u]'s positions [p] with
    [v]'s positions [p + t], and every window of length [h] contains a
    multiple of [h], so every [t ≤ D - h] is blocked: the directed
    distance is at least [D - h + 1 = D - O(√D)], with
    [|X1|, |X2| ≥ d^(D - O(√D))] — exactly the claimed ⟨log d, 1/log d⟩.
    For the {e undirected} de Bruijn/Kautz graphs backward shifts can slide
    any edge-anchored block away, so we provide a middle-block variant
    certifying distance [D/2 - O(√D)], i.e. ⟨log d, 1/(2 log d)⟩; the
    published Fig. 5/6 rows use [l = 1/log d], which our machinery can
    only certify for the directed case (see EXPERIMENTS.md). *)

type t = {
  alpha : float;  (** the density exponent α of Definition 3.5 *)
  ell : float;  (** the distance coefficient l of Definition 3.5 *)
  v1 : int list;  (** concrete first set for this instance *)
  v2 : int list;  (** concrete second set for this instance *)
}

(** [butterfly ~d ~dim] — [α = log(d)/2], [l = 2/log(d)]; the sets split
    level 0 by the top string symbol (distance [2D]). *)
val butterfly : d:int -> dim:int -> t

(** [wrapped_butterfly_directed ~d ~dim] — [α = log(d)/2],
    [l = 2/log(d)]; level [D-1] against level 0 (distance [2D - 1]). *)
val wrapped_butterfly_directed : d:int -> dim:int -> t

(** [wrapped_butterfly ~d ~dim] — [α = 2·log(d)/3], [l = 3/(2·log d)];
    strings constrained every [⌈√D⌉] positions, levels 0 and [D/2]
    (distance [3D/2 - O(√D)]). *)
val wrapped_butterfly : d:int -> dim:int -> t

(** [de_bruijn ~d ~dim] — corrected construction for the {e directed}
    [DB(d, D)]: [α = log(d)], [l = 1/log(d)], distance [≥ D - ⌈√D⌉ + 1]. *)
val de_bruijn : d:int -> dim:int -> t

(** [de_bruijn_undirected ~d ~dim] — middle-block variant sound for the
    undirected graph: [α = log(d)], [l = 1/(2·log d)], distance
    [≥ D/2 - O(√D)]. *)
val de_bruijn_undirected : d:int -> dim:int -> t

(** [kautz ~d ~dim] — corrected construction for the directed [K(d, D)],
    same parameters as {!de_bruijn}. *)
val kautz : d:int -> dim:int -> t

(** [kautz_undirected ~d ~dim] — middle-block variant, same parameters as
    {!de_bruijn_undirected}. *)
val kautz_undirected : d:int -> dim:int -> t

(** [custom ~alpha ~ell ~v1 ~v2] packages a user-provided separator. *)
val custom : alpha:float -> ell:float -> v1:int list -> v2:int list -> t

(** Result of measuring a separator on a concrete digraph. *)
type measurement = {
  distance : int;  (** [min dist(V1, V2)] *)
  min_size : int;  (** [min(|V1|, |V2|)] *)
  n : int;  (** vertices of the host digraph *)
}

(** [measure g sep] BFS-checks the claimed distance and sizes.
    @raise Invalid_argument if a set is empty or out of range. *)
val measure : Digraph.t -> t -> measurement
