lib/util/numeric.ml: Float Printf
