lib/util/numeric.mli:
