lib/util/parallel.ml: Array Domain Float List
