lib/util/parallel.mli:
