lib/util/prng.mli:
