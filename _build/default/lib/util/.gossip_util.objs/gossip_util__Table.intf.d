lib/util/table.mli:
