let default_tol = 1e-12

let log2 x = log x /. log 2.0

let phi = (1.0 +. sqrt 5.0) /. 2.0

let approx_equal ?(eps = 1e-9) a b =
  Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check_bracket name lo hi flo fhi =
  if not (lo < hi) then invalid_arg (name ^ ": empty interval");
  if flo *. fhi > 0.0 then
    invalid_arg
      (Printf.sprintf "%s: f(%g)=%g and f(%g)=%g do not bracket a root" name
         lo flo hi fhi)

let bisect ?(tol = default_tol) ~lo ~hi f =
  let flo = f lo and fhi = f hi in
  check_bracket "Numeric.bisect" lo hi flo fhi;
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else
    let rec go lo hi flo iterations =
      let mid = 0.5 *. (lo +. hi) in
      if hi -. lo <= tol || iterations > 200 then mid
      else
        let fmid = f mid in
        if fmid = 0.0 then mid
        else if flo *. fmid < 0.0 then go lo mid flo (iterations + 1)
        else go mid hi fmid (iterations + 1)
    in
    go lo hi flo 0

(* Brent's method, following the classical Numerical Recipes formulation:
   keep a bracketing pair (a, b) with f(b) the smaller residual, try
   inverse quadratic / secant steps and fall back to bisection whenever the
   interpolated step would leave the bracket or converge too slowly. *)
let brent ?(tol = default_tol) ~lo ~hi f =
  let fa = f lo and fb = f hi in
  check_bracket "Numeric.brent" lo hi fa fb;
  if fa = 0.0 then lo
  else if fb = 0.0 then hi
  else begin
    let a = ref lo and b = ref hi and fa = ref fa and fb = ref fb in
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in a := !b; b := t;
      let t = !fa in fa := !fb; fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and mflag = ref true in
    let result = ref !b in
    (try
       for _ = 1 to 200 do
         if !fb = 0.0 || Float.abs (!b -. !a) <= tol then begin
           result := !b;
           raise Exit
         end;
         let s =
           if !fa <> !fc && !fb <> !fc then
             (* inverse quadratic interpolation *)
             (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
             +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
             +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
           else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
         in
         let lo_guard = (3.0 *. !a +. !b) /. 4.0 in
         let between =
           if lo_guard < !b then s > lo_guard && s < !b
           else s > !b && s < lo_guard
         in
         let use_bisection =
           (not between)
           || (!mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.0)
           || ((not !mflag) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.0)
           || (!mflag && Float.abs (!b -. !c) < tol)
           || ((not !mflag) && Float.abs (!c -. !d) < tol)
         in
         let s = if use_bisection then 0.5 *. (!a +. !b) else s in
         mflag := use_bisection;
         let fs = f s in
         d := !c;
         c := !b;
         fc := !fb;
         if !fa *. fs < 0.0 then begin b := s; fb := fs end
         else begin a := s; fa := fs end;
         if Float.abs !fa < Float.abs !fb then begin
           let t = !a in a := !b; b := t;
           let t = !fa in fa := !fb; fb := t
         end;
         result := !b
       done
     with Exit -> ());
    !result
  end

let golden_max ?(tol = default_tol) ~lo ~hi f =
  let inv_phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  (* Standard golden-section: maintain interior points c < d. *)
  let a = lo and b = hi in
  let c = b -. ((b -. a) *. inv_phi) in
  let d = a +. ((b -. a) *. inv_phi) in
  let rec iterate a b c d fc fd n =
    if b -. a <= tol || n > 300 then
      let x = 0.5 *. (a +. b) in
      (x, f x)
    else if fc >= fd then
      let b' = d in
      let d' = c in
      let c' = b' -. ((b' -. a) *. inv_phi) in
      iterate a b' c' d' (f c') fc (n + 1)
    else
      let a' = c in
      let c' = d in
      let d' = a' +. ((b -. a') *. inv_phi) in
      iterate a' b c' d' fd (f d') (n + 1)
  in
  iterate a b c d (f c) (f d) 0

let grid_max ?(points = 2000) ?(refine = true) ~lo ~hi f =
  if not (lo < hi) then invalid_arg "Numeric.grid_max: empty interval";
  let n = max 2 points in
  let best_x = ref lo and best_f = ref neg_infinity in
  for i = 0 to n do
    let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int n) in
    let fx = f x in
    if fx > !best_f then begin
      best_f := fx;
      best_x := x
    end
  done;
  if not refine then (!best_x, !best_f)
  else
    let h = (hi -. lo) /. float_of_int n in
    let a = Float.max lo (!best_x -. h) and b = Float.min hi (!best_x +. h) in
    let x, fx = golden_max ~lo:a ~hi:b f in
    if fx >= !best_f then (x, fx) else (!best_x, !best_f)
