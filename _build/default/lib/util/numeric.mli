(** Scalar numeric routines used by the bound computations.

    Every bound in the paper reduces to either a root of a monotone
    function on (0, 1) — e.g. the unique [λ] with
    [λ·sqrt(p⌈s/2⌉(λ))·sqrt(p⌊s/2⌋(λ)) = 1] of Corollary 4.4 — or a
    maximization of a smooth unimodal expression over an interval
    (Theorem 5.1).  We provide bracketed bisection, Brent root refinement
    and a grid + golden-section maximizer; none of these need external
    dependencies and all are deterministic. *)

(** Default absolute tolerance used by the solvers ([1e-12]). *)
val default_tol : float

(** [bisect ?tol ~lo ~hi f] finds [x] in [lo, hi] with [f x = 0], assuming
    [f lo] and [f hi] have opposite signs (one may be zero).
    @raise Invalid_argument if the bracket is invalid. *)
val bisect : ?tol:float -> lo:float -> hi:float -> (float -> float) -> float

(** [brent ?tol ~lo ~hi f] is a faster bracketed root finder (inverse
    quadratic interpolation with bisection fallback), same contract as
    {!bisect}. *)
val brent : ?tol:float -> lo:float -> hi:float -> (float -> float) -> float

(** [golden_max ?tol ~lo ~hi f] maximizes the unimodal [f] on [lo, hi] and
    returns [(argmax, max)]. *)
val golden_max :
  ?tol:float -> lo:float -> hi:float -> (float -> float) -> float * float

(** [grid_max ?points ?refine ~lo ~hi f] maximizes an arbitrary continuous
    [f] by scanning [points] samples (default 2000) and refining around the
    best one with golden section when [refine] (default true).  Returns
    [(argmax, max)].  Robust to mild multi-modality. *)
val grid_max :
  ?points:int ->
  ?refine:bool ->
  lo:float ->
  hi:float ->
  (float -> float) ->
  float * float

(** [log2 x] is the base-2 logarithm. The paper takes all logs to base 2. *)
val log2 : float -> float

(** [approx_equal ?eps a b] is [|a - b| <= eps] (default [1e-9]) scaled
    mildly by magnitude. *)
val approx_equal : ?eps:float -> float -> float -> bool

(** The golden ratio [(1 + sqrt 5)/2]; [1/phi = 0.6180...] is the
    [s → ∞] root of the half-duplex bound equation. *)
val phi : float
