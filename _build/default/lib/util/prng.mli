(** Deterministic pseudo-random numbers (splitmix64).

    All randomized pieces of the library (random systolic protocols,
    random matrices in tests, sampled diameters) draw from this generator
    so that every experiment is reproducible from a single integer seed,
    independently of the OCaml stdlib [Random] state. *)

type t

(** [create seed] is a fresh generator stream. Equal seeds give equal
    streams. *)
val create : int -> t

(** [copy t] is an independent generator continuing from the same state. *)
val copy : t -> t

(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [split t] derives a new independent stream, advancing [t]. *)
val split : t -> t
