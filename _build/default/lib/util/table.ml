type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  title : string;
  headers : string list;
  aligns : align array;
  mutable rows : row list; (* reversed *)
}

let make ~title headers =
  let n = List.length headers in
  let aligns = Array.make (max 1 n) Right in
  if n > 0 then aligns.(0) <- Left;
  { title; headers; aligns; rows = [] }

let set_align t i align =
  if i < 0 || i >= Array.length t.aligns then
    invalid_arg "Table.set_align: column out of range";
  t.aligns.(i) <- align

let add_row t cells =
  if List.length cells > List.length t.headers then
    invalid_arg "Table.add_row: more cells than headers";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Separator :: t.rows

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else
    let fill = width - len in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let left = fill / 2 in
        String.make left ' ' ^ s ^ String.make (fill - left) ' '

let render t =
  let ncols = List.length t.headers in
  let widths = Array.make (max 1 ncols) 0 in
  let measure cells =
    List.iteri
      (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c))
      cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Separator -> ()) t.rows;
  let buf = Buffer.create 1024 in
  let hline () =
    Buffer.add_char buf '+';
    Array.iteri
      (fun i w ->
        if i < ncols then begin
          Buffer.add_string buf (String.make (w + 2) '-');
          Buffer.add_char buf '+'
        end)
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    let cells = Array.of_list cells in
    Buffer.add_char buf '|';
    for i = 0 to ncols - 1 do
      let c = if i < Array.length cells then cells.(i) else "" in
      Buffer.add_char buf ' ';
      Buffer.add_string buf (pad t.aligns.(i) widths.(i) c);
      Buffer.add_string buf " |"
    done;
    Buffer.add_char buf '\n'
  in
  if t.title <> "" then begin
    Buffer.add_string buf ("== " ^ t.title ^ " ==");
    Buffer.add_char buf '\n'
  end;
  hline ();
  line t.headers;
  hline ();
  List.iter
    (function Cells c -> line c | Separator -> hline ())
    (List.rev t.rows);
  hline ();
  Buffer.contents buf

let print t = print_string (render t); print_newline ()

let cell_f ?(decimals = 4) x = Printf.sprintf "%.*f" decimals x

let cell_i n = string_of_int n
