(** Plain-text table rendering for the benchmark reports.

    The benchmark harness regenerates every numeric table of the paper
    (Figs. 4, 5, 6, 8) and prints them in the same row/column layout; this
    module provides the ASCII layout engine so that each experiment only
    supplies headers and cells. *)

type align = Left | Right | Center

type t

(** [make ~title headers] starts a table with the given column headers.
    All columns default to right alignment except the first (left). *)
val make : title:string -> string list -> t

(** [set_align t i align] overrides the alignment of column [i]. *)
val set_align : t -> int -> align -> unit

(** [add_row t cells] appends a row; missing cells render empty, extra
    cells are rejected.
    @raise Invalid_argument if [cells] is longer than the header. *)
val add_row : t -> string list -> unit

(** [add_sep t] appends a horizontal separator line. *)
val add_sep : t -> unit

(** [render t] lays the table out with box-drawing dashes and pipes. *)
val render : t -> string

(** [print t] renders to stdout followed by a newline. *)
val print : t -> unit

(** [cell_f ?decimals x] formats a float cell (default 4 decimals). *)
val cell_f : ?decimals:int -> float -> string

(** [cell_i n] formats an integer cell. *)
val cell_i : int -> string
