test/test_analysis.ml: Alcotest Buffer Builders Core Families Format Gossip_delay Gossip_protocol Gossip_topology List Protocol String Systolic
