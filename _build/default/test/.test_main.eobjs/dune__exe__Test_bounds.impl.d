test/test_bounds.ml: Alcotest Catalog Float General Gossip_bounds Gossip_topology Gossip_util List Option Printf QCheck QCheck_alcotest Separator_bounds String Tables
