test/test_integration.ml: Alcotest Buffer Builders Core Families Float Format Gossip_bounds Gossip_delay Gossip_protocol Gossip_simulate Gossip_topology List Metrics Option Printf Protocol Systolic
