test/test_linalg.ml: Alcotest Array Dense Float Fun Gossip_linalg Gossip_util Lanczos List Poly QCheck QCheck_alcotest Sparse Spectral Vec
