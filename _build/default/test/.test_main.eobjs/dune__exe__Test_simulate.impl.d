test/test_simulate.ml: Alcotest Array Builders Digraph Engine Families Faults Gossip_protocol Gossip_simulate Gossip_topology Gossip_util List Metrics Option Protocol QCheck QCheck_alcotest Systolic
