test/test_util.ml: Alcotest Array Bitset Float Fun Gossip_util List Numeric Parallel Prng QCheck QCheck_alcotest String Table
