(* Tests for the Core.Analysis facade: the one-call reports a downstream
   user sees first. *)

open Gossip_topology
open Gossip_protocol
module Analysis = Core.Analysis
module Certificate = Gossip_delay.Certificate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_analyze_network_fields () =
  let g = Families.kautz 2 4 in
  let r = Analysis.analyze_network g in
  check "name" true (r.Analysis.name = "K(2,4)");
  check_int "n" 24 r.Analysis.n;
  check "symmetric" true r.Analysis.symmetric;
  check_int "diameter" 4 r.Analysis.diameter;
  check_int "degree parameter" 3 r.Analysis.degree_parameter;
  check_int "six periods by default" 6 (List.length r.Analysis.general_bounds);
  (* bounds decrease with s and exceed the non-systolic one *)
  let values = List.map snd r.Analysis.general_bounds in
  check "monotone" true
    (List.for_all2 (fun a b -> a >= b -. 1e-9) values (List.tl values @ [ 0.0 ]));
  check "all above non-systolic" true
    (List.for_all (fun v -> v >= r.Analysis.nonsystolic_bound -. 1e-9) values);
  (* full-duplex bounds are below half-duplex ones at each s *)
  check "fd <= hd" true
    (List.for_all2
       (fun (_, hd) (_, fd) -> fd <= hd +. 1e-9)
       r.Analysis.general_bounds r.Analysis.general_bounds_fd)

let test_analyze_network_custom_periods () =
  let g = Families.path 6 in
  let r = Analysis.analyze_network ~periods:[ 4; 10 ] g in
  check_int "two periods" 2 (List.length r.Analysis.general_bounds);
  check "directed network also analyzable" true
    (let d = Analysis.analyze_network (Families.de_bruijn_directed 2 4) in
     not d.Analysis.symmetric)

let test_certify_protocol_consistency () =
  let sys = Builders.cycle_rotate 10 in
  let r = Analysis.certify_protocol sys in
  check "network name" true (r.Analysis.network = "C(10)");
  check_int "period recorded" 4 r.Analysis.period;
  (match r.Analysis.gossip_time with
  | Some t ->
      check "cert <= gossip" true
        (r.Analysis.certificate.Certificate.bound <= t);
      check "gossip >= diameter" true (t >= r.Analysis.diameter)
  | None -> Alcotest.fail "cycle protocol should complete");
  (match r.Analysis.broadcast_time with
  | Some b -> check "broadcast <= gossip" true
      (Some b <= r.Analysis.gossip_time)
  | None -> Alcotest.fail "broadcast should complete");
  check "asymptotic term positive" true (r.Analysis.asymptotic_main_term > 0.0)

let test_certify_protocol_incomplete () =
  (* a protocol that cannot gossip still gets analyzed at the horizon *)
  let g = Families.path 4 in
  let sys = Systolic.make g Protocol.Half_duplex [ [ (0, 1) ] ] in
  let r = Analysis.certify_protocol ~horizon:30 sys in
  check "no gossip time" true (r.Analysis.gossip_time = None);
  check "certificate still computed" true
    (r.Analysis.certificate.Certificate.bound >= 1)

let test_certify_full_duplex_mode_coefficient () =
  let hd = Analysis.certify_protocol (Builders.hypercube_sweep ~dim:3 ~full_duplex:false) in
  let fd = Analysis.certify_protocol (Builders.hypercube_sweep ~dim:3 ~full_duplex:true) in
  (* e_fd(s) <= e(s) pointwise, so the fd asymptotic term is smaller for
     the same network even at the smaller fd period *)
  check "fd main term below hd" true
    (fd.Analysis.asymptotic_main_term <= hd.Analysis.asymptotic_main_term +. 1e-9)

let test_reports_render () =
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  Analysis.pp_network_report ppf (Analysis.analyze_network (Families.cycle 6));
  Analysis.pp_protocol_report ppf
    (Analysis.certify_protocol (Builders.cycle_rotate 6));
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check "mentions network" true (contains "C(6)");
  check "mentions certificate" true (contains "certified lower bound");
  check "mentions modes" true (contains "half-duplex")

let suite =
  [
    ("analyze_network fields", `Quick, test_analyze_network_fields);
    ("analyze_network custom periods", `Quick, test_analyze_network_custom_periods);
    ("certify_protocol consistency", `Quick, test_certify_protocol_consistency);
    ("certify_protocol incomplete", `Quick, test_certify_protocol_incomplete);
    ("fd vs hd coefficients", `Quick, test_certify_full_duplex_mode_coefficient);
    ("reports render", `Quick, test_reports_render);
  ]
