(* Tests for Gossip_bounds: the paper's published numbers, monotonicity
   and limit behaviour of e(s), the separator maximization, and catalog
   consistency.  Tolerance 2e-4 covers the paper's 4-decimal truncation. *)

open Gossip_bounds
module Numeric = Gossip_util.Numeric

let check = Alcotest.(check bool)

let close ?(eps = 2e-4) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.4f got %.6f" msg expected actual

(* --- Fig. 4: the paper's general e(s) row --- *)

let test_fig4_values () =
  (* "e(3) = 2.8808, e(4) = 1.8133, e(5) = 1.6502, e(6) = 1.5363,
     e(7) = 1.5021, e(8) = 1.4721" *)
  close "e(3)" 2.8808 (General.e 3);
  close "e(4)" 1.8133 (General.e 4);
  close "e(5)" 1.6502 (General.e 5);
  close "e(6)" 1.5363 (General.e 6);
  close "e(7)" 1.5021 (General.e 7);
  close "e(8)" 1.4721 (General.e 8);
  close "e(inf) = 1.4404" 1.4404 General.e_inf

let test_fig4_lambdas () =
  (* λ(4) is the real root of λ³ + λ = 1; λ(inf) = 1/φ *)
  let l4 = General.lambda_star 4 in
  close ~eps:1e-9 "lambda(4) root of cubic" 0.0 ((l4 ** 3.0) +. l4 -. 1.0);
  close ~eps:1e-9 "lambda(inf) = 1/phi" (1.0 /. Numeric.phi)
    General.lambda_star_inf;
  (* λ(3): λ·sqrt(1+λ²) = 1 -> λ² golden *)
  let l3 = General.lambda_star 3 in
  close ~eps:1e-9 "lambda(3)" 0.0 ((l3 *. sqrt (1.0 +. (l3 *. l3))) -. 1.0)

let test_full_duplex_equals_broadcast_constants () =
  (* Section 6: the full-duplex general bounds coincide with the
     broadcasting constants c(d) of [22, 2]:
     c(2) = 1.4404, c(3) = 1.1374, c(4) = 1.0562 *)
  close "fd e(3) = c(2)" 1.4404 (General.e_fd 3);
  close "fd e(4) = c(3)" 1.1374 (General.e_fd 4);
  close "fd e(5) = c(4)" 1.0562 (General.e_fd 5);
  close ~eps:1e-9 "fd lambda(inf) = 1/2" 0.5 General.lambda_star_fd_inf;
  close ~eps:1e-9 "fd e(inf) = 1" 1.0 General.e_fd_inf

let test_e_monotone_decreasing () =
  let vals = List.init 18 (fun i -> General.e (i + 3)) in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-12 && decreasing rest
    | _ -> true
  in
  check "e(s) decreasing in s" true (decreasing vals);
  check "e(s) >= e_inf always" true
    (List.for_all (fun v -> v >= General.e_inf -. 1e-9) vals);
  (* converges to e_inf *)
  close ~eps:1e-2 "e(40) near e_inf" General.e_inf (General.e 40)

let test_norm_function_properties () =
  (* increasing in lambda, and the s split is the balanced one *)
  check "increasing in lambda" true
    (General.norm_function 6 0.3 < General.norm_function 6 0.5
    && General.norm_function 6 0.5 < General.norm_function 6 0.8);
  check "norm function below inf version" true
    (General.norm_function 8 0.5 <= General.norm_function_inf 0.5 +. 1e-12);
  check "fd below fd inf" true
    (General.norm_function_fd 8 0.5 <= General.norm_function_fd_inf 0.5 +. 1e-12);
  Alcotest.check_raises "s < 3 rejected"
    (Invalid_argument "General.norm_function: s must be >= 3") (fun () ->
      ignore (General.norm_function 2 0.5))

(* --- Section 1 & 5 spot values for specific networks --- *)

let test_spot_values_systolic () =
  (* "when s = 4 we obtain g(WBF(2,D)) >= 2.0218 log n and
     g(DB(2,D)) >= 1.8133 log n" *)
  close "WBF(2,D) s=4" 2.0218
    (Separator_bounds.e_half_duplex ~alpha:(2.0 /. 3.0) ~ell:1.5 ~s:4);
  close "DB(2,D) s=4" 1.8133
    (Separator_bounds.e_half_duplex ~alpha:1.0 ~ell:1.0 ~s:4)

let test_spot_values_nonsystolic () =
  (* "g(WBF(2,D)) >= 1.9750 log n ... g(DB(2,D)) >= 1.5876 log n" *)
  close "WBF(2,D) non-systolic" 1.9750
    (Separator_bounds.e_half_duplex_inf ~alpha:(2.0 /. 3.0) ~ell:1.5);
  close "DB(2,D) non-systolic" 1.5876
    (Separator_bounds.e_half_duplex_inf ~alpha:1.0 ~ell:1.0)

let test_separator_bound_dominates_endpoint () =
  (* the maximization is at least the endpoint value α·l·e(s) *)
  List.iter
    (fun s ->
      let alpha = 2.0 /. 3.0 and ell = 1.5 in
      let v = Separator_bounds.e_half_duplex ~alpha ~ell ~s in
      check
        (Printf.sprintf "sep >= alpha·l·e(%d)" s)
        true
        (v >= (alpha *. ell *. General.e s) -. 1e-6))
    [ 3; 4; 5; 6; 7; 8 ]

let test_separator_alpha_l_one_gives_general () =
  (* with α·l = 1 and l = 1 the endpoint equals e(s); the max can only
     improve, and for DB at s = 4 it does not (paper stars it) *)
  let v = Separator_bounds.e_half_duplex ~alpha:1.0 ~ell:1.0 ~s:4 in
  close "DB s=4 equals general" (General.e 4) v

let test_maximize_generic () =
  let lam, v =
    Separator_bounds.maximize ~alpha:1.0 ~ell:1.0 ~f:General.norm_function_inf
  in
  check "argmax interior" true (lam > 0.0 && lam < 1.0);
  close "max value" 1.5876 v

let test_full_duplex_separator_values () =
  (* full-duplex non-systolic: must be >= the broadcasting-derived 1.0 and
     <= the half-duplex value for the same family *)
  List.iter
    (fun (alpha, ell) ->
      let fd = Separator_bounds.e_full_duplex_inf ~alpha ~ell in
      let hd = Separator_bounds.e_half_duplex_inf ~alpha ~ell in
      check "fd >= 1" true (fd >= 1.0 -. 1e-9);
      check "fd <= hd" true (fd <= hd +. 1e-9))
    [ (2.0 /. 3.0, 1.5); (1.0, 1.0); (0.5, 2.0) ]

let test_rounds_lower_bound () =
  let b = General.rounds_lower_bound ~n:1024 ~s:4 in
  check "1024 nodes, s=4: ceil(1.8133·10) = 19" true (b = 19)

(* --- tables --- *)

let test_fig4_table () =
  let rows = Tables.fig4 ~s_max:8 in
  check "six rows" true (List.length rows = 6);
  let r3 = List.hd rows in
  check "first row is s=3" true (r3.Tables.s = 3);
  close "table e(3)" 2.8808 r3.Tables.e;
  close "fig4 inf" 1.4404 Tables.fig4_inf.Tables.e

let test_fig5_table () =
  let rows = Tables.fig5 ~ss:[ 3; 4; 5; 6; 7; 8 ] in
  check "14 families (7 shapes x 2 degrees)" true (List.length rows = 14);
  let wbf2 = List.find (fun (r : Tables.family_row) -> r.Tables.key = "WBF(2,D)") rows in
  let _, c4 = List.find (fun (s, _) -> s = 4) wbf2.Tables.cells in
  close "fig5 WBF(2,D) s=4" 2.0218 c4.Tables.value;
  check "improves flagged" true c4.Tables.improves;
  (* cells never drop below the general bound *)
  List.iter
    (fun (r : Tables.family_row) ->
      List.iter
        (fun (s, c) ->
          check
            (Printf.sprintf "%s s=%d >= general" r.Tables.key s)
            true
            (c.Tables.value >= General.e s -. 1e-9))
        r.Tables.cells)
    rows

let test_fig6_table () =
  let rows = Tables.fig6 () in
  let wbf2 = List.find (fun (r : Tables.fig6_row) -> r.Tables.key = "WBF(2,D)") rows in
  close "fig6 WBF(2,D)" 1.9750 wbf2.Tables.separator_value;
  let db2 = List.find (fun (r : Tables.fig6_row) -> r.Tables.key = "DB(2,D)") rows in
  close "fig6 DB(2,D)" 1.5876 db2.Tables.separator_value;
  List.iter
    (fun (r : Tables.fig6_row) ->
      check (r.Tables.key ^ " best >= baseline") true
        (r.Tables.best >= r.Tables.baseline))
    rows

let test_fig8_table () =
  let rows = Tables.fig8 ~ss:[ 3; 4; 5; 6 ] in
  check "only undirected families" true
    (List.for_all
       (fun (r : Tables.family_row) ->
         not (String.length r.Tables.key > 0 && r.Tables.key.[0] = 'd'))
       rows);
  let gen = Tables.fig8_general ~ss:[ 3; 4; 5 ] in
  close "fig8 general col s=3" 1.4404 (List.assoc 3 gen);
  close "fig8 general col s=4" 1.1374 (List.assoc 4 gen);
  let inf_rows = Tables.fig8_inf () in
  check "fd inf rows exist" true (List.length inf_rows > 0);
  List.iter
    (fun (r : Tables.fig6_row) -> check "fd inf >= 1" true (r.Tables.best >= 1.0))
    inf_rows

let test_fig5_extended () =
  let rows = Tables.fig5_extended ~ds:[ 4; 5 ] ~ss:[ 8; 12; 16 ] in
  check "six rows (3 shapes x 2 degrees)" true (List.length rows = 6);
  (* the paper's remark: for d = 4, 5 slight improvements appear for
     s > 8 on the butterfly-type rows *)
  let bf4 = List.find (fun (r : Tables.family_row) -> r.Tables.key = "BF(4,D)") rows in
  List.iter
    (fun (_, (c : Tables.cell)) ->
      check "BF(4,D) improves on general" true c.Tables.improves)
    bf4.Tables.cells;
  (* DB(4,D) has alpha*l = 1 and does NOT improve even at s = 16 *)
  let db4 = List.find (fun (r : Tables.family_row) -> r.Tables.key = "DB(4,D)") rows in
  List.iter
    (fun (_, (c : Tables.cell)) ->
      check "DB(4,D) stays at general" true (not c.Tables.improves))
    db4.Tables.cells

(* --- catalog --- *)

let test_catalog_structure () =
  check "14 families" true (List.length Catalog.families = 14);
  check "find works" true (Catalog.find "DB(2,D)" <> None);
  check "find missing" true (Catalog.find "nope" = None);
  let db = Option.get (Catalog.find "DB(2,D)") in
  check "db undirected" true (not db.Catalog.directed);
  close ~eps:1e-12 "db alpha" 1.0 db.Catalog.alpha;
  close ~eps:1e-12 "db published ell" 1.0 db.Catalog.ell;
  close ~eps:1e-12 "db verified ell" 0.5 db.Catalog.verified_ell;
  check "undirected subset" true
    (List.for_all (fun f -> not f.Catalog.directed) Catalog.undirected_families)

let test_catalog_builders_and_separators () =
  List.iter
    (fun (f : Catalog.t) ->
      let dim = 4 in
      let g = f.Catalog.build dim in
      check (f.Catalog.key ^ " builds") true
        (Gossip_topology.Digraph.n_vertices g > 0);
      check
        (f.Catalog.key ^ " directedness consistent")
        f.Catalog.directed
        (not (Gossip_topology.Digraph.is_symmetric g));
      let sep = f.Catalog.separator dim in
      let m = Gossip_topology.Separator.measure g sep in
      check (f.Catalog.key ^ " separator sets nonempty") true
        (m.Gossip_topology.Separator.min_size > 0);
      check (f.Catalog.key ^ " separator distance positive") true
        (m.Gossip_topology.Separator.distance > 0
        && m.Gossip_topology.Separator.distance
           < Gossip_topology.Metrics.unreachable))
    Catalog.families

(* α·l <= 1 always (stated after Definition 3.5). *)
let prop_alpha_ell_product =
  QCheck.Test.make ~name:"α·l <= 1 for every catalog family" ~count:1
    QCheck.unit (fun () ->
      List.for_all
        (fun (f : Catalog.t) -> f.Catalog.alpha *. f.Catalog.ell <= 1.0 +. 1e-9)
        Catalog.families)

(* e(s) from the separator formula is decreasing in s, like the general
   one. *)
let prop_separator_e_decreasing =
  QCheck.Test.make ~name:"separator e(s) decreasing in s" ~count:20
    QCheck.(pair (float_range 0.3 1.0) (float_range 0.8 2.0))
    (fun (alpha, ell) ->
      QCheck.assume (alpha *. ell <= 1.0);
      let v5 = Separator_bounds.e_half_duplex ~alpha ~ell ~s:5 in
      let v6 = Separator_bounds.e_half_duplex ~alpha ~ell ~s:6 in
      let v8 = Separator_bounds.e_half_duplex ~alpha ~ell ~s:8 in
      v5 >= v6 -. 1e-6 && v6 >= v8 -. 1e-6)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("Fig 4 values", `Quick, test_fig4_values);
    ("Fig 4 lambdas", `Quick, test_fig4_lambdas);
    ("full-duplex = broadcast constants", `Quick, test_full_duplex_equals_broadcast_constants);
    ("e(s) monotone", `Quick, test_e_monotone_decreasing);
    ("norm function properties", `Quick, test_norm_function_properties);
    ("spot values systolic", `Quick, test_spot_values_systolic);
    ("spot values non-systolic", `Quick, test_spot_values_nonsystolic);
    ("separator dominates endpoint", `Quick, test_separator_bound_dominates_endpoint);
    ("alpha·l = 1 gives general", `Quick, test_separator_alpha_l_one_gives_general);
    ("maximize generic", `Quick, test_maximize_generic);
    ("full-duplex separator sane", `Quick, test_full_duplex_separator_values);
    ("rounds lower bound", `Quick, test_rounds_lower_bound);
    ("fig4 table", `Quick, test_fig4_table);
    ("fig5 table", `Quick, test_fig5_table);
    ("fig6 table", `Quick, test_fig6_table);
    ("fig8 table", `Quick, test_fig8_table);
    ("fig5 extended degrees", `Quick, test_fig5_extended);
    ("catalog structure", `Quick, test_catalog_structure);
    ("catalog builders/separators", `Quick, test_catalog_builders_and_separators);
    q prop_alpha_ell_product;
    q prop_separator_e_decreasing;
  ]
