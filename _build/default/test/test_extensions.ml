(* Tests for the extension modules: Stats, Broadcast, Oracle,
   Weighted_diameter, Extra_families, and the tree/grid protocol
   builders. *)

open Gossip_topology
open Gossip_protocol
open Gossip_simulate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- extra families --- *)

let test_ccc_structure () =
  let dim = 4 in
  let g = Extra_families.cube_connected_cycles dim in
  check_int "CCC vertices" (dim * (1 lsl dim)) (Digraph.n_vertices g);
  check "CCC symmetric" true (Digraph.is_symmetric g);
  check "CCC strongly connected" true (Digraph.is_strongly_connected g);
  (* 3-regular *)
  let ok = ref true in
  for v = 0 to Digraph.n_vertices g - 1 do
    if Digraph.out_degree g v <> 3 then ok := false
  done;
  check "CCC 3-regular" true !ok

let test_ccc_diameter_order () =
  (* diameter of CCC(d) is Theta(d): 2d + floor(d/2) - 2 for d >= 4 *)
  let g = Extra_families.cube_connected_cycles 4 in
  check_int "CCC(4) diameter" ((2 * 4) + 2 - 2) (Metrics.diameter g)

let test_shuffle_exchange () =
  let g = Extra_families.shuffle_exchange 4 in
  check_int "SE vertices" 16 (Digraph.n_vertices g);
  check "SE symmetric" true (Digraph.is_symmetric g);
  check "SE connected" true (Digraph.is_strongly_connected g);
  check "SE max degree 3" true (Digraph.max_out_degree g <= 3);
  let d = Extra_families.shuffle_exchange_directed 4 in
  check "dSE not symmetric" true (not (Digraph.is_symmetric d));
  check "dSE strongly connected" true (Digraph.is_strongly_connected d);
  Alcotest.check_raises "SE dim 1"
    (Invalid_argument "Extra_families.shuffle_exchange: invalid dimension")
    (fun () -> ignore (Extra_families.shuffle_exchange 1))

let test_extra_families_gossip () =
  List.iter
    (fun g ->
      let sys = Builders.edge_coloring_half_duplex g in
      match Engine.gossip_time sys with
      | Some t -> check (Digraph.name g ^ " gossips") true (t >= Metrics.diameter g)
      | None -> Alcotest.fail (Digraph.name g ^ " did not gossip"))
    [ Extra_families.cube_connected_cycles 3; Extra_families.shuffle_exchange 4 ]

let test_knoedel_structure () =
  let g = Extra_families.knoedel ~delta:3 ~n:16 in
  check_int "W(3,16) vertices" 16 (Digraph.n_vertices g);
  check "regular of degree delta" true
    (let ok = ref true in
     for v = 0 to 15 do
       if Digraph.out_degree g v <> 3 then ok := false
     done;
     !ok);
  check "bipartite-ish symmetric" true (Digraph.is_symmetric g);
  check "connected" true (Digraph.is_strongly_connected g);
  Alcotest.check_raises "odd n rejected"
    (Invalid_argument "Extra_families.knoedel: invalid dimension") (fun () ->
      ignore (Extra_families.knoedel ~delta:2 ~n:7))

let test_lambda_star_poly_crosscheck () =
  List.iter
    (fun s ->
      let a = Gossip_bounds.General.lambda_star s in
      let b = Gossip_bounds.General.lambda_star_poly s in
      check
        (Printf.sprintf "lambda_star(%d) via polynomial route" s)
        true
        (Float.abs (a -. b) < 1e-10))
    [ 3; 4; 5; 6; 7; 8; 11; 16 ]

(* --- tree/grid builders --- *)

let test_tree_updown () =
  let sys = Builders.tree_updown ~d:2 ~depth:3 in
  check_int "period 2·d·depth" 12 (Systolic.period sys);
  check_int "one period completes gossip" 12
    (Option.get (Engine.gossip_time sys));
  let sys3 = Builders.tree_updown ~d:3 ~depth:2 in
  check "d=3 completes" true (Engine.gossip_time sys3 <> None)

let test_grid_rowcol () =
  let sys = Builders.grid_rowcol ~rows:4 ~cols:6 in
  check_int "period 8" 8 (Systolic.period sys);
  let t = Option.get (Engine.gossip_time sys) in
  let g = Systolic.graph sys in
  check "gossip >= diameter" true (t >= Metrics.diameter g);
  (* O(rows+cols) shape: well under the n-ish coloring time *)
  check "grid protocol is fast" true (t <= 4 * (4 + 6))

(* --- stats --- *)

let test_arrival_times () =
  let sys = Builders.path_wave 5 in
  let a = Stats.arrival_times sys ~horizon:60 in
  check_int "own item at time 0" 0 a.(2).(2);
  check "end-to-end arrival >= distance" true (a.(0).(4) >= 4);
  check "monotone along the path" true (a.(0).(2) <= a.(0).(4));
  (* everything arrives *)
  check "all finite" true
    (Array.for_all (fun row -> Array.for_all (fun x -> x < max_int) row) a)

let test_summarize () =
  let sys = Builders.hypercube_sweep ~dim:3 ~full_duplex:true in
  let s = Stats.summarize sys in
  check "gossip time 3" true (s.Stats.gossip_time = Some 3);
  check_int "max arrival = gossip time" 3 s.Stats.max_arrival;
  check "mean <= max" true (s.Stats.mean_arrival <= 3.0);
  check_int "broadcast entries" 8 (Array.length s.Stats.broadcast_times);
  check "broadcasts <= gossip" true
    (Array.for_all (fun b -> b <= 3) s.Stats.broadcast_times)

let test_summarize_incomplete () =
  let g = Families.path 4 in
  let sys = Systolic.make g Protocol.Half_duplex [ [ (0, 1) ] ] in
  let s = Stats.summarize ~horizon:20 sys in
  check "incomplete" true (s.Stats.gossip_time = None)

let test_newly_informed () =
  let sys = Builders.cycle_rotate 8 in
  let deltas = Stats.newly_informed sys ~horizon:20 in
  let total = Array.fold_left ( + ) 0 deltas in
  (* integral = n² - n exactly when gossip completes within the horizon *)
  check_int "total learned pairs" (8 * 7) total;
  check "deltas non-negative" true (Array.for_all (fun d -> d >= 0) deltas)

let test_message_complexity () =
  (* hypercube sweep: every transmission is useful, total = rounds·n/2 *)
  let sys = Builders.hypercube_sweep ~dim:4 ~full_duplex:false in
  let c = Stats.message_complexity sys in
  check_int "rounds" 8 c.Stats.rounds;
  check_int "transmissions" (8 * 8) c.Stats.transmissions;
  check_int "all useful on the sweep" c.Stats.transmissions c.Stats.useful;
  (* periodic protocols waste some *)
  let c2 =
    Stats.message_complexity
      (Builders.edge_coloring_half_duplex (Families.de_bruijn 2 4))
  in
  check "useful <= transmissions" true (c2.Stats.useful <= c2.Stats.transmissions);
  (* each useful transmission adds at least one (vertex, item) pair, so
     there are at most n(n-1) of them; and dissemination needs at least
     n - 1 useful receptions for the last item alone *)
  check "useful <= n(n-1)" true (c2.Stats.useful <= 16 * 15);
  check "useful >= n-1" true (c2.Stats.useful >= 15)

(* Lemma 4.3 tightness: at lambda_star(s) the balanced one-block pattern
   attains the closed form, and unbalanced patterns stay strictly
   below. *)
let test_balanced_pattern_is_extremal () =
  let s = 6 in
  let lambda = Gossip_bounds.General.lambda_star s in
  let norm_of l r =
    let pat = Gossip_delay.Local_matrix.make_pattern ~l ~r in
    let h = 8 * Gossip_delay.Local_matrix.blocks pat in
    Gossip_linalg.Spectral.norm2_dense
      (Gossip_delay.Local_matrix.mx pat ~h ~lambda)
  in
  let balanced = norm_of [| 3 |] [| 3 |] in
  check "balanced attains 1 at lambda_star" true
    (Float.abs (balanced -. 1.0) < 1e-3);
  List.iter
    (fun (l, r) ->
      check "unbalanced strictly below" true (norm_of l r < balanced +. 1e-9))
    [ ([| 4 |], [| 2 |]); ([| 2 |], [| 4 |]); ([| 1 |], [| 5 |]);
      ([| 2; 1 |], [| 1; 2 |]); ([| 1; 1; 1 |], [| 1; 1; 1 |]) ]

(* --- broadcast bounds --- *)

let test_broadcast_constants () =
  let close a b = Float.abs (a -. b) < 2e-4 in
  check "c(2)" true (close (Gossip_bounds.Broadcast.c 2) 1.4404);
  check "c(3)" true (close (Gossip_bounds.Broadcast.c 3) 1.1374);
  check "c(4)" true (close (Gossip_bounds.Broadcast.c 4) 1.0562);
  (* c(d) decreasing to 1 *)
  check "c decreasing" true
    (Gossip_bounds.Broadcast.c 5 < Gossip_bounds.Broadcast.c 4);
  check "c(30) near 1" true (Gossip_bounds.Broadcast.c 30 < 1.03);
  Alcotest.check_raises "c(1) rejected"
    (Invalid_argument "Broadcast.c: degree parameter must be >= 2") (fun () ->
      ignore (Gossip_bounds.Broadcast.c 1))

let test_broadcast_lower_bound () =
  check_int "trivial 8" 3 (Gossip_bounds.Broadcast.trivial ~n:8);
  check_int "trivial 9" 4 (Gossip_bounds.Broadcast.trivial ~n:9);
  check_int "trivial 1" 0 (Gossip_bounds.Broadcast.trivial ~n:1);
  (* path: diameter dominates *)
  check_int "P10 lower bound" 9
    (Gossip_bounds.Broadcast.lower_bound (Families.path 10));
  (* complete: log term dominates *)
  check_int "K16 lower bound" 4
    (Gossip_bounds.Broadcast.lower_bound (Families.complete 16))

let test_broadcast_bound_sound () =
  (* measured broadcast >= the sound bound, on several protocols *)
  List.iter
    (fun sys ->
      let g = Systolic.graph sys in
      let lb = Gossip_bounds.Broadcast.lower_bound g in
      match Engine.broadcast_time sys ~src:0 with
      | Some b -> check (Digraph.name g ^ " broadcast sound") true (b >= lb)
      | None -> ())
    [
      Builders.hypercube_sweep ~dim:4 ~full_duplex:true;
      Builders.path_wave 8;
      Builders.edge_coloring_half_duplex (Families.de_bruijn 2 4);
    ]

(* --- oracle --- *)

let test_oracle_components () =
  let g = Families.de_bruijn 2 5 in
  let o =
    Gossip_bounds.Oracle.lower_bounds ~family:"DB(2,D)" g
      ~mode:Protocol.Half_duplex ~s:(Some 4)
  in
  check_int "diameter" 5 o.Gossip_bounds.Oracle.diameter;
  check_int "doubling" 5 o.Gossip_bounds.Oracle.doubling;
  check "no s=2 bound" true (o.Gossip_bounds.Oracle.two_systolic = None);
  check "sound = max" true (o.Gossip_bounds.Oracle.sound = 5);
  check "refined >= general" true
    (match o.Gossip_bounds.Oracle.asymptotic_refined with
    | Some r -> r >= o.Gossip_bounds.Oracle.asymptotic_general -. 1e-9
    | None -> false)

let test_oracle_s2 () =
  let g = Families.cycle 8 in
  let o = Gossip_bounds.Oracle.lower_bounds g ~mode:Protocol.Half_duplex ~s:(Some 2) in
  check "s=2 gives n-1" true (o.Gossip_bounds.Oracle.two_systolic = Some 7);
  check_int "sound includes n-1" 7 o.Gossip_bounds.Oracle.sound

let test_oracle_modes () =
  let g = Families.kautz 2 3 in
  let hd = Gossip_bounds.Oracle.lower_bounds g ~mode:Protocol.Half_duplex ~s:(Some 4) in
  let fd = Gossip_bounds.Oracle.lower_bounds g ~mode:Protocol.Full_duplex ~s:(Some 4) in
  check "hd asymptotic >= fd asymptotic" true
    (hd.Gossip_bounds.Oracle.asymptotic_general
    >= fd.Gossip_bounds.Oracle.asymptotic_general);
  let non_sys = Gossip_bounds.Oracle.lower_bounds g ~mode:Protocol.Half_duplex ~s:None in
  check "systolic >= non-systolic" true
    (hd.Gossip_bounds.Oracle.asymptotic_general
    >= non_sys.Gossip_bounds.Oracle.asymptotic_general -. 1e-9)

let test_oracle_unknown_family () =
  let g = Families.path 8 in
  let o =
    Gossip_bounds.Oracle.lower_bounds ~family:"nonexistent" g
      ~mode:Protocol.Half_duplex ~s:None
  in
  check "unknown family -> no refined" true
    (o.Gossip_bounds.Oracle.asymptotic_refined = None)

(* --- weighted diameter --- *)

module WD = Gossip_delay.Weighted_diameter

let test_weighted_diameter_exact () =
  (* weighted directed triangle: 0->1 (1), 1->2 (2), 2->0 (3) *)
  let w = WD.make 3 [ (0, 1, 1); (1, 2, 2); (2, 0, 3) ] in
  check_int "arcs" 3 (WD.n_arcs w);
  (* dist(1,0) = 2+3 = 5; diameter = max = dist(1, 0) = 5 *)
  check_int "weighted diameter" 5 (WD.diameter w);
  (* unweighted cycle of 8: diameter 4 *)
  check_int "C8 diameter" 4 (WD.diameter (WD.of_digraph (Families.cycle 8)))

let test_weighted_diameter_validation () =
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Weighted_diameter.make: weight must be >= 1") (fun () ->
      ignore (WD.make 2 [ (0, 1, 0) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Weighted_diameter.make: duplicate arc") (fun () ->
      ignore (WD.make 2 [ (0, 1, 1); (0, 1, 2) ]))

let test_weighted_lower_bound_sound () =
  List.iter
    (fun g ->
      let w = WD.of_digraph g in
      let lb = WD.lower_bound w in
      let d = WD.diameter w in
      check (Digraph.name g ^ " wd bound sound") true (lb <= d);
      check (Digraph.name g ^ " wd bound nontrivial") true (lb >= 1))
    [
      Families.cycle 8;
      Families.hypercube 4;
      Families.de_bruijn_directed 2 6;
      Families.kautz_directed 2 5;
      Families.complete 8;
    ]

let test_weighted_bound_scales () =
  (* scaling all weights by w scales both diameter and (roughly) the
     bound *)
  let base = WD.of_digraph (Families.de_bruijn_directed 2 5) in
  let scaled = WD.of_digraph ~weight:3 (Families.de_bruijn_directed 2 5) in
  check_int "diameter scales exactly" (3 * WD.diameter base) (WD.diameter scaled);
  check "bound scales up" true (WD.lower_bound scaled > WD.lower_bound base)

(* Dijkstra with unit weights must agree with BFS. *)
let prop_dijkstra_equals_bfs =
  QCheck.Test.make ~name:"weighted diameter with unit weights = BFS diameter"
    ~count:30
    (QCheck.int_range 0 10_000)
    (fun seed ->
      let g =
        Random_graphs.strongly_connected_digraph ~n:12 ~extra_arcs:12 ~seed
      in
      WD.diameter (WD.of_digraph g) = Metrics.diameter g)

let prop_weighted_bound_sound_random =
  QCheck.Test.make ~name:"weighted diameter bound sound on random digraphs"
    ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 4 10))
    (fun (seed, n) ->
      let rng = Gossip_util.Prng.create seed in
      (* random strongly-connected-ish digraph: a directed cycle plus
         random chords, random weights 1..5 *)
      let arcs = ref [] in
      for v = 0 to n - 1 do
        arcs := (v, (v + 1) mod n, 1 + Gossip_util.Prng.int rng 5) :: !arcs
      done;
      for _ = 1 to n do
        let u = Gossip_util.Prng.int rng n and v = Gossip_util.Prng.int rng n in
        if u <> v && not (List.exists (fun (a, b, _) -> a = u && b = v) !arcs)
        then arcs := (u, v, 1 + Gossip_util.Prng.int rng 5) :: !arcs
      done;
      let w = WD.make n !arcs in
      WD.lower_bound w <= WD.diameter w)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("CCC structure", `Quick, test_ccc_structure);
    ("CCC diameter", `Quick, test_ccc_diameter_order);
    ("shuffle-exchange", `Quick, test_shuffle_exchange);
    ("extra families gossip", `Quick, test_extra_families_gossip);
    ("knoedel structure", `Quick, test_knoedel_structure);
    ("lambda_star polynomial cross-check", `Quick, test_lambda_star_poly_crosscheck);
    ("tree updown builder", `Quick, test_tree_updown);
    ("grid rowcol builder", `Quick, test_grid_rowcol);
    ("message complexity", `Quick, test_message_complexity);
    ("balanced pattern extremal", `Quick, test_balanced_pattern_is_extremal);
    ("arrival times", `Quick, test_arrival_times);
    ("summarize", `Quick, test_summarize);
    ("summarize incomplete", `Quick, test_summarize_incomplete);
    ("newly informed", `Quick, test_newly_informed);
    ("broadcast constants", `Quick, test_broadcast_constants);
    ("broadcast lower bound", `Quick, test_broadcast_lower_bound);
    ("broadcast bound sound", `Quick, test_broadcast_bound_sound);
    ("oracle components", `Quick, test_oracle_components);
    ("oracle s=2", `Quick, test_oracle_s2);
    ("oracle modes", `Quick, test_oracle_modes);
    ("oracle unknown family", `Quick, test_oracle_unknown_family);
    ("weighted diameter exact", `Quick, test_weighted_diameter_exact);
    ("weighted diameter validation", `Quick, test_weighted_diameter_validation);
    ("weighted bound sound", `Quick, test_weighted_lower_bound_sound);
    ("weighted bound scales", `Quick, test_weighted_bound_scales);
    q prop_dijkstra_equals_bfs;
    q prop_weighted_bound_sound_random;
  ]
