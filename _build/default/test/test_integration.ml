(* End-to-end integration: for every catalog family, build an instance,
   run a concrete systolic protocol, certify it with the delay machinery
   and check that all the bounds line up:

       certificate <= measured gossip time,
       diameter    <= measured gossip time,
       broadcast   <= measured gossip time.

   Also exercises the Core facade and Analysis one-call helpers. *)

open Gossip_topology
open Gossip_protocol
module Engine = Gossip_simulate.Engine
module Certificate = Gossip_delay.Certificate
module Delay_digraph = Gossip_delay.Delay_digraph
module Catalog = Gossip_bounds.Catalog

let check = Alcotest.(check bool)

let dim_for (f : Catalog.t) = if f.Catalog.d = 2 then 4 else 3

let protocol_for (f : Catalog.t) g =
  if f.Catalog.directed then
    Builders.random_systolic g Protocol.Directed ~period:6 ~seed:17
      ~density:1.0
  else Builders.edge_coloring_half_duplex g

let test_pipeline_family (f : Catalog.t) () =
  let g = f.Catalog.build (dim_for f) in
  let sys = protocol_for f g in
  let cap = 40 * Systolic.period sys in
  match Engine.gossip_time ~cap sys with
  | None ->
      (* random directed protocols may not gossip; the delay machinery
         must still run on the expanded horizon *)
      let dg = Delay_digraph.of_systolic sys ~length:(4 * Systolic.period sys) in
      check (f.Catalog.key ^ " delay digraph built") true
        (Delay_digraph.n_activations dg > 0)
  | Some t ->
      let diam = Metrics.diameter g in
      check (f.Catalog.key ^ " gossip >= diameter") true (t >= diam);
      (match Engine.broadcast_time ~cap sys ~src:0 with
      | Some b -> check (f.Catalog.key ^ " broadcast <= gossip") true (b <= t)
      | None -> Alcotest.fail "broadcast incomplete though gossip complete");
      let dg = Delay_digraph.of_systolic sys ~length:t in
      let cert = Certificate.certify dg ~mode:(Systolic.mode sys) in
      check (f.Catalog.key ^ " certificate sound") true
        (cert.Certificate.bound <= t);
      (* Lemma 4.3/6.1: measured norm below closed form at the chosen λ *)
      check (f.Catalog.key ^ " norm below closed form") true
        (cert.Certificate.norm <= cert.Certificate.closed_form +. 1e-7)

let test_separator_certificate_all_directed () =
  List.iter
    (fun (f : Catalog.t) ->
      if f.Catalog.directed then begin
        let dim = dim_for f in
        let g = f.Catalog.build dim in
        let sep = f.Catalog.separator dim in
        let sys =
          Builders.random_systolic g Protocol.Directed ~period:5 ~seed:23
            ~density:1.0
        in
        let horizon = 12 * Systolic.period sys in
        let dg = Delay_digraph.of_systolic sys ~length:horizon in
        let cert =
          Certificate.certify_separator dg ~mode:Protocol.Directed ~sep
        in
        let dist =
          Metrics.set_distance g sep.Gossip_topology.Separator.v1
            sep.Gossip_topology.Separator.v2
        in
        check
          (f.Catalog.key ^ " separator certificate >= set distance")
          true
          (cert.Certificate.bound >= dist)
      end)
    Catalog.families

let test_core_facade () =
  (* the facade exposes every sub-library under Core *)
  let g = Core.Topology.Families.de_bruijn 2 4 in
  let r = Core.Analysis.analyze_network g in
  check "facade analyze" true
    (r.Core.Analysis.n = 16 && r.Core.Analysis.symmetric
    && r.Core.Analysis.diameter = 4);
  check "bounds accessible" true
    (Float.abs (Core.Bounds.General.e 4 -. 1.8133) < 2e-4);
  check "nonsystolic bound = 1.4404·log n" true
    (Float.abs (r.Core.Analysis.nonsystolic_bound -. (1.4404 *. 4.0)) < 1e-2)

let test_analysis_certify_protocol () =
  let sys = Builders.hypercube_sweep ~dim:4 ~full_duplex:true in
  let rep = Core.Analysis.certify_protocol sys in
  check "gossip measured" true (rep.Core.Analysis.gossip_time = Some 4);
  check "certificate sound" true
    (rep.Core.Analysis.certificate.Certificate.bound <= 4);
  check "diameter recorded" true (rep.Core.Analysis.diameter = 4);
  (* report printing does not raise *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Core.Analysis.pp_protocol_report ppf rep;
  Format.pp_print_flush ppf ();
  check "report nonempty" true (Buffer.length buf > 0)

let test_analysis_network_report_printing () =
  let r = Core.Analysis.analyze_network (Families.kautz 2 3) in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Core.Analysis.pp_network_report ppf r;
  Format.pp_print_flush ppf ();
  check "network report nonempty" true (Buffer.length buf > 0)

(* Upper-vs-lower sandwich on growing hypercubes: the measured full-duplex
   gossip time log n sits between the full-duplex lower bound main term
   (~ e_fd(s)·log n with s = log n, tending to log n) and 2·log n. *)
let test_sandwich_hypercubes () =
  List.iter
    (fun dim ->
      let sys = Builders.hypercube_sweep ~dim ~full_duplex:true in
      let t = Option.get (Engine.gossip_time sys) in
      check
        (Printf.sprintf "Q%d fd gossip time = dim" dim)
        true (t = dim))
    [ 3; 4; 5; 6; 7 ]

(* The certificate bound grows with n along a family — the finite-n shadow
   of the Ω(log n) lower bound. *)
let test_certificate_grows_with_n () =
  let bound_for dim =
    let sys = Builders.hypercube_sweep ~dim ~full_duplex:false in
    let t = Option.get (Engine.gossip_time sys) in
    let dg = Delay_digraph.of_systolic sys ~length:t in
    (Certificate.certify dg ~mode:Protocol.Half_duplex).Certificate.bound
  in
  let b3 = bound_for 3 and b6 = bound_for 6 in
  check "certificate grows from Q3 to Q6" true (b6 > b3)

let suite =
  let per_family =
    List.map
      (fun (f : Catalog.t) ->
        ("pipeline " ^ f.Catalog.key, `Quick, test_pipeline_family f))
      Catalog.families
  in
  per_family
  @ [
      ("separator certificates (directed)", `Quick, test_separator_certificate_all_directed);
      ("core facade", `Quick, test_core_facade);
      ("analysis certify_protocol", `Quick, test_analysis_certify_protocol);
      ("analysis report printing", `Quick, test_analysis_network_report_printing);
      ("hypercube sandwich", `Quick, test_sandwich_hypercubes);
      ("certificate grows with n", `Quick, test_certificate_grows_with_n);
    ]
