(* Tests for Gossip_linalg: vectors, dense/sparse matrices, the delay
   polynomials p_i(λ), and spectral computations.  The property tests
   replay the matrix-norm facts of Section 2 of the paper. *)

open Gossip_linalg
module Numeric = Gossip_util.Numeric

let check = Alcotest.(check bool)
let checkf msg a b = Alcotest.(check (float 1e-9)) msg a b

(* --- Vec --- *)

let test_vec_ops () =
  let a = [| 3.0; 4.0 |] in
  checkf "norm2" 5.0 (Vec.norm2 a);
  checkf "norm1" 7.0 (Vec.norm1 a);
  checkf "norm_inf" 4.0 (Vec.norm_inf a);
  checkf "dot" 25.0 (Vec.dot a a);
  let b = Vec.sub a a in
  checkf "a - a = 0" 0.0 (Vec.norm2 b);
  let b' = Vec.add a (Vec.scale a (-1.0)) in
  checkf "a + (-1)a = 0" 0.0 (Vec.norm2 b');
  let d = Array.copy a in
  let n = Vec.normalize d in
  checkf "normalize returns old norm" 5.0 n;
  checkf "normalized has unit norm" 1.0 (Vec.norm2 d)

let test_vec_lambda_profile () =
  let v = Vec.lambda_profile 4 0.5 in
  check "profile values" true (Vec.equal v [| 1.0; 0.5; 0.25; 0.125 |])

let test_vec_concat () =
  let v = Vec.concat [ [| 1.0 |]; [| 2.0; 3.0 |]; [||] ] in
  check "concat" true (v = [| 1.0; 2.0; 3.0 |])

let test_vec_axpy () =
  let y = [| 1.0; 1.0 |] in
  Vec.axpy ~alpha:2.0 [| 1.0; 2.0 |] y;
  check "axpy" true (Vec.equal y [| 3.0; 5.0 |])

let test_vec_dim_mismatch () =
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Vec.dot: dimension mismatch") (fun () ->
      ignore (Vec.dot [| 1.0 |] [| 1.0; 2.0 |]))

(* --- Dense --- *)

let m_of rows = Dense.of_arrays (Array.of_list (List.map Array.of_list rows))

let test_dense_mul () =
  let a = m_of [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  let b = m_of [ [ 5.0; 6.0 ]; [ 7.0; 8.0 ] ] in
  let c = Dense.mul a b in
  check "product" true
    (Dense.equal c (m_of [ [ 19.0; 22.0 ]; [ 43.0; 50.0 ] ]))

let test_dense_transpose_gram () =
  let a = m_of [ [ 1.0; 2.0; 3.0 ]; [ 4.0; 5.0; 6.0 ] ] in
  let t = Dense.transpose a in
  Alcotest.(check int) "transpose rows" 3 (Dense.rows t);
  check "gram is symmetric" true (Dense.is_symmetric (Dense.gram a));
  check "transpose entries" true (Dense.get t 2 1 = 6.0)

let test_dense_mv_tmv () =
  let a = m_of [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ]; [ 5.0; 6.0 ] ] in
  let x = [| 1.0; 1.0 |] in
  check "mv" true (Vec.equal (Dense.mv a x) [| 3.0; 7.0; 11.0 |]);
  let y = [| 1.0; 1.0; 1.0 |] in
  check "tmv = transpose mv" true
    (Vec.equal (Dense.tmv a y) (Dense.mv (Dense.transpose a) y))

let test_dense_permutations_norms () =
  let a = m_of [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  checkf "norm1 (max col sum)" 6.0 (Dense.norm1 a);
  checkf "norm_inf (max row sum)" 7.0 (Dense.norm_inf a);
  checkf "frobenius" (sqrt 30.0) (Dense.frobenius a);
  let p = Dense.permute_rows a [| 1; 0 |] in
  check "row permutation" true
    (Dense.equal p (m_of [ [ 3.0; 4.0 ]; [ 1.0; 2.0 ] ]))

let test_dense_block_submatrix_outer () =
  let b1 = m_of [ [ 1.0 ] ] and b2 = m_of [ [ 2.0; 0.0 ]; [ 0.0; 3.0 ] ] in
  let bd = Dense.block_diag [ b1; b2 ] in
  Alcotest.(check int) "block rows" 3 (Dense.rows bd);
  check "block placement" true (Dense.get bd 1 1 = 2.0 && Dense.get bd 0 1 = 0.0);
  let sub = Dense.submatrix bd ~row:1 ~col:1 ~rows:2 ~cols:2 in
  check "submatrix extract" true (Dense.equal sub b2);
  let o = Dense.outer [| 1.0; 2.0 |] [| 3.0; 4.0 |] in
  check "outer" true (Dense.equal o (m_of [ [ 3.0; 4.0 ]; [ 6.0; 8.0 ] ]))

let test_dense_errors () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Dense.of_arrays: ragged rows") (fun () ->
      ignore (Dense.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]));
  let a = Dense.identity 2 in
  Alcotest.check_raises "bad permutation"
    (Invalid_argument "Dense.permute_rows: not a permutation") (fun () ->
      ignore (Dense.permute_rows a [| 0; 0 |]))

(* --- Sparse --- *)

let test_sparse_roundtrip () =
  let d = m_of [ [ 0.0; 1.5; 0.0 ]; [ 2.0; 0.0; 0.0 ]; [ 0.0; 0.0; 3.0 ] ] in
  let s = Sparse.of_dense d in
  Alcotest.(check int) "nnz" 3 (Sparse.nnz s);
  check "roundtrip" true (Dense.equal (Sparse.to_dense s) d);
  checkf "get stored" 1.5 (Sparse.get s 0 1);
  checkf "get zero" 0.0 (Sparse.get s 0 0)

let test_sparse_duplicates () =
  let s = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.0); (0, 0, 2.0); (1, 1, 0.0) ] in
  Alcotest.(check int) "dups merged, zeros dropped" 1 (Sparse.nnz s);
  checkf "summed" 3.0 (Sparse.get s 0 0)

let test_sparse_mv () =
  let d = m_of [ [ 1.0; 2.0 ]; [ 0.0; 3.0 ] ] in
  let s = Sparse.of_dense d in
  let x = [| 1.0; 2.0 |] in
  check "mv matches dense" true (Vec.equal (Sparse.mv s x) (Dense.mv d x));
  check "tmv matches dense" true (Vec.equal (Sparse.tmv s x) (Dense.tmv d x));
  check "transpose matches dense" true
    (Dense.equal (Sparse.to_dense (Sparse.transpose s)) (Dense.transpose d))

let test_sparse_row_stats () =
  let s = Sparse.of_triplets ~rows:3 ~cols:3 [ (0, 0, 1.0); (0, 2, 1.0); (2, 1, 5.0) ] in
  Alcotest.(check int) "row 0 nnz" 2 (Sparse.row_nnz s 0);
  Alcotest.(check int) "row 1 nnz" 0 (Sparse.row_nnz s 1);
  Alcotest.(check int) "max row nnz" 2 (Sparse.max_row_nnz s);
  check "nonneg" true (Sparse.nonneg s);
  check "scale" true (Sparse.get (Sparse.scale s 2.0) 2 1 = 10.0)

let test_sparse_errors () =
  Alcotest.check_raises "out of range entry"
    (Invalid_argument "Sparse.of_triplets: entry (2,0) out of 2x2") (fun () ->
      ignore (Sparse.of_triplets ~rows:2 ~cols:2 [ (2, 0, 1.0) ]))

(* --- Poly --- *)

let test_poly_algebra () =
  let p = Poly.of_coeffs [| 1.0; 2.0 |] (* 1 + 2X *) in
  let q = Poly.of_coeffs [| 0.0; 1.0; 1.0 |] (* X + X² *) in
  let r = Poly.mul p q in
  (* (1+2X)(X+X²) = X + 3X² + 2X³ *)
  check "mul" true (Poly.equal r (Poly.of_coeffs [| 0.0; 1.0; 3.0; 2.0 |]));
  checkf "eval" (Poly.eval r 2.0) (2.0 +. 12.0 +. 16.0);
  check "add" true
    (Poly.equal (Poly.add p q) (Poly.of_coeffs [| 1.0; 3.0; 1.0 |]));
  Alcotest.(check int) "degree" 3 (Poly.degree r);
  Alcotest.(check int) "degree zero poly" (-1) (Poly.degree Poly.zero);
  check "trailing zeros trimmed" true
    (Poly.equal (Poly.of_coeffs [| 1.0; 0.0; 0.0 |]) Poly.one)

let test_poly_delay () =
  (* p_3 = 1 + X² + X⁴ *)
  check "delay 3" true
    (Poly.equal (Poly.delay 3) (Poly.of_coeffs [| 1.0; 0.0; 1.0; 0.0; 1.0 |]));
  checkf "delay_eval matches poly eval" (Poly.eval (Poly.delay 4) 0.7)
    (Poly.delay_eval 4 0.7);
  checkf "delay_eval 0 terms" 0.0 (Poly.delay_eval 0 0.5);
  checkf "geometric" (0.5 +. 0.25 +. 0.125) (Poly.geometric 0.5 3);
  checkf "delay_eval_inf" (1.0 /. 0.75) (Poly.delay_eval_inf 0.5)

(* Identity used in Lemma 4.2's computation: p_i + λ^{2i}·p_j = p_{i+j}. *)
let prop_poly_composition =
  QCheck.Test.make ~name:"p_i + λ^2i·p_j = p_{i+j}" ~count:300
    QCheck.(triple (int_range 1 12) (int_range 1 12) (float_range 0.05 0.95))
    (fun (i, j, l) ->
      let lhs =
        Poly.delay_eval i l +. ((l ** float_of_int (2 * i)) *. Poly.delay_eval j l)
      in
      Numeric.approx_equal ~eps:1e-9 lhs (Poly.delay_eval (i + j) l))

(* Unbalancing inequality of Lemma 4.3: p_{i+1}·p_{j-1} < p_i·p_j, i >= j. *)
let prop_poly_unbalance =
  QCheck.Test.make ~name:"p_{i+1}·p_{j-1} <= p_i·p_j for i >= j" ~count:300
    QCheck.(triple (int_range 1 10) (int_range 1 10) (float_range 0.05 0.95))
    (fun (a, b, l) ->
      let i = max a b and j = min a b in
      Poly.delay_eval (i + 1) l *. Poly.delay_eval (j - 1) l
      <= (Poly.delay_eval i l *. Poly.delay_eval j l) +. 1e-12)

(* p_i(λ) increases to 1/(1-λ²). *)
let prop_poly_limit =
  QCheck.Test.make ~name:"p_i(λ) ↑ 1/(1-λ²)" ~count:200
    QCheck.(pair (int_range 1 30) (float_range 0.05 0.9))
    (fun (i, l) ->
      let v = Poly.delay_eval i l and w = Poly.delay_eval (i + 1) l in
      v <= w && w <= Poly.delay_eval_inf l +. 1e-12)

(* --- Spectral --- *)

let test_norm2_known () =
  (* diag(3, 1) has norm 3 *)
  let d = m_of [ [ 3.0; 0.0 ]; [ 0.0; 1.0 ] ] in
  checkf "diag norm" 3.0 (Spectral.norm2_dense d);
  (* rank-one xyᵀ has norm |x||y| *)
  let o = Dense.outer [| 1.0; 2.0 |] [| 2.0; 1.0 |] in
  check "rank one norm" true
    (Numeric.approx_equal ~eps:1e-9 (Spectral.norm2_dense o) 5.0)

let test_norm2_sparse_matches_dense () =
  let d =
    m_of [ [ 0.0; 0.5; 0.0 ]; [ 0.2; 0.0; 0.9 ]; [ 0.0; 0.4; 0.1 ] ]
  in
  let s = Sparse.of_dense d in
  check "sparse norm = dense norm" true
    (Numeric.approx_equal ~eps:1e-8 (Spectral.norm2_sparse s)
       (Spectral.norm2_dense d))

let test_spectral_radius () =
  (* [[0,1],[1,0]] has spectral radius 1 *)
  let a = m_of [ [ 0.0; 1.0 ]; [ 1.0; 0.0 ] ] in
  check "rho of permutation" true
    (Numeric.approx_equal ~eps:1e-6 (Spectral.spectral_radius_nonneg a) 1.0);
  (* [[1,1],[0,1]] (Jordan-ish): rho = 1 though norm > 1 *)
  let j = m_of [ [ 1.0; 1.0 ]; [ 0.0; 1.0 ] ] in
  let rho = Spectral.spectral_radius_nonneg j in
  let nrm = Spectral.norm2_dense j in
  check "rho <= norm" true (rho <= nrm +. 1e-6);
  check "norm of jordan > 1" true (nrm > 1.3)

let test_collatz_wielandt () =
  let a = m_of [ [ 0.0; 2.0 ]; [ 2.0; 0.0 ] ] in
  let lo, hi = Spectral.collatz_wielandt_bounds a [| 1.0; 1.0 |] in
  checkf "CW tight for symmetric" 2.0 lo;
  checkf "CW upper" 2.0 hi;
  check "semi-eigenvector accepted" true
    (Spectral.is_semi_eigenvector a [| 1.0; 1.0 |] 2.0);
  check "semi-eigenvector rejected below" false
    (Spectral.is_semi_eigenvector a [| 1.0; 1.0 |] 1.5)

(* Norm properties 1-8 of Section 2 on random non-negative matrices. *)
let gen_small_matrix =
  QCheck.Gen.(
    let* n = int_range 1 6 in
    let* m = int_range 1 6 in
    let* data = array_size (return (n * m)) (float_bound_inclusive 1.0) in
    return (Dense.init n m (fun i j -> data.((i * m) + j))))

let arb_small_matrix = QCheck.make gen_small_matrix

let prop_norm_nonneg_zero =
  QCheck.Test.make ~name:"norm >= 0, = 0 iff M = 0 (props 1-2)" ~count:100
    arb_small_matrix (fun m ->
      let n = Spectral.norm2_dense m in
      n >= 0.0
      && (n > 1e-9 || Dense.equal m (Dense.create (Dense.rows m) (Dense.cols m) 0.0)))

let prop_norm_scale =
  QCheck.Test.make ~name:"‖aM‖ = |a|·‖M‖ (prop 3)" ~count:100
    QCheck.(pair arb_small_matrix (float_range (-3.0) 3.0))
    (fun (m, a) ->
      Numeric.approx_equal ~eps:1e-6
        (Spectral.norm2_dense (Dense.scale m a))
        (Float.abs a *. Spectral.norm2_dense m))

let prop_norm_monotone =
  QCheck.Test.make ~name:"M <= N entrywise => ‖M‖ <= ‖N‖ (prop 4)" ~count:100
    QCheck.(pair arb_small_matrix arb_small_matrix)
    (fun (m, bump) ->
      let bump =
        if Dense.rows bump = Dense.rows m && Dense.cols bump = Dense.cols m
        then bump
        else Dense.create (Dense.rows m) (Dense.cols m) 0.1
      in
      let n = Dense.add m (Dense.map Float.abs bump) in
      Spectral.norm2_dense m <= Spectral.norm2_dense n +. 1e-7)

let prop_norm_triangle_submult =
  QCheck.Test.make ~name:"‖M+N‖<=‖M‖+‖N‖ and ‖MN‖<=‖M‖‖N‖ (props 5-6)"
    ~count:100 arb_small_matrix (fun m ->
      let nt = Dense.transpose m in
      let sum_ok =
        Spectral.norm2_dense (Dense.add m m)
        <= (2.0 *. Spectral.norm2_dense m) +. 1e-7
      in
      let prod = Dense.mul m nt in
      let prod_ok =
        Spectral.norm2_dense prod
        <= (Spectral.norm2_dense m *. Spectral.norm2_dense nt) +. 1e-7
      in
      sum_ok && prod_ok)

let prop_norm_permutation_invariant =
  QCheck.Test.make ~name:"row/col permutations preserve the norm (prop 7)"
    ~count:100
    QCheck.(pair arb_small_matrix (int_range 0 1000))
    (fun (m, seed) ->
      let rng = Gossip_util.Prng.create seed in
      let p = Array.init (Dense.rows m) Fun.id in
      Gossip_util.Prng.shuffle rng p;
      Numeric.approx_equal ~eps:1e-6
        (Spectral.norm2_dense (Dense.permute_rows m p))
        (Spectral.norm2_dense m))

let prop_norm_block_diag =
  QCheck.Test.make ~name:"‖diag(M1, M2)‖ = max ‖Mi‖ (prop 8)" ~count:100
    QCheck.(pair arb_small_matrix arb_small_matrix)
    (fun (a, b) ->
      Numeric.approx_equal ~eps:1e-6
        (Spectral.norm2_dense (Dense.block_diag [ a; b ]))
        (Float.max (Spectral.norm2_dense a) (Spectral.norm2_dense b)))

let prop_norm_sq_is_rho_gram =
  QCheck.Test.make ~name:"‖M‖² = ρ(MᵀM)" ~count:100 arb_small_matrix
    (fun m ->
      let n = Spectral.norm2_dense m in
      let rho = Spectral.spectral_radius_nonneg (Dense.gram m) in
      Numeric.approx_equal ~eps:1e-5 (n *. n) rho)

(* --- Lanczos --- *)

let test_lanczos_tridiagonal () =
  (* [2, -1] tridiagonal: eigenvalues 2 - 2cos(kπ/(n+1)) *)
  let n = 12 in
  let diag = Array.make n 2.0 and off = Array.make (n - 1) (-1.0) in
  let eigs = Lanczos.tridiagonal_eigenvalues ~diag ~off in
  let ok = ref true in
  Array.iteri
    (fun k e ->
      let expect =
        2.0 -. (2.0 *. cos (float_of_int (k + 1) *. Float.pi /. float_of_int (n + 1)))
      in
      if Float.abs (e -. expect) > 1e-9 then ok := false)
    eigs;
  check "laplacian eigenvalues" true !ok

let test_lanczos_norm_agrees () =
  let m = m_of [ [ 3.0; 1.0; 0.0 ]; [ 0.0; 2.0; 0.5 ]; [ 0.2; 0.0; 1.0 ] ] in
  check "lanczos = power iteration" true
    (Numeric.approx_equal ~eps:1e-8 (Lanczos.norm2_dense m)
       (Spectral.norm2_dense m));
  let sp = Sparse.of_dense m in
  check "sparse variant agrees" true
    (Numeric.approx_equal ~eps:1e-8 (Lanczos.norm2_sparse sp)
       (Spectral.norm2_sparse sp))

let test_lanczos_second_eigenvalue () =
  (* diag(5, 3, 1): largest 5, second 3 *)
  let d = m_of [ [ 5.0; 0.0; 0.0 ]; [ 0.0; 3.0; 0.0 ]; [ 0.0; 0.0; 1.0 ] ] in
  let r = Lanczos.symmetric ~dim:3 (Dense.mv d) in
  check "largest 5" true (Numeric.approx_equal ~eps:1e-8 r.Lanczos.largest 5.0);
  check "second 3" true
    (match r.Lanczos.second with
    | Some s -> Numeric.approx_equal ~eps:1e-6 s 3.0
    | None -> false)

let test_lanczos_degenerate () =
  let r = Lanczos.symmetric ~dim:0 (fun v -> v) in
  check "dim 0" true (r.Lanczos.largest = 0.0);
  let r1 = Lanczos.symmetric ~dim:1 (fun v -> Vec.scale v 4.0) in
  check "dim 1" true (Numeric.approx_equal ~eps:1e-9 r1.Lanczos.largest 4.0)

let prop_lanczos_matches_power =
  QCheck.Test.make ~name:"Lanczos norm = power-iteration norm" ~count:60
    arb_small_matrix (fun m ->
      Numeric.approx_equal ~eps:1e-5 (Lanczos.norm2_dense m)
        (Spectral.norm2_dense m))

(* Lemma 2.1: a positive semi-eigenvector certifies ρ(M) <= e. *)
let prop_semi_eigen_bounds_rho =
  QCheck.Test.make ~name:"Lemma 2.1: positive semi-eigenvector bounds ρ"
    ~count:100
    QCheck.(pair arb_small_matrix (int_range 0 1000))
    (fun (m, seed) ->
      QCheck.assume (Dense.rows m = Dense.cols m);
      let n = Dense.rows m in
      let rng = Gossip_util.Prng.create seed in
      let x = Array.init n (fun _ -> 0.5 +. Gossip_util.Prng.float rng 1.0) in
      (* smallest e making x a semi-eigenvector *)
      let y = Dense.mv m x in
      let e =
        Array.fold_left Float.max 0.0 (Array.mapi (fun i yi -> yi /. x.(i)) y)
      in
      Spectral.spectral_radius_nonneg m <= e +. 1e-6)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("vec ops", `Quick, test_vec_ops);
    ("vec lambda profile", `Quick, test_vec_lambda_profile);
    ("vec concat", `Quick, test_vec_concat);
    ("vec axpy", `Quick, test_vec_axpy);
    ("vec dim mismatch", `Quick, test_vec_dim_mismatch);
    ("dense mul", `Quick, test_dense_mul);
    ("dense transpose/gram", `Quick, test_dense_transpose_gram);
    ("dense mv/tmv", `Quick, test_dense_mv_tmv);
    ("dense permutations and norms", `Quick, test_dense_permutations_norms);
    ("dense block/submatrix/outer", `Quick, test_dense_block_submatrix_outer);
    ("dense errors", `Quick, test_dense_errors);
    ("sparse roundtrip", `Quick, test_sparse_roundtrip);
    ("sparse duplicate triplets", `Quick, test_sparse_duplicates);
    ("sparse mv/tmv/transpose", `Quick, test_sparse_mv);
    ("sparse row stats", `Quick, test_sparse_row_stats);
    ("sparse errors", `Quick, test_sparse_errors);
    ("poly algebra", `Quick, test_poly_algebra);
    ("poly delay family", `Quick, test_poly_delay);
    ("spectral known norms", `Quick, test_norm2_known);
    ("spectral sparse=dense", `Quick, test_norm2_sparse_matches_dense);
    ("spectral radius", `Quick, test_spectral_radius);
    ("collatz-wielandt", `Quick, test_collatz_wielandt);
    q prop_poly_composition;
    q prop_poly_unbalance;
    q prop_poly_limit;
    q prop_norm_nonneg_zero;
    q prop_norm_scale;
    q prop_norm_monotone;
    q prop_norm_triangle_submult;
    q prop_norm_permutation_invariant;
    q prop_norm_block_diag;
    q prop_norm_sq_is_rho_gram;
    q prop_semi_eigen_bounds_rho;
    ("lanczos tridiagonal", `Quick, test_lanczos_tridiagonal);
    ("lanczos norm agrees", `Quick, test_lanczos_norm_agrees);
    ("lanczos second eigenvalue", `Quick, test_lanczos_second_eigenvalue);
    ("lanczos degenerate dims", `Quick, test_lanczos_degenerate);
    q prop_lanczos_matches_power;
  ]
