(* Tests for Gossip_protocol: matching validation per mode (Def. 3.1),
   systolic expansion (Def. 3.2), activation patterns, and the protocol
   builders. *)

open Gossip_topology
open Gossip_protocol

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- matching validation --- *)

let test_matching_half_duplex () =
  check "disjoint arcs ok" true
    (Protocol.is_matching_for Protocol.Half_duplex [ (0, 1); (2, 3) ]);
  check "shared endpoint rejected" false
    (Protocol.is_matching_for Protocol.Half_duplex [ (0, 1); (1, 2) ]);
  check "opposite arcs rejected in half-duplex" false
    (Protocol.is_matching_for Protocol.Half_duplex [ (0, 1); (1, 0) ]);
  check "duplicate rejected" false
    (Protocol.is_matching_for Protocol.Half_duplex [ (0, 1); (0, 1) ]);
  check "self loop rejected" false
    (Protocol.is_matching_for Protocol.Half_duplex [ (2, 2) ])

let test_matching_full_duplex () =
  check "opposite arcs allowed" true
    (Protocol.is_matching_for Protocol.Full_duplex [ (0, 1); (1, 0); (2, 3) ]);
  check "shared endpoint still rejected" false
    (Protocol.is_matching_for Protocol.Full_duplex [ (0, 1); (1, 2) ]);
  check "three arcs at a vertex rejected" false
    (Protocol.is_matching_for Protocol.Full_duplex [ (0, 1); (1, 0); (1, 2) ])

let test_make_validation () =
  let g = Families.path 4 in
  let p = Protocol.make g Protocol.Half_duplex [ [ (0, 1); (2, 3) ]; [ (1, 2) ] ] in
  check_int "length" 2 (Protocol.length p);
  Alcotest.check_raises "missing arc"
    (Invalid_argument "Protocol.make: round 0 uses missing arc (0,2)")
    (fun () ->
      ignore (Protocol.make g Protocol.Half_duplex [ [ (0, 2) ] ]));
  Alcotest.check_raises "bad matching"
    (Invalid_argument "Protocol.make: round 0 is not a half-duplex matching")
    (fun () ->
      ignore (Protocol.make g Protocol.Half_duplex [ [ (0, 1); (1, 2) ] ]))

let test_make_mode_requirements () =
  let d = Families.directed_cycle 4 in
  Alcotest.check_raises "half-duplex needs symmetric"
    (Invalid_argument
       "Protocol.make: half-duplex mode requires a symmetric digraph (DC(4))")
    (fun () -> ignore (Protocol.make d Protocol.Half_duplex [ [ (0, 1) ] ]));
  (* directed mode on a digraph is fine *)
  let p = Protocol.make d Protocol.Directed [ [ (0, 1); (2, 3) ] ] in
  check_int "directed ok" 1 (Protocol.length p)

let test_full_duplex_closure () =
  let g = Families.path 4 in
  let p = Protocol.make g Protocol.Full_duplex [ [ (0, 1) ] ] in
  (* the round is closed under reversal *)
  check "closure adds opposite arc" true
    (List.sort compare (Protocol.round p 0) = [ (0, 1); (1, 0) ])

let test_truncate_append () =
  let g = Families.path 4 in
  let p = Protocol.make g Protocol.Half_duplex [ [ (0, 1) ]; [ (1, 2) ]; [ (2, 3) ] ] in
  let q = Protocol.truncate p 2 in
  check_int "truncate" 2 (Protocol.length q);
  let r = Protocol.append q q in
  check_int "append" 4 (Protocol.length r);
  check "rounds preserved" true (Protocol.round r 3 = [ (1, 2) ]);
  check_int "arc activations" 4 (Protocol.arc_activations r);
  check_int "active rounds of vertex 1" 4 (Protocol.active_rounds r 1);
  check_int "active rounds of vertex 3" 0 (Protocol.active_rounds r 3)

(* --- systolic --- *)

let test_systolic_expand () =
  let g = Families.path 4 in
  let s = Systolic.make g Protocol.Half_duplex [ [ (0, 1) ]; [ (1, 2) ] ] in
  check_int "period" 2 (Systolic.period s);
  let p = Systolic.expand s ~length:5 in
  check_int "expanded length" 5 (Protocol.length p);
  check "systolic repetition" true
    (Protocol.round p 0 = Protocol.round p 2
    && Protocol.round p 1 = Protocol.round p 3
    && Protocol.round p 4 = Protocol.round p 0);
  check "period_round wraps" true (Systolic.period_round s 7 = [ (1, 2) ])

let test_systolic_of_protocol () =
  let g = Families.path 3 in
  let p = Protocol.make g Protocol.Half_duplex [ [ (0, 1) ]; [ (1, 2) ] ] in
  let s = Systolic.of_protocol p in
  check_int "period = length" 2 (Systolic.period s)

let test_active_pattern () =
  let g = Families.path 4 in
  let s =
    Systolic.make g Protocol.Half_duplex
      [ [ (0, 1); (2, 3) ]; [ (1, 2) ]; [ (2, 1) ] ]
  in
  let pat = Systolic.active_pattern s 1 in
  check "vertex 1 pattern" true (pat = [| `L; `R; `L |]);
  let pat2 = Systolic.active_pattern s 2 in
  check "vertex 2 pattern" true (pat2 = [| `R; `L; `R |]);
  let pat0 = Systolic.active_pattern s 0 in
  check "vertex 0 pattern has idle" true (pat0 = [| `R; `Idle; `Idle |]);
  (* full-duplex gives `Both *)
  let f = Systolic.make g Protocol.Full_duplex [ [ (0, 1) ] ] in
  check "full duplex both" true (Systolic.active_pattern f 0 = [| `Both |])

(* --- builders --- *)

let all_rounds_valid sys =
  let mode = Systolic.mode sys in
  List.for_all (Protocol.is_matching_for mode) (Systolic.period_rounds sys)

let test_builders_produce_valid_protocols () =
  List.iter
    (fun (name, sys) ->
      check (name ^ " rounds valid") true (all_rounds_valid sys))
    [
      ("path_wave", Builders.path_wave 9);
      ("cycle_rotate", Builders.cycle_rotate 10);
      ("hypercube hd", Builders.hypercube_sweep ~dim:4 ~full_duplex:false);
      ("hypercube fd", Builders.hypercube_sweep ~dim:4 ~full_duplex:true);
      ("complete doubling", Builders.complete_doubling ~dim:3 ~full_duplex:true);
      ( "coloring hd",
        Builders.edge_coloring_half_duplex (Families.de_bruijn 2 4) );
      ( "coloring fd",
        Builders.edge_coloring_full_duplex (Families.kautz 2 3) );
      ( "random directed",
        Builders.random_systolic
          (Families.de_bruijn_directed 2 4)
          Protocol.Directed ~period:5 ~seed:3 ~density:0.7 );
      ( "random full duplex",
        Builders.random_systolic (Families.hypercube 3) Protocol.Full_duplex
          ~period:4 ~seed:9 ~density:1.0 );
    ]

let test_builder_periods () =
  check_int "path_wave period" 4 (Systolic.period (Builders.path_wave 8));
  check_int "hypercube hd period" 8
    (Systolic.period (Builders.hypercube_sweep ~dim:4 ~full_duplex:false));
  check_int "hypercube fd period" 4
    (Systolic.period (Builders.hypercube_sweep ~dim:4 ~full_duplex:true));
  let colors =
    List.length (Coloring.best (Families.de_bruijn 2 4))
  in
  check_int "coloring hd period = 2·colors" (2 * colors)
    (Systolic.period (Builders.edge_coloring_half_duplex (Families.de_bruijn 2 4)))

let test_builder_rejects () =
  Alcotest.check_raises "odd cycle_rotate"
    (Invalid_argument "Builders.cycle_rotate: n must be even") (fun () ->
      ignore (Builders.cycle_rotate 7));
  Alcotest.check_raises "bad density"
    (Invalid_argument "Builders.random_systolic: density must be in [0, 1]")
    (fun () ->
      ignore
        (Builders.random_systolic (Families.path 4) Protocol.Half_duplex
           ~period:2 ~seed:0 ~density:1.5))

(* --- broadcast protocols --- *)

let test_broadcast_greedy_completes () =
  List.iter
    (fun (g, mode) ->
      let p = Broadcast_protocol.greedy_schedule g ~src:0 ~mode in
      (* run it: every vertex must know item 0 at the end *)
      let st =
        Gossip_simulate.Engine.initial_state (Digraph.n_vertices g)
      in
      List.iter (Gossip_simulate.Engine.apply_round st) (Protocol.rounds p);
      let ok = ref true in
      for v = 0 to Digraph.n_vertices g - 1 do
        if not (Gossip_util.Bitset.mem (Gossip_simulate.Engine.knowledge st v) 0)
        then ok := false
      done;
      check (Digraph.name g ^ " broadcast completes") true !ok;
      (* speed: within 3x of the trivial lower bound *)
      let lb =
        max
          (Metrics.eccentricity g 0)
          (int_of_float
             (ceil
                (Gossip_util.Numeric.log2
                   (float_of_int (Digraph.n_vertices g)))))
      in
      check
        (Digraph.name g ^ " broadcast fast")
        true
        (Protocol.length p <= (3 * lb) + 2))
    [
      (Families.hypercube 5, Protocol.Half_duplex);
      (Families.de_bruijn 2 5, Protocol.Half_duplex);
      (Families.complete 16, Protocol.Full_duplex);
      (Families.path 12, Protocol.Half_duplex);
      (Families.kautz_directed 2 4, Protocol.Directed);
    ]

let test_broadcast_systolized_free () =
  (* [8]: broadcasting can be systolized at no cost — the systolic wrap
     broadcasts within its first period *)
  let g = Families.de_bruijn 2 4 in
  let finite = Broadcast_protocol.greedy_schedule g ~src:3 ~mode:Protocol.Half_duplex in
  let sys = Broadcast_protocol.systolized g ~src:3 ~mode:Protocol.Half_duplex in
  let t = Gossip_simulate.Engine.broadcast_time sys ~src:3 in
  check "systolized broadcast time = schedule length" true
    (t = Some (Protocol.length finite))

let test_broadcast_src_validation () =
  Alcotest.check_raises "bad src"
    (Invalid_argument "Broadcast_protocol.greedy_schedule: src out of range")
    (fun () ->
      ignore
        (Broadcast_protocol.greedy_schedule (Families.path 3) ~src:5
           ~mode:Protocol.Half_duplex))

(* --- transformations --- *)

let test_time_reversal_preserves_gossip () =
  List.iter
    (fun sys ->
      let t = Option.get (Gossip_simulate.Engine.gossip_time sys) in
      let p = Systolic.expand sys ~length:t in
      let rev = Protocol.time_reversal p in
      let o = Gossip_simulate.Engine.run_protocol rev in
      check "reversed protocol also gossips in the same time" true
        (o.Gossip_simulate.Engine.completed_at = Some t))
    [
      Builders.cycle_rotate 8;
      Builders.hypercube_sweep ~dim:3 ~full_duplex:false;
      Builders.path_wave 6;
    ]

let test_time_reversal_directed () =
  let g = Families.directed_cycle 4 in
  let p = Protocol.make g Protocol.Directed [ [ (0, 1); (2, 3) ]; [ (1, 2); (3, 0) ] ] in
  let rev = Protocol.time_reversal p in
  check "lives on reversed digraph" true
    (Digraph.mem_arc (Protocol.graph rev) 1 0);
  check "rounds flipped and reversed" true
    (List.sort compare (Protocol.round rev 0) = [ (0, 3); (2, 1) ])

let test_systolic_rotate () =
  let sys = Builders.cycle_rotate 8 in
  let s = Systolic.period sys in
  let t0 = Option.get (Gossip_simulate.Engine.gossip_time sys) in
  List.iter
    (fun k ->
      let r = Systolic.rotate sys k in
      let tk = Option.get (Gossip_simulate.Engine.gossip_time r) in
      check
        (Printf.sprintf "rotation %d changes time < s" k)
        true
        (abs (tk - t0) < s))
    [ 1; 2; 3; -1 ];
  check "rotate 0 is identity" true
    (Systolic.period_rounds (Systolic.rotate sys 0) = Systolic.period_rounds sys)

(* --- Protocol_io --- *)

let test_io_roundtrip () =
  let sys = Builders.path_wave 5 in
  let text = Protocol_io.to_string sys in
  let back = Protocol_io.of_string text in
  check "mode preserved" true (Systolic.mode back = Systolic.mode sys);
  check "period preserved" true (Systolic.period back = Systolic.period sys);
  check "rounds preserved" true
    (List.map (List.sort compare) (Systolic.period_rounds back)
    = List.map (List.sort compare) (Systolic.period_rounds sys))

let test_io_parse () =
  let sys =
    Protocol_io.of_string
      "# comment
mode: half-duplex
vertices: 3
0>1
1>2  # trailing
2>1
1>0
"
  in
  check "parsed period 4" true (Systolic.period sys = 4);
  check "gossip works on loaded protocol" true
    (Gossip_simulate.Engine.gossip_time sys <> None)

let test_io_errors () =
  let expect_invalid msg s =
    check msg true
      (try
         ignore (Protocol_io.of_string s);
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid "missing mode" "vertices: 3
0>1
";
  expect_invalid "missing vertices" "mode: directed
0>1
";
  expect_invalid "bad arc" "mode: directed
vertices: 3
0-1
";
  expect_invalid "out of range" "mode: directed
vertices: 2
0>5
";
  expect_invalid "unknown mode" "mode: sideways
vertices: 2
0>1
";
  expect_invalid "invalid matching" "mode: half-duplex
vertices: 3
0>1 1>2
"

let test_io_file_roundtrip () =
  let sys = Builders.cycle_rotate 8 in
  let path = Filename.temp_file "gossip" ".proto" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Protocol_io.save sys path;
      let back = Protocol_io.load path in
      check "file roundtrip" true
        (Systolic.period back = Systolic.period sys))

let test_knoedel_sweep () =
  let sys = Builders.knoedel_sweep ~delta:4 ~n:16 in
  check "period = delta" true (Systolic.period sys = 4);
  (match Gossip_simulate.Engine.gossip_time sys with
  | Some t ->
      check "knoedel gossips fast" true (t <= 8);
      check "knoedel >= log n" true (t >= 4)
  | None -> Alcotest.fail "knoedel did not gossip")

let prop_random_systolic_valid =
  QCheck.Test.make ~name:"random systolic protocols are always valid"
    ~count:100
    QCheck.(triple (int_range 0 10_000) (int_range 1 8) (float_range 0.1 1.0))
    (fun (seed, period, density) ->
      let g = Families.kautz 2 3 in
      let sys =
        Builders.random_systolic g Protocol.Half_duplex ~period ~seed ~density
      in
      all_rounds_valid sys && Systolic.period sys = period)

let prop_io_roundtrip_random =
  QCheck.Test.make ~name:"Protocol_io roundtrip on random protocols" ~count:60
    QCheck.(pair (int_range 0 100_000) (int_range 1 6))
    (fun (seed, period) ->
      let g = Families.kautz 2 3 in
      let sys =
        Builders.random_systolic g Protocol.Half_duplex ~period ~seed
          ~density:0.8
      in
      let back = Protocol_io.of_string (Protocol_io.to_string sys) in
      List.map (List.sort compare) (Systolic.period_rounds back)
      = List.map (List.sort compare) (Systolic.period_rounds sys))

let prop_rotation_bounded_shift =
  QCheck.Test.make ~name:"rotations shift gossip time by < s" ~count:30
    QCheck.(pair (int_range 0 10_000) (int_range 1 7))
    (fun (seed, k) ->
      let sys =
        Builders.random_systolic (Families.de_bruijn 2 3) Protocol.Half_duplex
          ~period:8 ~seed ~density:1.0
      in
      match Gossip_simulate.Engine.gossip_time ~cap:300 sys with
      | None -> true
      | Some t -> (
          match
            Gossip_simulate.Engine.gossip_time ~cap:400 (Systolic.rotate sys k)
          with
          | None -> false
          | Some t' -> abs (t - t') < Systolic.period sys))

let prop_coloring_protocol_covers_all_edges =
  QCheck.Test.make ~name:"coloring protocol activates every edge each period"
    ~count:30
    QCheck.(pair (int_range 2 3) (int_range 2 4))
    (fun (d, dim) ->
      let g = Families.de_bruijn d dim in
      let sys = Builders.edge_coloring_half_duplex g in
      let seen = Hashtbl.create 64 in
      List.iter
        (fun round ->
          List.iter
            (fun (u, v) -> Hashtbl.replace seen (min u v, max u v) ())
            round)
        (Systolic.period_rounds sys);
      Hashtbl.length seen = List.length (Digraph.undirected_edges g))


let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("matching half-duplex", `Quick, test_matching_half_duplex);
    ("matching full-duplex", `Quick, test_matching_full_duplex);
    ("make validation", `Quick, test_make_validation);
    ("mode requirements", `Quick, test_make_mode_requirements);
    ("full-duplex closure", `Quick, test_full_duplex_closure);
    ("truncate/append", `Quick, test_truncate_append);
    ("systolic expand", `Quick, test_systolic_expand);
    ("systolic of protocol", `Quick, test_systolic_of_protocol);
    ("active pattern", `Quick, test_active_pattern);
    ("builders valid", `Quick, test_builders_produce_valid_protocols);
    ("builder periods", `Quick, test_builder_periods);
    ("builder rejects", `Quick, test_builder_rejects);
    ("broadcast greedy completes", `Quick, test_broadcast_greedy_completes);
    ("broadcast systolized free", `Quick, test_broadcast_systolized_free);
    ("broadcast src validation", `Quick, test_broadcast_src_validation);
    ("time reversal preserves gossip", `Quick, test_time_reversal_preserves_gossip);
    ("time reversal directed", `Quick, test_time_reversal_directed);
    ("systolic rotate", `Quick, test_systolic_rotate);
    ("protocol io roundtrip", `Quick, test_io_roundtrip);
    ("protocol io parse", `Quick, test_io_parse);
    ("protocol io errors", `Quick, test_io_errors);
    ("protocol io file", `Quick, test_io_file_roundtrip);
    ("knoedel sweep", `Quick, test_knoedel_sweep);
    q prop_random_systolic_valid;
    q prop_io_roundtrip_random;
    q prop_rotation_bounded_shift;
    q prop_coloring_protocol_covers_all_edges;
  ]
