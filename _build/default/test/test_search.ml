(* Tests for Gossip_search: matching enumeration, exact optimal gossip /
   broadcast numbers, and the systolic price experiment.  Ground-truth
   values are small enough to verify by hand. *)

open Gossip_topology
open Gossip_protocol
open Gossip_search

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let opt_rounds = function
  | Some (r : Optimal.result) -> r.Optimal.rounds
  | None -> Alcotest.fail "search did not complete"

(* --- matchings --- *)

let test_all_rounds_p3 () =
  (* P3 arcs: 01 10 12 21; matchings: 4 singletons + nothing else
     (all arc pairs share vertex 1 except (01,12)? 01 and 12 share 1!) —
     pairs sharing no endpoint: none. So 4 rounds. *)
  let g = Families.path 3 in
  check_int "P3 half-duplex rounds" 4
    (List.length (Matchings.all_rounds g Protocol.Half_duplex));
  check_int "count_all agrees" 4 (Matchings.count_all g Protocol.Half_duplex)

let test_all_rounds_p4 () =
  (* P4 arcs: 01 10 12 21 23 32.  Singletons: 6.  Disjoint pairs:
     {01,10} x {23,32} = 4.  Total 10. *)
  let g = Families.path 4 in
  check_int "P4 half-duplex rounds" 10
    (List.length (Matchings.all_rounds g Protocol.Half_duplex));
  (* maximal: the 4 pairs + the two middle-edge singletons 12, 21 *)
  check_int "P4 maximal rounds" 6
    (List.length (Matchings.maximal_rounds g Protocol.Half_duplex))

let test_full_duplex_rounds () =
  (* C4 edges: 4; edge matchings: 4 singletons + 2 perfect; maximal = 2 *)
  let g = Families.cycle 4 in
  check_int "C4 full-duplex all" 6
    (List.length (Matchings.all_rounds g Protocol.Full_duplex));
  let maximal = Matchings.maximal_rounds g Protocol.Full_duplex in
  check_int "C4 full-duplex maximal" 2 (List.length maximal);
  (* rounds are reversal-closed *)
  check "closed under reversal" true
    (List.for_all
       (fun round -> List.for_all (fun (u, v) -> List.mem (v, u) round) round)
       maximal)

let test_rounds_are_valid_matchings () =
  let g = Families.kautz_directed 2 2 in
  check "all directed rounds valid" true
    (List.for_all
       (Protocol.is_matching_for Protocol.Directed)
       (Matchings.all_rounds g Protocol.Directed));
  check "maximal subset of all" true
    (let all = Matchings.all_rounds g Protocol.Directed in
     List.for_all
       (fun m -> List.mem m all)
       (Matchings.maximal_rounds g Protocol.Directed))

(* --- optimal gossip --- *)

let test_gossip_numbers_known () =
  (* K4 full-duplex: 2 rounds (two disjoint exchanges, then cross). *)
  check_int "K4 fd" 2
    (opt_rounds (Optimal.gossip_number (Families.complete 4) Protocol.Full_duplex));
  (* C4 full-duplex: 2 rounds (the two perfect matchings). *)
  check_int "C4 fd" 2
    (opt_rounds (Optimal.gossip_number (Families.cycle 4) Protocol.Full_duplex));
  (* P2 half-duplex: 2 rounds (one arc each way). *)
  check_int "P2 hd" 2
    (opt_rounds (Optimal.gossip_number (Families.path 2) Protocol.Half_duplex));
  (* P4 half-duplex: 4. *)
  check_int "P4 hd" 4
    (opt_rounds (Optimal.gossip_number (Families.path 4) Protocol.Half_duplex));
  (* Q2 = C4. directed cycle C3: every vertex must receive 2 items over
     in-degree-1 link: >= ... exact search says: *)
  check_int "directed C3" 4
    (opt_rounds
       (Optimal.gossip_number (Families.directed_cycle 3) Protocol.Directed))

let test_gossip_optimal_below_any_protocol () =
  (* optimal <= measured time of any concrete protocol *)
  let g = Families.cycle 6 in
  let opt =
    opt_rounds (Optimal.gossip_number g Protocol.Half_duplex)
  in
  let measured =
    Option.get (Gossip_simulate.Engine.gossip_time (Builders.cycle_rotate 6))
  in
  check "optimal <= protocol" true (opt <= measured);
  check "optimal >= diameter" true (opt >= Metrics.diameter g)

let test_broadcast_number () =
  (* star: hub broadcasts in n-1 rounds half-duplex (one leaf per round) *)
  check_int "star hub broadcast" 4
    ((fun (r : Optimal.result option) -> (Option.get r).Optimal.rounds)
       (Optimal.broadcast_number (Families.star 5) Protocol.Half_duplex ~src:0));
  (* leaf source: 1 round to hub + 3 more *)
  check_int "star leaf broadcast" 4
    ((fun (r : Optimal.result option) -> (Option.get r).Optimal.rounds)
       (Optimal.broadcast_number (Families.star 5) Protocol.Half_duplex ~src:1));
  (* broadcast on K8 full-duplex = log2 8 = 3 *)
  check_int "K8 fd broadcast" 3
    ((fun (r : Optimal.result option) -> (Option.get r).Optimal.rounds)
       (Optimal.broadcast_number (Families.complete 8) Protocol.Full_duplex ~src:0))

let test_broadcast_leq_gossip () =
  List.iter
    (fun (g, mode) ->
      let b =
        (Option.get (Optimal.broadcast_number g mode ~src:0)).Optimal.rounds
      in
      let go = opt_rounds (Optimal.gossip_number g mode) in
      check "broadcast <= gossip" true (b <= go))
    [
      (Families.path 4, Protocol.Half_duplex);
      (Families.cycle 4, Protocol.Full_duplex);
      (Families.complete 4, Protocol.Half_duplex);
      (Families.star 4, Protocol.Half_duplex);
    ]

let test_size_guard () =
  Alcotest.check_raises "too large"
    (Invalid_argument "Optimal: networks over 24 vertices are not searchable")
    (fun () ->
      ignore (Optimal.gossip_number (Families.hypercube 5) Protocol.Half_duplex))

(* --- systolic optimal / price of systolization --- *)

let test_no_2_systolic_on_paths () =
  (* Section 4's remark: for s = 2, A1 ∪ A2 must form a directed cycle;
     paths have none, so no 2-systolic protocol gossips on P4. *)
  check "P4 has no 2-systolic gossip" true
    (Systolic_optimal.systolic_gossip_number (Families.path 4)
       Protocol.Half_duplex ~s:2
    = Systolic_optimal.Infeasible)

let test_no_3_systolic_on_p4 () =
  (* with 3 rounds the middle edge needs both directions, leaving one
     round for the two end edges — impossible *)
  check "P4 has no 3-systolic gossip" true
    (Systolic_optimal.systolic_gossip_number (Families.path 4)
       Protocol.Half_duplex ~s:3
    = Systolic_optimal.Infeasible)

let test_4_systolic_on_p4_matches_optimal () =
  match
    Systolic_optimal.systolic_gossip_number (Families.path 4)
      Protocol.Half_duplex ~s:4
  with
  | Systolic_optimal.Found r ->
      check_int "4-systolic P4 gossip" 4 r.Systolic_optimal.rounds;
      check_int "period length" 4 (List.length r.Systolic_optimal.period)
  | Systolic_optimal.Infeasible | Systolic_optimal.Too_large ->
      Alcotest.fail "expected a 4-systolic protocol on P4"

let test_systolic_sweep_budget () =
  (* a tiny candidate budget must report Too_large, not Infeasible *)
  check "budget exhaustion distinguished" true
    (Systolic_optimal.systolic_gossip_number ~max_candidates:2
       (Families.cycle 6) Protocol.Half_duplex ~s:4
    = Systolic_optimal.Too_large)

let test_2_systolic_on_cycles () =
  (* cycles do contain directed cycles: 2-systolic gossip exists, and the
     paper says it needs >= n - 1 rounds *)
  match
    Systolic_optimal.systolic_gossip_number (Families.cycle 4)
      Protocol.Half_duplex ~s:2
  with
  | Systolic_optimal.Found r ->
      check "2-systolic C4 >= n - 1" true (r.Systolic_optimal.rounds >= 3);
      check_int "2-systolic C4 exact" 4 r.Systolic_optimal.rounds
  | Systolic_optimal.Infeasible | Systolic_optimal.Too_large ->
      Alcotest.fail "expected a 2-systolic protocol on C4"

let test_price_of_systolization_path () =
  let systolic, unrestricted =
    Systolic_optimal.price_of_systolization ~s_max:4 (Families.path 4)
      Protocol.Half_duplex
  in
  check_int "unrestricted P4" 4 (Option.get unrestricted);
  check "s=2 impossible" true (List.assoc 2 systolic = Systolic_optimal.Infeasible);
  check "s=3 impossible" true (List.assoc 3 systolic = Systolic_optimal.Infeasible);
  check "s=4 achieves optimal" true
    (match List.assoc 4 systolic with
    | Systolic_optimal.Found r -> r.Systolic_optimal.rounds = 4
    | _ -> false)

let test_systolic_never_beats_optimal () =
  List.iter
    (fun (g, mode, s) ->
      let opt = opt_rounds (Optimal.gossip_number g mode) in
      match Systolic_optimal.systolic_gossip_number g mode ~s with
      | Systolic_optimal.Infeasible | Systolic_optimal.Too_large -> ()
      | Systolic_optimal.Found r ->
          check "systolic >= optimal" true (r.Systolic_optimal.rounds >= opt))
    [
      (Families.cycle 4, Protocol.Half_duplex, 2);
      (Families.cycle 4, Protocol.Half_duplex, 3);
      (Families.path 4, Protocol.Half_duplex, 4);
      (Families.cycle 4, Protocol.Full_duplex, 2);
    ]

(* --- optimizer --- *)

let test_optimizer_improves_or_matches () =
  let g = Families.de_bruijn 2 4 in
  let sys = Builders.edge_coloring_half_duplex g in
  let base = Option.get (Gossip_simulate.Engine.gossip_time sys) in
  let improved_sys, improved =
    Optimizer.improve
      ~options:{ Optimizer.default_options with iterations = 150; restarts = 2 }
      sys
  in
  (match improved with
  | Some t ->
      check "optimizer never worsens" true (t <= base);
      (* the reported time matches an actual simulation of the result *)
      check "reported time is real" true
        (Gossip_simulate.Engine.gossip_time improved_sys = Some t)
  | None -> Alcotest.fail "optimizer lost a completing protocol")

let test_optimizer_search_finds_protocols () =
  let g = Families.cycle 8 in
  let _, time =
    Optimizer.search
      ~options:{ Optimizer.default_options with iterations = 200; restarts = 2 }
      g Protocol.Half_duplex ~s:4
  in
  (match time with
  | Some t ->
      check "found protocol beats trivial cap" true (t <= 40);
      check "respects diameter" true (t >= Metrics.diameter g)
  | None -> Alcotest.fail "optimizer found nothing on C8");
  Alcotest.check_raises "too large rejected"
    (Invalid_argument "Optimizer: networks over 62 vertices are not supported")
    (fun () ->
      ignore (Optimizer.search (Families.hypercube 6) Protocol.Half_duplex ~s:4))

let test_optimizer_deterministic () =
  let g = Families.kautz 2 3 in
  let opts = { Optimizer.default_options with iterations = 100; restarts = 1; seed = 5 } in
  let _, a = Optimizer.search ~options:opts g Protocol.Half_duplex ~s:5 in
  let _, b = Optimizer.search ~options:opts g Protocol.Half_duplex ~s:5 in
  check "same seed same result" true (a = b)

let test_optimizer_full_duplex_closure () =
  (* mutations may drop one direction of an exchange; the finished
     protocol must still be valid and its reported time accurate *)
  let g = Families.hypercube 3 in
  let sys_opt, time =
    Optimizer.search
      ~options:{ Optimizer.default_options with iterations = 150; restarts = 1 }
      g Protocol.Full_duplex ~s:4
  in
  (match time with
  | Some t -> check "reported = simulated" true
      (Gossip_simulate.Engine.gossip_time sys_opt = Some t)
  | None -> ());
  check "rounds closed under reversal" true
    (List.for_all
       (fun round -> List.for_all (fun (u, v) -> List.mem (v, u) round) round)
       (Systolic.period_rounds sys_opt))

(* optimal over maximal rounds = optimal over all rounds (domination) *)
let test_maximal_rounds_suffice () =
  let g = Families.path 4 in
  let mode = Protocol.Half_duplex in
  (* run the BFS manually with all rounds via a 1-period systolic sweep:
     simplest cross-check is that adding non-maximal rounds cannot reduce
     the optimum below the maximal-only search; we verify the known value
     4 is already achieved by a protocol made only of maximal rounds. *)
  let r = opt_rounds (Optimal.gossip_number g mode) in
  check_int "maximal-round search achieves the true optimum" 4 r

let prop_optimal_geq_certificate_trivia =
  QCheck.Test.make ~name:"optimal gossip >= max(diameter, ceil(log2 n))"
    ~count:20
    QCheck.(int_range 3 6)
    (fun n ->
      let g = Families.cycle n in
      let r = Optimal.gossip_number g Protocol.Full_duplex in
      match r with
      | None -> true
      | Some r ->
          let d = Metrics.diameter g in
          let log2n =
            int_of_float (ceil (Gossip_util.Numeric.log2 (float_of_int n)))
          in
          r.Optimal.rounds >= max d log2n)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("all rounds P3", `Quick, test_all_rounds_p3);
    ("all rounds P4", `Quick, test_all_rounds_p4);
    ("full-duplex rounds C4", `Quick, test_full_duplex_rounds);
    ("rounds are valid matchings", `Quick, test_rounds_are_valid_matchings);
    ("known gossip numbers", `Quick, test_gossip_numbers_known);
    ("optimal below any protocol", `Quick, test_gossip_optimal_below_any_protocol);
    ("broadcast numbers", `Quick, test_broadcast_number);
    ("broadcast <= gossip", `Quick, test_broadcast_leq_gossip);
    ("size guard", `Quick, test_size_guard);
    ("no 2-systolic on paths", `Quick, test_no_2_systolic_on_paths);
    ("no 3-systolic on P4", `Quick, test_no_3_systolic_on_p4);
    ("4-systolic P4 optimal", `Quick, test_4_systolic_on_p4_matches_optimal);
    ("sweep budget distinguished", `Quick, test_systolic_sweep_budget);
    ("2-systolic cycles", `Quick, test_2_systolic_on_cycles);
    ("price of systolization", `Quick, test_price_of_systolization_path);
    ("systolic never beats optimal", `Quick, test_systolic_never_beats_optimal);
    ("maximal rounds suffice", `Quick, test_maximal_rounds_suffice);
    ("optimizer improves", `Quick, test_optimizer_improves_or_matches);
    ("optimizer search", `Quick, test_optimizer_search_finds_protocols);
    ("optimizer deterministic", `Quick, test_optimizer_deterministic);
    ("optimizer full-duplex closure", `Quick, test_optimizer_full_duplex_closure);
    q prop_optimal_geq_certificate_trivia;
  ]
