(* Tests for Gossip_topology: digraph structure, family generators
   (vertex/arc counts and degrees against the closed-form formulas of
   Section 3), BFS metrics, the Lemma 3.1 separators, edge coloring. *)

open Gossip_topology

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ipow b e = int_of_float (float_of_int b ** float_of_int e)

(* --- Digraph --- *)

let test_digraph_basic () =
  let g = Digraph.make ~name:"tri" 3 [ (0, 1); (1, 2); (2, 0) ] in
  check_int "n" 3 (Digraph.n_vertices g);
  check_int "arcs" 3 (Digraph.n_arcs g);
  check "mem" true (Digraph.mem_arc g 0 1);
  check "not mem" false (Digraph.mem_arc g 1 0);
  check "strongly connected" true (Digraph.is_strongly_connected g);
  check "not symmetric" false (Digraph.is_symmetric g);
  let s = Digraph.symmetric_closure g in
  check_int "closure arcs" 6 (Digraph.n_arcs s);
  check "closure symmetric" true (Digraph.is_symmetric s);
  let r = Digraph.reverse g in
  check "reverse arc" true (Digraph.mem_arc r 1 0)

let test_digraph_rejects () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Digraph.make: self-loop at 1") (fun () ->
      ignore (Digraph.make ~name:"x" 2 [ (1, 1) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Digraph.make: arc (0,5) out of range") (fun () ->
      ignore (Digraph.make ~name:"x" 2 [ (0, 5) ]))

let test_digraph_duplicates_merged () =
  let g = Digraph.make ~name:"dup" 2 [ (0, 1); (0, 1) ] in
  check_int "merged" 1 (Digraph.n_arcs g)

let test_degree_parameter () =
  (* undirected: max degree - 1; directed: max out-degree *)
  check_int "path degree param" 1 (Digraph.degree_parameter (Families.path 5));
  check_int "cycle degree param" 1 (Digraph.degree_parameter (Families.cycle 6));
  check_int "dDB degree param" 2
    (Digraph.degree_parameter (Families.de_bruijn_directed 2 4));
  check_int "hypercube degree param" 2
    (Digraph.degree_parameter (Families.hypercube 3))

let test_undirected_edges () =
  let g = Families.cycle 5 in
  check_int "cycle 5 has 5 edges" 5 (List.length (Digraph.undirected_edges g))

let test_not_strongly_connected () =
  let g = Digraph.make ~name:"two" 2 [ (0, 1) ] in
  check "one-way pair not SC" false (Digraph.is_strongly_connected g)

(* --- family counts: n, arcs, degrees (Section 3 formulas) --- *)

let test_family_sizes () =
  let cases =
    [
      ("path", Families.path 10, 10, 2 * 9);
      ("cycle", Families.cycle 10, 10, 2 * 10);
      ("complete", Families.complete 7, 7, 7 * 6);
      ("star", Families.star 8, 8, 2 * 7);
      ("bipartite", Families.complete_bipartite 3 4, 7, 2 * 12);
      ("hypercube", Families.hypercube 4, 16, 4 * 16);
      ("grid", Families.grid 4 6, 24, 2 * ((3 * 6) + (4 * 5)));
      ("torus", Families.torus 4 5, 20, 2 * 2 * 20);
      ("tree", Families.complete_dary_tree 3 2, 13, 2 * 12);
      ("BF(2,3)", Families.butterfly 2 3, 4 * 8, 2 * 2 * 3 * 8);
      ("dWBF(2,3)", Families.wrapped_butterfly_directed 2 3, 24, 2 * 24);
      ("WBF(2,3)", Families.wrapped_butterfly 2 3, 24, 4 * 24);
      ("dDB(2,4)", Families.de_bruijn_directed 2 4, 16, (2 * 16) - 2);
      ("dDB(3,3)", Families.de_bruijn_directed 3 3, 27, (3 * 27) - 3);
      ("dK(2,3)", Families.kautz_directed 2 3, 12, 2 * 12);
      ("dK(3,2)", Families.kautz_directed 3 2, 12, 3 * 12);
    ]
  in
  List.iter
    (fun (name, g, n, arcs) ->
      check_int (name ^ " vertices") n (Digraph.n_vertices g);
      check_int (name ^ " arcs") arcs (Digraph.n_arcs g))
    cases

let test_families_strongly_connected () =
  List.iter
    (fun g ->
      check (Digraph.name g ^ " strongly connected") true
        (Digraph.is_strongly_connected g))
    [
      Families.path 7;
      Families.cycle 9;
      Families.directed_cycle 6;
      Families.hypercube 3;
      Families.butterfly 2 3;
      Families.wrapped_butterfly_directed 2 3;
      Families.wrapped_butterfly 3 2;
      Families.de_bruijn_directed 2 5;
      Families.de_bruijn 3 3;
      Families.kautz_directed 2 4;
      Families.kautz 3 2;
      Families.complete_dary_tree 2 3;
    ]

let test_family_diameters () =
  check_int "path diam" 9 (Metrics.diameter (Families.path 10));
  check_int "cycle diam" 5 (Metrics.diameter (Families.cycle 10));
  check_int "complete diam" 1 (Metrics.diameter (Families.complete 5));
  check_int "hypercube diam" 4 (Metrics.diameter (Families.hypercube 4));
  check_int "grid diam" 8 (Metrics.diameter (Families.grid 5 5));
  check_int "dDB diam = D" 5 (Metrics.diameter (Families.de_bruijn_directed 2 5));
  check_int "dK diam = D" 4 (Metrics.diameter (Families.kautz_directed 2 4));
  check_int "BF diam = 2D" 8 (Metrics.diameter (Families.butterfly 2 4))

let test_family_rejects () =
  Alcotest.check_raises "cycle 2"
    (Invalid_argument "Families.cycle: invalid dimension") (fun () ->
      ignore (Families.cycle 2));
  Alcotest.check_raises "butterfly d=1"
    (Invalid_argument "Families.butterfly: invalid dimension") (fun () ->
      ignore (Families.butterfly 1 3))

let test_de_bruijn_structure () =
  (* every vertex has out-degree d except the d "constant" strings whose
     self-loop was dropped *)
  let d = 2 and dim = 4 in
  let g = Families.de_bruijn_directed d dim in
  let outs =
    List.init (ipow d dim) (fun v -> Digraph.out_degree g v)
  in
  let full = List.length (List.filter (fun x -> x = d) outs) in
  let short = List.length (List.filter (fun x -> x = d - 1) outs) in
  check_int "all but d vertices have out-degree d" (ipow d dim - d) full;
  check_int "d constant strings lost their loop" d short

let test_kautz_string_coding () =
  let d = 2 and dim = 4 in
  let n = (d + 1) * ipow d (dim - 1) in
  let seen = Hashtbl.create n in
  let ok = ref true in
  for v = 0 to n - 1 do
    let s = Families.kautz_string_of_vertex ~d ~dim v in
    (* adjacent-distinct *)
    for i = 0 to dim - 2 do
      if s.(i) = s.(i + 1) then ok := false
    done;
    if Families.kautz_vertex_of_string ~d s <> v then ok := false;
    if Hashtbl.mem seen (Array.to_list s) then ok := false;
    Hashtbl.replace seen (Array.to_list s) ()
  done;
  check "kautz coding bijective and valid" true !ok;
  check_int "all strings enumerated" n (Hashtbl.length seen)

let test_string_coding_roundtrip () =
  let d = 3 and dim = 4 in
  let ok = ref true in
  for code = 0 to ipow d dim - 1 do
    let s = Families.string_of_code ~d ~dim code in
    if Array.exists (fun x -> x < 1 || x > d) s then ok := false;
    if Families.code_of_string ~d s <> code then ok := false
  done;
  check "base-d coding roundtrip" true !ok

let test_butterfly_levels () =
  (* arcs only join consecutive levels, both directions *)
  let d = 2 and dim = 3 in
  let g = Families.butterfly d dim in
  let words = ipow d dim in
  let level v = v / words in
  let ok = ref true in
  Digraph.iter_arcs
    (fun u v -> if abs (level u - level v) <> 1 then ok := false)
    g;
  check "butterfly arcs respect levels" true !ok;
  check "butterfly symmetric" true (Digraph.is_symmetric g)

let test_wbf_level_rotation () =
  let d = 2 and dim = 4 in
  let g = Families.wrapped_butterfly_directed d dim in
  let words = ipow d dim in
  let ok = ref true in
  Digraph.iter_arcs
    (fun u v ->
      let lu = u / words and lv = v / words in
      if lv <> (lu + dim - 1) mod dim then ok := false)
    g;
  check "dWBF arcs go down one level mod D" true !ok

(* --- Metrics --- *)

let test_bfs_distances () =
  let g = Families.path 6 in
  let dist = Metrics.bfs g 0 in
  check "path distances" true (dist = [| 0; 1; 2; 3; 4; 5 |]);
  check_int "distance" 3 (Metrics.distance g 1 4);
  check_int "eccentricity of end" 5 (Metrics.eccentricity g 0);
  check_int "eccentricity of middle" 3 (Metrics.eccentricity g 2)

let test_bfs_multi_and_sets () =
  let g = Families.cycle 8 in
  let dist = Metrics.bfs_multi g [ 0; 4 ] in
  check "multi-source" true (dist.(2) = 2 && dist.(6) = 2);
  check_int "set distance" 2 (Metrics.set_distance g [ 0 ] [ 2; 6 ])

let test_unreachable () =
  let g = Digraph.make ~name:"disc" 3 [ (0, 1) ] in
  let dist = Metrics.bfs g 0 in
  check "unreachable marked" true (dist.(2) = Metrics.unreachable);
  check_int "diameter unreachable" Metrics.unreachable (Metrics.diameter g)

let test_diameter_sampled () =
  let g = Families.hypercube 5 in
  check_int "sampled = exact when samples >= n" 5
    (Metrics.diameter_sampled g ~samples:100 ~seed:1);
  check "sampled lower bound" true
    (Metrics.diameter_sampled g ~samples:3 ~seed:1 <= 5)

let test_all_pairs () =
  let g = Families.cycle 6 in
  let d = Metrics.all_pairs g in
  check "all pairs symmetric" true (d.(1).(4) = d.(4).(1));
  check_int "opposite vertices" 3 d.(0).(3)

(* --- Separators --- *)

let test_separator_bf () =
  let d = 2 and dim = 4 in
  let g = Families.butterfly d dim in
  let sep = Separator.butterfly ~d ~dim in
  let m = Separator.measure g sep in
  check_int "BF distance = 2D" (2 * dim) m.Separator.distance;
  check_int "BF min size = d^D/2" (ipow d dim / 2) m.Separator.min_size

let test_separator_dwbf () =
  let d = 2 and dim = 4 in
  let g = Families.wrapped_butterfly_directed d dim in
  let m = Separator.measure g (Separator.wrapped_butterfly_directed ~d ~dim) in
  check_int "dWBF distance = 2D-1" ((2 * dim) - 1) m.Separator.distance

let test_separator_wbf () =
  let d = 2 and dim = 6 in
  let g = Families.wrapped_butterfly d dim in
  let m = Separator.measure g (Separator.wrapped_butterfly ~d ~dim) in
  (* 3D/2 - O(sqrt D): for D = 6 at least D - 1 and at most 3D/2 *)
  check "WBF distance within asymptotic window" true
    (m.Separator.distance >= dim - 1 && m.Separator.distance <= (3 * dim / 2) + 1);
  check "WBF sets sizable" true (m.Separator.min_size >= 8)

let test_separator_db_directed () =
  List.iter
    (fun (d, dim) ->
      let g = Families.de_bruijn_directed d dim in
      let m = Separator.measure g (Separator.de_bruijn ~d ~dim) in
      let h = int_of_float (ceil (sqrt (float_of_int dim))) in
      check
        (Printf.sprintf "dDB(%d,%d) distance >= D - h + 1" d dim)
        true
        (m.Separator.distance >= dim - h + 1);
      check
        (Printf.sprintf "dDB(%d,%d) sets sizable" d dim)
        true
        (m.Separator.min_size * 16 >= Digraph.n_vertices g / ipow d h))
    [ (2, 6); (2, 8); (3, 4) ]

let test_separator_kautz_directed () =
  List.iter
    (fun (d, dim) ->
      let g = Families.kautz_directed d dim in
      let m = Separator.measure g (Separator.kautz ~d ~dim) in
      let h = int_of_float (ceil (sqrt (float_of_int dim))) in
      check
        (Printf.sprintf "dK(%d,%d) distance >= D - h + 1" d dim)
        true
        (m.Separator.distance >= dim - h + 1))
    [ (2, 6); (3, 4) ]

let test_separator_db_undirected () =
  let d = 2 and dim = 8 in
  let g = Families.de_bruijn d dim in
  let m = Separator.measure g (Separator.de_bruijn_undirected ~d ~dim) in
  let h = int_of_float (ceil (sqrt (float_of_int dim))) in
  check "undirected DB distance >= D/2 - h" true
    (m.Separator.distance >= (dim / 2) - h);
  check "undirected DB sets sizable" true (m.Separator.min_size >= 16)

let test_separator_kautz_undirected () =
  let d = 2 and dim = 6 in
  let g = Families.kautz d dim in
  let m = Separator.measure g (Separator.kautz_undirected ~d ~dim) in
  let h = int_of_float (ceil (sqrt (float_of_int dim))) in
  check "undirected K distance >= D/2 - h" true
    (m.Separator.distance >= (dim / 2) - h)

(* The paper's literal de Bruijn construction (same sparse positions in
   both sets) collapses to distance 1 because arcs shift strings — this
   regression test documents why the corrected sets are needed. *)
let test_separator_naive_db_collapses () =
  let d = 2 and dim = 6 in
  let g = Families.de_bruijn_directed d dim in
  let h = 3 in
  let low_positions = [ 0; h ] in
  let constrained low v =
    let s = Families.string_of_code ~d ~dim v in
    List.for_all (fun p -> if low then s.(p) = 1 else s.(p) = 2) low_positions
  in
  let all = List.init (ipow d dim) Fun.id in
  let v1 = List.filter (constrained true) all in
  let v2 = List.filter (constrained false) all in
  check_int "naive construction distance collapses" 1
    (Metrics.set_distance g v1 v2)

let test_separator_alpha_ell_values () =
  let s = Separator.de_bruijn ~d:2 ~dim:6 in
  check "DB alpha = log d" true (Float.abs (s.Separator.alpha -. 1.0) < 1e-12);
  check "DB ell = 1/log d" true (Float.abs (s.Separator.ell -. 1.0) < 1e-12);
  let w = Separator.wrapped_butterfly ~d:2 ~dim:6 in
  check "WBF alpha = 2/3" true (Float.abs (w.Separator.alpha -. (2.0 /. 3.0)) < 1e-12);
  check "WBF ell = 1.5" true (Float.abs (w.Separator.ell -. 1.5) < 1e-12)

let test_separator_measure_empty () =
  let g = Families.path 4 in
  Alcotest.check_raises "empty set rejected"
    (Invalid_argument "Separator.measure: empty separator set") (fun () ->
      ignore
        (Separator.measure g
           (Separator.custom ~alpha:1.0 ~ell:1.0 ~v1:[] ~v2:[ 0 ])))

(* --- Coloring --- *)

let test_coloring_families () =
  List.iter
    (fun g ->
      let classes = Coloring.edge_coloring g in
      check (Digraph.name g ^ " proper") true (Coloring.is_proper g classes);
      let delta = Digraph.max_out_degree g in
      check
        (Digraph.name g ^ " colors <= 2Δ-1")
        true
        (List.length classes <= (2 * delta) - 1))
    [
      Families.path 9;
      Families.cycle 7;
      Families.hypercube 4;
      Families.de_bruijn 2 4;
      Families.wrapped_butterfly 2 3;
      Families.kautz 2 3;
      Families.complete 6;
      Families.grid 4 4;
      Families.complete_dary_tree 3 2;
    ]

let test_coloring_path_two_colors () =
  let g = Families.path 10 in
  check_int "path is 2-edge-colorable" 2
    (List.length (Coloring.edge_coloring g))

let test_coloring_rejects_directed () =
  Alcotest.check_raises "directed rejected"
    (Invalid_argument "Coloring.edge_coloring: digraph not symmetric")
    (fun () -> ignore (Coloring.edge_coloring (Families.directed_cycle 4)))

let test_is_proper_detects_bad () =
  let g = Families.path 4 in
  (* classes missing an edge *)
  check "missing edge detected" false (Coloring.is_proper g [ [ (0, 1) ] ]);
  (* non-matching class *)
  check "non-matching detected" false
    (Coloring.is_proper g [ [ (0, 1); (1, 2) ]; [ (2, 3) ] ])

let test_misra_gries_families () =
  List.iter
    (fun g ->
      let classes = Coloring.misra_gries g in
      let delta = Digraph.max_out_degree g in
      check (Digraph.name g ^ " MG proper") true (Coloring.is_proper g classes);
      check
        (Digraph.name g ^ " MG colors <= delta+1")
        true
        (List.length classes <= delta + 1))
    [
      Families.path 9;
      Families.cycle 7;
      Families.complete 7;
      Families.hypercube 4;
      Families.de_bruijn 2 5;
      Families.wrapped_butterfly 2 3;
      Families.kautz 2 4;
      Families.grid 5 5;
      Families.complete_dary_tree 3 3;
      Extra_families.cube_connected_cycles 3;
      Extra_families.shuffle_exchange 5;
    ]

let test_misra_gries_beats_vizing_class2 () =
  (* odd complete graphs are class 2: chromatic index delta+1 exactly *)
  let g = Families.complete 7 in
  check_int "K7 needs exactly 7 = delta+1" 7
    (List.length (Coloring.misra_gries g))

let prop_misra_gries_random =
  QCheck.Test.make ~name:"Misra-Gries proper and <= delta+1 on random graphs"
    ~count:80
    (QCheck.int_range 0 100_000)
    (fun seed ->
      let rng = Gossip_util.Prng.create seed in
      let n = 4 + Gossip_util.Prng.int rng 14 in
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Gossip_util.Prng.float rng 1.0 < 0.4 then edges := (u, v) :: !edges
        done
      done;
      QCheck.assume (!edges <> []);
      let arcs = List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) !edges in
      let g = Digraph.make ~name:"rand" n arcs in
      let classes = Coloring.misra_gries g in
      Coloring.is_proper g classes
      && List.length classes <= Digraph.max_out_degree g + 1)

let test_coloring_best () =
  let g = Families.hypercube 4 in
  (* greedy happens to 4-color Q4; best must not be worse *)
  check "best <= both" true
    (List.length (Coloring.best g)
    <= min
         (List.length (Coloring.edge_coloring g))
         (List.length (Coloring.misra_gries g)));
  check "best proper" true (Coloring.is_proper g (Coloring.best g))

(* --- Random graphs --- *)

let test_random_regular () =
  List.iter
    (fun (n, degree) ->
      let g = Random_graphs.regular ~n ~degree ~seed:5 in
      check_int "vertex count" n (Digraph.n_vertices g);
      let ok = ref true in
      for v = 0 to n - 1 do
        if Digraph.out_degree g v <> degree then ok := false
      done;
      check (Printf.sprintf "R(%d,%d) regular" n degree) true !ok;
      check "symmetric" true (Digraph.is_symmetric g))
    [ (10, 3); (16, 4); (20, 3) ];
  Alcotest.check_raises "odd total degree"
    (Invalid_argument "Random_graphs.regular: n·degree must be even")
    (fun () -> ignore (Random_graphs.regular ~n:5 ~degree:3 ~seed:0))

let test_random_regular_deterministic () =
  let a = Random_graphs.regular ~n:12 ~degree:3 ~seed:7 in
  let b = Random_graphs.regular ~n:12 ~degree:3 ~seed:7 in
  check "same seed same graph" true (Digraph.arcs a = Digraph.arcs b);
  let c = Random_graphs.regular ~n:12 ~degree:3 ~seed:8 in
  check "different seed differs" true (Digraph.arcs a <> Digraph.arcs c)

let test_erdos_renyi () =
  let g = Random_graphs.erdos_renyi_digraph ~n:20 ~p:0.3 ~seed:2 in
  check "arc count plausible" true
    (let m = Digraph.n_arcs g in
     m > 50 && m < 190);
  let empty = Random_graphs.erdos_renyi_digraph ~n:10 ~p:0.0 ~seed:2 in
  check_int "p=0 empty" 0 (Digraph.n_arcs empty)

let test_strongly_connected_random () =
  let g = Random_graphs.strongly_connected_digraph ~n:15 ~extra_arcs:10 ~seed:3 in
  check "strongly connected by construction" true
    (Digraph.is_strongly_connected g);
  check "has the extra arcs" true (Digraph.n_arcs g >= 15)

(* --- Operations: line digraphs and products --- *)

let test_kautz_is_iterated_line_digraph () =
  (* K(d, D+1) = L(K(d, D)), witnessed by the explicit bijection
     arc (x -> y) of K(d,D)  <->  the length-(D+1) string x·(last of y) *)
  List.iter
    (fun (d, dim) ->
      let g = Families.kautz_directed d dim in
      let lg = Operations.line_digraph g in
      let target = Families.kautz_directed d (dim + 1) in
      check "same shape" true (Operations.same_shape lg target);
      let arcs = Array.of_list (Digraph.arcs g) in
      let f =
        Array.map
          (fun (u, v) ->
            let su = Families.kautz_string_of_vertex ~d ~dim u in
            let sv = Families.kautz_string_of_vertex ~d ~dim v in
            let s = Array.make (dim + 1) 0 in
            Array.blit su 0 s 1 dim;
            s.(0) <- sv.(0);
            Families.kautz_vertex_of_string ~d s)
          arcs
      in
      check
        (Printf.sprintf "L(K(%d,%d)) iso K(%d,%d)" d dim d (dim + 1))
        true
        (Operations.isomorphic_by lg target f))
    [ (2, 1); (2, 2); (2, 3); (3, 1); (3, 2) ]

let test_grid_is_product_of_paths () =
  let grid = Families.grid 4 6 in
  let prod = Operations.cartesian_product (Families.path 4) (Families.path 6) in
  check "identical indexing" true
    (Operations.isomorphic_by prod grid (Array.init 24 Fun.id))

let test_torus_is_product_of_cycles () =
  let torus = Families.torus 4 5 in
  let prod = Operations.cartesian_product (Families.cycle 4) (Families.cycle 5) in
  check "torus = C4 x C5" true
    (Operations.isomorphic_by prod torus (Array.init 20 Fun.id))

let test_hypercube_is_k2_power () =
  let q = Families.hypercube 4 in
  let p = Operations.power (Families.complete 2) 4 in
  check "Q4 = K2^4" true (Operations.isomorphic_by p q (Array.init 16 Fun.id))

let test_same_shape_negative () =
  check "path vs cycle differ" false
    (Operations.same_shape (Families.path 5) (Families.cycle 5));
  check "directed vs undirected differ" false
    (Operations.same_shape
       (Families.de_bruijn_directed 2 3)
       (Families.de_bruijn 2 3))

let test_isomorphic_by_rejects_bad_maps () =
  let g = Families.cycle 4 in
  check "non-bijection rejected" false
    (Operations.isomorphic_by g g [| 0; 0; 1; 2 |]);
  check "arc-breaking map rejected" false
    (Operations.isomorphic_by g g [| 0; 2; 1; 3 |]);
  check "rotation accepted" true
    (Operations.isomorphic_by g g [| 1; 2; 3; 0 |])

let test_line_vertex_of_arc () =
  let g = Families.directed_cycle 3 in
  let lg = Operations.line_digraph g in
  check_int "line digraph of DC3 has 3 vertices" 3 (Digraph.n_vertices lg);
  let i = Operations.line_vertex_of_arc g (0, 1) in
  check "index in range" true (i >= 0 && i < 3);
  check "labels carry arc names" true (Digraph.label lg i = "0>1")

(* --- Dot export --- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_dot_undirected () =
  let g = Families.cycle 3 in
  let dot = Dot.of_digraph g in
  check "graph keyword" true (contains ~sub:"graph \"C(3)\"" dot);
  check "undirected edge syntax" true (contains ~sub:" -- " dot);
  check "no directed arrows" false (contains ~sub:" -> " dot)

let test_dot_directed () =
  let g = Families.directed_cycle 3 in
  let dot = Dot.of_digraph g in
  check "digraph keyword" true (contains ~sub:"digraph" dot);
  check "arrow syntax" true (contains ~sub:"0 -> 1" dot)

let test_dot_highlight_and_labels () =
  let g = Families.de_bruijn_directed 2 2 in
  let dot = Dot.of_digraph ~highlight:[ (0, 1) ] g in
  check "highlight attribute" true (contains ~sub:"color=red" dot);
  check "string labels present" true (contains ~sub:"label=\"11\"" dot)

(* --- property tests --- *)

let arb_dim = QCheck.int_range 2 5

let prop_db_linegraph_count =
  (* |arcs of DB(d,D)| relates to vertex count of DB(d,D+1): the de Bruijn
     digraph with self-loops is the line digraph closure; dropping d
     self-loops per dimension keeps d^{D+1} - d arcs. *)
  QCheck.Test.make ~name:"dDB arc count = d^(D+1) - d" ~count:30
    QCheck.(pair (int_range 2 3) arb_dim)
    (fun (d, dim) ->
      Digraph.n_arcs (Families.de_bruijn_directed d dim)
      = ipow d (dim + 1) - d)

let prop_symmetric_closure_idempotent =
  QCheck.Test.make ~name:"symmetric_closure idempotent" ~count:30
    QCheck.(pair (int_range 2 3) (int_range 2 4))
    (fun (d, dim) ->
      let g = Families.de_bruijn_directed d dim in
      let s = Digraph.symmetric_closure g in
      Digraph.n_arcs (Digraph.symmetric_closure s) = Digraph.n_arcs s)

let prop_bfs_triangle =
  QCheck.Test.make ~name:"BFS distances satisfy triangle inequality" ~count:20
    (QCheck.int_range 0 1000)
    (fun seed ->
      let rng = Gossip_util.Prng.create seed in
      let g = Families.de_bruijn 2 4 in
      let n = Digraph.n_vertices g in
      let u = Gossip_util.Prng.int rng n
      and v = Gossip_util.Prng.int rng n
      and w = Gossip_util.Prng.int rng n in
      let d = Metrics.all_pairs g in
      d.(u).(w) <= d.(u).(v) + d.(v).(w))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("digraph basic", `Quick, test_digraph_basic);
    ("digraph rejects bad arcs", `Quick, test_digraph_rejects);
    ("digraph merges duplicates", `Quick, test_digraph_duplicates_merged);
    ("degree parameter", `Quick, test_degree_parameter);
    ("undirected edges", `Quick, test_undirected_edges);
    ("not strongly connected", `Quick, test_not_strongly_connected);
    ("family sizes", `Quick, test_family_sizes);
    ("families strongly connected", `Quick, test_families_strongly_connected);
    ("family diameters", `Quick, test_family_diameters);
    ("family rejects", `Quick, test_family_rejects);
    ("de Bruijn structure", `Quick, test_de_bruijn_structure);
    ("kautz string coding", `Quick, test_kautz_string_coding);
    ("string coding roundtrip", `Quick, test_string_coding_roundtrip);
    ("butterfly levels", `Quick, test_butterfly_levels);
    ("wbf level rotation", `Quick, test_wbf_level_rotation);
    ("bfs distances", `Quick, test_bfs_distances);
    ("bfs multi/set distance", `Quick, test_bfs_multi_and_sets);
    ("unreachable", `Quick, test_unreachable);
    ("diameter sampled", `Quick, test_diameter_sampled);
    ("all pairs", `Quick, test_all_pairs);
    ("separator BF", `Quick, test_separator_bf);
    ("separator dWBF", `Quick, test_separator_dwbf);
    ("separator WBF", `Quick, test_separator_wbf);
    ("separator directed DB", `Quick, test_separator_db_directed);
    ("separator directed Kautz", `Quick, test_separator_kautz_directed);
    ("separator undirected DB", `Quick, test_separator_db_undirected);
    ("separator undirected Kautz", `Quick, test_separator_kautz_undirected);
    ("naive DB separator collapses", `Quick, test_separator_naive_db_collapses);
    ("separator parameters", `Quick, test_separator_alpha_ell_values);
    ("separator empty rejected", `Quick, test_separator_measure_empty);
    ("coloring families", `Quick, test_coloring_families);
    ("coloring path", `Quick, test_coloring_path_two_colors);
    ("coloring rejects directed", `Quick, test_coloring_rejects_directed);
    ("is_proper detects bad", `Quick, test_is_proper_detects_bad);
    ("random regular", `Quick, test_random_regular);
    ("random regular deterministic", `Quick, test_random_regular_deterministic);
    ("erdos-renyi", `Quick, test_erdos_renyi);
    ("random strongly connected", `Quick, test_strongly_connected_random);
    ("kautz = iterated line digraph", `Quick, test_kautz_is_iterated_line_digraph);
    ("grid = path x path", `Quick, test_grid_is_product_of_paths);
    ("torus = cycle x cycle", `Quick, test_torus_is_product_of_cycles);
    ("hypercube = K2 power", `Quick, test_hypercube_is_k2_power);
    ("same_shape negatives", `Quick, test_same_shape_negative);
    ("isomorphic_by validation", `Quick, test_isomorphic_by_rejects_bad_maps);
    ("line vertex of arc", `Quick, test_line_vertex_of_arc);
    ("misra-gries families", `Quick, test_misra_gries_families);
    ("misra-gries class-2 K7", `Quick, test_misra_gries_beats_vizing_class2);
    ("coloring best", `Quick, test_coloring_best);
    q prop_misra_gries_random;
    ("dot undirected", `Quick, test_dot_undirected);
    ("dot directed", `Quick, test_dot_directed);
    ("dot highlight/labels", `Quick, test_dot_highlight_and_labels);
    q prop_db_linegraph_count;
    q prop_symmetric_closure_idempotent;
    q prop_bfs_triangle;
  ]
