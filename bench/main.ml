(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, validates them empirically on generated networks, and
   micro-benchmarks (Bechamel, one Test.make per table) the computation
   behind each one.

   Layout:
     Part 1  Fig. 4          general systolic bounds (+ paper reference row)
     Part 2  Figs. 1-3       local matrix structure Mx/Nx/Ox, checked
     Part 3  Fig. 5          separator-refined systolic bounds
     Part 4  Fig. 6          non-systolic bounds (+ spot values)
     Part 5  Fig. 7          full-duplex local matrix, checked
     Part 6  Fig. 8          full-duplex bounds (+ broadcast constants)
     Part 7  separators      measured distance/size vs Lemma 3.1 claims
     Part 8  Thm 4.1         certificates vs measured gossip times
     Part 9  norm sweep      ‖M(λ)‖ vs closed forms (Lemmas 4.3 / 6.1)
     Part 10 upper vs lower  growing-n sandwich per family
     Part 11 price           exact systolization cost ([8]'s question)
     Part 12 weighted diam   the conclusion's extension
     Part 13 extra families  CCC / shuffle-exchange under the general bound
     Part 14 Fig. 5 ext      d = 4, 5 at larger periods
     Part 15 faults          graceful degradation under arc drops
     Part 16 Lanczos         two independent norm algorithms agree
     Part 17 broadcast       greedy schedules vs the [22,2] constants
     Part 18 scale           simulator throughput on growing networks
     Part 19 ablation        worst-case local pattern = balanced split
     Part 20 messages        obliviousness overhead in transmissions
     Part 21 Bechamel        one micro-benchmark per table
     Part 22 cache stats     shared-context hit/miss accounting
     Part 23 serve           wire codec and bounded-queue hot paths
     Part 28 fault-cert      adversarial certification throughput *)

open Core
module Table = Util.Table
module Tables = Bounds.Tables
module General = Bounds.General
module Catalog = Bounds.Catalog
module Families = Topology.Families
module Digraph = Topology.Digraph
module Metrics = Topology.Metrics
module Separator = Topology.Separator
module Builders = Protocol.Builders
module Systolic = Protocol.Systolic
module Engine = Simulate.Engine
module Delay_digraph = Delay.Delay_digraph
module Delay_matrix = Delay.Delay_matrix
module Local_matrix = Delay.Local_matrix
module Certificate = Delay.Certificate
module Dense = Linalg.Dense
module Spectral = Linalg.Spectral

let section title =
  Printf.printf "\n############ %s ############\n\n" title

let ss = [ 3; 4; 5; 6; 7; 8 ]

(* One memoizing context shared by every certificate-heavy part below:
   Part 8's gossip times and delay digraphs are re-served to Part 10's
   sandwich rows, and Part 22 reports the accumulated cache traffic. *)
let ctx = Context.create ()

(* ---------------------------------------------------------------- *)
(* Part 1: Fig. 4                                                    *)
(* ---------------------------------------------------------------- *)

let paper_fig4 =
  [ (3, 2.8808); (4, 1.8133); (5, 1.6502); (6, 1.5363); (7, 1.5021); (8, 1.4721) ]

let run_fig4 () =
  let rows = Tables.fig4 ~s_max:8 in
  (rows, Tables.fig4_inf)

let print_fig4 () =
  let rows, inf = run_fig4 () in
  let t =
    Table.make
      ~title:"Fig. 4 — t >= e(s)·log n - O(log log n), directed & half-duplex"
      [ "s"; "lambda"; "e(s) (ours)"; "e(s) (paper)"; "delta" ]
  in
  List.iter
    (fun (r : Tables.fig4_row) ->
      let paper = List.assoc r.Tables.s paper_fig4 in
      Table.add_row t
        [
          string_of_int r.Tables.s;
          Table.cell_f r.Tables.lambda;
          Table.cell_f r.Tables.e;
          Table.cell_f paper;
          Printf.sprintf "%.4f" (Float.abs (r.Tables.e -. paper));
        ])
    rows;
  Table.add_row t
    [ "inf"; Table.cell_f inf.Tables.lambda; Table.cell_f inf.Tables.e;
      Table.cell_f 1.4404; Printf.sprintf "%.4f" (Float.abs (inf.Tables.e -. 1.4404)) ];
  Table.print t

(* ---------------------------------------------------------------- *)
(* Part 2: Figs. 1-3 — local matrix structure                        *)
(* ---------------------------------------------------------------- *)

let fig1_pattern = Local_matrix.make_pattern ~l:[| 1; 2 |] ~r:[| 2; 1 |]

let run_fig1_3 () =
  let lambda = 0.6 and h = 4 in
  let mx = Local_matrix.mx fig1_pattern ~h ~lambda in
  let nx = Local_matrix.nx fig1_pattern ~h ~lambda in
  let ox = Local_matrix.ox fig1_pattern ~h ~lambda in
  (mx, nx, ox)

let print_fig1_3 () =
  let lambda = 0.6 and h = 4 in
  let mx, nx, ox = run_fig1_3 () in
  Printf.printf
    "Local protocol with k = 2 blocks, l = [1;2], r = [2;1] (s = 6), h = %d, lambda = %.1f\n\n"
    h lambda;
  Format.printf "Mx  (Fig. 1 — rank-one blocks B_ij = λ^d_ij Λ0_li Λ0_rjᵀ):@\n%a@\n@\n"
    Dense.pp mx;
  Format.printf "Nx  (Fig. 3 — N_ij = λ^d_ij · p_rj(λ)):@\n%a@\n@\n" Dense.pp nx;
  Format.printf "Ox  (Fig. 3 — O_ij = λ^d_ji · p_lj(λ)):@\n%a@\n@\n" Dense.pp ox;
  let direct = Spectral.norm2_dense mx in
  let reduced = sqrt (Spectral.spectral_radius_nonneg (Dense.mul ox nx)) in
  let cf =
    Delay_matrix.closed_form_bound ~mode:Protocol.Protocol.Half_duplex
      ~window:(Local_matrix.period fig1_pattern) lambda
  in
  Printf.printf
    "checks: ‖Mx‖ = %.6f, sqrt(rho(Ox·Nx)) = %.6f (Lemma 2.2, equal), closed form %.6f (Lemma 4.3, upper)\n"
    direct reduced cf;
  let e = Local_matrix.semi_eigenvector fig1_pattern ~h ~lambda in
  Printf.printf "Lemma 4.2 semi-eigenvector accepted: Nx: %b, Ox: %b\n"
    (Spectral.is_semi_eigenvector nx e
       (Local_matrix.nx_semi_eigenvalue fig1_pattern lambda))
    (Spectral.is_semi_eigenvector ox e
       (Local_matrix.ox_semi_eigenvalue fig1_pattern lambda))

(* ---------------------------------------------------------------- *)
(* Part 3/4/6: Figs. 5, 6, 8                                         *)
(* ---------------------------------------------------------------- *)

let print_family_table ~title ~general_row rows =
  let t =
    Table.make ~title
      ("family" :: List.map (fun s -> "s=" ^ string_of_int s) ss)
  in
  Table.add_row t
    ("(general)" :: List.map (fun (_, e) -> Table.cell_f e) general_row);
  Table.add_sep t;
  List.iter
    (fun (r : Tables.family_row) ->
      Table.add_row t
        (r.Tables.key
        :: List.map
             (fun (_, (c : Tables.cell)) ->
               Table.cell_f c.Tables.value
               ^ if c.Tables.improves then "" else "*")
             r.Tables.cells))
    rows;
  Table.print t;
  print_endline "(* = does not improve on the general bound)"

let run_fig5 () = Tables.fig5 ~ss

let print_fig5 () =
  let rows = run_fig5 () in
  print_family_table
    ~title:"Fig. 5 — separator-refined systolic bounds, half-duplex/directed"
    ~general_row:(List.map (fun s -> (s, General.e s)) ss)
    rows;
  let value_of key s =
    let r = List.find (fun (r : Tables.family_row) -> r.Tables.key = key) rows in
    (List.assoc s r.Tables.cells).Tables.value
  in
  Printf.printf
    "paper spot checks: WBF(2,D) s=4 = 2.0218 (ours %.4f), DB(2,D) s=4 = 1.8133 (ours %.4f)\n"
    (value_of "WBF(2,D)" 4) (value_of "DB(2,D)" 4)

let run_fig6 () = Tables.fig6 ()

let print_fig6 () =
  let t =
    Table.make
      ~title:
        "Fig. 6 — non-systolic (s -> inf) bounds, half-duplex; baseline 1.4404 of [4,17,15,26]"
      [ "family"; "separator"; "baseline"; "diam coeff"; "best (x log n)" ]
  in
  List.iter
    (fun (r : Tables.fig6_row) ->
      Table.add_row t
        [
          r.Tables.key;
          Table.cell_f r.Tables.separator_value;
          Table.cell_f r.Tables.baseline;
          Table.cell_f r.Tables.diameter_coeff;
          Table.cell_f r.Tables.best;
        ])
    (run_fig6 ());
  Table.print t;
  Printf.printf
    "paper spot checks: WBF(2,D) = 1.9750, DB(2,D) = 1.5876 — reproduced above.\n"

let run_fig8 () = (Tables.fig8 ~ss, Tables.fig8_general ~ss, Tables.fig8_inf ())

let print_fig8 () =
  let rows, general, inf = run_fig8 () in
  print_family_table
    ~title:
      "Fig. 8 — full-duplex systolic bounds; general row = broadcasting constants c(d) of [22,2]"
    ~general_row:general rows;
  let t =
    Table.make ~title:"Fig. 8 (s -> inf rows) — non-systolic full-duplex"
      [ "family"; "separator"; "baseline"; "diam coeff"; "best (x log n)" ]
  in
  List.iter
    (fun (r : Tables.fig6_row) ->
      Table.add_row t
        [
          r.Tables.key;
          Table.cell_f r.Tables.separator_value;
          Table.cell_f r.Tables.baseline;
          Table.cell_f r.Tables.diameter_coeff;
          Table.cell_f r.Tables.best;
        ])
    inf;
  Table.print t

(* ---------------------------------------------------------------- *)
(* Part 5: Fig. 7 — full-duplex local matrix                         *)
(* ---------------------------------------------------------------- *)

let run_fig7 () = Local_matrix.full_duplex_local ~window:4 ~rounds:8 ~lambda:0.5

let print_fig7 () =
  let m = run_fig7 () in
  Format.printf
    "Full-duplex local matrix, s = 4, 8 rounds, lambda = 0.5 (Fig. 7):@\n%a@\n@\n"
    Dense.pp m;
  Printf.printf "‖Mx‖ = %.6f <= λ + λ² + λ³ = %.6f (Lemma 6.1)\n"
    (Spectral.norm2_dense m)
    (Linalg.Poly.geometric 0.5 3)

(* ---------------------------------------------------------------- *)
(* Part 7: separator measurements vs Lemma 3.1                        *)
(* ---------------------------------------------------------------- *)

let separator_cases =
  [
    ("BF(2,D)", 4); ("dWBF(2,D)", 5); ("WBF(2,D)", 6);
    ("dDB(2,D)", 8); ("DB(2,D)", 8); ("dK(2,D)", 7); ("K(2,D)", 7);
    ("BF(3,D)", 3); ("dDB(3,D)", 5); ("dK(3,D)", 4);
  ]

let run_separators () =
  List.map
    (fun (key, dim) ->
      let f = Option.get (Catalog.find key) in
      let g = f.Catalog.build dim in
      let sep = f.Catalog.separator dim in
      let m = Separator.measure g sep in
      (key, dim, f, m))
    separator_cases

let print_separators () =
  let t =
    Table.make
      ~title:
        "Separator check — measured distance vs l·log n (verified l), set sizes"
      [ "family"; "D"; "n"; "dist"; "l·log n"; "min |Vi|"; "alpha·l" ]
  in
  List.iter
    (fun (key, dim, (f : Catalog.t), (m : Separator.measurement)) ->
      let logn = Util.Numeric.log2 (float_of_int m.Separator.n) in
      Table.add_row t
        [
          key;
          string_of_int dim;
          string_of_int m.Separator.n;
          string_of_int m.Separator.distance;
          Printf.sprintf "%.1f" (f.Catalog.verified_ell *. logn);
          string_of_int m.Separator.min_size;
          Printf.sprintf "%.2f" (f.Catalog.alpha *. f.Catalog.verified_ell);
        ])
    (run_separators ());
  Table.print t;
  print_endline
    "(distance approaches l·log n as D grows; the -o(log n) slack is the\n\
    \ finite-D gap. For undirected DB/K the verified l is half the published\n\
    \ one — see DESIGN.md.)"

(* ---------------------------------------------------------------- *)
(* Part 8: Theorem 4.1 certificates vs measured gossip times          *)
(* ---------------------------------------------------------------- *)

let certificate_cases () =
  [
    ("Q5 half-duplex sweep", Builders.hypercube_sweep ~dim:5 ~full_duplex:false);
    ("Q5 full-duplex sweep", Builders.hypercube_sweep ~dim:5 ~full_duplex:true);
    ("C16 rotate", Builders.cycle_rotate 16);
    ("P16 wave", Builders.path_wave 16);
    ("DB(2,5) periodic hd", Builders.edge_coloring_half_duplex (Families.de_bruijn 2 5));
    ("K(2,4) periodic hd", Builders.edge_coloring_half_duplex (Families.kautz 2 4));
    ("WBF(2,4) periodic hd", Builders.edge_coloring_half_duplex (Families.wrapped_butterfly 2 4));
    ("BF(2,4) periodic fd", Builders.edge_coloring_full_duplex (Families.butterfly 2 4));
    ("Grid6x6 periodic hd", Builders.edge_coloring_half_duplex (Families.grid 6 6));
    ("Tree(2,4) periodic fd", Builders.edge_coloring_full_duplex (Families.complete_dary_tree 2 4));
    ( "R(24,3) periodic hd",
      Builders.edge_coloring_half_duplex
        (Topology.Random_graphs.regular ~n:24 ~degree:3 ~seed:7) );
    ( "R(32,4) periodic hd",
      Builders.edge_coloring_half_duplex
        (Topology.Random_graphs.regular ~n:32 ~degree:4 ~seed:7) );
  ]

let run_certificates () =
  List.filter_map
    (fun (name, sys) ->
      match Context.gossip_time ctx sys with
      | None -> None
      | Some t ->
          let dg = Context.delay_digraph ctx sys ~length:t in
          let cert = Context.certify ctx dg ~mode:(Systolic.mode sys) in
          Some (name, sys, t, cert))
    (certificate_cases ())

let print_certificates () =
  let t =
    Table.make
      ~title:
        "Thm 4.1 executable certificates — certified LB <= measured gossip time"
      [ "protocol"; "n"; "s"; "diam"; "cert LB"; "measured"; "norm"; "closed form" ]
  in
  List.iter
    (fun (name, sys, measured, (cert : Certificate.t)) ->
      let g = Systolic.graph sys in
      Table.add_row t
        [
          name;
          string_of_int (Digraph.n_vertices g);
          string_of_int (Systolic.period sys);
          string_of_int (Context.diameter ctx g);
          string_of_int cert.Certificate.bound;
          string_of_int measured;
          Table.cell_f cert.Certificate.norm;
          Table.cell_f cert.Certificate.closed_form;
        ])
    (run_certificates ());
  Table.print t;
  print_endline
    "(soundness: cert LB <= measured on every row; norm <= closed form is\n\
    \ Lemma 4.3 / 6.1 at the certificate's lambda.)"

(* ---------------------------------------------------------------- *)
(* Part 9: norm sweep — ‖M(λ)‖ vs the closed forms                   *)
(* ---------------------------------------------------------------- *)

let run_norm_sweep () =
  let g = Families.de_bruijn 2 4 in
  let s = 6 in
  let hd =
    Builders.random_systolic g Protocol.Protocol.Half_duplex ~period:s ~seed:11
      ~density:1.0
  in
  let fd =
    Builders.random_systolic g Protocol.Protocol.Full_duplex ~period:s ~seed:11
      ~density:1.0
  in
  let dg_hd = Context.delay_digraph ctx hd ~length:(4 * s) in
  let dg_fd = Context.delay_digraph ctx fd ~length:(4 * s) in
  List.map
    (fun lambda ->
      ( lambda,
        Context.norm ctx dg_hd lambda,
        Delay_matrix.closed_form_bound ~mode:Protocol.Protocol.Half_duplex
          ~window:s lambda,
        Context.norm ctx dg_fd lambda,
        Delay_matrix.closed_form_bound ~mode:Protocol.Protocol.Full_duplex
          ~window:s lambda ))
    [ 0.2; 0.3; 0.4; 0.5; 0.6; 0.637; 0.7; 0.8 ]

let print_norm_sweep () =
  let t =
    Table.make
      ~title:
        "‖M(λ)‖ vs closed forms on random 6-systolic protocols, DB(2,4) (Lemmas 4.3/6.1)"
      [ "lambda"; "hd norm"; "hd bound"; "fd norm"; "fd bound" ]
  in
  List.iter
    (fun (l, nhd, bhd, nfd, bfd) ->
      Table.add_row t
        [
          Table.cell_f ~decimals:3 l;
          Table.cell_f nhd;
          Table.cell_f bhd;
          Table.cell_f nfd;
          Table.cell_f bfd;
        ])
    (run_norm_sweep ());
  Table.print t;
  print_endline
    "(lambda = 0.637 is lambda_star(6): the half-duplex bound crosses 1 there.)"

(* ---------------------------------------------------------------- *)
(* Part 10: upper vs lower sandwich on growing networks               *)
(* ---------------------------------------------------------------- *)

let run_sandwich () =
  let cases =
    [
      ("Q(d) hd", fun dim -> Builders.hypercube_sweep ~dim ~full_duplex:false);
      ( "DB(2,D) hd",
        fun dim -> Builders.edge_coloring_half_duplex (Families.de_bruijn 2 dim) );
      ( "WBF(2,D) hd",
        fun dim ->
          Builders.edge_coloring_half_duplex (Families.wrapped_butterfly 2 dim) );
      ( "K(2,D) hd",
        fun dim -> Builders.edge_coloring_half_duplex (Families.kautz 2 dim) );
    ]
  in
  List.concat_map
    (fun (name, make) ->
      List.filter_map
        (fun dim ->
          let sys = make dim in
          match Context.gossip_time ctx sys with
          | None -> None
          | Some t ->
              let g = Systolic.graph sys in
              let n = Digraph.n_vertices g in
              let dg = Context.delay_digraph ctx sys ~length:t in
              let cert = Context.certify ctx dg ~mode:(Systolic.mode sys) in
              let logn = Util.Numeric.log2 (float_of_int n) in
              Some (name, dim, n, cert.Certificate.bound, General.e_inf *. logn, t))
        [ 3; 4; 5; 6 ])
    cases

let print_sandwich () =
  let t =
    Table.make
      ~title:
        "Upper vs lower on growing networks (cert LB and measured UB sandwich the truth)"
      [ "family"; "D"; "n"; "cert LB"; "1.4404·log n"; "measured UB" ]
  in
  let last = ref "" in
  List.iter
    (fun (name, dim, n, cert, asym, measured) ->
      if !last <> "" && !last <> name then Table.add_sep t;
      last := name;
      Table.add_row t
        [
          name;
          string_of_int dim;
          string_of_int n;
          string_of_int cert;
          Printf.sprintf "%.1f" asym;
          string_of_int measured;
        ])
    (run_sandwich ());
  Table.print t;
  print_endline
    "(the asymptotic main term can exceed the finite-n certificate — the\n\
    \ -O(log log n) correction is real — but the certificate is sound: it\n\
    \ never exceeds the measured time; it grows with n as Omega(log n).)"

(* ---------------------------------------------------------------- *)
(* Part 11: price of systolization (exhaustive search, [8])           *)
(* ---------------------------------------------------------------- *)

let price_cases () =
  [
    ("P4 hd", Families.path 4, Protocol.Protocol.Half_duplex);
    ("P5 hd", Families.path 5, Protocol.Protocol.Half_duplex);
    ("C4 hd", Families.cycle 4, Protocol.Protocol.Half_duplex);
    ("C6 hd", Families.cycle 6, Protocol.Protocol.Half_duplex);
    ("C4 fd", Families.cycle 4, Protocol.Protocol.Full_duplex);
    ("K4 hd", Families.complete 4, Protocol.Protocol.Half_duplex);
  ]

let run_price () =
  List.map
    (fun (name, g, mode) ->
      let systolic, unrestricted =
        Search.Systolic_optimal.price_of_systolization ~s_max:5 g mode
      in
      (name, systolic, unrestricted))
    (price_cases ())

let print_price () =
  let t =
    Table.make
      ~title:
        "Price of systolization (exact exhaustive search) — [8]'s question made computable"
      [ "network"; "optimal"; "s=2"; "s=3"; "s=4"; "s=5" ]
  in
  let cell = function
    | Search.Systolic_optimal.Found r ->
        string_of_int r.Search.Systolic_optimal.rounds
    | Search.Systolic_optimal.Infeasible -> "impossible"
    | Search.Systolic_optimal.Too_large -> "(sweep too large)"
  in
  List.iter
    (fun (name, systolic, unrestricted) ->
      Table.add_row t
        (name
        :: (match unrestricted with Some v -> string_of_int v | None -> "?")
        :: List.map (fun s -> cell (List.assoc s systolic)) [ 2; 3; 4; 5 ]))
    (run_price ());
  Table.print t;
  print_endline
    "(matches the paper: on paths s = 2 — and even s = 3 on P4 — admits no\n\
    \ systolic gossip at all, while on cycles 2-systolic gossip exists but\n\
    \ needs >= n - 1 rounds, exactly the Section 4 remark.)"

(* ---------------------------------------------------------------- *)
(* Part 12: weighted-diameter extension (conclusion of the paper)     *)
(* ---------------------------------------------------------------- *)

let wd_cases () =
  [
    ("C16", Delay.Weighted_diameter.of_digraph (Families.cycle 16));
    ("Q5", Delay.Weighted_diameter.of_digraph (Families.hypercube 5));
    ("dDB(2,7)", Delay.Weighted_diameter.of_digraph (Families.de_bruijn_directed 2 7));
    ("dK(2,6)", Delay.Weighted_diameter.of_digraph (Families.kautz_directed 2 6));
    ("dDB(2,5) w=4", Delay.Weighted_diameter.of_digraph ~weight:4 (Families.de_bruijn_directed 2 5));
    ("CCC(3)", Delay.Weighted_diameter.of_digraph (Topology.Extra_families.cube_connected_cycles 3));
  ]

let run_weighted_diameter () =
  List.map
    (fun (name, w) ->
      ( name,
        Delay.Weighted_diameter.n_vertices w,
        Delay.Weighted_diameter.lower_bound w,
        Delay.Weighted_diameter.diameter w ))
    (wd_cases ())

let print_weighted_diameter () =
  let t =
    Table.make
      ~title:
        "Weighted-diameter extension: norm-based LB vs exact diameter (paper's conclusion)"
      [ "digraph"; "n"; "norm LB"; "exact diameter" ]
  in
  List.iter
    (fun (name, n, lb, d) ->
      Table.add_row t
        [ name; string_of_int n; string_of_int lb; string_of_int d ])
    (run_weighted_diameter ());
  Table.print t

(* ---------------------------------------------------------------- *)
(* Part 13: extra hypercube-derived families (general bounds only)    *)
(* ---------------------------------------------------------------- *)

let run_extra_families () =
  List.filter_map
    (fun g ->
      let sys = Builders.edge_coloring_half_duplex g in
      match Engine.gossip_time sys with
      | None -> None
      | Some t ->
          let n = Digraph.n_vertices g in
          let logn = Util.Numeric.log2 (float_of_int n) in
          Some
            ( Digraph.name g, n, Metrics.diameter g,
              General.e_inf *. logn,
              Bounds.Broadcast.asymptotic_coefficient g *. logn, t ))
    [
      Topology.Extra_families.cube_connected_cycles 3;
      Topology.Extra_families.cube_connected_cycles 4;
      Topology.Extra_families.shuffle_exchange 5;
      Topology.Extra_families.shuffle_exchange 6;
    ]

let print_extra_families () =
  let t =
    Table.make
      ~title:
        "Extra families (CCC, shuffle-exchange): general bounds and measured times"
      [ "network"; "n"; "diam"; "1.4404·log n"; "c(d)·log n"; "measured" ]
  in
  List.iter
    (fun (name, n, diam, gossip_lb, bcast_lb, t_meas) ->
      Table.add_row t
        [
          name;
          string_of_int n;
          string_of_int diam;
          Printf.sprintf "%.1f" gossip_lb;
          Printf.sprintf "%.1f" bcast_lb;
          string_of_int t_meas;
        ])
    (run_extra_families ());
  Table.print t;
  print_endline
    "(no published separator refinement exists for these families — they\n\
    \ exercise the Fig. 4 general path of the machinery.)"

(* ---------------------------------------------------------------- *)
(* Part 14: Fig. 5 extended to d = 4, 5 (paper's closing remark)      *)
(* ---------------------------------------------------------------- *)

let extended_ss = [ 8; 9; 10; 12; 14; 16 ]

let run_fig5_extended () = Tables.fig5_extended ~ds:[ 4; 5 ] ~ss:extended_ss

let print_fig5_extended () =
  let t =
    Table.make
      ~title:
        "Fig. 5 extended: d = 4, 5 at larger periods (the paper's 'slight improvement for s > 8')"
      ("family" :: List.map (fun s -> "s=" ^ string_of_int s) extended_ss)
  in
  Table.add_row t
    ("(general)" :: List.map (fun s -> Table.cell_f (General.e s)) extended_ss);
  Table.add_sep t;
  List.iter
    (fun (r : Tables.family_row) ->
      Table.add_row t
        (r.Tables.key
        :: List.map
             (fun (_, (c : Tables.cell)) ->
               Table.cell_f c.Tables.value
               ^ if c.Tables.improves then "" else "*")
             r.Tables.cells))
    (run_fig5_extended ());
  Table.print t;
  print_endline
    "(BF/WBF at d = 4 and BF at d = 5 do improve on the general bound at\n\
    \ these periods, exactly the remark after Corollary 5.2.)"

(* ---------------------------------------------------------------- *)
(* Part 15: fault tolerance of systolic protocols                     *)
(* ---------------------------------------------------------------- *)

let fault_probs = [ 0.0; 0.1; 0.2; 0.3 ]

let run_faults () =
  List.map
    (fun (name, sys) ->
      (name, Simulate.Faults.slowdown_curve sys ~probabilities:fault_probs ~seed:99))
    [
      ("Q5 sweep hd", Builders.hypercube_sweep ~dim:5 ~full_duplex:false);
      ("DB(2,5) periodic", Builders.edge_coloring_half_duplex (Families.de_bruijn 2 5));
      ("C16 rotate", Builders.cycle_rotate 16);
      ("W(4,16) knoedel", Builders.knoedel_sweep ~delta:4 ~n:16);
    ]

let print_faults () =
  let t =
    Table.make
      ~title:"Fault tolerance: mean gossip time under i.i.d. arc drops (5 trials)"
      ("protocol" :: List.map (fun p -> Printf.sprintf "p=%.1f" p) fault_probs)
  in
  List.iter
    (fun (name, curve) ->
      Table.add_row t
        (name
        :: List.map
             (fun (pt : Simulate.Faults.slowdown_point) ->
               match pt.Simulate.Faults.mean with
               | Some v ->
                   if pt.Simulate.Faults.completed < pt.Simulate.Faults.trials
                   then
                     Printf.sprintf "%.1f (%d/%d)" v
                       pt.Simulate.Faults.completed pt.Simulate.Faults.trials
                   else Printf.sprintf "%.1f" v
               | None -> "DNF")
             curve))
    (run_faults ());
  Table.print t;
  print_endline
    "(systolic obliviousness retries every link each period: degradation is\n\
    \ graceful, and all lower bounds remain valid under faults.)"

(* ---------------------------------------------------------------- *)
(* Part 16: Lanczos vs power iteration cross-validation               *)
(* ---------------------------------------------------------------- *)

let run_lanczos_crosscheck () =
  let sys =
    Builders.random_systolic (Families.de_bruijn 2 5) Protocol.Protocol.Half_duplex
      ~period:6 ~seed:4 ~density:1.0
  in
  let dg = Delay_digraph.of_systolic sys ~length:24 in
  List.map
    (fun lambda ->
      let m = Delay_matrix.sparse dg lambda in
      ( lambda,
        Spectral.norm2_sparse m,
        Linalg.Lanczos.norm2_sparse m ))
    [ 0.3; 0.5; 0.7 ]

let print_lanczos_crosscheck () =
  let t =
    Table.make
      ~title:"‖M(λ)‖ by two independent algorithms (power iteration vs Lanczos)"
      [ "lambda"; "power iteration"; "Lanczos"; "abs diff" ]
  in
  List.iter
    (fun (l, a, b) ->
      Table.add_row t
        [
          Table.cell_f ~decimals:2 l;
          Printf.sprintf "%.10f" a;
          Printf.sprintf "%.10f" b;
          Printf.sprintf "%.2e" (Float.abs (a -. b));
        ])
    (run_lanczos_crosscheck ());
  Table.print t

(* ---------------------------------------------------------------- *)
(* Part 17: broadcasting — greedy schedules vs the [22,2] constants    *)
(* ---------------------------------------------------------------- *)

let run_broadcast () =
  List.map
    (fun (g, mode) ->
      let p = Protocol.Broadcast_protocol.greedy_schedule g ~src:0 ~mode in
      let n = Digraph.n_vertices g in
      let logn = Util.Numeric.log2 (float_of_int n) in
      ( Digraph.name g,
        n,
        Bounds.Broadcast.lower_bound g,
        Bounds.Broadcast.asymptotic_coefficient g *. logn,
        Protocol.Protocol.length p ))
    [
      (Families.hypercube 7, Protocol.Protocol.Half_duplex);
      (Families.de_bruijn 2 7, Protocol.Protocol.Half_duplex);
      (Families.kautz 2 6, Protocol.Protocol.Half_duplex);
      (Families.wrapped_butterfly 2 5, Protocol.Protocol.Half_duplex);
      (Families.complete 128, Protocol.Protocol.Full_duplex);
      (Topology.Extra_families.knoedel ~delta:7 ~n:128, Protocol.Protocol.Full_duplex);
    ]

let print_broadcast () =
  let t =
    Table.make
      ~title:
        "Broadcasting: greedy schedule vs sound LB and the c(d)·log n of [22,2]"
      [ "network"; "n"; "sound LB"; "c(d)·log n"; "greedy schedule" ]
  in
  List.iter
    (fun (name, n, lb, cdlogn, len) ->
      Table.add_row t
        [
          name;
          string_of_int n;
          string_of_int lb;
          Printf.sprintf "%.1f" cdlogn;
          string_of_int len;
        ])
    (run_broadcast ());
  Table.print t;
  print_endline
    "(broadcasting systolizes at no cost [8]: wrapping the schedule as a\n\
    \ period reproduces the same completion time — asserted in the tests.)"

(* ---------------------------------------------------------------- *)
(* Part 18: scale — the simulator on growing de Bruijn networks       *)
(* ---------------------------------------------------------------- *)

let run_scale () =
  List.map
    (fun dim ->
      let g = Families.de_bruijn 2 dim in
      let sys = Builders.edge_coloring_half_duplex g in
      let t0 = Sys.time () in
      let rounds = Engine.gossip_time sys in
      let elapsed = Sys.time () -. t0 in
      (dim, Digraph.n_vertices g, Systolic.period sys, rounds, elapsed))
    [ 8; 9; 10; 11; 12 ]

let print_scale () =
  let t =
    Table.make
      ~title:"Scale: periodic half-duplex gossip on DB(2,D), simulator throughput"
      [ "D"; "n"; "s"; "gossip rounds"; "sim seconds" ]
  in
  List.iter
    (fun (dim, n, s, rounds, elapsed) ->
      Table.add_row t
        [
          string_of_int dim;
          string_of_int n;
          string_of_int s;
          (match rounds with Some r -> string_of_int r | None -> "DNF");
          Printf.sprintf "%.3f" elapsed;
        ])
    (run_scale ());
  Table.print t;
  print_endline
    "(gossip rounds grow linearly in D = log n, the shape the upper bounds\n\
    \ of [24,25] predict for periodic protocols on de Bruijn networks.)"

(* ---------------------------------------------------------------- *)
(* Part 19: ablation — which local pattern maximizes ‖Mx(λ)‖?        *)
(* ---------------------------------------------------------------- *)

(* all (l, r) block patterns with total period s and k blocks *)
let compositions total parts =
  let rec go total parts =
    if parts = 1 then [ [ total ] ]
    else
      List.concat_map
        (fun first ->
          List.map (fun rest -> first :: rest) (go (total - first) (parts - 1)))
        (List.init (total - parts + 1) (fun i -> i + 1))
  in
  if parts < 1 || total < parts then [] else go total parts

let run_pattern_ablation () =
  let s = 6 and lambda = Bounds.General.lambda_star 6 in
  let patterns =
    List.concat_map
      (fun k ->
        List.concat_map
          (fun lsum ->
            let rsum = s - lsum in
            if rsum < k then []
            else
              List.concat_map
                (fun l ->
                  List.map (fun r -> (Array.of_list l, Array.of_list r))
                    (compositions rsum k))
                (compositions lsum k))
          (List.init (s - (2 * k) + 1) (fun i -> i + k)))
      [ 1; 2; 3 ]
  in
  let rows =
    List.map
      (fun (l, r) ->
        let pat = Local_matrix.make_pattern ~l ~r in
        let h = 6 * Local_matrix.blocks pat in
        let nrm = Spectral.norm2_dense (Local_matrix.mx pat ~h ~lambda) in
        (l, r, nrm))
      patterns
  in
  (lambda, rows)

let print_pattern_ablation () =
  let lambda, rows = run_pattern_ablation () in
  let cf =
    Delay_matrix.closed_form_bound ~mode:Protocol.Protocol.Half_duplex
      ~window:6 lambda
  in
  let show a = String.concat ";" (List.map string_of_int (Array.to_list a)) in
  let sorted = List.sort (fun (_, _, x) (_, _, y) -> compare y x) rows in
  let t =
    Table.make
      ~title:
        (Printf.sprintf
           "Ablation: ‖Mx(λ*)‖ by local pattern, s = 6, λ* = %.4f (closed form %.4f)"
           lambda cf)
      [ "l blocks"; "r blocks"; "‖Mx‖"; "gap to closed form" ]
  in
  List.iteri
    (fun i (l, r, nrm) ->
      if i < 8 then
        Table.add_row t
          [
            show l; show r; Table.cell_f nrm; Printf.sprintf "%.4f" (cf -. nrm);
          ])
    sorted;
  Table.print t;
  print_endline
    "(the balanced single-block pattern l = [3], r = [3] attains the top —\n\
    \ exactly the worst case Lemma 4.3's unbalancing inequality predicts;\n\
    \ every pattern stays below the closed form.)"

(* ---------------------------------------------------------------- *)
(* Part 20: message complexity of systolic protocols                  *)
(* ---------------------------------------------------------------- *)

let run_messages () =
  List.map
    (fun (name, sys) ->
      (name, Simulate.Stats.message_complexity sys))
    [
      ("Q5 sweep hd", Builders.hypercube_sweep ~dim:5 ~full_duplex:false);
      ("DB(2,5) periodic", Builders.edge_coloring_half_duplex (Families.de_bruijn 2 5));
      ("C16 rotate", Builders.cycle_rotate 16);
      ("W(4,16) knoedel", Builders.knoedel_sweep ~delta:4 ~n:16);
      ("Tree(2,4) updown", Builders.tree_updown ~d:2 ~depth:4);
    ]

let print_messages () =
  let t =
    Table.make
      ~title:"Message complexity to completion (obliviousness overhead)"
      [ "protocol"; "rounds"; "transmissions"; "useful"; "waste %" ]
  in
  List.iter
    (fun (name, (c : Simulate.Stats.message_costs)) ->
      Table.add_row t
        [
          name;
          string_of_int c.Simulate.Stats.rounds;
          string_of_int c.Simulate.Stats.transmissions;
          string_of_int c.Simulate.Stats.useful;
          Printf.sprintf "%.0f%%"
            (100.0
            *. float_of_int (c.Simulate.Stats.transmissions - c.Simulate.Stats.useful)
            /. float_of_int (max 1 c.Simulate.Stats.transmissions));
        ])
    (run_messages ());
  Table.print t

(* ---------------------------------------------------------------- *)
(* Part 21: Bechamel micro-benchmarks, one per table                  *)
(* ---------------------------------------------------------------- *)

let bechamel_tests () =
  let open Bechamel in
  let stage f = Staged.stage f in
  [
    Test.make ~name:"fig4_table" (stage (fun () -> ignore (run_fig4 ())));
    Test.make ~name:"fig1_3_local_matrices"
      (stage (fun () -> ignore (run_fig1_3 ())));
    Test.make ~name:"fig5_table" (stage (fun () -> ignore (run_fig5 ())));
    Test.make ~name:"fig6_table" (stage (fun () -> ignore (run_fig6 ())));
    Test.make ~name:"fig7_local_matrix" (stage (fun () -> ignore (run_fig7 ())));
    Test.make ~name:"fig8_table" (stage (fun () -> ignore (run_fig8 ())));
    Test.make ~name:"separator_measure"
      (stage (fun () ->
           let g = Families.de_bruijn_directed 2 7 in
           ignore (Separator.measure g (Separator.de_bruijn ~d:2 ~dim:7))));
    Test.make ~name:"thm41_certificate"
      (stage (fun () ->
           let sys = Builders.hypercube_sweep ~dim:4 ~full_duplex:false in
           let dg = Delay_digraph.of_systolic sys ~length:8 in
           ignore (Certificate.certify dg ~mode:Protocol.Protocol.Half_duplex)));
    Test.make ~name:"norm_sweep_point"
      (stage (fun () ->
           let g = Families.de_bruijn 2 4 in
           let sys =
             Builders.random_systolic g Protocol.Protocol.Half_duplex ~period:6
               ~seed:11 ~density:1.0
           in
           let dg = Delay_digraph.of_systolic sys ~length:24 in
           ignore (Delay_matrix.norm_blockwise dg 0.6)));
    Test.make ~name:"gossip_simulation"
      (stage (fun () ->
           ignore
             (Engine.gossip_time
                (Builders.edge_coloring_half_duplex (Families.de_bruijn 2 5)))));
    Test.make ~name:"price_of_systolization_p4"
      (stage (fun () ->
           ignore
             (Search.Systolic_optimal.price_of_systolization ~s_max:4
                (Families.path 4) Protocol.Protocol.Half_duplex)));
    Test.make ~name:"weighted_diameter_bound"
      (stage (fun () ->
           ignore
             (Delay.Weighted_diameter.lower_bound
                (Delay.Weighted_diameter.of_digraph
                   (Families.de_bruijn_directed 2 6)))));
    Test.make ~name:"fig5_extended_table"
      (stage (fun () -> ignore (Tables.fig5_extended ~ds:[ 4 ] ~ss:[ 10; 12 ])));
    Test.make ~name:"fault_injection_run"
      (stage (fun () ->
           ignore
             (Simulate.Faults.gossip_time_with_faults
                (Builders.cycle_rotate 16) ~drop_probability:0.2 ~seed:1)));
    Test.make ~name:"pattern_ablation"
      (stage (fun () -> ignore (run_pattern_ablation ())));
    Test.make ~name:"message_complexity"
      (stage (fun () ->
           ignore
             (Simulate.Stats.message_complexity (Builders.cycle_rotate 16))));
    Test.make ~name:"broadcast_schedule"
      (stage (fun () ->
           ignore
             (Protocol.Broadcast_protocol.greedy_schedule
                (Families.de_bruijn 2 6) ~src:0
                ~mode:Protocol.Protocol.Half_duplex)));
  ]

let run_bechamel () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None
      ~stabilize:false ()
  in
  let tests = Test.make_grouped ~name:"tables" (bechamel_tests ()) in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let t =
    Table.make
      ~title:"Bechamel — time to regenerate each table (monotonic clock)"
      [ "benchmark"; "ns/run" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name v ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, est) -> Table.add_row t [ name; Printf.sprintf "%.0f" est ])
    (List.sort compare !rows);
  Table.print t

(* ---------------------------------------------------------------- *)
(* Driver: named parts, per-part wall timing, machine-readable report *)
(* ---------------------------------------------------------------- *)

let print_cache_stats () =
  Format.printf "%a@." Context.pp_stats ctx;
  if Util.Instrument.enabled () then
    Format.printf "%a@?" Util.Instrument.pp_summary ()

(* Part 23: the serving layer's hot paths — wire codec round trips and
   bounded-queue admission — measured standalone, without sockets, so the
   numbers isolate protocol overhead from network and evaluation cost. *)
let print_serve_bench () =
  let module Wire = Gossip_serve.Wire in
  let module Bq = Gossip_serve.Bounded_queue in
  let rate label iters f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    (label, float_of_int iters /. dt)
  in
  let request =
    {
      Wire.id = Util.Json.Int 7;
      op =
        Wire.Bound
          {
            net = { Wire.family = "hypercube"; dim = 8; degree = 2 };
            s = Some 4;
            full_duplex = false;
          };
      timeout_ms = Some 2000;
      trace = None;
    }
  in
  let encoded = Util.Json.to_string (Wire.request_to_json request) in
  let response =
    Wire.ok_response ~id:(Util.Json.Int 7)
      (Util.Json.Obj [ ("sound", Util.Json.Int 12) ])
  in
  let encoded_resp = Util.Json.to_string response in
  let q = Bq.create ~capacity:1024 in
  let rows =
    [
      rate "request encode (to_json + print)" 50_000 (fun () ->
          ignore (Util.Json.to_string (Wire.request_to_json request)));
      rate "request decode (parse + validate)" 50_000 (fun () ->
          match Util.Json.of_string encoded with
          | Ok j -> ignore (Wire.parse_request j)
          | Error _ -> assert false);
      rate "response decode" 50_000 (fun () ->
          match Util.Json.of_string encoded_resp with
          | Ok j -> ignore (Wire.parse_response j)
          | Error _ -> assert false);
      rate "queue push+pop pair" 200_000 (fun () ->
          ignore (Bq.try_push q request);
          ignore (Bq.pop q));
    ]
  in
  let t = Table.make ~title:"Serving layer hot paths" [ "operation"; "ops/s" ] in
  List.iter
    (fun (label, rate) -> Table.add_row t [ label; Printf.sprintf "%.0f" rate ])
    rows;
  Table.print t

(* Part 24: what the observability added to the dispatch hot path in
   PR 4 actually costs.  Both loops run the full per-request CPU
   pipeline the server executes between reading a frame and writing
   its reply — decode + validate, bounded-queue push/pop, the
   serve.request span around Dispatch.eval, latency histogram, reply
   encode — on the cheapest possible op (ping), which maximises the
   relative cost of everything that is not evaluation.  The baseline
   is the PR 3 shape; the instrumented loop adds exactly what PR 4
   added per request: request-id minting, ambient trace attributes,
   and the rolling Metrics.observe.  The delta is the per-request
   overhead; the target is under 5% even in this worst case (any real
   op's evaluation dwarfs the pipeline). *)
let print_observability_overhead () =
  let module Serve = Gossip_serve in
  let disp = Serve.Dispatch.create () in
  let metrics = Serve.Metrics.create ~workers:1 ~queue_capacity:64 () in
  let q = Serve.Bounded_queue.create ~capacity:64 in
  let iters = 20_000 in
  let encoded =
    Util.Json.to_string
      (Serve.Wire.request_to_json
         { Serve.Wire.id = Util.Json.Int 7; op = Serve.Wire.Ping; timeout_ms = None; trace = None })
  in
  let rate f =
    let t0 = Unix.gettimeofday () in
    for i = 1 to iters do
      f i
    done;
    float_of_int iters /. (Unix.gettimeofday () -. t0)
  in
  let req_counter = Atomic.make 1 in
  (* [`Baseline] is the PR 3 per-request shape.  [`Rolling] adds what
     every request now pays unconditionally: request-id minting and the
     rolling Metrics.observe.  [`Tagged] additionally forces the
     trace-only work — attribute construction and ambient installation —
     which the server skips unless a trace stream is attached (and a
     real trace's file I/O would dwarf it anyway). *)
  let pipeline variant _i =
    let req =
      match Util.Json.of_string encoded with
      | Ok j -> (
          match Serve.Wire.parse_request j with
          | Ok r -> r
          | Error _ -> assert false)
      | Error _ -> assert false
    in
    ignore (Serve.Bounded_queue.try_push q req);
    ignore (Serve.Bounded_queue.pop q);
    (* PR 3's process_job also did this per request *)
    Util.Instrument.set_gauge "serve.queue_depth" 0.0;
    Util.Instrument.add "serve.requests" 1;
    let req_id =
      if variant = `Baseline then 0 else Atomic.fetch_and_add req_counter 1
    in
    let attrs =
      if variant = `Tagged then
        [
          ("req_id", Util.Json.Int req_id);
          ("op", Util.Json.Str "ping");
          ("conn", Util.Json.Int 1);
        ]
      else []
    in
    let reply =
      Util.Instrument.span "serve.request" ~attrs (fun () ->
          let t0 = Util.Instrument.now_ns () in
          let r =
            if variant = `Tagged then
              Util.Instrument.with_ambient_attrs attrs (fun () ->
                  Serve.Dispatch.eval disp req.Serve.Wire.op)
            else Serve.Dispatch.eval disp req.Serve.Wire.op
          in
          let dt =
            Int64.to_float (Int64.sub (Util.Instrument.now_ns ()) t0) /. 1e9
          in
          Util.Instrument.observe "serve.request_seconds" dt;
          if variant <> `Baseline then
            Serve.Metrics.observe metrics ~op:"ping" ~ok:true ~queue_wait_s:0.0
              ~service_s:dt;
          match r with
          | Ok result -> Serve.Wire.ok_response ~id:req.Serve.Wire.id result
          | Error (code, message) ->
              Serve.Wire.error_response ~id:req.Serve.Wire.id ~code ~message)
    in
    ignore (Util.Json.to_string reply)
  in
  (* warm all paths so the per-op window and span accumulators are
     allocated outside the measurement *)
  for i = 1 to 1_000 do
    pipeline `Baseline i;
    pipeline `Rolling i;
    pipeline `Tagged i
  done;
  let baseline = rate (pipeline `Baseline) in
  let rolling = rate (pipeline `Rolling) in
  let tagged = rate (pipeline `Tagged) in
  let pct v = 100.0 *. ((baseline /. v) -. 1.0) in
  let t =
    Table.make ~title:"Observability overhead on the dispatch hot path"
      [ "path"; "requests/s"; "overhead" ]
  in
  Table.add_row t
    [ "decode+queue+span+eval+encode (PR 3 shape)";
      Printf.sprintf "%.0f" baseline; "—" ];
  Table.add_row t
    [ "+ req_id + rolling observe (every request)";
      Printf.sprintf "%.0f" rolling; Printf.sprintf "%.2f%%" (pct rolling) ];
  Table.add_row t
    [ "+ trace attrs + ambient (only when tracing)";
      Printf.sprintf "%.0f" tagged; Printf.sprintf "%.2f%%" (pct tagged) ];
  Table.print t;
  let added_ns = (1e9 /. rolling) -. (1e9 /. baseline) in
  Printf.printf
    "untraced per-request overhead: %.0f ns (%.2f%% of the syscall-free \
     pipeline)\n"
    added_ns (pct rolling);
  (* The pipeline above deliberately excludes what every real request
     also pays — socket reads/writes and thread handoffs.  Measure one
     end-to-end ping round trip against a real in-process server and
     express the added cost against it: that is the overhead a client
     actually sees. *)
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gossip_bench_%d.sock" (Unix.getpid ()))
  in
  let config =
    {
      (Serve.Server.default_config ~listen:(Serve.Server.Unix_socket sock)) with
      Serve.Server.workers = 2;
    }
  in
  let server = Serve.Server.create config in
  Serve.Server.start server;
  let client = Serve.Client.connect_retry (Serve.Server.Unix_socket sock) in
  for _ = 1 to 200 do
    ignore (Serve.Client.call client Serve.Wire.Ping)
  done;
  let rt_iters = 2_000 in
  let t0 = Util.Instrument.now_ns () in
  for _ = 1 to rt_iters do
    ignore (Serve.Client.call client Serve.Wire.Ping)
  done;
  let rt_ns =
    Int64.to_float (Int64.sub (Util.Instrument.now_ns ()) t0)
    /. float_of_int rt_iters
  in
  Serve.Client.close client;
  Serve.Server.request_stop server;
  Serve.Server.shutdown server;
  Printf.printf
    "end-to-end ping round trip: %.0f ns; added cost is %.2f%% of it \
     (target < 5%%)\n"
    rt_ns
    (100.0 *. added_ns /. rt_ns)

(* Part 25: what the robustness machinery costs when it is NOT in use.
   PR 5 put two things on every request's path: the worker's exception
   barrier (a Fun.protect + try/with around the job) and the chaos
   check (one match on a [Chaos.t option]).  Both must vanish next to
   the ~87 ns observability overhead Part 24 prices: installing an
   OCaml exception handler costs nothing on the non-raising path, and
   matching [None] is a pointer test.  The third row turns chaos ON
   with negligible probabilities to price [Chaos.decide] itself — the
   per-request seeded draw a soak pays on every queued op. *)
let print_robustness_overhead () =
  let module Serve = Gossip_serve in
  let disp = Serve.Dispatch.create () in
  let metrics = Serve.Metrics.create ~workers:1 ~queue_capacity:64 () in
  let q = Serve.Bounded_queue.create ~capacity:64 in
  let iters = 20_000 in
  let encoded =
    Util.Json.to_string
      (Serve.Wire.request_to_json
         { Serve.Wire.id = Util.Json.Int 7; op = Serve.Wire.Ping; timeout_ms = None; trace = None })
  in
  (* the production per-request pipeline (Part 24's `Rolling` shape) *)
  let pipeline i =
    let req =
      match Util.Json.of_string encoded with
      | Ok j -> (
          match Serve.Wire.parse_request j with
          | Ok r -> r
          | Error _ -> assert false)
      | Error _ -> assert false
    in
    ignore (Serve.Bounded_queue.try_push q req);
    ignore (Serve.Bounded_queue.pop q);
    Util.Instrument.set_gauge "serve.queue_depth" 0.0;
    Util.Instrument.add "serve.requests" 1;
    let reply =
      Util.Instrument.span "serve.request" (fun () ->
          let t0 = Util.Instrument.now_ns () in
          let r = Serve.Dispatch.eval disp req.Serve.Wire.op in
          let dt =
            Int64.to_float (Int64.sub (Util.Instrument.now_ns ()) t0) /. 1e9
          in
          Util.Instrument.observe "serve.request_seconds" dt;
          Serve.Metrics.observe metrics ~op:"ping" ~ok:true ~queue_wait_s:0.0
            ~service_s:dt;
          ignore i;
          match r with
          | Ok result -> Serve.Wire.ok_response ~id:req.Serve.Wire.id result
          | Error (code, message) ->
              Serve.Wire.error_response ~id:req.Serve.Wire.id ~code ~message)
    in
    ignore (Util.Json.to_string reply)
  in
  let released = ref 0 in
  (* exactly what the worker loop wraps around every job since PR 5:
     the conn-release finaliser, the chaos decision, the panic and
     stall hooks, the reply-fault match — all on the no-fault path *)
  let guarded chaos i =
    Fun.protect
      ~finally:(fun () -> incr released)
      (fun () ->
        let decision =
          match Sys.opaque_identity (chaos : Serve.Chaos.t option) with
          | None -> Serve.Chaos.no_fault
          | Some plan -> Serve.Chaos.decide plan ~req_id:i
        in
        if decision.Serve.Chaos.panic then raise Serve.Chaos.Panic;
        if decision.Serve.Chaos.dispatch_latency_ms > 0 then
          Thread.delay
            (float_of_int decision.Serve.Chaos.dispatch_latency_ms /. 1000.0);
        (try pipeline i with Serve.Chaos.Panic -> ());
        match decision.Serve.Chaos.reply with None | Some _ -> ())
  in
  let tiny_chaos =
    (* probabilities so small no fault ever fires in 20k requests, so
       the row prices the decision draw, not the faults *)
    match Serve.Chaos.make ~seed:42 ~drop:1e-12 () with
    | Some plan -> Some plan
    | None -> assert false
  in
  let rate f =
    let t0 = Unix.gettimeofday () in
    for i = 1 to iters do
      f i
    done;
    float_of_int iters /. (Unix.gettimeofday () -. t0)
  in
  for i = 1 to 1_000 do
    pipeline i;
    guarded None i;
    guarded tiny_chaos i
  done;
  (* the deltas under measurement are tens of ns on a ~1.5 µs pipeline:
     interleave the variants and keep each one's best pass, so shared
     noise (GC pauses, scheduling) cancels instead of masquerading as
     overhead *)
  let bare = ref 0.0 and disabled = ref 0.0 and enabled = ref 0.0 in
  for _ = 1 to 5 do
    bare := Float.max !bare (rate pipeline);
    disabled := Float.max !disabled (rate (guarded None));
    enabled := Float.max !enabled (rate (guarded tiny_chaos))
  done;
  let bare = !bare and disabled = !disabled and enabled = !enabled in
  let ns v = 1e9 /. v in
  let delta v = ns v -. ns bare in
  let t =
    Table.make ~title:"Robustness machinery on the dispatch hot path"
      [ "path"; "requests/s"; "ns/req"; "added ns" ]
  in
  Table.add_row t
    [ "pipeline, no barrier (PR 4 shape)"; Printf.sprintf "%.0f" bare;
      Printf.sprintf "%.0f" (ns bare); "—" ];
  Table.add_row t
    [ "+ barrier + chaos check (chaos off)"; Printf.sprintf "%.0f" disabled;
      Printf.sprintf "%.0f" (ns disabled);
      Printf.sprintf "%+.0f" (delta disabled) ];
  Table.add_row t
    [ "+ Chaos.decide (chaos on, faults ~never)";
      Printf.sprintf "%.0f" enabled; Printf.sprintf "%.0f" (ns enabled);
      Printf.sprintf "%+.0f" (delta enabled) ];
  Table.print t;
  Printf.printf
    "barrier + disabled-chaos check: %+.0f ns/request (target: lost in the \
     noise of Part 24's ~87 ns observability overhead)\n"
    (delta disabled)

(* ---------------------------------------------------------------- *)
(* Part 26: chunked engine scaling — implicit DB(2,D) to a million    *)
(* ---------------------------------------------------------------- *)

(* Part 18 tops out near 30k vertices because it materializes the
   digraph and the full n² knowledge state.  The implicit path tracks 64
   items through a Schedule sender function, so the same curve extends
   two orders of magnitude further; the gauge per size lands in the
   --json report. *)
let print_scale_implicit () =
  let t =
    Table.make
      ~title:
        "Scale (implicit): chunked gossip on DB(2,D), 64 tracked items"
      [ "D"; "n"; "rounds"; "seconds"; "nodes*rounds/s" ]
  in
  List.iter
    (fun dim ->
      let imp = Topology.Implicit.de_bruijn 2 dim in
      let n = Topology.Implicit.n_vertices imp in
      let sched =
        Protocol.Schedule.proposal imp ~period:64 ~seed:1 ~full_duplex:false
      in
      let st = Simulate.Chunked.create ~items:(min n 64) n in
      let t0 = Util.Instrument.now_ns () in
      let outcome = Simulate.Chunked.run st sched in
      let dt =
        Int64.to_float (Int64.sub (Util.Instrument.now_ns ()) t0) /. 1e9
      in
      let rate =
        if dt > 0.0 then
          float_of_int n
          *. float_of_int outcome.Simulate.Chunked.rounds_run
          /. dt
        else 0.0
      in
      Util.Instrument.set_gauge
        (Printf.sprintf "bench.scale_implicit.nodes_rounds_per_sec.n%d" n)
        rate;
      Table.add_row t
        [
          string_of_int dim;
          string_of_int n;
          (match outcome.Simulate.Chunked.time with
          | Some r -> string_of_int r
          | None -> "DNF");
          Printf.sprintf "%.3f" dt;
          Printf.sprintf "%.3g" rate;
        ])
    [ 14; 17; 20 ];
  Table.print t;
  print_endline
    "(the 10^6-vertex row is ~100x beyond Part 18's materialized ceiling;\n\
    \ memory is n x 64 bits of state, never an adjacency structure.)"

(* ---------------------------------------------------------------- *)
(* Part 27: cluster layer — ring hot path and router overhead        *)
(* ---------------------------------------------------------------- *)

(* Two costs decide whether fronting the shards with gossip_router is
   affordable: the consistent-hash placement every keyed request pays
   (pure CPU, measured standalone) and the extra socket hop + forward
   the router adds over dialing a shard directly (measured against a
   real in-process shard/router pair on Unix sockets; the mixed ops hit
   the shard's warm cache after the first call, so the delta isolates
   forwarding, not evaluation). *)
let print_cluster_bench () =
  let module Ring = Gossip_cluster.Ring in
  let module Membership = Gossip_cluster.Membership in
  let module Router = Gossip_cluster.Router in
  let module Server = Gossip_serve.Server in
  let module Client = Gossip_serve.Client in
  let module Wire = Gossip_serve.Wire in
  (* --- placement hot path --- *)
  let shard_names = List.init 16 (fun i -> Printf.sprintf "shard-%02d" i) in
  let ring = Ring.create ~vnodes:64 shard_names in
  let keys = Array.init 1024 (fun i -> Printf.sprintf "key-%d" i) in
  let counter = ref 0 in
  let next_key () =
    incr counter;
    keys.(!counter land 1023)
  in
  let rate label iters f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    (label, float_of_int iters /. dt)
  in
  let hot =
    [
      rate "hash64" 1_000_000 (fun () -> ignore (Ring.hash64 (next_key ())));
      rate "ring lookup (16 shards x 64 vnodes)" 1_000_000 (fun () ->
          ignore (Ring.lookup ring (next_key ())));
      rate "ring replicas k=3" 200_000 (fun () ->
          ignore (Ring.replicas ring ~k:3 (next_key ())));
      rate "ring rebuild (16 shards x 64 vnodes)" 2_000 (fun () ->
          ignore (Ring.create ~vnodes:64 shard_names));
    ]
  in
  let t =
    Table.make ~title:"Cluster placement hot paths" [ "operation"; "ops/s" ]
  in
  List.iter
    (fun (label, r) ->
      (match label with
      | "ring lookup (16 shards x 64 vnodes)" ->
          Util.Instrument.set_gauge "bench.cluster.ring_lookups_per_sec" r
      | _ -> ());
      Table.add_row t [ label; Printf.sprintf "%.0f" r ])
    hot;
  Table.print t;
  (* --- router overhead vs a direct shard dial --- *)
  let tmp = Filename.get_temp_dir_name () in
  let sock name =
    Filename.concat tmp (Printf.sprintf "gossip-bench-%s-%d.sock" name (Unix.getpid ()))
  in
  let spath = sock "shard" and rpath = sock "router" in
  List.iter (fun p -> try Unix.unlink p with _ -> ()) [ spath; rpath ];
  let shard_config =
    {
      (Server.default_config ~listen:(Server.Unix_socket spath)) with
      Server.workers = 2;
      queue_capacity = 64;
    }
  in
  let shard = Server.create shard_config in
  Server.start shard;
  let membership =
    Membership.create ~self:"bench-router" ~addr:("unix:" ^ rpath)
      ~role:"router" ()
  in
  ignore
    (Membership.merge membership
       [
         {
           Membership.node = "bench-shard";
           addr = "unix:" ^ spath;
           role = "shard";
           version = Version.string;
           incarnation = 1;
           heartbeat = 1;
           status = Membership.Alive;
         };
       ]);
  let metrics = Gossip_serve.Metrics.create ~workers:2 ~queue_capacity:64 () in
  let router = Router.create ~membership ~metrics ~vnodes:64 ~replicas:1 () in
  let router_config =
    {
      (Server.default_config ~listen:(Server.Unix_socket rpath)) with
      Server.workers = 2;
      queue_capacity = 64;
      inline_observability = false;
    }
  in
  let rserver =
    Server.create ~metrics ~evaluate:(Router.evaluate router) router_config
  in
  Server.start rserver;
  let percentiles listen op n =
    let c = Client.connect_retry listen in
    let lat = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let t0 = Util.Instrument.now_ns () in
      (match Client.call c op with
      | Ok { Wire.outcome = Ok _; _ } -> ()
      | Ok { Wire.outcome = Error (code, msg); _ } ->
          failwith (Wire.error_code_to_string code ^ ": " ^ msg)
      | Error e -> failwith e);
      lat.(i) <-
        Int64.to_float (Int64.sub (Util.Instrument.now_ns ()) t0) /. 1e3
    done;
    Client.close c;
    Array.sort compare lat;
    (lat.(n / 2), lat.(min (n - 1) (n * 99 / 100)))
  in
  let ping = Wire.Ping in
  let mixed i =
    if i land 1 = 0 then Wire.Tables { s_max = 8; ss = [ 3; 4; 5; 6 ] }
    else
      Wire.Bound
        {
          net = { Wire.family = "hypercube"; dim = 4; degree = 2 };
          s = Some 4;
          full_duplex = false;
        }
  in
  let mixed_percentiles listen n =
    let c = Client.connect_retry listen in
    let lat = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let t0 = Util.Instrument.now_ns () in
      (match Client.call c (mixed i) with
      | Ok { Wire.outcome = Ok _; _ } -> ()
      | Ok { Wire.outcome = Error (code, msg); _ } ->
          failwith (Wire.error_code_to_string code ^ ": " ^ msg)
      | Error e -> failwith e);
      lat.(i) <-
        Int64.to_float (Int64.sub (Util.Instrument.now_ns ()) t0) /. 1e3
    done;
    Client.close c;
    Array.sort compare lat;
    (lat.(n / 2), lat.(min (n - 1) (n * 99 / 100)))
  in
  let n = 2_000 in
  let d_p50, d_p99 = percentiles (Server.Unix_socket spath) ping n in
  let r_p50, r_p99 = percentiles (Server.Unix_socket rpath) ping n in
  let dm_p50, dm_p99 = mixed_percentiles (Server.Unix_socket spath) n in
  let rm_p50, rm_p99 = mixed_percentiles (Server.Unix_socket rpath) n in
  Server.shutdown rserver;
  Server.shutdown shard;
  List.iter (fun p -> try Unix.unlink p with _ -> ()) [ spath; rpath ];
  Util.Instrument.set_gauge "bench.cluster.router_ping_p50_us" r_p50;
  Util.Instrument.set_gauge "bench.cluster.direct_ping_p50_us" d_p50;
  let t =
    Table.make ~title:"Router overhead (2000 calls per row, microseconds)"
      [ "path"; "p50 us"; "p99 us" ]
  in
  List.iter
    (fun (label, p50, p99) ->
      Table.add_row t
        [ label; Printf.sprintf "%.0f" p50; Printf.sprintf "%.0f" p99 ])
    [
      ("direct ping", d_p50, d_p99);
      ("router ping", r_p50, r_p99);
      ("direct mixed (tables/bound, warm cache)", dm_p50, dm_p99);
      ("router mixed (tables/bound, warm cache)", rm_p50, rm_p99);
    ];
  Table.print t;
  Printf.printf
    "(router adds %.0f us to a p50 ping — one extra Unix-socket hop, a\n\
    \ ring lookup and a forwarded frame; doc/cluster.md discusses the\n\
    \ budget.)\n"
    (r_p50 -. d_p50)

(* ---------------------------------------------------------------- *)
(* Part 28: adversarial fault certification throughput              *)
(* ---------------------------------------------------------------- *)

(* The certifier's unit of work is one pattern simulation (with_drops
   wrapper + chunked run to completion or cap).  The k = 2 exhaustive
   certification of the augmented 12-cycle — 2629 patterns, every one
   completing — is the steady-state shape, so patterns/sec from it is
   the regression gauge. *)
let print_fault_cert_bench () =
  let module Schedule = Protocol.Schedule in
  let module Fault_tolerant = Protocol.Fault_tolerant in
  let module Certifier = Simulate.Certifier in
  let base = Schedule.cycle_alternating ~n:12 ~full_duplex:false in
  let t =
    Table.make
      ~title:"Adversarial certification (cycle n=12, exhaustive, seed 7)"
      [ "scheme"; "k"; "patterns"; "seconds"; "patterns/s"; "verdict" ]
  in
  let row ?(repeats = 1) sched ~k ~budget =
    let t0 = Unix.gettimeofday () in
    let v = ref (Certifier.certify ~domains:1 ~budget sched ~k ~seed:7) in
    for _ = 2 to repeats do
      v := Certifier.certify ~domains:1 ~budget sched ~k ~seed:7
    done;
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int repeats in
    let v = !v in
    let rate = float_of_int v.Certifier.patterns_checked /. dt in
    Table.add_row t
      [
        Schedule.name sched;
        string_of_int k;
        string_of_int v.Certifier.patterns_checked;
        Printf.sprintf "%.3f" dt;
        Printf.sprintf "%.0f" rate;
        (if v.Certifier.certified then "certified"
         else
           Printf.sprintf "cx size %d"
             (match v.Certifier.counterexample with
             | Some c -> List.length c.Certifier.cx_pattern
             | None -> 0));
      ];
    rate
  in
  ignore (row base ~k:1 ~budget:512);
  let aug, _ = Fault_tolerant.augment base ~k:2 in
  ignore (row aug ~k:1 ~budget:512);
  (* 10 repeats: the per-run 25 ms would sit too close to perf_diff's
     0.01 s gating floor to gate reliably *)
  let rate = row ~repeats:10 aug ~k:2 ~budget:4096 in
  Util.Instrument.set_gauge "bench.fault_cert.patterns_per_sec" rate;
  Table.print t;
  print_endline
    "(the k = 2 row enumerates C(48, <=2) = 2629 patterns exhaustively,\n\
    \ 10 times; its patterns/sec is the gauge BENCH_BASELINE.json gates.)"

let parts =
  [
    (1, "fig4", "Part 1: Fig. 4 — general systolic lower bounds", print_fig4);
    (2, "local-matrices", "Part 2: Figs. 1-3 — local matrices Mx, Nx, Ox",
     print_fig1_3);
    (3, "fig5", "Part 3: Fig. 5 — separator-refined systolic bounds",
     print_fig5);
    (4, "fig6", "Part 4: Fig. 6 — non-systolic bounds", print_fig6);
    (5, "fig7", "Part 5: Fig. 7 — full-duplex local matrix", print_fig7);
    (6, "fig8", "Part 6: Fig. 8 — full-duplex bounds", print_fig8);
    (7, "separators", "Part 7: separator measurements (Lemma 3.1)",
     print_separators);
    (8, "certificates", "Part 8: Theorem 4.1 certificates", print_certificates);
    (9, "norm-sweep", "Part 9: norm sweep (Lemmas 4.3 / 6.1)", print_norm_sweep);
    (10, "sandwich", "Part 10: upper vs lower sandwich", print_sandwich);
    (11, "price", "Part 11: price of systolization (exhaustive search)",
     print_price);
    (12, "weighted-diameter", "Part 12: weighted-diameter extension",
     print_weighted_diameter);
    (13, "extra-families", "Part 13: extra hypercube-derived families",
     print_extra_families);
    (14, "fig5-extended", "Part 14: Fig. 5 extended (d = 4, 5)",
     print_fig5_extended);
    (15, "faults", "Part 15: fault tolerance", print_faults);
    (16, "lanczos", "Part 16: Lanczos cross-validation",
     print_lanczos_crosscheck);
    (17, "broadcast", "Part 17: broadcasting", print_broadcast);
    (18, "scale", "Part 18: scale", print_scale);
    (19, "ablation", "Part 19: local-pattern ablation", print_pattern_ablation);
    (20, "messages", "Part 20: message complexity", print_messages);
    (21, "bechamel", "Part 21: Bechamel micro-benchmarks", run_bechamel);
    (22, "cache-stats", "Part 22: pipeline cache statistics", print_cache_stats);
    (23, "serve", "Part 23: serving layer (wire codec, bounded queue)",
     print_serve_bench);
    (24, "observability", "Part 24: request tagging + rolling metrics overhead",
     print_observability_overhead);
    (25, "robustness", "Part 25: exception barrier + disabled-chaos overhead",
     print_robustness_overhead);
    (26, "scale-implicit", "Part 26: chunked-engine scaling to 10^6 vertices",
     print_scale_implicit);
    (27, "cluster", "Part 27: cluster ring hot path + router overhead",
     print_cluster_bench);
    (28, "fault-cert", "Part 28: adversarial fault-certification throughput",
     print_fault_cert_bench);
  ]

(* Minimal argv parsing — the bench stays a plain executable:
     bench [--json PATH] [--parts 1,8,22]                             *)
let usage () =
  prerr_endline
    "usage: bench [--json PATH] [--parts N,M,...]\n\
    \  --json PATH   write a machine-readable report (schema \
     gossip-bench/1) to PATH\n\
    \  --parts LIST  run only the comma-separated part numbers (default: all)";
  exit 2

let parse_args () =
  let json_path = ref None and selected = ref None in
  let rec go = function
    | [] -> ()
    | "--json" :: path :: rest ->
        json_path := Some path;
        go rest
    | "--parts" :: list :: rest ->
        let ids =
          List.filter_map
            (fun tok ->
              match int_of_string_opt (String.trim tok) with
              | Some i -> Some i
              | None -> usage ())
            (String.split_on_char ',' list)
        in
        selected := Some ids;
        go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  (!json_path, !selected)

let () =
  let json_path, selected = parse_args () in
  let wanted id =
    match selected with None -> true | Some ids -> List.mem id ids
  in
  let timings = ref [] in
  let t_start = Util.Instrument.now_ns () in
  List.iter
    (fun (id, name, title, run) ->
      if wanted id then begin
        section title;
        let r0 = Util.Resource.sample () in
        let t0 = Util.Instrument.now_ns () in
        run ();
        let dt =
          Int64.to_float (Int64.sub (Util.Instrument.now_ns ()) t0) /. 1e9
        in
        let r1 = Util.Resource.sample () in
        Util.Instrument.observe "bench.part_seconds" dt;
        (* per-part resource delta: what the part allocated and how the
           collector worked for it, next to its wall time — this is the
           section perf_diff compares across reports *)
        timings :=
          (id, name, dt, Util.Resource.delta_json ~before:r0 ~after:r1)
          :: !timings
      end)
    parts;
  let total =
    Int64.to_float (Int64.sub (Util.Instrument.now_ns ()) t_start) /. 1e9
  in
  match json_path with
  | None -> ()
  | Some path ->
      let module J = Util.Json in
      let report =
        J.Obj
          [
            ("schema", J.Str "gossip-bench/1");
            ( "parts",
              J.List
                (List.rev_map
                   (fun (id, name, dt, resource) ->
                     J.Obj
                       [
                         ("part", J.Int id);
                         ("name", J.Str name);
                         ("seconds", J.Float dt);
                         ("resource", resource);
                       ])
                   !timings) );
            ("total_seconds", J.Float total);
            ("cache", Context.stats_json ctx);
            ("metrics", Util.Instrument.metrics_json ());
          ]
      in
      let oc = open_out path in
      output_string oc (J.to_string_pretty report);
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nbench report written to %s\n" path
