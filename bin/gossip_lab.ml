(* gossip_lab: command-line front end for the systolic gossip library.

   Subcommands:
     tables                    regenerate the paper's numeric tables
     analyze  FAMILY DIM       closed-form bounds for one network
     simulate FAMILY DIM       run a periodic protocol and certify it
     info     FAMILY DIM       structural facts about a network
     stats    FAMILY DIM       exercise the memoizing pipeline, dump stats

   FAMILY is one of: path cycle complete hypercube grid torus tree
   bf dwbf wbf ddb db dk k (the latter seven take a degree with -d).

   Every subcommand accepts --domains N (worker domains for the parallel
   stages), --trace (record span timings / cache counters and print a
   summary after the run) and --trace-out FILE (stream every span and
   event as JSONL to FILE; see doc/telemetry.md).  The data-producing
   subcommands additionally accept --json (emit the result as a JSON
   object on stdout instead of the human rendering). *)

open Core
module C = Cmdliner

(* --- shared --domains / --trace plumbing --- *)

let domains_arg =
  C.Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel stages (table rows, blockwise \
           norms, BFS sweeps, candidate batches).  Default: automatic.")

let trace_arg =
  C.Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Record span timings and cache counters and print a summary after \
           the run (equivalent to setting GOSSIP_TRACE=1).")

let trace_out_arg =
  C.Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Stream spans and events as JSON Lines to $(docv) (equivalent to \
           setting GOSSIP_TRACE_FILE; schema in doc/telemetry.md).")

(* Evaluated before the positional arguments of every subcommand; returns
   unit so command runners just prepend it. *)
let setup_term =
  let setup domains trace trace_out =
    match domains with
    | Some d when d < 1 ->
        `Error (true, "option '--domains': value must be at least 1")
    | _ ->
        Util.Parallel.set_default_domains domains;
        if trace then Util.Instrument.set_enabled true;
        (match trace_out with
        | Some path -> Util.Instrument.set_trace_file (Some path)
        | None -> ());
        `Ok ()
  in
  C.Term.(ret (const setup $ domains_arg $ trace_arg $ trace_out_arg))

let json_arg =
  C.Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the result as a JSON object on stdout instead of the human \
           rendering (suppresses the --trace summary; cache statistics are \
           embedded in the object).")

let report ?ctx () =
  if Util.Instrument.enabled () then begin
    (match ctx with
    | Some ctx -> Format.printf "%a@." Context.pp_stats ctx
    | None -> ());
    Format.printf "%a@?" Util.Instrument.pp_summary ()
  end

(* Append fields (cache stats, coverage, …) to an object result. *)
let obj_with extra = function
  | Util.Json.Obj fields -> Util.Json.Obj (fields @ extra)
  | other -> other

(* Every --json envelope leads with the build version, mirroring the
   server's response envelopes (doc/serving.md). *)
let print_json j =
  print_endline
    (Util.Json.to_string_pretty
       (match j with
       | Util.Json.Obj fields ->
           Util.Json.Obj (("version", Util.Json.Str Version.string) :: fields)
       | other -> other))

let build_network family d dim =
  let module F = Topology.Families in
  match family with
  | "path" -> F.path dim
  | "cycle" -> F.cycle dim
  | "complete" -> F.complete dim
  | "hypercube" -> F.hypercube dim
  | "grid" -> F.grid dim dim
  | "torus" -> F.torus dim dim
  | "tree" -> F.complete_dary_tree (max 2 d) dim
  | "bf" -> F.butterfly d dim
  | "dwbf" -> F.wrapped_butterfly_directed d dim
  | "wbf" -> F.wrapped_butterfly d dim
  | "ddb" -> F.de_bruijn_directed d dim
  | "db" -> F.de_bruijn d dim
  | "dk" -> F.kautz_directed d dim
  | "k" -> F.kautz d dim
  | other -> failwith (Printf.sprintf "unknown family %S" other)

let family_arg =
  C.Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FAMILY" ~doc:"Network family name.")

let dim_arg =
  C.Arg.(
    required
    & pos 1 (some int) None
    & info [] ~docv:"DIM" ~doc:"Dimension / size parameter.")

let degree_arg =
  C.Arg.(
    value & opt int 2
    & info [ "d"; "degree" ] ~docv:"D" ~doc:"Degree for string families.")

(* --- tables --- *)

let print_fig4 () =
  let t =
    Util.Table.make ~title:"Fig. 4 — general systolic bounds (half-duplex)"
      [ "s"; "lambda"; "e(s)" ]
  in
  List.iter
    (fun (r : Bounds.Tables.fig4_row) ->
      Util.Table.add_row t
        [
          string_of_int r.Bounds.Tables.s;
          Util.Table.cell_f r.Bounds.Tables.lambda;
          Util.Table.cell_f r.Bounds.Tables.e;
        ])
    (Bounds.Tables.fig4 ~s_max:8);
  Util.Table.add_row t
    [
      "inf";
      Util.Table.cell_f Bounds.Tables.fig4_inf.Bounds.Tables.lambda;
      Util.Table.cell_f Bounds.Tables.fig4_inf.Bounds.Tables.e;
    ];
  Util.Table.print t

let print_family_table ~title rows ss =
  let t =
    Util.Table.make ~title
      ("family" :: List.map (fun s -> "s=" ^ string_of_int s) ss)
  in
  List.iter
    (fun (r : Bounds.Tables.family_row) ->
      Util.Table.add_row t
        (r.Bounds.Tables.key
        :: List.map
             (fun (_, (c : Bounds.Tables.cell)) ->
               Util.Table.cell_f c.Bounds.Tables.value
               ^ if c.Bounds.Tables.improves then "" else "*")
             r.Bounds.Tables.cells))
    rows;
  Util.Table.print t;
  print_endline "(* = coincides with the general bound of Fig. 4)"

let print_fig6 () =
  let t =
    Util.Table.make ~title:"Fig. 6 — non-systolic bounds (half-duplex)"
      [ "family"; "separator"; "baseline"; "diam coeff"; "best" ]
  in
  List.iter
    (fun (r : Bounds.Tables.fig6_row) ->
      Util.Table.add_row t
        [
          r.Bounds.Tables.key;
          Util.Table.cell_f r.Bounds.Tables.separator_value;
          Util.Table.cell_f r.Bounds.Tables.baseline;
          Util.Table.cell_f r.Bounds.Tables.diameter_coeff;
          Util.Table.cell_f r.Bounds.Tables.best;
        ])
    (Bounds.Tables.fig6 ());
  Util.Table.print t

let tables_cmd =
  let run () json =
    let ss = [ 3; 4; 5; 6; 7; 8 ] in
    if json then print_json (Bounds.Tables.to_json ~s_max:8 ~ss ())
    else begin
      print_fig4 ();
      print_family_table ~title:"Fig. 5 — separator-refined systolic bounds"
        (Bounds.Tables.fig5 ~ss) ss;
      print_fig6 ();
      print_family_table ~title:"Fig. 8 — full-duplex systolic bounds"
        (Bounds.Tables.fig8 ~ss) ss;
      report ()
    end
  in
  C.Cmd.v (C.Cmd.info "tables" ~doc:"Regenerate the paper's numeric tables.")
    C.Term.(const run $ setup_term $ json_arg)

(* --- analyze --- *)

let analyze_cmd =
  let run () family d dim =
    let g = build_network family d dim in
    let ctx = Context.create () in
    Format.printf "%a@." Analysis.pp_network_report
      (Analysis.analyze_network ~ctx g);
    report ~ctx ()
  in
  C.Cmd.v
    (C.Cmd.info "analyze" ~doc:"Closed-form lower bounds for one network.")
    C.Term.(const run $ setup_term $ family_arg $ degree_arg $ dim_arg)

(* --- simulate --- *)

let default_systolic g full_duplex =
  if Topology.Digraph.is_symmetric g then
    if full_duplex then Protocol.Builders.edge_coloring_full_duplex g
    else Protocol.Builders.edge_coloring_half_duplex g
  else
    Protocol.Builders.random_systolic g Protocol.Protocol.Directed ~period:8
      ~seed:1 ~density:1.0

(* The materialized path: build the digraph, certify the protocol. *)
let simulate_materialized family d dim full_duplex json =
  let g = build_network family d dim in
  let sys = default_systolic g full_duplex in
  let ctx = Context.create () in
  let r = Analysis.certify_protocol ~ctx sys in
  if json then begin
    (* The report cached only the completion time; replay the run to
       capture the full dissemination curve for the JSON consumer. *)
    let run = Simulate.Engine.gossip_run sys in
    print_json
      (obj_with
         [ ("cache", Context.stats_json ctx) ]
         (Analysis.protocol_report_to_json ~coverage:run.Simulate.Engine.curve r))
  end
  else begin
    Format.printf "%a@." Analysis.pp_protocol_report r;
    report ~ctx ()
  end

(* The implicit path: no digraph, no stored rounds — a Schedule sender
   function drives the chunked engine blockwise.  This is the only way
   to reach 10^6+ vertices. *)
let simulate_implicit ~family ~n ~degree ~items ~checkpoint_every ~cap ~period
    ~seed ~full_duplex ~progress ~json =
  match
    Protocol.Schedule.of_family ~family ~n ~degree ~period ~seed ~full_duplex ()
  with
  | Error e -> `Error (false, e)
  | Ok (imp, sched) ->
      let nv = Topology.Implicit.n_vertices imp in
      let items = match items with Some k -> k | None -> min nv 64 in
      let st = Simulate.Chunked.create ~items nv in
      (* the ticker needs checkpoints to fire from; give it a cadence
         even when the user left checkpointing off *)
      let checkpoint_every =
        if progress && checkpoint_every = 0 then 32 else checkpoint_every
      in
      let on_checkpoint =
        if not progress then None
        else
          Some
            (fun (c : Simulate.Chunked.checkpoint) ->
              Printf.eprintf
                "\rround %-8d cov %6.4f  %8.1f r/s  eta %-8s heap %.0f MB%s \
                 %!"
                c.Simulate.Chunked.round c.Simulate.Chunked.coverage
                c.Simulate.Chunked.rounds_per_s
                (match c.Simulate.Chunked.eta_s with
                | Some e when e < 1.0 -> "<1s"
                | Some e -> Printf.sprintf "%.0fs" e
                | None -> "?")
                c.Simulate.Chunked.heap_mb
                (match c.Simulate.Chunked.rss_mb with
                | Some r -> Printf.sprintf "  rss %.0f MB" r
                | None -> ""))
      in
      let t0 = Util.Instrument.now_ns () in
      let outcome =
        Simulate.Chunked.run ?cap ~checkpoint_every ?on_checkpoint st sched
      in
      if progress then prerr_newline ();
      let wall_seconds =
        Int64.to_float (Int64.sub (Util.Instrument.now_ns ()) t0) /. 1e9
      in
      let domains = Util.Parallel.recommended_domains () in
      if json then
        print_json
          (Simulate.Chunked.report_to_json ~family ~requested_n:n ~sched ~st
             ~outcome ~wall_seconds ~domains)
      else begin
        Printf.printf "network   : %s (n = %d, requested %d)\n"
          (Topology.Implicit.name imp) nv n;
        Printf.printf "schedule  : %s (period %d, %s)\n"
          (Protocol.Schedule.name sched)
          (Protocol.Schedule.period sched)
          (Protocol.Protocol.mode_to_string (Protocol.Schedule.mode sched));
        Printf.printf "items     : %d tracked\n" items;
        (match outcome.Simulate.Chunked.time with
        | Some t -> Printf.printf "completed : after %d rounds\n" t
        | None ->
            Printf.printf "incomplete: stopped after %d rounds\n"
              outcome.Simulate.Chunked.rounds_run);
        Printf.printf "coverage  : %.6f\n"
          outcome.Simulate.Chunked.final_coverage;
        List.iter
          (fun { Simulate.Chunked.round; coverage; rounds_per_s; _ } ->
            Printf.printf "  round %6d  coverage %.6f  (%.1f rounds/s)\n" round
              coverage rounds_per_s)
          outcome.Simulate.Chunked.checkpoints;
        Printf.printf "wall      : %.3f s  (%.3g nodes*rounds/sec, %d domains)\n"
          wall_seconds
          (if wall_seconds > 0.0 then
             float_of_int nv
             *. float_of_int outcome.Simulate.Chunked.rounds_run
             /. wall_seconds
           else 0.0)
          domains;
        report ()
      end;
      `Ok ()

let simulate_cmd =
  let run () family_pos d dim_pos full_duplex json ifamily n items
      checkpoint_every cap period seed progress =
    match ifamily with
    | Some family ->
        simulate_implicit ~family ~n ~degree:d ~items ~checkpoint_every ~cap
          ~period ~seed ~full_duplex ~progress ~json
    | None -> (
        match (family_pos, dim_pos) with
        | Some family, Some dim ->
            simulate_materialized family d dim full_duplex json;
            `Ok ()
        | _ ->
            `Error
              ( true,
                "FAMILY and DIM are required unless --family is given (the \
                 implicit large-scale path)" ))
  in
  let fd =
    C.Arg.(
      value & flag
      & info [ "full-duplex" ] ~doc:"Use a full-duplex protocol.")
  in
  let family_opt =
    C.Arg.(
      value
      & opt (some string) None
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "Simulate an $(i,implicit) topology family with the chunked \
             engine instead of materializing a digraph: one of de-bruijn, \
             kautz, hypercube, torus, cycle, ccc.  Scales to millions of \
             vertices; combine with --n.")
  in
  let n_opt =
    C.Arg.(
      value & opt int 1024
      & info [ "n"; "nodes" ] ~docv:"N"
          ~doc:
            "Target vertex count for --family; the smallest family instance \
             with at least $(docv) vertices is used.")
  in
  let items_opt =
    C.Arg.(
      value
      & opt (some int) None
      & info [ "items" ] ~docv:"K"
          ~doc:
            "Track the dissemination of the first $(docv) items only \
             (default: min(n, 64)).  Memory is n*$(docv) bits; --items equal \
             to n is exact gossip.")
  in
  let checkpoint_opt =
    C.Arg.(
      value & opt int 32
      & info [ "checkpoint-every" ] ~docv:"K"
          ~doc:
            "Record (and, with --trace-out, stream) a coverage checkpoint \
             every $(docv) rounds; 0 disables.")
  in
  let cap_opt =
    C.Arg.(
      value
      & opt (some int) None
      & info [ "cap" ] ~docv:"ROUNDS"
          ~doc:"Stop an incomplete run after $(docv) rounds.")
  in
  let period_opt =
    C.Arg.(
      value & opt int 64
      & info [ "period" ] ~docv:"S"
          ~doc:
            "Schedule period for the proposal-matching families (de Bruijn, \
             Kautz).")
  in
  let seed_opt =
    C.Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Seed for the proposal-matching schedules.")
  in
  let progress_opt =
    C.Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Print a live progress ticker to stderr at every checkpoint: \
             round, coverage, rounds/s, projected ETA and heap/RSS.  Implies \
             a checkpoint cadence of 32 when --checkpoint-every is 0.  For \
             million-node runs that would otherwise sit silent for minutes.")
  in
  let family_pos =
    C.Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FAMILY" ~doc:"Network family name (materialized path).")
  in
  let dim_pos =
    C.Arg.(
      value
      & pos 1 (some int) None
      & info [] ~docv:"DIM" ~doc:"Dimension / size parameter.")
  in
  C.Cmd.v
    (C.Cmd.info "simulate"
       ~doc:
         "Run a periodic protocol and certify it (FAMILY DIM), or drive the \
          chunked engine over an implicit family (--family/--n).")
    C.Term.(
      ret
        (const run $ setup_term $ family_pos $ degree_arg $ dim_pos $ fd
       $ json_arg $ family_opt $ n_opt $ items_opt $ checkpoint_opt $ cap_opt
       $ period_opt $ seed_opt $ progress_opt))

(* --- price --- *)

let price_cmd =
  let run () family d dim s_max =
    let g = build_network family d dim in
    if Topology.Digraph.n_vertices g > 12 then
      failwith "price: exhaustive search needs a tiny network (n <= 12)";
    let mode =
      if Topology.Digraph.is_symmetric g then Protocol.Protocol.Half_duplex
      else Protocol.Protocol.Directed
    in
    let systolic, unrestricted =
      Search.Systolic_optimal.price_of_systolization ~s_max g mode
    in
    (match unrestricted with
    | Some t -> Printf.printf "unrestricted optimum: %d rounds\n" t
    | None -> Printf.printf "unrestricted optimum: search incomplete\n");
    List.iter
      (fun (s, outcome) ->
        match outcome with
        | Search.Systolic_optimal.Found r ->
            Printf.printf "s=%d: %d rounds\n" s r.Search.Systolic_optimal.rounds
        | Search.Systolic_optimal.Infeasible ->
            Printf.printf "s=%d: no s-systolic gossip protocol exists\n" s
        | Search.Systolic_optimal.Too_large ->
            Printf.printf "s=%d: sweep too large\n" s)
      systolic;
    report ()
  in
  let s_max =
    C.Arg.(value & opt int 5 & info [ "s-max" ] ~docv:"S" ~doc:"Largest period.")
  in
  C.Cmd.v
    (C.Cmd.info "price"
       ~doc:"Exact price of systolization on a tiny network (exhaustive).")
    C.Term.(const run $ setup_term $ family_arg $ degree_arg $ dim_arg $ s_max)

(* --- dot --- *)

let dot_cmd =
  let run () family d dim delay =
    let g = build_network family d dim in
    if delay then begin
      let sys =
        if Topology.Digraph.is_symmetric g then
          Protocol.Builders.edge_coloring_half_duplex g
        else
          Protocol.Builders.random_systolic g Protocol.Protocol.Directed
            ~period:4 ~seed:1 ~density:1.0
      in
      let dg =
        Delay.Delay_digraph.of_systolic sys
          ~length:(2 * Protocol.Systolic.period sys)
      in
      print_string (Delay.Delay_digraph.to_dot dg)
    end
    else print_string (Topology.Dot.of_digraph g)
  in
  let delay =
    C.Arg.(
      value & flag
      & info [ "delay" ]
          ~doc:"Emit the delay digraph of a periodic protocol instead.")
  in
  C.Cmd.v
    (C.Cmd.info "dot" ~doc:"Emit the network (or its delay digraph) as Graphviz DOT.")
    C.Term.(const run $ setup_term $ family_arg $ degree_arg $ dim_arg $ delay)

(* --- optimal (exhaustive) --- *)

let optimal_cmd =
  let run () family d dim full_duplex json =
    let g = build_network family d dim in
    let mode =
      if not (Topology.Digraph.is_symmetric g) then Protocol.Protocol.Directed
      else if full_duplex then Protocol.Protocol.Full_duplex
      else Protocol.Protocol.Half_duplex
    in
    let gossip = Search.Optimal.gossip_number g mode in
    let broadcast = Search.Optimal.broadcast_number g mode ~src:0 in
    if json then begin
      let module J = Util.Json in
      let result_json = function
        | Some (r : Search.Optimal.result) ->
            J.Obj
              [
                ("rounds", J.Int r.Search.Optimal.rounds);
                ("states_explored", J.Int r.Search.Optimal.states_explored);
              ]
        | None -> J.Null
      in
      print_json
        (J.Obj
           [
             ("network", J.Str (Topology.Digraph.name g));
             ("mode", J.Str (Protocol.Protocol.mode_to_string mode));
             ("gossip", result_json gossip);
             ("broadcast", result_json broadcast);
           ])
    end
    else begin
      (match gossip with
      | Some r ->
          Printf.printf "optimal gossip: %d rounds (%d states explored)\n"
            r.Search.Optimal.rounds r.Search.Optimal.states_explored
      | None -> print_endline "gossip search exceeded the state budget");
      (match broadcast with
      | Some r ->
          Printf.printf "optimal broadcast from 0: %d rounds\n"
            r.Search.Optimal.rounds
      | None -> print_endline "broadcast search exceeded the state budget");
      report ()
    end
  in
  let fd =
    C.Arg.(value & flag & info [ "full-duplex" ] ~doc:"Full-duplex mode.")
  in
  C.Cmd.v
    (C.Cmd.info "optimal"
       ~doc:"Exact optimal gossip/broadcast (tiny networks, <= 24 vertices).")
    C.Term.(
      const run $ setup_term $ family_arg $ degree_arg $ dim_arg $ fd
      $ json_arg)

(* --- broadcast --- *)

let broadcast_cmd =
  let run () family d dim src =
    let g = build_network family d dim in
    let mode =
      if Topology.Digraph.is_symmetric g then Protocol.Protocol.Half_duplex
      else Protocol.Protocol.Directed
    in
    let p = Protocol.Broadcast_protocol.greedy_schedule g ~src ~mode in
    Printf.printf "greedy broadcast schedule: %d rounds\n"
      (Protocol.Protocol.length p);
    Printf.printf "sound lower bound: %d rounds\n"
      (Bounds.Broadcast.lower_bound g);
    Printf.printf "c(d)·log n asymptotic: %.2f\n"
      (Bounds.Broadcast.asymptotic_coefficient g
      *. Util.Numeric.log2
           (float_of_int (Topology.Digraph.n_vertices g)));
    report ()
  in
  let src =
    C.Arg.(value & opt int 0 & info [ "src" ] ~docv:"V" ~doc:"Source vertex.")
  in
  C.Cmd.v
    (C.Cmd.info "broadcast" ~doc:"Greedy broadcast schedule and bounds.")
    C.Term.(const run $ setup_term $ family_arg $ degree_arg $ dim_arg $ src)

(* --- certify a protocol file --- *)

let certify_file_cmd =
  let run () path refine json =
    let sys = Protocol.Protocol_io.load path in
    let ctx = Context.create () in
    let protocol_report = Analysis.certify_protocol ~ctx sys in
    let refined =
      if not refine then None
      else
        match protocol_report.Analysis.gossip_time with
        | Some t ->
            (* The refinement re-sweeps the coarse λ grid over the same
               delay digraph, so every coarse norm solve is a cache hit. *)
            let dg = Context.delay_digraph ctx sys ~length:t in
            Some
              (Context.certify ctx ~refine:true dg
                 ~mode:(Protocol.Systolic.mode sys))
        | None -> None
    in
    if json then
      print_json
        (obj_with
           ((match refined with
            | Some cert -> [ ("refined", Delay.Certificate.to_json cert) ]
            | None -> [])
           @ [ ("cache", Context.stats_json ctx) ])
           (Analysis.protocol_report_to_json protocol_report))
    else begin
      Format.printf "%a@." Analysis.pp_protocol_report protocol_report;
      (match refined with
      | Some cert ->
          Printf.printf "refined certificate: >= %d rounds (lambda=%.3f)\n"
            cert.Delay.Certificate.bound cert.Delay.Certificate.lambda
      | None -> ());
      report ~ctx ()
    end
  in
  let path =
    C.Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Protocol file (see Protocol_io format).")
  in
  let refine =
    C.Arg.(value & flag & info [ "refine" ] ~doc:"Refine the lambda search.")
  in
  C.Cmd.v
    (C.Cmd.info "certify-file"
       ~doc:"Load a protocol from a text file, run it, certify it.")
    C.Term.(const run $ setup_term $ path $ refine $ json_arg)

(* --- stats: exercise the memoizing pipeline --- *)

let stats_cmd =
  let run () family d dim full_duplex json =
    let g = build_network family d dim in
    let sys = default_systolic g full_duplex in
    let ctx = Context.create () in
    let mode = Protocol.Systolic.mode sys in
    let s = Protocol.Systolic.period sys in
    (* Cold pass: simulate, expand, certify — every artifact is a miss. *)
    let cold = Analysis.certify_protocol ~ctx sys in
    if not json then
      Format.printf "%a@." Analysis.pp_protocol_report cold;
    (* Refined certificate over the same delay digraph: the coarse λ grid
       is revisited, so its norm solves are cache hits. *)
    let refined =
      match cold.Analysis.gossip_time with
      | Some t ->
          let dg = Context.delay_digraph ctx sys ~length:t in
          Some (Context.certify ctx ~refine:true dg ~mode)
      | None -> None
    in
    (match refined with
    | Some cert when not json ->
        Printf.printf "refined certificate: >= %d rounds (lambda=%.3f)\n"
          cert.Delay.Certificate.bound cert.Delay.Certificate.lambda
    | _ -> ());
    (* Warm pass: everything served from the cache. *)
    let warm = Analysis.certify_protocol ~ctx sys in
    let oracle = Context.lower_bounds ctx g ~mode ~s:(Some s) in
    if json then begin
      let module J = Util.Json in
      print_json
        (J.Obj
           ([ ("report", Analysis.protocol_report_to_json cold) ]
           @ (match refined with
             | Some cert -> [ ("refined", Delay.Certificate.to_json cert) ]
             | None -> [])
           @ [
               ("warm_identical", J.Bool (cold = warm));
               ("oracle_sound", J.Int oracle.Bounds.Oracle.sound);
               ("cache", Context.stats_json ctx);
               ("metrics", Util.Instrument.metrics_json ());
             ]))
    end
    else begin
      Printf.printf "warm re-analysis identical: %b\n" (cold = warm);
      Printf.printf "oracle sound lower bound: %d rounds\n"
        oracle.Bounds.Oracle.sound;
      Format.printf "%a@." Context.pp_stats ctx;
      if Util.Instrument.enabled () then
        Format.printf "%a@?" Util.Instrument.pp_summary ()
    end
  in
  let fd =
    C.Arg.(value & flag & info [ "full-duplex" ] ~doc:"Full-duplex protocol.")
  in
  C.Cmd.v
    (C.Cmd.info "stats"
       ~doc:
         "Run a certificate workload twice through one shared memoizing \
          context and print cache statistics (and span timings under \
          --trace).")
    C.Term.(
      const run $ setup_term $ family_arg $ degree_arg $ dim_arg $ fd
      $ json_arg)

(* --- faults: slowdown under i.i.d. / permanent / bursty arc faults --- *)

let faults_cmd =
  let run () family d dim full_duplex trials seed model probabilities ks
      p_recover json =
    let g = build_network family d dim in
    let sys = default_systolic g full_duplex in
    let models =
      match model with
      | "iid" -> List.map (fun p -> Simulate.Faults.Iid { p }) probabilities
      | "permanent" ->
          List.map (fun k -> Simulate.Faults.Permanent { k }) ks
      | "bursty" ->
          List.map
            (fun p -> Simulate.Faults.Bursty { p_fail = p; p_recover })
            probabilities
      | other ->
          Printf.eprintf
            "gossip_lab: --model must be iid, permanent or bursty (got %S)\n" other;
          exit 2
    in
    let curve = Simulate.Faults.curve sys ~trials ~models ~seed in
    if json then
      let module J = Util.Json in
      print_json
        (J.Obj
           [
             ("network", J.Str (Topology.Digraph.name g));
             ("period", J.Int (Protocol.Systolic.period sys));
             ("model", J.Str model);
             ("trials", J.Int trials);
             ("seed", J.Int seed);
             ( "curve",
               J.List (List.map Simulate.Faults.curve_point_to_json curve) );
           ])
    else begin
      let param_label = function
        | Simulate.Faults.Iid { p } -> Printf.sprintf "%.2f" p
        | Simulate.Faults.Permanent { k } -> string_of_int k
        | Simulate.Faults.Bursty { p_fail; p_recover } ->
            Printf.sprintf "%.2f/%.2f" p_fail p_recover
      in
      let param_header =
        match model with
        | "permanent" -> "k"
        | "bursty" -> "p_fail/p_rec"
        | _ -> "p"
      in
      let t =
        Util.Table.make
          ~title:
            (Printf.sprintf
               "%s — mean gossip time under %s arc faults (%d trials)"
               (Topology.Digraph.name g) model trials)
          [ param_header; "mean"; "completed" ]
      in
      List.iter
        (fun (pt : Simulate.Faults.curve_point) ->
          Util.Table.add_row t
            [
              param_label pt.Simulate.Faults.cp_model;
              (match pt.Simulate.Faults.cp_mean with
              | Some m -> Printf.sprintf "%.1f" m
              | None -> "DNF");
              Printf.sprintf "%d/%d" pt.Simulate.Faults.cp_completed
                pt.Simulate.Faults.cp_trials;
            ])
        curve;
      Util.Table.print t;
      report ()
    end
  in
  let fd =
    C.Arg.(value & flag & info [ "full-duplex" ] ~doc:"Full-duplex protocol.")
  in
  let trials =
    C.Arg.(
      value & opt int 5
      & info [ "trials" ] ~docv:"N" ~doc:"Trials per curve point.")
  in
  let seed =
    C.Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.")
  in
  let model =
    C.Arg.(
      value & opt string "iid"
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Fault model: $(b,iid) (independent drops with probability p), \
             $(b,permanent) (k arcs fail for the whole run; see --k), or \
             $(b,bursty) (per-arc on/off process: fails with p, recovers \
             with --p-recover).")
  in
  let probabilities =
    C.Arg.(
      value
      & opt (list float) [ 0.0; 0.05; 0.1; 0.2; 0.3 ]
      & info [ "p"; "probabilities" ] ~docv:"P,..."
          ~doc:
            "Comma-separated fault probabilities (drop probability for \
             iid, failure probability for bursty).")
  in
  let ks =
    C.Arg.(
      value
      & opt (list int) [ 0; 1; 2; 4 ]
      & info [ "k" ] ~docv:"K,..."
          ~doc:"Comma-separated failed-arc counts for --model permanent.")
  in
  let p_recover =
    C.Arg.(
      value & opt float 0.1
      & info [ "p-recover" ] ~docv:"P"
          ~doc:"Per-activation recovery probability for --model bursty.")
  in
  C.Cmd.v
    (C.Cmd.info "faults"
       ~doc:
         "Slowdown curve under arc faults — i.i.d. drops, permanent arc \
          failures, or bursty (on/off) losses — with per-point completion \
          counts (non-completing trials are excluded from the mean, so \
          the counts matter).")
    C.Term.(
      const run $ setup_term $ family_arg $ degree_arg $ dim_arg $ fd $ trials
      $ seed $ model $ probabilities $ ks $ p_recover $ json_arg)

(* --- fault-tolerance: certify-faults / harden --- *)

(* Shared plumbing for the fault-tolerance commands: resolve an implicit
   family's natural schedule and apply a hardening transform. *)
let resolve_hardened ~family ~n ~degree ~period ~seed ~full_duplex ~harden ~k =
  match
    Protocol.Schedule.of_family ~family ~n ~degree ~period ~seed ~full_duplex ()
  with
  | Error e -> Error e
  | Ok (_imp, sched) -> (
      match Protocol.Fault_tolerant.harden sched ~transform:harden ~k with
      | Error e -> Error e
      | Ok (hardened, rep) -> Ok (sched, hardened, rep))

let ft_family_arg =
  C.Arg.(
    required
    & opt (some string) None
    & info [ "family" ] ~docv:"FAMILY"
        ~doc:
          "Implicit topology family: one of de-bruijn, kautz, hypercube, \
           torus, cycle, ccc.")

let ft_n_arg =
  C.Arg.(
    value & opt int 12
    & info [ "n"; "nodes" ] ~docv:"N"
        ~doc:
          "Target vertex count; the smallest family instance with at least \
           $(docv) vertices is used.")

let ft_period_arg =
  C.Arg.(
    value & opt int 16
    & info [ "period" ] ~docv:"S"
        ~doc:
          "Schedule period for the proposal-matching families (de Bruijn, \
           Kautz).")

let ft_seed_arg =
  C.Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Seed for both the proposal-matching schedules and the sampled \
           certification mode; verdicts are deterministic per seed.")

let ft_budget_arg =
  C.Arg.(
    value & opt int 512
    & info [ "budget" ] ~docv:"B"
        ~doc:
          "Pattern budget: the C(m, <=k) failure-pattern space is enumerated \
           exhaustively while it fits, otherwise $(docv) seeded samples are \
           drawn and the verdict is statistical.")

let ft_cap_arg =
  C.Arg.(
    value
    & opt (some int) None
    & info [ "cap" ] ~docv:"ROUNDS"
        ~doc:
          "Round budget a faulted run must complete within (default: \
           ceil(slack * fault-free time) + period).")

let ft_slack_arg =
  C.Arg.(
    value & opt float 1.5
    & info [ "slack" ] ~docv:"X"
        ~doc:
          "Allowed slowdown factor over the scheme's own fault-free \
           completion time when --cap is not given.")

let ft_fd_arg =
  C.Arg.(value & flag & info [ "full-duplex" ] ~doc:"Full-duplex schedule.")

let certify_faults_cmd =
  let run () family n d k budget seed period cap slack full_duplex harden json =
    match resolve_hardened ~family ~n ~degree:d ~period ~seed ~full_duplex
            ~harden ~k
    with
    | Error e -> `Error (false, e)
    | Ok (_base, sched, rep) ->
        let ctx = Context.create () in
        let fingerprint = Simulate.Certifier.fingerprint sched in
        let cert_json () =
          Simulate.Certifier.to_json sched
            (Simulate.Certifier.certify ?cap ~slack ~budget sched ~k ~seed)
        in
        let cert =
          Context.fault_certificate ctx ~fingerprint ~k ~seed ~budget
            ~cap:(Option.value ~default:(-1) cap)
            ~compute:cert_json
        in
        if json then
          print_json
            (Util.Json.Obj
               [
                 ("certificate", cert);
                 ("hardening", Protocol.Fault_tolerant.report_to_json rep);
                 ("cache", Context.stats_json ctx);
               ])
        else begin
          let member key = Util.Json.member key cert in
          let int_of key =
            match member key with Some (Util.Json.Int i) -> Some i | _ -> None
          in
          let str_of key =
            match member key with Some (Util.Json.Str s) -> s | _ -> "?"
          in
          Printf.printf "scheme    : %s (n = %d, %s, period %d)\n"
            (Protocol.Schedule.name sched)
            (Protocol.Schedule.n_vertices sched)
            (Protocol.Protocol.mode_to_string (Protocol.Schedule.mode sched))
            (Protocol.Schedule.period sched);
          if rep.Protocol.Fault_tolerant.transform <> "none" then
            Printf.printf
              "hardening : %s (+%d rounds, +%d calls per period)\n"
              rep.Protocol.Fault_tolerant.transform
              rep.Protocol.Fault_tolerant.added_rounds
              rep.Protocol.Fault_tolerant.added_calls;
          Printf.printf "adversary : up to %d of %s arcs failed permanently\n"
            k
            (match int_of "arcs" with
            | Some m -> string_of_int m
            | None -> "?");
          Printf.printf "patterns  : %s / %s checked (%s mode)\n"
            (match int_of "patterns_checked" with
            | Some c -> string_of_int c
            | None -> "?")
            (match int_of "patterns_total" with
            | Some t -> string_of_int t
            | None -> "?")
            (str_of "cert_mode");
          Printf.printf "cap       : %s rounds (fault-free time %s)\n"
            (match int_of "cap" with Some c -> string_of_int c | None -> "?")
            (match int_of "fault_free_time" with
            | Some t -> string_of_int t
            | None -> "DNF");
          (match member "certified" with
          | Some (Util.Json.Bool true) ->
              Printf.printf "verdict   : CERTIFIED (worst completion %s)\n"
                (match int_of "worst_time" with
                | Some w -> Printf.sprintf "%d rounds" w
                | None -> "?")
          | _ ->
              Printf.printf "verdict   : NOT certified\n";
              (match member "counterexample" with
              | Some (Util.Json.Obj _ as cx) ->
                  Printf.printf "  minimal counterexample: %s\n"
                    (match Util.Json.member "pattern" cx with
                    | Some p -> Util.Json.to_string p
                    | None -> "?")
              | _ -> ()));
          report ~ctx ()
        end;
        `Ok ()
  in
  let k_arg =
    C.Arg.(
      value & opt int 1
      & info [ "k" ] ~docv:"K"
          ~doc:"Adversarial failure budget: certify against every pattern of \
                at most $(docv) permanently dead arcs.")
  in
  let harden_arg =
    C.Arg.(
      value & opt string "none"
      & info [ "harden" ] ~docv:"T"
          ~doc:
            "Apply a redundancy transform before certifying: $(b,none), \
             $(b,replicate) (each round repeated k+1 times — transient \
             redundancy only) or $(b,augment) (Chord-style chord rounds — \
             routes around dead arcs).")
  in
  C.Cmd.v
    (C.Cmd.info "certify-faults"
       ~doc:
         "Adversarial fault certification: decide whether gossip still \
          completes (within a round cap) under every pattern of at most K \
          permanently dead arcs, exhaustively while the pattern space fits \
          the budget; emits a gossip-fault-cert/1 artifact and shrinks any \
          counterexample to a minimal one.")
    C.Term.(
      ret
        (const run $ setup_term $ ft_family_arg $ ft_n_arg $ degree_arg $ k_arg
       $ ft_budget_arg $ ft_seed_arg $ ft_period_arg $ ft_cap_arg $ ft_slack_arg
       $ ft_fd_arg $ harden_arg $ json_arg))

let harden_cmd =
  let run () family n d k_max budget seed period slack full_duplex json =
    let transforms_for k = if k = 0 then [ "none" ] else [ "replicate"; "augment" ] in
    let rows = ref [] in
    let err = ref None in
    List.iter
      (fun k ->
        List.iter
          (fun transform ->
            if !err = None then
              match
                resolve_hardened ~family ~n ~degree:d ~period ~seed
                  ~full_duplex ~harden:transform ~k
              with
              | Error e -> err := Some e
              | Ok (_base, sched, rep) ->
                  let v =
                    Simulate.Certifier.certify ~slack ~budget sched ~k ~seed
                  in
                  (* the fault-free reference: the paper's lower bound for
                     the hardened scheme's own network and period *)
                  let g =
                    Topology.Digraph.make
                      ~name:(Protocol.Schedule.name sched)
                      (Protocol.Schedule.n_vertices sched)
                      (Array.to_list (Simulate.Certifier.period_arcs sched))
                  in
                  let oracle =
                    Bounds.Oracle.lower_bounds g
                      ~mode:(Protocol.Schedule.mode sched)
                      ~s:(Some (Protocol.Schedule.period sched))
                  in
                  rows := (k, transform, rep, v, oracle.Bounds.Oracle.sound) :: !rows)
          (transforms_for k))
      (List.init (k_max + 1) (fun k -> k));
    match !err with
    | Some e -> `Error (false, e)
    | None ->
        let rows = List.rev !rows in
        if json then
          print_json
            (Util.Json.Obj
               [
                 ("family", Util.Json.Str family);
                 ("n", Util.Json.Int n);
                 ("seed", Util.Json.Int seed);
                 ("budget", Util.Json.Int budget);
                 ( "rows",
                   Util.Json.List
                     (List.map
                        (fun (k, transform, rep, (v : Simulate.Certifier.verdict),
                              bound) ->
                          Util.Json.Obj
                            [
                              ("k", Util.Json.Int k);
                              ("transform", Util.Json.Str transform);
                              ( "hardening",
                                Protocol.Fault_tolerant.report_to_json rep );
                              ( "fault_free_time",
                                match v.Simulate.Certifier.fault_free_time with
                                | Some t -> Util.Json.Int t
                                | None -> Util.Json.Null );
                              ("bound_sound", Util.Json.Int bound);
                              ( "certified",
                                Util.Json.Bool v.Simulate.Certifier.certified );
                              ( "cert_mode",
                                Util.Json.Str
                                  (match v.Simulate.Certifier.cert_mode with
                                  | Simulate.Certifier.Exhaustive ->
                                      "exhaustive"
                                  | Simulate.Certifier.Sampled -> "sampled") );
                              ( "patterns_checked",
                                Util.Json.Int
                                  v.Simulate.Certifier.patterns_checked );
                            ])
                        rows) );
               ])
        else begin
          let t =
            Util.Table.make
              ~title:
                (Printf.sprintf
                   "%s n=%d — calls vs resilience (budget %d, seed %d)" family
                   n budget seed)
              [
                "k"; "transform"; "period"; "calls"; "+calls"; "+rounds";
                "t0"; "bound"; "certified";
              ]
          in
          List.iter
            (fun (k, transform, (rep : Protocol.Fault_tolerant.report),
                  (v : Simulate.Certifier.verdict), bound) ->
              Util.Table.add_row t
                [
                  string_of_int k;
                  transform;
                  string_of_int rep.Protocol.Fault_tolerant.period;
                  string_of_int rep.Protocol.Fault_tolerant.calls;
                  string_of_int rep.Protocol.Fault_tolerant.added_calls;
                  string_of_int rep.Protocol.Fault_tolerant.added_rounds;
                  (match v.Simulate.Certifier.fault_free_time with
                  | Some t0 -> string_of_int t0
                  | None -> "DNF");
                  string_of_int bound;
                  (if v.Simulate.Certifier.certified then "yes"
                   else
                     match v.Simulate.Certifier.cert_mode with
                     | Simulate.Certifier.Exhaustive -> "NO"
                     | Simulate.Certifier.Sampled -> "NO (sampled)");
                ])
            rows;
          Util.Table.print t;
          print_endline
            "t0: the scheme's own fault-free completion; bound: the paper's \
             sound lower bound for the hardened network and period; \
             certified: survives every <=k-arc failure pattern within the \
             round cap.";
          report ()
        end;
        `Ok ()
  in
  let k_max_arg =
    C.Arg.(
      value & opt int 2
      & info [ "k-max" ] ~docv:"K"
          ~doc:"Chart resilience targets k = 0 .. $(docv).")
  in
  C.Cmd.v
    (C.Cmd.info "harden"
       ~doc:
         "The calls-vs-resilience atlas: for each k and each redundancy \
          transform, what the hardening costs (calls and rounds per period) \
          and whether the hardened scheme certifies against every <=k-arc \
          failure pattern — replication buys transient redundancy but no \
          adversarial resilience; chord augmentation buys both.")
    C.Term.(
      ret
        (const run $ setup_term $ ft_family_arg $ ft_n_arg $ degree_arg
       $ k_max_arg $ ft_budget_arg $ ft_seed_arg $ ft_period_arg $ ft_slack_arg
       $ ft_fd_arg $ json_arg))

(* --- version --- *)

let version_cmd =
  let run () json =
    if json then print_json (Util.Json.Obj [])
    else print_endline Version.string
  in
  C.Cmd.v
    (C.Cmd.info "version" ~doc:"Print the build version.")
    C.Term.(const run $ C.Term.const () $ json_arg)

(* --- info --- *)

let info_cmd =
  let run () family d dim =
    let g = build_network family d dim in
    Format.printf "%a@." Topology.Digraph.pp g;
    Format.printf "diameter: %d@." (Topology.Metrics.diameter g);
    Format.printf "degree parameter d: %d@."
      (Topology.Digraph.degree_parameter g);
    Format.printf "strongly connected: %b@."
      (Topology.Digraph.is_strongly_connected g);
    report ()
  in
  C.Cmd.v (C.Cmd.info "info" ~doc:"Structural facts about a network.")
    C.Term.(const run $ setup_term $ family_arg $ degree_arg $ dim_arg)

let () =
  let doc = "systolic gossip lower-bound laboratory" in
  exit
    (C.Cmd.eval
       (C.Cmd.group (C.Cmd.info "gossip_lab" ~doc ~version:Version.string)
          [
            tables_cmd; analyze_cmd; simulate_cmd; info_cmd; stats_cmd;
            faults_cmd; certify_faults_cmd; harden_cmd; price_cmd; dot_cmd;
            certify_file_cmd; optimal_cmd; broadcast_cmd; version_cmd;
          ]))
