(* gossip_router: one wire endpoint in front of N gossip_served shards.

   Speaks the ordinary newline-delimited JSON protocol and forwards:
   analysis requests are placed by consistent hashing on their
   parameters (so identical queries always hit the same shard's warm
   cache), keyless ops round-robin, metrics/health/stats aggregate
   across the fleet.  Shard liveness comes from the same epidemic
   membership the shards run (lib/cluster); doc/cluster.md has the
   protocol and the drain runbook. *)

open Gossip_serve
open Gossip_cluster
module C = Cmdliner

let run socket tcp_port host node_id advertise join workers queue_capacity
    max_frame_bytes default_timeout_ms vnodes replicas gossip_interval_ms
    suspicion_timeout_ms dead_timeout_ms trace trace_out trace_ring
    trace_sample_rate access_log =
  (match trace_out with
  | Some path -> Core.Util.Instrument.set_trace_file (Some path)
  | None -> ());
  if trace then Core.Util.Instrument.set_enabled true;
  Core.Util.Instrument.set_ring_capacity trace_ring;
  (* every line this process streams names it, so merged fleet traces
     stay attributable *)
  Core.Util.Instrument.set_global_attrs
    [ ("node", Core.Util.Json.Str node_id) ];
  let listen =
    if workers < 1 then `Error (true, "--workers: value must be at least 1")
    else if queue_capacity < 1 then
      `Error (true, "--queue-capacity: value must be at least 1")
    else if vnodes < 1 then `Error (true, "--vnodes: value must be at least 1")
    else if replicas < 1 then
      `Error (true, "--replicas: value must be at least 1")
    else if trace_sample_rate < 0.0 || trace_sample_rate > 1.0 then
      `Error (true, "--trace-sample-rate: value must be in [0,1]")
    else
      match (socket, tcp_port) with
      | Some path, None -> `Ok (Server.Unix_socket path)
      | None, Some port -> `Ok (Server.Tcp (host, port))
      | None, None -> `Ok (Server.Unix_socket "gossip_router.sock")
      | Some _, Some _ -> `Error (true, "--socket and --tcp are exclusive")
  in
  match listen with
  | `Error _ as e -> e
  | `Ok listen -> (
      let addr =
        match advertise with
        | Some a -> a
        | None -> Transport.addr_of_listen listen
      in
      let membership =
        Membership.create ~self:node_id ~addr ~role:"router"
          ~suspicion_timeout_ms ~dead_timeout_ms ~seeds:join ()
      in
      let metrics =
        Metrics.create ~node:node_id ~workers ~queue_capacity ()
      in
      let router =
        Router.create ~membership ~metrics ~vnodes ~replicas
          ~sample_rate:trace_sample_rate ()
      in
      let config =
        {
          (Server.default_config ~listen) with
          Server.workers;
          queue_capacity;
          max_frame_bytes;
          default_timeout_ms;
          access_log;
          (* metrics/health/stats/trace_pull must reach Router.evaluate —
             they aggregate the fleet, not this process *)
          inline_observability = false;
          node = Some node_id;
        }
      in
      match
        Server.create ~metrics ~evaluate:(Router.evaluate router) config
      with
      | exception Unix.Unix_error (err, _, arg) ->
          `Error
            ( false,
              Printf.sprintf "cannot listen on %s: %s"
                (Transport.addr_of_listen listen)
                (Unix.error_message err ^ if arg = "" then "" else " " ^ arg) )
      | server ->
          let stop _ = Server.request_stop server in
          Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
          Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
          Server.start server;
          let transport =
            Transport.create ~policy:Transport.gossip_policy ()
          in
          let gossiper =
            Gossiper.start ~membership ~transport
              ~interval_ms:gossip_interval_ms
              ~stopping:(fun () -> Server.stop_requested server)
              ()
          in
          Printf.eprintf
            "gossip_router %s (%s) listening on %s (%d workers, %d vnodes, %d \
             replicas)\n\
             %!"
            Core.Version.string node_id
            (Transport.addr_of_listen listen)
            workers vnodes replicas;
          Server.join server;
          Gossiper.join gossiper;
          prerr_endline "gossip_router: drained, bye";
          `Ok ())

let term =
  let socket =
    C.Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at $(docv) (the default, at \
                ./gossip_router.sock).")
  in
  let tcp =
    C.Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT" ~doc:"Listen on TCP port $(docv) instead.")
  in
  let host =
    C.Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address for --tcp.")
  in
  let node_id =
    C.Arg.(
      value & opt string "router"
      & info [ "node-id" ] ~docv:"ID"
          ~doc:"This router's cluster-unique member id.")
  in
  let advertise =
    C.Arg.(
      value
      & opt (some string) None
      & info [ "advertise" ] ~docv:"ADDR"
          ~doc:"Address members should dial for this router (default: \
                derived from the listen address).")
  in
  let join =
    C.Arg.(
      value
      & opt_all string []
      & info [ "join" ] ~docv:"ADDR"
          ~doc:"Seed addresses to gossip to until peers are learned; \
                repeatable.  A seedless router still learns every shard \
                that --join's it.")
  in
  let workers =
    C.Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains forwarding requests concurrently.")
  in
  let queue_capacity =
    C.Arg.(
      value & opt int 128
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Bounded request queue length (backpressure).")
  in
  let max_frame_bytes =
    C.Arg.(
      value
      & opt int Wire.default_max_frame_bytes
      & info [ "max-frame-bytes" ] ~docv:"N"
          ~doc:"Reject request frames longer than $(docv) bytes.")
  in
  let default_timeout_ms =
    C.Arg.(
      value
      & opt (some int) None
      & info [ "default-timeout-ms" ] ~docv:"MS"
          ~doc:"Deadline for requests that carry no timeout_ms of their own.")
  in
  let vnodes =
    C.Arg.(
      value & opt int 64
      & info [ "vnodes" ] ~docv:"N"
          ~doc:"Virtual nodes per shard on the consistent-hash ring.")
  in
  let replicas =
    C.Arg.(
      value & opt int 2
      & info [ "replicas" ] ~docv:"K"
          ~doc:"Ring candidates tried per keyed request (failover \
                fan-out).")
  in
  let interval =
    C.Arg.(
      value & opt int 500
      & info [ "gossip-interval-ms" ] ~docv:"MS"
          ~doc:"Membership gossip round interval.")
  in
  let suspicion =
    C.Arg.(
      value & opt int 2_000
      & info [ "suspicion-timeout-ms" ] ~docv:"MS"
          ~doc:"A member unheard-of for $(docv) ms becomes suspect.")
  in
  let dead =
    C.Arg.(
      value & opt int 6_000
      & info [ "dead-timeout-ms" ] ~docv:"MS"
          ~doc:"A member unheard-of for $(docv) ms is declared dead.")
  in
  let trace =
    C.Arg.(
      value & flag
      & info [ "trace" ] ~doc:"Aggregate span timings (GOSSIP_TRACE=1).")
  in
  let trace_out =
    C.Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Stream spans and events as JSON Lines to $(docv).")
  in
  let trace_ring =
    C.Arg.(
      value & opt int 4096
      & info [ "trace-ring" ] ~docv:"N"
          ~doc:"Keep the last $(docv) trace events in memory for the \
                trace_pull operation (0 disables the ring).")
  in
  let trace_sample_rate =
    C.Arg.(
      value & opt float 1.0
      & info [ "trace-sample-rate" ] ~docv:"RATE"
          ~doc:"Head-sample traces minted at this router: the fraction of \
                context-free routed requests that stream spans, decided \
                purely from the trace id so every node agrees.")
  in
  let access_log =
    C.Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:"Append one JSON line per answered request to $(docv).")
  in
  C.Term.(
    ret
      (const run $ socket $ tcp $ host $ node_id $ advertise $ join $ workers
     $ queue_capacity $ max_frame_bytes $ default_timeout_ms $ vnodes
     $ replicas $ interval $ suspicion $ dead $ trace $ trace_out $ trace_ring
     $ trace_sample_rate $ access_log))

let () =
  let doc = "consistent-hashing router over gossip_served shards" in
  exit
    (C.Cmd.eval
       (C.Cmd.v (C.Cmd.info "gossip_router" ~doc ~version:Core.Version.string)
          term))
