(* gossip_served: long-lived concurrent analysis server.

   Serves the library's analyses (tables / bound / simulate / certify /
   stats) over newline-delimited JSON on a Unix-domain or TCP socket,
   evaluating requests on a pool of worker domains that share one
   memoizing Core.Context — repeated queries are cache hits instead of
   cold CLI runs.  Wire schema and semantics: doc/serving.md.

   Subcommands:
     serve     run the daemon (default)
     version   print the build version

   The daemon drains gracefully on SIGTERM/SIGINT or a `shutdown`
   request: stop accepting, answer everything already admitted, exit. *)

open Gossip_serve
module C = Cmdliner

let serve_run socket tcp_port host workers queue_capacity max_frame_bytes
    default_timeout_ms eval_domains trace trace_out trace_ring access_log
    metrics_dump metrics_dump_interval_ms max_heap_mb resource_interval_ms
    chaos_args cluster_args =
  (match trace_out with
  | Some path -> Core.Util.Instrument.set_trace_file (Some path)
  | None -> ());
  if trace then Core.Util.Instrument.set_enabled true;
  Core.Util.Instrument.set_ring_capacity trace_ring;
  (* Parallelism comes from concurrent worker domains; nested parallel
     loops inside one request default to a single domain so [workers]
     requests never oversubscribe the machine. *)
  Core.Util.Parallel.set_default_domains (Some (max 1 eval_domains));
  let listen =
    if workers < 1 then `Error (true, "--workers: value must be at least 1")
    else if queue_capacity < 1 then
      `Error (true, "--queue-capacity: value must be at least 1")
    else if max_frame_bytes < 2 then
      `Error (true, "--max-frame-bytes: value must be at least 2")
    else
      match (socket, tcp_port) with
      | Some path, None -> `Ok (Server.Unix_socket path)
      | None, Some port -> `Ok (Server.Tcp (host, port))
      | None, None -> `Ok (Server.Unix_socket "gossip_served.sock")
      | Some _, Some _ -> `Error (true, "--socket and --tcp are exclusive")
  in
  let chaos =
    let seed, drop, corrupt, delay, delay_ms, panic, disp_lat, disp_lat_ms =
      chaos_args
    in
    match
      Chaos.make ~seed ~drop ~corrupt ~delay ~delay_ms ~panic
        ~dispatch_latency:disp_lat ~dispatch_latency_ms:disp_lat_ms ()
    with
    | chaos -> `Ok chaos
    | exception Invalid_argument msg -> `Error (true, msg)
  in
  match (listen, chaos) with
  | (`Error _ as e), _ -> e
  | _, (`Error _ as e) -> e
  | `Ok listen, `Ok chaos -> (
      let node_id, join, advertise, gossip_interval_ms, suspicion_timeout_ms,
          dead_timeout_ms =
        cluster_args
      in
      (* every streamed trace line names this shard, so merged fleet
         traces stay attributable per line *)
      (match node_id with
      | Some node ->
          Core.Util.Instrument.set_global_attrs
            [ ("node", Core.Util.Json.Str node) ]
      | None -> ());
      let config =
        {
          (Server.default_config ~listen) with
          Server.workers;
          queue_capacity;
          max_frame_bytes;
          default_timeout_ms;
          access_log;
          chaos;
          node = node_id;
        }
      in
      let metrics =
        Metrics.create ?node:node_id ~max_heap_mb ~workers ~queue_capacity ()
      in
      match Server.create ~metrics config with
      | exception Unix.Unix_error (err, _, arg) ->
          `Error
            ( false,
              Printf.sprintf "cannot listen on %s: %s"
                (match listen with
                | Server.Unix_socket p -> p
                | Server.Tcp (h, p) -> Printf.sprintf "%s:%d" h p)
                (Unix.error_message err ^ if arg = "" then "" else " " ^ arg) )
      | server ->
          let stop _ = Server.request_stop server in
          Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
          Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
          Server.start server;
          (* Cluster membership: with --node-id this shard answers the
             gossip/digest/drain ops and rumor-spreads its heartbeat to
             --join seeds (typically the router) until live peers are
             learned.  Routing itself lives in gossip_router; a shard
             only has to stay visible. *)
          let gossiper =
            match node_id with
            | None -> None
            | Some self ->
                let addr =
                  match advertise with
                  | Some a -> a
                  | None -> Gossip_cluster.Transport.addr_of_listen listen
                in
                let membership =
                  Gossip_cluster.Membership.create ~self ~addr ~role:"shard"
                    ~suspicion_timeout_ms ~dead_timeout_ms ~seeds:join ()
                in
                Dispatch.set_cluster_handler (Server.dispatch server)
                  (Gossip_cluster.Membership.handle membership);
                let transport =
                  Gossip_cluster.Transport.create
                    ~policy:Gossip_cluster.Transport.gossip_policy ()
                in
                Some
                  (Gossip_cluster.Gossiper.start ~membership ~transport
                     ~interval_ms:gossip_interval_ms
                     ~stopping:(fun () -> Server.stop_requested server)
                     ())
          in
          (* Background resource sampler: keeps gc.*/proc.* gauges fresh
             and feeds the metrics/health wire ops their live memory
             numbers (the runaway-heap health check reads the latest
             sample). *)
          ignore
            (Core.Util.Resource.start_sampler
               ~interval_ms:resource_interval_ms
               ~on_sample:(Metrics.note_resource metrics)
               ());
          (* Periodic metrics snapshots: write-then-rename so a scraper
             never reads a torn file; one final dump at shutdown so the
             file reflects the whole run. *)
          let dump_metrics path =
            let tmp = path ^ ".tmp" in
            match open_out tmp with
            | exception Sys_error _ -> ()
            | oc ->
                output_string oc
                  (Core.Util.Json.to_string_pretty
                     (Metrics.metrics_json (Server.metrics server)));
                output_char oc '\n';
                close_out oc;
                (try Sys.rename tmp path with Sys_error _ -> ())
          in
          let dumper =
            Option.map
              (fun path ->
                Thread.create
                  (fun () ->
                    let interval =
                      Float.max 0.05
                        (float_of_int metrics_dump_interval_ms /. 1000.0)
                    in
                    while not (Server.stop_requested server) do
                      Thread.delay interval;
                      dump_metrics path
                    done)
                  ())
              metrics_dump
          in
          Printf.eprintf "gossip_served %s listening on %s (%d workers, queue %d)\n%!"
            Core.Version.string
            (match listen with
            | Server.Unix_socket p -> p
            | Server.Tcp (h, p) -> Printf.sprintf "%s:%d" h p)
            config.Server.workers config.Server.queue_capacity;
          (match chaos with
          | Some plan ->
              Printf.eprintf "gossip_served: CHAOS ENABLED (%s)\n%!"
                (Chaos.describe plan)
          | None -> ());
          Server.join server;
          Core.Util.Resource.stop_sampler ();
          (match gossiper with
          | Some g -> Gossip_cluster.Gossiper.join g
          | None -> ());
          (match dumper with Some th -> Thread.join th | None -> ());
          Option.iter dump_metrics metrics_dump;
          prerr_endline "gossip_served: drained, bye";
          `Ok ())

let serve_term =
  let socket =
    C.Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at $(docv) (the default, at \
                ./gossip_served.sock).")
  in
  let tcp =
    C.Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT" ~doc:"Listen on TCP port $(docv) instead.")
  in
  let host =
    C.Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address for --tcp.")
  in
  let workers =
    C.Arg.(
      value
      & opt int (Core.Util.Parallel.recommended_domains ())
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains evaluating requests concurrently.")
  in
  let queue_capacity =
    C.Arg.(
      value & opt int 64
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Bounded request queue length; a full queue answers \
                queue_full immediately (backpressure).")
  in
  let max_frame_bytes =
    C.Arg.(
      value
      & opt int Wire.default_max_frame_bytes
      & info [ "max-frame-bytes" ] ~docv:"N"
          ~doc:"Reject request frames longer than $(docv) bytes.")
  in
  let default_timeout_ms =
    C.Arg.(
      value
      & opt (some int) None
      & info [ "default-timeout-ms" ] ~docv:"MS"
          ~doc:"Deadline for requests that carry no timeout_ms of their own.")
  in
  let eval_domains =
    C.Arg.(
      value & opt int 1
      & info [ "eval-domains" ] ~docv:"N"
          ~doc:"Worker domains available to parallel loops INSIDE one \
                request evaluation (default 1: the pool itself is the \
                parallelism).")
  in
  let trace =
    C.Arg.(
      value & flag
      & info [ "trace" ] ~doc:"Aggregate span timings (GOSSIP_TRACE=1).")
  in
  let trace_out =
    C.Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Stream spans and events as JSON Lines to $(docv).")
  in
  let trace_ring =
    C.Arg.(
      value & opt int 4096
      & info [ "trace-ring" ] ~docv:"N"
          ~doc:"Keep the last $(docv) trace events in memory for the \
                trace_pull operation (0 disables the ring).")
  in
  let access_log =
    C.Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:"Append one JSON line per answered request to $(docv): \
                {ts, req_id, conn, op, status, queue_wait_ms, service_ms, \
                id}.")
  in
  let metrics_dump =
    C.Arg.(
      value
      & opt (some string) None
      & info [ "metrics-dump" ] ~docv:"FILE"
          ~doc:"Periodically write the gossip-metrics/1 snapshot to $(docv) \
                (atomic write-then-rename), plus a final dump at shutdown.")
  in
  let metrics_dump_interval_ms =
    C.Arg.(
      value & opt int 5000
      & info
          [ "metrics-dump-interval-ms" ]
          ~docv:"MS" ~doc:"Interval between --metrics-dump snapshots.")
  in
  let max_heap_mb =
    C.Arg.(
      value & opt float 4096.0
      & info [ "max-heap-mb" ] ~docv:"MB"
          ~doc:"Degrade health once the GC heap exceeds $(docv) MB (a \
                runaway heap will eventually take the process down); 0 \
                disables the check.")
  in
  let resource_interval_ms =
    C.Arg.(
      value & opt int 1000
      & info
          [ "resource-interval-ms" ]
          ~docv:"MS"
          ~doc:"Interval of the background GC/RSS resource sampler feeding \
                the metrics and health operations.")
  in
  (* The chaos flags bundle into one term: they configure a single
     Chaos.make call and stand or fall together. *)
  let chaos_args =
    let p name doc =
      C.Arg.(value & opt float 0.0 & info [ name ] ~docv:"P" ~doc)
    in
    let ms name doc =
      C.Arg.(value & opt int 25 & info [ name ] ~docv:"MS" ~doc)
    in
    let seed =
      C.Arg.(
        value & opt int 0
        & info [ "chaos-seed" ] ~docv:"N"
            ~doc:"Seed for the fault plan; decisions are a pure function \
                  of (seed, req_id), so a run reproduces from its seed.")
    in
    let drop = p "chaos-drop" "Probability a reply is silently dropped." in
    let corrupt =
      p "chaos-corrupt" "Probability a reply frame is corrupted on write."
    in
    let delay = p "chaos-delay" "Probability a reply is delayed." in
    let delay_ms = ms "chaos-delay-ms" "Delay applied by --chaos-delay." in
    let panic =
      p "chaos-panic"
        "Probability the worker domain panics on a request (answered \
         internal_error, then the domain dies and is respawned by the \
         supervisor)."
    in
    let disp_lat =
      p "chaos-dispatch-latency"
        "Probability of an artificial stall before evaluation."
    in
    let disp_lat_ms =
      ms "chaos-dispatch-latency-ms"
        "Stall applied by --chaos-dispatch-latency."
    in
    C.Term.(
      const (fun seed drop corrupt delay delay_ms panic dl dl_ms ->
          (seed, drop, corrupt, delay, delay_ms, panic, dl, dl_ms))
      $ seed $ drop $ corrupt $ delay $ delay_ms $ panic $ disp_lat
      $ disp_lat_ms)
  in
  let cluster_args =
    let node_id =
      C.Arg.(
        value
        & opt (some string) None
        & info [ "node-id" ] ~docv:"ID"
            ~doc:"Join a cluster as shard $(docv): answer the \
                  gossip/digest/drain membership ops and heartbeat to the \
                  --join seeds.  Without it the cluster ops answer \
                  bad_request.")
    in
    let join =
      C.Arg.(
        value
        & opt_all string []
        & info [ "join" ] ~docv:"ADDR"
            ~doc:"Seed addresses (unix:PATH | tcp:HOST:PORT) gossiped to \
                  while no live peer is known; repeatable.  Typically the \
                  router's address.")
    in
    let advertise =
      C.Arg.(
        value
        & opt (some string) None
        & info [ "advertise" ] ~docv:"ADDR"
            ~doc:"Address other members should dial for this process \
                  (default: derived from the listen address).")
    in
    let interval =
      C.Arg.(
        value & opt int 500
        & info [ "gossip-interval-ms" ] ~docv:"MS"
            ~doc:"Membership gossip round interval.")
    in
    let suspicion =
      C.Arg.(
        value & opt int 2_000
        & info [ "suspicion-timeout-ms" ] ~docv:"MS"
            ~doc:"A peer unheard-of for $(docv) ms becomes suspect.")
    in
    let dead =
      C.Arg.(
        value & opt int 6_000
        & info [ "dead-timeout-ms" ] ~docv:"MS"
            ~doc:"A peer unheard-of for $(docv) ms is declared dead.")
    in
    C.Term.(
      const (fun a b c d e f -> (a, b, c, d, e, f))
      $ node_id $ join $ advertise $ interval $ suspicion $ dead)
  in
  C.Term.(
    ret
      (const serve_run $ socket $ tcp $ host $ workers $ queue_capacity
     $ max_frame_bytes $ default_timeout_ms $ eval_domains $ trace $ trace_out
     $ trace_ring $ access_log $ metrics_dump $ metrics_dump_interval_ms
     $ max_heap_mb $ resource_interval_ms $ chaos_args $ cluster_args))

let serve_cmd =
  C.Cmd.v
    (C.Cmd.info "serve" ~doc:"Run the analysis server (default command).")
    serve_term

let version_cmd =
  C.Cmd.v
    (C.Cmd.info "version" ~doc:"Print the build version.")
    C.Term.(const (fun () -> print_endline Core.Version.string) $ const ())

let () =
  let doc = "concurrent systolic-gossip analysis server" in
  exit
    (C.Cmd.eval
       (C.Cmd.group
          ~default:serve_term
          (C.Cmd.info "gossip_served" ~doc ~version:Core.Version.string)
          [ serve_cmd; version_cmd ]))
