(* Fault tolerance of systolic gossip.

   Systolic protocols are oblivious: the same period repeats regardless
   of what was delivered, so a transmission lost to a transient link
   failure is retried by the very same arc s rounds later.  This example
   measures that robustness: drop each arc activation independently with
   probability p and record the mean completion time.  The lower bounds
   of the paper hold a fortiori under failures (failures only remove
   transmissions), so the certified bound stays valid across the whole
   curve.

   Run with:  dune exec examples/fault_tolerance.exe *)

open Core
module Table = Util.Table

let protocols () =
  [
    ("Q5 sweep hd", Protocol.Builders.hypercube_sweep ~dim:5 ~full_duplex:false);
    ("DB(2,5) periodic hd",
     Protocol.Builders.edge_coloring_half_duplex (Topology.Families.de_bruijn 2 5));
    ("C16 rotate", Protocol.Builders.cycle_rotate 16);
    ("grid 6x6 rowcol", Protocol.Builders.grid_rowcol ~rows:6 ~cols:6);
  ]

let probabilities = [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.5 ]

let () =
  let t =
    Table.make
      ~title:
        "Mean gossip time under i.i.d. arc-drop probability p (5 trials each)"
      ("protocol"
      :: List.map (fun p -> Printf.sprintf "p=%.2f" p) probabilities)
  in
  List.iter
    (fun (name, sys) ->
      let curve =
        Simulate.Faults.slowdown_curve sys ~probabilities ~seed:2024
      in
      Table.add_row t
        (name
        :: List.map
             (fun (pt : Simulate.Faults.slowdown_point) ->
               match pt.Simulate.Faults.mean with
               | Some m when pt.Simulate.Faults.completed < pt.Simulate.Faults.trials ->
                   Printf.sprintf "%.1f (%d/%d)" m pt.Simulate.Faults.completed
                     pt.Simulate.Faults.trials
               | Some m -> Printf.sprintf "%.1f" m
               | None -> "DNF")
             curve))
    (protocols ());
  Table.print t;
  print_endline
    "Completion degrades smoothly: at p = 0.2 most protocols only pay a\n\
     small multiple of their fault-free time, because the periodic\n\
     structure retries every link each period.  The certified lower\n\
     bounds remain valid at every p (faults only remove transmissions).";
  (* sanity: the certificate still holds under faults *)
  let sys = Protocol.Builders.hypercube_sweep ~dim:5 ~full_duplex:false in
  let base = Option.get (Simulate.Engine.gossip_time sys) in
  let dg = Delay.Delay_digraph.of_systolic sys ~length:base in
  let cert =
    Delay.Certificate.certify ~refine:true dg
      ~mode:Protocol.Protocol.Half_duplex
  in
  let faulty =
    Simulate.Faults.gossip_time_with_faults sys ~drop_probability:0.3 ~seed:1
  in
  Format.printf
    "@.Q5: certified >= %d; fault-free %d rounds; with p = 0.3 drops: %s (%d/%d activations dropped)@."
    cert.Delay.Certificate.bound base
    (match faulty.Simulate.Faults.completed_at with
    | Some v -> string_of_int v
    | None -> "DNF")
    faulty.Simulate.Faults.drops faulty.Simulate.Faults.activations
