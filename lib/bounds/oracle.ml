module Digraph = Gossip_topology.Digraph
module Metrics = Gossip_topology.Metrics
module Protocol = Gossip_protocol.Protocol

type t = {
  sound : int;
  diameter : int;
  doubling : int;
  two_systolic : int option;
  asymptotic_general : float;
  asymptotic_refined : float option;
}

let lower_bounds ?family ?diameter g ~mode ~s =
  let n = Digraph.n_vertices g in
  let diameter =
    match diameter with Some d -> d | None -> Metrics.diameter g
  in
  let doubling = Broadcast.trivial ~n in
  let two_systolic = if s = Some 2 then Some (n - 1) else None in
  let logn = Gossip_util.Numeric.log2 (float_of_int n) in
  let asymptotic_general =
    match (mode, s) with
    | (Protocol.Directed | Protocol.Half_duplex), Some s when s >= 3 ->
        General.e s *. logn
    | (Protocol.Directed | Protocol.Half_duplex), _ -> General.e_inf *. logn
    | Protocol.Full_duplex, Some s when s >= 3 -> General.e_fd s *. logn
    | Protocol.Full_duplex, _ -> General.e_fd_inf *. logn
  in
  let asymptotic_refined =
    match Option.bind family Catalog.find with
    | None -> None
    | Some f ->
        let alpha = f.Catalog.alpha and ell = f.Catalog.ell in
        let v =
          match (mode, s) with
          | (Protocol.Directed | Protocol.Half_duplex), Some s when s >= 3 ->
              Separator_bounds.e_half_duplex ~alpha ~ell ~s
          | (Protocol.Directed | Protocol.Half_duplex), _ ->
              Separator_bounds.e_half_duplex_inf ~alpha ~ell
          | Protocol.Full_duplex, Some s when s >= 3 ->
              Separator_bounds.e_full_duplex ~alpha ~ell ~s
          | Protocol.Full_duplex, _ ->
              Separator_bounds.e_full_duplex_inf ~alpha ~ell
        in
        Some (Float.max v (asymptotic_general /. logn) *. logn)
  in
  let sound =
    List.fold_left max 0
      (diameter :: doubling :: (match two_systolic with Some b -> [ b ] | None -> []))
  in
  { sound; diameter; doubling; two_systolic; asymptotic_general; asymptotic_refined }
