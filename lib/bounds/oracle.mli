(** Combined lower-bound oracle for one concrete network.

    Gathers everything the theory offers for a given network, mode and
    systolic period into one answer, separating what is {e sound at
    finite n} (usable against a measured gossip time) from the
    {e asymptotic main terms} (the table values, which carry
    [-O(log log n)] / [(1 - o(1))] corrections):

    sound at finite n:
    - the diameter (some item must travel it);
    - [⌈log₂ n⌉] in full-duplex mode (knowledge at most doubles per
      round; in half-duplex/directed mode a vertex can still only
      {e send} to one neighbour, and the same doubling argument applies
      to the set of vertices knowing a fixed item — so it is sound in all
      modes);
    - [n - 1] when [s = 2] (the paper's remark in Section 4: the arcs of
      [A1 ∪ A2] must form a directed cycle);

    asymptotic main terms:
    - the general [e(s)·log n] (Corollary 4.4 / Section 6);
    - the separator-refined value when the network belongs to a catalog
      family (Theorem 5.1). *)

type t = {
  sound : int;  (** max of the finite-n-sound bounds *)
  diameter : int;
  doubling : int;  (** [⌈log₂ n⌉] *)
  two_systolic : int option;  (** [n - 1], present only when [s = 2] *)
  asymptotic_general : float;  (** [e(s)·log n] (or non-systolic for None) *)
  asymptotic_refined : float option;
      (** separator-refined main term when [g] matches a catalog family *)
}

(** [lower_bounds ?family ?diameter g ~mode ~s] — [s = None] means
    non-systolic ([s → ∞]); [family] optionally names a catalog row
    (e.g. ["DB(2,D)"]) whose ⟨α, l⟩ should be applied.  [diameter], when
    supplied (e.g. from a memoizing {e analysis context} that already
    swept the network), is trusted instead of re-running the BFS sweep —
    the returned bounds are identical either way. *)
val lower_bounds :
  ?family:string ->
  ?diameter:int ->
  Gossip_topology.Digraph.t ->
  mode:Gossip_protocol.Protocol.mode ->
  s:int option ->
  t
