module Parallel = Gossip_util.Parallel
module Instrument = Gossip_util.Instrument
module Json = Gossip_util.Json

type fig4_row = { s : int; lambda : float; e : float }

(* Each family row (and each fig4 period) is an independent closed-form
   computation — root solves and separator formulas — so the tables map
   over them in parallel, preserving order.  The span is tagged with the
   row count plus any table-specific parameters, so a trace identifies
   which table instance produced which timings. *)
let parallel_rows ?(attrs = []) name f items =
  let attrs = ("rows", Json.Int (List.length items)) :: attrs in
  Instrument.span name ~attrs (fun () ->
      Array.to_list (Parallel.map f (Array.of_list items)))

let fig4 ~s_max =
  if s_max < 3 then invalid_arg "Tables.fig4: s_max must be >= 3";
  parallel_rows "bounds.fig4"
    ~attrs:[ ("s_max", Json.Int s_max) ]
    (fun s -> { s; lambda = General.lambda_star s; e = General.e s })
    (List.init (s_max - 2) (fun i -> i + 3))

let fig4_inf = { s = max_int; lambda = General.lambda_star_inf; e = General.e_inf }

type cell = { value : float; general : float; improves : bool }

type family_row = { key : string; cells : (int * cell) list }

let cell_of ~separator_value ~general =
  {
    value = Float.max separator_value general;
    general;
    improves = separator_value > general +. 1e-9;
  }

let ss_attr ss = ("ss", Json.List (List.map (fun s -> Json.Int s) ss))

let fig5 ~ss =
  parallel_rows "bounds.fig5"
    ~attrs:[ ss_attr ss ]
    (fun (f : Catalog.t) ->
      let cells =
        List.map
          (fun s ->
            let sep =
              Separator_bounds.e_half_duplex ~alpha:f.Catalog.alpha
                ~ell:f.Catalog.ell ~s
            in
            (s, cell_of ~separator_value:sep ~general:(General.e s)))
          ss
      in
      { key = f.Catalog.key; cells })
    Catalog.families

type fig6_row = {
  key : string;
  separator_value : float;
  baseline : float;
  diameter_coeff : float;
  best : float;
}

let fig6 () =
  parallel_rows "bounds.fig6"
    (fun (f : Catalog.t) ->
      let sep =
        Separator_bounds.e_half_duplex_inf ~alpha:f.Catalog.alpha
          ~ell:f.Catalog.ell
      in
      let baseline = General.e_inf in
      {
        key = f.Catalog.key;
        separator_value = sep;
        baseline;
        diameter_coeff = f.Catalog.diameter_coeff;
        best = Float.max sep (Float.max baseline f.Catalog.diameter_coeff);
      })
    Catalog.families

let fig8 ~ss =
  parallel_rows "bounds.fig8"
    ~attrs:[ ss_attr ss ]
    (fun (f : Catalog.t) ->
      let cells =
        List.map
          (fun s ->
            let sep =
              Separator_bounds.e_full_duplex ~alpha:f.Catalog.alpha
                ~ell:f.Catalog.ell ~s
            in
            (s, cell_of ~separator_value:sep ~general:(General.e_fd s)))
          ss
      in
      { key = f.Catalog.key; cells })
    Catalog.undirected_families

let fig8_general ~ss = List.map (fun s -> (s, General.e_fd s)) ss

let fig8_inf () =
  parallel_rows "bounds.fig8-inf"
    (fun (f : Catalog.t) ->
      let sep =
        Separator_bounds.e_full_duplex_inf ~alpha:f.Catalog.alpha
          ~ell:f.Catalog.ell
      in
      let baseline = General.e_fd_inf in
      {
        key = f.Catalog.key;
        separator_value = sep;
        baseline;
        diameter_coeff = f.Catalog.diameter_coeff;
        best = Float.max sep (Float.max baseline f.Catalog.diameter_coeff);
      })
    Catalog.undirected_families

let fig5_extended ~ds ~ss =
  let log2 = Gossip_util.Numeric.log2 in
  let shapes d =
    let ld = log2 (float_of_int d) in
    [
      (Printf.sprintf "BF(%d,D)" d, ld /. 2.0, 2.0 /. ld);
      (Printf.sprintf "WBF(%d,D)" d, 2.0 *. ld /. 3.0, 3.0 /. (2.0 *. ld));
      (Printf.sprintf "DB(%d,D)" d, ld, 1.0 /. ld);
    ]
  in
  parallel_rows "bounds.fig5-extended"
    ~attrs:
      [
        ("ds", Json.List (List.map (fun d -> Json.Int d) ds)); ss_attr ss;
      ]
    (fun (key, alpha, ell) ->
      let cells =
        List.map
          (fun s ->
            let sep = Separator_bounds.e_half_duplex ~alpha ~ell ~s in
            (s, cell_of ~separator_value:sep ~general:(General.e s)))
          ss
      in
      { key; cells })
    (List.concat_map shapes ds)

(* Machine-readable form of the tables above, one sub-object per figure.
   Fig. 4's infinite-period row keeps [s = max_int] internally but is
   exported under its own "inf" key so consumers never see the sentinel. *)

let fig4_row_json r =
  Json.Obj
    [ ("s", Json.Int r.s); ("lambda", Json.Float r.lambda); ("e", Json.Float r.e) ]

let cell_json (s, c) =
  Json.Obj
    [
      ("s", Json.Int s);
      ("value", Json.Float c.value);
      ("general", Json.Float c.general);
      ("improves", Json.Bool c.improves);
    ]

let family_row_json (r : family_row) =
  Json.Obj
    [ ("key", Json.Str r.key); ("cells", Json.List (List.map cell_json r.cells)) ]

let fig6_row_json (r : fig6_row) =
  Json.Obj
    [
      ("key", Json.Str r.key);
      ("separator", Json.Float r.separator_value);
      ("baseline", Json.Float r.baseline);
      ("diameter_coeff", Json.Float r.diameter_coeff);
      ("best", Json.Float r.best);
    ]

let to_json ?(s_max = 8) ?(ss = [ 3; 4; 5; 6; 7; 8 ]) () =
  Json.Obj
    [
      ( "fig4",
        Json.Obj
          [
            ("rows", Json.List (List.map fig4_row_json (fig4 ~s_max)));
            ( "inf",
              Json.Obj
                [
                  ("lambda", Json.Float fig4_inf.lambda);
                  ("e", Json.Float fig4_inf.e);
                ] );
          ] );
      ("fig5", Json.List (List.map family_row_json (fig5 ~ss)));
      ("fig6", Json.List (List.map fig6_row_json (fig6 ())));
      ("fig8", Json.List (List.map family_row_json (fig8 ~ss)));
      ( "fig8_general",
        Json.List
          (List.map
             (fun (s, e) ->
               Json.Obj [ ("s", Json.Int s); ("e", Json.Float e) ])
             (fig8_general ~ss)) );
      ("fig8_inf", Json.List (List.map fig6_row_json (fig8_inf ())));
    ]
