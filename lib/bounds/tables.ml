module Parallel = Gossip_util.Parallel
module Instrument = Gossip_util.Instrument

type fig4_row = { s : int; lambda : float; e : float }

(* Each family row (and each fig4 period) is an independent closed-form
   computation — root solves and separator formulas — so the tables map
   over them in parallel, preserving order. *)
let parallel_rows name f items =
  Instrument.span name (fun () ->
      Array.to_list (Parallel.map f (Array.of_list items)))

let fig4 ~s_max =
  if s_max < 3 then invalid_arg "Tables.fig4: s_max must be >= 3";
  parallel_rows "bounds.fig4"
    (fun s -> { s; lambda = General.lambda_star s; e = General.e s })
    (List.init (s_max - 2) (fun i -> i + 3))

let fig4_inf = { s = max_int; lambda = General.lambda_star_inf; e = General.e_inf }

type cell = { value : float; general : float; improves : bool }

type family_row = { key : string; cells : (int * cell) list }

let cell_of ~separator_value ~general =
  {
    value = Float.max separator_value general;
    general;
    improves = separator_value > general +. 1e-9;
  }

let fig5 ~ss =
  parallel_rows "bounds.fig5"
    (fun (f : Catalog.t) ->
      let cells =
        List.map
          (fun s ->
            let sep =
              Separator_bounds.e_half_duplex ~alpha:f.Catalog.alpha
                ~ell:f.Catalog.ell ~s
            in
            (s, cell_of ~separator_value:sep ~general:(General.e s)))
          ss
      in
      { key = f.Catalog.key; cells })
    Catalog.families

type fig6_row = {
  key : string;
  separator_value : float;
  baseline : float;
  diameter_coeff : float;
  best : float;
}

let fig6 () =
  parallel_rows "bounds.fig6"
    (fun (f : Catalog.t) ->
      let sep =
        Separator_bounds.e_half_duplex_inf ~alpha:f.Catalog.alpha
          ~ell:f.Catalog.ell
      in
      let baseline = General.e_inf in
      {
        key = f.Catalog.key;
        separator_value = sep;
        baseline;
        diameter_coeff = f.Catalog.diameter_coeff;
        best = Float.max sep (Float.max baseline f.Catalog.diameter_coeff);
      })
    Catalog.families

let fig8 ~ss =
  parallel_rows "bounds.fig8"
    (fun (f : Catalog.t) ->
      let cells =
        List.map
          (fun s ->
            let sep =
              Separator_bounds.e_full_duplex ~alpha:f.Catalog.alpha
                ~ell:f.Catalog.ell ~s
            in
            (s, cell_of ~separator_value:sep ~general:(General.e_fd s)))
          ss
      in
      { key = f.Catalog.key; cells })
    Catalog.undirected_families

let fig8_general ~ss = List.map (fun s -> (s, General.e_fd s)) ss

let fig8_inf () =
  parallel_rows "bounds.fig8-inf"
    (fun (f : Catalog.t) ->
      let sep =
        Separator_bounds.e_full_duplex_inf ~alpha:f.Catalog.alpha
          ~ell:f.Catalog.ell
      in
      let baseline = General.e_fd_inf in
      {
        key = f.Catalog.key;
        separator_value = sep;
        baseline;
        diameter_coeff = f.Catalog.diameter_coeff;
        best = Float.max sep (Float.max baseline f.Catalog.diameter_coeff);
      })
    Catalog.undirected_families

let fig5_extended ~ds ~ss =
  let log2 = Gossip_util.Numeric.log2 in
  let shapes d =
    let ld = log2 (float_of_int d) in
    [
      (Printf.sprintf "BF(%d,D)" d, ld /. 2.0, 2.0 /. ld);
      (Printf.sprintf "WBF(%d,D)" d, 2.0 *. ld /. 3.0, 3.0 /. (2.0 *. ld));
      (Printf.sprintf "DB(%d,D)" d, ld, 1.0 /. ld);
    ]
  in
  parallel_rows "bounds.fig5-extended"
    (fun (key, alpha, ell) ->
      let cells =
        List.map
          (fun s ->
            let sep = Separator_bounds.e_half_duplex ~alpha ~ell ~s in
            (s, cell_of ~separator_value:sep ~general:(General.e s)))
          ss
      in
      { key; cells })
    (List.concat_map shapes ds)
