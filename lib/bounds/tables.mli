(** Structured data for every numeric table of the paper.

    The benchmark harness renders these; the tests pin the values the
    paper states explicitly (Fig. 4's row, the spot values of Sections 1
    and 5, the broadcasting constants of Fig. 8's general column). *)

(** One row of Fig. 4: systolic period, the root λ of
    [λ·sqrt(p⌈s/2⌉)·sqrt(p⌊s/2⌋) = 1], and [e(s)]. *)
type fig4_row = { s : int; lambda : float; e : float }

(** [fig4 ~s_max] — rows for [s = 3 .. s_max]; {!fig4_inf} the [s → ∞]
    row ([λ = 1/φ], [e = 1.4404]).  Every table in this module computes
    its rows in parallel over families/periods (worker count from
    {!Gossip_util.Parallel.recommended_domains}, i.e. the process-wide
    [--domains] knob); rows are independent closed-form computations and
    output order is preserved. *)
val fig4 : s_max:int -> fig4_row list

val fig4_inf : fig4_row

(** A cell of the per-family tables: the separator value, the general
    value at the same [s], and whether the separator improves on it (the
    paper stars cells that do not). *)
type cell = { value : float; general : float; improves : bool }

(** One family row of Fig. 5 (half-duplex systolic) / Fig. 8
    (full-duplex systolic). *)
type family_row = { key : string; cells : (int * cell) list }

(** [fig5 ~ss] — Theorem 5.1 values for every catalog family at each
    period in [ss]; cell value is [max(separator, general)]. *)
val fig5 : ss:int list -> family_row list

(** One row of Fig. 6 (non-systolic, half-duplex): family, the
    [s → ∞] separator bound, the 1.4404 baseline, the diameter
    coefficient, and the best of the three. *)
type fig6_row = {
  key : string;
  separator_value : float;
  baseline : float;
  diameter_coeff : float;
  best : float;
}

val fig6 : unit -> fig6_row list

(** [fig8 ~ss] — full-duplex systolic values for the symmetric families;
    the general column equals the broadcasting constants c(d). *)
val fig8 : ss:int list -> family_row list

(** [fig8_general ~ss] — the full-duplex general column
    [(s, e_fd s)] list. *)
val fig8_general : ss:int list -> (int * float) list

(** One row of Fig. 6's full-duplex analogue (non-systolic full-duplex,
    the [s → ∞] rows of Fig. 8). *)
val fig8_inf : unit -> fig6_row list

(** [fig5_extended ~ds ~ss] — the half-duplex Theorem 5.1 values for
    arbitrary degrees using the published ⟨α, l⟩ formulas of Lemma 3.1
    (no concrete instance needed).  The paper remarks that for [d = 4, 5]
    a slight improvement over the general bound appears for [s > 8];
    this table exhibits it. Row keys are as in {!fig5}. *)
val fig5_extended : ds:int list -> ss:int list -> family_row list

(** [to_json ?s_max ?ss ()] — every table above as one JSON object
    [{fig4: {rows, inf}, fig5, fig6, fig8, fig8_general, fig8_inf}],
    the machine-readable form behind [gossip_lab tables --json].
    [s_max] (default 8) bounds Fig. 4's periods, [ss] (default
    [[3; 4; 5; 6; 7; 8]], all must be [>= 3]) selects the periods of
    the per-family tables. *)
val to_json : ?s_max:int -> ?ss:int list -> unit -> Gossip_util.Json.t
