module Instrument = Gossip_util.Instrument

type t = {
  thread : Thread.t;
  tick_count : int Atomic.t;
}

let start ~membership ~transport ?(interval_ms = 500) ~stopping () =
  if interval_ms < 1 then
    invalid_arg "Gossiper.start: interval_ms must be >= 1";
  let tick_count = Atomic.make 0 in
  let thread =
    Thread.create
      (fun () ->
        let interval_s = float_of_int interval_ms /. 1000.0 in
        while not (stopping ()) do
          (try
             Membership.tick membership ~call:(fun addr op ->
                 Transport.call transport addr op)
           with _ -> Instrument.add "cluster.tick_errors" 1);
          Atomic.incr tick_count;
          (* sleep in slices so shutdown never waits a whole interval *)
          let remaining = ref interval_s in
          while !remaining > 0.0 && not (stopping ()) do
            let slice = Float.min 0.05 !remaining in
            Thread.delay slice;
            remaining := !remaining -. slice
          done
        done)
      ()
  in
  { thread; tick_count }

let ticks t = Atomic.get t.tick_count
let join t = Thread.join t.thread
