(** The background thread that keeps membership alive.

    One gossiper runs {!Membership.tick} every [interval_ms] over a
    {!Transport} until [stopping ()] turns true — shards and the router
    share this loop verbatim.  The sleep is chopped fine so a stop
    request is honored within ~50 ms, and a tick that throws is
    survived and counted (["cluster.tick_errors"]): a transport bug
    must not silence the failure detector. *)

type t

(** [start ~membership ~transport ~stopping ()] — spawn the loop
    ([interval_ms] default 500). *)
val start :
  membership:Membership.t ->
  transport:Transport.t ->
  ?interval_ms:int ->
  stopping:(unit -> bool) ->
  unit ->
  t

(** Number of completed ticks (a progress probe for tests). *)
val ticks : t -> int

(** Block until the loop has observed [stopping] and exited. *)
val join : t -> unit
