module Json = Gossip_util.Json
module Instrument = Gossip_util.Instrument
module Prng = Gossip_util.Prng
module Wire = Gossip_serve.Wire

type status = Alive | Suspect | Draining | Dead

let status_to_string = function
  | Alive -> "alive"
  | Suspect -> "suspect"
  | Draining -> "draining"
  | Dead -> "dead"

let status_of_string = function
  | "alive" -> Some Alive
  | "suspect" -> Some Suspect
  | "draining" -> Some Draining
  | "dead" -> Some Dead
  | _ -> None

let severity = function Alive -> 0 | Suspect -> 1 | Draining -> 2 | Dead -> 3

type entry = {
  node : string;
  addr : string;
  role : string;
  version : string;
  incarnation : int;
  heartbeat : int;
  status : status;
}

(* Lexicographic freshness, severity as the tiebreak: the one total
   order everything else (suspicion spread, refutation, drain
   dominance) falls out of. *)
let supersedes a b =
  if a.incarnation <> b.incarnation then a.incarnation > b.incarnation
  else if a.heartbeat <> b.heartbeat then a.heartbeat > b.heartbeat
  else severity a.status > severity b.status

(* Local bookkeeping per entry: when fresh evidence last won here. *)
type slot = { e : entry; seen_ns : int64 }

type t = {
  self_id : string;
  clock : unit -> int64;
  rng : Prng.t;
  fanout : int;
  suspicion_timeout_ms : int;
  dead_timeout_ms : int;
  seeds : string list;
  mu : Mutex.t;
  table : (string, slot) Hashtbl.t;
  mutable gen : int;  (* structural-change counter *)
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let create ~self ~addr ~role ?(version = Core.Version.string) ?clock ?(seed = 0)
    ?(fanout = 2) ?(suspicion_timeout_ms = 2_000) ?(dead_timeout_ms = 6_000)
    ?(seeds = []) () =
  if fanout < 1 then invalid_arg "Membership.create: fanout must be >= 1";
  if suspicion_timeout_ms < 1 || dead_timeout_ms < suspicion_timeout_ms then
    invalid_arg
      "Membership.create: need 1 <= suspicion_timeout_ms <= dead_timeout_ms";
  let clock = match clock with Some c -> c | None -> Instrument.now_ns in
  let t =
    {
      self_id = self;
      clock;
      rng = Prng.create seed;
      fanout;
      suspicion_timeout_ms;
      dead_timeout_ms;
      seeds = List.filter (fun a -> a <> addr) seeds;
      mu = Mutex.create ();
      table = Hashtbl.create 16;
      gen = 0;
    }
  in
  Hashtbl.replace t.table self
    {
      e =
        {
          node = self;
          addr;
          role;
          version;
          incarnation = 1;
          heartbeat = 0;
          status = Alive;
        };
      seen_ns = clock ();
    };
  t

let self t = t.self_id

let entries t =
  locked t (fun () ->
      Hashtbl.fold (fun _ s acc -> s.e :: acc) t.table []
      |> List.sort (fun a b -> compare a.node b.node))

let find t node =
  locked t (fun () -> Option.map (fun s -> s.e) (Hashtbl.find_opt t.table node))

let generation t = locked t (fun () -> t.gen)

(* Caller holds the mutex. *)
let self_slot_locked t =
  match Hashtbl.find_opt t.table t.self_id with
  | Some s -> s
  | None -> assert false (* self is inserted at create and never removed *)

let heartbeat t =
  locked t (fun () ->
      let s = self_slot_locked t in
      Hashtbl.replace t.table t.self_id
        {
          e = { s.e with heartbeat = s.e.heartbeat + 1 };
          seen_ns = t.clock ();
        })

(* Structural = anything the router's ring or the digest can see. *)
let structural_change a b =
  a.status <> b.status || a.incarnation <> b.incarnation || a.addr <> b.addr
  || a.role <> b.role || a.version <> b.version

(* Caller holds the mutex.  One remote copy [r] folds in; returns
   whether the local table changed. *)
let merge_one_locked t r =
  if r.node = t.self_id then begin
    (* Somebody else's opinion of us.  If it is at least as fresh as
       our own record and worse than what we claim, we cannot out-wait
       it — out-rank it: bump the incarnation (SWIM refutation).  A
       self-requested drain is not a rumor to refute. *)
    let s = self_slot_locked t in
    let own = s.e in
    if
      (not (supersedes own r))
      && severity r.status > severity own.status
      && own.status <> Draining
    then begin
      Hashtbl.replace t.table t.self_id
        {
          e = { own with incarnation = max own.incarnation r.incarnation + 1 };
          seen_ns = t.clock ();
        };
      t.gen <- t.gen + 1;
      true
    end
    else false
  end
  else
    match Hashtbl.find_opt t.table r.node with
    | None ->
        Hashtbl.replace t.table r.node { e = r; seen_ns = t.clock () };
        t.gen <- t.gen + 1;
        true
    | Some cur when supersedes r cur.e ->
        Hashtbl.replace t.table r.node { e = r; seen_ns = t.clock () };
        if structural_change r cur.e then t.gen <- t.gen + 1;
        true
    | Some _ -> false

let merge t remote =
  locked t (fun () ->
      List.fold_left
        (fun n r -> if merge_one_locked t r then n + 1 else n)
        0 remote)

let apply_timeouts t =
  locked t (fun () ->
      let now = t.clock () in
      let overdue seen ms =
        Int64.compare (Int64.sub now seen) (Int64.of_int (ms * 1_000_000)) > 0
      in
      Hashtbl.iter
        (fun node s ->
          if node <> t.self_id then
            let next =
              match s.e.status with
              | Alive when overdue s.seen_ns t.dead_timeout_ms -> Some Dead
              | Alive when overdue s.seen_ns t.suspicion_timeout_ms ->
                  Some Suspect
              | (Suspect | Draining) when overdue s.seen_ns t.dead_timeout_ms ->
                  Some Dead
              | _ -> None
            in
            match next with
            | None -> ()
            | Some status ->
                (* local verdicts keep the entry's (inc, hb): the rumor
                   spreads on the severity tiebreak and any fresher
                   heartbeat from the node itself refutes it *)
                Hashtbl.replace t.table node
                  { s with e = { s.e with status } };
                t.gen <- t.gen + 1)
        t.table)

let start_drain t =
  locked t (fun () ->
      let s = self_slot_locked t in
      if s.e.status <> Draining then begin
        Hashtbl.replace t.table t.self_id
          {
            e =
              {
                s.e with
                status = Draining;
                incarnation = s.e.incarnation + 1;
              };
            seen_ns = t.clock ();
          };
        t.gen <- t.gen + 1
      end)

let draining t =
  locked t (fun () -> (self_slot_locked t).e.status = Draining)

(* Heartbeat-independent: covers exactly what [structural_change]
   watches, so converged tables agree on it while heartbeats churn. *)
let digest_locked t =
  let lines =
    Hashtbl.fold
      (fun _ s acc ->
        Printf.sprintf "%s|%d|%s|%s|%s|%s" s.e.node s.e.incarnation
          (status_to_string s.e.status)
          s.e.addr s.e.role s.e.version
        :: acc)
      t.table []
    |> List.sort compare
  in
  let h =
    List.fold_left
      (fun h line -> Ring.hash64 (Printf.sprintf "%Lx\n%s" h line))
      0L lines
  in
  Printf.sprintf "%016Lx" h

let digest t = locked t (fun () -> digest_locked t)

let entry_json e =
  Json.Obj
    [
      ("node", Json.Str e.node);
      ("addr", Json.Str e.addr);
      ("role", Json.Str e.role);
      ("version", Json.Str e.version);
      ("inc", Json.Int e.incarnation);
      ("hb", Json.Int e.heartbeat);
      ("status", Json.Str (status_to_string e.status));
    ]

let entry_of_json j =
  let str k =
    match Json.member k j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "entry: missing or non-string %S" k)
  in
  let int k =
    match Json.member k j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "entry: missing or non-integer %S" k)
  in
  let ( let* ) = Result.bind in
  let* node = str "node" in
  let* addr = str "addr" in
  let* role = str "role" in
  let* version = str "version" in
  let* incarnation = int "inc" in
  let* heartbeat = int "hb" in
  let* status_s = str "status" in
  match status_of_string status_s with
  | None -> Error (Printf.sprintf "entry: unknown status %S" status_s)
  | Some status ->
      Ok { node; addr; role; version; incarnation; heartbeat; status }

let view_json_of t entries =
  locked t (fun () ->
      Json.Obj
        [
          ("schema", Json.Str "gossip-view/1");
          ("from", Json.Str t.self_id);
          ("digest", Json.Str (digest_locked t));
          ("entries", Json.List (List.map entry_json (entries ())));
        ])

let view_json t =
  view_json_of t (fun () ->
      Hashtbl.fold (fun _ s acc -> s.e :: acc) t.table []
      |> List.sort (fun a b -> compare a.node b.node))

let self_view_json t =
  view_json_of t (fun () -> [ (self_slot_locked t).e ])

let entries_of_view j =
  match Json.member "entries" j with
  | Some (Json.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match entry_of_json item with
            | Ok e -> go (e :: acc) rest
            | Error _ as e -> e)
      in
      go [] items
  | _ -> Error "view: missing \"entries\" array"

let digest_json t =
  Json.Obj
    [
      ("schema", Json.Str "gossip-digest/1");
      ("node", Json.Str t.self_id);
      ("digest", Json.Str (digest t));
      ("nodes", Json.Int (List.length (entries t)));
    ]

let handle t (op : Wire.op) =
  match op with
  | Wire.Mem_digest -> Ok (digest_json t)
  | Wire.Gossip { view } -> (
      match entries_of_view view with
      | Error e -> Error e
      | Ok remote ->
          ignore (merge t remote);
          Instrument.add "cluster.gossip_received" 1;
          (* converged (sender's digest now equals ours): answer just
             our heartbeat; otherwise pull them up with the full table *)
          let sender_digest =
            match Json.member "digest" view with
            | Some (Json.Str d) -> Some d
            | _ -> None
          in
          if sender_digest = Some (digest t) then Ok (self_view_json t)
          else Ok (view_json t))
  | Wire.Drain { node } -> (
      match node with
      | None -> (
          start_drain t;
          Ok (view_json t))
      | Some n when n = t.self_id ->
          start_drain t;
          Ok (view_json t)
      | Some n ->
          Error
            (Printf.sprintf "drain: this node is %S, not %S" t.self_id n))
  | _ -> Error "not a cluster operation"

(* Gossip targets for one round: live peers, or the bootstrap seeds
   while we know nobody.  Chosen with the owned Prng — deterministic
   under a fixed seed. *)
let pick_targets t =
  locked t (fun () ->
      let peers =
        Hashtbl.fold
          (fun node s acc ->
            if node <> t.self_id && s.e.status <> Dead && s.e.addr <> "" then
              s.e.addr :: acc
            else acc)
          t.table []
        |> List.sort compare
      in
      let pool = if peers = [] then t.seeds else peers in
      let arr = Array.of_list pool in
      Prng.shuffle t.rng arr;
      Array.to_list (Array.sub arr 0 (min t.fanout (Array.length arr))))

let tick t ~call =
  heartbeat t;
  apply_timeouts t;
  let targets = pick_targets t in
  List.iter
    (fun addr ->
      Instrument.add "cluster.gossip_sent" 1;
      let push view =
        match call addr (Wire.Gossip { view }) with
        | Error _ -> Instrument.add "cluster.gossip_failed" 1
        | Ok reply -> (
            match entries_of_view reply with
            | Ok remote -> ignore (merge t remote)
            | Error _ -> Instrument.add "cluster.gossip_garbled" 1)
      in
      match call addr Wire.Mem_digest with
      | Error _ -> Instrument.add "cluster.gossip_failed" 1
      | Ok probe -> (
          match Json.member "digest" probe with
          | Some (Json.Str d) when d = digest t ->
              (* anti-entropy says we agree: a bare heartbeat suffices *)
              push (self_view_json t)
          | _ -> push (view_json t)))
    targets;
  (* exchanges against dying peers take real time — sweep again so a
     slow round cannot postpone a verdict past its deadline *)
  apply_timeouts t

let version_skew entries =
  let versions =
    List.sort_uniq compare (List.map (fun e -> e.version) entries)
  in
  max 0 (List.length versions - 1)
