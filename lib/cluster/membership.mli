(** Epidemic cluster membership: who is in the fleet, and in what state.

    Every process keeps a {e versioned node table} — one {!entry} per
    known node carrying [(incarnation, heartbeat)] freshness and a
    lifecycle {!status} — and rumor-spreads it by periodic push/pull
    over the ordinary wire protocol ({!Gossip_serve.Wire.op}'s [gossip]
    / [digest] ops), exactly the randomized gossip whose round
    complexity the library's own theory bounds.

    {2 Merge precedence}

    For two copies of the same node's entry, the winner is decided
    {e lexicographically on [(incarnation, heartbeat)]}; on a tie the
    {e more severe} status wins ([alive < suspect < draining < dead]).
    Consequences, each tested in [test/test_cluster.ml]:

    - a node refreshes itself by bumping [heartbeat] every tick, so its
      own copy dominates stale rumors;
    - suspicion spreads at the suspected entry's exact [(inc, hb)] —
      severity breaks the tie — but {e any} fresher heartbeat refutes
      it;
    - a node that hears itself called suspect/dead with a freshness it
      cannot beat {e bumps its incarnation} (the classic SWIM
      refutation), which dominates every copy of the rumor;
    - [dead] and [draining] at a given [(inc, hb)] are never overturned
      by an equal-freshness [alive] — only by genuinely newer evidence.

    {2 Failure detection}

    Freshness is judged {e locally}: each entry remembers when it last
    {e won} a merge here.  An [alive] peer not refreshed within
    [suspicion_timeout_ms] becomes [suspect]; any peer not refreshed
    within [dead_timeout_ms] becomes [dead].  A node never suspects
    itself, and [dead] entries are kept as tombstones so the rumor of
    the death outlives the node.

    {2 Anti-entropy}

    [digest t] is a {e heartbeat-independent} summary — it covers
    [(node, incarnation, status, addr, role, version)] but {e not}
    heartbeats — so two converged tables report the {e same} digest
    even while heartbeats churn; the CI soak compares survivors' digest
    strings for equality.  Each {!tick} probes its targets' digests
    first: on a match only the sender's own entry travels (a cheap
    heartbeat), on a mismatch the full tables push/pull.

    All operations are thread-safe (one internal mutex); [tick]'s
    network calls run outside it.  With an injected [clock] and [seed]
    the whole protocol is deterministic — the convergence tests run a
    5-node in-process cluster under scripted message drops and a fake
    clock. *)

module Json = Gossip_util.Json

type status = Alive | Suspect | Draining | Dead

val status_to_string : status -> string
val status_of_string : string -> status option

(** [alive = 0 < suspect < draining < dead = 3] — the tiebreak order. *)
val severity : status -> int

type entry = {
  node : string;  (** cluster-unique id *)
  addr : string;  (** ["unix:PATH"] or ["tcp:HOST:PORT"]; see {!Transport} *)
  role : string;  (** ["shard"] or ["router"] *)
  version : string;  (** {!Core.Version.string} at that node *)
  incarnation : int;
  heartbeat : int;
  status : status;
}

(** [supersedes a b] — would a copy [a] of some node's entry replace
    copy [b] under the merge precedence above? *)
val supersedes : entry -> entry -> bool

type t

(** [create ~self ~addr ~role ()] — a table containing only [self]
    (alive, incarnation 1, heartbeat 0).  [seeds] are transport
    addresses gossiped to while no live peer is known yet — bootstrap
    only.  [version] defaults to {!Core.Version.string}; [clock]
    (monotonic ns, default {!Gossip_util.Instrument.now_ns}) drives the
    timeouts; [seed] the target selection; [fanout] (default 2) is the
    number of peers gossiped to per tick. *)
val create :
  self:string ->
  addr:string ->
  role:string ->
  ?version:string ->
  ?clock:(unit -> int64) ->
  ?seed:int ->
  ?fanout:int ->
  ?suspicion_timeout_ms:int ->
  ?dead_timeout_ms:int ->
  ?seeds:string list ->
  unit ->
  t

val self : t -> string

(** Current entries, sorted by node id; always includes [self]. *)
val entries : t -> entry list

val find : t -> string -> entry option

(** [generation t] — bumped on every {e structural} change (member
    added, status / incarnation / addr changed) but not on pure
    heartbeat refreshes; the router rebuilds its ring only when this
    moves. *)
val generation : t -> int

(** [heartbeat t] — refresh [self]: heartbeat + 1, stamped now. *)
val heartbeat : t -> unit

(** [merge t entries] — fold remote copies in under the precedence
    rules; returns how many local entries changed (0 = views agreed). *)
val merge : t -> entry list -> int

(** [apply_timeouts t] — run the local failure detector once. *)
val apply_timeouts : t -> unit

(** [start_drain t] — self becomes [draining] with a bumped
    incarnation, so the drain dominates every alive copy in the fleet;
    idempotent. *)
val start_drain : t -> unit

val draining : t -> bool

(** The heartbeat-independent table summary (16 hex digits). *)
val digest : t -> string

(** [view_json t] — the full table as a wire view:
    [{"schema": "gossip-view/1", "from": self, "digest": d,
      "entries": [...]}]. *)
val view_json : t -> Json.t

(** [self_view_json t] — same envelope, only [self]'s entry; the cheap
    steady-state heartbeat. *)
val self_view_json : t -> Json.t

val entry_json : entry -> Json.t
val entries_of_view : Json.t -> (entry list, string) result

(** [handle t op] — the {!Gossip_serve.Dispatch.set_cluster_handler}
    handler: [gossip] merges and answers the local view (full on digest
    mismatch, self-only once converged); [digest] answers
    [{"schema": "gossip-digest/1", "node", "digest", "nodes"}]; [drain]
    (naming this node or nobody) runs {!start_drain} and answers the
    view.  Errors are strings the dispatcher maps to [bad_request]. *)
val handle : t -> Gossip_serve.Wire.op -> (Json.t, string) result

(** [tick t ~call] — one protocol round: refresh the own heartbeat, run
    the failure detector, pick [fanout] random targets (live peers, or
    the bootstrap [seeds] while none are known), digest-probe each and
    push/pull accordingly, merging every reply.  [call addr op] is the
    transport — injectable, so tests drive whole clusters without
    sockets. *)
val tick :
  t -> call:(string -> Gossip_serve.Wire.op -> (Json.t, string) result) -> unit

(** [version_skew entries] — the number of distinct library versions in
    the fleet beyond the first (0 = everyone agrees); the router
    mirrors it on the ["cluster.version_skew"] gauge. *)
val version_skew : entry list -> int
