module Json = Gossip_util.Json

(* FNV-1a, 64-bit, then a murmur3-style avalanche finalizer.  The
   wraparound multiplications are what both constructions specify, so
   the native overflow semantics of [Int64.mul] are correct, not a bug.
   The finalizer matters: bare FNV of short strings like ["s3#12"]
   clusters in the high bits, and a ring orders tokens by exactly those
   bits — without the mix, extra vnodes land next to existing tokens
   and buy no balance at all. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fmix64 h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

let hash64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  fmix64 !h

type t = {
  vnodes : int;
  nodes : string list;  (* sorted, distinct *)
  tokens : (int64 * string) array;  (* sorted by unsigned token *)
}

let create ?(vnodes = 64) nodes =
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be >= 1";
  let nodes = List.sort_uniq compare nodes in
  let tokens =
    List.concat_map
      (fun node ->
        List.init vnodes (fun i ->
            (hash64 (Printf.sprintf "%s#%d" node i), node)))
      nodes
    |> Array.of_list
  in
  (* ties (astronomically unlikely with 64-bit FNV) break by node name,
     keeping the ring a pure function of its inputs *)
  Array.sort
    (fun (h1, n1) (h2, n2) ->
      match Int64.unsigned_compare h1 h2 with 0 -> compare n1 n2 | c -> c)
    tokens;
  { vnodes; nodes; tokens }

let nodes t = t.nodes
let vnodes t = t.vnodes

(* First token clockwise from [h] (unsigned order), wrapping to 0. *)
let successor t h =
  let n = Array.length t.tokens in
  if n = 0 then None
  else begin
    (* binary search: least index whose token is >= h *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Int64.unsigned_compare (fst t.tokens.(mid)) h < 0 then lo := mid + 1
      else hi := mid
    done;
    Some (if !lo = n then 0 else !lo)
  end

let lookup t key =
  match successor t (hash64 key) with
  | None -> None
  | Some i -> Some (snd t.tokens.(i))

let replicas t ~k key =
  if k < 1 then invalid_arg "Ring.replicas: k must be >= 1";
  match successor t (hash64 key) with
  | None -> []
  | Some start ->
      let n = Array.length t.tokens in
      let want = min k (List.length t.nodes) in
      let rec walk i acc =
        if List.length acc >= want then List.rev acc
        else
          let node = snd t.tokens.((start + i) mod n) in
          walk (i + 1) (if List.mem node acc then acc else node :: acc)
      in
      walk 0 []

let moved ~before ~after keys =
  List.filter (fun k -> lookup before k <> lookup after k) keys

let spec_json t =
  Json.Obj
    [
      ("vnodes", Json.Int t.vnodes);
      ("nodes", Json.List (List.map (fun n -> Json.Str n) t.nodes));
    ]
