(** Consistent hashing: the stable assignment of request keys to shards.

    Each node contributes [vnodes] tokens — the 64-bit hashes of
    ["node#0" … "node#v-1"] — to one sorted array; a key belongs to the
    node owning the first token clockwise from the key's own hash
    (wrapping at the top).  Replicas continue the clockwise walk,
    collecting the next {e distinct} nodes.

    The construction is deterministic — two processes that agree on the
    member list and [vnodes] agree on every placement, which is what
    lets loadgen recompute the router's routing and audit per-shard
    counters — and {e minimally moving}: adding or removing one node
    only reassigns the keys whose clockwise walk met that node's
    tokens, about [K/n] of them, so a rebalance never reshuffles the
    whole key space (golden- and property-tested in
    [test/test_cluster.ml]). *)

type t

(** FNV-1a on the UTF-8 bytes, 64-bit, finalized with a murmur3-style
    avalanche mix (bare FNV of short token strings clusters in exactly
    the bits the ring sorts by) — the ring's only hash.  Exposed so
    tests and the router's bench can hash exactly like the ring. *)
val hash64 : string -> int64

(** [create ?vnodes nodes] — a ring over the distinct [nodes] (order
    irrelevant; duplicates merged), [vnodes] (default 64) tokens each.
    [create ~vnodes []] is a valid empty ring: every lookup answers
    [None].
    @raise Invalid_argument when [vnodes < 1]. *)
val create : ?vnodes:int -> string list -> t

val nodes : t -> string list
(** sorted, distinct *)

val vnodes : t -> int

(** [lookup t key] — the node owning [key], or [None] on an empty
    ring. *)
val lookup : t -> string -> string option

(** [replicas t ~k key] — the owner followed by the next distinct nodes
    clockwise, at most [min k (nodes t)] of them, in walk order.  The
    head (when any) is [lookup t key].
    @raise Invalid_argument when [k < 1]. *)
val replicas : t -> k:int -> string -> string list

(** [moved ~before ~after keys] — the keys whose {!lookup} differs
    between the two rings (a key unplaced on either ring counts as
    moved only if placed on the other).  The minimal-movement tests are
    phrased on this. *)
val moved : before:t -> after:t -> string list -> string list

(** [spec_json t] — [{"vnodes": v, "nodes": [...]}]; the router embeds
    it in [stats] replies so clients can rebuild the placement. *)
val spec_json : t -> Gossip_util.Json.t
