module Json = Gossip_util.Json
module Instrument = Gossip_util.Instrument
module Trace = Gossip_util.Trace
module Wire = Gossip_serve.Wire
module Metrics = Gossip_serve.Metrics

let routing_key (op : Wire.op) =
  match op with
  | Wire.Tables _ | Wire.Bound _ | Wire.Simulate _ | Wire.Simulate_implicit _
  | Wire.Certify _ | Wire.Certify_faults _ ->
      (* the canonical request serialization: op name + exact params,
         field order fixed by [Wire.request_to_json] — precisely the
         identity the shard-side caches key on.  [trace] stays [None]:
         trace context is per-call identity, never part of the affinity
         key, or identical queries would scatter across shards. *)
      Some
        (Json.to_string
           (Wire.request_to_json
              { Wire.id = Json.Null; op; timeout_ms = None; trace = None }))
  | _ -> None

type t = {
  membership : Membership.t;
  metrics : Metrics.t;
  vnodes : int;
  replicas : int;
  sample_rate : float;  (* head-sampling rate for router-minted traces *)
  transport_key : Transport.t Domain.DLS.key;
  rr : int Atomic.t;  (* round-robin cursor for keyless ops *)
  mu : Mutex.t;  (* guards the ring cache and the warned set *)
  mutable ring_gen : int;
  mutable ring_cache : Ring.t;
  warned_versions : (string, unit) Hashtbl.t;
}

let create ~membership ~metrics ?(vnodes = 64) ?(replicas = 2)
    ?(sample_rate = 1.0) ?(policy = Transport.default_policy) ?(seed = 0) () =
  if replicas < 1 then invalid_arg "Router.create: replicas must be >= 1";
  {
    membership;
    metrics;
    vnodes;
    replicas;
    sample_rate;
    transport_key =
      Domain.DLS.new_key (fun () -> Transport.create ~policy ~seed ());
    rr = Atomic.make 0;
    mu = Mutex.create ();
    ring_gen = -1;
    ring_cache = Ring.create ~vnodes [];
    warned_versions = Hashtbl.create 4;
  }

let transport t = Domain.DLS.get t.transport_key
let replica_count t = t.replicas

let is_shard (e : Membership.entry) = e.role = "shard" && e.addr <> ""

(* Routable = may receive NEW keys: alive and suspect (a suspect is
   innocent until the detector settles — its replicas cover the gap).
   Draining and dead are out; excluding a draining shard from the ring
   IS the drain. *)
let routable (e : Membership.entry) =
  is_shard e
  && match e.status with
     | Membership.Alive | Membership.Suspect -> true
     | Membership.Draining | Membership.Dead -> false

let ring t =
  let gen = Membership.generation t.membership in
  Mutex.lock t.mu;
  let r =
    if gen = t.ring_gen then t.ring_cache
    else begin
      let nodes =
        List.filter routable (Membership.entries t.membership)
        |> List.map (fun (e : Membership.entry) -> e.Membership.node)
      in
      let r = Ring.create ~vnodes:t.vnodes nodes in
      t.ring_gen <- gen;
      t.ring_cache <- r;
      r
    end
  in
  Mutex.unlock t.mu;
  r

let note_version_skew t =
  let entries = Membership.entries t.membership in
  let skew = Membership.version_skew entries in
  Instrument.set_gauge "cluster.version_skew" (float_of_int skew);
  if skew > 0 then begin
    let own = Core.Version.string in
    Mutex.lock t.mu;
    List.iter
      (fun (e : Membership.entry) ->
        if
          e.Membership.version <> own
          && not (Hashtbl.mem t.warned_versions e.Membership.node)
        then begin
          Hashtbl.replace t.warned_versions e.Membership.node ();
          Printf.eprintf
            "gossip_router: version skew: node %s runs %s, this router %s\n%!"
            e.Membership.node e.Membership.version own
        end)
      entries;
    Mutex.unlock t.mu
  end

(* --- forwarding --- *)

let addr_of t node =
  match Membership.find t.membership node with
  | Some e when e.Membership.addr <> "" -> Some e.Membership.addr
  | _ -> None

let status_of t node =
  match Membership.find t.membership node with
  | Some e -> e.Membership.status
  | None -> Membership.Dead

(* One wire exchange with [node], wrapped — when the request rides a
   sampled trace and streaming is live — in its own ["router.forward"]
   hop span.  Each hop mints a fresh span id and re-parents the
   downstream context onto it, so a failover shows up as {e sibling}
   hop spans under the router's request span, each bracketing exactly
   the wire time of its attempt; the stitcher also uses the bracket to
   align the shard's clock.  The hop span's own parent comes from the
   ambient attributes the server installed (the router's
   [serve.request] span). *)
let exchange_hop t ~trace ~node ~addr op =
  match trace with
  | Some tr when tr.Trace.sampled && Instrument.tracing () ->
      let hop_id = Trace.fresh_span_id () in
      Instrument.span "router.forward"
        ~attrs:
          [
            ("trace_id", Json.Str tr.Trace.trace_id);
            ("span_id", Json.Str hop_id);
            ("peer", Json.Str node);
            ("addr", Json.Str addr);
          ]
        (fun () ->
          Transport.exchange (transport t) addr
            ~trace:(Trace.child tr ~span_id:hop_id)
            op)
  | Some tr -> Transport.exchange (transport t) addr ~trace:tr op
  | None -> Transport.exchange (transport t) addr op

(* Try the candidate shards in order; a definitive client-side
   rejection is relayed, everything transport-shaped steps on. *)
let rec forward t ~trace op ~last_err = function
  | [] ->
      Error
        ( Wire.Internal,
          Printf.sprintf "no replica answered for this request (%s)" last_err )
  | node :: rest -> (
      match addr_of t node with
      | None -> forward t ~trace op ~last_err:(node ^ ": no address") rest
      | Some addr -> (
          Instrument.add "cluster.router.forwards" 1;
          match exchange_hop t ~trace ~node ~addr op with
          | Ok j -> Ok j
          | Error (`Fatal ((Wire.Bad_request | Wire.Oversized_frame), _)) as e
            ->
              (match e with
              | Error (`Fatal (code, msg)) -> Error (code, msg)
              | _ -> assert false)
          | Error (`Fatal (code, msg)) ->
              Instrument.add "cluster.router.failovers" 1;
              forward t ~trace op
                ~last_err:
                  (Printf.sprintf "%s: %s: %s" node
                     (Wire.error_code_to_string code)
                     msg)
                rest
          | Error (`Down msg) ->
              Instrument.add "cluster.router.failovers" 1;
              forward t ~trace op
                ~last_err:(Printf.sprintf "%s: %s" node msg)
                rest))

let severity_rank t node = Membership.severity (status_of t node)

let route_keyed t ~trace key op =
  let r = ring t in
  match Ring.replicas r ~k:t.replicas key with
  | [] -> Error (Wire.Internal, "no shards are routable (cluster empty?)")
  | candidates ->
      (* alive before suspect, walk order within a rank; [List.stable_sort]
         keeps the ring's replica order as the tiebreak *)
      let ordered =
        List.stable_sort
          (fun a b -> compare (severity_rank t a) (severity_rank t b))
          candidates
      in
      forward t ~trace op ~last_err:"no candidates tried" ordered

let route_any t ~trace op =
  let alive =
    List.filter
      (fun (e : Membership.entry) ->
        is_shard e && e.Membership.status = Membership.Alive)
      (Membership.entries t.membership)
  in
  let pool =
    if alive <> [] then alive
    else List.filter routable (Membership.entries t.membership)
  in
  match pool with
  | [] -> Error (Wire.Internal, "no shards are routable (cluster empty?)")
  | pool ->
      let n = List.length pool in
      let start = Atomic.fetch_and_add t.rr 1 in
      let ordered =
        List.init n (fun i ->
            (List.nth pool ((start + i) mod n)).Membership.node)
      in
      forward t ~trace op ~last_err:"no candidates tried" ordered

(* --- cluster-wide observability --- *)

(* Shards worth asking: everyone not settled dead. *)
let reachable_shards t =
  List.filter
    (fun (e : Membership.entry) ->
      is_shard e && e.Membership.status <> Membership.Dead)
    (Membership.entries t.membership)

let fan_out t op =
  List.map
    (fun (e : Membership.entry) ->
      ( e,
        match Transport.exchange (transport t) e.Membership.addr op with
        | Ok j -> Ok j
        | Error (`Fatal (code, msg)) ->
            Error (Printf.sprintf "%s: %s" (Wire.error_code_to_string code) msg)
        | Error (`Down msg) -> Error msg ))
    (reachable_shards t)

let shard_reply_json ((e : Membership.entry), outcome) ~payload_field =
  Json.Obj
    ([
       ("node", Json.Str e.Membership.node);
       ("status", Json.Str (Membership.status_to_string e.Membership.status));
       ("reachable", Json.Bool (Result.is_ok outcome));
     ]
    @
    match outcome with
    | Ok j -> [ (payload_field, j) ]
    | Error msg -> [ ("error", Json.Str msg) ])

let envelope t ~schema fields =
  Json.Obj
    ([
       ("schema", Json.Str schema);
       ("version", Json.Str Core.Version.string);
       ("node", Json.Str (Membership.self t.membership));
     ]
    @ fields)

let agg_metrics t =
  note_version_skew t;
  let replies = fan_out t Wire.Metrics in
  let skew = Membership.version_skew (Membership.entries t.membership) in
  envelope t ~schema:"gossip-cluster-metrics/1"
    [
      ("version_skew", Json.Int skew);
      ("router", Metrics.metrics_json t.metrics);
      ( "shards",
        Json.List
          (List.map (shard_reply_json ~payload_field:"metrics") replies) );
    ]

let agg_health t =
  note_version_skew t;
  let entries = Membership.entries t.membership in
  let replies = fan_out t Wire.Health in
  let shard_ok (_, outcome) =
    match outcome with
    | Ok j -> (
        match Json.member "ok" j with Some (Json.Bool b) -> b | _ -> false)
    | Error _ -> false
  in
  let suspects =
    List.filter
      (fun (e : Membership.entry) -> e.Membership.status = Membership.Suspect)
      entries
  in
  let alive_shards =
    List.filter
      (fun (e : Membership.entry) ->
        is_shard e && e.Membership.status = Membership.Alive)
      entries
  in
  (* a draining shard's replies (or silence) are voluntary; only the
     members that claim to serve can degrade the fleet *)
  let serving_replies =
    List.filter
      (fun ((e : Membership.entry), _) ->
        e.Membership.status <> Membership.Draining)
      replies
  in
  let reasons =
    (if alive_shards = [] then [ "no alive shards" ] else [])
    @ List.map
        (fun (e : Membership.entry) ->
          Printf.sprintf "member %s is suspect" e.Membership.node)
        suspects
    @ List.filter_map
        (fun (((e : Membership.entry), outcome) as reply) ->
          if shard_ok reply then None
          else
            Some
              (match outcome with
              | Error msg ->
                  Printf.sprintf "shard %s unreachable: %s" e.Membership.node
                    msg
              | Ok _ ->
                  Printf.sprintf "shard %s reports degraded" e.Membership.node))
        serving_replies
    @
    if Metrics.healthy t.metrics then [] else [ "router itself is degraded" ]
  in
  let ok = reasons = [] in
  envelope t ~schema:"gossip-cluster-health/1"
    [
      ("status", Json.Str (if ok then "ok" else "degraded"));
      ("ok", Json.Bool ok);
      ("reasons", Json.List (List.map (fun r -> Json.Str r) reasons));
      ("alive_shards", Json.Int (List.length alive_shards));
      ("suspect_members", Json.Int (List.length suspects));
      ("router", Metrics.health_json t.metrics);
      ( "shards",
        Json.List (List.map (shard_reply_json ~payload_field:"health") replies)
      );
    ]

let agg_stats t =
  note_version_skew t;
  let replies = fan_out t Wire.Stats in
  let r = ring t in
  envelope t ~schema:"gossip-cluster-stats/1"
    [
      ("membership", Membership.view_json t.membership);
      ( "ring",
        match Ring.spec_json r with
        | Json.Obj fields ->
            Json.Obj (fields @ [ ("replicas", Json.Int t.replicas) ])
        | j -> j );
      ( "shards",
        Json.List (List.map (shard_reply_json ~payload_field:"stats") replies)
      );
    ]

(* Fleet-wide trace collection: drain the router's own ring plus every
   reachable shard's, one [trace_pull] each.  Destructive on every node
   (each event is handed out once), so one collector owns the pull. *)
let agg_traces t ~max =
  let replies = fan_out t (Wire.Trace_pull { max }) in
  envelope t ~schema:"gossip-cluster-traces/1"
    [
      ("router", Metrics.traces_json t.metrics ~max);
      ( "shards",
        Json.List (List.map (shard_reply_json ~payload_field:"traces") replies)
      );
    ]

(* --- drain --- *)

let drain t node =
  match node with
  | None ->
      Error
        ( Wire.Bad_request,
          "drain: the router needs an explicit node (params.node)" )
  | Some node when node = Membership.self t.membership ->
      Error (Wire.Bad_request, "drain: refusing to drain the router itself")
  | Some node -> (
      match Membership.find t.membership node with
      | None -> Error (Wire.Bad_request, Printf.sprintf "drain: unknown node %S" node)
      | Some e when not (is_shard e) ->
          Error (Wire.Bad_request, Printf.sprintf "drain: %S is not a shard" node)
      | Some e -> (
          (* ask the shard itself first: its own draining entry carries a
             bumped incarnation and dominates fleet-wide *)
          let forwarded =
            Transport.exchange (transport t) e.Membership.addr
              (Wire.Drain { node = Some node })
          in
          (match forwarded with
          | Ok view -> (
              match Membership.entries_of_view view with
              | Ok remote -> ignore (Membership.merge t.membership remote)
              | Error _ -> ())
          | Error _ ->
              (* unreachable: spread the drain as a same-freshness rumor —
                 severity wins the merge tie everywhere *)
              ignore
                (Membership.merge t.membership
                   [ { e with Membership.status = Membership.Draining } ]));
          Instrument.add "cluster.router.drains" 1;
          match forwarded with
          | Ok _ ->
              Ok
                (Json.Obj
                   [
                     ("draining", Json.Str node);
                     ("acknowledged", Json.Bool true);
                   ])
          | Error _ ->
              Ok
                (Json.Obj
                   [
                     ("draining", Json.Str node);
                     ("acknowledged", Json.Bool false);
                   ])))

(* --- the evaluator --- *)

let evaluate t ~trace (op : Wire.op) =
  match op with
  | Wire.Gossip _ | Wire.Mem_digest -> (
      match Membership.handle t.membership op with
      | Ok j ->
          note_version_skew t;
          Ok j
      | Error msg -> Error (Wire.Bad_request, msg))
  | Wire.Drain { node } -> drain t node
  | Wire.Metrics -> Ok (agg_metrics t)
  | Wire.Health -> Ok (agg_health t)
  | Wire.Stats -> Ok (agg_stats t)
  | Wire.Spans -> Ok (Metrics.spans_json ())
  | Wire.Trace_pull { max } -> Ok (agg_traces t ~max)
  | op ->
      (* the router is the trace edge: a request that arrives without
         context gets one minted here — head-sampled by [sample_rate],
         the verdict pure in the trace id so every downstream node
         agrees without coordination.  A freshly minted sampled-out
         context also silences the {e rest of the router's own}
         evaluation (the hop spans), matching what the shards will do. *)
      let trace, minted_out =
        match trace with
        | Some _ -> (trace, false)
        | None ->
            let tr = Trace.mint ~sample_rate:t.sample_rate () in
            (Some tr, not tr.Trace.sampled)
      in
      let route () =
        match routing_key op with
        | Some key -> route_keyed t ~trace key op
        | None -> route_any t ~trace op
      in
      if minted_out then Instrument.with_sampled_out route else route ()
