(** The routing evaluator behind [gossip_router]: N shards, one service.

    A router is an ordinary {!Gossip_serve.Server} whose [evaluate]
    forwards instead of computing.  Requests whose result is a pure
    function of their parameters — [tables] / [bound] / [simulate] /
    [simulate_implicit] / [certify], exactly the ops the shards'
    {!Core.Context} memoizes — are routed by {e consistent hashing on
    their {!routing_key}}, so identical queries always land on the same
    shard's warm cache (the fingerprint-affinity property the CI soak
    audits).  Keyless ops ([ping] / [version] / [sleep]) round-robin
    over the alive shards.

    Placement comes from a {!Ring} over the shards the {!Membership}
    table currently believes routable — [alive] and [suspect] members;
    [draining] and [dead] are excluded, which {e is} the drain: mark a
    shard draining and no new key reaches it while its in-flight work
    completes.  The ring is rebuilt only when the membership
    {!Membership.generation} moves, and each request tries up to
    [replicas] ring candidates ordered alive-before-suspect, stepping
    to the next on transport failure or a shard-side [shutting_down];
    a [bad_request] / [oversized_frame] is the client's own and is
    relayed, never masked by a retry.

    Observability ops aggregate: [metrics] / [health] / [stats] /
    [trace_pull] fan out to every non-dead shard and come back as
    [gossip-cluster-*/1] envelopes wrapping the router's own numbers,
    each shard's reply (or the reason it could not be fetched), the
    membership view and the ring spec.

    Distributed tracing: the router is the {e trace edge}.  A routed
    request that arrives without context gets one minted here,
    head-sampled by [sample_rate] (the verdict is a pure function of
    the trace id, so every node agrees without coordination); a request
    that already carries context keeps it.  Every forwarding attempt —
    including each replica failover — runs in its own
    ["router.forward"] hop span tagged [trace_id] / [span_id] / [peer]
    / [addr], and the downstream envelope is re-parented onto that hop
    span, so the stitched waterfall shows exactly which attempts were
    made, what each cost on the wire, and where the request finally
    landed.  [trace_pull] aggregates fleet-wide: the router's own
    recent-event ring plus one pull per reachable shard
    ([gossip-cluster-traces/1]).  Health is degraded while any member is suspect, an
    alive shard is unreachable or reports degraded, or no shard is
    routable — a [dead] member is a {e settled} failure and a
    [draining] one a voluntary exit; neither alone degrades the fleet.
    Version disagreement across the fleet raises the
    ["cluster.version_skew"] gauge and a once-per-node warning
    (satellite of {!Core.Version} stamping).

    Thread-safety: [evaluate] runs on the router server's worker
    domains; each domain keeps its own {!Transport} (domain-local
    state), the ring cache has its own mutex. *)

module Json = Gossip_util.Json
module Wire = Gossip_serve.Wire

(** [routing_key op] — the canonical affinity key ([Some] for the
    memoized analysis ops: the op name and its exact parameters,
    serialized canonically), or [None] for ops with no cacheable
    result.  Loadgen recomputes this to audit per-shard counters. *)
val routing_key : Wire.op -> string option

type t

(** [create ~membership ~metrics ()] — a router over [membership]
    (whose table supplies the shards) reporting its own server's
    [metrics] in aggregates.  [vnodes] (default 64) and [replicas]
    (default 2) shape the ring; [sample_rate] (default 1.0, clamped to
    \[0,1\] by the decision itself) head-samples the traces the router
    mints for context-free requests; [policy] (default
    {!Transport.default_policy}) governs the per-domain forwarding
    clients; [seed] their jitter. *)
val create :
  membership:Membership.t ->
  metrics:Gossip_serve.Metrics.t ->
  ?vnodes:int ->
  ?replicas:int ->
  ?sample_rate:float ->
  ?policy:Gossip_serve.Resilient_client.policy ->
  ?seed:int ->
  unit ->
  t

(** The ring over the currently-routable shards (rebuilt on demand). *)
val ring : t -> Ring.t

val replica_count : t -> int

(** The server [evaluate] described above; [trace] is the request's
    envelope context (minted here when absent).  Safe from several
    worker domains. *)
val evaluate :
  t ->
  trace:Gossip_util.Trace.t option ->
  Wire.op ->
  (Json.t, Wire.error_code * string) result
