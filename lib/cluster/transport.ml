module Json = Gossip_util.Json
module Server = Gossip_serve.Server
module Wire = Gossip_serve.Wire
module Resilient = Gossip_serve.Resilient_client

let listen_of_addr addr =
  match String.index_opt addr ':' with
  | None -> Error (Printf.sprintf "address %S: expected unix:PATH or tcp:HOST:PORT" addr)
  | Some i -> (
      let scheme = String.sub addr 0 i in
      let rest = String.sub addr (i + 1) (String.length addr - i - 1) in
      match scheme with
      | "unix" ->
          if rest = "" then Error (Printf.sprintf "address %S: empty path" addr)
          else Ok (Server.Unix_socket rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None ->
              Error (Printf.sprintf "address %S: expected tcp:HOST:PORT" addr)
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p > 0 && p < 65536 && host <> "" ->
                  Ok (Server.Tcp (host, p))
              | _ -> Error (Printf.sprintf "address %S: bad host or port" addr)))
      | _ ->
          Error
            (Printf.sprintf "address %S: unknown scheme %S (unix | tcp)" addr
               scheme))

let addr_of_listen = function
  | Server.Unix_socket path -> "unix:" ^ path
  | Server.Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let default_policy =
  {
    Resilient.max_attempts = 2;
    base_backoff_ms = 10;
    max_backoff_ms = 100;
    attempt_timeout_ms = 2_000;
    call_budget_ms = 2_000;
    connect_timeout_ms = 500;
  }

(* Membership rounds must never stall on a dying peer: the failure
   detector's clock runs inside the same loop, so a 2s hang against one
   dead socket delays EVERY verdict.  Gossip is periodic — the next
   round is the retry — hence single attempts under a tight budget. *)
let gossip_policy =
  {
    Resilient.max_attempts = 1;
    base_backoff_ms = 5;
    max_backoff_ms = 20;
    attempt_timeout_ms = 300;
    call_budget_ms = 350;
    connect_timeout_ms = 200;
  }

type t = {
  policy : Resilient.policy;
  seed : int;
  conns : (string, Resilient.t) Hashtbl.t;
}

let create ?(policy = default_policy) ?(seed = 0) () =
  { policy; seed; conns = Hashtbl.create 8 }

let forget t addr =
  match Hashtbl.find_opt t.conns addr with
  | None -> ()
  | Some c ->
      Hashtbl.remove t.conns addr;
      Resilient.close c

let close t =
  Hashtbl.iter (fun _ c -> Resilient.close c) t.conns;
  Hashtbl.reset t.conns

(* [Resilient.connect] retries its full policy against a dead address;
   for a transport that's the bounded cost of one failed round. *)
let conn t addr =
  match Hashtbl.find_opt t.conns addr with
  | Some c -> Ok c
  | None -> (
      match listen_of_addr addr with
      | Error _ as e -> e
      | Ok listen -> (
          match
            Resilient.connect ~policy:t.policy
              ~seed:(Int64.to_int (Ring.hash64 addr) lxor t.seed)
              listen
          with
          | c ->
              Hashtbl.replace t.conns addr c;
              Ok c
          | exception Unix.Unix_error (e, _, _) ->
              Error
                (Printf.sprintf "connect %s: %s" addr (Unix.error_message e))
          | exception Sys_error e ->
              Error (Printf.sprintf "connect %s: %s" addr e)))

let exchange t addr ?trace op =
  match conn t addr with
  | Error e -> Error (`Down e)
  | Ok c -> (
      match Resilient.call c ?trace op with
      | Ok resp -> (
          match resp.Wire.outcome with
          | Ok result -> Ok result
          | Error (code, msg) -> Error (`Fatal (code, msg)))
      | Error (Resilient.Fatal (code, msg)) -> Error (`Fatal (code, msg))
      | Error (Resilient.Exhausted msg) ->
          (* the peer may be gone for good; drop the cached client so a
             replacement process at the same address gets a fresh dial *)
          forget t addr;
          Error (`Down msg))

let call t addr ?trace op =
  match exchange t addr ?trace op with
  | Ok j -> Ok j
  | Error (`Fatal (code, msg)) ->
      Error (Printf.sprintf "%s: %s" (Wire.error_code_to_string code) msg)
  | Error (`Down msg) -> Error msg
