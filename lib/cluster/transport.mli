(** Addressed wire calls between cluster members.

    A cluster entry advertises its listener as a single string —
    ["unix:PATH"] or ["tcp:HOST:PORT"] — and a [Transport.t] keeps one
    lazily-connected {!Gossip_serve.Resilient_client} per such address,
    so gossip rounds and control forwards reuse connections instead of
    dialing per message.  The default policy is deliberately impatient
    (2 attempts, 500 ms connects, 2 s per call): a silent peer must
    cost a bounded slice of the gossip interval, not wedge the round —
    the failure detector, not the transport, decides what the silence
    means.

    One [t] must only be used from one thread (the clients it caches
    are not thread-safe); the router keeps one per worker domain. *)

module Json = Gossip_util.Json

(** [listen_of_addr "unix:/tmp/x.sock"] / ["tcp:127.0.0.1:7001"] —
    parse an advertised address; [Error] names the defect. *)
val listen_of_addr : string -> (Gossip_serve.Server.listen, string) result

val addr_of_listen : Gossip_serve.Server.listen -> string

type t

(** [create ()] — an empty connection cache.  [policy] overrides the
    impatient default; [seed] drives retry jitter. *)
val create :
  ?policy:Gossip_serve.Resilient_client.policy -> ?seed:int -> unit -> t

(** The impatient default policy described above. *)
val default_policy : Gossip_serve.Resilient_client.policy

(** Tighter still, for the membership gossiper: one attempt, 300 ms
    reply wait, 200 ms connects.  The failure detector's sweep runs in
    the gossip loop, so a dead peer must cost well under the suspicion
    timeout per round; dropped rumors are simply re-sent next round. *)
val gossip_policy : Gossip_serve.Resilient_client.policy

(** [call t addr ?trace op] — one resilient exchange with the peer at
    [addr]: connect (or reuse), send, await.  [trace] (default: none)
    is stamped on the forwarded envelope — this is how trace context
    crosses node boundaries.  Every failure — bad address, connect
    timeout, retries exhausted, server-side error reply — comes back as
    a message string; the caller (the membership layer) treats any
    [Error] as "peer unresponsive this round". *)
val call :
  t ->
  string ->
  ?trace:Gossip_util.Trace.t ->
  Gossip_serve.Wire.op ->
  (Json.t, string) result

(** [exchange t addr ?trace op] — like {!call} but failures keep their
    shape: [`Fatal] is a definitive server rejection (the router must
    relay [bad_request] to the client, not mask it as unreachability),
    [`Down] is transport-level — dial failed or retries exhausted — and
    means "try the next replica". *)
val exchange :
  t ->
  string ->
  ?trace:Gossip_util.Trace.t ->
  Gossip_serve.Wire.op ->
  ( Json.t,
    [ `Fatal of Gossip_serve.Wire.error_code * string | `Down of string ] )
  result

(** Drop the cached connection to [addr] (the next call re-dials). *)
val forget : t -> string -> unit

val close : t -> unit
