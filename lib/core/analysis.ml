module Digraph = Gossip_topology.Digraph
module Metrics = Gossip_topology.Metrics
module Protocol = Gossip_protocol.Protocol
module Systolic = Gossip_protocol.Systolic
module Engine = Gossip_simulate.Engine
module General = Gossip_bounds.General
module Certificate = Gossip_delay.Certificate
module Delay_digraph = Gossip_delay.Delay_digraph

type network_report = {
  name : string;
  n : int;
  arcs : int;
  symmetric : bool;
  diameter : int;
  degree_parameter : int;
  general_bounds : (int * float) list;
  general_bounds_fd : (int * float) list;
  nonsystolic_bound : float;
}

let analyze_network ?ctx ?(periods = [ 3; 4; 5; 6; 7; 8 ]) g =
  let n = Digraph.n_vertices g in
  let diameter =
    match ctx with
    | Some ctx -> Context.diameter ctx g
    | None -> Metrics.diameter g
  in
  {
    name = Digraph.name g;
    n;
    arcs = Digraph.n_arcs g;
    symmetric = Digraph.is_symmetric g;
    diameter;
    degree_parameter = Digraph.degree_parameter g;
    general_bounds =
      List.map
        (fun s -> (s, General.coefficient_of_log ~e_coeff:(General.e s) ~n))
        periods;
    general_bounds_fd =
      List.map
        (fun s -> (s, General.coefficient_of_log ~e_coeff:(General.e_fd s) ~n))
        periods;
    nonsystolic_bound =
      General.coefficient_of_log ~e_coeff:General.e_inf ~n;
  }

type protocol_report = {
  network : string;
  mode : Protocol.mode;
  period : int;
  gossip_time : int option;
  broadcast_time : int option;
  diameter : int;
  certificate : Certificate.t;
  asymptotic_main_term : float;
}

let certify_protocol ?ctx ?horizon p =
  let g = Systolic.graph p in
  let n = Digraph.n_vertices g in
  let gossip_time =
    match ctx with
    | Some ctx -> Context.gossip_time ctx ?cap:horizon p
    | None -> Engine.gossip_time ?cap:horizon p
  in
  let length =
    match (gossip_time, horizon) with
    | Some t, _ -> t
    | None, Some h -> h
    | None, None -> (8 * Systolic.period p * n) + 64
  in
  let certificate =
    match ctx with
    | Some ctx ->
        let dg = Context.delay_digraph ctx p ~length in
        Context.certify ctx dg ~mode:(Systolic.mode p)
    | None ->
        let dg = Delay_digraph.of_systolic p ~length in
        Certificate.certify dg ~mode:(Systolic.mode p)
  in
  let s = max 3 (Systolic.period p) in
  let e_coeff =
    match Systolic.mode p with
    | Protocol.Directed | Protocol.Half_duplex -> General.e s
    | Protocol.Full_duplex -> General.e_fd s
  in
  {
    network = Digraph.name g;
    mode = Systolic.mode p;
    period = Systolic.period p;
    gossip_time;
    broadcast_time = Engine.broadcast_time ?cap:horizon p ~src:0;
    diameter =
      (match ctx with
      | Some ctx -> Context.diameter ctx g
      | None -> Metrics.diameter g);
    certificate;
    asymptotic_main_term = General.coefficient_of_log ~e_coeff ~n;
  }

module Json = Gossip_util.Json

let int_opt_json = function Some t -> Json.Int t | None -> Json.Null

let bounds_json l =
  Json.List
    (List.map
       (fun (s, b) -> Json.Obj [ ("s", Json.Int s); ("bound", Json.Float b) ])
       l)

let network_report_to_json r =
  Json.Obj
    [
      ("name", Json.Str r.name);
      ("n", Json.Int r.n);
      ("arcs", Json.Int r.arcs);
      ("symmetric", Json.Bool r.symmetric);
      ("diameter", Json.Int r.diameter);
      ("degree_parameter", Json.Int r.degree_parameter);
      ("general_bounds", bounds_json r.general_bounds);
      ("general_bounds_fd", bounds_json r.general_bounds_fd);
      ("nonsystolic_bound", Json.Float r.nonsystolic_bound);
    ]

let protocol_report_to_json ?coverage r =
  let base =
    [
      ("network", Json.Str r.network);
      ("mode", Json.Str (Protocol.mode_to_string r.mode));
      ("period", Json.Int r.period);
      ("gossip_time", int_opt_json r.gossip_time);
      ("broadcast_time", int_opt_json r.broadcast_time);
      ("diameter", Json.Int r.diameter);
      ("certificate", Certificate.to_json r.certificate);
      ("asymptotic_main_term", Json.Float r.asymptotic_main_term);
    ]
  in
  let extra =
    match coverage with
    | None -> []
    | Some curve ->
        [
          ( "coverage",
            Json.List (Array.to_list (Array.map (fun c -> Json.Float c) curve))
          );
        ]
  in
  Json.Obj (base @ extra)

let pp_network_report ppf r =
  Format.fprintf ppf "network %s: n=%d, arcs=%d, %s, diameter=%d, d=%d@\n"
    r.name r.n r.arcs
    (if r.symmetric then "symmetric" else "directed")
    r.diameter r.degree_parameter;
  Format.fprintf ppf "  half-duplex systolic lower bounds (main term):@\n";
  List.iter
    (fun (s, b) -> Format.fprintf ppf "    s=%d: %.2f rounds@\n" s b)
    r.general_bounds;
  Format.fprintf ppf "  full-duplex systolic lower bounds (main term):@\n";
  List.iter
    (fun (s, b) -> Format.fprintf ppf "    s=%d: %.2f rounds@\n" s b)
    r.general_bounds_fd;
  Format.fprintf ppf "  non-systolic half-duplex bound: %.2f rounds@\n"
    r.nonsystolic_bound

let pp_protocol_report ppf r =
  let pp_opt ppf = function
    | Some t -> Format.fprintf ppf "%d" t
    | None -> Format.fprintf ppf "did not complete"
  in
  Format.fprintf ppf
    "%s protocol on %s (period %d):@\n\
    \  gossip time: %a@\n\
    \  broadcast time from 0: %a@\n\
    \  diameter: %d@\n\
    \  certified lower bound (Thm 4.1): %d rounds (lambda=%.3f, norm=%.4f, closed-form %.4f)@\n\
    \  asymptotic main term e(s)·log n: %.2f@\n"
    (Protocol.mode_to_string r.mode)
    r.network r.period pp_opt r.gossip_time pp_opt r.broadcast_time r.diameter
    r.certificate.Certificate.bound r.certificate.Certificate.lambda
    r.certificate.Certificate.norm r.certificate.Certificate.closed_form
    r.asymptotic_main_term
