(** High-level one-call analyses combining the whole pipeline.

    These are the operations a downstream user actually wants: "what do
    the paper's bounds say about this network?" and "here is my systolic
    protocol — run it, certify it, compare."  Everything below is a thin
    composition of the per-library APIs. *)

(** Everything the closed-form theory says about one concrete network. *)
type network_report = {
  name : string;
  n : int;
  arcs : int;
  symmetric : bool;
  diameter : int;
  degree_parameter : int;
  general_bounds : (int * float) list;
      (** [(s, e(s)·log₂ n)] for the requested periods, half-duplex *)
  general_bounds_fd : (int * float) list;  (** full-duplex analogues *)
  nonsystolic_bound : float;  (** [1.4404·log₂ n] *)
}

(** [analyze_network ?ctx ?periods g] — closed-form lower bounds for [g]
    (default periods 3..8).  With [ctx], the diameter sweep is served
    from (and recorded in) the shared {!Context}; the report is identical
    either way. *)
val analyze_network :
  ?ctx:Context.t ->
  ?periods:int list ->
  Gossip_topology.Digraph.t ->
  network_report

(** Outcome of running and certifying one systolic protocol. *)
type protocol_report = {
  network : string;
  mode : Gossip_protocol.Protocol.mode;
  period : int;
  gossip_time : int option;  (** measured by simulation *)
  broadcast_time : int option;  (** from vertex 0 *)
  diameter : int;
  certificate : Gossip_delay.Certificate.t;
      (** Theorem 4.1 finite-n certificate for this protocol *)
  asymptotic_main_term : float;  (** [e(s)·log₂ n] for comparison *)
}

(** [certify_protocol ?ctx ?horizon p] — simulate the systolic protocol
    to completion (or [horizon] rounds), build its delay digraph, and
    emit the Theorem 4.1 certificate.  The certified bound is guaranteed
    (and checked in the tests) to be at most the measured gossip time.
    With [ctx], the simulation, the delay digraph and every norm solve
    of the certificate's λ sweep go through the shared {!Context} — a
    repeated analysis of the same protocol is nearly free, and the
    report is identical either way. *)
val certify_protocol :
  ?ctx:Context.t ->
  ?horizon:int ->
  Gossip_protocol.Systolic.t ->
  protocol_report

(** [pp_network_report] and [pp_protocol_report] render for humans. *)
val pp_network_report : Format.formatter -> network_report -> unit

val pp_protocol_report : Format.formatter -> protocol_report -> unit

(** [network_report_to_json] / [protocol_report_to_json] are the
    machine-readable forms behind the CLI's [--json] modes.  The
    optional [coverage] array (the per-round dissemination curve of
    {!Gossip_simulate.Engine.gossip_run}) is appended as a ["coverage"]
    field when given. *)
val network_report_to_json : network_report -> Gossip_util.Json.t

val protocol_report_to_json :
  ?coverage:float array -> protocol_report -> Gossip_util.Json.t
