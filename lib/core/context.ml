module Digraph = Gossip_topology.Digraph
module Metrics = Gossip_topology.Metrics
module Separator = Gossip_topology.Separator
module Protocol = Gossip_protocol.Protocol
module Systolic = Gossip_protocol.Systolic
module Spectral = Gossip_linalg.Spectral
module Delay_digraph = Gossip_delay.Delay_digraph
module Delay_matrix = Gossip_delay.Delay_matrix
module Certificate = Gossip_delay.Certificate
module General = Gossip_bounds.General
module Oracle = Gossip_bounds.Oracle
module Engine = Gossip_simulate.Engine
module Instrument = Gossip_util.Instrument

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

type kind_stats = {
  k_hits : int;
  k_misses : int;
  k_evictions : int;
  k_entries : int;
}

type 'v entry = { value : 'v; mutable last_use : int }

(* Mutable per-artifact-kind accounting behind a {!kind_stats} snapshot. *)
type kind_acc = {
  mutable a_hits : int;
  mutable a_misses : int;
  mutable a_evictions : int;
}

(* One artifact table, erased to the operations the LRU sweep needs so
   heterogeneous tables can share a single eviction policy. *)
type shelf = {
  shelf_kind : string;
  acc : kind_acc;
  occupancy : unit -> int;
  oldest : unit -> (int * (unit -> unit)) option;
      (* last-use tick of the least recently used entry, and a closure
         removing exactly that entry *)
  drop_all : unit -> unit;
}

let make_shelf shelf_kind (tbl : ('k, 'v entry) Hashtbl.t) =
  {
    shelf_kind;
    acc = { a_hits = 0; a_misses = 0; a_evictions = 0 };
    occupancy = (fun () -> Hashtbl.length tbl);
    oldest =
      (fun () ->
        Hashtbl.fold
          (fun k e acc ->
            match acc with
            | Some (t, _) when t <= e.last_use -> acc
            | _ -> Some (e.last_use, fun () -> Hashtbl.remove tbl k))
          tbl None);
    drop_all = (fun () -> Hashtbl.reset tbl);
  }

type t = {
  capacity : int;
  domains : int option;
  lock : Mutex.t;
  mutable tick : int;
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_evictions : int;
  diameters : (string, int entry) Hashtbl.t;
  separators : (string, Separator.measurement entry) Hashtbl.t;
  dgs : (string * int, Delay_digraph.t entry) Hashtbl.t;
  norms : (string * string * float, float entry) Hashtbl.t;
  blocks : (string * float * int, Gossip_linalg.Dense.t entry) Hashtbl.t;
  lambdas : (string * int, float entry) Hashtbl.t;
  times : (string * int, int option entry) Hashtbl.t;
  fault_certs :
    (string * int * int * int * int, Gossip_util.Json.t entry) Hashtbl.t;
  shelves : shelf list;
      (* the shelf list doubles as the kind registry: artifact accessors
         name their shelf and per-kind hit/miss/eviction counters live
         on it *)
}

let create ?(capacity = 4096) ?domains () =
  if capacity < 1 then invalid_arg "Context.create: capacity < 1";
  let diameters = Hashtbl.create 32 in
  let separators = Hashtbl.create 32 in
  let dgs = Hashtbl.create 32 in
  let norms = Hashtbl.create 256 in
  let blocks = Hashtbl.create 256 in
  let lambdas = Hashtbl.create 32 in
  let times = Hashtbl.create 32 in
  let fault_certs = Hashtbl.create 32 in
  {
    capacity;
    domains;
    lock = Mutex.create ();
    tick = 0;
    n_hits = 0;
    n_misses = 0;
    n_evictions = 0;
    diameters;
    separators;
    dgs;
    norms;
    blocks;
    lambdas;
    times;
    fault_certs;
    shelves =
      [
        make_shelf "diameter" diameters;
        make_shelf "separator" separators;
        make_shelf "delay_digraph" dgs;
        make_shelf "norm" norms;
        make_shelf "block" blocks;
        make_shelf "lambda_star" lambdas;
        make_shelf "gossip_time" times;
        make_shelf "fault_cert" fault_certs;
      ];
  }

let domains ctx = ctx.domains

(* {2 Fingerprints} *)

let mix h x = h := (!h * 1_000_003) lxor x

let fingerprint g =
  let h = ref 0x9e3779b9 in
  mix h (Digraph.n_vertices g);
  Digraph.iter_arcs (fun u v -> mix h ((u * 65_599) + v + 1)) g;
  Printf.sprintf "%s|%d|%d|%x" (Digraph.name g) (Digraph.n_vertices g)
    (Digraph.n_arcs g) (!h land max_int)

let protocol_fingerprint sys =
  let h = ref 0x51ed270b in
  List.iter
    (fun round ->
      mix h 0x2545f49;
      List.iter (fun (u, v) -> mix h ((u * 65_599) + v + 1)) round)
    (Systolic.period_rounds sys);
  Printf.sprintf "%s|%s|s%d|%x"
    (fingerprint (Systolic.graph sys))
    (Protocol.mode_to_string (Systolic.mode sys))
    (Systolic.period sys) (!h land max_int)

(* The delay digraph digest now lives with the structure itself (the
   certificate telemetry tags its spans with the same string); the
   context only prefixes it with the full network fingerprint so cache
   keys keep distinguishing same-named graphs with different arc lists. *)
let dg_fingerprint dg =
  fingerprint (Delay_digraph.graph dg) ^ "|" ^ Delay_digraph.fingerprint dg

let separator_digest (sep : Separator.t) =
  let h = ref 0x3c6ef372 in
  List.iter (fun v -> mix h (v + 1)) sep.Separator.v1;
  mix h 0x1234567;
  List.iter (fun v -> mix h (v + 1)) sep.Separator.v2;
  Printf.sprintf "%h|%h|%x" sep.Separator.alpha sep.Separator.ell
    (!h land max_int)

let options_digest = function
  | None -> "default"
  | Some (o : Spectral.options) ->
      Printf.sprintf "%h|%d|%d" o.Spectral.tol o.Spectral.max_iter
        o.Spectral.seed

(* {2 Bookkeeping core} *)

let total_entries ctx =
  List.fold_left (fun acc s -> acc + s.occupancy ()) 0 ctx.shelves

(* Caller holds [ctx.lock].  Returns how many entries were dropped. *)
let evict_locked ctx =
  let evicted = ref 0 in
  let stuck = ref false in
  while (not !stuck) && total_entries ctx > ctx.capacity do
    let victim =
      List.fold_left
        (fun acc shelf ->
          match shelf.oldest () with
          | None -> acc
          | Some (t, remove) -> (
              match acc with
              | Some (t', _, _) when t' <= t -> acc
              | _ -> Some (t, shelf, remove)))
        None ctx.shelves
    in
    match victim with
    | None -> stuck := true
    | Some (_, shelf, remove) ->
        remove ();
        ctx.n_evictions <- ctx.n_evictions + 1;
        shelf.acc.a_evictions <- shelf.acc.a_evictions + 1;
        incr evicted
  done;
  !evicted

let shelf_named ctx kind =
  List.find (fun s -> s.shelf_kind = kind) ctx.shelves

let lookup ctx ~kind tbl key =
  let shelf = shelf_named ctx kind in
  Mutex.lock ctx.lock;
  let found =
    match Hashtbl.find_opt tbl key with
    | Some e ->
        ctx.tick <- ctx.tick + 1;
        e.last_use <- ctx.tick;
        ctx.n_hits <- ctx.n_hits + 1;
        shelf.acc.a_hits <- shelf.acc.a_hits + 1;
        Some e.value
    | None ->
        ctx.n_misses <- ctx.n_misses + 1;
        shelf.acc.a_misses <- shelf.acc.a_misses + 1;
        None
  in
  Mutex.unlock ctx.lock;
  (match found with
  | Some _ -> Instrument.add "context.hit" 1
  | None -> Instrument.add "context.miss" 1);
  (* one point event per lookup when a trace is streaming: with the
     serving layer's ambient request attributes this is what lets the
     offline analyzer split a request into cache-hit and rebuild work *)
  if Instrument.tracing () then
    Instrument.event "context.lookup"
      ~attrs:
        [
          ("kind", Gossip_util.Json.Str kind);
          ( "outcome",
            Gossip_util.Json.Str
              (match found with Some _ -> "hit" | None -> "miss") );
        ];
  found

let store ctx tbl key v =
  Mutex.lock ctx.lock;
  let evicted =
    if Hashtbl.mem tbl key then 0 (* a racing miss beat us; keep theirs *)
    else begin
      ctx.tick <- ctx.tick + 1;
      Hashtbl.replace tbl key { value = v; last_use = ctx.tick };
      evict_locked ctx
    end
  in
  let entries = total_entries ctx in
  Mutex.unlock ctx.lock;
  if evicted > 0 then Instrument.add "context.evict" evicted;
  Instrument.set_gauge "context.entries" (float_of_int entries)

(* Lookup under the lock, compute outside it (artifact builders can be
   expensive and may themselves run parallel workers), insert under the
   lock.  A racing miss computes twice; both arrive at the same value. *)
let memo ctx ~kind tbl key compute =
  match lookup ctx ~kind tbl key with
  | Some v -> v
  | None ->
      let v = compute () in
      store ctx tbl key v;
      v

(* {2 Cached artifacts} *)

let diameter ctx g =
  memo ctx ~kind:"diameter" ctx.diameters (fingerprint g) (fun () ->
      Metrics.diameter ?domains:ctx.domains g)

let separator_measure ctx g sep =
  memo ctx ~kind:"separator" ctx.separators
    (fingerprint g ^ "|" ^ separator_digest sep)
    (fun () -> Separator.measure g sep)

let delay_digraph ctx sys ~length =
  memo ctx ~kind:"delay_digraph" ctx.dgs
    (protocol_fingerprint sys, length)
    (fun () -> Delay_digraph.of_systolic sys ~length)

let norm ctx ?options dg lambda =
  memo ctx ~kind:"norm" ctx.norms
    (dg_fingerprint dg, options_digest options, lambda)
    (fun () ->
      Delay_matrix.norm_blockwise ?options ?domains:ctx.domains dg lambda)

let vertex_block ctx dg lambda x =
  memo ctx ~kind:"block" ctx.blocks
    (dg_fingerprint dg, lambda, x)
    (fun () -> Delay_matrix.vertex_block dg lambda x)

let lambda_star ctx ~mode s =
  let cls =
    match mode with
    | Protocol.Directed | Protocol.Half_duplex -> "hd"
    | Protocol.Full_duplex -> "fd"
  in
  memo ctx ~kind:"lambda_star" ctx.lambdas (cls, s) (fun () ->
      match mode with
      | Protocol.Directed | Protocol.Half_duplex -> General.lambda_star s
      | Protocol.Full_duplex -> General.lambda_star_fd s)

let gossip_time ctx ?cap sys =
  let cap_key = match cap with Some c -> c | None -> -1 in
  memo ctx ~kind:"gossip_time" ctx.times
    (protocol_fingerprint sys, cap_key)
    (fun () -> Engine.gossip_time ?cap sys)

(* The certifier lives below this library (Gossip_simulate.Certifier),
   so the context memoizes the finished artifact against the scheme
   fingerprint and takes the decision procedure as a closure. *)
let fault_certificate ctx ~fingerprint ~k ~seed ~budget ~cap ~compute =
  memo ctx ~kind:"fault_cert" ctx.fault_certs
    (fingerprint, k, seed, budget, cap)
    compute

(* {2 Context-aware pipeline entry points} *)

let certify ctx ?lambdas ?refine ?options dg ~mode =
  Certificate.certify ?lambdas ?refine ?options
    ~norm:(fun dg l -> norm ctx ?options dg l)
    dg ~mode

let certify_systolic ctx ?lambdas ?refine ?options sys =
  Certificate.certify_systolic ?lambdas ?refine ?options
    ~norm:(fun dg l -> norm ctx ?options dg l)
    ~expand:(fun sys ~length -> delay_digraph ctx sys ~length)
    sys

let lower_bounds ctx ?family g ~mode ~s =
  Oracle.lower_bounds ?family ~diameter:(diameter ctx g) g ~mode ~s

(* {2 Accounting} *)

let stats ctx =
  Mutex.lock ctx.lock;
  let s =
    {
      hits = ctx.n_hits;
      misses = ctx.n_misses;
      evictions = ctx.n_evictions;
      entries = total_entries ctx;
      capacity = ctx.capacity;
    }
  in
  Mutex.unlock ctx.lock;
  s

let stats_by_kind ctx =
  Mutex.lock ctx.lock;
  let per =
    List.map
      (fun s ->
        ( s.shelf_kind,
          {
            k_hits = s.acc.a_hits;
            k_misses = s.acc.a_misses;
            k_evictions = s.acc.a_evictions;
            k_entries = s.occupancy ();
          } ))
      ctx.shelves
  in
  Mutex.unlock ctx.lock;
  per

let reset_kind_accs ctx =
  List.iter
    (fun s ->
      s.acc.a_hits <- 0;
      s.acc.a_misses <- 0;
      s.acc.a_evictions <- 0)
    ctx.shelves

let reset_stats ctx =
  Mutex.lock ctx.lock;
  ctx.n_hits <- 0;
  ctx.n_misses <- 0;
  ctx.n_evictions <- 0;
  reset_kind_accs ctx;
  Mutex.unlock ctx.lock

let clear ctx =
  Mutex.lock ctx.lock;
  List.iter (fun s -> s.drop_all ()) ctx.shelves;
  ctx.n_hits <- 0;
  ctx.n_misses <- 0;
  ctx.n_evictions <- 0;
  reset_kind_accs ctx;
  ctx.tick <- 0;
  Mutex.unlock ctx.lock

let stats_json ctx =
  let module J = Gossip_util.Json in
  let s = stats ctx in
  let per = stats_by_kind ctx in
  J.Obj
    [
      ("hits", J.Int s.hits);
      ("misses", J.Int s.misses);
      ("evictions", J.Int s.evictions);
      ("entries", J.Int s.entries);
      ("capacity", J.Int s.capacity);
      ( "by_kind",
        J.Obj
          (List.map
             (fun (kind, k) ->
               ( kind,
                 J.Obj
                   [
                     ("hits", J.Int k.k_hits);
                     ("misses", J.Int k.k_misses);
                     ("evictions", J.Int k.k_evictions);
                     ("entries", J.Int k.k_entries);
                   ] ))
             per) );
      (* memory next to hit rates: cache-size tuning needs both *)
      ("resource", Gossip_util.Resource.(to_json (sample ())));
    ]

let pp_stats ppf ctx =
  let s = stats ctx in
  let total = s.hits + s.misses in
  let rate =
    if total = 0 then 0.0
    else 100.0 *. float_of_int s.hits /. float_of_int total
  in
  Format.fprintf ppf
    "cache: %d hits, %d misses (%.1f%% hit rate), %d evictions, %d/%d entries"
    s.hits s.misses rate s.evictions s.entries s.capacity
