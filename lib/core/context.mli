(** Shared memoizing analysis context — the pipeline's artifact store.

    Every bound in the paper is assembled from the same handful of
    intermediate artifacts: the delay digraph of a protocol expansion,
    the per-vertex local blocks [Mx(λ)], the norm [‖M(λ)‖], the critical
    roots [λ*(s)], separator measurements, BFS diameters and measured
    gossip times.  Historically each layer — {!Analysis},
    {!Gossip_bounds.Oracle}, {!Gossip_delay.Certificate}, the benchmark
    harness — rebuilt them independently; a context caches them once and
    hands them to every consumer.

    Keys combine a structural {e fingerprint} of the graph or protocol
    with the remaining parameters (mode, λ, expansion length, …), so two
    structurally different networks of equal size never collide while
    re-analysing the same network is free.  The store is bounded:
    [capacity] entries across all artifact kinds, evicting the least
    recently used entry first.  Hits, misses and evictions are counted
    and always mirrored into the {!Gossip_util.Instrument} counters
    ["context.hit"] / ["context.miss"] / ["context.evict"], with the
    current occupancy on the ["context.entries"] gauge.

    A context is cheap to create and safe to share across sequential
    analyses; concurrent callers from several domains are tolerated (the
    bookkeeping is mutex-protected) though a racing miss may compute an
    artifact twice — results are unaffected because every artifact
    builder is deterministic. *)

type t

(** Cache accounting snapshot. *)
type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** currently cached artifacts, all kinds *)
  capacity : int;
}

(** Per-artifact-kind accounting snapshot (one artifact table each). *)
type kind_stats = {
  k_hits : int;
  k_misses : int;
  k_evictions : int;
  k_entries : int;
}

(** [create ?capacity ?domains ()] — an empty context.  [capacity]
    (default 4096) bounds the total number of cached artifacts;
    [domains], when given, is passed to every parallel artifact builder
    this context invokes (BFS diameter sweeps, blockwise norms),
    otherwise the process-wide {!Gossip_util.Parallel} default applies.
    @raise Invalid_argument if [capacity < 1]. *)
val create : ?capacity:int -> ?domains:int -> unit -> t

(** [domains ctx] is the worker-count override the context was created
    with. *)
val domains : t -> int option

(** {1 Fingerprints} *)

(** [fingerprint g] — structural digest of a network: name, sizes and a
    rolling hash over the full arc list.  Distinct arc lists of equal
    size yield different fingerprints (up to hash collision over 62
    bits). *)
val fingerprint : Gossip_topology.Digraph.t -> string

(** [protocol_fingerprint sys] — digest of a systolic protocol: graph
    fingerprint, mode, and the arcs of every period round. *)
val protocol_fingerprint : Gossip_protocol.Systolic.t -> string

(** {1 Cached artifacts} *)

(** [diameter ctx g] — {!Gossip_topology.Metrics.diameter}, cached per
    graph fingerprint. *)
val diameter : t -> Gossip_topology.Digraph.t -> int

(** [separator_measure ctx g sep] —
    {!Gossip_topology.Separator.measure}, cached per (graph, separator
    sets) pair. *)
val separator_measure :
  t ->
  Gossip_topology.Digraph.t ->
  Gossip_topology.Separator.t ->
  Gossip_topology.Separator.measurement

(** [delay_digraph ctx sys ~length] —
    {!Gossip_delay.Delay_digraph.of_systolic}, cached per (protocol,
    length). *)
val delay_digraph :
  t -> Gossip_protocol.Systolic.t -> length:int -> Gossip_delay.Delay_digraph.t

(** [norm ctx ?options dg lambda] — [‖M(λ)‖] by
    {!Gossip_delay.Delay_matrix.norm_blockwise}, cached per (delay
    digraph, λ).  This is the pipeline's hottest artifact: certificate λ
    sweeps, refinement passes and norm tables all query it repeatedly at
    identical λ. *)
val norm :
  t ->
  ?options:Gossip_linalg.Spectral.options ->
  Gossip_delay.Delay_digraph.t ->
  float ->
  float

(** [vertex_block ctx dg lambda x] — the local block [Mx(λ)]
    ({!Gossip_delay.Delay_matrix.vertex_block}), cached per (delay
    digraph, λ, vertex). *)
val vertex_block :
  t ->
  Gossip_delay.Delay_digraph.t ->
  float ->
  int ->
  Gossip_linalg.Dense.t

(** [lambda_star ctx ~mode s] — the critical root [λ*(s)] of the mode's
    norm function ({!Gossip_bounds.General.lambda_star} /
    [lambda_star_fd]), cached per (mode class, s).  Directed and
    half-duplex share a root.
    @raise Invalid_argument if [s < 3]. *)
val lambda_star : t -> mode:Gossip_protocol.Protocol.mode -> int -> float

(** [gossip_time ctx ?cap sys] — measured completion time by
    {!Gossip_simulate.Engine.gossip_time}, cached per (protocol, cap). *)
val gossip_time : t -> ?cap:int -> Gossip_protocol.Systolic.t -> int option

(** [fault_certificate ctx ~fingerprint ~k ~seed ~budget ~cap ~compute]
    — a [gossip-fault-cert/1] artifact, cached per
    [(fingerprint, k, seed, budget, cap)].  The certifier lives in
    [Gossip_simulate.Certifier], {e below} this library, so the context
    stores the finished JSON artifact and takes the expensive decision
    procedure as a closure; [fingerprint] must be
    [Certifier.fingerprint] of the scheme being certified and [cap] the
    {e requested} round budget ([-1] when the certifier derives its
    default) — certification is deterministic given exactly that key. *)
val fault_certificate :
  t ->
  fingerprint:string ->
  k:int ->
  seed:int ->
  budget:int ->
  cap:int ->
  compute:(unit -> Gossip_util.Json.t) ->
  Gossip_util.Json.t

(** {1 Context-aware pipeline entry points} *)

(** [certify ctx ?lambdas ?refine ?options dg ~mode] —
    {!Gossip_delay.Certificate.certify} with this context's cached norm
    evaluator injected: the λ grid, the refinement sweep (which revisits
    the coarse winner's λ) and any later certificate over the same delay
    digraph reuse norm solves.  Returns exactly what the uncontexted
    call returns. *)
val certify :
  t ->
  ?lambdas:float list ->
  ?refine:bool ->
  ?options:Gossip_linalg.Spectral.options ->
  Gossip_delay.Delay_digraph.t ->
  mode:Gossip_protocol.Protocol.mode ->
  Gossip_delay.Certificate.t

(** [certify_systolic ctx ?lambdas ?refine ?options sys] — horizon-free
    {!Gossip_delay.Certificate.certify_systolic} through the context:
    both the expansion ladder's delay digraphs and their norm solves are
    cached. *)
val certify_systolic :
  t ->
  ?lambdas:float list ->
  ?refine:bool ->
  ?options:Gossip_linalg.Spectral.options ->
  Gossip_protocol.Systolic.t ->
  Gossip_delay.Certificate.t

(** [lower_bounds ctx ?family g ~mode ~s] —
    {!Gossip_bounds.Oracle.lower_bounds} with the diameter served from
    the cache; identical values with and without a context. *)
val lower_bounds :
  t ->
  ?family:string ->
  Gossip_topology.Digraph.t ->
  mode:Gossip_protocol.Protocol.mode ->
  s:int option ->
  Gossip_bounds.Oracle.t

(** {1 Accounting} *)

(** [stats ctx] — current hit/miss/eviction/occupancy counters. *)
val stats : t -> stats

(** [stats_by_kind ctx] — the same counters broken down per artifact
    kind, in a fixed order: ["diameter"], ["separator"],
    ["delay_digraph"], ["norm"], ["block"], ["lambda_star"],
    ["gossip_time"], ["fault_cert"].  The kind totals sum to
    {!stats}. *)
val stats_by_kind : t -> (string * kind_stats) list

(** [reset_stats ctx] zeroes the counters, keeping cached artifacts. *)
val reset_stats : t -> unit

(** [clear ctx] drops every cached artifact and zeroes the counters. *)
val clear : t -> unit

(** [stats_json ctx] — the counters as a JSON object [{hits, misses,
    evictions, entries, capacity, by_kind, resource}], where [by_kind]
    maps each artifact kind to its own
    [{hits, misses, evictions, entries}] ({!stats_by_kind}) and
    [resource] is a point-in-time {!Gossip_util.Resource} snapshot
    (heap, RSS, GC counts) — cache-size tuning needs memory numbers
    next to hit rates; embedded in every [--json] CLI result, in the
    bench report's ["cache"] field, and in the server's [stats] op —
    which is what makes live cache behaviour visible per artifact. *)
val stats_json : t -> Gossip_util.Json.t

(** [pp_stats ppf ctx] — one-line human-readable summary, e.g.
    [cache: 37 hits, 12 misses (75.5% hit rate), 0 evictions, 12/4096
    entries]. *)
val pp_stats : Format.formatter -> t -> unit
