(** Systolic gossip lower bounds — public facade.

    This library reproduces Flammini & Pérennès, "Lower bounds on systolic
    gossip" (IPPS'97; Information and Computation 196, 2005).  The
    sub-libraries are re-exported here under short names:

    - {!Util}: bitsets, deterministic PRNG, numeric solvers, tables.
    - {!Linalg}: dense/sparse matrices, the delay polynomials [p_i(λ)],
      power-iteration spectral radius and Euclidean norm.
    - {!Topology}: digraphs, the network families of the paper (Butterfly,
      Wrapped Butterfly, de Bruijn, Kautz, ...), BFS metrics, ⟨α, l⟩
      separators, edge coloring.
    - {!Protocol}: gossip protocols, modes, systolic protocols, builders.
    - {!Simulate}: the synchronous whispering-model execution engine.
    - {!Delay}: delay digraphs, delay matrices [M(λ)], local matrices
      [Mx(λ)], [Nx(λ)], [Ox(λ)], and executable Theorem 4.1 / 5.1
      certificates.
    - {!Search}: exact optimal gossip/broadcast and optimal systolic
      protocols by exhaustive search on small networks.
    - {!Bounds}: closed-form [e(s)] coefficients, separator-refined
      bounds, and the data behind every table of the paper.
    - {!Context}: shared memoizing artifact store — cached delay
      digraphs, norm solves, diameters, critical roots — feeding every
      layer above.
    - {!Analysis}: one-call network / protocol reports. *)

module Util = Gossip_util
module Linalg = Gossip_linalg
module Topology = Gossip_topology
module Protocol = Gossip_protocol
module Simulate = Gossip_simulate
module Delay = Gossip_delay
module Search = Gossip_search
module Bounds = Gossip_bounds
module Context = Context
module Analysis = Analysis
module Version = Version
