let string = "0.3.0"
