(** The one version constant shared by every executable.

    [gossip_lab] and [gossip_served] both report this string from their
    [version] subcommands and [--version] flags, and every JSON object
    the CLI and server emit carries it as ["version"], so a client can
    always tell which build answered. *)

(** Semantic version of the library and its executables. *)
val string : string
