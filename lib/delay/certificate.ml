module Protocol = Gossip_protocol.Protocol

type t = {
  lambda : float;
  norm : float;
  closed_form : float;
  bound : int;
  activations : int;
}

let default_lambdas =
  List.init 19 (fun i -> 0.05 +. (0.05 *. float_of_int i))

let impossible_t ~nu ~lambda ~pairs ~m ~start t =
  if t < start then true
  else begin
    (* Σ_{k=start}^{t} ν^k, computed stably. *)
    let sum = ref 0.0 and pw = ref (nu ** float_of_int start) in
    for _ = start to t do
      sum := !sum +. !pw;
      pw := !pw *. nu
    done;
    !sum < (lambda ** float_of_int t) *. pairs /. m
  end

(* Cumulative activation counts per round horizon, filtered by a
   predicate on the activation. *)
let cumulative_counts dg pred =
  let horizon = Delay_digraph.protocol_length dg in
  let per_round = Array.make (horizon + 1) 0 in
  for k = 0 to Delay_digraph.n_activations dg - 1 do
    let a = Delay_digraph.activation dg k in
    if pred a then
      per_round.(a.Delay_digraph.round + 1) <-
        per_round.(a.Delay_digraph.round + 1) + 1
  done;
  for i = 1 to horizon do
    per_round.(i) <- per_round.(i) + per_round.(i - 1)
  done;
  per_round
(* per_round.(t) = matching activations strictly before round index t,
   i.e. within the first t rounds. *)

let smallest_feasible ~nu ~lambda ~pairs ~m1 ~m2 ~start ~horizon =
  let rec scan t =
    if t > horizon then horizon + 1
    else begin
      let m1t = float_of_int (max 1 m1.(t)) in
      let m2t = float_of_int (max 1 m2.(t)) in
      let m = sqrt (m1t *. m2t) in
      if impossible_t ~nu ~lambda ~pairs ~m ~start t then scan (t + 1) else t
    end
  in
  scan 1

let certify_generic ?lambdas ?(refine = false) ?options ?norm dg ~mode ~pairs
    ~pred_src ~pred_dst ~start_of =
  let lambdas = match lambdas with Some l -> l | None -> default_lambdas in
  let norm =
    match norm with
    | Some f -> f
    | None -> fun dg lambda -> Delay_matrix.norm_blockwise ?options dg lambda
  in
  let horizon = Delay_digraph.protocol_length dg in
  let m1 = cumulative_counts dg pred_src in
  let m2 = cumulative_counts dg pred_dst in
  let window = Delay_digraph.window dg in
  let best = ref None in
  let consider lambda =
    if lambda > 0.0 && lambda < 1.0 then begin
      let nu = norm dg lambda in
      let bound =
        smallest_feasible ~nu ~lambda ~pairs ~m1 ~m2 ~start:(start_of ())
          ~horizon
      in
      let closed_form = Delay_matrix.closed_form_bound ~mode ~window lambda in
      let cert =
        {
          lambda;
          norm = nu;
          closed_form;
          bound;
          activations = Delay_digraph.n_activations dg;
        }
      in
      match !best with
      | None -> best := Some cert
      | Some b -> if cert.bound > b.bound then best := Some cert
    end
  in
  List.iter consider lambdas;
  (match (!best, refine) with
  | Some coarse, true ->
      (* finer sweep around the coarse winner; the bound only improves *)
      let center = coarse.lambda in
      for i = -10 to 10 do
        consider (center +. (0.005 *. float_of_int i))
      done
  | _ -> ());
  match !best with
  | Some c -> c
  | None -> invalid_arg "Certificate.certify: no valid lambda supplied"

(* Structural span tags: the digest identifies which delay digraph a
   recorded certificate search ran over, so traces of repeated runs can
   be diffed artifact by artifact. *)
let span_attrs dg =
  [
    ("dg", Gossip_util.Json.Str (Delay_digraph.fingerprint dg));
    ("activations", Gossip_util.Json.Int (Delay_digraph.n_activations dg));
    ("window", Gossip_util.Json.Int (Delay_digraph.window dg));
  ]

let certify ?lambdas ?refine ?options ?norm dg ~mode =
  let n =
    float_of_int (Gossip_topology.Digraph.n_vertices (Delay_digraph.graph dg))
  in
  Gossip_util.Instrument.span "delay.certify" ~attrs:(span_attrs dg) (fun () ->
      certify_generic ?lambdas ?refine ?options ?norm dg ~mode
        ~pairs:(n *. (n -. 1.0))
        ~pred_src:(fun _ -> true)
        ~pred_dst:(fun _ -> true)
        ~start_of:(fun () -> 1))

let certify_separator ?lambdas ?refine ?options ?norm dg ~mode ~sep =
  let open Gossip_topology.Separator in
  let g = Delay_digraph.graph dg in
  let v1 = Hashtbl.create 64 and v2 = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace v1 v ()) sep.v1;
  List.iter (fun v -> Hashtbl.replace v2 v ()) sep.v2;
  let c1 = List.length sep.v1 and c2 = List.length sep.v2 in
  let dist = Gossip_topology.Metrics.set_distance g sep.v1 sep.v2 in
  Gossip_util.Instrument.span "delay.certify-separator" ~attrs:(span_attrs dg)
    (fun () ->
      certify_generic ?lambdas ?refine ?options ?norm dg ~mode
        ~pairs:(float_of_int c1 *. float_of_int c2)
        ~pred_src:(fun a -> Hashtbl.mem v1 a.Delay_digraph.src)
        ~pred_dst:(fun a -> Hashtbl.mem v2 a.Delay_digraph.dst)
        ~start_of:(fun () -> max 1 (dist - 1)))

let certify_systolic ?lambdas ?refine ?options ?norm
    ?(expand = fun sys ~length -> Delay_digraph.of_systolic sys ~length) sys =
  let module Systolic = Gossip_protocol.Systolic in
  let s = Systolic.period sys in
  let mode = Systolic.mode sys in
  let n =
    Gossip_topology.Digraph.n_vertices (Systolic.graph sys)
  in
  (* Grow the expansion until the certified bound stops changing between
     doublings; cap the growth at a generous multiple of the trivial
     completion scale. *)
  let max_length = max (8 * s) (4 * s * n) in
  let rec go length previous =
    let dg = expand sys ~length in
    let cert = certify ?lambdas ?refine ?options ?norm dg ~mode in
    match previous with
    | Some p when p.bound = cert.bound -> cert
    | _ when 2 * length > max_length -> cert
    | _ -> go (2 * length) (Some cert)
  in
  go (4 * s) None

let to_json c =
  let module J = Gossip_util.Json in
  J.Obj
    [
      ("bound", J.Int c.bound);
      ("lambda", J.Float c.lambda);
      ("norm", J.Float c.norm);
      ("closed_form", J.Float c.closed_form);
      ("activations", J.Int c.activations);
    ]
