(** Executable lower-bound certificates (Theorems 4.1 and 5.1).

    Theorem 4.1, made finite and effective: let [ν = ‖M(λ)‖] for some
    [0 < λ < 1], let [m(t)] be the number of arc activations in the first
    [t] rounds.  If the protocol completes gossip within [t] rounds, then
    every ordered vertex pair is joined by a dipath of at most [t] arcs
    and weight at most [t] in the delay digraph, so

    [ν + ν² + ... + ν^t  ≥  ‖M + M² + ... + M^t‖ ≥ λ^t · n(n-1)/m(t)].

    A round count [t] that violates this inequality is therefore
    {e impossible}, and the smallest non-violating [t] is a certified
    lower bound on the gossip time of {e this} protocol.  The separator
    variant (Theorem 5.1) restricts pairs to [V1 × V2] at distance [≥ d]
    and starts the sum at [ν^(d-1)]:

    [ν^(d-1) + ... + ν^t ≥ λ^t · c / t]  with  [c = min(|V1|, |V2|)].

    The certificate search maximizes the bound over a λ grid. *)

type t = {
  lambda : float;  (** the λ achieving the best bound *)
  norm : float;  (** [‖M(λ)‖] at that λ *)
  closed_form : float;  (** Lemma 4.3 / 6.1 closed-form bound on the norm *)
  bound : int;  (** certified lower bound on the gossip time *)
  activations : int;  (** [m] over the analyzed horizon *)
}

(** [certify ?lambdas ?refine ?options ?norm dg ~mode] computes the
    Theorem 4.1 certificate for the delay digraph of a concrete protocol.
    [lambdas] defaults to a grid over (0.05, 0.95); with [refine]
    (default false) a second, finer λ grid is scanned around the coarse
    winner — the bound can only improve; [mode] selects the closed-form
    comparison (it does not change the numeric norm).  [norm], when
    given, replaces the default [‖M(λ)‖] evaluator
    ({!Delay_matrix.norm_blockwise} with [options]) — the memoizing
    analysis context injects its cached evaluator here, so repeated λ
    sweeps over the same delay digraph reuse norm solves.  Any
    replacement must compute the same quantity or the certificate is
    unsound. *)
val certify :
  ?lambdas:float list ->
  ?refine:bool ->
  ?options:Gossip_linalg.Spectral.options ->
  ?norm:(Delay_digraph.t -> float -> float) ->
  Delay_digraph.t ->
  mode:Gossip_protocol.Protocol.mode ->
  t

(** [certify_separator ?lambdas ?options dg ~mode ~sep] is the
    Theorem 5.1 variant: pairs restricted to the separator's [V1 × V2]
    with their measured BFS distance. *)
val certify_separator :
  ?lambdas:float list ->
  ?refine:bool ->
  ?options:Gossip_linalg.Spectral.options ->
  ?norm:(Delay_digraph.t -> float -> float) ->
  Delay_digraph.t ->
  mode:Gossip_protocol.Protocol.mode ->
  sep:Gossip_topology.Separator.t ->
  t

(** [impossible_t ~nu ~lambda ~pairs ~m ~start t] — the raw inequality
    test: [true] when round count [t] is ruled out, i.e.
    [Σ_{k=start}^{t} ν^k < λ^t · pairs / m].  Exposed for tests. *)
val impossible_t :
  nu:float -> lambda:float -> pairs:float -> m:float -> start:int -> int -> bool

(** [to_json c] — the certificate as a JSON object
    [{bound, lambda, norm, closed_form, activations}], the
    machine-readable form used by the [--json] CLI modes and the bench
    report. *)
val to_json : t -> Gossip_util.Json.t

(** [certify_systolic ?lambdas ?refine ?options ?norm ?expand sys] —
    horizon-free certificate for a systolic protocol: expands the period
    to growing lengths until the certified bound stabilizes (two
    consecutive doublings agree), so the caller does not have to guess an
    expansion length.  The result certifies every expansion at least as
    long as the analyzed one.  [expand] (default
    {!Delay_digraph.of_systolic}) builds each rung of the doubling
    ladder — a memoizing context injects its cached builder here. *)
val certify_systolic :
  ?lambdas:float list ->
  ?refine:bool ->
  ?options:Gossip_linalg.Spectral.options ->
  ?norm:(Delay_digraph.t -> float -> float) ->
  ?expand:(Gossip_protocol.Systolic.t -> length:int -> Delay_digraph.t) ->
  Gossip_protocol.Systolic.t ->
  t
