module Protocol = Gossip_protocol.Protocol
module Systolic = Gossip_protocol.Systolic

type activation = { src : int; dst : int; round : int }

type t = {
  graph : Gossip_topology.Digraph.t;
  window : int;
  protocol_length : int;
  activations : activation array;
  index : (int * int * int, int) Hashtbl.t; (* (src, dst, round) -> id *)
  by_dst : int array array; (* per network vertex, sorted by round *)
  by_src : int array array;
  out_arcs : (int * int) array array; (* id -> [(head, delay)] *)
  n_delay_arcs : int;
}

let build p ~window =
  if window < 2 then invalid_arg "Delay_digraph.build: window must be >= 2";
  let g = Protocol.graph p in
  let n = Gossip_topology.Digraph.n_vertices g in
  let t = Protocol.length p in
  let acts = ref [] and count = ref 0 in
  for i = t - 1 downto 0 do
    List.iter
      (fun (x, y) ->
        acts := { src = x; dst = y; round = i } :: !acts;
        incr count)
      (Protocol.round p i)
  done;
  let activations = Array.of_list !acts in
  let index = Hashtbl.create (2 * !count) in
  Array.iteri
    (fun id a -> Hashtbl.replace index (a.src, a.dst, a.round) id)
    activations;
  let by_dst_l = Array.make n [] and by_src_l = Array.make n [] in
  (* activations are sorted by round already; collect in reverse to keep
     the by-round order after the final List.rev *)
  for id = Array.length activations - 1 downto 0 do
    let a = activations.(id) in
    by_dst_l.(a.dst) <- id :: by_dst_l.(a.dst);
    by_src_l.(a.src) <- id :: by_src_l.(a.src)
  done;
  let by_dst = Array.map Array.of_list by_dst_l in
  let by_src = Array.map Array.of_list by_src_l in
  let n_delay_arcs = ref 0 in
  let out_arcs =
    Array.map
      (fun a ->
        let id_round = a.round in
        let succs = ref [] in
        (* successors: activations (dst, z, j) with 1 <= j - i < window *)
        Array.iter
          (fun head ->
            let b = activations.(head) in
            let delay = b.round - id_round in
            if delay >= 1 && delay < window then begin
              succs := (head, delay) :: !succs;
              incr n_delay_arcs
            end)
          by_src.(a.dst);
        Array.of_list (List.rev !succs))
      activations
  in
  {
    graph = g;
    window;
    protocol_length = t;
    activations;
    index;
    by_dst;
    by_src;
    out_arcs;
    n_delay_arcs = !n_delay_arcs;
  }

let of_systolic p ~length =
  (* clamp the window to 2 for period-1 protocols: the extra delay-1 arcs
     (full-duplex bounce-backs) only enlarge the delay digraph, which
     weakens but never unsounds the certificates built on it *)
  build (Systolic.expand p ~length) ~window:(max 2 (Systolic.period p))

let n_activations dg = Array.length dg.activations

let activation dg k = dg.activations.(k)

let find dg ~src ~dst ~round = Hashtbl.find_opt dg.index (src, dst, round)

let n_delay_arcs dg = dg.n_delay_arcs

let iter_arcs f dg =
  Array.iteri
    (fun tail succs ->
      Array.iter (fun (head, delay) -> f ~tail ~head ~delay) succs)
    dg.out_arcs

let window dg = dg.window
let protocol_length dg = dg.protocol_length
let graph dg = dg.graph

let activations_in dg x = dg.by_dst.(x)
let activations_out dg x = dg.by_src.(x)

(* The activations determine the whole delay digraph (its arcs follow
   from the window), so hashing them plus the dimensions is a faithful
   structural digest.  O(activations) per call — negligible next to any
   norm solve over the same digraph. *)
let fingerprint dg =
  let h = ref 0x7f4a7c15 in
  let mix x = h := (!h * 1_000_003) lxor x in
  mix dg.window;
  mix dg.protocol_length;
  let m = n_activations dg in
  mix m;
  for k = 0 to m - 1 do
    let a = dg.activations.(k) in
    mix a.src;
    mix a.dst;
    mix a.round
  done;
  Printf.sprintf "%s|n%d|dg%d@%d|%x"
    (Gossip_topology.Digraph.name dg.graph)
    (Gossip_topology.Digraph.n_vertices dg.graph)
    dg.window dg.protocol_length (!h land max_int)

let distances_from dg k =
  let m = n_activations dg in
  let dist = Array.make m max_int in
  let queue = Queue.create () in
  dist.(k) <- 0;
  Queue.add k queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun (v, delay) ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + delay;
          Queue.add v queue
        end)
      dg.out_arcs.(u)
  done;
  dist

let to_dot dg =
  let g = graph dg in
  let vertex_label k =
    let a = activation dg k in
    Printf.sprintf "%s->%s @%d"
      (Gossip_topology.Digraph.label g a.src)
      (Gossip_topology.Digraph.label g a.dst)
      (a.round + 1)
  in
  let arcs = ref [] in
  iter_arcs
    (fun ~tail ~head ~delay ->
      arcs := (tail, head, Printf.sprintf "label=\"%d\"" delay) :: !arcs)
    dg;
  Gossip_topology.Dot.of_arcs ~name:"delay digraph" ~directed:true
    ~vertex_label ~n:(n_activations dg) (List.rev !arcs)
