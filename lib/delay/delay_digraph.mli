(** The delay digraph of a gossip protocol (Definition 3.3).

    Given a protocol [⟨A_1, ..., A_t⟩], the delay digraph [DG] has one
    vertex per {e arc activation} [(x, y, i)] with [(x, y) ∈ A_i], and an
    arc from [(x, y, i)] to [(y, z, j)] — an item can cross [(x, y)] at
    round [i] and then [(y, z)] at round [j] — whenever [1 ≤ j - i < s],
    weighted by the delay [j - i].  For an s-systolic protocol delays
    beyond [s - 1] repeat an earlier activation of the same arc, which is
    why the window stops at [s - 1]; for an unrestricted protocol the
    window is the full length [t].

    We build [DG] for a concrete finite protocol (usually a systolic
    protocol expanded to its measured length): activations are indexed
    densely, and the structure remembers the middle vertex of every
    delay arc so the per-vertex blocks [Mx(λ)] of Section 4 can be
    extracted. *)

type activation = { src : int; dst : int; round : int }
(** Arc [src → dst] active at [round] (0-based). *)

type t

(** [build p ~window] constructs the delay digraph of the finite protocol
    [p] with the given delay window ([window = s] for a period-[s]
    systolic expansion, [window = length p] for an unrestricted
    protocol).
    @raise Invalid_argument if [window < 2]. *)
val build : Gossip_protocol.Protocol.t -> window:int -> t

(** [of_systolic p ~length] expands the systolic protocol to [length]
    rounds and builds its delay digraph with [window = max 2 (period p)]
    (a period-1 protocol has no chaining, and the clamped window only adds
    arcs, which weakens but never unsounds the certificates). *)
val of_systolic : Gossip_protocol.Systolic.t -> length:int -> t

(** [n_activations dg] is [|V'|]. *)
val n_activations : t -> int

(** [activation dg k] is the [k]-th activation. *)
val activation : t -> int -> activation

(** [find dg ~src ~dst ~round] is the index of that activation, if any. *)
val find : t -> src:int -> dst:int -> round:int -> int option

(** [n_delay_arcs dg] is [|A'|]. *)
val n_delay_arcs : t -> int

(** [iter_arcs f dg] applies [f ~tail ~head ~delay] to every delay arc
    (tail and head are activation indices). *)
val iter_arcs : (tail:int -> head:int -> delay:int -> unit) -> t -> unit

(** [window dg] is the delay window [s] it was built with, and
    [protocol_length dg] the underlying protocol length [t]. *)
val window : t -> int

val protocol_length : t -> int

(** [graph dg] is the underlying network. *)
val graph : t -> Gossip_topology.Digraph.t

(** [activations_in dg x] are indices of activations [(·, x, ·)] entering
    [x], sorted by round; [activations_out dg x] those leaving [x]. *)
val activations_in : t -> int -> int array

val activations_out : t -> int -> int array

(** [fingerprint dg] — structural digest of the delay digraph: network
    name and size, window, protocol length, and a rolling hash over the
    full activation list.  Two structurally different expansions of
    equal size yield different fingerprints (up to hash collision over
    62 bits).  Used as a cache key by {!Core.Context} and as the span
    tag of the certificate telemetry.  O(activations) per call. *)
val fingerprint : t -> string

(** [distances_from dg k] returns, for every activation, the total weight
    of a dipath from [k] to it ([max_int] when unreachable).  Along any
    dipath the weights telescope to the round difference of the
    endpoints — the "overall delay" property stated after Definition 3.3 —
    so all dipaths between two activations have equal length; the tests
    re-check this invariant. *)
val distances_from : t -> int -> int array

(** [to_dot dg] renders the delay digraph in Graphviz DOT: one node per
    activation labelled ["x->y @ round"], one arc per delay labelled with
    its weight. Intended for the small instances of the examples. *)
val to_dot : t -> string
