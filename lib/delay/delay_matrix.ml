module Dense = Gossip_linalg.Dense
module Sparse = Gossip_linalg.Sparse
module Spectral = Gossip_linalg.Spectral
module Poly = Gossip_linalg.Poly

let check_lambda lambda =
  if not (lambda > 0.0 && lambda < 1.0) then
    invalid_arg "Delay_matrix: lambda must be in (0, 1)"

let sparse dg lambda =
  check_lambda lambda;
  let m = Delay_digraph.n_activations dg in
  let entries = ref [] in
  Delay_digraph.iter_arcs
    (fun ~tail ~head ~delay ->
      entries := (tail, head, lambda ** float_of_int delay) :: !entries)
    dg;
  Sparse.of_triplets ~rows:m ~cols:m !entries

let vertex_block dg lambda x =
  check_lambda lambda;
  let ins = Delay_digraph.activations_in dg x in
  let outs = Delay_digraph.activations_out dg x in
  let w = Delay_digraph.window dg in
  Dense.init (Array.length ins) (Array.length outs) (fun i j ->
      let a = Delay_digraph.activation dg ins.(i) in
      let b = Delay_digraph.activation dg outs.(j) in
      let delay = b.Delay_digraph.round - a.Delay_digraph.round in
      if delay >= 1 && delay < w then lambda ** float_of_int delay else 0.0)

let norm ?options dg lambda =
  check_lambda lambda;
  Spectral.norm2_sparse ?options (sparse dg lambda)

let norm_blockwise ?options ?domains dg lambda =
  check_lambda lambda;
  Gossip_util.Instrument.span "delay.norm-blockwise" (fun () ->
      let g = Delay_digraph.graph dg in
      let n = Gossip_topology.Digraph.n_vertices g in
      let block_norm x =
        let block = vertex_block dg lambda x in
        if Dense.rows block > 0 && Dense.cols block > 0 then
          Spectral.norm2_dense ?options block
        else 0.0
      in
      (* Fused per-worker reduction: no per-vertex norm array (and no
         index array) is materialized for what is a single max. *)
      Gossip_util.Parallel.reduce ?domains n block_norm Float.max 0.0)

let closed_form_bound ~mode ~window lambda =
  check_lambda lambda;
  if window < 2 then invalid_arg "Delay_matrix.closed_form_bound: window < 2";
  match mode with
  | Gossip_protocol.Protocol.Directed | Gossip_protocol.Protocol.Half_duplex ->
      let hi = (window + 1) / 2 and lo = window / 2 in
      lambda
      *. sqrt (Poly.delay_eval hi lambda)
      *. sqrt (Poly.delay_eval lo lambda)
  | Gossip_protocol.Protocol.Full_duplex -> Poly.geometric lambda (window - 1)
