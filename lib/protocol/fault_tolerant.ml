type report = {
  transform : string;
  k : int;
  base_period : int;
  period : int;
  base_calls : int;
  calls : int;
  added_rounds : int;
  added_calls : int;
}

let calls_per_period t =
  let total = ref 0 in
  for i = 0 to Schedule.period t - 1 do
    total := !total + List.length (Schedule.round_arcs t i)
  done;
  !total

let report ~transform ~k ~base t =
  let base_period = Schedule.period base and period = Schedule.period t in
  let base_calls = calls_per_period base and calls = calls_per_period t in
  {
    transform;
    k;
    base_period;
    period;
    base_calls;
    calls;
    added_rounds = period - base_period;
    added_calls = calls - base_calls;
  }

let concat a b =
  let n = Schedule.n_vertices a in
  if Schedule.n_vertices b <> n then
    invalid_arg "Fault_tolerant.concat: vertex count mismatch";
  let sa = Schedule.period a and sb = Schedule.period b in
  let s = sa + sb in
  Schedule.make
    ~name:(Schedule.name a ^ "+" ^ Schedule.name b)
    ~n ~mode:(Schedule.mode a) ~period:s
    ~sender:(fun r v ->
      let i = r mod s in
      if i < sa then Schedule.sender a i v else Schedule.sender b (i - sa) v)

let replicate t ~k =
  if k < 0 then invalid_arg "Fault_tolerant.replicate: k must be >= 0";
  let s = Schedule.period t in
  let s' = s * (k + 1) in
  let hardened =
    Schedule.make
      ~name:(Printf.sprintf "%s rep%d" (Schedule.name t) (k + 1))
      ~n:(Schedule.n_vertices t) ~mode:(Schedule.mode t) ~period:s'
      ~sender:(fun r v -> Schedule.sender t (r mod s' / (k + 1)) v)
  in
  (hardened, report ~transform:"replicate" ~k ~base:t hardened)

(* The Chord-style walk: doubling strides 2, 4, 8, ... capped at n/2
   (stride o and n - o generate the same circulant graph), then the
   smallest unused strides fill the remainder on rings too short for k
   doublings. *)
let strides ~n ~k =
  if k < 0 then invalid_arg "Fault_tolerant.strides: k must be >= 0";
  let hi = n / 2 in
  if hi < 2 then []
  else begin
    let seen = Hashtbl.create 8 in
    let out = ref [] and count = ref 0 in
    let add o =
      if !count < k && not (Hashtbl.mem seen o) then begin
        Hashtbl.add seen o ();
        out := o :: !out;
        incr count
      end
    in
    let j = ref 1 in
    while !count < k && !j < 30 && 1 lsl !j <= hi do
      add (1 lsl !j);
      incr j
    done;
    let o = ref 2 in
    while !count < k && !o <= hi do
      add !o;
      incr o
    done;
    List.rev !out
  end

(* Extended gcd: returns (g, x) with x·a ≡ g (mod b), used to locate a
   vertex's position along its stride cycle. *)
let egcd a b =
  let rec go r0 r1 s0 s1 =
    if r1 = 0 then (r0, s0)
    else
      let q = r0 / r1 in
      go r1 (r0 - (q * r1)) s1 (s0 - (q * s1))
  in
  go a b 1 0

let modinv a m =
  let _, x = egcd a m in
  ((x mod m) + m) mod m

(* Pairing along the stride-[off] circulant: the arcs {v, v + off} form
   gcd(n, off) disjoint cycles of length n / gcd; color each with the
   cycle coloring.  Position of v on its cycle: v = c + p·off (mod n)
   with c = v mod g, so p = ((v - c) / g) · (off / g)⁻¹  (mod n/g). *)
let stride_pairing ~n ~off =
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let g = gcd n off in
  let len = n / g in
  if len = 2 then
    (* the antipodal stride: a perfect matching, one color *)
    ((fun t v -> if t = 0 then (v + off) mod n else -1), 1)
  else begin
    let inv = modinv (off / g) len in
    let pairing t v =
      let c = v mod g in
      let p = (v - c) / g * inv mod len in
      let p' = Schedule.cycle_partner len t p in
      if p' < 0 then -1 else (c + (p' * off)) mod n
    in
    (pairing, Schedule.cycle_colors len)
  end

let augment t ~k =
  if k < 0 then invalid_arg "Fault_tolerant.augment: k must be >= 0";
  let n = Schedule.n_vertices t in
  if n < 5 then invalid_arg "Fault_tolerant.augment: n must be >= 5";
  let full_duplex = Schedule.mode t = Protocol.Full_duplex in
  let chords =
    List.map
      (fun off ->
        let pairing, colors = stride_pairing ~n ~off in
        Schedule.of_pairing
          ~name:(Printf.sprintf "chord%d" off)
          ~n ~pairings:colors ~full_duplex pairing)
      (strides ~n ~k)
  in
  let hardened =
    match chords with
    | [] -> t
    | cs ->
        let joined = List.fold_left concat t cs in
        Schedule.make
          ~name:(Printf.sprintf "%s aug%d" (Schedule.name t) k)
          ~n ~mode:(Schedule.mode t) ~period:(Schedule.period joined)
          ~sender:(Schedule.sender joined)
  in
  (hardened, report ~transform:"augment" ~k ~base:t hardened)

let harden t ~transform ~k =
  match transform with
  | "none" ->
      let z = calls_per_period t and s = Schedule.period t in
      Ok
        ( t,
          {
            transform = "none";
            k;
            base_period = s;
            period = s;
            base_calls = z;
            calls = z;
            added_rounds = 0;
            added_calls = 0;
          } )
  | "replicate" -> (
      try Ok (replicate t ~k) with Invalid_argument msg -> Error msg)
  | "augment" -> (
      try Ok (augment t ~k) with Invalid_argument msg -> Error msg)
  | other ->
      Error
        (Printf.sprintf
           "unknown transform %S (expected none, replicate or augment)" other)

let report_to_json r =
  let module J = Gossip_util.Json in
  J.Obj
    [
      ("transform", J.Str r.transform);
      ("k", J.Int r.k);
      ("base_period", J.Int r.base_period);
      ("period", J.Int r.period);
      ("base_calls", J.Int r.base_calls);
      ("calls", J.Int r.calls);
      ("added_rounds", J.Int r.added_rounds);
      ("added_calls", J.Int r.added_calls);
    ]
