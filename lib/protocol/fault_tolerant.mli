(** Redundancy transforms: hardening a schedule against ≤k link faults.

    The paper's schemes are fault-free; Hovnanyan et al. (PAPERS.md)
    study the call overhead of making gossip k-fault-tolerant.  This
    module provides the constructive half of that trade-off as
    schedule-to-schedule transforms — take any {!Schedule.t} (or a
    materialized {!Systolic.t} via {!Schedule.of_systolic}) and a target
    resilience [k], emit a hardened schedule plus a {!report} of what
    the hardening cost in calls and rounds per period.

    Two transforms, matching the two fault regimes of
    [Simulate.Faults]:

    - {!replicate} — every round of the period is repeated [k + 1]
      times back to back.  Each transmission gets [k + 1] consecutive
      attempts, so any [<= k] {e transient} losses of one activation
      window still deliver.  Useless against a permanently dead arc
      (the same arc is dead in every repetition) and exactly
      [(k + 1)x] slower fault-free — the brute-force end of the
      trade-off.
    - {!augment} — the period is extended with {e chord} rounds:
      proper edge colorings of stride-[o] circulant cycles over the
      vertex ring, strides chosen Chord-style ([2, 4, 8, ...] replica
      walk, the same doubling walk [Cluster.Ring] uses for replica
      placement).  Chords are arc-disjoint from any unit-stride (cycle)
      arcs of the base period, so a permanently dead base arc has a
      detour that does not share it.  This is the transform that buys
      {e adversarial} resilience, certified by [Simulate.Certifier].

    Both transforms assume the input schedule is plain periodic
    (sender depends only on [round mod period]) — harden {e before}
    wrapping with {!Schedule.with_drops}, never after. *)

(** What a transform cost.  [calls] counts arc activations per period
    (a full-duplex exchange is two activations, matching
    [Protocol.arc_activations]). *)
type report = {
  transform : string;  (** ["replicate"] or ["augment"] *)
  k : int;  (** requested resilience target *)
  base_period : int;
  period : int;  (** hardened period *)
  base_calls : int;  (** activations per base period *)
  calls : int;  (** activations per hardened period *)
  added_rounds : int;  (** [period - base_period] *)
  added_calls : int;  (** [calls - base_calls] *)
}

(** [calls_per_period t] is the number of arc activations in one period
    of [t] — O(n · period). *)
val calls_per_period : Schedule.t -> int

(** [concat a b] runs one period of [a] then one period of [b], forever
    ([period = period a + period b], mode and name taken from [a]).
    Both inputs must be plain periodic schedules on the same vertex
    count.
    @raise Invalid_argument on a vertex-count mismatch. *)
val concat : Schedule.t -> Schedule.t -> Schedule.t

(** [replicate t ~k] repeats each round of [t]'s period [k + 1] times
    consecutively.
    @raise Invalid_argument on [k < 0]. *)
val replicate : Schedule.t -> k:int -> Schedule.t * report

(** [strides ~n ~k] is the Chord-style replica walk used by
    {!augment}: up to [k] distinct strides from the doubling sequence
    [2, 4, 8, ...] capped at [n/2] (stride [o] and [n - o] generate the
    same circulant), with the smallest unused strides filling the
    remainder on rings too short for [k] doublings.  Fewer than [k]
    strides are returned when [n] cannot supply [k] distinct ones. *)
val strides : n:int -> k:int -> int list

(** [augment t ~k] appends, for each stride of [strides ~n ~k], the
    proper edge coloring of the stride-[o] circulant over [t]'s vertex
    ring ({!Schedule.cycle_colors} colors per constituent cycle; a
    stride of exactly [n/2] is a perfect matching and costs one round).
    Rounds are exchange pairings split per [t]'s mode, exactly like the
    base generators.
    @raise Invalid_argument on [k < 0] or [n < 5] (no chord strides
    exist below 5 vertices). *)
val augment : Schedule.t -> k:int -> Schedule.t * report

(** [harden t ~transform ~k] dispatches on the transform name:
    ["replicate"], ["augment"], or ["none"] (identity, zero-cost
    report).  Total: an unknown name or a transform precondition
    failure ([k < 0], [n < 5]) comes back as [Error], never an
    exception. *)
val harden :
  Schedule.t -> transform:string -> k:int -> (Schedule.t * report, string) result

(** [report_to_json r] — [{transform, k, base_period, period,
    base_calls, calls, added_rounds, added_calls}]. *)
val report_to_json : report -> Gossip_util.Json.t
