module Digraph = Gossip_topology.Digraph
module Implicit = Gossip_topology.Implicit

type t = {
  name : string;
  n : int;
  mode : Protocol.mode;
  period : int;
  sender : int -> int -> int;
}

let make ~name ~n ~mode ~period ~sender =
  if n < 0 then invalid_arg "Schedule.make: negative vertex count";
  if period < 1 then invalid_arg "Schedule.make: period must be >= 1";
  { name; n; mode; period; sender }

let name t = t.name
let n_vertices t = t.n
let mode t = t.mode
let period t = t.period

let sender t round v =
  if round < 0 then invalid_arg "Schedule.sender: negative round";
  t.sender round v

(* --- the materialized protocols as one instance ---------------------- *)

let of_systolic sys =
  let g = Systolic.graph sys in
  let n = Digraph.n_vertices g in
  let s = Systolic.period sys in
  (* receiver-indexed sender tables, one per period round: a round is a
     matching, so every receiver has exactly one sender *)
  let tables =
    Array.init s (fun i ->
        let snd = Array.make (max 1 n) (-1) in
        List.iter (fun (x, y) -> snd.(y) <- x) (Systolic.period_round sys i);
        snd)
  in
  {
    name = Digraph.name g;
    n;
    mode = Systolic.mode sys;
    period = s;
    sender = (fun r v -> tables.(r mod s).(v));
  }

(* --- bridging back to the materialized world (small n only) ---------- *)

let round_arcs t i =
  let arcs = ref [] in
  for v = t.n - 1 downto 0 do
    let x = t.sender i v in
    if x >= 0 then arcs := (x, v) :: !arcs
  done;
  !arcs

let to_systolic t g =
  if Digraph.n_vertices g <> t.n then
    invalid_arg "Schedule.to_systolic: vertex count mismatch";
  Systolic.make g t.mode (List.init t.period (round_arcs t))

(* --- faults on the arc stream ---------------------------------------- *)

let with_drops t ~drop =
  {
    t with
    name = t.name ^ "+drops";
    sender =
      (fun r v ->
        let x = t.sender r v in
        if x < 0 || drop ~round:r ~u:x ~v then -1 else x);
  }

(* --- structured periodic matchings ----------------------------------- *)

(* Direction-split wrapper: an exchange pairing becomes a half-duplex
   schedule of twice the period — lower endpoint sends on even rounds,
   higher on odd.  [pairing t v] is the partner of [v] in pairing [t]
   (or -1), and must be an involution: pairing t (pairing t v) = v. *)
let of_pairing ~name ~n ~pairings ~full_duplex pairing =
  if full_duplex then
    make ~name ~n ~mode:Protocol.Full_duplex ~period:pairings
      ~sender:(fun r v -> pairing (r mod pairings) v)
  else
    make ~name ~n ~mode:Protocol.Half_duplex
      ~period:(2 * pairings)
      ~sender:(fun r v ->
        let r = r mod (2 * pairings) in
        let p = pairing (r / 2) v in
        if p < 0 then -1
        else if r mod 2 = 0 then if p < v then p else -1
        else if p > v then p
        else -1)

(* Proper coloring of the cycle on [len] vertices: edge j joins j and
   j+1 mod len; colors alternate, with the closing edge taking a third
   color when [len] is odd. *)
let cycle_colors len = if len mod 2 = 0 then 2 else 3

let cycle_edge_color len j = if j = len - 1 && len mod 2 = 1 then 2 else j mod 2

let cycle_partner len color x =
  if cycle_edge_color len x = color then (x + 1) mod len
  else if cycle_edge_color len ((x + len - 1) mod len) = color then
    (x + len - 1) mod len
  else -1

let hypercube_sweep ~dim ~full_duplex =
  if dim < 1 then invalid_arg "Schedule.hypercube_sweep: dim must be >= 1";
  of_pairing
    ~name:(Printf.sprintf "Q(%d) sweep" dim)
    ~n:(1 lsl dim) ~pairings:dim ~full_duplex
    (fun t v -> v lxor (1 lsl t))

let cycle_alternating ~n ~full_duplex =
  if n < 3 then invalid_arg "Schedule.cycle_alternating: n must be >= 3";
  of_pairing
    ~name:(Printf.sprintf "C(%d) alternating" n)
    ~n ~pairings:(cycle_colors n) ~full_duplex
    (fun t v -> cycle_partner n t v)

let torus_colored ~rows ~cols ~full_duplex =
  if rows < 3 || cols < 3 then
    invalid_arg "Schedule.torus_colored: sides must be >= 3";
  let hc = cycle_colors cols and vc = cycle_colors rows in
  of_pairing
    ~name:(Printf.sprintf "Torus(%dx%d) colored" rows cols)
    ~n:(rows * cols) ~pairings:(hc + vc) ~full_duplex
    (fun t v ->
      let r = v / cols and c = v mod cols in
      if t < hc then
        let c' = cycle_partner cols t c in
        if c' < 0 then -1 else (r * cols) + c'
      else
        let r' = cycle_partner rows (t - hc) r in
        if r' < 0 then -1 else (r' * cols) + c)

let ccc_colored ~dim ~full_duplex =
  if dim < 3 then invalid_arg "Schedule.ccc_colored: dim must be >= 3";
  let cc = cycle_colors dim in
  of_pairing
    ~name:(Printf.sprintf "CCC(%d) colored" dim)
    ~n:(dim * (1 lsl dim))
    ~pairings:(cc + 1) ~full_duplex
    (fun t v ->
      let w = v / dim and i = v mod dim in
      if t < cc then
        let i' = cycle_partner dim t i in
        if i' < 0 then -1 else (w * dim) + i'
      else (w lxor (1 lsl i)) * dim + i)

(* --- seeded mutual-proposal matchings over any implicit topology ----- *)

(* Deterministic avalanche mix of (seed, round, vertex) — no state, safe
   to evaluate from any worker domain. *)
let mix seed r v =
  let h = seed + (r * 0x9E3779B97F4A7C) + (v * 0xBF58476D1CE4E5) in
  let h = h lxor (h lsr 21) in
  let h = h * 0xFF51AFD7ED558C in
  let h = h lxor (h lsr 17) in
  let h = h * 0xC4CEB9FE1A85EC in
  (h lxor (h lsr 26)) land max_int

let proposal imp ~period ~seed ~full_duplex =
  if period < 1 then invalid_arg "Schedule.proposal: period must be >= 1";
  let n = Implicit.n_vertices imp in
  let slots = Implicit.slots imp in
  (* Every vertex nominates one raw candidate slot per pairing; an
     exchange happens exactly when two nominations are mutual.  Each
     vertex has at most one mutual partner, so the pairing is a matching
     by construction; self- and out-of-range slots simply idle. *)
  let candidate t v =
    let u = Implicit.slot imp v (mix seed t v mod slots) in
    if u = v || u < 0 || u >= n then -1 else u
  in
  let pairing t v =
    let u = candidate t v in
    if u >= 0 && candidate t u = v then u else -1
  in
  of_pairing
    ~name:(Printf.sprintf "%s proposal(s=%d,seed=%d)" (Implicit.name imp)
             period seed)
    ~n ~pairings:period ~full_duplex pairing

(* --- family resolution ------------------------------------------------ *)

let of_family ~family ~n ~degree ?(period = 64) ?(seed = 1) ~full_duplex () =
  match Implicit.of_family ~family ~n ~degree with
  | Error _ as e -> e
  | Ok imp -> (
      let actual = Implicit.n_vertices imp in
      match family with
      | "hypercube" ->
          let dim =
            let rec go d = if 1 lsl d >= actual then d else go (d + 1) in
            go 1
          in
          Ok (imp, hypercube_sweep ~dim ~full_duplex)
      | "cycle" -> Ok (imp, cycle_alternating ~n:actual ~full_duplex)
      | "torus" ->
          let side = int_of_float (sqrt (float_of_int actual) +. 0.5) in
          Ok (imp, torus_colored ~rows:side ~cols:side ~full_duplex)
      | "ccc" ->
          let dim =
            let rec go d = if d * (1 lsl d) >= actual then d else go (d + 1) in
            go 3
          in
          Ok (imp, ccc_colored ~dim ~full_duplex)
      | _ -> Ok (imp, proposal imp ~period ~seed ~full_duplex))
