(** Implicit periodic schedules: rounds as generator functions.

    A systolic protocol repeats a period of matchings forever.  The
    materialized {!Systolic.t} stores those matchings as arc lists over a
    {!Digraph.t}; at a million vertices neither fits in memory.  This
    module represents a schedule as a pure {e sender function}
    [sender round v] — the vertex transmitting to [v] in [round], or
    [-1] — so each round's matching is recomputed blockwise by the
    chunked engine and never stored.  The materialized protocols become
    one instance via {!of_systolic}, and {!to_systolic} bridges back so
    property tests can pin implicit schedules against the legacy engine
    on small instances. *)

type t

(** [make ~name ~n ~mode ~period ~sender] wraps a sender function.
    Requirements on [sender round v] for [0 <= v < n], [round >= 0]:
    pure, total, and every round must be a matching — distinct receivers
    have distinct senders, and (half-duplex) no sender is also a
    receiver; full-duplex rounds may pair mutual senders.  Periodicity
    ([sender (round + period) = sender round]) is expected of plain
    schedules but intentionally {e not} of fault-wrapped ones
    ({!with_drops} keys drops on the absolute round index).
    @raise Invalid_argument on [n < 0] or [period < 1]. *)
val make :
  name:string ->
  n:int ->
  mode:Protocol.mode ->
  period:int ->
  sender:(int -> int -> int) ->
  t

val name : t -> string
val n_vertices : t -> int
val mode : t -> Protocol.mode
val period : t -> int

(** [sender t round v] is the vertex transmitting to [v] in (absolute)
    [round], or [-1] when [v] only listens.
    @raise Invalid_argument on [round < 0]. *)
val sender : t -> int -> int -> int

(** [of_systolic sys] views a materialized systolic protocol as a
    schedule, precomputing one receiver-indexed sender table per period
    round.  Sender functions agree arc-for-arc with
    {!Systolic.period_round}. *)
val of_systolic : Systolic.t -> t

(** [round_arcs t i] materializes round [i] as a sorted arc list —
    bridging and tests only; O(n). *)
val round_arcs : t -> int -> (int * int) list

(** [to_systolic t g] materializes one full period over graph [g],
    re-validated by {!Protocol.make} (every arc in [g], every round a
    matching).  Note: full-duplex validation {e closes} rounds with
    reverse arcs; generators in this module emit mutual pairs already,
    so closure is the identity.
    @raise Invalid_argument when the schedule violates protocol
    invariants or vertex counts differ. *)
val to_systolic : t -> Gossip_topology.Digraph.t -> Systolic.t

(** [with_drops t ~drop] suppresses arc [(u, v)] in [round] whenever
    [drop ~round ~u ~v] holds — message loss on the implicit arc stream.
    Dropping one direction of a full-duplex exchange legally degrades it
    to a one-directional transmission.  [round] is absolute, so i.i.d.
    fault processes do not repeat each period. *)
val with_drops : t -> drop:(round:int -> u:int -> v:int -> bool) -> t

(** {1 Pairing plumbing}

    Exported for transform modules ({!Fault_tolerant}) that build extra
    rounds out of exchange pairings. *)

(** [of_pairing ~name ~n ~pairings ~full_duplex pairing] turns an
    exchange pairing family into a schedule.  [pairing t v] is the
    partner of [v] in pairing [t] (or [-1]) and must be an involution:
    [pairing t (pairing t v) = v].  With [~full_duplex:true] the period
    is [pairings]; otherwise every pairing is split into a
    lower-endpoint-sends-first round pair and the period doubles. *)
val of_pairing :
  name:string ->
  n:int ->
  pairings:int ->
  full_duplex:bool ->
  (int -> int -> int) ->
  t

(** [cycle_colors len] is the number of colors in the proper edge
    coloring of the [len]-cycle used by {!cycle_alternating}: 2 when
    [len] is even, 3 when odd. *)
val cycle_colors : int -> int

(** [cycle_partner len color x] is the neighbor of [x] along the
    [color]-colored edge of the [len]-cycle, or [-1] when no incident
    edge has that color. *)
val cycle_partner : int -> int -> int -> int

(** {1 Structured generators}

    Closed-form proper edge colorings turned into periodic schedules;
    with [~full_duplex:false] every exchange pairing is split into a
    lower-sends-first round pair (period doubles).  Each is complete: a
    full period activates every edge of the underlying family at least
    once, so repeated periods gossip. *)

(** Dimension sweep on [Q(dim)]: pairing [t] matches [v] with
    [v lxor (1 lsl t)]; period [dim] (full duplex). *)
val hypercube_sweep : dim:int -> full_duplex:bool -> t

(** Alternating-edge coloring of the [n]-cycle: 2 colors when [n] is
    even, 3 when odd. *)
val cycle_alternating : n:int -> full_duplex:bool -> t

(** Row-ring then column-ring colorings of the [rows] x [cols] torus
    (2 or 3 each by side parity). *)
val torus_colored : rows:int -> cols:int -> full_duplex:bool -> t

(** Cycle colors on each dimension-cycle of [CCC(dim)] plus one rung
    color (the rungs form a perfect matching). *)
val ccc_colored : dim:int -> full_duplex:bool -> t

(** {1 Unstructured generators} *)

(** [proposal imp ~period ~seed ~full_duplex] — seeded mutual-proposal
    matchings over the raw slots of an implicit topology, for families
    with no closed-form edge coloring (de Bruijn, Kautz).  Every vertex
    nominates one pseudorandom candidate slot per pairing; an exchange
    happens exactly when nominations are mutual, so rounds are matchings
    by construction.  With degree-bounded families a vertex is isolated
    for a whole default period with probability well under [1e-7], so
    repeated periods gossip with overwhelming probability; completion is
    probabilistic, not guaranteed.
    @raise Invalid_argument on [period < 1]. *)
val proposal : Gossip_topology.Implicit.t -> period:int -> seed:int -> full_duplex:bool -> t

(** {1 Family resolution} *)

(** [of_family ~family ~n ~degree ~full_duplex ()] resolves a family
    name (see {!Gossip_topology.Implicit.known_families}) to the
    smallest instance with at least [n] vertices, paired with its
    natural schedule: structured colorings for hypercube, cycle, torus
    and CCC; {!proposal} (with [?period], [?seed], defaults 64 and 1)
    for de Bruijn and Kautz. *)
val of_family :
  family:string ->
  n:int ->
  degree:int ->
  ?period:int ->
  ?seed:int ->
  full_duplex:bool ->
  unit ->
  (Gossip_topology.Implicit.t * t, string) result
