module Digraph = Gossip_topology.Digraph
module Protocol = Gossip_protocol.Protocol
module Systolic = Gossip_protocol.Systolic
module Prng = Gossip_util.Prng

type options = {
  iterations : int;
  restarts : int;
  seed : int;
  cap : int;
  batch : int;
  domains : int option;
}

let default_options =
  { iterations = 400; restarts = 3; seed = 1; cap = 0; batch = 1; domains = None }

let check_size g =
  if Digraph.n_vertices g > 62 then
    invalid_arg "Optimizer: networks over 62 vertices are not supported"

(* Objective: (completion time, or cap + unknown-pairs) — lower better.
   Mask-based simulation, no allocation beyond two arrays. *)
let evaluate g period ~cap =
  let n = Digraph.n_vertices g in
  let state = Array.init n (fun v -> 1 lsl v) in
  let snapshot = Array.make n 0 in
  let full = (1 lsl n) - 1 in
  let s = Array.length period in
  let result = ref None in
  let t = ref 0 in
  while !result = None && !t < cap do
    let round = period.(!t mod s) in
    List.iter (fun (x, _) -> snapshot.(x) <- state.(x)) round;
    List.iter (fun (x, y) -> state.(y) <- state.(y) lor snapshot.(x)) round;
    incr t;
    if Array.for_all (fun m -> m = full) state then result := Some !t
  done;
  match !result with
  | Some time -> (time, Some time)
  | None ->
      let known =
        Array.fold_left
          (fun acc m ->
            let rec pop acc m = if m = 0 then acc else pop (acc + 1) (m land (m - 1)) in
            pop acc m)
          0 state
      in
      (cap + ((n * n) - known), None)

(* One random mutation of the period (fresh arrays; never mutates the
   input). *)
let mutate rng g mode period =
  let s = Array.length period in
  let copy = Array.map (fun r -> r) period in
  let fresh_round () =
    match
      Gossip_protocol.Builders.random_systolic g mode ~period:1
        ~seed:(Prng.int rng 1_000_000) ~density:1.0
    with
    | sys -> Systolic.period_round sys 0
  in
  match Prng.int rng 3 with
  | 0 ->
      (* replace a round *)
      copy.(Prng.int rng s) <- fresh_round ();
      copy
  | 1 ->
      (* swap two rounds *)
      let i = Prng.int rng s and j = Prng.int rng s in
      let t = copy.(i) in
      copy.(i) <- copy.(j);
      copy.(j) <- t;
      copy
  | _ ->
      (* drop one arc from a round, or try to add one *)
      let i = Prng.int rng s in
      let round = copy.(i) in
      if round <> [] && Prng.bool rng then begin
        let k = Prng.int rng (List.length round) in
        copy.(i) <- List.filteri (fun j _ -> j <> k) round;
        copy
      end
      else begin
        (* add a random valid arc if one fits *)
        let busy = Hashtbl.create 16 in
        List.iter
          (fun (u, v) ->
            Hashtbl.replace busy u ();
            Hashtbl.replace busy v ())
          round;
        let arcs = Array.of_list (Digraph.arcs g) in
        Prng.shuffle rng arcs;
        let added = ref false in
        Array.iter
          (fun (u, v) ->
            if
              (not !added)
              && (not (Hashtbl.mem busy u))
              && not (Hashtbl.mem busy v)
            then begin
              (match mode with
              | Protocol.Full_duplex ->
                  copy.(i) <- (u, v) :: (v, u) :: round
              | Protocol.Directed | Protocol.Half_duplex ->
                  copy.(i) <- (u, v) :: round);
              added := true
            end)
          arcs;
        copy
      end

let effective_cap options g s =
  if options.cap > 0 then options.cap
  else (8 * s * Digraph.n_vertices g) + 64

(* Candidate evaluation is the hot loop: [evaluate] is pure, so a batch
   of mutations drawn sequentially from the rng (keeping the random
   stream deterministic) can be scored concurrently.  With [batch = 1]
   (the default) the accept/reject trajectory is bit-identical to the
   classic sequential climber; larger batches explore [batch] neighbours
   of the incumbent per step and greedily take the best scoring one. *)
let climb rng g mode ~cap ~iterations ~batch ~domains start =
  let batch = max 1 batch in
  let best = ref start in
  let best_score = ref (fst (evaluate g start ~cap)) in
  for _ = 1 to iterations do
    let candidates = Array.init batch (fun _ -> mutate rng g mode !best) in
    let scores =
      Gossip_util.Parallel.map ?domains
        (fun candidate -> fst (evaluate g candidate ~cap))
        candidates
    in
    let pick = ref 0 in
    for i = 1 to batch - 1 do
      if scores.(i) < scores.(!pick) then pick := i
    done;
    if scores.(!pick) <= !best_score then begin
      best := candidates.(!pick);
      best_score := scores.(!pick)
    end
  done;
  (!best, !best_score)

let finish g mode ~cap period =
  let sys = Systolic.make g mode (Array.to_list period) in
  (* full-duplex rounds get reversal-closed by [Systolic.make]; measure
     the protocol as it will actually run *)
  let closed = Array.of_list (Systolic.period_rounds sys) in
  let _, time = evaluate g closed ~cap in
  (sys, time)

let improve ?(options = default_options) sys =
  let g = Systolic.graph sys in
  check_size g;
  let mode = Systolic.mode sys in
  let s = Systolic.period sys in
  let cap = effective_cap options g s in
  let rng = Prng.create options.seed in
  let start = Array.of_list (Systolic.period_rounds sys) in
  let best = ref start in
  let best_score = ref (fst (evaluate g start ~cap)) in
  for _ = 1 to max 1 options.restarts do
    let p, score =
      climb rng g mode ~cap ~iterations:options.iterations
        ~batch:options.batch ~domains:options.domains !best
    in
    if score <= !best_score then begin
      best := p;
      best_score := score
    end
  done;
  finish g mode ~cap !best

let search ?(options = default_options) g mode ~s =
  check_size g;
  if s < 1 then invalid_arg "Optimizer.search: s must be >= 1";
  let cap = effective_cap options g s in
  let rng = Prng.create options.seed in
  let random_start () =
    Array.init s (fun _ ->
        Systolic.period_round
          (Gossip_protocol.Builders.random_systolic g mode ~period:1
             ~seed:(Prng.int rng 1_000_000) ~density:1.0)
          0)
  in
  let best = ref (random_start ()) in
  let best_score = ref (fst (evaluate g !best ~cap)) in
  for _ = 1 to max 1 options.restarts do
    let start = random_start () in
    let p, score =
      climb rng g mode ~cap ~iterations:options.iterations
        ~batch:options.batch ~domains:options.domains start
    in
    if score <= !best_score then begin
      best := p;
      best_score := score
    end
  done;
  finish g mode ~cap !best
