(** Local-search optimization of systolic periods.

    Exhaustive search ({!Systolic_optimal}) stops being affordable around
    a dozen vertices; this hill climber scales to medium networks and
    produces much better upper bounds than random sampling — the
    experiment side of the paper's story needs decent protocols to
    sandwich the bounds.

    State: a period (array of rounds).  Moves: replace a round by a fresh
    random matching, swap two rounds, or toggle one arc of a round
    (keeping it a matching).  Objective: completion time if gossip
    completes within the cap, else [cap + (pairs still unknown)] so that
    non-completing periods still expose a gradient.  Deterministic given
    the seed. *)

type options = {
  iterations : int;  (** local moves per restart *)
  restarts : int;
  seed : int;
  cap : int;  (** simulation horizon per evaluation *)
  batch : int;
      (** candidates drawn and scored per move (default 1 — the classic
          sequential climber, trajectory bit-identical to older
          versions); larger batches score their candidates in parallel
          through {!Gossip_util.Parallel} and greedily take the best *)
  domains : int option;
      (** workers for batched scoring; [None] defers to
          {!Gossip_util.Parallel.recommended_domains} *)
}

(** [default_options] — 400 iterations, 3 restarts, seed 1,
    cap [8·s·n]-ish chosen per call, batch 1, machine-sized domains. *)
val default_options : options

(** [improve ?options sys] — hill-climb starting from [sys]; returns the
    best protocol found and its measured gossip time ([None] if even the
    best found does not complete within the cap). *)
val improve : ?options:options -> Gossip_protocol.Systolic.t ->
  Gossip_protocol.Systolic.t * int option

(** [search ?options g mode ~s] — hill-climb from random initial periods
    of length [s].
    @raise Invalid_argument if the network has more than 62 vertices (the
    evaluator packs knowledge sets into int masks). *)
val search :
  ?options:options ->
  Gossip_topology.Digraph.t ->
  Gossip_protocol.Protocol.mode ->
  s:int ->
  Gossip_protocol.Systolic.t * int option
