type 'a t = {
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
  mu : Mutex.t;
  nonempty : Condition.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bounded_queue.create: capacity < 1";
  {
    items = Queue.create ();
    capacity;
    closed = false;
    mu = Mutex.create ();
    nonempty = Condition.create ();
  }

let with_lock q f =
  Mutex.lock q.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock q.mu) f

let try_push q x =
  with_lock q (fun () ->
      if q.closed then `Closed
      else if Queue.length q.items >= q.capacity then `Full
      else begin
        Queue.push x q.items;
        Condition.signal q.nonempty;
        `Ok
      end)

let pop q =
  with_lock q (fun () ->
      while Queue.is_empty q.items && not q.closed do
        Condition.wait q.nonempty q.mu
      done;
      if Queue.is_empty q.items then None else Some (Queue.pop q.items))

let close q =
  with_lock q (fun () ->
      if not q.closed then begin
        q.closed <- true;
        (* every blocked consumer must re-check the closed flag *)
        Condition.broadcast q.nonempty
      end)

let length q = with_lock q (fun () -> Queue.length q.items)
let capacity q = q.capacity
let is_closed q = with_lock q (fun () -> q.closed)
