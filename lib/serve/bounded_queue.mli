(** Bounded multi-producer / multi-consumer blocking queue.

    The server's admission point: connection readers [try_push] parsed
    requests and the worker pool [pop]s them.  The bound is the server's
    {e backpressure} — when the queue is full, [try_push] fails
    immediately and the caller replies [queue_full] instead of buffering
    without limit.  Producers never block; only consumers do.

    Safe across threads and domains (one mutex, one condition); [pop]
    wakes promptly on push and on close. *)

type 'a t

(** [create ~capacity] — an empty queue holding at most [capacity]
    elements.  @raise Invalid_argument if [capacity < 1]. *)
val create : capacity:int -> 'a t

(** [try_push q x] — [`Ok] and enqueued, [`Full] when at capacity,
    [`Closed] after {!close}.  Never blocks. *)
val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]

(** [pop q] blocks until an element is available ([Some x]) or the queue
    is closed {e and} drained ([None]).  Elements pushed before {!close}
    are still delivered — close means "no new work", not "drop work". *)
val pop : 'a t -> 'a option

(** [close q] — reject further pushes and, once the backlog drains, make
    every blocked and future [pop] return [None].  Idempotent. *)
val close : 'a t -> unit

val length : 'a t -> int
val capacity : 'a t -> int
val is_closed : 'a t -> bool
