open Gossip_util

exception Panic

type reply_fault = Drop | Corrupt | Delay_ms of int

type decision = {
  dispatch_latency_ms : int;
  panic : bool;
  reply : reply_fault option;
}

let no_fault = { dispatch_latency_ms = 0; panic = false; reply = None }

type t = {
  seed : int;
  drop : float;
  corrupt : float;
  delay : float;
  delay_ms : int;
  panic_p : float;
  dispatch_latency : float;
  dispatch_latency_ms : int;
}

let check_p name p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Chaos: %s must be in [0, 1]" name)

let check_ms name ms =
  if ms < 0 then invalid_arg (Printf.sprintf "Chaos: %s must be >= 0" name)

let make ?(seed = 0) ?(drop = 0.0) ?(corrupt = 0.0) ?(delay = 0.0)
    ?(delay_ms = 25) ?(panic = 0.0) ?(dispatch_latency = 0.0)
    ?(dispatch_latency_ms = 25) () =
  check_p "drop" drop;
  check_p "corrupt" corrupt;
  check_p "delay" delay;
  check_p "panic" panic;
  check_p "dispatch-latency" dispatch_latency;
  check_ms "delay-ms" delay_ms;
  check_ms "dispatch-latency-ms" dispatch_latency_ms;
  if drop +. corrupt +. delay > 1.0 then
    invalid_arg "Chaos: drop + corrupt + delay must be at most 1";
  if drop = 0.0 && corrupt = 0.0 && delay = 0.0 && panic = 0.0 && dispatch_latency = 0.0
  then None
  else
    Some
      {
        seed;
        drop;
        corrupt;
        delay;
        delay_ms;
        panic_p = panic;
        dispatch_latency;
        dispatch_latency_ms;
      }

(* One throwaway splitmix stream per request, seeded from (plan seed,
   req_id).  The multiplier spreads consecutive req_ids across the seed
   space; splitmix's finalizer does the rest. *)
let decide t ~req_id =
  let rng = Prng.create (t.seed + (req_id * 0x2545F491)) in
  let dispatch_latency_ms =
    if t.dispatch_latency > 0.0 && Prng.float rng 1.0 < t.dispatch_latency then
      t.dispatch_latency_ms
    else 0
  in
  let panic = t.panic_p > 0.0 && Prng.float rng 1.0 < t.panic_p in
  (* A single uniform draw against cumulative thresholds keeps the three
     reply faults mutually exclusive with the advertised marginals. *)
  let u = Prng.float rng 1.0 in
  let reply =
    if u < t.drop then Some Drop
    else if u < t.drop +. t.corrupt then Some Corrupt
    else if u < t.drop +. t.corrupt +. t.delay then Some (Delay_ms t.delay_ms)
    else None
  in
  { dispatch_latency_ms; panic; reply }

let describe t =
  Printf.sprintf
    "seed=%d drop=%.3f corrupt=%.3f delay=%.3f(%dms) panic=%.3f \
     dispatch-latency=%.3f(%dms)"
    t.seed t.drop t.corrupt t.delay t.delay_ms t.panic_p t.dispatch_latency
    t.dispatch_latency_ms

let to_json t =
  Json.Obj
    [
      ("seed", Json.Int t.seed);
      ("drop", Json.Float t.drop);
      ("corrupt", Json.Float t.corrupt);
      ("delay", Json.Float t.delay);
      ("delay_ms", Json.Int t.delay_ms);
      ("panic", Json.Float t.panic_p);
      ("dispatch_latency", Json.Float t.dispatch_latency);
      ("dispatch_latency_ms", Json.Int t.dispatch_latency_ms);
    ]
