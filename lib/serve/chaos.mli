(** Seeded, deterministic fault injection for the serving stack.

    A chaos plan is a set of per-request fault probabilities.  The
    decision for a request is a pure function of [(seed, req_id)] — two
    servers booted with the same seed inject exactly the same faults on
    the same request ids, whichever worker picks each job up and in
    whatever order.  That determinism is what makes a chaos soak
    debuggable: a failure reproduces from the seed.

    Faults model the ways a serving process really misbehaves:

    - {e dispatch latency}: the worker stalls before evaluating
      (CPU contention, a cold cache, a GC pause);
    - {e worker panic}: the worker domain dies mid-job (the job is still
      answered [internal] by the exception barrier, then the domain
      terminates and the {!Supervisor} respawns it);
    - {e dropped reply}: the evaluation completes but the reply never
      leaves (a lost packet, a crashed proxy) — the client's deadline is
      its only recourse;
    - {e corrupted reply}: the reply frame is garbled on write (still
      one line, so framing survives; the payload does not);
    - {e delayed reply}: the reply leaves late (a saturated NIC, a slow
      peer).

    Chaos applies to {e queued} operations only.  The inline
    observability ops ([metrics] / [health] / [spans]) are never
    faulted: they are the instruments by which an operator watches the
    storm, and blinding them would make every soak unobservable.

    A disabled plan is represented as [None] ({!make} returns [None]
    when every probability is zero), so the server's hot path pays one
    pattern match on an option and nothing else. *)

type t

(** Raised by the server's worker when the plan injects a panic; treated
    by the worker-loop barrier as a simulated domain crash — the job is
    answered [internal], then the exception escapes and kills the
    domain so the supervisor's respawn path runs for real. *)
exception Panic

(** What a reply suffers, at most one per request. *)
type reply_fault =
  | Drop  (** evaluate, then never write the reply *)
  | Corrupt  (** write a deliberately unparsable frame instead *)
  | Delay_ms of int  (** sleep this long before writing the reply *)

type decision = {
  dispatch_latency_ms : int;  (** stall before evaluation; 0 = none *)
  panic : bool;  (** kill the worker domain on this job *)
  reply : reply_fault option;
}

(** The all-clear decision; what a disabled plan always yields. *)
val no_fault : decision

(** [make ()] builds a plan, or [None] when every probability is zero —
    callers thread the option so a disabled plan costs one match.
    Probabilities default to [0.0]; magnitudes ([delay_ms],
    [dispatch_latency_ms]) default to 25 ms.  [drop], [corrupt] and
    [delay] are mutually exclusive per request and must sum to at most
    1; [panic] and [dispatch_latency] are drawn independently.
    @raise Invalid_argument on a probability outside [0, 1], a sum of
    reply probabilities above 1, or a negative magnitude. *)
val make :
  ?seed:int ->
  ?drop:float ->
  ?corrupt:float ->
  ?delay:float ->
  ?delay_ms:int ->
  ?panic:float ->
  ?dispatch_latency:float ->
  ?dispatch_latency_ms:int ->
  unit ->
  t option

(** [decide t ~req_id] — the faults this request suffers.  Pure in
    [(seed, req_id)]: stable across workers, threads and reorderings. *)
val decide : t -> req_id:int -> decision

(** [describe t] — a one-line human summary for the startup banner. *)
val describe : t -> string

(** [to_json t] — the plan's parameters, for reports and traces. *)
val to_json : t -> Gossip_util.Json.t
