module Json = Gossip_util.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let sockaddr_of_listen = function
  | Server.Unix_socket path -> Unix.ADDR_UNIX path
  | Server.Tcp (host, port) ->
      let addr =
        match Unix.inet_addr_of_string host with
        | addr -> addr
        | exception Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.ADDR_INET (addr, port)

(* Bounded connect: non-blocking [connect], then wait for writability
   under a deadline.  Without this a black-holed peer (SYN swallowed, no
   RST — a dead VM, a dropped route) wedges the caller in the kernel's
   minutes-long connect timeout; reads were already deadline-bounded
   ({!Resilient_client}), the connect path was the remaining hole. *)
let connect_deadline fd addr ~timeout_ms =
  Unix.set_nonblock fd;
  let finish_blocking () = Unix.clear_nonblock fd in
  (match Unix.connect fd addr with
  | () -> finish_blocking ()
  | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _) -> (
      let timeout_s = float_of_int timeout_ms /. 1000.0 in
      match Unix.select [] [ fd ] [] timeout_s with
      | _, [], _ ->
          raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
      | _ -> (
          (* writable: the handshake finished — successfully or not;
             the verdict is in SO_ERROR *)
          match Unix.getsockopt_error fd with
          | None -> finish_blocking ()
          | Some err -> raise (Unix.Unix_error (err, "connect", "")))))

let connect ?connect_timeout_ms listen =
  let domain =
    match listen with
    | Server.Unix_socket _ -> Unix.PF_UNIX
    | Server.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     match connect_timeout_ms with
     | Some ms when ms > 0 ->
         connect_deadline fd (sockaddr_of_listen listen) ~timeout_ms:ms
     | _ -> Unix.connect fd (sockaddr_of_listen listen)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let rec connect_retry ?(attempts = 50) ?(delay = 0.1) ?connect_timeout_ms listen
    =
  match connect ?connect_timeout_ms listen with
  | c -> c
  | exception (Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) as e) ->
      if attempts <= 1 then raise e
      else begin
        Thread.delay delay;
        connect_retry ~attempts:(attempts - 1) ~delay ?connect_timeout_ms
          listen
      end

let send_line c s =
  output_string c.oc s;
  output_char c.oc '\n';
  flush c.oc

let recv c =
  match Wire.read_frame c.ic ~max_bytes:(16 * 1024 * 1024) with
  | Error Wire.Eof -> Error "connection closed by server"
  | Error Wire.Oversized -> Error "response frame too large"
  | exception (Sys_error _ | Unix.Unix_error _) ->
      Error "connection lost"
  | Ok line -> (
      match Json.of_string line with
      | Error e -> Error (Printf.sprintf "garbled response: %s" e)
      | Ok j -> Wire.parse_response j)

let call c ?(id = Json.Null) ?timeout_ms ?trace op =
  let req = { Wire.id; op; timeout_ms; trace } in
  match
    Wire.write_frame c.oc (Wire.request_to_json req)
  with
  | () -> recv c
  | exception (Sys_error _ | Unix.Unix_error _) -> Error "connection lost"

let close c = close_out_noerr c.oc
let fd c = c.fd
