(** Minimal synchronous client for the {!Wire} protocol.

    One connection, one request in flight: [call] writes a frame and
    blocks for the next response line.  That is all the load generator
    and the tests need; a pipelining client only has to correlate the
    [id] fields itself.  The raw [send_line]/[recv] pair exists so tests
    can speak deliberately malformed frames. *)

type t

(** [connect ?connect_timeout_ms listen] — connect to a server bound at
    [listen].  With [connect_timeout_ms] set (> 0) the TCP handshake is
    bounded: a black-holed peer raises [ETIMEDOUT] after that long
    instead of wedging the caller in the kernel's own connect timeout.
    Without it, the blocking [connect(2)] semantics are unchanged.
    @raise Unix.Unix_error when nobody listens there (or the deadline
    passes). *)
val connect : ?connect_timeout_ms:int -> Server.listen -> t

(** [connect_retry ?attempts ?delay ?connect_timeout_ms listen] retries
    [connect] (default 50 × 0.1 s) while the server is still binding;
    for tests and the load generator racing a freshly started daemon. *)
val connect_retry :
  ?attempts:int -> ?delay:float -> ?connect_timeout_ms:int -> Server.listen -> t

(** [call c ?id ?timeout_ms ?trace op] — send the request, wait for one
    response frame, parse it.  [trace] (default: none) is stamped on the
    envelope as distributed-trace context.  [Error] covers transport
    loss and unparsable responses; protocol-level failures come back as
    [Ok { outcome = Error _; _ }]. *)
val call :
  t ->
  ?id:Gossip_util.Json.t ->
  ?timeout_ms:int ->
  ?trace:Gossip_util.Trace.t ->
  Wire.op ->
  (Wire.response, string) result

(** [send_line c s] writes one raw line (no JSON validation). *)
val send_line : t -> string -> unit

(** [recv c] — the next response frame, parsed. *)
val recv : t -> (Wire.response, string) result

(** [fd c] — the underlying socket, for callers that need raw I/O with
    deadlines ({!Resilient_client} reads it through [Unix.select]). *)
val fd : t -> Unix.file_descr

val close : t -> unit
