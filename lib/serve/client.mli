(** Minimal synchronous client for the {!Wire} protocol.

    One connection, one request in flight: [call] writes a frame and
    blocks for the next response line.  That is all the load generator
    and the tests need; a pipelining client only has to correlate the
    [id] fields itself.  The raw [send_line]/[recv] pair exists so tests
    can speak deliberately malformed frames. *)

type t

(** [connect listen] — connect to a server bound at [listen].
    @raise Unix.Unix_error when nobody listens there. *)
val connect : Server.listen -> t

(** [connect_retry ?attempts ?delay listen] retries [connect] (default
    50 × 0.1 s) while the server is still binding; for tests and the
    load generator racing a freshly started daemon. *)
val connect_retry : ?attempts:int -> ?delay:float -> Server.listen -> t

(** [call c ?id ?timeout_ms op] — send the request, wait for one
    response frame, parse it.  [Error] covers transport loss and
    unparsable responses; protocol-level failures come back as
    [Ok { outcome = Error _; _ }]. *)
val call :
  t ->
  ?id:Gossip_util.Json.t ->
  ?timeout_ms:int ->
  Wire.op ->
  (Wire.response, string) result

(** [send_line c s] writes one raw line (no JSON validation). *)
val send_line : t -> string -> unit

(** [recv c] — the next response frame, parsed. *)
val recv : t -> (Wire.response, string) result

(** [fd c] — the underlying socket, for callers that need raw I/O with
    deadlines ({!Resilient_client} reads it through [Unix.select]). *)
val fd : t -> Unix.file_descr

val close : t -> unit
