module Json = Gossip_util.Json
module Instrument = Gossip_util.Instrument
open Core

type t = {
  ctx : Context.t;
  metrics : Metrics.t;
  (* whole-response memo for the tables op: identical parameters are by
     far the most repeated query, and the result is a pure function of
     them.  Bounded like the context, but tiny in practice. *)
  tables_memo : (string, Json.t) Hashtbl.t;
  memo_mu : Mutex.t;
  (* cluster-plane ops (gossip / digest / drain) are owned by the
     membership layer, which lives above this library; a member process
     installs its handler here.  Mutable because membership is created
     after the server (it needs the server's bound address). *)
  mutable cluster : (Wire.op -> (Json.t, string) result) option;
}

let create ?ctx ?metrics () =
  let ctx =
    match ctx with
    | Some ctx -> ctx
    | None ->
        (* builders pinned to one domain each: a serving process gets its
           parallelism from concurrent worker domains, not nested spawns *)
        Context.create ~domains:1 ()
  in
  let metrics =
    match metrics with
    | Some m -> m
    | None ->
        (* standalone dispatcher (tests, embedding): a metrics value with
           no workers and no queue still answers the observability ops *)
        Metrics.create ~workers:0 ~queue_capacity:0 ()
  in
  {
    ctx;
    metrics;
    tables_memo = Hashtbl.create 16;
    memo_mu = Mutex.create ();
    cluster = None;
  }

let context d = d.ctx
let set_cluster_handler d h = d.cluster <- Some h

(* --- network construction with a size gate --- *)

(* Vertex-count cap: the server exists for small cacheable queries, and
   the worst request (simulate) walks the full protocol expansion.  The
   estimate must run BEFORE the family constructor — building
   hypercube(60) would allocate before any post-hoc check could fire. *)
let max_vertices = 4096

let pow_capped b e =
  let rec go acc i =
    if i <= 0 || acc > max_vertices then acc else go (acc * b) (i - 1)
  in
  if b <= 1 then 1 else go 1 e

let estimated_vertices { Wire.family; dim; degree } =
  let d = max 2 degree in
  match family with
  | "path" | "cycle" | "complete" -> dim
  | "hypercube" -> pow_capped 2 dim
  | "grid" | "torus" -> dim * dim
  | "tree" -> pow_capped d (dim + 1)
  | "bf" | "wbf" | "dwbf" -> (dim + 1) * pow_capped d dim
  | "db" | "ddb" -> pow_capped d dim
  | "dk" | "k" -> (d + 1) * pow_capped d (max 0 (dim - 1))
  | _ -> max_vertices + 1

let build_network (net : Wire.net) =
  if estimated_vertices net > max_vertices then
    Error
      (Printf.sprintf "network too large to serve (over %d vertices)"
         max_vertices)
  else
    let { Wire.family; dim; degree = d } = net in
    let module F = Gossip_topology.Families in
    match
      match family with
      | "path" -> F.path dim
      | "cycle" -> F.cycle dim
      | "complete" -> F.complete dim
      | "hypercube" -> F.hypercube dim
      | "grid" -> F.grid dim dim
      | "torus" -> F.torus dim dim
      | "tree" -> F.complete_dary_tree (max 2 d) dim
      | "bf" -> F.butterfly d dim
      | "dwbf" -> F.wrapped_butterfly_directed d dim
      | "wbf" -> F.wrapped_butterfly d dim
      | "ddb" -> F.de_bruijn_directed d dim
      | "db" -> F.de_bruijn d dim
      | "dk" -> F.kautz_directed d dim
      | "k" -> F.kautz d dim
      | other -> failwith (Printf.sprintf "unknown family %S" other)
    with
    | g ->
        if Topology.Digraph.n_vertices g > max_vertices then
          Error
            (Printf.sprintf "network too large to serve (%d > %d vertices)"
               (Topology.Digraph.n_vertices g) max_vertices)
        else Ok g
    | exception (Failure msg | Invalid_argument msg) -> Error msg

let default_systolic g full_duplex =
  if Topology.Digraph.is_symmetric g then
    if full_duplex then Protocol.Builders.edge_coloring_full_duplex g
    else Protocol.Builders.edge_coloring_half_duplex g
  else
    Protocol.Builders.random_systolic g Protocol.Protocol.Directed ~period:8
      ~seed:1 ~density:1.0

let network_mode g ~full_duplex =
  if not (Topology.Digraph.is_symmetric g) then Protocol.Protocol.Directed
  else if full_duplex then Protocol.Protocol.Full_duplex
  else Protocol.Protocol.Half_duplex

(* --- per-operation evaluation --- *)

let ( let* ) = Result.bind

let tables_key s_max ss =
  Printf.sprintf "s_max=%d;ss=%s" s_max
    (String.concat "," (List.map string_of_int ss))

let eval_tables d ~s_max ~ss =
  (* λ*(s) is a context artifact; touching it per query makes repeated
     table queries visible as context cache hits, not just memo hits. *)
  List.iter
    (fun s ->
      ignore (Context.lambda_star d.ctx ~mode:Protocol.Protocol.Half_duplex s);
      ignore (Context.lambda_star d.ctx ~mode:Protocol.Protocol.Full_duplex s))
    ss;
  let key = tables_key s_max ss in
  let cached =
    Mutex.lock d.memo_mu;
    let r = Hashtbl.find_opt d.tables_memo key in
    Mutex.unlock d.memo_mu;
    r
  in
  match cached with
  | Some j ->
      Instrument.add "serve.tables_memo.hit" 1;
      Ok j
  | None ->
      Instrument.add "serve.tables_memo.miss" 1;
      let j = Bounds.Tables.to_json ~s_max ~ss () in
      Mutex.lock d.memo_mu;
      if Hashtbl.length d.tables_memo < 64 then
        Hashtbl.replace d.tables_memo key j;
      Mutex.unlock d.memo_mu;
      Ok j

let oracle_to_json g ~mode ~s (o : Bounds.Oracle.t) =
  Json.Obj
    [
      ("network", Json.Str (Topology.Digraph.name g));
      ("mode", Json.Str (Protocol.Protocol.mode_to_string mode));
      ("s", match s with Some s -> Json.Int s | None -> Json.Null);
      ("sound", Json.Int o.Bounds.Oracle.sound);
      ("diameter", Json.Int o.Bounds.Oracle.diameter);
      ("doubling", Json.Int o.Bounds.Oracle.doubling);
      ( "two_systolic",
        match o.Bounds.Oracle.two_systolic with
        | Some v -> Json.Int v
        | None -> Json.Null );
      ("asymptotic_general", Json.Float o.Bounds.Oracle.asymptotic_general);
      ( "asymptotic_refined",
        match o.Bounds.Oracle.asymptotic_refined with
        | Some v -> Json.Float v
        | None -> Json.Null );
    ]

let eval_bound d ~net ~s ~full_duplex =
  let* g = build_network net in
  let mode = network_mode g ~full_duplex in
  let o = Context.lower_bounds d.ctx g ~mode ~s in
  Ok (oracle_to_json g ~mode ~s o)

let eval_simulate d ~net ~full_duplex =
  let* g = build_network net in
  let sys = default_systolic g full_duplex in
  let r = Analysis.certify_protocol ~ctx:d.ctx sys in
  let run = Simulate.Engine.gossip_run sys in
  Ok (Analysis.protocol_report_to_json ~coverage:run.Simulate.Engine.curve r)

(* Family resolution rounds the target up to the smallest instance, so a
   parse-gated [n] can still overshoot (up to the family's growth factor);
   a post-resolution gate keeps the worst case bounded. *)
let max_implicit_vertices = 1 lsl 18

let eval_simulate_implicit ~family ~n ~items ~checkpoint_every ~period ~seed
    ~degree ~full_duplex =
  let* imp, sched =
    Protocol.Schedule.of_family ~family ~n ~degree ~period ~seed ~full_duplex ()
  in
  let nv = Topology.Implicit.n_vertices imp in
  if nv > max_implicit_vertices then
    Error
      (Printf.sprintf
         "implicit network too large to serve (%d > %d vertices)" nv
         max_implicit_vertices)
  else begin
    let st = Simulate.Chunked.create ~items nv in
    let t0 = Instrument.now_ns () in
    (* one domain: a serving process gets its parallelism from concurrent
       worker domains, not nested spawns *)
    let outcome = Simulate.Chunked.run ~domains:1 ~checkpoint_every st sched in
    let wall_seconds = Int64.to_float (Int64.sub (Instrument.now_ns ()) t0) /. 1e9 in
    Ok
      (Simulate.Chunked.report_to_json ~family ~requested_n:n ~sched ~st
         ~outcome ~wall_seconds ~domains:1)
  end

let eval_certify d ~spec ~refine =
  let* sys =
    match spec with
    | Wire.Inline text -> (
        match Protocol.Protocol_io.of_string text with
        | sys ->
            let n =
              Topology.Digraph.n_vertices (Protocol.Systolic.graph sys)
            in
            if n > max_vertices then
              Error
                (Printf.sprintf
                   "protocol network too large to serve (%d > %d vertices)" n
                   max_vertices)
            else Ok sys
        | exception (Failure msg | Invalid_argument msg) ->
            Error (Printf.sprintf "unparsable protocol: %s" msg))
    | Wire.Built { net; full_duplex } ->
        let* g = build_network net in
        Ok (default_systolic g full_duplex)
  in
  let report = Analysis.certify_protocol ~ctx:d.ctx sys in
  let refined =
    if not refine then None
    else
      match report.Analysis.gossip_time with
      | Some t ->
          let dg = Context.delay_digraph d.ctx sys ~length:t in
          Some
            (Context.certify d.ctx ~refine:true dg
               ~mode:(Protocol.Systolic.mode sys))
      | None -> None
  in
  Ok
    (match Analysis.protocol_report_to_json report with
    | Json.Obj fields ->
        Json.Obj
          (fields
          @
          match refined with
          | Some cert -> [ ("refined", Delay.Certificate.to_json cert) ]
          | None -> [])
    | other -> other)

(* Post-resolution vertex gate for certify_faults: family resolution
   rounds n up, and every enumerated pattern costs a full chunked run. *)
let max_certify_faults_vertices = 512

let eval_certify_faults d ~family ~n ~k ~budget ~seed ~degree ~full_duplex
    ~harden ~cap =
  let* _imp, sched =
    Protocol.Schedule.of_family ~family ~n ~degree ~seed ~full_duplex ()
  in
  let nv = Protocol.Schedule.n_vertices sched in
  if nv > max_certify_faults_vertices then
    Error
      (Printf.sprintf
         "network too large to certify (%d > %d vertices)" nv
         max_certify_faults_vertices)
  else
    let* sched, report =
      Protocol.Fault_tolerant.harden sched ~transform:harden ~k
    in
    let cap = if cap = 0 then None else Some cap in
    let fingerprint = Simulate.Certifier.fingerprint sched in
    let cert =
      Context.fault_certificate d.ctx ~fingerprint ~k ~seed ~budget
        ~cap:(Option.value ~default:(-1) cap) ~compute:(fun () ->
          (* one domain: a serving process gets its parallelism from
             concurrent worker domains, not nested spawns *)
          Simulate.Certifier.to_json sched
            (Simulate.Certifier.certify ~domains:1 ?cap ~budget sched ~k ~seed))
    in
    Ok
      (Json.Obj
         [
           ("certificate", cert);
           ("hardening", Protocol.Fault_tolerant.report_to_json report);
         ])

let eval_op d (op : Wire.op) =
  match op with
  | Wire.Ping -> Ok (Json.Obj [ ("pong", Json.Bool true) ])
  | Wire.Version -> Ok (Json.Obj [ ("version", Json.Str Version.string) ])
  | Wire.Shutdown ->
      (* the server intercepts this op to start its drain; the dispatcher
         only supplies the acknowledgement payload *)
      Ok (Json.Obj [ ("stopping", Json.Bool true) ])
  | Wire.Stats ->
      Ok
        (Json.Obj
           [
             ("cache", Context.stats_json d.ctx);
             ("metrics", Instrument.metrics_json ());
           ])
  | Wire.Metrics -> Ok (Metrics.metrics_json d.metrics)
  | Wire.Health -> Ok (Metrics.health_json d.metrics)
  | Wire.Spans -> Ok (Metrics.spans_json ())
  | Wire.Sleep { ms } ->
      Unix.sleepf (float_of_int ms /. 1000.0);
      Ok (Json.Obj [ ("slept_ms", Json.Int ms) ])
  | Wire.Tables { s_max; ss } -> eval_tables d ~s_max ~ss
  | Wire.Bound { net; s; full_duplex } -> eval_bound d ~net ~s ~full_duplex
  | Wire.Simulate { net; full_duplex } -> eval_simulate d ~net ~full_duplex
  | Wire.Simulate_implicit
      { family; n; items; checkpoint_every; period; seed; degree; full_duplex }
    ->
      eval_simulate_implicit ~family ~n ~items ~checkpoint_every ~period ~seed
        ~degree ~full_duplex
  | Wire.Certify { spec; refine } -> eval_certify d ~spec ~refine
  | Wire.Certify_faults
      { family; n; k; budget; seed; degree; full_duplex; harden; cap } ->
      eval_certify_faults d ~family ~n ~k ~budget ~seed ~degree ~full_duplex
        ~harden ~cap
  | Wire.Trace_pull { max } -> Ok (Metrics.traces_json d.metrics ~max)
  | Wire.Gossip _ | Wire.Mem_digest | Wire.Drain _ -> (
      match d.cluster with
      | Some handler -> handler op
      | None ->
          Error
            "not a cluster member (start the server with --join / --node-id)")

let eval d op =
  match
    Instrument.span "serve.eval"
      ~attrs:[ ("op", Json.Str (Wire.op_name op)) ]
      (fun () -> eval_op d op)
  with
  | Ok j -> Ok j
  | Error msg -> Error (Wire.Bad_request, msg)
  | exception (Failure msg | Invalid_argument msg) ->
      Error (Wire.Bad_request, msg)
  | exception exn -> Error (Wire.Internal, Printexc.to_string exn)
