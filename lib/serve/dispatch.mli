(** Request evaluation against one shared memoizing context.

    The dispatcher is the bridge between typed {!Wire.op} values and the
    analysis library: every data-producing operation computes exactly
    what the corresponding [gossip_lab --json] subcommand computes, with
    all heavy artifacts (delay digraphs, norm solves, diameters, λ*
    roots, gossip times) served from one process-wide {!Core.Context} —
    so repeated queries are cache hits, which is the point of running a
    server instead of one-shot CLIs.

    [tables] responses are additionally memoized whole (keyed by their
    parameters) in a small dispatcher-local store, counted on the
    ["serve.tables_memo.hit"/"miss"] instrument counters.

    Evaluation is safe from several worker domains at once: the context
    is internally synchronized and the memo has its own mutex. *)

type t

(** [create ?ctx ?metrics ()] — a dispatcher over [ctx] (default: a
    fresh {!Core.Context} sized for serving, with artifact builders
    pinned to one domain each — parallelism comes from concurrent
    workers, not from nested spawns).  [metrics] is the live
    observability state the [metrics] / [health] / [spans] ops answer
    from; the server passes its own so dispatcher answers reflect the
    real queue and workers, a standalone dispatcher defaults to an
    inert one ([workers:0], no queue). *)
val create : ?ctx:Core.Context.t -> ?metrics:Metrics.t -> unit -> t

val context : t -> Core.Context.t

(** [set_cluster_handler d h] — route the cluster-plane operations
    ([gossip] / [digest] / [drain]) to [h]; [h]'s [Error] strings become
    [bad_request] replies.  Installed by a process that joined a cluster
    ({!Gossip_cluster.Membership.handle}); without a handler those ops
    answer [bad_request: not a cluster member].  [h] must be safe to
    call from several worker domains. *)
val set_cluster_handler :
  t -> (Wire.op -> (Gossip_util.Json.t, string) result) -> unit

(** [eval d op] — the ["result"] payload for [op], or an error code and
    message.  Validation failures that only surface at evaluation time
    (an unparsable inline protocol, a network too large to simulate)
    come back as [Bad_request]; unexpected exceptions as [Internal].
    Never raises. *)
val eval :
  t -> Wire.op -> (Gossip_util.Json.t, Wire.error_code * string) result

(** [build_network net] — the {!Gossip_topology.Digraph.t} a {!Wire.net}
    names; [Error] on parameters the family rejects. *)
val build_network :
  Wire.net -> (Gossip_topology.Digraph.t, string) result
