module Json = Gossip_util.Json
module Instrument = Gossip_util.Instrument
module Rolling = Gossip_util.Rolling
module Resource = Gossip_util.Resource

(* One second per slot, five minutes of slots: the single window serves
   every exposed horizon by merging its most recent 10 / 60 / 300
   slots. *)
let slot_ns = 1_000_000_000L
let window_slots = 300
let horizons = [ ("10s", 10); ("1m", 60); ("5m", 300) ]

(* Same stub as {!Gossip_util.Instrument.monotonic_ns}: the per-request
   [observe] is on the dispatch hot path and a direct unboxed call
   beats an indirect boxed one through the stored closure. *)
external monotonic_ns : unit -> (int64[@unboxed])
  = "gossip_monotonic_ns" "gossip_monotonic_ns_unboxed"
[@@noalloc]

type per_op = {
  lat : Rolling.t;  (* answered-request latency, seconds *)
  err : Rolling.t;  (* error replies, count only *)
  mutable total : int;  (* cumulative answered (ok + error) *)
  mutable total_errors : int;
  (* trace exemplar: the worst-latency traced request seen within the
     longest exposed window — (stamp, latency_s, trace_id).  Pointing
     from a latency aggregate to one concrete reconstructable trace is
     what turns "p99 regressed" into "look at this request". *)
  mutable exemplar : (int64 * float * string) option;
}

type t = {
  node : string option;  (* cluster node id; labels the JSON snapshots *)
  clock : unit -> int64;
  default_clock : bool;
  user_clock : (unit -> int64) option;  (* forwarded to rolling windows *)
  started_ns : int64;
  workers : int;
  queue_capacity : int;
  wedge_ms : int;
  mu : Mutex.t;  (* guards [ops] and the cumulative totals *)
  ops : (string, per_op) Hashtbl.t;
  queue_wait : Rolling.t;  (* queue wait of answered requests, seconds *)
  queue_depth : int Atomic.t;
  conns : int Atomic.t;
  busy_since_ns : int64 Atomic.t array;  (* per worker; 0 = idle *)
  worker_restarts : int Atomic.t;  (* cumulative supervisor respawns *)
  workers_missing : int Atomic.t;  (* dead slots awaiting respawn *)
  write_errors : int Atomic.t;  (* reply writes lost to EPIPE & friends *)
  max_heap_mb : float;  (* 0. = heap check disabled *)
  (* last two sampler readings, stamped with the metrics clock so the
     exposed GC/allocation rates are per second of *this* clock *)
  last_resource : (int64 * Resource.snapshot) option Atomic.t;
  prev_resource : (int64 * Resource.snapshot) option Atomic.t;
}

let create ?node ?clock ?(wedge_ms = 30_000) ?(max_heap_mb = 0.0) ~workers
    ~queue_capacity () =
  let user_clock = clock in
  let clock = match clock with Some c -> c | None -> Instrument.now_ns in
  {
    node;
    clock;
    default_clock = user_clock = None;
    user_clock;
    started_ns = clock ();
    workers;
    queue_capacity;
    wedge_ms;
    mu = Mutex.create ();
    ops = Hashtbl.create 16;
    queue_wait = Rolling.create ?clock:user_clock ~slot_ns ~slots:window_slots ();
    queue_depth = Atomic.make 0;
    conns = Atomic.make 0;
    busy_since_ns = Array.init workers (fun _ -> Atomic.make 0L);
    worker_restarts = Atomic.make 0;
    workers_missing = Atomic.make 0;
    write_errors = Atomic.make 0;
    max_heap_mb;
    last_resource = Atomic.make None;
    prev_resource = Atomic.make None;
  }

let now t = if t.default_clock then monotonic_ns () else t.clock ()

(* Caller holds [t.mu]. *)
let per_op_locked t op =
  match Hashtbl.find_opt t.ops op with
  | Some p -> p
  | None ->
      let p =
        {
          lat = Rolling.create ?clock:t.user_clock ~slot_ns ~slots:window_slots ();
          err = Rolling.create ?clock:t.user_clock ~slot_ns ~slots:window_slots ();
          total = 0;
          total_errors = 0;
          exemplar = None;
        }
      in
      Hashtbl.add t.ops op p;
      p

(* The exemplar ages out with the longest exposed window, so a quiet op
   does not advertise a stale trace id forever. *)
let exemplar_horizon_ns = Int64.mul slot_ns (Int64.of_int window_slots)

let exemplar_fresh ~now_ns = function
  | Some (stamp, _, _) when Int64.sub now_ns stamp <= exemplar_horizon_ns ->
      true
  | _ -> false

(* One clock read and one [t.mu] critical section per observation; the
   rolling windows take their own (uncontended in practice) locks. *)
let observe ?trace_id t ~op ~ok ~queue_wait_s ~service_s =
  let now_ns = now t in
  Mutex.lock t.mu;
  let p = per_op_locked t op in
  p.total <- p.total + 1;
  if not ok then p.total_errors <- p.total_errors + 1;
  (match trace_id with
  | Some tid ->
      let lat = queue_wait_s +. service_s in
      let beaten =
        match p.exemplar with
        | Some (_, worst, _) -> lat >= worst
        | None -> true
      in
      if beaten || not (exemplar_fresh ~now_ns p.exemplar) then
        p.exemplar <- Some (now_ns, lat, tid)
  | None -> ());
  Mutex.unlock t.mu;
  Rolling.observe_at p.lat ~now_ns (queue_wait_s +. service_s);
  Rolling.observe_at t.queue_wait ~now_ns queue_wait_s;
  if not ok then Rolling.add_at p.err ~now_ns 1

let observe_rejected t ~op ~code =
  ignore code;
  observe t ~op ~ok:false ~queue_wait_s:0.0 ~service_s:0.0

let set_queue_depth t n = Atomic.set t.queue_depth n
let worker_busy t w = Atomic.set t.busy_since_ns.(w) (now t)
let worker_idle t w = Atomic.set t.busy_since_ns.(w) 0L
let conn_opened t = Atomic.incr t.conns
let conn_closed t = Atomic.decr t.conns
let note_worker_restart t = Atomic.incr t.worker_restarts
let set_workers_missing t n = Atomic.set t.workers_missing n
let note_write_error t = Atomic.incr t.write_errors
let worker_restarts t = Atomic.get t.worker_restarts
let workers_missing t = Atomic.get t.workers_missing
let write_errors t = Atomic.get t.write_errors

let in_flight t =
  Array.fold_left
    (fun acc a -> if Atomic.get a <> 0L then acc + 1 else acc)
    0 t.busy_since_ns

let wedged_workers t =
  let now = now t in
  let limit_ns = Int64.of_int (t.wedge_ms * 1_000_000) in
  Array.fold_left
    (fun acc a ->
      let since = Atomic.get a in
      if since <> 0L && Int64.compare (Int64.sub now since) limit_ns > 0 then
        acc + 1
      else acc)
    0 t.busy_since_ns

let queue_saturated t =
  t.queue_capacity > 0 && Atomic.get t.queue_depth >= t.queue_capacity

let note_resource t snap =
  Atomic.set t.prev_resource (Atomic.get t.last_resource);
  Atomic.set t.last_resource (Some (now t, snap))

let last_resource t = Option.map snd (Atomic.get t.last_resource)

(* Some heap_mb when the limit is on and the last sampler reading
   exceeds it — the "runaway heap" degradation. *)
let heap_exceeded t =
  if t.max_heap_mb <= 0.0 then None
  else
    match Atomic.get t.last_resource with
    | Some (_, s) when s.Resource.heap_mb > t.max_heap_mb ->
        Some s.Resource.heap_mb
    | _ -> None

let healthy t =
  (not (queue_saturated t))
  && wedged_workers t = 0
  && Atomic.get t.workers_missing = 0
  && heap_exceeded t = None

let uptime_s t = Int64.to_float (Int64.sub (now t) t.started_ns) /. 1e9

(* {2 JSON snapshots} *)

let fin v = if Float.is_finite v then Json.Float v else Json.Null

let ms v = fin (1000.0 *. v)

let latency_summary snap =
  Json.Obj
    [
      ("mean", ms (Rolling.mean snap));
      ("p50", ms (Rolling.quantile snap 0.50));
      ("p95", ms (Rolling.quantile snap 0.95));
      ("p99", ms (Rolling.quantile snap 0.99));
      ("max", if snap.Rolling.count = 0 then Json.Null else ms snap.Rolling.max_v);
    ]

let sorted_ops t =
  Mutex.lock t.mu;
  let ops = Hashtbl.fold (fun k p acc -> (k, p) :: acc) t.ops [] in
  Mutex.unlock t.mu;
  List.sort (fun (a, _) (b, _) -> compare a b) ops

let window_json t ops window =
  let op_json (name, p) =
    let lat = Rolling.snapshot ~window p.lat in
    if lat.Rolling.count = 0 && Rolling.count ~window p.err = 0 then None
    else
      Some
        ( name,
          Json.Obj
            [
              ("count", Json.Int lat.Rolling.count);
              ("errors", Json.Int (Rolling.count ~window p.err));
              ("rps", fin (Rolling.rate lat));
              ("latency_ms", latency_summary lat);
            ] )
  in
  Json.Obj
    [
      ("ops", Json.Obj (List.filter_map op_json ops));
      ( "queue_wait_ms",
        latency_summary (Rolling.snapshot ~window t.queue_wait) );
    ]

(* The last sampler snapshot, extended with per-second GC/allocation
   rates derived from the previous one — "how fast is the collector
   working right now", not just cumulative counters. *)
let resource_json t =
  match Atomic.get t.last_resource with
  | None -> Json.Null
  | Some (ns1, s1) ->
      let alloc (s : Resource.snapshot) =
        s.Resource.minor_words +. s.Resource.major_words
        -. s.Resource.promoted_words
      in
      let rates =
        match Atomic.get t.prev_resource with
        | Some (ns0, s0) ->
            let dt = Int64.to_float (Int64.sub ns1 ns0) /. 1e9 in
            if dt <= 0.0 then []
            else
              let per_s v = fin (Float.max 0.0 (v /. dt)) in
              [
                ("alloc_words_per_s", per_s (alloc s1 -. alloc s0));
                ( "minor_collections_per_s",
                  per_s
                    (float_of_int
                       (s1.Resource.minor_collections
                       - s0.Resource.minor_collections)) );
                ( "major_collections_per_s",
                  per_s
                    (float_of_int
                       (s1.Resource.major_collections
                       - s0.Resource.major_collections)) );
              ]
        | None -> []
      in
      let limit =
        if t.max_heap_mb > 0.0 then [ ("max_heap_mb", Json.Float t.max_heap_mb) ]
        else []
      in
      (match Resource.to_json s1 with
      | Json.Obj fields -> Json.Obj (fields @ rates @ limit)
      | j -> j)

let node_field t =
  match t.node with Some n -> [ ("node", Json.Str n) ] | None -> []

let exemplar_json t p =
  let now_ns = now t in
  match p.exemplar with
  | Some (stamp, lat, tid) when exemplar_fresh ~now_ns p.exemplar ->
      [
        ( "exemplar",
          Json.Obj
            [
              ("trace_id", Json.Str tid);
              ("latency_ms", ms lat);
              ( "age_s",
                fin (Int64.to_float (Int64.sub now_ns stamp) /. 1e9) );
            ] );
      ]
  | _ -> []

let metrics_json t =
  let ops = sorted_ops t in
  let totals =
    List.map
      (fun (name, p) ->
        ( name,
          Json.Obj
            ([ ("count", Json.Int p.total); ("errors", Json.Int p.total_errors) ]
            @ exemplar_json t p) ))
      ops
  in
  Json.Obj
    ([
       ("schema", Json.Str "gossip-metrics/1");
       ("version", Json.Str Core.Version.string);
     ]
    @ node_field t
    @ [
      ("uptime_s", fin (uptime_s t));
      ( "gauges",
        Json.Obj
          [
            ("queue_depth", Json.Int (Atomic.get t.queue_depth));
            ("queue_capacity", Json.Int t.queue_capacity);
            ("in_flight", Json.Int (in_flight t));
            ("workers", Json.Int t.workers);
            ("workers_missing", Json.Int (Atomic.get t.workers_missing));
            ("worker_restarts", Json.Int (Atomic.get t.worker_restarts));
            ("write_errors", Json.Int (Atomic.get t.write_errors));
            ("connections", Json.Int (Atomic.get t.conns));
          ] );
      ("resource", resource_json t);
        ( "windows",
          Json.Obj
            (List.map (fun (name, w) -> (name, window_json t ops w)) horizons)
        );
        ("totals", Json.Obj [ ("ops", Json.Obj totals) ]);
      ])

let health_json t =
  let saturated = queue_saturated t in
  let wedged = wedged_workers t in
  let missing = Atomic.get t.workers_missing in
  let heap = heap_exceeded t in
  let reasons =
    (if saturated then
       [
         Printf.sprintf "request queue saturated (%d/%d)"
           (Atomic.get t.queue_depth) t.queue_capacity;
       ]
     else [])
    @ (if wedged > 0 then
         [
           Printf.sprintf "%d worker(s) busy longer than %d ms" wedged
             t.wedge_ms;
         ]
       else [])
    @ (if missing > 0 then
         [
           Printf.sprintf "worker pool incomplete (%d dead, awaiting respawn)"
             missing;
         ]
       else [])
    @
    match heap with
    | Some mb ->
        [
          Printf.sprintf "heap %.0f MB exceeds the %.0f MB limit" mb
            t.max_heap_mb;
        ]
    | None -> []
  in
  let ok = reasons = [] in
  Json.Obj
    ([
       ("schema", Json.Str "gossip-health/1");
       ("version", Json.Str Core.Version.string);
     ]
    @ node_field t
    @ [
      ("status", Json.Str (if ok then "ok" else "degraded"));
      ("ok", Json.Bool ok);
      ("reasons", Json.List (List.map (fun r -> Json.Str r) reasons));
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int (Atomic.get t.queue_depth));
            ("capacity", Json.Int t.queue_capacity);
            ("saturated", Json.Bool saturated);
          ] );
      ("in_flight", Json.Int (in_flight t));
      ("workers", Json.Int t.workers);
      ("wedged_workers", Json.Int wedged);
      ("workers_missing", Json.Int missing);
      ("worker_restarts", Json.Int (Atomic.get t.worker_restarts));
      ("write_errors", Json.Int (Atomic.get t.write_errors));
      ( "heap_mb",
        match last_resource t with
        | Some s -> Json.Float s.Resource.heap_mb
        | None -> Json.Null );
      ( "rss_mb",
        match last_resource t with
        | Some { Resource.rss_mb = Some r; _ } -> Json.Float r
        | _ -> Json.Null );
      ( "max_heap_mb",
        if t.max_heap_mb > 0.0 then Json.Float t.max_heap_mb else Json.Null );
      ("uptime_s", fin (uptime_s t));
    ])

let traces_json t ~max =
  let events, dropped = Instrument.ring_drain ~max () in
  Json.Obj
    ([
       ("schema", Json.Str "gossip-traces/1");
       ("version", Json.Str Core.Version.string);
     ]
    @ node_field t
    @ [
        ("count", Json.Int (List.length events));
        ("dropped", Json.Int dropped);
        ("events", Json.List events);
      ])

let spans_json () =
  let span_json (s : Instrument.span_stat) =
    let p50, p95 =
      match Instrument.histogram s.Instrument.span_name with
      | Some h when h.Instrument.count > 0 ->
          (Instrument.quantile h 0.5, Instrument.quantile h 0.95)
      | _ -> (Float.nan, Float.nan)
    in
    Json.Obj
      [
        ("name", Json.Str s.Instrument.span_name);
        ("calls", Json.Int s.Instrument.calls);
        ("total_s", fin s.Instrument.total_s);
        ("max_s", fin s.Instrument.max_s);
        ("p50_s", fin p50);
        ("p95_s", fin p95);
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str "gossip-spans/1");
      ("version", Json.Str Core.Version.string);
      ("spans", Json.List (List.map span_json (Instrument.spans ())));
    ]
