(** Live observability state of a serving process.

    One value of this type holds everything the [metrics] and [health]
    operations expose: per-operation rolling windows
    ({!Gossip_util.Rolling} — one 300-slot window of 1-second slots per
    op, snapshotted over the last 10s / 1m / 5m), cumulative per-op
    totals, queue-depth / in-flight / connection gauges, and per-worker
    busy stamps backing the wedged-worker detection.

    All updates are cheap and safe from concurrent worker domains and
    reader threads: rolling windows carry their own mutexes, gauges and
    busy stamps are atomics.

    Health semantics: the server is {e degraded} when the bounded queue
    is saturated (depth ≥ capacity — new requests are being refused
    with [queue_full]), when any worker has been busy on one request
    for longer than the wedge deadline ([wedge_ms], default 30s) —
    liveness, not load: a wedged worker means requests can stall
    indefinitely — when the worker pool is incomplete (a worker domain
    died and its supervisor respawn has not landed yet), or when the
    last resource sample ({!note_resource}, fed by the daemon's
    background {!Gossip_util.Resource} sampler) shows the GC heap past
    [max_heap_mb] — a runaway heap will take the process down with it.
    A degraded server still {e answers} [health] (the reader thread
    evaluates it, bypassing the queue); readiness is the consumer's
    decision based on [status]. *)

type t

(** [create ?node ?clock ?wedge_ms ?max_heap_mb ~workers ~queue_capacity ()]
    — fresh state for a server with [workers] worker domains and a
    bounded queue of [queue_capacity] (0 means "no queue": the
    saturation check is disabled).  [node] (default: absent) is the
    process's cluster node id; when set, {!metrics_json} and
    {!health_json} carry it as a top-level ["node"] field so fleet
    aggregates and per-shard scrapes stay attributable.  [wedge_ms]
    (default 30_000) is the busy deadline past which a worker counts as
    wedged.  [max_heap_mb] (default 0 = disabled) degrades health once a
    {!note_resource} sample shows the GC heap above it.  [clock]
    (default {!Gossip_util.Instrument.now_ns}) drives the rolling
    windows and busy stamps; injectable for tests. *)
val create :
  ?node:string ->
  ?clock:(unit -> int64) ->
  ?wedge_ms:int ->
  ?max_heap_mb:float ->
  workers:int ->
  queue_capacity:int ->
  unit ->
  t

(** {1 Feeding} *)

(** [observe ?trace_id t ~op ~ok ~queue_wait_s ~service_s] records one
    answered request: latency into the op's rolling window and
    cumulative totals; [ok = false] also bumps the op's rolling and
    cumulative error counts.  Call {e before} sending the reply, so a
    client that has all its replies reads totals that already include
    them.  [trace_id] (the request's sampled distributed-trace id, when
    it carried one) feeds the op's worst-latency {e exemplar}: the
    trace id surfaced next to the op's aggregates in {!metrics_json},
    replaced when a slower traced request arrives or the current holder
    ages past the longest window. *)
val observe :
  ?trace_id:string ->
  t ->
  op:string ->
  ok:bool ->
  queue_wait_s:float ->
  service_s:float ->
  unit

(** [observe_rejected t ~op ~code] records a request answered with an
    error at admission ([queue_full], [shutting_down]) or dequeue
    ([deadline_exceeded]): counted as an error with zero service time. *)
val observe_rejected : t -> op:string -> code:string -> unit

(** [set_queue_depth t n] — the bounded queue's current occupancy. *)
val set_queue_depth : t -> int -> unit

(** [worker_busy t w] / [worker_idle t w] stamp worker [w] (0-based) as
    having started / finished a job; the busy duration backs the wedge
    check. *)
val worker_busy : t -> int -> unit

val worker_idle : t -> int -> unit

(** [conn_opened t] / [conn_closed t] track the open-connection gauge. *)
val conn_opened : t -> unit

val conn_closed : t -> unit

(** [note_worker_restart t] — a supervisor respawned a dead worker
    domain; cumulative, exposed as the [worker_restarts] gauge. *)
val note_worker_restart : t -> unit

(** [set_workers_missing t n] — [n] worker slots are currently dead
    (crashed, respawn pending).  A non-zero value degrades health. *)
val set_workers_missing : t -> int -> unit

(** [note_write_error t] — a reply write failed (EPIPE / ECONNRESET,
    i.e. the client vanished); the connection was closed, the worker
    survived. *)
val note_write_error : t -> unit

(** [note_resource t snap] — record the latest process-resource sample.
    The daemon's background {!Gossip_util.Resource} sampler calls this
    about once a second; [metrics_json] derives its per-second GC/
    allocation rates from the two most recent samples, and the heap
    health check reads the latest one. *)
val note_resource : t -> Gossip_util.Resource.snapshot -> unit

(** [last_resource t] — the most recent {!note_resource} sample. *)
val last_resource : t -> Gossip_util.Resource.snapshot option

(** {1 Reading} *)

(** [in_flight t] — number of workers currently busy on a job. *)
val in_flight : t -> int

(** Cumulative supervisor respawns. *)
val worker_restarts : t -> int

(** Dead worker slots right now (0 once the pool is whole). *)
val workers_missing : t -> int

(** Cumulative reply-write failures tolerated. *)
val write_errors : t -> int

(** [healthy t] — [true] iff neither degradation condition holds. *)
val healthy : t -> bool

(** [metrics_json t] — versioned snapshot (schema [gossip-metrics/1]):
    uptime, gauges ([queue_depth], [queue_capacity], [in_flight],
    [workers], [workers_missing], [worker_restarts], [write_errors],
    [connections]), a [resource] object (the latest {!note_resource}
    sample plus [alloc_words_per_s] / [minor_collections_per_s] /
    [major_collections_per_s] rates; [null] before the first sample),
    [windows.{10s,1m,5m}] with per-op
    [{count, errors, rps, latency_ms: {mean,p50,p95,p99,max}}] and a
    queue-wait histogram summary, and cumulative [totals] per op — each
    total carrying the op's worst-latency trace [exemplar]
    [{trace_id, latency_ms, age_s}] while one is fresh.
    Documented in [doc/serving.md]. *)
val metrics_json : t -> Gossip_util.Json.t

(** [health_json t] — versioned probe result (schema [gossip-health/1]):
    [status] (["ok"] | ["degraded"]), [ok] boolean, human-readable
    [reasons] for the degradation, queue depth/capacity/saturation,
    in-flight and wedged worker counts, [heap_mb] / [rss_mb] from the
    latest resource sample ([null] before the first), the configured
    [max_heap_mb] ([null] when the heap check is off), uptime. *)
val health_json : t -> Gossip_util.Json.t

(** [spans_json ()] — the process's span aggregates as a versioned
    snapshot (schema [gossip-spans/1]); a thin wrapper over
    {!Gossip_util.Instrument.spans} with per-span p50/p95. *)
val spans_json : unit -> Gossip_util.Json.t

(** [traces_json t ~max] — drain the process's recent-event ring
    ({!Gossip_util.Instrument.ring_drain}) into a versioned snapshot
    (schema [gossip-traces/1]): the newest [max] JSONL trace events in
    chronological order, the number of events [dropped] (overwritten or
    cut by [max]) and this process's node id.  The payload behind the
    [trace_pull] operation; destructive — each event is returned once. *)
val traces_json : t -> max:int -> Gossip_util.Json.t
