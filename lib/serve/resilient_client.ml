module Json = Gossip_util.Json
module Instrument = Gossip_util.Instrument
module Prng = Gossip_util.Prng

type policy = {
  max_attempts : int;
  base_backoff_ms : int;
  max_backoff_ms : int;
  attempt_timeout_ms : int;
  call_budget_ms : int;
  connect_timeout_ms : int;
}

let default_policy =
  {
    max_attempts = 6;
    base_backoff_ms = 10;
    max_backoff_ms = 500;
    attempt_timeout_ms = 1_000;
    call_budget_ms = 10_000;
    connect_timeout_ms = 1_000;
  }

type failure =
  | Fatal of Wire.error_code * string
  | Exhausted of string

type stats = {
  calls : int;
  ok : int;
  fatal : int;
  gave_up : int;
  attempts : int;
  retries : int;
  reconnects : int;
  stale_dropped : int;
  garbled : int;
}

type t = {
  listen : Server.listen;
  policy : policy;
  rng : Prng.t;  (* backoff jitter only; determinism aids replay *)
  mutable conn : Client.t option;
  mutable rbuf : Buffer.t;  (* bytes read past the last consumed line *)
  mutable token : int;  (* client-unique id for the next attempt *)
  mutable s_calls : int;
  mutable s_ok : int;
  mutable s_fatal : int;
  mutable s_gave_up : int;
  mutable s_attempts : int;
  mutable s_retries : int;
  mutable s_reconnects : int;
  mutable s_stale : int;
  mutable s_garbled : int;
}

let now_ns () = Instrument.now_ns ()

let validate_policy p =
  if p.max_attempts < 1 then
    invalid_arg "Resilient_client: max_attempts must be >= 1";
  if p.base_backoff_ms < 0 || p.max_backoff_ms < p.base_backoff_ms then
    invalid_arg "Resilient_client: backoff range is invalid";
  if p.attempt_timeout_ms < 1 || p.call_budget_ms < 1 then
    invalid_arg "Resilient_client: timeouts must be >= 1 ms";
  if p.connect_timeout_ms < 1 then
    invalid_arg "Resilient_client: connect_timeout_ms must be >= 1 ms"

let connect ?(policy = default_policy) ?(seed = 0) listen =
  validate_policy policy;
  {
    listen;
    policy;
    rng = Prng.create seed;
    conn =
      Some
        (Client.connect_retry ~connect_timeout_ms:policy.connect_timeout_ms
           listen);
    rbuf = Buffer.create 4096;
    token = 1;
    s_calls = 0;
    s_ok = 0;
    s_fatal = 0;
    s_gave_up = 0;
    s_attempts = 0;
    s_retries = 0;
    s_reconnects = 0;
    s_stale = 0;
    s_garbled = 0;
  }

let drop_conn t =
  match t.conn with
  | None -> ()
  | Some c ->
      Client.close c;
      t.conn <- None;
      Buffer.clear t.rbuf

let close t = drop_conn t

(* A new connection's stream starts fresh: leftover bytes from the old
   one belong to a conversation that no longer exists. *)
let ensure_conn t =
  match t.conn with
  | Some c -> Ok c
  | None -> (
      match
        Client.connect ~connect_timeout_ms:t.policy.connect_timeout_ms
          t.listen
      with
      | c ->
          Buffer.clear t.rbuf;
          t.conn <- Some c;
          t.s_reconnects <- t.s_reconnects + 1;
          Ok c
      | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "connect: %s" (Unix.error_message e))
      | exception Sys_error e -> Error (Printf.sprintf "connect: %s" e))

(* Pull one complete line out of [rbuf], if any. *)
let take_line t =
  let s = Buffer.contents t.rbuf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear t.rbuf;
      Buffer.add_substring t.rbuf s (i + 1) (String.length s - i - 1);
      let line =
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Some line

(* One reply line from the raw fd, or a verdict that none will come in
   time.  [select] + [read] keeps the buffered channel out of the read
   path entirely, so the deadline is exact and no bytes are stranded in
   a channel buffer across attempts. *)
let read_line_deadline t c ~deadline_ns =
  let fd = Client.fd c in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match take_line t with
    | Some line -> `Line line
    | None ->
        let remaining_s =
          Int64.to_float (Int64.sub deadline_ns (now_ns ())) /. 1e9
        in
        if remaining_s <= 0.0 then `Timeout
        else begin
          match Unix.select [ fd ] [] [] remaining_s with
          | [], _, _ -> loop () (* raced the deadline; re-check above *)
          | _ -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> `Eof
              | n ->
                  Buffer.add_subbytes t.rbuf chunk 0 n;
                  loop ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
              | exception Unix.Unix_error _ -> `Lost)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | exception Unix.Unix_error _ -> `Lost
        end
  in
  loop ()

let retryable_code = function
  | Wire.Queue_full | Wire.Deadline_exceeded | Wire.Internal -> true
  | Wire.Bad_request | Wire.Oversized_frame | Wire.Shutting_down -> false

(* Exponential backoff with "equal jitter": half the step is
   deterministic growth, half is seeded noise — retries from many
   clients spread out instead of thundering back together. *)
let backoff t ~failures ~budget_deadline_ns =
  let p = t.policy in
  let step =
    min p.max_backoff_ms (p.base_backoff_ms * (1 lsl min failures 16))
  in
  if step > 0 then begin
    let jittered = (step / 2) + Prng.int t.rng (step / 2 + 1) in
    let remaining_ms =
      Int64.to_float (Int64.sub budget_deadline_ns (now_ns ())) /. 1e6
    in
    let sleep_ms = min (float_of_int jittered) (max 0.0 remaining_ms) in
    if sleep_ms > 0.0 then Thread.delay (sleep_ms /. 1000.0)
  end

let call t ?timeout_ms ?trace op =
  t.s_calls <- t.s_calls + 1;
  let p = t.policy in
  let budget_deadline_ns =
    Int64.add (now_ns ()) (Int64.of_int (p.call_budget_ms * 1_000_000))
  in
  let finish result =
    (match result with
    | Ok _ -> t.s_ok <- t.s_ok + 1
    | Error (Fatal _) -> t.s_fatal <- t.s_fatal + 1
    | Error (Exhausted _) -> t.s_gave_up <- t.s_gave_up + 1);
    result
  in
  (* [attempt] is 1-based; [last_err] travels so the Exhausted message
     names the actual failure, not just "ran out". *)
  let rec go ~attempt ~last_err =
    if attempt > p.max_attempts then
      finish
        (Error (Exhausted (Printf.sprintf "retries exhausted: %s" last_err)))
    else if Int64.compare (now_ns ()) budget_deadline_ns >= 0 then
      finish
        (Error (Exhausted (Printf.sprintf "call budget spent: %s" last_err)))
    else begin
      t.s_attempts <- t.s_attempts + 1;
      if attempt > 1 then t.s_retries <- t.s_retries + 1;
      match ensure_conn t with
      | Error msg -> retry ~attempt ~err:msg
      | Ok c -> (
          let token = t.token in
          t.token <- t.token + 1;
          let req = { Wire.id = Json.Int token; op; timeout_ms; trace } in
          match Client.send_line c (Json.to_string (Wire.request_to_json req)) with
          | exception (Sys_error _ | Unix.Unix_error _) ->
              drop_conn t;
              retry ~attempt ~err:"write failed: connection lost"
          | () -> await_reply c ~attempt ~token)
    end
  and await_reply c ~attempt ~token =
    let attempt_deadline_ns =
      let d =
        Int64.add (now_ns ())
          (Int64.of_int (t.policy.attempt_timeout_ms * 1_000_000))
      in
      if Int64.compare d budget_deadline_ns < 0 then d else budget_deadline_ns
    in
    let rec read_one () =
      match read_line_deadline t c ~deadline_ns:attempt_deadline_ns with
      | `Timeout ->
          (* keep the connection: the reply may still arrive and will be
             discarded as stale by the token check of a later attempt *)
          retry ~attempt ~err:"attempt timed out waiting for reply"
      | `Eof ->
          drop_conn t;
          retry ~attempt ~err:"connection closed by server"
      | `Lost ->
          drop_conn t;
          retry ~attempt ~err:"connection lost"
      | `Line "" -> read_one ()
      | `Line line -> (
          match Json.of_string line with
          | Error _ ->
              (* a corrupted frame; framing itself survived, so the
                 connection is still usable for the retry *)
              t.s_garbled <- t.s_garbled + 1;
              retry ~attempt ~err:"garbled reply frame"
          | Ok j -> (
              match Wire.parse_response j with
              | Error e ->
                  t.s_garbled <- t.s_garbled + 1;
                  retry ~attempt ~err:(Printf.sprintf "invalid response: %s" e)
              | Ok resp when resp.Wire.resp_id <> Json.Int token ->
                  (* an answer to a past attempt we stopped waiting for *)
                  t.s_stale <- t.s_stale + 1;
                  read_one ()
              | Ok resp -> (
                  match resp.Wire.outcome with
                  | Ok _ -> finish (Ok resp)
                  | Error (code, msg) ->
                      if retryable_code code then
                        retry ~attempt
                          ~err:
                            (Printf.sprintf "%s: %s"
                               (Wire.error_code_to_string code)
                               msg)
                      else finish (Error (Fatal (code, msg))))))
    in
    read_one ()
  and retry ~attempt ~err =
    backoff t ~failures:attempt ~budget_deadline_ns;
    go ~attempt:(attempt + 1) ~last_err:err
  in
  go ~attempt:1 ~last_err:"no attempt made"

let stats t =
  {
    calls = t.s_calls;
    ok = t.s_ok;
    fatal = t.s_fatal;
    gave_up = t.s_gave_up;
    attempts = t.s_attempts;
    retries = t.s_retries;
    reconnects = t.s_reconnects;
    stale_dropped = t.s_stale;
    garbled = t.s_garbled;
  }
