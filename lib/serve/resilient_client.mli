(** A {!Client} that survives the faults {!Chaos} injects — and the
    real-world failures they model.

    One [call] is a small supervised loop around the wire exchange:

    - {e reconnect}: a lost or refused connection is re-established
      automatically (counted in [stats.reconnects]);
    - {e bounded retries with backoff}: transport errors, garbled
      replies, per-attempt timeouts and the retryable server errors
      ([queue_full], [deadline_exceeded], [internal]) are retried up to
      [policy.max_attempts] times, sleeping an exponentially growing,
      seeded-jittered backoff between attempts;
    - {e deadline budget}: the whole call — attempts, backoffs,
      reconnects — must finish within [policy.call_budget_ms]; each
      attempt additionally waits at most [policy.attempt_timeout_ms]
      for its reply;
    - {e id correlation}: every attempt sends a fresh client-unique
      integer [id]; a reply bearing any other id is a stale answer to an
      earlier timed-out attempt and is dropped ([stats.stale_dropped]) —
      a retry can therefore never be double-counted as the answer to a
      different attempt.

    Non-retryable server errors ([bad_request], [oversized_frame],
    [shutting_down]) surface immediately as {!Fatal}: retrying a request
    the server {e rejected} (rather than {e failed}) would loop
    pointlessly.  When retries or budget run out the call returns
    {!Exhausted} with the last error — an explicit outcome, never a
    silent loss; the chaos soak's reconciliation counts on that.

    Reads bypass the connection's buffered channel: replies are read
    from the raw fd under [Unix.select] with a monotonic deadline, so a
    server that never answers (a dropped reply) costs exactly the
    attempt timeout, not a blocked thread.

    Not thread-safe: one [t] per thread, like the {!Client} it wraps. *)

type policy = {
  max_attempts : int;  (** total attempts per call, first one included *)
  base_backoff_ms : int;  (** backoff before the first retry *)
  max_backoff_ms : int;  (** exponential growth is capped here *)
  attempt_timeout_ms : int;  (** per-attempt reply deadline *)
  call_budget_ms : int;  (** wall-clock budget for the whole call *)
  connect_timeout_ms : int;
      (** TCP/Unix connect deadline on every (re)connect — a black-holed
          peer costs this much, never the kernel's minutes-long default
          ({!Client.connect}'s [connect_timeout_ms]) *)
}

(** 6 attempts, 10 ms base / 500 ms cap backoff, 1 s per attempt, 10 s
    per call, 1 s per connect. *)
val default_policy : policy

(** Why a call failed definitively. *)
type failure =
  | Fatal of Wire.error_code * string
      (** the server rejected the request; retrying cannot help *)
  | Exhausted of string
      (** attempts or budget ran out; the string is the last error *)

type stats = {
  calls : int;
  ok : int;
  fatal : int;
  gave_up : int;  (** calls that returned [Exhausted] *)
  attempts : int;  (** wire exchanges tried, first attempts included *)
  retries : int;  (** attempts beyond the first of their call *)
  reconnects : int;  (** connections (re-)established after the first *)
  stale_dropped : int;  (** replies discarded by id correlation *)
  garbled : int;  (** unparsable reply lines tolerated *)
}

type t

(** [connect ?policy ?seed listen] — establish the first connection
    (retrying while the server is still binding, like
    {!Client.connect_retry}).  [seed] (default 0) drives the backoff
    jitter deterministically.
    @raise Unix.Unix_error when the server never becomes reachable. *)
val connect : ?policy:policy -> ?seed:int -> Server.listen -> t

(** [call t ?timeout_ms ?trace op] — the resilient exchange described
    above.  [timeout_ms] is forwarded to the server as the request's
    deadline; the client-side deadlines come from the policy.  [trace]
    is stamped on the envelope of every attempt (retries reuse it, so a
    retried hop still stitches under one trace). *)
val call :
  t ->
  ?timeout_ms:int ->
  ?trace:Gossip_util.Trace.t ->
  Wire.op ->
  (Wire.response, failure) result

(** Cumulative counters since [connect]. *)
val stats : t -> stats

val close : t -> unit
