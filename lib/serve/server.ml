module Json = Gossip_util.Json
module Instrument = Gossip_util.Instrument

type listen = Unix_socket of string | Tcp of string * int

type config = {
  listen : listen;
  workers : int;
  queue_capacity : int;
  max_frame_bytes : int;
  default_timeout_ms : int option;
}

let default_config ~listen =
  {
    listen;
    workers = Gossip_util.Parallel.recommended_domains ();
    queue_capacity = 64;
    max_frame_bytes = Wire.default_max_frame_bytes;
    default_timeout_ms = None;
  }

(* A connection is shared between its reader thread and any worker
   holding one of its jobs.  [refs] counts the reader (1) plus admitted
   jobs; the fd closes only when it reaches 0, so a worker never writes
   to a recycled descriptor.  To unblock a reader stuck in [read] we
   [Unix.shutdown] the socket (close(2) would not interrupt it on
   Linux); the actual close happens on the last release. *)
type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  write_mu : Mutex.t;
  state_mu : Mutex.t;
  mutable refs : int;
  mutable dead : bool;  (** stop writing: peer gone or kill requested *)
  mutable shut : bool;  (** Unix.shutdown already issued *)
  mutable closed : bool;
}

type job = {
  conn : conn;
  request : Wire.request;
  deadline_ns : int64 option;  (** monotonic, measured from admission *)
}

type t = {
  config : config;
  disp : Dispatch.t;
  listen_fd : Unix.file_descr;
  queue : job Bounded_queue.t;
  stopping : bool Atomic.t;
  mutable workers : unit Domain.t list;
  mutable accept_thread : Thread.t option;
  conns_mu : Mutex.t;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  mutable drained : bool;
  drain_mu : Mutex.t;
}

(* --- connection lifecycle --- *)

let conn_release c =
  Mutex.lock c.state_mu;
  c.refs <- c.refs - 1;
  if c.refs <= 0 && not c.closed then begin
    c.closed <- true;
    (* [oc] owns the fd; [ic] shares it and must NOT be closed too — a
       second close(2) could hit a recycled descriptor of another
       thread.  The channel buffer is reclaimed by the GC. *)
    close_out_noerr c.oc
  end;
  Mutex.unlock c.state_mu

let conn_retain_for_job c =
  Mutex.lock c.state_mu;
  c.refs <- c.refs + 1;
  Mutex.unlock c.state_mu

(* Stop the conversation without closing: wakes a reader blocked in
   [read]; the last {!conn_release} then closes the descriptor. *)
let conn_kill c =
  Mutex.lock c.state_mu;
  c.dead <- true;
  if (not c.shut) && not c.closed then begin
    c.shut <- true;
    try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock c.state_mu

let send c json =
  Mutex.lock c.write_mu;
  let ok =
    if c.dead || c.closed then false
    else
      try
        Wire.write_frame c.oc json;
        true
      with Sys_error _ | Unix.Unix_error _ ->
        c.dead <- true;
        false
  in
  Mutex.unlock c.write_mu;
  ok

(* --- worker pool --- *)

let process_job t job =
  Instrument.set_gauge "serve.queue_depth"
    (float_of_int (Bounded_queue.length t.queue));
  let req = job.request in
  let id = req.Wire.id in
  let now = Instrument.now_ns () in
  let expired =
    match job.deadline_ns with Some d -> now > d | None -> false
  in
  if expired then begin
    Instrument.add "serve.rejected.deadline" 1;
    ignore
      (send job.conn
         (Wire.error_response ~id ~code:Wire.Deadline_exceeded
            ~message:"request expired before a worker picked it up"))
  end
  else begin
    let t0 = Instrument.now_ns () in
    let outcome =
      Instrument.span "serve.request"
        ~attrs:[ ("op", Json.Str (Wire.op_name req.Wire.op)) ]
        (fun () -> Dispatch.eval t.disp req.Wire.op)
    in
    let dt = Int64.to_float (Int64.sub (Instrument.now_ns ()) t0) /. 1e9 in
    Instrument.observe "serve.request_seconds" dt;
    Instrument.add "serve.requests" 1;
    ignore
      (send job.conn
         (match outcome with
         | Ok result -> Wire.ok_response ~id result
         | Error (code, message) -> Wire.error_response ~id ~code ~message))
  end;
  conn_release job.conn

let worker_loop t () =
  let rec go () =
    match Bounded_queue.pop t.queue with
    | Some job ->
        process_job t job;
        go ()
    | None -> ()
  in
  go ()

(* --- stopping --- *)

let stop_requested t = Atomic.get t.stopping

(* Also runs inside signal handlers: no locks, only an atomic flip and a
   syscall.  shutdown(2) on the listening socket makes a blocked
   accept(2) return, which is how the accept thread learns to exit. *)
let request_stop t =
  if not (Atomic.exchange t.stopping true) then
    try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()

(* --- readers --- *)

let admit t conn (req : Wire.request) =
  let timeout_ms =
    match req.Wire.timeout_ms with
    | Some _ as x -> x
    | None -> t.config.default_timeout_ms
  in
  let deadline_ns =
    Option.map
      (fun ms ->
        Int64.add (Instrument.now_ns ()) (Int64.of_int (ms * 1_000_000)))
      timeout_ms
  in
  conn_retain_for_job conn;
  let job = { conn; request = req; deadline_ns } in
  match Bounded_queue.try_push t.queue job with
  | `Ok ->
      Instrument.set_gauge "serve.queue_depth"
        (float_of_int (Bounded_queue.length t.queue))
  | `Full ->
      conn_release conn;
      Instrument.add "serve.rejected.queue_full" 1;
      ignore
        (send conn
           (Wire.error_response ~id:req.Wire.id ~code:Wire.Queue_full
              ~message:
                (Printf.sprintf "request queue full (capacity %d); retry later"
                   t.config.queue_capacity)))
  | `Closed ->
      conn_release conn;
      ignore
        (send conn
           (Wire.error_response ~id:req.Wire.id ~code:Wire.Shutting_down
              ~message:"server is draining"))

let reader_loop t conn () =
  let max_bytes = t.config.max_frame_bytes in
  let rec go () =
    match Wire.read_frame conn.ic ~max_bytes with
    | exception (Sys_error _ | Unix.Unix_error _) -> ()
    | Error Wire.Eof -> ()
    | Error Wire.Oversized ->
        Instrument.add "serve.rejected.oversized" 1;
        ignore
          (send conn
             (Wire.error_response ~id:Json.Null ~code:Wire.Oversized_frame
                ~message:
                  (Printf.sprintf "frame exceeds %d bytes; closing connection"
                     max_bytes)));
        (* the stream is no longer framed; don't try to resync *)
        conn_kill conn
    | Ok "" -> go () (* tolerated keep-alive *)
    | Ok line ->
        (match Json.of_string line with
        | Error e ->
            (* malformed input answers an error but the connection —
               still correctly framed — survives *)
            ignore
              (send conn
                 (Wire.error_response ~id:Json.Null ~code:Wire.Bad_request
                    ~message:(Printf.sprintf "invalid JSON: %s" e)))
        | Ok frame -> (
            match Wire.parse_request frame with
            | Error msg ->
                let id =
                  Option.value ~default:Json.Null (Json.member "id" frame)
                in
                ignore
                  (send conn
                     (Wire.error_response ~id ~code:Wire.Bad_request
                        ~message:msg))
            | Ok req when stop_requested t ->
                ignore
                  (send conn
                     (Wire.error_response ~id:req.Wire.id
                        ~code:Wire.Shutting_down ~message:"server is draining"))
            | Ok ({ Wire.op = Wire.Shutdown; _ } as req) ->
                (* mark the server as stopping BEFORE the ack leaves, so a
                   client that saw the ack observes [stop_requested]; the
                   actual drain runs in [join]/[shutdown], not here *)
                request_stop t;
                ignore
                  (send conn
                     (Wire.ok_response ~id:req.Wire.id
                        (Json.Obj [ ("stopping", Json.Bool true) ])))
            | Ok req -> admit t conn req));
        if not conn.dead then go ()
  in
  go ();
  conn_release conn

(* --- accept loop --- *)

let accept_loop t () =
  let rec go () =
    if stop_requested t then ()
    else
      match Unix.accept ~cloexec:true t.listen_fd with
      | exception Unix.Unix_error _ ->
          if stop_requested t then ()
          else begin
            (* transient accept failure (ECONNABORTED, EMFILE…): don't
               spin at full speed *)
            Thread.delay 0.05;
            go ()
          end
      | fd, _addr ->
          if stop_requested t then (try Unix.close fd with _ -> ())
          else begin
            Instrument.add "serve.accepted" 1;
            let conn =
              {
                fd;
                ic = Unix.in_channel_of_descr fd;
                oc = Unix.out_channel_of_descr fd;
                write_mu = Mutex.create ();
                state_mu = Mutex.create ();
                refs = 1 (* the reader *);
                dead = false;
                shut = false;
                closed = false;
              }
            in
            let reader = Thread.create (reader_loop t conn) () in
            Mutex.lock t.conns_mu;
            t.conns <- conn :: t.conns;
            t.readers <- reader :: t.readers;
            Mutex.unlock t.conns_mu;
            go ()
          end
  in
  go ()

(* --- lifecycle --- *)

let unlink_if_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let create ?dispatch (config : config) =
  if config.workers < 1 then invalid_arg "Server.create: workers < 1";
  if config.queue_capacity < 1 then
    invalid_arg "Server.create: queue_capacity < 1";
  if config.max_frame_bytes < 2 then
    invalid_arg "Server.create: max_frame_bytes < 2";
  (* a peer that disappears mid-reply must surface as EPIPE on the
     write, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let disp = match dispatch with Some d -> d | None -> Dispatch.create () in
  let listen_fd =
    match config.listen with
    | Unix_socket path ->
        unlink_if_socket path;
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.bind fd (Unix.ADDR_UNIX path)
         with e ->
           (try Unix.close fd with _ -> ());
           raise e);
        Unix.listen fd 64;
        fd
    | Tcp (host, port) ->
        let addr =
          match Unix.inet_addr_of_string host with
          | addr -> addr
          | exception Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        (try Unix.bind fd (Unix.ADDR_INET (addr, port))
         with e ->
           (try Unix.close fd with _ -> ());
           raise e);
        Unix.listen fd 64;
        fd
  in
  {
    config;
    disp;
    listen_fd;
    queue = Bounded_queue.create ~capacity:config.queue_capacity;
    stopping = Atomic.make false;
    workers = [];
    accept_thread = None;
    conns_mu = Mutex.create ();
    conns = [];
    readers = [];
    drained = false;
    drain_mu = Mutex.create ();
  }

let start t =
  t.workers <-
    List.init t.config.workers (fun _ -> Domain.spawn (worker_loop t));
  t.accept_thread <- Some (Thread.create (accept_loop t) ())

let shutdown t =
  request_stop t;
  Mutex.lock t.drain_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.drain_mu)
    (fun () ->
      if not t.drained then begin
        t.drained <- true;
        (match t.accept_thread with Some th -> Thread.join th | None -> ());
        (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
        (* no new admissions; the workers drain what was accepted *)
        Bounded_queue.close t.queue;
        List.iter Domain.join t.workers;
        t.workers <- [];
        (* every admitted job has been answered; wake the readers and
           collect them *)
        Mutex.lock t.conns_mu;
        let conns = t.conns and readers = t.readers in
        t.conns <- [];
        t.readers <- [];
        Mutex.unlock t.conns_mu;
        List.iter conn_kill conns;
        List.iter Thread.join readers;
        match t.config.listen with
        | Unix_socket path -> unlink_if_socket path
        | Tcp _ -> ()
      end)

let join t =
  (* poll rather than sleep on a condition: request_stop must stay
     callable from a signal handler, where taking a mutex could deadlock
     against the very thread the handler interrupted *)
  while not (stop_requested t) do
    Thread.delay 0.1
  done;
  shutdown t

let dispatch t = t.disp
