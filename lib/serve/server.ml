module Json = Gossip_util.Json
module Instrument = Gossip_util.Instrument
module Trace = Gossip_util.Trace

type listen = Unix_socket of string | Tcp of string * int

type config = {
  listen : listen;
  workers : int;
  queue_capacity : int;
  max_frame_bytes : int;
  default_timeout_ms : int option;
  access_log : string option;
  chaos : Chaos.t option;  (** fault injection; [None] = disabled *)
  inline_observability : bool;
      (** answer [metrics]/[health]/[spans]/[trace_pull] from the reader
          thread, bypassing the queue (the default).  The router turns
          this off: its observability ops aggregate across the fleet,
          which is worker business, not reader business. *)
  node : string option;
      (** cluster node id; when set, request and connection identities
          are namespaced with it ([s1-r42], [s1-c7]) so merged fleet
          traces and access logs never collide across processes *)
}

let default_config ~listen =
  {
    listen;
    workers = Gossip_util.Parallel.recommended_domains ();
    queue_capacity = 64;
    max_frame_bytes = Wire.default_max_frame_bytes;
    default_timeout_ms = None;
    access_log = None;
    chaos = None;
    inline_observability = true;
    node = None;
  }

(* A connection is shared between its reader thread and any worker
   holding one of its jobs.  [refs] counts the reader (1) plus admitted
   jobs; the fd closes only when it reaches 0, so a worker never writes
   to a recycled descriptor.  To unblock a reader stuck in [read] we
   [Unix.shutdown] the socket (close(2) would not interrupt it on
   Linux); the actual close happens on the last release. *)
type conn = {
  conn_name : string;
      (** minted at accept, node-namespaced ([s1-c7]); the [conn] trace
          attribute *)
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  write_mu : Mutex.t;
  state_mu : Mutex.t;
  mutable refs : int;
  mutable dead : bool;  (** stop writing: peer gone or kill requested *)
  mutable shut : bool;  (** Unix.shutdown already issued *)
  mutable closed : bool;
}

type job = {
  conn : conn;
  request : Wire.request;
  req_id : int;  (** process-unique, minted when the frame was accepted *)
  admitted_ns : int64;  (** monotonic queue-entry stamp *)
  deadline_ns : int64 option;  (** monotonic, measured from admission *)
}

type t = {
  config : config;
  id_prefix : string;  (** [node ^ "-"], or [""] outside a cluster *)
  disp : Dispatch.t;
  evaluate :
    trace:Trace.t option ->
    Wire.op ->
    (Json.t, Wire.error_code * string) result;
  metrics : Metrics.t;
  listen_fd : Unix.file_descr;
  queue : job Bounded_queue.t;
  stopping : bool Atomic.t;
  req_counter : int Atomic.t;
  conn_counter : int Atomic.t;
  access_mu : Mutex.t;
  mutable access_oc : out_channel option;
  mutable super : Supervisor.t option;
  mutable accept_thread : Thread.t option;
  conns_mu : Mutex.t;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  mutable drained : bool;
  drain_mu : Mutex.t;
}

(* --- request identity and observability plumbing --- *)

let next_req_id t = Atomic.fetch_and_add t.req_counter 1

(* Identities are node-namespaced strings ([s1-r42]): merged fleet
   traces keep per-process counters from colliding, and the stitcher
   keys spans by (node, req_id) without guessing. *)
let req_name t n = t.id_prefix ^ "r" ^ string_of_int n

let req_attrs ~req_id ~op ~conn =
  [ ("req_id", Json.Str req_id); ("op", Json.Str op); ("conn", Json.Str conn) ]

(* One compact JSON object per answered request — the access log.  The
   line is self-contained (wall timestamp, request identity, outcome,
   queue-wait/service split in milliseconds, the client's echoed id), so
   the file is greppable without the trace. *)
let access_log t ~req_id ~conn ~op ~status ~queue_wait_s ~service_s ~id =
  match t.access_oc with
  | None -> ()
  | Some oc ->
      let line =
        Json.to_string
          (Json.Obj
             [
               ("ts", Json.Float (Unix.gettimeofday ()));
               ("req_id", Json.Str req_id);
               ("conn", Json.Str conn);
               ("op", Json.Str op);
               ("status", Json.Str status);
               ("queue_wait_ms", Json.Float (1000.0 *. queue_wait_s));
               ("service_ms", Json.Float (1000.0 *. service_s));
               ("id", id);
             ])
      in
      Mutex.lock t.access_mu;
      (try
         output_string oc line;
         output_char oc '\n';
         flush oc
       with Sys_error _ -> ());
      Mutex.unlock t.access_mu

let note_queue_depth t =
  let depth = Bounded_queue.length t.queue in
  Metrics.set_queue_depth t.metrics depth;
  Instrument.set_gauge "serve.queue_depth" (float_of_int depth)

(* --- connection lifecycle --- *)

let conn_release c =
  Mutex.lock c.state_mu;
  c.refs <- c.refs - 1;
  if c.refs <= 0 && not c.closed then begin
    c.closed <- true;
    (* [oc] owns the fd; [ic] shares it and must NOT be closed too — a
       second close(2) could hit a recycled descriptor of another
       thread.  The channel buffer is reclaimed by the GC. *)
    close_out_noerr c.oc
  end;
  Mutex.unlock c.state_mu

let conn_retain_for_job c =
  Mutex.lock c.state_mu;
  c.refs <- c.refs + 1;
  Mutex.unlock c.state_mu

(* Stop the conversation without closing: wakes a reader blocked in
   [read]; the last {!conn_release} then closes the descriptor. *)
let conn_kill c =
  Mutex.lock c.state_mu;
  c.dead <- true;
  if (not c.shut) && not c.closed then begin
    c.shut <- true;
    try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock c.state_mu

(* A failed write (EPIPE / ECONNRESET / any I/O error: the peer hung up
   mid-conversation) marks only this connection dead and is counted; the
   calling worker or reader carries on.  SIGPIPE is already ignored
   process-wide (see [create]), so the failure arrives as an exception,
   never a signal. *)
let send t c json =
  Mutex.lock c.write_mu;
  let ok =
    if c.dead || c.closed then false
    else
      try
        Wire.write_frame c.oc json;
        true
      with Sys_error _ | Unix.Unix_error _ ->
        c.dead <- true;
        Instrument.add "serve.write_errors" 1;
        Metrics.note_write_error t.metrics;
        false
  in
  Mutex.unlock c.write_mu;
  ok

(* Chaos only: emit a deliberately unparsable reply line.  Framing is
   preserved (one '\n'-terminated line) so the client can resync; the
   payload is not valid JSON, so the client must treat it as garbage. *)
let send_corrupt t c json =
  Mutex.lock c.write_mu;
  let ok =
    if c.dead || c.closed then false
    else
      try
        output_string c.oc "#chaos-corrupt ";
        output_string c.oc (Json.to_string json);
        output_char c.oc '\n';
        flush c.oc;
        true
      with Sys_error _ | Unix.Unix_error _ ->
        c.dead <- true;
        Instrument.add "serve.write_errors" 1;
        Metrics.note_write_error t.metrics;
        false
  in
  Mutex.unlock c.write_mu;
  ok

(* --- worker pool --- *)

(* Write one reply under an (optional) injected reply fault.  Faults
   strike after evaluation and accounting — the work was done and
   observed; only the reply is lost, garbled or late, exactly the
   failure a real network serves up. *)
let send_reply t conn ~(fault : Chaos.reply_fault option) json =
  match fault with
  | None -> ignore (send t conn json)
  | Some Chaos.Drop -> Instrument.add "serve.chaos.dropped_replies" 1
  | Some Chaos.Corrupt ->
      Instrument.add "serve.chaos.corrupted_replies" 1;
      ignore (send_corrupt t conn json)
  | Some (Chaos.Delay_ms ms) ->
      Instrument.add "serve.chaos.delayed_replies" 1;
      Thread.delay (float_of_int ms /. 1000.0);
      ignore (send t conn json)

(* NOTE: the caller ([worker_loop]) owns the job's connection reference
   and releases it whether we return or raise. *)
let process_job t ~worker job =
  note_queue_depth t;
  let req = job.request in
  let id = req.Wire.id in
  let op = Wire.op_name req.Wire.op in
  let trace = req.Wire.trace in
  let req_id = req_name t job.req_id in
  let conn = job.conn.conn_name in
  let now = Instrument.now_ns () in
  let queue_wait_s =
    Int64.to_float (Int64.sub now job.admitted_ns) /. 1e9
  in
  Instrument.observe "serve.queue_wait_seconds" queue_wait_s;
  let expired =
    match job.deadline_ns with Some d -> now > d | None -> false
  in
  if expired then begin
    Instrument.add "serve.rejected.deadline" 1;
    (match trace with
    | Some tr when not tr.Trace.sampled -> ()
    | _ ->
        Instrument.event "serve.reject"
          ~attrs:
            (req_attrs ~req_id ~op ~conn
            @ [ ("code", Json.Str "deadline_exceeded") ]));
    Metrics.observe_rejected t.metrics ~op ~code:"deadline_exceeded";
    access_log t ~req_id ~conn ~op ~status:"deadline_exceeded" ~queue_wait_s
      ~service_s:0.0 ~id;
    ignore
      (send t job.conn
         (Wire.error_response ~id ~code:Wire.Deadline_exceeded
            ~message:"request expired before a worker picked it up"))
  end
  else begin
    (* one match on an option when chaos is off — the entire hot-path
       cost of the fault-injection layer (measured in bench Part 25) *)
    let decision =
      match t.config.chaos with
      | None -> Chaos.no_fault
      | Some plan -> Chaos.decide plan ~req_id:job.req_id
    in
    Metrics.worker_busy t.metrics worker;
    let serve_one () =
      (* request attributes are only consumed by the streaming trace;
         skip building and installing them when no trace is attached so
         the untraced hot path pays nothing for them *)
      let tracing = Instrument.tracing () in
      (* the request's own span id: the parent every child span the
         evaluation emits links to, and the hop id a downstream peer
         would have seen had we forwarded (the server is a leaf) *)
      let span_id = if tracing then Some (Trace.fresh_span_id ()) else None in
      let trace_attrs =
        match (trace, span_id) with
        | Some tr, Some sid -> ("span_id", Json.Str sid) :: Trace.attrs tr
        | _ -> []
      in
      let attrs =
        if tracing then
          req_attrs ~req_id ~op ~conn
          @ trace_attrs
          @ [
              ( "queue_wait_ns",
                Json.Int (Int64.to_int (Int64.sub now job.admitted_ns)) );
            ]
        else []
      in
      let t0 = Instrument.now_ns () in
      if decision.Chaos.dispatch_latency_ms > 0 then begin
        Instrument.add "serve.chaos.dispatch_latency" 1;
        (* inside the busy window and the service clock: the stall is
           real worker time, and wedge detection must see it *)
        Thread.delay
          (float_of_int decision.Chaos.dispatch_latency_ms /. 1000.0)
      end;
      (* ambient attributes: every span/event the evaluation triggers —
         context lookups, norm solves, engine rounds — tags itself with
         this request, and (when a trace context rode in) with the trace
         id and this request span as its parent, so child spans stitch
         under it.  Safe: each worker domain runs exactly one thread.
         An injected panic raises from inside the span: [Instrument.span]
         is exception-safe, so the trace stays balanced and the barrier
         above us answers the client. *)
      let outcome =
        Instrument.span "serve.request" ~attrs (fun () ->
            let eval () =
              if decision.Chaos.panic then begin
                Instrument.add "serve.chaos.panics" 1;
                raise Chaos.Panic
              end;
              t.evaluate ~trace req.Wire.op
            in
            if tracing then
              let ambient =
                req_attrs ~req_id ~op ~conn
                @
                match (trace, span_id) with
                | Some tr, Some sid ->
                    [
                      ("trace_id", Json.Str tr.Trace.trace_id);
                      ("parent_span_id", Json.Str sid);
                    ]
                | _ -> []
              in
              Instrument.with_ambient_attrs ambient eval
            else eval ())
      in
      let service_s =
        Int64.to_float (Int64.sub (Instrument.now_ns ()) t0) /. 1e9
      in
      Metrics.worker_idle t.metrics worker;
      Instrument.observe "serve.request_seconds" service_s;
      Instrument.add "serve.requests" 1;
      let ok, status =
        match outcome with
        | Ok _ -> (true, "ok")
        | Error (code, _) -> (false, Wire.error_code_to_string code)
      in
      let trace_id =
        match trace with
        | Some tr when tr.Trace.sampled -> Some tr.Trace.trace_id
        | _ -> None
      in
      Metrics.observe ?trace_id t.metrics ~op ~ok ~queue_wait_s ~service_s;
      access_log t ~req_id ~conn ~op ~status ~queue_wait_s ~service_s ~id;
      send_reply t job.conn ~fault:decision.Chaos.reply
        (match outcome with
        | Ok result -> Wire.ok_response ~id result
        | Error (code, message) -> Wire.error_response ~id ~code ~message)
    in
    (* head sampling: a context that rode in sampled-out suppresses
       event streaming for the whole evaluation on this domain — the
       request is served and metered normally, it just leaves no trace *)
    match trace with
    | Some tr when not tr.Trace.sampled -> Instrument.with_sampled_out serve_one
    | _ -> serve_one ()
  end

(* The per-job exception barrier.  [Dispatch.eval] already converts
   evaluation failures into error replies, so anything arriving here is
   a worker-level fault: an injected {!Chaos.Panic} or a genuine bug in
   the serving path itself.  Either way the client gets a definitive
   [internal] answer — a job must never vanish silently — and the
   request is observed so loadgen's reconciliation still balances. *)
let answer_panicked_job t ~worker job exn =
  let req = job.request in
  let op = Wire.op_name req.Wire.op in
  let req_id = req_name t job.req_id in
  let conn = job.conn.conn_name in
  (* the panic interrupted the busy window; clear the stamp or the
     wedge detector would count this worker busy forever *)
  Metrics.worker_idle t.metrics worker;
  Instrument.add "serve.job_panics" 1;
  Instrument.event "serve.panic"
    ~attrs:
      (req_attrs ~req_id ~op ~conn
      @ [ ("exn", Json.Str (Printexc.to_string exn)) ]);
  Metrics.observe t.metrics ~op ~ok:false ~queue_wait_s:0.0 ~service_s:0.0;
  access_log t ~req_id ~conn ~op ~status:"internal" ~queue_wait_s:0.0
    ~service_s:0.0 ~id:req.Wire.id;
  let message =
    match exn with
    | Chaos.Panic -> "worker panicked (injected fault); request not served"
    | e -> Printf.sprintf "worker panicked: %s" (Printexc.to_string e)
  in
  ignore
    (send t job.conn
       (Wire.error_response ~id:req.Wire.id ~code:Wire.Internal ~message))

let worker_loop t worker () =
  let rec go () =
    match Bounded_queue.pop t.queue with
    | Some job ->
        (* the finally runs on every exit path, so the connection's
           refcount balances even when the job panics *)
        let fatal =
          Fun.protect
            ~finally:(fun () -> conn_release job.conn)
            (fun () ->
              try
                process_job t ~worker job;
                None
              with exn ->
                answer_panicked_job t ~worker job exn;
                (* an injected panic is a simulated domain crash: after
                   answering, die for real so the supervisor's respawn
                   path runs end to end.  Everything else is survived —
                   the barrier's whole purpose. *)
                (match exn with Chaos.Panic -> Some exn | _ -> None))
        in
        (match fatal with Some exn -> raise exn | None -> go ())
    | None -> ()
  in
  go ()

(* --- stopping --- *)

let stop_requested t = Atomic.get t.stopping

(* Also runs inside signal handlers: no locks, only an atomic flip and a
   syscall.  shutdown(2) on the listening socket makes a blocked
   accept(2) return, which is how the accept thread learns to exit. *)
let request_stop t =
  if not (Atomic.exchange t.stopping true) then
    try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()

(* --- readers --- *)

let admit t conn (req : Wire.request) ~req_id =
  let op = Wire.op_name req.Wire.op in
  let req_name = req_name t req_id in
  let timeout_ms =
    match req.Wire.timeout_ms with
    | Some _ as x -> x
    | None -> t.config.default_timeout_ms
  in
  let admitted_ns = Instrument.now_ns () in
  let deadline_ns =
    Option.map
      (fun ms -> Int64.add admitted_ns (Int64.of_int (ms * 1_000_000)))
      timeout_ms
  in
  (* an unsampled context means this request streams nothing, anywhere:
     the admit/reject point events below must honor the verdict just
     like the worker's spans do, or sub-1.0 sampling leaves admitted
     requests with no serve.request span and trips trace_report. *)
  let sampled =
    match req.Wire.trace with
    | Some tr -> tr.Gossip_util.Trace.sampled
    | None -> true
  in
  conn_retain_for_job conn;
  let job = { conn; request = req; req_id; admitted_ns; deadline_ns } in
  match Bounded_queue.try_push t.queue job with
  | `Ok ->
      note_queue_depth t;
      if sampled && Instrument.tracing () then
        Instrument.event "serve.admit"
          ~attrs:
            (req_attrs ~req_id:req_name ~op ~conn:conn.conn_name
            @ [ ("queue_depth", Json.Int (Bounded_queue.length t.queue)) ])
  | `Full ->
      conn_release conn;
      Instrument.add "serve.rejected.queue_full" 1;
      if sampled then
        Instrument.event "serve.reject"
          ~attrs:
            (req_attrs ~req_id:req_name ~op ~conn:conn.conn_name
            @ [ ("code", Json.Str "queue_full") ]);
      Metrics.observe_rejected t.metrics ~op ~code:"queue_full";
      access_log t ~req_id:req_name ~conn:conn.conn_name ~op
        ~status:"queue_full" ~queue_wait_s:0.0 ~service_s:0.0 ~id:req.Wire.id;
      ignore
        (send t conn
           (Wire.error_response ~id:req.Wire.id ~code:Wire.Queue_full
              ~message:
                (Printf.sprintf "request queue full (capacity %d); retry later"
                   t.config.queue_capacity)))
  | `Closed ->
      conn_release conn;
      Metrics.observe_rejected t.metrics ~op ~code:"shutting_down";
      access_log t ~req_id:req_name ~conn:conn.conn_name ~op
        ~status:"shutting_down" ~queue_wait_s:0.0 ~service_s:0.0
        ~id:req.Wire.id;
      ignore
        (send t conn
           (Wire.error_response ~id:req.Wire.id ~code:Wire.Shutting_down
              ~message:"server is draining"))

(* The observability ops answer from the reader thread, bypassing the
   queue and the worker pool: [health] must stay answerable when the
   queue is saturated or every worker is wedged — that is exactly when
   it matters — and the snapshots they serialize are cheap.  They run
   sampled-out unconditionally: scrapers poll these ops continuously,
   and self-observation spamming the very ring [trace_pull] drains
   would bury the fleet's real traffic.  The span still aggregates
   (sampled-out only suppresses streaming). *)
let eval_inline t (req : Wire.request) ~req_id ~conn =
  Instrument.with_sampled_out @@ fun () ->
  let op = Wire.op_name req.Wire.op in
  let req_id = req_name t req_id in
  let t0 = Instrument.now_ns () in
  let result =
    Instrument.span "serve.request" (fun () ->
        match req.Wire.op with
        | Wire.Metrics -> Metrics.metrics_json t.metrics
        | Wire.Health -> Metrics.health_json t.metrics
        | Wire.Trace_pull { max } -> Metrics.traces_json t.metrics ~max
        | _ -> Metrics.spans_json ())
  in
  let service_s = Int64.to_float (Int64.sub (Instrument.now_ns ()) t0) /. 1e9 in
  Instrument.add "serve.requests" 1;
  Metrics.observe t.metrics ~op ~ok:true ~queue_wait_s:0.0 ~service_s;
  access_log t ~req_id ~conn ~op ~status:"ok" ~queue_wait_s:0.0 ~service_s
    ~id:req.Wire.id;
  Wire.ok_response ~id:req.Wire.id result

let reader_loop t conn () =
  let max_bytes = t.config.max_frame_bytes in
  let rec go () =
    match Wire.read_frame conn.ic ~max_bytes with
    | exception (Sys_error _ | Unix.Unix_error _) -> ()
    | Error Wire.Eof -> ()
    | Error Wire.Oversized ->
        Instrument.add "serve.rejected.oversized" 1;
        ignore
          (send t conn
             (Wire.error_response ~id:Json.Null ~code:Wire.Oversized_frame
                ~message:
                  (Printf.sprintf "frame exceeds %d bytes; closing connection"
                     max_bytes)));
        (* the stream is no longer framed; don't try to resync *)
        conn_kill conn
    | Ok "" -> go () (* tolerated keep-alive *)
    | Ok line ->
        (match Json.of_string line with
        | Error e ->
            (* malformed input answers an error but the connection —
               still correctly framed — survives *)
            Metrics.observe_rejected t.metrics ~op:"invalid" ~code:"bad_request";
            access_log t ~req_id:(req_name t (next_req_id t))
              ~conn:conn.conn_name ~op:"invalid" ~status:"bad_request"
              ~queue_wait_s:0.0 ~service_s:0.0 ~id:Json.Null;
            ignore
              (send t conn
                 (Wire.error_response ~id:Json.Null ~code:Wire.Bad_request
                    ~message:(Printf.sprintf "invalid JSON: %s" e)))
        | Ok frame -> (
            match Wire.parse_request frame with
            | Error msg ->
                let id =
                  Option.value ~default:Json.Null (Json.member "id" frame)
                in
                Metrics.observe_rejected t.metrics ~op:"invalid"
                  ~code:"bad_request";
                access_log t ~req_id:(req_name t (next_req_id t))
                  ~conn:conn.conn_name ~op:"invalid" ~status:"bad_request"
                  ~queue_wait_s:0.0 ~service_s:0.0 ~id;
                ignore
                  (send t conn
                     (Wire.error_response ~id ~code:Wire.Bad_request
                        ~message:msg))
            | Ok ({
                    Wire.op =
                      Wire.Metrics | Wire.Health | Wire.Spans
                      | Wire.Trace_pull _;
                    _;
                  } as req)
              when t.config.inline_observability ->
                (* observability stays on even while draining *)
                ignore
                  (send t conn
                     (eval_inline t req ~req_id:(next_req_id t)
                        ~conn:conn.conn_name))
            | Ok req when stop_requested t ->
                ignore
                  (send t conn
                     (Wire.error_response ~id:req.Wire.id
                        ~code:Wire.Shutting_down ~message:"server is draining"))
            | Ok ({ Wire.op = Wire.Shutdown; _ } as req) ->
                (* mark the server as stopping BEFORE the ack leaves, so a
                   client that saw the ack observes [stop_requested]; the
                   actual drain runs in [join]/[shutdown], not here *)
                request_stop t;
                ignore
                  (send t conn
                     (Wire.ok_response ~id:req.Wire.id
                        (Json.Obj [ ("stopping", Json.Bool true) ])))
            | Ok req -> admit t conn req ~req_id:(next_req_id t)));
        if not conn.dead then go ()
  in
  go ();
  Metrics.conn_closed t.metrics;
  conn_release conn

(* --- accept loop --- *)

let accept_loop t () =
  let rec go () =
    if stop_requested t then ()
    else
      match Unix.accept ~cloexec:true t.listen_fd with
      | exception Unix.Unix_error _ ->
          if stop_requested t then ()
          else begin
            (* transient accept failure (ECONNABORTED, EMFILE…): don't
               spin at full speed *)
            Thread.delay 0.05;
            go ()
          end
      | fd, _addr ->
          if stop_requested t then (try Unix.close fd with _ -> ())
          else begin
            Instrument.add "serve.accepted" 1;
            Metrics.conn_opened t.metrics;
            let conn_name =
              t.id_prefix ^ "c"
              ^ string_of_int (Atomic.fetch_and_add t.conn_counter 1)
            in
            Instrument.event "serve.accept"
              ~attrs:[ ("conn", Json.Str conn_name) ];
            let conn =
              {
                conn_name;
                fd;
                ic = Unix.in_channel_of_descr fd;
                oc = Unix.out_channel_of_descr fd;
                write_mu = Mutex.create ();
                state_mu = Mutex.create ();
                refs = 1 (* the reader *);
                dead = false;
                shut = false;
                closed = false;
              }
            in
            let reader = Thread.create (reader_loop t conn) () in
            Mutex.lock t.conns_mu;
            t.conns <- conn :: t.conns;
            t.readers <- reader :: t.readers;
            Mutex.unlock t.conns_mu;
            go ()
          end
  in
  go ()

(* --- lifecycle --- *)

let unlink_if_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let create ?dispatch ?metrics ?evaluate (config : config) =
  if config.workers < 1 then invalid_arg "Server.create: workers < 1";
  if config.queue_capacity < 1 then
    invalid_arg "Server.create: queue_capacity < 1";
  if config.max_frame_bytes < 2 then
    invalid_arg "Server.create: max_frame_bytes < 2";
  (* a peer that disappears mid-reply must surface as EPIPE on the
     write, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let metrics =
    match metrics with
    | Some m -> m
    | None ->
        Metrics.create ~workers:config.workers
          ~queue_capacity:config.queue_capacity ()
  in
  let disp =
    match dispatch with Some d -> d | None -> Dispatch.create ~metrics ()
  in
  let evaluate =
    match evaluate with
    | Some f -> f
    | None ->
        (* the local dispatcher is a leaf: it never forwards, so the
           trace context has already done its job (span attrs, sampling)
           by the time evaluation starts *)
        fun ~trace:_ op -> Dispatch.eval disp op
  in
  let access_oc = Option.map open_out config.access_log in
  let listen_fd =
    match config.listen with
    | Unix_socket path ->
        unlink_if_socket path;
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.bind fd (Unix.ADDR_UNIX path)
         with e ->
           (try Unix.close fd with _ -> ());
           raise e);
        Unix.listen fd 64;
        fd
    | Tcp (host, port) ->
        let addr =
          match Unix.inet_addr_of_string host with
          | addr -> addr
          | exception Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        (try Unix.bind fd (Unix.ADDR_INET (addr, port))
         with e ->
           (try Unix.close fd with _ -> ());
           raise e);
        Unix.listen fd 64;
        fd
  in
  {
    config;
    id_prefix =
      (match config.node with Some node -> node ^ "-" | None -> "");
    disp;
    evaluate;
    metrics;
    listen_fd;
    queue = Bounded_queue.create ~capacity:config.queue_capacity;
    stopping = Atomic.make false;
    req_counter = Atomic.make 1;
    conn_counter = Atomic.make 1;
    access_mu = Mutex.create ();
    access_oc;
    super = None;
    accept_thread = None;
    conns_mu = Mutex.create ();
    conns = [];
    readers = [];
    drained = false;
    drain_mu = Mutex.create ();
  }

let start t =
  t.super <-
    Some
      (Supervisor.start ~workers:t.config.workers
         ~stopping:(fun () -> stop_requested t)
         ~on_restart:(fun slot ->
           Instrument.add "serve.worker_restarts" 1;
           Metrics.note_worker_restart t.metrics;
           Instrument.event "serve.worker_restart"
             ~attrs:[ ("worker", Json.Int slot) ])
         ~on_missing:(fun n -> Metrics.set_workers_missing t.metrics n)
         ~body:(fun slot -> worker_loop t slot ())
         ());
  t.accept_thread <- Some (Thread.create (accept_loop t) ())

let shutdown t =
  request_stop t;
  Mutex.lock t.drain_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.drain_mu)
    (fun () ->
      if not t.drained then begin
        t.drained <- true;
        (match t.accept_thread with Some th -> Thread.join th | None -> ());
        (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
        (* no new admissions; the workers drain what was accepted.
           [stop_requested] is already true, so the supervisor will not
           respawn the workers as they exit. *)
        Bounded_queue.close t.queue;
        (match t.super with
        | Some s ->
            Supervisor.shutdown s;
            t.super <- None
        | None -> ());
        (* every admitted job has been answered; wake the readers and
           collect them *)
        Mutex.lock t.conns_mu;
        let conns = t.conns and readers = t.readers in
        t.conns <- [];
        t.readers <- [];
        Mutex.unlock t.conns_mu;
        List.iter conn_kill conns;
        List.iter Thread.join readers;
        (match t.access_oc with
        | Some oc ->
            t.access_oc <- None;
            (try flush oc; close_out oc with Sys_error _ -> ())
        | None -> ());
        match t.config.listen with
        | Unix_socket path -> unlink_if_socket path
        | Tcp _ -> ()
      end)

let join t =
  (* poll rather than sleep on a condition: request_stop must stay
     callable from a signal handler, where taking a mutex could deadlock
     against the very thread the handler interrupted *)
  while not (stop_requested t) do
    Thread.delay 0.1
  done;
  shutdown t

let dispatch t = t.disp
let metrics t = t.metrics
