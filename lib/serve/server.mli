(** The concurrent analysis server behind [gossip_served].

    Architecture (doc/serving.md has the full story):

    - an {e accept thread} takes connections on a Unix-domain or TCP
      socket and starts one lightweight {e reader thread} per connection;
    - readers decode newline-delimited JSON frames ({!Wire}), validate
      them, and [try_push] jobs onto one {e bounded queue}
      ({!Bounded_queue}) — a full queue is answered immediately with a
      [queue_full] error reply (backpressure, never unbounded buffering);
    - a pool of {e worker domains} pops jobs, checks the per-request
      deadline, evaluates through the shared {!Dispatch} (one memoizing
      {!Core.Context} for the whole process) and writes the reply under
      the connection's write mutex — replies may therefore leave in
      completion order, not request order;
    - malformed input is answered with [bad_request] and the connection
      {e survives}; only an oversized frame (framing no longer
      trustworthy) closes it;
    - {!shutdown} (also triggered by the [shutdown] operation and by the
      daemon's SIGTERM/SIGINT handlers) stops accepting, lets the queue
      drain, joins the workers and closes every connection.

    Telemetry: every request is assigned a process-unique [req_id] when
    its frame is parsed — node-namespaced ([s1-r42]) when [config.node]
    is set, so merged fleet traces never collide — and runs in a
    ["serve.request"] span tagged [req_id] / [op] / [conn] /
    [queue_wait_ns]; admission and refusal are marked by
    ["serve.admit"] / ["serve.reject"] point events with the same
    identity, so a JSONL trace reconstructs each request's critical
    path (queue wait vs service).  During evaluation the same
    attributes are installed as {e ambient}
    ({!Gossip_util.Instrument.with_ambient_attrs}), so context lookups
    and solver spans deep in the library tag themselves with the
    request.  Latencies land in the ["serve.request_seconds"] and
    ["serve.queue_wait_seconds"] histograms, queue occupancy on the
    ["serve.queue_depth"] gauge, and the
    ["serve.accepted"]/["serve.requests"]/["serve.rejected.*"] counters
    track admission.  Independently of tracing, a {!Metrics.t} keeps
    rolling per-op windows behind the [metrics] / [health] / [spans] /
    [trace_pull] operations — those are answered inline by the reader
    thread, bypassing the queue, so they stay responsive exactly when
    the queue is saturated.

    Distributed tracing: a request whose envelope carries trace context
    ({!Wire.request}[.trace]) runs its ["serve.request"] span with
    [trace_id], a freshly minted [span_id] and the sender's
    [parent_span_id]; the ambient attributes re-parent every child span
    under the request span, so a multi-file stitch
    ({!Trace_analysis.stitch}) reconstructs the cross-node waterfall.
    A context marked {e sampled-out} suppresses event streaming for the
    whole evaluation ({!Gossip_util.Instrument.with_sampled_out}) — the
    request is served and metered normally but leaves no trace.  The
    inline observability ops always run sampled-out: scrape traffic
    must not bury real requests in the trace ring.

    When [config.access_log] is set, every answered request appends one
    compact JSON line [{ts, req_id, conn, op, status, queue_wait_ms,
    service_ms, id}] to that file (see doc/serving.md).

    Robustness (doc/robustness.md has the full story): each worker runs
    its jobs under an {e exception barrier} — an exception escaping the
    serving path answers the client [internal] instead of losing the
    request; a worker domain that nevertheless dies is respawned by a
    {!Supervisor} heartbeat (counted in [worker_restarts], health
    degraded while the pool is incomplete); reply writes that fail
    because the peer vanished (EPIPE / ECONNRESET) close only that
    connection and bump [write_errors].  When [config.chaos] is set
    ({!Chaos}), queued requests suffer seeded, deterministic faults —
    dropped / corrupted / delayed replies, injected dispatch latency,
    worker panics — while the inline observability ops stay exempt so
    the storm remains observable. *)

type listen =
  | Unix_socket of string  (** path; unlinked on bind and on shutdown *)
  | Tcp of string * int  (** bind address and port *)

type config = {
  listen : listen;
  workers : int;  (** worker domains evaluating requests *)
  queue_capacity : int;  (** bounded queue length — the backpressure knob *)
  max_frame_bytes : int;  (** per-frame size limit *)
  default_timeout_ms : int option;
      (** deadline applied to requests that carry no [timeout_ms] *)
  access_log : string option;
      (** when set, one JSON line per answered request is appended to
          this file (truncated on open) *)
  chaos : Chaos.t option;
      (** fault-injection plan for queued requests; [None] (the
          default) disables injection entirely — the hot path then pays
          a single pattern match *)
  inline_observability : bool;
      (** answer [metrics] / [health] / [spans] / [trace_pull] from the
          reader thread, bypassing the queue (the default, [true]) —
          they must stay answerable when the queue is saturated.  The
          cluster router sets [false] so those ops reach its own
          evaluator, which aggregates across the whole fleet instead of
          answering for one process. *)
  node : string option;
      (** cluster node id (default [None]); when set, request and
          connection identities are namespaced with it ([s1-r42],
          [s1-c7]) in trace attributes and access-log lines, so a
          fleet's merged telemetry stays collision-free and
          attributable *)
}

(** [default_config ~listen] — {!Gossip_util.Parallel.recommended_domains}
    workers, queue capacity 64, 1 MiB frames, no default deadline, no
    access log, no chaos. *)
val default_config : listen:listen -> config

type t

(** [create ?dispatch ?metrics ?evaluate config] binds and listens (so
    a subsequent client [connect] cannot race the bind) but accepts
    nothing yet.  [metrics] (default: fresh, sized to the config)
    receives every observation; pass your own to share it with an
    embedding process.  When [dispatch] is omitted the server's
    dispatcher is created over the same metrics value, so the
    observability ops answer identically whether evaluated inline or
    through the queue.  [evaluate] (default: [Dispatch.eval] on that
    dispatcher) is what worker domains run queued requests through —
    the cluster router substitutes its ring-routing forwarder here and
    reuses the rest of the server machinery (accept/readers/queue/
    workers/supervisor) unchanged.  [trace] is the request's
    distributed-trace context (already installed in the span and
    ambient attributes by the server); a forwarding evaluator
    propagates it downstream, a leaf evaluator may ignore it.  It must
    be safe to call from several domains at once.
    @raise Unix.Unix_error when the address is unavailable. *)
val create :
  ?dispatch:Dispatch.t ->
  ?metrics:Metrics.t ->
  ?evaluate:
    (trace:Gossip_util.Trace.t option ->
    Wire.op ->
    (Gossip_util.Json.t, Wire.error_code * string) result) ->
  config ->
  t

(** [start t] spawns the worker domains and the accept thread and
    returns immediately. *)
val start : t -> unit

(** [shutdown t] — graceful drain, callable from any thread and
    idempotent: stop accepting, answer nothing new, finish every job
    already admitted, join the workers, close every connection (and
    unlink the Unix socket).  Blocks until done. *)
val shutdown : t -> unit

(** [stop_requested t] — has a drain been requested (by {!shutdown}, the
    [shutdown] operation, or a signal handler via {!request_stop})? *)
val stop_requested : t -> bool

(** [request_stop t] — async-signal-safe trigger: marks the server as
    stopping and unblocks the accept thread, without draining.  The
    thread sitting in {!join} performs the drain. *)
val request_stop : t -> unit

(** [join t] blocks until a stop is requested, then runs the {!shutdown}
    drain.  The daemon's main thread lives here. *)
val join : t -> unit

(** [dispatch t] — the dispatcher (hence context) this server evaluates
    with; useful for in-process tests. *)
val dispatch : t -> Dispatch.t

(** [metrics t] — the live observability state this server feeds; the
    same value the [metrics] and [health] operations snapshot. *)
val metrics : t -> Metrics.t
