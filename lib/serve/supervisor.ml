type slot = {
  index : int;
  mutable domain : unit Domain.t option;  (* touched only by start/heartbeat/shutdown *)
  exited : bool Atomic.t;  (* set by the dying domain itself *)
}

type t = {
  slots : slot array;
  restart_count : int Atomic.t;
  stopping : unit -> bool;
  shutting : bool Atomic.t;
  on_restart : int -> unit;
  on_missing : int -> unit;
  body : int -> unit;
  heartbeat_s : float;
  mutable heartbeat : Thread.t option;
}

(* The exited flag is the last thing a domain does, so by the time the
   heartbeat sees it the body is gone and Domain.join returns at once.
   Exceptions are swallowed here: anything that escapes the body is a
   crash by definition, and the respawn is the response. *)
let slot_main t slot () =
  (try t.body slot.index with _ -> ());
  Atomic.set slot.exited true

let spawn t slot =
  Atomic.set slot.exited false;
  slot.domain <- Some (Domain.spawn (slot_main t slot))

let heartbeat_loop t () =
  while not (Atomic.get t.shutting) do
    Thread.delay t.heartbeat_s;
    if (not (Atomic.get t.shutting)) && not (t.stopping ()) then begin
      let missing =
        Array.fold_left
          (fun n s -> if Atomic.get s.exited then n + 1 else n)
          0 t.slots
      in
      if missing > 0 then begin
        t.on_missing missing;
        Array.iter
          (fun s ->
            if Atomic.get s.exited && not (t.stopping ()) then begin
              (match s.domain with Some d -> Domain.join d | None -> ());
              spawn t s;
              Atomic.incr t.restart_count;
              t.on_restart s.index
            end)
          t.slots;
        t.on_missing 0
      end
    end
  done

let start ~workers ?(heartbeat_ms = 50) ~stopping ~on_restart ~on_missing
    ~body () =
  if workers <= 0 then invalid_arg "Supervisor: workers must be positive";
  if heartbeat_ms <= 0 then
    invalid_arg "Supervisor: heartbeat_ms must be positive";
  let t =
    {
      slots =
        Array.init workers (fun index ->
            { index; domain = None; exited = Atomic.make false });
      restart_count = Atomic.make 0;
      stopping;
      shutting = Atomic.make false;
      on_restart;
      on_missing;
      body;
      heartbeat_s = float_of_int heartbeat_ms /. 1000.0;
      heartbeat = None;
    }
  in
  Array.iter (spawn t) t.slots;
  t.heartbeat <- Some (Thread.create (heartbeat_loop t) ());
  t

let restarts t = Atomic.get t.restart_count

let alive t =
  Array.fold_left
    (fun n s ->
      if s.domain <> None && not (Atomic.get s.exited) then n + 1 else n)
    0 t.slots

let shutdown t =
  Atomic.set t.shutting true;
  (match t.heartbeat with
  | Some th ->
      Thread.join th;
      t.heartbeat <- None
  | None -> ());
  Array.iter
    (fun s ->
      match s.domain with
      | Some d ->
          Domain.join d;
          s.domain <- None
      | None -> ())
    t.slots
