(** Self-healing worker pool: spawn [workers] domains and keep them
    alive until told to stop.

    Each worker occupies a fixed {e slot} ([0 .. workers-1]); the slot
    index is the worker's identity for metrics (busy stamps, restart
    events), so a respawned worker inherits its predecessor's slot.  A
    heartbeat thread polls the slots: when a domain has exited while the
    pool is not stopping — an escaped exception, i.e. a crash — the dead
    domain is joined and a fresh one is spawned in the same slot, and
    [on_restart slot] fires.  [on_missing n] reports the number of dead
    slots just before the respawn pass and [on_missing 0] after it, so
    the caller can degrade and restore health around the gap.

    What this can and cannot heal: an OCaml domain cannot be killed or
    interrupted from outside, so a {e dead} worker (body returned or
    raised) is respawned, but a {e wedged} worker (alive and stuck) can
    only be detected and reported — that is {!Metrics.wedged_workers}'
    job, and the pool stays degraded until the worker comes back on its
    own.  The barrier in the server's worker loop makes death rare
    (ordinary exceptions are answered, not propagated); the supervisor
    is the backstop for the exceptions that are meant to escape. *)

type t

(** [start ~workers ~stopping ~on_restart ~on_missing ~body ()] spawns
    [workers] domains running [body slot] and a heartbeat thread that
    respawns crashed ones every [heartbeat_ms] (default 50) until
    [stopping ()] is true.  A body that raises counts as a crash; the
    exception is swallowed (the barrier in [body] should have dealt with
    it).  A body that returns while [stopping ()] is false also counts
    as a crash and is respawned.
    @raise Invalid_argument if [workers <= 0] or [heartbeat_ms <= 0]. *)
val start :
  workers:int ->
  ?heartbeat_ms:int ->
  stopping:(unit -> bool) ->
  on_restart:(int -> unit) ->
  on_missing:(int -> unit) ->
  body:(int -> unit) ->
  unit ->
  t

(** Total respawns performed since [start]. *)
val restarts : t -> int

(** Number of slots whose domain is currently running. *)
val alive : t -> int

(** Stop the heartbeat and join every worker domain.  The caller must
    first make [stopping ()] true {e and} unblock the workers (close the
    queue they pop from), or this blocks forever.  Idempotent. *)
val shutdown : t -> unit
