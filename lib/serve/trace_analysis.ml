module Json = Gossip_util.Json

(* Everything we know about one request id after the scan.  [admitted]
   and [rejected] come from the serve.admit / serve.reject point events;
   the queue-wait/service split comes from the serve.request span_end,
   whose attributes carry queue_wait_ns and dur_ns.  [spans] collects
   every OTHER span_end tagged with this req_id (via ambient
   attributes): the request's waterfall, in trace order. *)
type req = {
  mutable r_op : string;
  mutable r_conn : int;
  mutable admitted : bool;
  mutable rejected : string option;  (* rejection code *)
  mutable queue_wait_ns : int option;
  mutable service_ns : int option;
  mutable start_mono : int option;  (* serve.request span start, mono ns *)
  mutable r_spans : (string * int * int) list;  (* name, offset_ns, dur_ns *)
  mutable lookups_hit : int;
  mutable lookups_miss : int;
}

(* Per-(domain, span-name) begin/end balance; an imbalance means the
   trace lost events or a span never closed. *)
type balance = { mutable begins : int; mutable ends : int }

type span_agg = {
  mutable s_count : int;
  mutable s_total_ns : float;
  mutable s_max_ns : int;
  mutable durs : int list;  (* all durations, ns; for exact quantiles *)
  mutable s_alloc_words : float;  (* summed span_end alloc_words *)
  mutable s_alloc_seen : int;  (* span_end events that carried the field *)
}

type t = {
  mutable lines : int;
  mutable events : int;
  mutable parse_errors : int;
  reqs : (int, req) Hashtbl.t;
  spans : (string, span_agg) Hashtbl.t;
  bal : (int * string, balance) Hashtbl.t;
}

let create () =
  {
    lines = 0;
    events = 0;
    parse_errors = 0;
    reqs = Hashtbl.create 256;
    spans = Hashtbl.create 64;
    bal = Hashtbl.create 64;
  }

let int_field j k = Option.bind (Json.member k j) Json.to_int_opt
let str_field j k = Option.bind (Json.member k j) Json.to_string_opt

let req_for t id =
  match Hashtbl.find_opt t.reqs id with
  | Some r -> r
  | None ->
      let r =
        {
          r_op = "?";
          r_conn = -1;
          admitted = false;
          rejected = None;
          queue_wait_ns = None;
          service_ns = None;
          start_mono = None;
          r_spans = [];
          lookups_hit = 0;
          lookups_miss = 0;
        }
      in
      Hashtbl.add t.reqs id r;
      r

let agg_for t name =
  match Hashtbl.find_opt t.spans name with
  | Some a -> a
  | None ->
      let a =
        {
          s_count = 0;
          s_total_ns = 0.0;
          s_max_ns = 0;
          durs = [];
          s_alloc_words = 0.0;
          s_alloc_seen = 0;
        }
      in
      Hashtbl.add t.spans name a;
      a

let bal_for t key =
  match Hashtbl.find_opt t.bal key with
  | Some b -> b
  | None ->
      let b = { begins = 0; ends = 0 } in
      Hashtbl.add t.bal key b;
      b

let note_identity r j =
  (match str_field j "op" with Some op -> r.r_op <- op | None -> ());
  match int_field j "conn" with Some c -> r.r_conn <- c | None -> ()

let ingest_json t j =
  t.events <- t.events + 1;
  let ev = Option.value ~default:"" (str_field j "ev") in
  let name = Option.value ~default:"" (str_field j "name") in
  let dom = Option.value ~default:0 (int_field j "dom") in
  let req_id = int_field j "req_id" in
  (match ev with
  | "span_begin" ->
      let b = bal_for t (dom, name) in
      b.begins <- b.begins + 1
  | "span_end" ->
      let b = bal_for t (dom, name) in
      b.ends <- b.ends + 1;
      let dur = Option.value ~default:0 (int_field j "dur_ns") in
      let a = agg_for t name in
      a.s_count <- a.s_count + 1;
      a.s_total_ns <- a.s_total_ns +. float_of_int dur;
      if dur > a.s_max_ns then a.s_max_ns <- dur;
      a.durs <- dur :: a.durs;
      (match int_field j "alloc_words" with
      | Some w ->
          a.s_alloc_words <- a.s_alloc_words +. float_of_int w;
          a.s_alloc_seen <- a.s_alloc_seen + 1
      | None -> ())
  | _ -> ());
  match req_id with
  | None -> ()
  | Some id -> (
      let r = req_for t id in
      note_identity r j;
      match (ev, name) with
      | "point", "serve.admit" -> r.admitted <- true
      | "span_begin", "serve.request" -> (
          (* precedes every child span in the stream, so waterfall
             offsets resolve on first pass *)
          match int_field j "mono_ns" with
          | Some m -> r.start_mono <- Some m
          | None -> ())
      | "point", "serve.reject" ->
          r.rejected <- Some (Option.value ~default:"?" (str_field j "code"))
      | "point", "context.lookup" -> (
          match str_field j "outcome" with
          | Some "hit" -> r.lookups_hit <- r.lookups_hit + 1
          | Some "miss" -> r.lookups_miss <- r.lookups_miss + 1
          | _ -> ())
      | "span_end", "serve.request" ->
          let dur = Option.value ~default:0 (int_field j "dur_ns") in
          r.service_ns <- Some dur;
          r.queue_wait_ns <- int_field j "queue_wait_ns";
          (match int_field j "mono_ns" with
          | Some m -> r.start_mono <- Some (m - dur)
          | None -> ())
      | "span_end", _ ->
          let dur = Option.value ~default:0 (int_field j "dur_ns") in
          let off =
            match (int_field j "mono_ns", r.start_mono) with
            | Some m, Some s -> m - dur - s
            | _ -> 0
          in
          r.r_spans <- (name, off, dur) :: r.r_spans
      | _ -> ())

let ingest_line t line =
  if String.trim line <> "" then begin
    t.lines <- t.lines + 1;
    match Json.of_string line with
    | Ok j -> ingest_json t j
    | Error _ -> t.parse_errors <- t.parse_errors + 1
  end

let of_lines lines =
  let t = create () in
  List.iter (ingest_line t) lines;
  t

let of_channel ic =
  let t = create () in
  (try
     while true do
       ingest_line t (input_line ic)
     done
   with End_of_file -> ());
  t

(* {2 Derived views} *)

let fold_reqs t f init = Hashtbl.fold (fun id r acc -> f id r acc) t.reqs init

let answered r = r.service_ns <> None && r.queue_wait_ns <> None
let complete r = answered r || r.rejected <> None
let zero_span r = r.admitted && r.service_ns = None && r.rejected = None

let coverage t =
  let seen = Hashtbl.length t.reqs in
  if seen = 0 then 1.0
  else
    let ok = fold_reqs t (fun _ r n -> if complete r then n + 1 else n) 0 in
    float_of_int ok /. float_of_int seen

(* Allocation accounting: traces recorded since span_end grew the
   alloc_words field carry it on every span_end; [alloc_instrumented]
   distinguishes those from older traces (where its absence is not a
   defect), and [alloc_missing] finds spans that only partially carry it
   — which means the trace mixes recordings from different builds. *)
let alloc_instrumented t =
  Hashtbl.fold (fun _ a acc -> acc || a.s_alloc_seen > 0) t.spans false

let alloc_total_words t =
  Hashtbl.fold (fun _ a acc -> acc +. a.s_alloc_words) t.spans 0.0

let alloc_missing t =
  Hashtbl.fold
    (fun name a acc ->
      if a.s_alloc_seen < a.s_count then (name, a.s_alloc_seen, a.s_count) :: acc
      else acc)
    t.spans []
  |> List.sort compare

let top_allocators t ~top_k =
  Hashtbl.fold (fun name a acc -> (name, a) :: acc) t.spans []
  |> List.filter (fun (_, a) -> a.s_alloc_words > 0.0)
  |> List.sort (fun (_, a) (_, b) -> compare b.s_alloc_words a.s_alloc_words)
  |> List.filteri (fun i _ -> i < top_k)

let unbalanced t =
  Hashtbl.fold
    (fun (dom, name) b acc ->
      if b.begins <> b.ends then (dom, name, b.begins, b.ends) :: acc else acc)
    t.bal []
  |> List.sort compare

let problems t =
  let ub =
    List.map
      (fun (dom, name, b, e) ->
        Printf.sprintf "unbalanced span %S on domain %d: %d begin(s), %d end(s)"
          name dom b e)
      (unbalanced t)
  in
  let zs = fold_reqs t (fun _ r n -> if zero_span r then n + 1 else n) 0 in
  let zs =
    if zs > 0 then
      [ Printf.sprintf "%d admitted request(s) produced no serve.request span" zs ]
    else []
  in
  let cov = coverage t in
  let cv =
    if Hashtbl.length t.reqs > 0 && cov < 0.99 then
      [
        Printf.sprintf
          "request coverage %.1f%% < 99%%: %d of %d request ids reconstructed"
          (100.0 *. cov)
          (fold_reqs t (fun _ r n -> if complete r then n + 1 else n) 0)
          (Hashtbl.length t.reqs);
      ]
    else []
  in
  let am =
    if alloc_instrumented t then
      List.map
        (fun (name, seen, count) ->
          Printf.sprintf
            "span %S: only %d of %d span_end event(s) carry alloc_words" name
            seen count)
        (alloc_missing t)
    else []
  in
  ub @ zs @ cv @ am

(* {2 Summaries} *)

let ms_of_ns ns = float_of_int ns /. 1e6

(* Exact order statistics over the collected values — this is offline
   analysis, not the live estimator. *)
let summary_ms values_ns =
  let a = Array.of_list values_ns in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then Json.Null
  else
    let q p = ms_of_ns a.(min (n - 1) (int_of_float (p *. float_of_int n))) in
    let total = Array.fold_left (fun s v -> s +. float_of_int v) 0.0 a in
    Json.Obj
      [
        ("mean", Json.Float (ms_of_ns (int_of_float (total /. float_of_int n))));
        ("p50", Json.Float (q 0.50));
        ("p95", Json.Float (q 0.95));
        ("p99", Json.Float (q 0.99));
        ("max", Json.Float (ms_of_ns a.(n - 1)));
      ]

let answered_reqs t =
  fold_reqs t (fun id r acc -> if answered r then (id, r) :: acc else acc) []

let by_op t =
  let tbl = Hashtbl.create 16 in
  fold_reqs t
    (fun _ r () ->
      if complete r then begin
        let waits, svcs, count, rejected =
          match Hashtbl.find_opt tbl r.r_op with
          | Some x -> x
          | None -> ([], [], 0, 0)
        in
        let entry =
          match (r.queue_wait_ns, r.service_ns) with
          | Some w, Some s -> (w :: waits, s :: svcs, count + 1, rejected)
          | _ -> (waits, svcs, count + 1, rejected + 1)
        in
        Hashtbl.replace tbl r.r_op entry
      end)
    ();
  Hashtbl.fold (fun op x acc -> (op, x) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let slowest t ~top_k =
  answered_reqs t
  |> List.sort (fun (_, a) (_, b) ->
         compare
           (Option.value ~default:0 b.service_ns
           + Option.value ~default:0 b.queue_wait_ns)
           (Option.value ~default:0 a.service_ns
           + Option.value ~default:0 a.queue_wait_ns))
  |> List.filteri (fun i _ -> i < top_k)

let waterfall_json r =
  Json.List
    (List.rev_map
       (fun (name, off, dur) ->
         Json.Obj
           [
             ("span", Json.Str name);
             ("offset_ms", Json.Float (ms_of_ns off));
             ("dur_ms", Json.Float (ms_of_ns dur));
           ])
       r.r_spans)

let to_json ?(top_k = 10) t =
  let seen = Hashtbl.length t.reqs in
  let n_complete = fold_reqs t (fun _ r n -> if complete r then n + 1 else n) 0 in
  let n_rejected =
    fold_reqs t (fun _ r n -> if r.rejected <> None then n + 1 else n) 0
  in
  let n_zero = fold_reqs t (fun _ r n -> if zero_span r then n + 1 else n) 0 in
  let answered = answered_reqs t in
  let waits = List.filter_map (fun (_, r) -> r.queue_wait_ns) answered in
  let svcs = List.filter_map (fun (_, r) -> r.service_ns) answered in
  let sum l = List.fold_left (fun a v -> a +. float_of_int v) 0.0 l in
  let share =
    let w = sum waits and s = sum svcs in
    if w +. s > 0.0 then Json.Float (w /. (w +. s)) else Json.Null
  in
  let span_rows =
    Hashtbl.fold (fun name a acc -> (name, a) :: acc) t.spans []
    |> List.sort (fun (_, a) (_, b) -> compare b.s_total_ns a.s_total_ns)
    |> List.map (fun (name, a) ->
           Json.Obj
             [
               ("name", Json.Str name);
               ("count", Json.Int a.s_count);
               ("total_ms", Json.Float (a.s_total_ns /. 1e6));
               ("max_ms", Json.Float (ms_of_ns a.s_max_ns));
               ("alloc_words", Json.Float a.s_alloc_words);
               ("summary_ms", summary_ms a.durs);
             ])
  in
  let alloc_rows =
    List.map
      (fun (name, a) ->
        Json.Obj
          [
            ("name", Json.Str name);
            ("words", Json.Float a.s_alloc_words);
            ( "words_per_call",
              Json.Float (a.s_alloc_words /. float_of_int (max 1 a.s_count)) );
          ])
      (top_allocators t ~top_k)
  in
  let balance_rows =
    List.map
      (fun (dom, name, b, e) ->
        Json.Obj
          [
            ("dom", Json.Int dom);
            ("name", Json.Str name);
            ("begins", Json.Int b);
            ("ends", Json.Int e);
          ])
      (unbalanced t)
  in
  let op_rows =
    List.map
      (fun (op, (waits, svcs, count, rejected)) ->
        ( op,
          Json.Obj
            [
              ("count", Json.Int count);
              ("rejected", Json.Int rejected);
              ("queue_wait_ms", summary_ms waits);
              ("service_ms", summary_ms svcs);
            ] ))
      (by_op t)
  in
  let slow_rows =
    List.map
      (fun (id, r) ->
        Json.Obj
          [
            ("req_id", Json.Int id);
            ("op", Json.Str r.r_op);
            ("conn", Json.Int r.r_conn);
            ( "queue_wait_ms",
              Json.Float (ms_of_ns (Option.value ~default:0 r.queue_wait_ns)) );
            ( "service_ms",
              Json.Float (ms_of_ns (Option.value ~default:0 r.service_ns)) );
            ("cache_hits", Json.Int r.lookups_hit);
            ("cache_misses", Json.Int r.lookups_miss);
            ("waterfall", waterfall_json r);
          ])
      (slowest t ~top_k)
  in
  Json.Obj
    [
      ("schema", Json.Str "gossip-trace-report/1");
      ("version", Json.Str Core.Version.string);
      ( "lines",
        Json.Obj
          [
            ("total", Json.Int t.lines);
            ("events", Json.Int t.events);
            ("parse_errors", Json.Int t.parse_errors);
          ] );
      ("spans", Json.List span_rows);
      ( "alloc",
        Json.Obj
          [
            ("instrumented", Json.Bool (alloc_instrumented t));
            ("total_words", Json.Float (alloc_total_words t));
            ("top", Json.List alloc_rows);
          ] );
      ( "span_balance",
        Json.Obj
          [
            ("balanced", Json.Bool (balance_rows = []));
            ("unbalanced", Json.List balance_rows);
          ] );
      ( "requests",
        Json.Obj
          [
            ("seen", Json.Int seen);
            ("complete", Json.Int n_complete);
            ("rejected", Json.Int n_rejected);
            ("zero_span", Json.Int n_zero);
            ("coverage", Json.Float (coverage t));
            ("queue_wait_ms", summary_ms waits);
            ("service_ms", summary_ms svcs);
            ("queue_wait_share", share);
          ] );
      ("by_op", Json.Obj op_rows);
      ("slowest", Json.List slow_rows);
      ("problems", Json.List (List.map (fun p -> Json.Str p) (problems t)));
    ]

let pp ?(top_k = 10) ppf t =
  let fp fmt = Format.fprintf ppf fmt in
  fp "trace: %d lines, %d events, %d parse error(s)@." t.lines t.events
    t.parse_errors;
  let seen = Hashtbl.length t.reqs in
  let n_complete = fold_reqs t (fun _ r n -> if complete r then n + 1 else n) 0 in
  let n_rejected =
    fold_reqs t (fun _ r n -> if r.rejected <> None then n + 1 else n) 0
  in
  fp "requests: %d seen, %d complete (%d rejected), coverage %.1f%%@." seen
    n_complete n_rejected
    (100.0 *. coverage t);
  let answered = answered_reqs t in
  let waits = List.filter_map (fun (_, r) -> r.queue_wait_ns) answered in
  let svcs = List.filter_map (fun (_, r) -> r.service_ns) answered in
  let sum l = List.fold_left (fun a v -> a +. float_of_int v) 0.0 l in
  let w = sum waits and s = sum svcs in
  if w +. s > 0.0 then
    fp "latency split: %.1f%% queue wait, %.1f%% service@."
      (100.0 *. w /. (w +. s))
      (100.0 *. s /. (w +. s));
  fp "@.per-op:@.";
  List.iter
    (fun (op, (waits, svcs, count, rejected)) ->
      let mean l =
        match l with
        | [] -> 0.0
        | l -> sum l /. float_of_int (List.length l) /. 1e6
      in
      fp "  %-10s %6d req  %4d rejected  wait %8.3f ms  service %8.3f ms@." op
        count rejected (mean waits) (mean svcs))
    (by_op t);
  if alloc_instrumented t then begin
    fp "@.allocation: %.3g words total; top allocating spans:@."
      (alloc_total_words t);
    List.iter
      (fun (name, a) ->
        fp "  %-36s %12.3g words  (%.3g/call over %d calls)@." name
          a.s_alloc_words
          (a.s_alloc_words /. float_of_int (max 1 a.s_count))
          a.s_count)
      (top_allocators t ~top_k)
  end;
  fp "@.slowest %d:@." top_k;
  List.iter
    (fun (id, r) ->
      fp "  #%-6d %-10s wait %8.3f ms  service %8.3f ms  (%d hit / %d miss)@."
        id r.r_op
        (ms_of_ns (Option.value ~default:0 r.queue_wait_ns))
        (ms_of_ns (Option.value ~default:0 r.service_ns))
        r.lookups_hit r.lookups_miss)
    (slowest t ~top_k);
  match problems t with
  | [] -> fp "@.no problems detected@."
  | ps ->
      fp "@.problems:@.";
      List.iter (fun p -> fp "  - %s@." p) ps
