module Json = Gossip_util.Json

(* Everything we know about one request id after the scan.  [admitted]
   and [rejected] come from the serve.admit / serve.reject point events;
   the queue-wait/service split comes from the serve.request span_end,
   whose attributes carry queue_wait_ns and dur_ns.  [spans] collects
   every OTHER span_end tagged with this req_id (via ambient
   attributes): the request's waterfall, in trace order.  Requests are
   keyed by (node, req_id): req ids are per-process counters, so a
   merged fleet trace needs the node to keep them apart. *)
type req = {
  mutable r_op : string;
  mutable r_conn : string;
  mutable admitted : bool;
  mutable rejected : string option;  (* rejection code *)
  mutable queue_wait_ns : int option;
  mutable service_ns : int option;
  mutable start_mono : int option;  (* serve.request span start, mono ns *)
  mutable r_spans : (string * int * int) list;  (* name, offset_ns, dur_ns *)
  mutable lookups_hit : int;
  mutable lookups_miss : int;
}

(* Per-(domain, span-name) begin/end balance; an imbalance means the
   trace lost events or a span never closed.  The node joins the key so
   merged fleet traces do not cross-cancel between processes. *)
type balance = { mutable begins : int; mutable ends : int }

type span_agg = {
  mutable s_count : int;
  mutable s_total_ns : float;
  mutable s_max_ns : int;
  mutable durs : int list;  (* all durations, ns; for exact quantiles *)
  mutable s_alloc_words : float;  (* summed span_end alloc_words *)
  mutable s_alloc_seen : int;  (* span_end events that carried the field *)
}

(* One completed span that belongs to a distributed trace: the stitch
   works entirely off these.  [ts_span_id] is carried only by the spans
   that mint one (serve.request, router.forward); [ts_parent] by every
   span emitted under an ambient parent and by re-parented hops.  Times
   are the emitting node's own monotonic clock — comparable across
   nodes only after alignment. *)
type tspan = {
  ts_trace : string;
  ts_span_id : string option;
  ts_parent : string option;
  ts_node : string;
  ts_name : string;
  ts_begin : int;  (* local monotonic ns *)
  ts_dur : int;
  ts_wall : float;  (* wall-clock seconds; coarse cross-node fallback *)
}

type t = {
  mutable lines : int;
  mutable events : int;
  mutable parse_errors : int;
  reqs : (string * string, req) Hashtbl.t;  (* (node, req_id) *)
  spans : (string, span_agg) Hashtbl.t;
  bal : (string * int * string, balance) Hashtbl.t;  (* (node, dom, name) *)
  mutable tspans : tspan list;  (* newest first *)
  by_span_id : (string, tspan) Hashtbl.t;
}

let create () =
  {
    lines = 0;
    events = 0;
    parse_errors = 0;
    reqs = Hashtbl.create 256;
    spans = Hashtbl.create 64;
    bal = Hashtbl.create 64;
    tspans = [];
    by_span_id = Hashtbl.create 256;
  }

let int_field j k = Option.bind (Json.member k j) Json.to_int_opt
let str_field j k = Option.bind (Json.member k j) Json.to_string_opt
let float_field j k = Option.bind (Json.member k j) Json.to_float_opt

(* Request/connection ids became node-prefixed strings ("s1-r42") when
   fleets learned to merge traces; older recordings carry bare ints.
   Read either so old traces keep analysing. *)
let id_field j k =
  match Json.member k j with
  | Some (Json.Str s) -> Some s
  | Some (Json.Int i) -> Some (string_of_int i)
  | _ -> None

let req_for t id =
  match Hashtbl.find_opt t.reqs id with
  | Some r -> r
  | None ->
      let r =
        {
          r_op = "?";
          r_conn = "?";
          admitted = false;
          rejected = None;
          queue_wait_ns = None;
          service_ns = None;
          start_mono = None;
          r_spans = [];
          lookups_hit = 0;
          lookups_miss = 0;
        }
      in
      Hashtbl.add t.reqs id r;
      r

let agg_for t name =
  match Hashtbl.find_opt t.spans name with
  | Some a -> a
  | None ->
      let a =
        {
          s_count = 0;
          s_total_ns = 0.0;
          s_max_ns = 0;
          durs = [];
          s_alloc_words = 0.0;
          s_alloc_seen = 0;
        }
      in
      Hashtbl.add t.spans name a;
      a

let bal_for t key =
  match Hashtbl.find_opt t.bal key with
  | Some b -> b
  | None ->
      let b = { begins = 0; ends = 0 } in
      Hashtbl.add t.bal key b;
      b

let note_identity r j =
  (match str_field j "op" with Some op -> r.r_op <- op | None -> ());
  match id_field j "conn" with Some c -> r.r_conn <- c | None -> ()

let ingest_json t j =
  t.events <- t.events + 1;
  let ev = Option.value ~default:"" (str_field j "ev") in
  let name = Option.value ~default:"" (str_field j "name") in
  let dom = Option.value ~default:0 (int_field j "dom") in
  let node = Option.value ~default:"" (str_field j "node") in
  let req_id = id_field j "req_id" in
  (match ev with
  | "span_begin" ->
      let b = bal_for t (node, dom, name) in
      b.begins <- b.begins + 1
  | "span_end" ->
      let b = bal_for t (node, dom, name) in
      b.ends <- b.ends + 1;
      let dur = Option.value ~default:0 (int_field j "dur_ns") in
      let a = agg_for t name in
      a.s_count <- a.s_count + 1;
      a.s_total_ns <- a.s_total_ns +. float_of_int dur;
      if dur > a.s_max_ns then a.s_max_ns <- dur;
      a.durs <- dur :: a.durs;
      (match int_field j "alloc_words" with
      | Some w ->
          a.s_alloc_words <- a.s_alloc_words +. float_of_int w;
          a.s_alloc_seen <- a.s_alloc_seen + 1
      | None -> ());
      (* Distributed stitch: any closed span carrying a trace id joins
         the cross-node graph.  begin = end - dur keeps the one-pass
         scan (span_end is the only event we need). *)
      (match str_field j "trace_id" with
      | Some trace_id when trace_id <> "" ->
          let mono = Option.value ~default:dur (int_field j "mono_ns") in
          let ts =
            {
              ts_trace = trace_id;
              ts_span_id = str_field j "span_id";
              ts_parent = str_field j "parent_span_id";
              ts_node = node;
              ts_name = name;
              ts_begin = mono - dur;
              ts_dur = dur;
              ts_wall = Option.value ~default:0.0 (float_field j "ts");
            }
          in
          t.tspans <- ts :: t.tspans;
          (match ts.ts_span_id with
          | Some sid when sid <> "" ->
              if not (Hashtbl.mem t.by_span_id sid) then
                Hashtbl.add t.by_span_id sid ts
          | _ -> ())
      | _ -> ())
  | _ -> ());
  match req_id with
  | None -> ()
  | Some id -> (
      let r = req_for t (node, id) in
      note_identity r j;
      match (ev, name) with
      | "point", "serve.admit" -> r.admitted <- true
      | "span_begin", "serve.request" -> (
          (* precedes every child span in the stream, so waterfall
             offsets resolve on first pass *)
          match int_field j "mono_ns" with
          | Some m -> r.start_mono <- Some m
          | None -> ())
      | "point", "serve.reject" ->
          r.rejected <- Some (Option.value ~default:"?" (str_field j "code"))
      | "point", "context.lookup" -> (
          match str_field j "outcome" with
          | Some "hit" -> r.lookups_hit <- r.lookups_hit + 1
          | Some "miss" -> r.lookups_miss <- r.lookups_miss + 1
          | _ -> ())
      | "span_end", "serve.request" ->
          let dur = Option.value ~default:0 (int_field j "dur_ns") in
          r.service_ns <- Some dur;
          r.queue_wait_ns <- int_field j "queue_wait_ns";
          (match int_field j "mono_ns" with
          | Some m -> r.start_mono <- Some (m - dur)
          | None -> ())
      | "span_end", _ ->
          let dur = Option.value ~default:0 (int_field j "dur_ns") in
          let off =
            match (int_field j "mono_ns", r.start_mono) with
            | Some m, Some s -> m - dur - s
            | _ -> 0
          in
          r.r_spans <- (name, off, dur) :: r.r_spans
      | _ -> ())

let ingest_line t line =
  if String.trim line <> "" then begin
    t.lines <- t.lines + 1;
    match Json.of_string line with
    | Ok j -> ingest_json t j
    | Error _ -> t.parse_errors <- t.parse_errors + 1
  end

let ingest_channel t ic =
  try
    while true do
      ingest_line t (input_line ic)
    done
  with End_of_file -> ()

let of_lines lines =
  let t = create () in
  List.iter (ingest_line t) lines;
  t

let of_channel ic =
  let t = create () in
  ingest_channel t ic;
  t

let of_files paths =
  let t = create () in
  List.iter
    (fun path ->
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          ingest_channel t ic))
    paths;
  t

(* {2 Derived views} *)

let fold_reqs t f init = Hashtbl.fold (fun id r acc -> f id r acc) t.reqs init

let answered r = r.service_ns <> None && r.queue_wait_ns <> None
let complete r = answered r || r.rejected <> None
let zero_span r = r.admitted && r.service_ns = None && r.rejected = None

let coverage t =
  let seen = Hashtbl.length t.reqs in
  if seen = 0 then 1.0
  else
    let ok = fold_reqs t (fun _ r n -> if complete r then n + 1 else n) 0 in
    float_of_int ok /. float_of_int seen

(* Allocation accounting: traces recorded since span_end grew the
   alloc_words field carry it on every span_end; [alloc_instrumented]
   distinguishes those from older traces (where its absence is not a
   defect), and [alloc_missing] finds spans that only partially carry it
   — which means the trace mixes recordings from different builds. *)
let alloc_instrumented t =
  Hashtbl.fold (fun _ a acc -> acc || a.s_alloc_seen > 0) t.spans false

let alloc_total_words t =
  Hashtbl.fold (fun _ a acc -> acc +. a.s_alloc_words) t.spans 0.0

let alloc_missing t =
  Hashtbl.fold
    (fun name a acc ->
      if a.s_alloc_seen < a.s_count then (name, a.s_alloc_seen, a.s_count) :: acc
      else acc)
    t.spans []
  |> List.sort compare

let top_allocators t ~top_k =
  Hashtbl.fold (fun name a acc -> (name, a) :: acc) t.spans []
  |> List.filter (fun (_, a) -> a.s_alloc_words > 0.0)
  |> List.sort (fun (_, a) (_, b) -> compare b.s_alloc_words a.s_alloc_words)
  |> List.filteri (fun i _ -> i < top_k)

let unbalanced t =
  Hashtbl.fold
    (fun (node, dom, name) b acc ->
      if b.begins <> b.ends then (node, dom, name, b.begins, b.ends) :: acc
      else acc)
    t.bal []
  |> List.sort compare

(* {2 Distributed stitch}

   A fleet trace is a set of per-node JSONL files merged into one [t].
   Spans link up purely by ids: every span under a sampled request
   carries its trace_id, spans that mint a span_id (serve.request,
   router.forward) register it, and every child names its parent.  The
   stitch is the transitive walk over those links — no clock agreement
   between nodes is assumed or required for linkage, only for layout. *)

let parent_resolved t ts =
  match ts.ts_parent with
  | None -> false
  | Some p -> Hashtbl.mem t.by_span_id p

type link_stats = {
  l_spans : int;  (* spans that joined the trace graph *)
  l_traces : int;  (* distinct trace ids *)
  l_with_parent : int;
  l_linked : int;  (* parent references that resolved *)
  l_orphans : int;
  l_orphan_hops : int;  (* router.forward spans with unresolved parent *)
}

let link_stats t =
  let traces = Hashtbl.create 64 in
  let spans = ref 0 and with_parent = ref 0 in
  let linked = ref 0 and orphan_hops = ref 0 in
  List.iter
    (fun ts ->
      incr spans;
      Hashtbl.replace traces ts.ts_trace ();
      match ts.ts_parent with
      | None -> ()
      | Some p ->
          incr with_parent;
          if Hashtbl.mem t.by_span_id p then incr linked
          else if ts.ts_name = "router.forward" then incr orphan_hops)
    t.tspans;
  {
    l_spans = !spans;
    l_traces = Hashtbl.length traces;
    l_with_parent = !with_parent;
    l_linked = !linked;
    l_orphans = !with_parent - !linked;
    l_orphan_hops = !orphan_hops;
  }

let linkage_coverage t =
  let s = link_stats t in
  if s.l_with_parent = 0 then 1.0
  else float_of_int s.l_linked /. float_of_int s.l_with_parent

(* Cross-node clock alignment.  When a child span ran on a different
   node than its parent, the parent's interval [T0,T1] (parent-node
   monotonic clock) brackets the child's [t0,t1] (child-node clock):
   the work could not start before it was requested nor finish after
   the reply was observed.  The midpoint delta = ((T0-t0)+(T1-t1))/2
   maps child-clock readings onto the parent's clock with error at
   most half the non-overlapped (wire + queue) time; averaging over
   every remote pair per ordered node pair tightens it further. *)
let clock_offsets t =
  let acc = Hashtbl.create 8 in
  List.iter
    (fun ts ->
      match Option.bind ts.ts_parent (Hashtbl.find_opt t.by_span_id) with
      | Some p when p.ts_node <> ts.ts_node ->
          let d0 = p.ts_begin - ts.ts_begin
          and d1 = p.ts_begin + p.ts_dur - (ts.ts_begin + ts.ts_dur) in
          let d = (float_of_int d0 +. float_of_int d1) /. 2.0 in
          let key = (p.ts_node, ts.ts_node) in
          let sum, n =
            Option.value ~default:(0.0, 0) (Hashtbl.find_opt acc key)
          in
          Hashtbl.replace acc key (sum +. d, n + 1)
      | _ -> ())
    t.tspans;
  Hashtbl.fold
    (fun (pn, cn) (sum, n) l -> (pn, cn, sum /. float_of_int n, n) :: l)
    acc []
  |> List.sort compare

(* Absolute offsets onto [root_node]'s clock, chasing measured
   parent<->child edges in either direction until no node is added
   (a fleet is a star around the router, so this converges fast). *)
let node_offsets offsets ~root_node =
  let m = Hashtbl.create 8 in
  Hashtbl.replace m root_node 0.0;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (pn, cn, d, _) ->
        match (Hashtbl.find_opt m pn, Hashtbl.find_opt m cn) with
        | Some po, None ->
            (* child_local + d = parent_local *)
            Hashtbl.replace m cn (po +. d);
            changed := true
        | None, Some co ->
            Hashtbl.replace m pn (co -. d);
            changed := true
        | _ -> ())
      offsets
  done;
  m

let traces_by_id t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun ts ->
      let l = Option.value ~default:[] (Hashtbl.find_opt tbl ts.ts_trace) in
      Hashtbl.replace tbl ts.ts_trace (ts :: l))
    t.tspans;
  tbl

(* The root is the outermost span we saw: parent missing or never
   resolved, longest duration among those.  (The true client span if
   the client traced, else the router's serve.request.) *)
let trace_root t spans =
  let cand = List.filter (fun ts -> not (parent_resolved t ts)) spans in
  let cand = if cand = [] then spans else cand in
  List.fold_left
    (fun best ts -> if ts.ts_dur > best.ts_dur then ts else best)
    (List.hd cand) (List.tl cand)

(* Per-hop overhead: a router.forward span minus the downstream
   serve.request it caused — wire round-trip plus the shard's queue
   wait.  Retries re-use the hop's span id, so we take the longest
   downstream attempt. *)
let hop_overheads t =
  let children = Hashtbl.create 64 in
  List.iter
    (fun ts ->
      if ts.ts_name = "serve.request" then
        match ts.ts_parent with
        | Some p ->
            let cur =
              Option.value ~default:(-1) (Hashtbl.find_opt children p)
            in
            if ts.ts_dur > cur then Hashtbl.replace children p ts.ts_dur
        | None -> ())
    t.tspans;
  List.filter_map
    (fun ts ->
      if ts.ts_name <> "router.forward" then None
      else
        match ts.ts_span_id with
        | Some sid ->
            Option.map
              (fun d -> max 0 (ts.ts_dur - d))
              (Hashtbl.find_opt children sid)
        | None -> None)
    t.tspans

let problems t =
  let ub =
    List.map
      (fun (node, dom, name, b, e) ->
        Printf.sprintf
          "unbalanced span %S on %s domain %d: %d begin(s), %d end(s)" name
          (if node = "" then "(unnamed node)" else node)
          dom b e)
      (unbalanced t)
  in
  let zs = fold_reqs t (fun _ r n -> if zero_span r then n + 1 else n) 0 in
  let zs =
    if zs > 0 then
      [ Printf.sprintf "%d admitted request(s) produced no serve.request span" zs ]
    else []
  in
  let cov = coverage t in
  let cv =
    if Hashtbl.length t.reqs > 0 && cov < 0.99 then
      [
        Printf.sprintf
          "request coverage %.1f%% < 99%%: %d of %d request ids reconstructed"
          (100.0 *. cov)
          (fold_reqs t (fun _ r n -> if complete r then n + 1 else n) 0)
          (Hashtbl.length t.reqs);
      ]
    else []
  in
  let am =
    if alloc_instrumented t then
      List.map
        (fun (name, seen, count) ->
          Printf.sprintf
            "span %S: only %d of %d span_end event(s) carry alloc_words" name
            seen count)
        (alloc_missing t)
    else []
  in
  (* Stitch gates only arm once spans actually carry parent links —
     single-node traces with no distributed context stay clean. *)
  let st =
    let s = link_stats t in
    if s.l_with_parent = 0 then []
    else
      let cov = float_of_int s.l_linked /. float_of_int s.l_with_parent in
      let lk =
        if cov < 0.95 then
          [
            Printf.sprintf
              "trace linkage %.1f%% < 95%%: only %d of %d parent span \
               references resolve"
              (100.0 *. cov) s.l_linked s.l_with_parent;
          ]
        else []
      in
      let oh =
        if s.l_orphan_hops > 0 then
          [
            Printf.sprintf
              "%d orphan router.forward hop span(s): parent span never \
               recorded"
              s.l_orphan_hops;
          ]
        else []
      in
      lk @ oh
  in
  ub @ zs @ cv @ am @ st

(* {2 Summaries} *)

let ms_of_ns ns = float_of_int ns /. 1e6

(* Exact order statistics over the collected values — this is offline
   analysis, not the live estimator. *)
let summary_ms values_ns =
  let a = Array.of_list values_ns in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then Json.Null
  else
    let q p = ms_of_ns a.(min (n - 1) (int_of_float (p *. float_of_int n))) in
    let total = Array.fold_left (fun s v -> s +. float_of_int v) 0.0 a in
    Json.Obj
      [
        ("mean", Json.Float (ms_of_ns (int_of_float (total /. float_of_int n))));
        ("p50", Json.Float (q 0.50));
        ("p95", Json.Float (q 0.95));
        ("p99", Json.Float (q 0.99));
        ("max", Json.Float (ms_of_ns a.(n - 1)));
      ]

let answered_reqs t =
  fold_reqs t (fun id r acc -> if answered r then (id, r) :: acc else acc) []

let by_op t =
  let tbl = Hashtbl.create 16 in
  fold_reqs t
    (fun _ r () ->
      if complete r then begin
        let waits, svcs, count, rejected =
          match Hashtbl.find_opt tbl r.r_op with
          | Some x -> x
          | None -> ([], [], 0, 0)
        in
        let entry =
          match (r.queue_wait_ns, r.service_ns) with
          | Some w, Some s -> (w :: waits, s :: svcs, count + 1, rejected)
          | _ -> (waits, svcs, count + 1, rejected + 1)
        in
        Hashtbl.replace tbl r.r_op entry
      end)
    ();
  Hashtbl.fold (fun op x acc -> (op, x) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let slowest t ~top_k =
  answered_reqs t
  |> List.sort (fun (_, a) (_, b) ->
         compare
           (Option.value ~default:0 b.service_ns
           + Option.value ~default:0 b.queue_wait_ns)
           (Option.value ~default:0 a.service_ns
           + Option.value ~default:0 a.queue_wait_ns))
  |> List.filteri (fun i _ -> i < top_k)

let waterfall_json r =
  Json.List
    (List.rev_map
       (fun (name, off, dur) ->
         Json.Obj
           [
             ("span", Json.Str name);
             ("offset_ms", Json.Float (ms_of_ns off));
             ("dur_ms", Json.Float (ms_of_ns dur));
           ])
       r.r_spans)

(* One stitched end-to-end trace: every span across every node, laid
   out on the root node's clock.  Nodes reachable through a measured
   hop use the monotonic alignment; anything else falls back to wall
   clocks and says so ("clock": "wall"). *)
let stitched_trace_json t offsets tr_id spans =
  let root = trace_root t spans in
  let om = node_offsets offsets ~root_node:root.ts_node in
  let base = float_of_int root.ts_begin in
  let rows =
    List.map
      (fun ts ->
        let off, aligned =
          match Hashtbl.find_opt om ts.ts_node with
          | Some o -> (float_of_int ts.ts_begin +. o -. base, true)
          | None ->
              ( ((ts.ts_wall -. root.ts_wall) *. 1e9)
                +. float_of_int root.ts_dur
                -. float_of_int ts.ts_dur,
                false )
        in
        ( off,
          Json.Obj
            ([
               ("node", Json.Str ts.ts_node);
               ("span", Json.Str ts.ts_name);
               ("offset_ms", Json.Float (off /. 1e6));
               ("dur_ms", Json.Float (ms_of_ns ts.ts_dur));
             ]
            @ (match ts.ts_span_id with
              | Some s -> [ ("span_id", Json.Str s) ]
              | None -> [])
            @ (match ts.ts_parent with
              | Some s -> [ ("parent_span_id", Json.Str s) ]
              | None -> [])
            @ if aligned then [] else [ ("clock", Json.Str "wall") ]) ))
      spans
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  Json.Obj
    [
      ("trace_id", Json.Str tr_id);
      ("root_node", Json.Str root.ts_node);
      ("root_span", Json.Str root.ts_name);
      ("total_ms", Json.Float (ms_of_ns root.ts_dur));
      ("spans", Json.Int (List.length rows));
      ("waterfall", Json.List rows);
    ]

let slowest_traces t ~top_k =
  let offsets = clock_offsets t in
  Hashtbl.fold
    (fun id spans acc -> (id, spans, (trace_root t spans).ts_dur) :: acc)
    (traces_by_id t) []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
  |> List.filteri (fun i _ -> i < top_k)
  |> List.map (fun (id, spans, _) -> stitched_trace_json t offsets id spans)

let tracing_json t ~top_k =
  let s = link_stats t in
  let offset_rows =
    List.map
      (fun (pn, cn, d, n) ->
        Json.Obj
          [
            ("parent_node", Json.Str pn);
            ("child_node", Json.Str cn);
            ("offset_ms", Json.Float (d /. 1e6));
            ("pairs", Json.Int n);
          ])
      (clock_offsets t)
  in
  let hops = hop_overheads t in
  Json.Obj
    [
      ("spans", Json.Int s.l_spans);
      ("traces", Json.Int s.l_traces);
      ("with_parent", Json.Int s.l_with_parent);
      ("linked", Json.Int s.l_linked);
      ("linkage", Json.Float (linkage_coverage t));
      ("orphans", Json.Int s.l_orphans);
      ("orphan_router_hops", Json.Int s.l_orphan_hops);
      ("clock_offsets", Json.List offset_rows);
      ( "hops",
        Json.Obj
          [
            ("count", Json.Int (List.length hops));
            ("overhead_ms", summary_ms hops);
          ] );
      ("slowest", Json.List (slowest_traces t ~top_k));
    ]

let to_json ?(top_k = 10) t =
  let seen = Hashtbl.length t.reqs in
  let n_complete = fold_reqs t (fun _ r n -> if complete r then n + 1 else n) 0 in
  let n_rejected =
    fold_reqs t (fun _ r n -> if r.rejected <> None then n + 1 else n) 0
  in
  let n_zero = fold_reqs t (fun _ r n -> if zero_span r then n + 1 else n) 0 in
  let answered = answered_reqs t in
  let waits = List.filter_map (fun (_, r) -> r.queue_wait_ns) answered in
  let svcs = List.filter_map (fun (_, r) -> r.service_ns) answered in
  let sum l = List.fold_left (fun a v -> a +. float_of_int v) 0.0 l in
  let share =
    let w = sum waits and s = sum svcs in
    if w +. s > 0.0 then Json.Float (w /. (w +. s)) else Json.Null
  in
  let span_rows =
    Hashtbl.fold (fun name a acc -> (name, a) :: acc) t.spans []
    |> List.sort (fun (_, a) (_, b) -> compare b.s_total_ns a.s_total_ns)
    |> List.map (fun (name, a) ->
           Json.Obj
             [
               ("name", Json.Str name);
               ("count", Json.Int a.s_count);
               ("total_ms", Json.Float (a.s_total_ns /. 1e6));
               ("max_ms", Json.Float (ms_of_ns a.s_max_ns));
               ("alloc_words", Json.Float a.s_alloc_words);
               ("summary_ms", summary_ms a.durs);
             ])
  in
  let alloc_rows =
    List.map
      (fun (name, a) ->
        Json.Obj
          [
            ("name", Json.Str name);
            ("words", Json.Float a.s_alloc_words);
            ( "words_per_call",
              Json.Float (a.s_alloc_words /. float_of_int (max 1 a.s_count)) );
          ])
      (top_allocators t ~top_k)
  in
  let balance_rows =
    List.map
      (fun (node, dom, name, b, e) ->
        Json.Obj
          [
            ("node", Json.Str node);
            ("dom", Json.Int dom);
            ("name", Json.Str name);
            ("begins", Json.Int b);
            ("ends", Json.Int e);
          ])
      (unbalanced t)
  in
  let op_rows =
    List.map
      (fun (op, (waits, svcs, count, rejected)) ->
        ( op,
          Json.Obj
            [
              ("count", Json.Int count);
              ("rejected", Json.Int rejected);
              ("queue_wait_ms", summary_ms waits);
              ("service_ms", summary_ms svcs);
            ] ))
      (by_op t)
  in
  let slow_rows =
    List.map
      (fun ((node, id), r) ->
        Json.Obj
          [
            ("node", Json.Str node);
            ("req_id", Json.Str id);
            ("op", Json.Str r.r_op);
            ("conn", Json.Str r.r_conn);
            ( "queue_wait_ms",
              Json.Float (ms_of_ns (Option.value ~default:0 r.queue_wait_ns)) );
            ( "service_ms",
              Json.Float (ms_of_ns (Option.value ~default:0 r.service_ns)) );
            ("cache_hits", Json.Int r.lookups_hit);
            ("cache_misses", Json.Int r.lookups_miss);
            ("waterfall", waterfall_json r);
          ])
      (slowest t ~top_k)
  in
  Json.Obj
    [
      ("schema", Json.Str "gossip-trace-report/2");
      ("version", Json.Str Core.Version.string);
      ( "lines",
        Json.Obj
          [
            ("total", Json.Int t.lines);
            ("events", Json.Int t.events);
            ("parse_errors", Json.Int t.parse_errors);
          ] );
      ("spans", Json.List span_rows);
      ( "alloc",
        Json.Obj
          [
            ("instrumented", Json.Bool (alloc_instrumented t));
            ("total_words", Json.Float (alloc_total_words t));
            ("top", Json.List alloc_rows);
          ] );
      ( "span_balance",
        Json.Obj
          [
            ("balanced", Json.Bool (balance_rows = []));
            ("unbalanced", Json.List balance_rows);
          ] );
      ( "requests",
        Json.Obj
          [
            ("seen", Json.Int seen);
            ("complete", Json.Int n_complete);
            ("rejected", Json.Int n_rejected);
            ("zero_span", Json.Int n_zero);
            ("coverage", Json.Float (coverage t));
            ("queue_wait_ms", summary_ms waits);
            ("service_ms", summary_ms svcs);
            ("queue_wait_share", share);
          ] );
      ("by_op", Json.Obj op_rows);
      ("slowest", Json.List slow_rows);
      ("tracing", tracing_json t ~top_k);
      ("problems", Json.List (List.map (fun p -> Json.Str p) (problems t)));
    ]

let pp ?(top_k = 10) ppf t =
  let fp fmt = Format.fprintf ppf fmt in
  fp "trace: %d lines, %d events, %d parse error(s)@." t.lines t.events
    t.parse_errors;
  let seen = Hashtbl.length t.reqs in
  let n_complete = fold_reqs t (fun _ r n -> if complete r then n + 1 else n) 0 in
  let n_rejected =
    fold_reqs t (fun _ r n -> if r.rejected <> None then n + 1 else n) 0
  in
  fp "requests: %d seen, %d complete (%d rejected), coverage %.1f%%@." seen
    n_complete n_rejected
    (100.0 *. coverage t);
  let st = link_stats t in
  if st.l_spans > 0 then begin
    fp
      "tracing: %d trace(s) across %d span(s); linkage %.1f%% (%d orphan(s), \
       %d orphan router hop(s))@."
      st.l_traces st.l_spans
      (100.0 *. linkage_coverage t)
      st.l_orphans st.l_orphan_hops;
    List.iter
      (fun (pn, cn, d, n) ->
        fp "  clock %s -> %s: offset %+.3f ms (over %d hop pair(s))@." pn cn
          (d /. 1e6) n)
      (clock_offsets t);
    let hops = hop_overheads t in
    if hops <> [] then
      let sum = List.fold_left (fun a v -> a +. float_of_int v) 0.0 hops in
      fp "  router hops: %d stitched, mean overhead %.3f ms@."
        (List.length hops)
        (sum /. float_of_int (List.length hops) /. 1e6)
  end;
  let answered = answered_reqs t in
  let waits = List.filter_map (fun (_, r) -> r.queue_wait_ns) answered in
  let svcs = List.filter_map (fun (_, r) -> r.service_ns) answered in
  let sum l = List.fold_left (fun a v -> a +. float_of_int v) 0.0 l in
  let w = sum waits and s = sum svcs in
  if w +. s > 0.0 then
    fp "latency split: %.1f%% queue wait, %.1f%% service@."
      (100.0 *. w /. (w +. s))
      (100.0 *. s /. (w +. s));
  fp "@.per-op:@.";
  List.iter
    (fun (op, (waits, svcs, count, rejected)) ->
      let mean l =
        match l with
        | [] -> 0.0
        | l -> sum l /. float_of_int (List.length l) /. 1e6
      in
      fp "  %-10s %6d req  %4d rejected  wait %8.3f ms  service %8.3f ms@." op
        count rejected (mean waits) (mean svcs))
    (by_op t);
  if alloc_instrumented t then begin
    fp "@.allocation: %.3g words total; top allocating spans:@."
      (alloc_total_words t);
    List.iter
      (fun (name, a) ->
        fp "  %-36s %12.3g words  (%.3g/call over %d calls)@." name
          a.s_alloc_words
          (a.s_alloc_words /. float_of_int (max 1 a.s_count))
          a.s_count)
      (top_allocators t ~top_k)
  end;
  fp "@.slowest %d:@." top_k;
  List.iter
    (fun ((node, id), r) ->
      fp "  %-12s %-10s wait %8.3f ms  service %8.3f ms  (%d hit / %d miss)@."
        (if node = "" then id else node ^ "/" ^ id)
        r.r_op
        (ms_of_ns (Option.value ~default:0 r.queue_wait_ns))
        (ms_of_ns (Option.value ~default:0 r.service_ns))
        r.lookups_hit r.lookups_miss)
    (slowest t ~top_k);
  match problems t with
  | [] -> fp "@.no problems detected@."
  | ps ->
      fp "@.problems:@.";
      List.iter (fun p -> fp "  - %s@." p) ps
