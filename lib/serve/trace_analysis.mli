(** Offline analysis and stitching of JSONL traces written by serving
    processes — one file or a whole fleet's worth merged.

    The server tags every request's spans and events with its [req_id]
    (see {!Server}); this module ingests the resulting traces
    ([--trace-out] / {!Gossip_util.Instrument.set_trace_file}, or rings
    drained over the wire via [trace_pull]) and reconstructs
    per-request critical paths — how long each request waited in the
    bounded queue versus how long a worker actually computed, which
    cached artifacts it touched, where the slow ones spent their time.

    {b Distributed stitch.}  When the traced processes propagated trace
    contexts (see {!Gossip_util.Trace}), spans from different nodes
    link up by ids alone: each [serve.request] and [router.forward]
    span minted a [span_id], every child span names its
    [parent_span_id], and the [node] attribute keeps per-process
    request ids apart.  Feed the per-node files into {e one} analyzer
    (see {!of_files}) and the report gains a [tracing] section:
    parent-linkage coverage, orphaned router hops, per-node-pair clock
    offsets recovered from hop-span bracketing (a forward's interval on
    the router clock brackets the downstream request's interval on the
    shard clock; the midpoint of the two edge differences estimates the
    offset to within half the wire overhead), per-hop overhead, and
    cross-node waterfalls for the slowest traces laid out on the root
    node's clock.

    The analyzer is deliberately tolerant: lines that fail to parse are
    counted, not fatal; spans from non-request activity (startup,
    benchmarks sharing the file) aggregate normally without confusing
    request accounting; and traces recorded before ids became
    node-prefixed strings (bare integer [req_id] / [conn]) still
    analyse.

    [tools/trace_report] is the command-line face of this module; CI
    runs it with [--check] over single-node loadgen traces {e and} over
    the merged cluster-soak trace. *)

type t

(** [of_lines lines] ingests one trace, one JSONL line per element
    (empty lines are skipped). *)
val of_lines : string list -> t

(** [of_channel ic] reads [ic] to EOF and ingests it. *)
val of_channel : in_channel -> t

(** [of_files paths] ingests every file into one analyzer — the
    multi-node entry point: pass each node's trace file and the stitch
    links them.  Raises [Sys_error] if a file cannot be opened. *)
val of_files : string list -> t

(** {1 Health of the trace itself} *)

(** [linkage_coverage t] — the fraction of spans carrying a
    [parent_span_id] whose parent span was actually recorded
    somewhere in the ingested files; [1.0] when no span carries a
    parent (nothing to stitch, nothing broken). *)
val linkage_coverage : t -> float

(** [problems t] — human-readable defects that make the trace
    untrustworthy, empty when sound:
    - a span name whose [span_begin] / [span_end] counts differ on some
      (node, domain) (lost or torn spans);
    - requests that were admitted but produced no [serve.request] span
      at all (zero-span requests);
    - request coverage below 99% — fewer than 99% of the request ids
      seen in the trace could be reconstructed as either answered
      (span with a queue-wait/service split) or rejected;
    - when the trace carries [alloc_words] at all (recorded by a build
      whose [span_end] events embed allocation deltas), span names
      where only {e some} [span_end] events carry it — a mixed-build
      trace whose allocation totals cannot be trusted.  Traces with no
      [alloc_words] anywhere predate the field and are not flagged;
    - when spans carry parent links at all: {!linkage_coverage} below
      95%, and any orphan [router.forward] hop (a hop whose parent
      span was never recorded — a node's trace file is missing or its
      ring overflowed).  Traces with no parent links anywhere (no
      distributed contexts in play) arm neither gate. *)
val problems : t -> string list

(** {1 Reports} *)

(** [to_json ?top_k t] — versioned report (schema
    [gossip-trace-report/2]): line counts, per-span aggregates (each
    with its summed [alloc_words]), an [alloc] section (whether the
    trace is allocation-instrumented, total words, and the [top_k]
    allocating span names with words per call), span-balance table,
    request reconstruction summary with queue-wait / service quantiles
    and the queue-wait share of total latency, per-op breakdown, the
    [top_k] (default 10) slowest requests each with its span waterfall,
    a [tracing] section (span/trace counts, parent linkage, orphan
    router hops, per-node-pair clock offsets, router-hop overhead
    quantiles, and the [top_k] slowest stitched traces each with a
    cross-node waterfall), and {!problems}.  Schema documented in
    [doc/telemetry.md]. *)
val to_json : ?top_k:int -> t -> Gossip_util.Json.t

(** [pp ?top_k ppf t] — the same report for humans. *)
val pp : ?top_k:int -> Format.formatter -> t -> unit
