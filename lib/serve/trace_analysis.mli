(** Offline analysis of a JSONL trace written by a serving process.

    The server tags every request's spans and events with its [req_id]
    (see {!Server}); this module ingests the resulting trace
    ([--trace-out] / {!Gossip_util.Instrument.set_trace_file}) and
    reconstructs per-request critical paths — how long each request
    waited in the bounded queue versus how long a worker actually
    computed, which cached artifacts it touched, where the slow ones
    spent their time.

    The analyzer is deliberately tolerant: lines that fail to parse are
    counted, not fatal, and spans from non-request activity (startup,
    benchmarks sharing the file) aggregate normally without confusing
    request accounting.

    [tools/trace_report] is the command-line face of this module; CI
    runs it with [--check] over the loadgen trace. *)

type t

(** [of_lines lines] ingests one trace, one JSONL line per element
    (empty lines are skipped). *)
val of_lines : string list -> t

(** [of_channel ic] reads [ic] to EOF and ingests it. *)
val of_channel : in_channel -> t

(** {1 Health of the trace itself} *)

(** [problems t] — human-readable defects that make the trace
    untrustworthy, empty when sound:
    - a span name whose [span_begin] / [span_end] counts differ on some
      domain (lost or torn spans);
    - requests that were admitted but produced no [serve.request] span
      at all (zero-span requests);
    - request coverage below 99% — fewer than 99% of the request ids
      seen in the trace could be reconstructed as either answered
      (span with a queue-wait/service split) or rejected;
    - when the trace carries [alloc_words] at all (recorded by a build
      whose [span_end] events embed allocation deltas), span names
      where only {e some} [span_end] events carry it — a mixed-build
      trace whose allocation totals cannot be trusted.  Traces with no
      [alloc_words] anywhere predate the field and are not flagged. *)
val problems : t -> string list

(** {1 Reports} *)

(** [to_json ?top_k t] — versioned report (schema
    [gossip-trace-report/1]): line counts, per-span aggregates (each
    with its summed [alloc_words]), an [alloc] section (whether the
    trace is allocation-instrumented, total words, and the [top_k]
    allocating span names with words per call), span-balance table,
    request reconstruction summary with queue-wait / service quantiles
    and the queue-wait share of total latency, per-op breakdown, the
    [top_k] (default 10) slowest requests each with its span waterfall,
    and {!problems}.  Schema documented in [doc/telemetry.md]. *)
val to_json : ?top_k:int -> t -> Gossip_util.Json.t

(** [pp ?top_k ppf t] — the same report for humans. *)
val pp : ?top_k:int -> Format.formatter -> t -> unit
