module Json = Gossip_util.Json

type net = { family : string; dim : int; degree : int }

type protocol_spec =
  | Inline of string
  | Built of { net : net; full_duplex : bool }

type op =
  | Ping
  | Version
  | Shutdown
  | Stats
  | Metrics
  | Health
  | Spans
  | Sleep of { ms : int }
  | Tables of { s_max : int; ss : int list }
  | Bound of { net : net; s : int option; full_duplex : bool }
  | Simulate of { net : net; full_duplex : bool }
  | Simulate_implicit of {
      family : string;
      n : int;
      items : int;
      checkpoint_every : int;
      period : int;
      seed : int;
      degree : int;
      full_duplex : bool;
    }
  | Certify of { spec : protocol_spec; refine : bool }
  | Certify_faults of {
      family : string;
      n : int;
      k : int;
      budget : int;
      seed : int;
      degree : int;
      full_duplex : bool;
      harden : string;  (* "none" | "replicate" | "augment" *)
      cap : int;  (* 0 = derive from the scheme's fault-free time *)
    }
  (* cluster membership plane (lib/cluster): an epidemic gossip exchange
     rides the ordinary wire protocol, so shards and the router need no
     second listener.  [Gossip] carries the sender's membership view
     verbatim (the cluster layer owns that schema, the wire layer only
     checks it is an object); [Mem_digest] is the cheap anti-entropy
     probe; [Drain] asks a shard to advertise itself as draining. *)
  | Gossip of { view : Json.t }
  | Mem_digest
  | Drain of { node : string option }
  | Trace_pull of { max : int }

let op_name = function
  | Ping -> "ping"
  | Version -> "version"
  | Shutdown -> "shutdown"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Health -> "health"
  | Spans -> "spans"
  | Sleep _ -> "sleep"
  | Tables _ -> "tables"
  | Bound _ -> "bound"
  | Simulate _ -> "simulate"
  | Simulate_implicit _ -> "simulate_implicit"
  | Certify _ -> "certify"
  | Certify_faults _ -> "certify_faults"
  | Gossip _ -> "gossip"
  | Mem_digest -> "digest"
  | Drain _ -> "drain"
  | Trace_pull _ -> "trace_pull"

type request = {
  id : Json.t;
  op : op;
  timeout_ms : int option;
  trace : Gossip_util.Trace.t option;
}

(* --- parameter validation helpers --- *)

let ( let* ) = Result.bind

let known_families =
  [
    "path"; "cycle"; "complete"; "hypercube"; "grid"; "torus"; "tree"; "bf";
    "dwbf"; "wbf"; "ddb"; "db"; "dk"; "k";
  ]

let field params key = Json.member key params

let int_field ?default params key ~min ~max =
  match field params key with
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing parameter %S" key))
  | Some (Json.Int i) when i >= min && i <= max -> Ok i
  | Some (Json.Int i) ->
      Error (Printf.sprintf "parameter %S = %d out of range [%d, %d]" key i min max)
  | Some _ -> Error (Printf.sprintf "parameter %S must be an integer" key)

let bool_field params key ~default =
  match field params key with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "parameter %S must be a boolean" key)

let string_field params key =
  match field params key with
  | Some (Json.Str s) -> Ok (Some s)
  | None -> Ok None
  | Some _ -> Error (Printf.sprintf "parameter %S must be a string" key)

(* DIM is capped conservatively: the server exists for small cacheable
   queries, and an attacker-sized hypercube would pin a worker for
   minutes.  The cap matches what the bench exercises. *)
let parse_net params =
  let* family =
    match field params "family" with
    | Some (Json.Str s) when List.mem s known_families -> Ok s
    | Some (Json.Str s) -> Error (Printf.sprintf "unknown family %S" s)
    | Some _ -> Error "parameter \"family\" must be a string"
    | None -> Error "missing parameter \"family\""
  in
  let* dim = int_field params "dim" ~min:1 ~max:64 in
  let* degree = int_field ~default:2 params "degree" ~min:1 ~max:16 in
  Ok { family; dim; degree }

let parse_op op params =
  match op with
  | "ping" -> Ok Ping
  | "version" -> Ok Version
  | "shutdown" -> Ok Shutdown
  | "stats" -> Ok Stats
  | "metrics" -> Ok Metrics
  | "health" -> Ok Health
  | "spans" -> Ok Spans
  | "sleep" ->
      let* ms = int_field params "ms" ~min:0 ~max:60_000 in
      Ok (Sleep { ms })
  | "tables" ->
      let* s_max = int_field ~default:8 params "s_max" ~min:3 ~max:32 in
      let* ss =
        match field params "ss" with
        | None -> Ok [ 3; 4; 5; 6; 7; 8 ]
        | Some (Json.List items) ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | Json.Int s :: rest when s >= 3 && s <= 32 -> go (s :: acc) rest
              | _ -> Error "parameter \"ss\" must be a list of integers >= 3"
            in
            if items = [] then Error "parameter \"ss\" must be non-empty"
            else go [] items
        | Some _ -> Error "parameter \"ss\" must be a list of integers >= 3"
      in
      Ok (Tables { s_max; ss })
  | "bound" ->
      let* net = parse_net params in
      let* s =
        match field params "s" with
        | None | Some Json.Null -> Ok None
        | Some (Json.Int s) when s >= 2 && s <= 64 -> Ok (Some s)
        | Some _ -> Error "parameter \"s\" must be an integer in [2, 64] or null"
      in
      let* full_duplex = bool_field params "full_duplex" ~default:false in
      Ok (Bound { net; s; full_duplex })
  | "simulate" ->
      let* net = parse_net params in
      let* full_duplex = bool_field params "full_duplex" ~default:false in
      Ok (Simulate { net; full_duplex })
  | "simulate_implicit" ->
      (* the chunked-engine path: memory is n·items bits, but time is
         O(n · rounds) on one worker, so the vertex gate is far above the
         materialized ops' yet still bounds a worker to a few seconds *)
      let* family =
        match field params "family" with
        | Some (Json.Str s)
          when List.mem s Gossip_topology.Implicit.known_families ->
            Ok s
        | Some (Json.Str s) ->
            Error (Printf.sprintf "unknown implicit family %S" s)
        | Some _ -> Error "parameter \"family\" must be a string"
        | None -> Error "missing parameter \"family\""
      in
      let* n = int_field params "n" ~min:3 ~max:(1 lsl 17) in
      let* items = int_field ~default:32 params "items" ~min:1 ~max:128 in
      let* checkpoint_every =
        int_field ~default:32 params "checkpoint_every" ~min:0 ~max:65536
      in
      let* period = int_field ~default:64 params "period" ~min:1 ~max:4096 in
      let* seed = int_field ~default:1 params "seed" ~min:0 ~max:1_000_000_000 in
      let* degree = int_field ~default:2 params "degree" ~min:2 ~max:16 in
      let* full_duplex = bool_field params "full_duplex" ~default:false in
      Ok
        (Simulate_implicit
           { family; n; items; checkpoint_every; period; seed; degree;
             full_duplex })
  | "certify" ->
      let* refine = bool_field params "refine" ~default:false in
      let* inline = string_field params "protocol" in
      let* spec =
        match inline with
        | Some text ->
            if field params "family" <> None then
              Error "parameters \"protocol\" and \"family\" are exclusive"
            else Ok (Inline text)
        | None ->
            let* net = parse_net params in
            let* full_duplex = bool_field params "full_duplex" ~default:false in
            Ok (Built { net; full_duplex })
      in
      Ok (Certify { spec; refine })
  | "certify_faults" ->
      (* adversarial certification simulates every enumerated failure
         pattern, so the vertex gate is far below simulate_implicit's:
         cost is O(patterns · n · cap) on one worker and the budget gate
         bounds the pattern count *)
      let* family =
        match field params "family" with
        | Some (Json.Str s)
          when List.mem s Gossip_topology.Implicit.known_families ->
            Ok s
        | Some (Json.Str s) ->
            Error (Printf.sprintf "unknown implicit family %S" s)
        | Some _ -> Error "parameter \"family\" must be a string"
        | None -> Error "missing parameter \"family\""
      in
      let* n = int_field params "n" ~min:5 ~max:256 in
      let* k = int_field ~default:1 params "k" ~min:0 ~max:3 in
      let* budget = int_field ~default:512 params "budget" ~min:1 ~max:4096 in
      let* seed = int_field ~default:1 params "seed" ~min:0 ~max:1_000_000_000 in
      let* degree = int_field ~default:2 params "degree" ~min:2 ~max:16 in
      let* full_duplex = bool_field params "full_duplex" ~default:false in
      let* harden =
        match field params "harden" with
        | None -> Ok "none"
        | Some (Json.Str s) when List.mem s [ "none"; "replicate"; "augment" ]
          ->
            Ok s
        | Some (Json.Str s) -> Error (Printf.sprintf "unknown transform %S" s)
        | Some _ -> Error "parameter \"harden\" must be a string"
      in
      let* cap = int_field ~default:0 params "cap" ~min:0 ~max:100_000 in
      Ok
        (Certify_faults
           { family; n; k; budget; seed; degree; full_duplex; harden; cap })
  | "gossip" -> (
      match params with
      | Json.Obj (_ :: _) -> Ok (Gossip { view = params })
      | _ -> Error "parameter object must carry the membership view")
  | "digest" -> Ok Mem_digest
  | "drain" ->
      let* node = string_field params "node" in
      Ok (Drain { node })
  | "trace_pull" ->
      let* max = int_field ~default:512 params "max" ~min:1 ~max:65536 in
      Ok (Trace_pull { max })
  | other -> Error (Printf.sprintf "unknown operation %S" other)

let parse_request j =
  match j with
  | Json.Obj _ ->
      let id = Option.value ~default:Json.Null (Json.member "id" j) in
      let* op =
        match Json.member "op" j with
        | Some (Json.Str op) -> Ok op
        | Some _ -> Error "field \"op\" must be a string"
        | None -> Error "missing field \"op\""
      in
      let params = Option.value ~default:(Json.Obj []) (Json.member "params" j) in
      let* params =
        match params with
        | Json.Obj _ -> Ok params
        | _ -> Error "field \"params\" must be an object"
      in
      let* op = parse_op op params in
      let* timeout_ms =
        match Json.member "timeout_ms" j with
        | None | Some Json.Null -> Ok None
        | Some (Json.Int t) when t >= 0 -> Ok (Some t)
        | Some _ -> Error "field \"timeout_ms\" must be a non-negative integer"
      in
      (* Optional distributed-trace context.  Lenient by design: these
         fields are forward-compatibility territory — an envelope whose
         trace fields are missing or ill-typed is still a valid request
         (a peer that predates them must interoperate), so anything but
         a well-formed context degrades to "no context" rather than
         [bad_request]. *)
      let trace =
        match Json.member "trace_id" j with
        | Some (Json.Str trace_id) when trace_id <> "" ->
            let parent_span_id =
              match Json.member "parent_span_id" j with
              | Some (Json.Str p) when p <> "" -> Some p
              | _ -> None
            in
            let sampled =
              match Json.member "sampled" j with
              | Some (Json.Bool b) -> b
              | _ -> true
            in
            Some { Gossip_util.Trace.trace_id; parent_span_id; sampled }
        | _ -> None
      in
      Ok { id; op; timeout_ms; trace }
  | _ -> Error "request frame must be a JSON object"

let net_to_fields { family; dim; degree } =
  [
    ("family", Json.Str family);
    ("dim", Json.Int dim);
    ("degree", Json.Int degree);
  ]

let op_params = function
  | Ping | Version | Shutdown | Stats | Metrics | Health | Spans -> []
  | Sleep { ms } -> [ ("ms", Json.Int ms) ]
  | Tables { s_max; ss } ->
      [
        ("s_max", Json.Int s_max);
        ("ss", Json.List (List.map (fun s -> Json.Int s) ss));
      ]
  | Bound { net; s; full_duplex } ->
      net_to_fields net
      @ [
          ("s", match s with Some s -> Json.Int s | None -> Json.Null);
          ("full_duplex", Json.Bool full_duplex);
        ]
  | Simulate { net; full_duplex } ->
      net_to_fields net @ [ ("full_duplex", Json.Bool full_duplex) ]
  | Simulate_implicit
      { family; n; items; checkpoint_every; period; seed; degree; full_duplex }
    ->
      [
        ("family", Json.Str family);
        ("n", Json.Int n);
        ("items", Json.Int items);
        ("checkpoint_every", Json.Int checkpoint_every);
        ("period", Json.Int period);
        ("seed", Json.Int seed);
        ("degree", Json.Int degree);
        ("full_duplex", Json.Bool full_duplex);
      ]
  | Certify { spec; refine } ->
      (match spec with
      | Inline text -> [ ("protocol", Json.Str text) ]
      | Built { net; full_duplex } ->
          net_to_fields net @ [ ("full_duplex", Json.Bool full_duplex) ])
      @ [ ("refine", Json.Bool refine) ]
  | Certify_faults { family; n; k; budget; seed; degree; full_duplex; harden; cap }
    ->
      [
        ("family", Json.Str family);
        ("n", Json.Int n);
        ("k", Json.Int k);
        ("budget", Json.Int budget);
        ("seed", Json.Int seed);
        ("degree", Json.Int degree);
        ("full_duplex", Json.Bool full_duplex);
        ("harden", Json.Str harden);
        ("cap", Json.Int cap);
      ]
  | Gossip { view } -> ( match view with Json.Obj fields -> fields | _ -> [])
  | Mem_digest -> []
  | Drain { node } -> (
      match node with Some n -> [ ("node", Json.Str n) ] | None -> [])
  | Trace_pull { max } -> [ ("max", Json.Int max) ]

let request_to_json r =
  Json.Obj
    ([ ("id", r.id); ("op", Json.Str (op_name r.op)) ]
    @ (match op_params r.op with [] -> [] | ps -> [ ("params", Json.Obj ps) ])
    @ (match r.timeout_ms with
      | Some t -> [ ("timeout_ms", Json.Int t) ]
      | None -> [])
    @
    match r.trace with
    | Some { Gossip_util.Trace.trace_id; parent_span_id; sampled } ->
        ("trace_id", Json.Str trace_id)
        :: (match parent_span_id with
           | Some p -> [ ("parent_span_id", Json.Str p) ]
           | None -> [])
        @ if sampled then [] else [ ("sampled", Json.Bool false) ]
    | None -> [])

(* --- responses --- *)

type error_code =
  | Bad_request
  | Queue_full
  | Deadline_exceeded
  | Oversized_frame
  | Shutting_down
  | Internal

let error_code_to_string = function
  | Bad_request -> "bad_request"
  | Queue_full -> "queue_full"
  | Deadline_exceeded -> "deadline_exceeded"
  | Oversized_frame -> "oversized_frame"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let error_code_of_string = function
  | "bad_request" -> Some Bad_request
  | "queue_full" -> Some Queue_full
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "oversized_frame" -> Some Oversized_frame
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

type response = {
  resp_id : Json.t;
  resp_version : string;
  outcome : (Json.t, error_code * string) result;
}

let ok_response ~id result =
  Json.Obj
    [
      ("id", id);
      ("version", Json.Str Core.Version.string);
      ("ok", Json.Bool true);
      ("result", result);
    ]

let error_response ~id ~code ~message =
  Json.Obj
    [
      ("id", id);
      ("version", Json.Str Core.Version.string);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          [
            ("code", Json.Str (error_code_to_string code));
            ("message", Json.Str message);
          ] );
    ]

let parse_response j =
  match j with
  | Json.Obj _ ->
      let resp_id = Option.value ~default:Json.Null (Json.member "id" j) in
      let* resp_version =
        match Json.member "version" j with
        | Some (Json.Str v) -> Ok v
        | _ -> Error "response lacks a \"version\" string"
      in
      let* ok =
        match Json.member "ok" j with
        | Some (Json.Bool b) -> Ok b
        | _ -> Error "response lacks an \"ok\" boolean"
      in
      if ok then
        match Json.member "result" j with
        | Some result -> Ok { resp_id; resp_version; outcome = Ok result }
        | None -> Error "ok response lacks a \"result\""
      else
        let* err =
          match Json.member "error" j with
          | Some (Json.Obj _ as e) -> Ok e
          | _ -> Error "error response lacks an \"error\" object"
        in
        let* code =
          match Json.member "code" err with
          | Some (Json.Str c) -> (
              match error_code_of_string c with
              | Some c -> Ok c
              | None -> Error (Printf.sprintf "unknown error code %S" c))
          | _ -> Error "error object lacks a \"code\" string"
        in
        let message =
          match Json.member "message" err with
          | Some (Json.Str m) -> m
          | _ -> ""
        in
        Ok { resp_id; resp_version; outcome = Error (code, message) }
  | _ -> Error "response frame must be a JSON object"

(* --- framing --- *)

let default_max_frame_bytes = 1 lsl 20

type frame_error = Eof | Oversized

let read_frame ic ~max_bytes =
  let buf = Buffer.create 256 in
  let rec go () =
    match input_char ic with
    | '\n' ->
        let line = Buffer.contents buf in
        let len = String.length line in
        if len > 0 && line.[len - 1] = '\r' then
          Ok (String.sub line 0 (len - 1))
        else Ok line
    | c ->
        if Buffer.length buf >= max_bytes then Error Oversized
        else begin
          Buffer.add_char buf c;
          go ()
        end
    | exception End_of_file ->
        if Buffer.length buf = 0 then Error Eof
        else Ok (Buffer.contents buf) (* unterminated final frame *)
  in
  go ()

let write_frame oc j =
  output_string oc (Json.to_string j);
  output_char oc '\n';
  flush oc
