(** Wire protocol of [gossip_served]: newline-delimited JSON frames.

    One request or response per line, each a single compact JSON object
    ({!Gossip_util.Json}).  Requests name an operation already exposed by
    the library — the same computations as the [gossip_lab --json]
    subcommands — plus control operations:

    {v
    {"id": 7, "op": "tables", "params": {"s_max": 8}, "timeout_ms": 2000}
    {"id": 7, "version": "0.3.0", "ok": true, "result": {...}}
    {"id": 8, "version": "0.3.0", "ok": false,
     "error": {"code": "queue_full", "message": "..."}}
    v}

    [id] is an arbitrary JSON value echoed verbatim in the response
    (absent means [null]); responses on one connection may arrive out of
    request order, so clients with several requests in flight must
    correlate by [id].  The full schema, including every operation's
    parameters, is documented in [doc/serving.md]. *)

module Json = Gossip_util.Json

(** {1 Operations} *)

(** Network naming a request operates on — the same [FAMILY]/[DIM]/[-d]
    triple as the [gossip_lab] subcommands. *)
type net = { family : string; dim : int; degree : int }

(** Which protocol a [certify] request certifies. *)
type protocol_spec =
  | Inline of string
      (** protocol text in the {!Gossip_protocol.Protocol_io} format *)
  | Built of { net : net; full_duplex : bool }
      (** the default systolic protocol for a named network *)

type op =
  | Ping  (** liveness probe; result [{"pong": true}] *)
  | Version  (** result [{"version": ...}] *)
  | Shutdown  (** acknowledge, then drain the server gracefully *)
  | Stats  (** cache + metrics snapshot of the serving process *)
  | Metrics
      (** live rolling-window metrics: per-op throughput, error counts
          and latency p50/p95/p99 over the last 10s/1m/5m, plus queue
          and in-flight gauges (schema [gossip-metrics/1]).  Answered by
          the reader thread, never queued — still observable when the
          queue is saturated. *)
  | Health
      (** readiness/liveness probe (schema [gossip-health/1]): status
          [ok] or [degraded] (queue saturated, or a worker wedged past
          the wedge deadline).  Answered by the reader thread. *)
  | Spans
      (** span aggregates of the serving process (schema
          [gossip-spans/1]); populated when span aggregation is on
          ([--trace] / a streaming trace).  Answered by the reader
          thread. *)
  | Sleep of { ms : int }
      (** hold a worker for [ms] milliseconds; a testing aid for the
          backpressure and deadline paths *)
  | Tables of { s_max : int; ss : int list }
  | Bound of { net : net; s : int option; full_duplex : bool }
  | Simulate of { net : net; full_duplex : bool }
  | Simulate_implicit of {
      family : string;
      n : int;
      items : int;
      checkpoint_every : int;
      period : int;
      seed : int;
      degree : int;
      full_duplex : bool;
    }
      (** chunked-engine run over an implicit family
          ({!Gossip_topology.Implicit.known_families}); [n] is the target
          vertex count (gated at [2^17]), [items] the tracked-item count.
          Result schema [gossip-simulate/1] (see [doc/simulation.md]). *)
  | Certify of { spec : protocol_spec; refine : bool }
  | Certify_faults of {
      family : string;
      n : int;
      k : int;
      budget : int;
      seed : int;
      degree : int;
      full_duplex : bool;
      harden : string;
      cap : int;
    }
      (** adversarial ≤[k]-failure certification
          ({!Gossip_simulate.Certifier}) of an implicit family's natural
          schedule, optionally hardened first ([harden] is ["none"],
          ["replicate"] or ["augment"]); [cap = 0] derives the round
          budget from the scheme's fault-free time.  Gated tightly
          ([n <= 256], [k <= 3], [budget <= 4096]) — cost is
          O(patterns · n · cap) on one worker.  Result schema
          [gossip-fault-cert/1], cached in the context per
          [(fingerprint, k, seed, budget, cap)]. *)
  | Gossip of { view : Json.t }
      (** cluster-membership exchange ({!Gossip_cluster.Membership}):
          [view] is the sender's membership view, carried verbatim — the
          wire layer only requires a non-empty object.  Result: the
          receiver's view, after merging.  Answered only by cluster
          members (shards started with [--join], and the router). *)
  | Mem_digest
      (** wire name ["digest"]: the anti-entropy probe — result
          [{digest, nodes, node}] summarizing the receiver's membership
          table (heartbeat-independent, so converged tables agree). *)
  | Drain of { node : string option }
      (** ask a shard to advertise itself as draining (membership status
          [draining], incarnation bumped): the router stops routing new
          keys there while in-flight and straggler requests still
          complete.  [node] must be absent or the receiver's own id on a
          shard; on the router it names the shard to drain. *)
  | Trace_pull of { max : int }
      (** drain the receiver's recent-event ring
          ({!Gossip_util.Instrument.set_ring_capacity}): result schema
          [gossip-traces/1] with the newest [max] JSONL trace events.
          Answered inline like the other observability ops; the router
          fans it out fleet-wide ([gossip-cluster-traces/1]). *)

(** [op_name op] — the wire name ("ping", "tables", …); used as the
    ["op"] field, in telemetry attributes and in the loadgen mix. *)
val op_name : op -> string

(** {1 Requests} *)

type request = {
  id : Json.t;  (** echoed verbatim; [Null] when absent *)
  op : op;
  timeout_ms : int option;
      (** per-request deadline, measured from admission; see
          [doc/serving.md] for the exact semantics *)
  trace : Gossip_util.Trace.t option;
      (** distributed-trace context, carried as optional top-level
          [trace_id] / [parent_span_id] / [sampled] envelope fields.
          Forward-compatible in both directions: a request without them
          parses as [None], and a peer that predates them ignores them
          (unknown envelope fields are never rejected). *)
}

(** [parse_request j] validates a decoded frame into a typed request.
    Unknown operations, missing or ill-typed parameters and out-of-range
    values are rejected with a human-readable reason (the server turns
    it into a [bad_request] reply).  Unknown {e envelope fields} are
    ignored, and ill-typed trace-context fields degrade to "no context"
    — both are forward-compatibility seams, not defects. *)
val parse_request : Json.t -> (request, string) result

(** [request_to_json r] — the canonical wire form of [r];
    [parse_request (request_to_json r) = Ok r] (golden-tested). *)
val request_to_json : request -> Json.t

(** {1 Responses} *)

type error_code =
  | Bad_request  (** malformed JSON, unknown op, invalid parameters *)
  | Queue_full  (** bounded queue at capacity — retry later *)
  | Deadline_exceeded  (** request expired before a worker picked it up *)
  | Oversized_frame  (** frame longer than the server's limit *)
  | Shutting_down  (** server is draining; no new work accepted *)
  | Internal  (** evaluation raised unexpectedly *)

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

type response = {
  resp_id : Json.t;
  resp_version : string;
  outcome : (Json.t, error_code * string) result;
      (** [Ok result] or [Error (code, message)] *)
}

(** [ok_response ~id result] / [error_response ~id ~code ~message] build
    the response envelope; both stamp {!Core.Version.string}. *)
val ok_response : id:Json.t -> Json.t -> Json.t

val error_response : id:Json.t -> code:error_code -> message:string -> Json.t

(** [parse_response j] — the client-side inverse of the builders above. *)
val parse_response : Json.t -> (response, string) result

(** {1 Framing} *)

(** Default frame limit, 1 MiB.  Frames are single lines; the limit
    bounds per-connection memory and is enforced while reading, so an
    oversized frame never gets buffered whole. *)
val default_max_frame_bytes : int

type frame_error =
  | Eof  (** peer closed the connection cleanly *)
  | Oversized  (** line exceeded [max_bytes]; the stream is unframed
                   from here on, so the connection must be closed *)

(** [read_frame ic ~max_bytes] — one line, without its terminator
    (a trailing [\r] is also stripped).  Empty lines are returned as
    empty strings; callers skip them (tolerated as keep-alives). *)
val read_frame : in_channel -> max_bytes:int -> (string, frame_error) result

(** [write_frame oc j] writes [j] compactly followed by a newline and
    flushes.  Not thread-safe per channel — the server serializes writers
    with a per-connection mutex. *)
val write_frame : out_channel -> Json.t -> unit
