module Schedule = Gossip_protocol.Schedule
module Protocol = Gossip_protocol.Protocol
module Parallel = Gossip_util.Parallel
module Prng = Gossip_util.Prng

type cert_mode = Exhaustive | Sampled

type counterexample = {
  cx_pattern : (int * int) list;
  cx_rounds_run : int;
  cx_coverage : float;
}

type verdict = {
  certified : bool;
  cert_mode : cert_mode;
  k : int;
  seed : int;
  budget : int;
  arcs : int;
  patterns_total : int;
  patterns_checked : int;
  fault_free_time : int option;
  cap : int;
  worst_time : int option;
  worst_pattern : (int * int) list;
  counterexample : counterexample option;
}

let period_arcs sched =
  let seen = Hashtbl.create 64 in
  for i = 0 to Schedule.period sched - 1 do
    List.iter
      (fun arc -> if not (Hashtbl.mem seen arc) then Hashtbl.add seen arc ())
      (Schedule.round_arcs sched i)
  done;
  let arcs = Array.of_seq (Hashtbl.to_seq_keys seen) in
  Array.sort compare arcs;
  arcs

let fingerprint sched =
  let h = ref 0x51ed270b in
  let mix x = h := (!h * 1_000_003) lxor x in
  for i = 0 to Schedule.period sched - 1 do
    mix 0x2545f49;
    List.iter (fun (u, v) -> mix ((u * 65_599) + v + 1)) (Schedule.round_arcs sched i)
  done;
  Printf.sprintf "%s|%d|%s|s%d|%x" (Schedule.name sched)
    (Schedule.n_vertices sched)
    (Protocol.mode_to_string (Schedule.mode sched))
    (Schedule.period sched) (!h land max_int)

(* C(m, i) with saturation: pattern spaces overflow long before they can
   be enumerated, and a saturated total just means "sampled mode". *)
let saturation = max_int / 4

let binomial m i =
  let rec go acc j =
    if j > i then acc
    else if acc > saturation then saturation
    else go (acc * (m - j + 1) / j) (j + 1)
  in
  if i < 0 || i > m then 0 else go 1 1

let space_size m k =
  let rec go acc i =
    if i > k then acc
    else
      let acc = acc + binomial m i in
      if acc > saturation then saturation else go acc (i + 1)
  in
  go 0 0

(* Lexicographic i-combinations of [0, m), as index arrays. *)
let combinations m i =
  if i = 0 then [ [||] ]
  else begin
    let out = ref [] in
    let c = Array.init i (fun j -> j) in
    let continue_ = ref (i <= m) in
    while !continue_ do
      out := Array.copy c :: !out;
      (* advance to the next combination *)
      let j = ref (i - 1) in
      while !j >= 0 && c.(!j) = m - i + !j do
        decr j
      done;
      if !j < 0 then continue_ := false
      else begin
        c.(!j) <- c.(!j) + 1;
        for l = !j + 1 to i - 1 do
          c.(l) <- c.(l - 1) + 1
        done
      end
    done;
    List.rev !out
  end

(* A seeded pattern sample: size i drawn with weight C(m, i) — the
   verdict concentrates where the adversary has the most choices — then
   a uniform i-subset by partial Fisher-Yates. *)
let sample_patterns ~m ~k ~budget ~seed =
  let rng = Prng.create (seed lxor 0x5bf0_3635) in
  let weights = Array.init k (fun i -> float_of_int (binomial m (i + 1))) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let draw_size () =
    let u = Prng.float rng total in
    let rec go acc i =
      if i >= k - 1 then k
      else
        let acc = acc +. weights.(i) in
        if u < acc then i + 1 else go acc (i + 1)
    in
    go 0.0 0
  in
  let idx = Array.init m (fun j -> j) in
  Array.init budget (fun _ ->
      let size = draw_size () in
      for j = 0 to size - 1 do
        let t = j + Prng.int rng (m - j) in
        let tmp = idx.(j) in
        idx.(j) <- idx.(t);
        idx.(t) <- tmp
      done;
      let p = Array.sub idx 0 size in
      Array.sort compare p;
      p)

let certify ?domains ?cap ?(slack = 1.5) ?(budget = 512) sched ~k ~seed =
  if k < 0 then invalid_arg "Certifier.certify: k must be >= 0";
  if budget < 1 then invalid_arg "Certifier.certify: budget must be >= 1";
  if slack < 1.0 then invalid_arg "Certifier.certify: slack must be >= 1.0";
  let n = Schedule.n_vertices sched in
  let arcs = period_arcs sched in
  let m = Array.length arcs in
  if k > m then
    invalid_arg
      (Printf.sprintf
         "Certifier.certify: k = %d exceeds the period's %d distinct arcs" k m);
  let domains =
    match domains with Some d -> max 1 d | None -> Parallel.recommended_domains ()
  in
  (* [run_pattern] is pure — it also runs on worker domains, where a
     shared counter increment would race — so the checked-pattern count
     is kept at the (sequential) call sites. *)
  let checked = ref 0 in
  let run_pattern ?cap (pattern : int array) =
    let sched' =
      if Array.length pattern = 0 then sched
      else
        let dead = Array.map (fun i -> arcs.(i)) pattern in
        Schedule.with_drops sched ~drop:(fun ~round:_ ~u ~v ->
            Array.exists (fun (a, b) -> a = u && b = v) dead)
    in
    let st = Chunked.create n in
    Chunked.run ~domains:1 ?cap st sched'
  in
  let pattern_arcs p = List.map (fun i -> arcs.(i)) (Array.to_list p) in
  let free = run_pattern [||] in
  incr checked;
  match free.Chunked.time with
  | None ->
      {
        certified = false;
        cert_mode = Exhaustive;
        k;
        seed;
        budget;
        arcs = m;
        patterns_total = space_size m k;
        patterns_checked = !checked;
        fault_free_time = None;
        cap = (match cap with Some c -> c | None -> 0);
        worst_time = None;
        worst_pattern = [];
        counterexample =
          Some
            {
              cx_pattern = [];
              cx_rounds_run = free.Chunked.rounds_run;
              cx_coverage = free.Chunked.final_coverage;
            };
      }
  | Some t0 ->
      let cap =
        match cap with
        | Some c ->
            if c < 1 then invalid_arg "Certifier.certify: cap must be >= 1";
            c
        | None ->
            int_of_float (ceil (slack *. float_of_int t0)) + Schedule.period sched
      in
      let total = space_size m k in
      let cert_mode = if total - 1 <= budget then Exhaustive else Sampled in
      let patterns =
        match cert_mode with
        | Exhaustive ->
            Array.of_list
              (List.concat_map (fun i -> combinations m i)
                 (List.init k (fun i -> i + 1)))
        | Sampled -> sample_patterns ~m ~k ~budget ~seed
      in
      let worst = ref (Some t0) and worst_pat = ref [||] in
      let cx = ref None in
      let batch = max 8 (domains * 4) in
      let pos = ref 0 in
      while !cx = None && !pos < Array.length patterns do
        let len = min batch (Array.length patterns - !pos) in
        let slice = Array.sub patterns !pos len in
        let outcomes =
          Parallel.map ~domains (fun p -> run_pattern ~cap p) slice
        in
        checked := !checked + len;
        Array.iteri
          (fun i (o : Chunked.outcome) ->
            if !cx = None then
              match o.Chunked.time with
              | Some t ->
                  if match !worst with Some w -> t > w | None -> true then begin
                    worst := Some t;
                    worst_pat := slice.(i)
                  end
              | None -> cx := Some (slice.(i), o))
          outcomes;
        pos := !pos + len
      done;
      let counterexample =
        match !cx with
        | None -> None
        | Some (pat, out) ->
            (* greedy 1-minimal shrink: drop arcs one at a time while the
               pattern still fails *)
            let rec shrink pat (out : Chunked.outcome) =
              let len = Array.length pat in
              let rec try_drop i =
                if len <= 1 || i >= len then (pat, out)
                else
                  let cand =
                    Array.init (len - 1) (fun j ->
                        if j < i then pat.(j) else pat.(j + 1))
                  in
                  begin
                    incr checked;
                    match run_pattern ~cap cand with
                    | { Chunked.time = None; _ } as o -> shrink cand o
                    | _ -> try_drop (i + 1)
                  end
              in
              try_drop 0
            in
            let pat, out = shrink pat out in
            Some
              {
                cx_pattern = pattern_arcs pat;
                cx_rounds_run = out.Chunked.rounds_run;
                cx_coverage = out.Chunked.final_coverage;
              }
      in
      {
        certified = counterexample = None;
        cert_mode;
        k;
        seed;
        budget;
        arcs = m;
        patterns_total = total;
        patterns_checked = !checked;
        fault_free_time = Some t0;
        cap;
        worst_time = (if counterexample = None then !worst else None);
        worst_pattern = pattern_arcs !worst_pat;
        counterexample;
      }

let cert_mode_name = function Exhaustive -> "exhaustive" | Sampled -> "sampled"

let to_json sched v =
  let module J = Gossip_util.Json in
  let arc_list l = J.List (List.map (fun (u, w) -> J.List [ J.Int u; J.Int w ]) l) in
  let confidence =
    match v.cert_mode with
    | Exhaustive -> 1.0
    | Sampled ->
        if v.patterns_total <= 0 then 0.0
        else
          min 1.0
            (float_of_int v.patterns_checked /. float_of_int v.patterns_total)
  in
  J.Obj
    [
      ("schema", J.Str "gossip-fault-cert/1");
      ("scheme", J.Str (Schedule.name sched));
      ("fingerprint", J.Str (fingerprint sched));
      ("n", J.Int (Schedule.n_vertices sched));
      ("mode", J.Str (Protocol.mode_to_string (Schedule.mode sched)));
      ("period", J.Int (Schedule.period sched));
      ("k", J.Int v.k);
      ("seed", J.Int v.seed);
      ("budget", J.Int v.budget);
      ("arcs", J.Int v.arcs);
      ("cert_mode", J.Str (cert_mode_name v.cert_mode));
      ("patterns_total", J.Int v.patterns_total);
      ("patterns_checked", J.Int v.patterns_checked);
      ("confidence", J.Float confidence);
      ("cap", J.Int v.cap);
      ( "fault_free_time",
        match v.fault_free_time with Some t -> J.Int t | None -> J.Null );
      ("worst_time", match v.worst_time with Some t -> J.Int t | None -> J.Null);
      ("worst_pattern", arc_list v.worst_pattern);
      ("certified", J.Bool v.certified);
      ( "counterexample",
        match v.counterexample with
        | None -> J.Null
        | Some c ->
            J.Obj
              [
                ("pattern", arc_list c.cx_pattern);
                ("rounds_run", J.Int c.cx_rounds_run);
                ("coverage", J.Float c.cx_coverage);
              ] );
    ]
