(** Adversarial ≤k-failure certification of a gossip schedule.

    [Simulate.Faults] measures slowdown under {e stochastic} faults;
    this module answers the adversarial question: does gossip still
    complete — within a round budget — under {e every} pattern of at
    most [k] permanently dead arcs?  Patterns are subsets of the
    period's distinct arc set; each one is simulated by wrapping the
    schedule with {!Gossip_protocol.Schedule.with_drops} and running
    the chunked engine with [items = n] (exact gossip, bit-identical
    to the materialized engine).

    The pattern space [C(m, <=k)] is enumerated exhaustively while it
    fits the [budget]; beyond that a seeded sample of [budget] patterns
    is drawn (sizes weighted by [C(m, i)], so the verdict concentrates
    where the adversary has the most choices) and the verdict is only
    statistical — {!verdict.cert_mode} records which regime ran, and
    the certificate's [confidence] field reports the fraction of the
    space actually checked.  Patterns are evaluated in deterministic
    order, fanned out in batches through {!Gossip_util.Parallel}, with
    early exit at the first failing batch; a failing pattern is then
    greedily shrunk to a 1-minimal counterexample (every proper subset
    obtained by dropping one arc completes).

    Completion must happen within [cap] rounds.  By default [cap] is
    derived from the schedule's own fault-free completion time [t0] as
    [ceil(slack · t0) + period] — "a fault may cost at most
    [slack - 1] extra fractions of the fault-free time".  Everything is
    deterministic given [(schedule, k, seed, budget, cap)], which is
    exactly the cache key [Core.Context] uses for certificates. *)

type cert_mode = Exhaustive | Sampled

type counterexample = {
  cx_pattern : (int * int) list;  (** minimal failing arc set, sorted *)
  cx_rounds_run : int;  (** rounds executed before giving up *)
  cx_coverage : float;  (** final (vertex, item) coverage *)
}

type verdict = {
  certified : bool;
  cert_mode : cert_mode;
  k : int;
  seed : int;
  budget : int;
  arcs : int;  (** [m]: distinct arcs in one period *)
  patterns_total : int;  (** [|C(m, <=k)|] *)
  patterns_checked : int;  (** patterns actually simulated *)
  fault_free_time : int option;  (** [t0]; [None] ⇒ uncertifiable *)
  cap : int;  (** round budget applied to every faulted run *)
  worst_time : int option;
      (** slowest completion among checked passing patterns *)
  worst_pattern : (int * int) list;  (** a pattern achieving [worst_time] *)
  counterexample : counterexample option;
}

(** [period_arcs sched] — the distinct arcs of one period, sorted;
    the universe the adversary chooses from.  O(n · period). *)
val period_arcs : Gossip_protocol.Schedule.t -> (int * int) array

(** [fingerprint sched] digests name, size, mode, period and the full
    period arc stream — the schedule analogue of
    [Core.Context.protocol_fingerprint], and the [fingerprint] field of
    the certificate. *)
val fingerprint : Gossip_protocol.Schedule.t -> string

(** [certify ?domains ?cap ?slack ?budget sched ~k ~seed] — the
    decision procedure described above.  [slack] defaults to 1.5,
    [budget] to 512 patterns, [domains] to the recommended worker
    count; [cap] overrides the derived round budget entirely.
    @raise Invalid_argument on [k < 0], [k] exceeding the period's
    distinct arc count, [budget < 1] or [slack < 1.0]. *)
val certify :
  ?domains:int ->
  ?cap:int ->
  ?slack:float ->
  ?budget:int ->
  Gossip_protocol.Schedule.t ->
  k:int ->
  seed:int ->
  verdict

(** [to_json sched v] — the [gossip-fault-cert/1] artifact: schema tag,
    scheme name / fingerprint / n / mode / period, the verdict fields,
    [cert_mode] as ["exhaustive"] or ["sampled"], and [confidence]
    (checked / total, 1.0 when exhaustive). *)
val to_json : Gossip_protocol.Schedule.t -> verdict -> Gossip_util.Json.t
