module Parallel = Gossip_util.Parallel
module Instrument = Gossip_util.Instrument
module Json = Gossip_util.Json
module Protocol = Gossip_protocol.Protocol
module Schedule = Gossip_protocol.Schedule

(* One contiguous int array of n·words knowledge bits, processed in
   contiguous vertex blocks by worker domains.  Tracking [items <= n]
   items (instead of the full n² gossip state) is what keeps a
   million-vertex simulation in memory proportional to state: items
   defaults to n, making the engine bit-for-bit equivalent to
   {!Engine} on small instances, while items = 64 at n = 10^6 needs
   ~8 MB instead of ~125 GB. *)

let bits_per_word = 63

type state = {
  n : int;
  items : int;
  words : int;
  state : int array;
  mutable known : int;
}

let create ?items n =
  if n < 0 then invalid_arg "Chunked.create: negative vertex count";
  let items =
    match items with None -> n | Some k -> max 0 (min k n)
  in
  let words = max 1 ((items + bits_per_word - 1) / bits_per_word) in
  let st = { n; items; words; state = Array.make (max 1 (n * words)) 0; known = 0 } in
  (* vertex v starts knowing item v — exactly the engine's initial state,
     restricted to the first [items] items *)
  for v = 0 to items - 1 do
    st.state.((v * words) + (v / bits_per_word)) <-
      1 lsl (v mod bits_per_word)
  done;
  st.known <- items;
  st

let n_vertices st = st.n
let items st = st.items
let items_known st = st.known

let knows st v i =
  if v < 0 || v >= st.n then invalid_arg "Chunked.knows: vertex out of range";
  if i < 0 || i >= st.items then false
  else
    st.state.((v * st.words) + (i / bits_per_word))
    land (1 lsl (i mod bits_per_word))
    <> 0

let coverage st =
  if st.n = 0 || st.items = 0 then 1.0
  else float_of_int st.known /. float_of_int (st.n * st.items)

let complete st = st.known = st.n * st.items

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

(* One vertex block of one round, in place.  A round is a matching, so a
   sender is never also a receiver except through a full-duplex exchange:
   - exchange (sender v = x and sender x = v): owned by the lower
     endpoint, which writes the shared union to both sides — identical to
     the start-of-round snapshot semantics, since both ends get
     old(v) | old(x);
   - one-directional arc x -> v: x is not written this round, so
     v |= x in place is race-free.
   Returns the number of newly-set bits; the cross-block sum is an exact
   integer, so results are identical for any worker count. *)
let block_delta st sched round lo hi =
  let words = st.words and state = st.state in
  let delta = ref 0 in
  for v = lo to hi - 1 do
    let x = Schedule.sender sched round v in
    if x >= 0 && x < st.n && x <> v then
      if Schedule.sender sched round x = v then begin
        if v < x then begin
          let dv = v * words and dx = x * words in
          for w = 0 to words - 1 do
            let a = state.(dv + w) and b = state.(dx + w) in
            let u = a lor b in
            if u <> a then begin
              delta := !delta + popcount (u land lnot a);
              state.(dv + w) <- u
            end;
            if u <> b then begin
              delta := !delta + popcount (u land lnot b);
              state.(dx + w) <- u
            end
          done
        end
      end
      else begin
        let dv = v * words and dx = x * words in
        for w = 0 to words - 1 do
          let a = state.(dv + w) in
          let u = a lor state.(dx + w) in
          if u <> a then begin
            delta := !delta + popcount (u land lnot a);
            state.(dv + w) <- u
          end
        done
      end
  done;
  !delta

let apply_round ?domains st sched round =
  let workers =
    match domains with
    | Some d -> max 1 d
    | None -> Parallel.recommended_domains ()
  in
  (* a few blocks per worker keeps the strided distribution balanced
     when block costs differ *)
  let nblocks = max 1 (min st.n (workers * 4)) in
  let delta =
    Parallel.reduce ?domains nblocks
      (fun b ->
        let lo = b * st.n / nblocks and hi = (b + 1) * st.n / nblocks in
        block_delta st sched round lo hi)
      ( + ) 0
  in
  st.known <- st.known + delta

type checkpoint = {
  round : int;
  coverage : float;
  elapsed_s : float;
  rounds_per_s : float;
  eta_s : float option;
  heap_mb : float;
  rss_mb : float option;
}

type outcome = {
  time : int option;
  rounds_run : int;
  final_coverage : float;
  checkpoints : checkpoint list;
}

let ceil_log2 n =
  let rec go acc p = if p >= n then acc else go (acc + 1) (p * 2) in
  if n <= 1 then 0 else go 0 1

(* Generous: covers both logarithmic-diameter families and the
   linear-diameter cycle/torus, while runs that complete stop early. *)
let default_cap n period =
  (2 * n) + (8 * period * max 1 (ceil_log2 n)) + 64

let run ?domains ?cap ?(checkpoint_every = 0) ?on_checkpoint st sched =
  if Schedule.n_vertices sched <> st.n then
    invalid_arg "Chunked.run: schedule and state disagree on vertex count";
  let cap =
    match cap with Some c -> c | None -> default_cap st.n (Schedule.period sched)
  in
  let streaming = Instrument.tracing () in
  let checkpoints = ref [] in
  let time = ref None in
  let i = ref 0 in
  let t0 = Instrument.now_ns () in
  (* previous checkpoint's (elapsed, coverage): the ETA extrapolates the
     most recent inter-checkpoint coverage slope to coverage 1.0 —
     robust to warm-up, and None once coverage stalls (an incomplete run
     heading for the cap has no honest ETA). *)
  let prev = ref (0.0, coverage st) in
  let note_checkpoint () =
    let c = coverage st in
    let elapsed_s = Int64.to_float (Int64.sub (Instrument.now_ns ()) t0) /. 1e9 in
    let rounds_per_s =
      if elapsed_s > 0.0 then float_of_int !i /. elapsed_s else 0.0
    in
    let eta_s =
      if !time <> None then Some 0.0
      else
        let prev_t, prev_c = !prev in
        let slope = (c -. prev_c) /. Float.max 1e-9 (elapsed_s -. prev_t) in
        if slope > 0.0 then Some ((1.0 -. c) /. slope) else None
    in
    prev := (elapsed_s, c);
    let res = Gossip_util.Resource.sample () in
    let cp =
      {
        round = !i;
        coverage = c;
        elapsed_s;
        rounds_per_s;
        eta_s;
        heap_mb = res.Gossip_util.Resource.heap_mb;
        rss_mb = res.Gossip_util.Resource.rss_mb;
      }
    in
    checkpoints := cp :: !checkpoints;
    if streaming then
      Instrument.event "engine.checkpoint"
        ~attrs:
          [
            ("round", Json.Int !i);
            ("coverage", Json.Float c);
            ("elapsed_s", Json.Float elapsed_s);
            ("rounds_per_s", Json.Float rounds_per_s);
            ( "eta_s",
              match eta_s with Some e -> Json.Float e | None -> Json.Null );
            ("heap_mb", Json.Float cp.heap_mb);
            ( "rss_mb",
              match cp.rss_mb with Some r -> Json.Float r | None -> Json.Null
            );
          ];
    match on_checkpoint with Some f -> f cp | None -> ()
  in
  Instrument.span "simulate.chunked-run" (fun () ->
      while !time = None && !i < cap do
        apply_round ?domains st sched !i;
        incr i;
        if complete st then time := Some !i;
        if checkpoint_every > 0 && (!i mod checkpoint_every = 0 || !time <> None)
        then note_checkpoint ()
      done);
  {
    time = !time;
    rounds_run = !i;
    final_coverage = coverage st;
    checkpoints = List.rev !checkpoints;
  }

(* --- the gossip-simulate/1 report, shared by the CLI and the server --- *)

let report_to_json ~family ~requested_n ~sched ~st ~outcome ~wall_seconds
    ~domains =
  let mode = Protocol.mode_to_string (Schedule.mode sched) in
  let rate =
    if wall_seconds > 0.0 then
      float_of_int st.n *. float_of_int outcome.rounds_run /. wall_seconds
    else 0.0
  in
  Json.Obj
    [
      ("schema", Json.Str "gossip-simulate/1");
      ("family", Json.Str family);
      ("schedule", Json.Str (Schedule.name sched));
      ("requested_n", Json.Int requested_n);
      ("n", Json.Int st.n);
      ("items", Json.Int st.items);
      ("period", Json.Int (Schedule.period sched));
      ("mode", Json.Str mode);
      ("completed", Json.Bool (outcome.time <> None));
      ( "rounds",
        Json.Int
          (match outcome.time with Some t -> t | None -> outcome.rounds_run) );
      ("coverage", Json.Float outcome.final_coverage);
      ( "checkpoints",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("round", Json.Int c.round);
                   ("coverage", Json.Float c.coverage);
                   ("elapsed_s", Json.Float c.elapsed_s);
                   ("rounds_per_s", Json.Float c.rounds_per_s);
                   ( "eta_s",
                     match c.eta_s with
                     | Some e -> Json.Float e
                     | None -> Json.Null );
                   ("heap_mb", Json.Float c.heap_mb);
                   ( "rss_mb",
                     match c.rss_mb with
                     | Some r -> Json.Float r
                     | None -> Json.Null );
                 ])
             outcome.checkpoints) );
      ("wall_seconds", Json.Float wall_seconds);
      ("nodes_rounds_per_sec", Json.Float rate);
      ("domains", Json.Int domains);
    ]
