(** Chunked blockwise simulation over implicit schedules.

    The materialized {!Engine} keeps one bitset per processor over all
    [n] items — n² bits, ~125 GB at a million vertices.  This engine
    scales by tracking the dissemination of the first [items <= n]
    items only, in one contiguous word array processed blockwise in
    parallel: memory stays proportional to simulation state
    ([n·items] bits), and rounds come from a {!Gossip_protocol.Schedule}
    sender function, so nothing per-round is ever materialized either.

    With [items = n] the semantics are bit-for-bit those of {!Engine}
    (the equivalence property the tests pin); with [items = 1] a run is
    a broadcast of item 0; small [items] (e.g. 64) is the scaling
    configuration.  Rounds are applied in place: a matching's only
    same-round feedback is a full-duplex exchange, which the owning
    block writes atomically with the shared union of both sides, so the
    result is identical to start-of-round-snapshot semantics and
    deterministic for every worker count. *)

type state

(** [create ?items n] — vertex [v < items] starts knowing exactly item
    [v]; everyone else knows nothing.  [items] defaults to [n] (exact
    gossip) and is clamped to [0 <= items <= n].
    @raise Invalid_argument on [n < 0]. *)
val create : ?items:int -> int -> state

val n_vertices : state -> int
val items : state -> int

(** [items_known st] is the number of set (vertex, item) bits,
    maintained incrementally — O(1). *)
val items_known : state -> int

(** [knows st v i] — does vertex [v] currently know item [i]?  Items
    beyond the tracked range are reported unknown. *)
val knows : state -> int -> int -> bool

(** [coverage st] is [items_known / (n · items)] (1.0 when the state is
    empty) — the chunked analogue of {!Engine} coverage. *)
val coverage : state -> float

(** [complete st] — every vertex knows every tracked item. *)
val complete : state -> bool

(** [apply_round ?domains st sched round] executes (absolute) round
    [round] of [sched] on [st], blockwise over the worker domains
    (default {!Gossip_util.Parallel.recommended_domains}). *)
val apply_round : ?domains:int -> state -> Gossip_protocol.Schedule.t -> int -> unit

(** A streamed progress sample: the deterministic coverage curve
    ([round], [coverage] — identical at every worker count) plus the
    run's live telemetry — elapsed wall time, throughput, the ETA
    extrapolated from the most recent inter-checkpoint coverage slope
    ([Some 0.] once complete; [None] while coverage is stalled) and a
    heap/RSS reading ({!Gossip_util.Resource}). *)
type checkpoint = {
  round : int;
  coverage : float;
  elapsed_s : float;  (** monotonic seconds since [run] started *)
  rounds_per_s : float;
  eta_s : float option;  (** projected seconds to coverage 1.0 *)
  heap_mb : float;
  rss_mb : float option;
}

type outcome = {
  time : int option;  (** first round after which the run was complete *)
  rounds_run : int;
  final_coverage : float;
  checkpoints : checkpoint list;
}

(** [run ?domains ?cap ?checkpoint_every ?on_checkpoint st sched]
    drives [st] under [sched] until complete or [cap] rounds (default
    [2n + 8·period·⌈log₂ n⌉ + 64] — covers linear-diameter cycles as
    well as logarithmic families).  When [checkpoint_every = k > 0], a
    {!checkpoint} is recorded every [k] rounds plus at the final round,
    passed to [on_checkpoint] (the CLI's [--progress] ticker), and —
    when a trace sink is installed — streamed as an
    ["engine.checkpoint"] JSONL event carrying the full progress/
    resource attribute set.  The whole run executes under the
    ["simulate.chunked-run"] instrumentation span. *)
val run :
  ?domains:int ->
  ?cap:int ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(checkpoint -> unit) ->
  state ->
  Gossip_protocol.Schedule.t ->
  outcome

(** [report_to_json …] renders the documented [gossip-simulate/1]
    report object (schema, family, sizes, rounds, coverage, checkpoint
    list, wall time, nodes·rounds/sec, domains) — shared by
    [gossip_lab simulate --family] and the server's
    [simulate_implicit] op. *)
val report_to_json :
  family:string ->
  requested_n:int ->
  sched:Gossip_protocol.Schedule.t ->
  st:state ->
  outcome:outcome ->
  wall_seconds:float ->
  domains:int ->
  Gossip_util.Json.t
