module Bitset = Gossip_util.Bitset
module Protocol = Gossip_protocol.Protocol
module Systolic = Gossip_protocol.Systolic

type state = { n : int; know : Bitset.t array }

let initial_state n =
  { n; know = Array.init n (fun v -> Bitset.singleton n v) }

let knowledge st v = st.know.(v)

let items_known st =
  Array.fold_left (fun acc s -> acc + Bitset.cardinal s) 0 st.know

(* Fraction of the n² (vertex, item) pairs already known; guarded so the
   degenerate empty network reports full coverage instead of dividing by
   zero.  Single source of truth for every coverage figure below. *)
let coverage_of st =
  if st.n = 0 then 1.0
  else float_of_int (items_known st) /. float_of_int (st.n * st.n)

let all_complete st = Array.for_all Bitset.is_full st.know

let apply_round st round =
  (* A round is a matching, so a vertex receives from at most one sender;
     the only same-round feedback is a full-duplex exchange (both opposite
     arcs active), which needs start-of-round snapshots of both sides.  We
     snapshot a sender only when it also appears as a receiver. *)
  let receivers = Hashtbl.create 16 in
  List.iter (fun (_, y) -> Hashtbl.replace receivers y ()) round;
  let snapshots = Hashtbl.create 4 in
  List.iter
    (fun (x, _) ->
      if Hashtbl.mem receivers x && not (Hashtbl.mem snapshots x) then
        Hashtbl.replace snapshots x (Bitset.copy st.know.(x)))
    round;
  List.iter
    (fun (x, y) ->
      let src =
        match Hashtbl.find_opt snapshots x with
        | Some s -> s
        | None -> st.know.(x)
      in
      Bitset.union_into ~src ~dst:st.know.(y))
    round

type outcome = {
  completed_at : int option;
  rounds_run : int;
  coverage : float;
}

let run_protocol p =
  let n = Gossip_topology.Digraph.n_vertices (Protocol.graph p) in
  let st = initial_state n in
  let completed = ref None in
  let i = ref 0 in
  let total = Protocol.length p in
  while !completed = None && !i < total do
    apply_round st (Protocol.round p !i);
    incr i;
    if all_complete st then completed := Some !i
  done;
  { completed_at = !completed; rounds_run = !i; coverage = coverage_of st }

let default_cap p =
  let n = Gossip_topology.Digraph.n_vertices (Systolic.graph p) in
  (8 * Systolic.period p * n) + 64

let run_until ?probe ~cap ~done_ p =
  let n = Gossip_topology.Digraph.n_vertices (Systolic.graph p) in
  let st = initial_state n in
  let result = ref None in
  let i = ref 0 in
  while !result = None && !i < cap do
    apply_round st (Systolic.period_round p !i);
    incr i;
    (match probe with
    | Some f -> f ~round:!i ~coverage:(coverage_of st)
    | None -> ());
    if done_ st then result := Some !i
  done;
  !result

let gossip_time ?probe ?cap p =
  let cap = match cap with Some c -> c | None -> default_cap p in
  run_until ?probe ~cap ~done_:all_complete p

let broadcast_time ?probe ?cap p ~src =
  let cap = match cap with Some c -> c | None -> default_cap p in
  run_until ?probe ~cap
    ~done_:(fun st -> Array.for_all (fun s -> Bitset.mem s src) st.know)
    p

type run = { time : int option; curve : float array }

let gossip_run ?cap p =
  let module Instrument = Gossip_util.Instrument in
  let module Json = Gossip_util.Json in
  let curve = ref [] in
  let streaming = Instrument.tracing () in
  let probe ~round ~coverage =
    curve := coverage :: !curve;
    if streaming then
      Instrument.event "engine.round"
        ~attrs:[ ("round", Json.Int round); ("coverage", Json.Float coverage) ]
  in
  let time =
    Instrument.span "simulate.gossip-run" (fun () -> gossip_time ~probe ?cap p)
  in
  { time; curve = Array.of_list (List.rev !curve) }

let per_round_coverage p ~rounds =
  let n = Gossip_topology.Digraph.n_vertices (Systolic.graph p) in
  let st = initial_state n in
  Array.init rounds (fun i ->
      apply_round st (Systolic.period_round p i);
      coverage_of st)
