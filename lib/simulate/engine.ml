module Bitset = Gossip_util.Bitset
module Protocol = Gossip_protocol.Protocol
module Systolic = Gossip_protocol.Systolic

(* Knowledge plus the reusable round scratch: generation-stamped marks
   replace the per-round hashtables the engine used to allocate, and a
   pool of snapshot buffers is blitted into instead of copied afresh.
   [known] counts set (vertex, item) bits incrementally so coverage is
   O(1) per query instead of a full state rescan. *)
type state = {
  n : int;
  know : Bitset.t array;
  mutable known : int;
  mutable gen : int;
  recv_gen : int array;
  snap_gen : int array;
  snap_slot : int array;
  mutable pool : Bitset.t array;
}

let initial_state n =
  {
    n;
    know = Array.init n (fun v -> Bitset.singleton n v);
    known = n;
    gen = 0;
    recv_gen = Array.make n 0;
    snap_gen = Array.make n 0;
    snap_slot = Array.make n 0;
    pool = [||];
  }

let knowledge st v = st.know.(v)
let items_known st = st.known

(* Fraction of the n² (vertex, item) pairs already known; guarded so the
   degenerate empty network reports full coverage instead of dividing by
   zero.  Single source of truth for every coverage figure below. *)
let coverage_of st =
  if st.n = 0 then 1.0
  else float_of_int st.known /. float_of_int (st.n * st.n)

let all_complete st = st.known = st.n * st.n

let grow_pool st =
  let old = Array.length st.pool in
  let fresh = Array.init (max 4 old) (fun _ -> Bitset.create st.n) in
  st.pool <- Array.append st.pool fresh

let apply_round st round =
  (* A round is a matching, so a vertex receives from at most one sender;
     the only same-round feedback is a full-duplex exchange (both opposite
     arcs active), which needs start-of-round snapshots of both sides.  We
     snapshot a sender only when it also appears as a receiver. *)
  st.gen <- st.gen + 1;
  let gen = st.gen in
  List.iter (fun (_, y) -> st.recv_gen.(y) <- gen) round;
  let used = ref 0 in
  List.iter
    (fun (x, _) ->
      if st.recv_gen.(x) = gen && st.snap_gen.(x) <> gen then begin
        if !used >= Array.length st.pool then grow_pool st;
        Bitset.blit ~src:st.know.(x) ~dst:st.pool.(!used);
        st.snap_slot.(x) <- !used;
        st.snap_gen.(x) <- gen;
        incr used
      end)
    round;
  List.iter
    (fun (x, y) ->
      let src =
        if st.snap_gen.(x) = gen then st.pool.(st.snap_slot.(x))
        else st.know.(x)
      in
      st.known <- st.known + Bitset.union_into_count ~src ~dst:st.know.(y))
    round

type outcome = {
  completed_at : int option;
  rounds_run : int;
  coverage : float;
}

let run_protocol p =
  let n = Gossip_topology.Digraph.n_vertices (Protocol.graph p) in
  let st = initial_state n in
  let completed = ref None in
  let i = ref 0 in
  let total = Protocol.length p in
  while !completed = None && !i < total do
    apply_round st (Protocol.round p !i);
    incr i;
    if all_complete st then completed := Some !i
  done;
  { completed_at = !completed; rounds_run = !i; coverage = coverage_of st }

let default_cap p =
  let n = Gossip_topology.Digraph.n_vertices (Systolic.graph p) in
  (8 * Systolic.period p * n) + 64

let run_until ?probe ~cap ~done_ p =
  let n = Gossip_topology.Digraph.n_vertices (Systolic.graph p) in
  let st = initial_state n in
  let result = ref None in
  let i = ref 0 in
  while !result = None && !i < cap do
    apply_round st (Systolic.period_round p !i);
    incr i;
    (match probe with
    | Some f -> f ~round:!i ~coverage:(coverage_of st)
    | None -> ());
    if done_ st then result := Some !i
  done;
  !result

let gossip_time ?probe ?cap p =
  let cap = match cap with Some c -> c | None -> default_cap p in
  run_until ?probe ~cap ~done_:all_complete p

let broadcast_time ?probe ?cap p ~src =
  let cap = match cap with Some c -> c | None -> default_cap p in
  run_until ?probe ~cap
    ~done_:(fun st -> Array.for_all (fun s -> Bitset.mem s src) st.know)
    p

type run = { time : int option; curve : float array }

let gossip_run ?cap p =
  let module Instrument = Gossip_util.Instrument in
  let module Json = Gossip_util.Json in
  let curve = ref [] in
  let streaming = Instrument.tracing () in
  let probe ~round ~coverage =
    curve := coverage :: !curve;
    if streaming then
      Instrument.event "engine.round"
        ~attrs:[ ("round", Json.Int round); ("coverage", Json.Float coverage) ]
  in
  let time =
    Instrument.span "simulate.gossip-run" (fun () -> gossip_time ~probe ?cap p)
  in
  { time; curve = Array.of_list (List.rev !curve) }

let per_round_coverage p ~rounds =
  let n = Gossip_topology.Digraph.n_vertices (Systolic.graph p) in
  let st = initial_state n in
  Array.init rounds (fun i ->
      apply_round st (Systolic.period_round p i);
      coverage_of st)
