(** Synchronous gossip simulation.

    The engine executes a protocol on the whispering-model semantics of
    Section 3: at the start every processor knows exactly its own item;
    when arc [(x, y)] is active at round [i], at the beginning of round
    [i+1] processor [y] additionally knows everything [x] knew at the
    beginning of round [i].  Because every round is a matching, a sender
    is never simultaneously a receiver except through the opposite arc in
    full-duplex mode, which exchanges start-of-round knowledge.

    Gossip completes at the first round after which every processor knows
    every item; broadcast from [src] completes when every processor knows
    [src]'s item. *)

type state
(** Mutable knowledge state: one {!Gossip_util.Bitset} per processor. *)

(** [initial_state n] — processor [v] knows exactly item [v]. *)
val initial_state : int -> state

(** [knowledge st v] is the (live, do not mutate) item set of [v]. *)
val knowledge : state -> int -> Gossip_util.Bitset.t

(** [items_known st] is the total count of (processor, item) pairs,
    maintained incrementally — O(1), never a state rescan. *)
val items_known : state -> int

(** [all_complete st] — every processor knows every item. *)
val all_complete : state -> bool

(** [apply_round st round] executes one matching synchronously, mutating
    [st].  The round must be a valid matching (sender sets are snapshotted
    only where an exchange demands it).  Steady state allocates nothing:
    marks and snapshot buffers are scratch owned by [st] and reused across
    rounds. *)
val apply_round : state -> Gossip_protocol.Protocol.round -> unit

(** Result of running a protocol to completion or exhaustion. *)
type outcome = {
  completed_at : int option;
      (** number of rounds after which gossip was complete, if it was *)
  rounds_run : int;
  coverage : float;  (** fraction of (processor, item) pairs known at end *)
}

(** [run_protocol p] executes all rounds of the finite protocol and
    reports the earliest completion round. *)
val run_protocol : Gossip_protocol.Protocol.t -> outcome

(** [gossip_time ?probe ?cap p] expands the systolic protocol [p] until
    gossip completes and returns the number of rounds, or [None] if still
    incomplete after [cap] rounds (default [8·s·n + 64]).  [probe], when
    given, observes every executed round (1-based) together with the
    coverage — the fraction of the [n²] (processor, item) pairs known
    after it — without perturbing the run. *)
val gossip_time :
  ?probe:(round:int -> coverage:float -> unit) ->
  ?cap:int ->
  Gossip_protocol.Systolic.t ->
  int option

(** [broadcast_time ?probe ?cap p ~src] — rounds until everyone knows
    [src]'s item under systolic protocol [p]. *)
val broadcast_time :
  ?probe:(round:int -> coverage:float -> unit) ->
  ?cap:int ->
  Gossip_protocol.Systolic.t ->
  src:int ->
  int option

(** A gossip run with its full dissemination record. *)
type run = { time : int option; curve : float array }

(** [gossip_run ?cap p] is {!gossip_time} plus observability: the
    coverage curve ([curve.(i)] = coverage after round [i+1]) is always
    recorded, the run executes under the ["simulate.gossip-run"]
    instrumentation span, and — when a trace sink is installed — every
    round streams an ["engine.round"] JSONL event carrying its coverage.
    Backs [gossip_lab simulate --json]. *)
val gossip_run : ?cap:int -> Gossip_protocol.Systolic.t -> run

(** [per_round_coverage p ~rounds] runs [rounds] rounds of the systolic
    protocol and returns the coverage fraction after each round — the
    dissemination curve used by the examples. *)
val per_round_coverage : Gossip_protocol.Systolic.t -> rounds:int -> float array
