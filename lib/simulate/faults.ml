module Systolic = Gossip_protocol.Systolic
module Schedule = Gossip_protocol.Schedule
module Prng = Gossip_util.Prng

type outcome = {
  completed_at : int option;
  drops : int;
  activations : int;
  failed_arcs : (int * int) list;
}

type model =
  | Iid of { p : float }
  | Permanent of { k : int }
  | Bursty of { p_fail : float; p_recover : float }

let model_name = function
  | Iid _ -> "iid"
  | Permanent _ -> "permanent"
  | Bursty _ -> "bursty"

let check_probability name v =
  if v < 0.0 || v > 1.0 then
    invalid_arg (Printf.sprintf "Faults: %s must be in [0, 1]" name)

let validate_model = function
  | Iid { p } -> check_probability "drop_probability" p
  | Permanent { k } -> if k < 0 then invalid_arg "Faults: k must be >= 0"
  | Bursty { p_fail; p_recover } ->
      check_probability "p_fail" p_fail;
      check_probability "p_recover" p_recover

(* Distinct arcs across one period, in first-appearance order (so the
   seeded shuffle below is reproducible across OCaml versions). *)
let period_arcs p =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  for i = 0 to Systolic.period p - 1 do
    List.iter
      (fun arc ->
        if not (Hashtbl.mem seen arc) then begin
          Hashtbl.add seen arc ();
          acc := arc :: !acc
        end)
      (Systolic.period_round p i)
  done;
  Array.of_list (List.rev !acc)

(* [decider model rng] — a per-activation drop predicate paired with the
   chosen permanently-failed arc set (empty for the transient models).
   Setup (the permanent-failure shuffle) draws from [rng] once, up front;
   the i.i.d. model draws from [rng] per activation — exactly the legacy
   draw order, so pre-model seeds reproduce byte-identical runs. *)
let decider p model rng =
  match model with
  | Iid { p = prob } -> ((fun _arc -> Prng.float rng 1.0 < prob), [])
  | Permanent { k } ->
      let arcs = period_arcs p in
      let m = Array.length arcs in
      if k > m then
        invalid_arg
          (Printf.sprintf
             "Faults: k = %d exceeds the period's %d distinct arcs (k <= m)" k
             m);
      Prng.shuffle rng arcs;
      let failed = Hashtbl.create (max 1 k) in
      Array.iteri (fun i arc -> if i < k then Hashtbl.add failed arc ()) arcs;
      let chosen = List.sort compare (Array.to_list (Array.sub arcs 0 k)) in
      ((fun arc -> Hashtbl.mem failed arc), chosen)
  | Bursty { p_fail; p_recover } ->
      (* Gilbert on/off chain per arc, each with its own derived stream:
         the state an arc is in depends only on (seed, arc, its own
         activation count), never on how arcs interleave. *)
      let states = Hashtbl.create 64 in
      let seed0 = Prng.int rng max_int in
      ( (fun arc ->
        let good, arng =
          match Hashtbl.find_opt states arc with
          | Some s -> s
          | None ->
              let s =
                (ref true, Prng.create (seed0 lxor (Hashtbl.hash arc * 0x9E3779B1)))
              in
              Hashtbl.add states arc s;
              s
        in
        (if !good then begin
           if Prng.float arng 1.0 < p_fail then good := false
         end
         else if Prng.float arng 1.0 < p_recover then good := true);
        not !good),
        [] )

let run ?cap p ~model ~seed =
  validate_model model;
  let g = Systolic.graph p in
  let n = Gossip_topology.Digraph.n_vertices g in
  let cap =
    match cap with Some c -> c | None -> (16 * Systolic.period p * n) + 64
  in
  let rng = Prng.create seed in
  let drop_arc, failed_arcs = decider p model rng in
  let st = Engine.initial_state n in
  let drops = ref 0 and activations = ref 0 in
  let completed = ref None in
  let i = ref 0 in
  while !completed = None && !i < cap do
    let round = Systolic.period_round p !i in
    let surviving =
      List.filter
        (fun arc ->
          incr activations;
          if drop_arc arc then begin
            incr drops;
            false
          end
          else true)
        round
    in
    (* dropping arcs from a matching keeps it a matching, so the
       synchronous engine applies unchanged *)
    Engine.apply_round st surviving;
    incr i;
    if Engine.all_complete st then completed := Some !i
  done;
  {
    completed_at = !completed;
    drops = !drops;
    activations = !activations;
    failed_arcs;
  }

(* --- faults on implicit arc streams ---------------------------------- *)

(* Stateless per-(round, arc) drop decision: an avalanche hash of
   (seed, round, u, v) against the probability threshold.  Unlike the
   PRNG deciders above it keeps no per-arc state, so it composes with
   schedules whose arc stream is never materialized and is safe to
   evaluate concurrently from worker domains; determinism is per
   activation, independent of evaluation order. *)
let iid_drop ~seed ~p =
  check_probability "drop_probability" p;
  fun ~round ~u ~v ->
    let h =
      seed
      + (round * 0x9E3779B97F4A7C)
      + (u * 0xBF58476D1CE4E5)
      + (v * 0x94D049BB133111)
    in
    let h = h lxor (h lsr 23) in
    let h = h * 0xFF51AFD7ED558C in
    let h = h lxor (h lsr 29) in
    let h = h * 0xC4CEB9FE1A85EC in
    let h = (h lxor (h lsr 26)) land max_int in
    float_of_int h /. float_of_int max_int < p

let implicit_gossip ?domains ?cap ?checkpoint_every ?items sched
    ~drop_probability ~seed =
  let sched =
    if drop_probability = 0.0 then sched
    else Schedule.with_drops sched ~drop:(iid_drop ~seed ~p:drop_probability)
  in
  let st = Chunked.create ?items (Schedule.n_vertices sched) in
  (st, Chunked.run ?domains ?cap ?checkpoint_every st sched)

let gossip_time_with_faults ?cap p ~drop_probability ~seed =
  if drop_probability < 0.0 || drop_probability > 1.0 then
    invalid_arg "Faults: drop_probability must be in [0, 1]";
  run ?cap p ~model:(Iid { p = drop_probability }) ~seed

type slowdown_point = {
  probability : float;
  mean : float option;
  completed : int;
  trials : int;
}

let slowdown_curve ?cap ?(trials = 5) p ~probabilities ~seed =
  List.map
    (fun prob ->
      let times = ref [] in
      for t = 1 to trials do
        match
          gossip_time_with_faults ?cap p ~drop_probability:prob
            ~seed:(seed + (t * 7919))
        with
        | { completed_at = Some time; _ } -> times := time :: !times
        | { completed_at = None; _ } -> ()
      done;
      let completed = List.length !times in
      let mean =
        match !times with
        | [] -> None
        | ts ->
            Some
              (float_of_int (List.fold_left ( + ) 0 ts)
              /. float_of_int completed)
      in
      { probability = prob; mean; completed; trials })
    probabilities

let point_to_json pt =
  let module J = Gossip_util.Json in
  J.Obj
    [
      ("probability", J.Float pt.probability);
      ("mean", match pt.mean with Some m -> J.Float m | None -> J.Null);
      ("completed", J.Int pt.completed);
      ("trials", J.Int pt.trials);
    ]

type curve_point = {
  cp_model : model;
  cp_mean : float option;
  cp_completed : int;
  cp_trials : int;
  cp_cap : int;
}

let curve ?cap ?(trials = 5) p ~models ~seed =
  (* resolve the default cap here so every point records the round budget
     it actually ran under (run's default, made explicit) *)
  let cap =
    match cap with
    | Some c -> c
    | None ->
        let n = Gossip_topology.Digraph.n_vertices (Systolic.graph p) in
        (16 * Systolic.period p * n) + 64
  in
  List.map
    (fun model ->
      let times = ref [] in
      for t = 1 to trials do
        match run ~cap p ~model ~seed:(seed + (t * 7919)) with
        | { completed_at = Some time; _ } -> times := time :: !times
        | { completed_at = None; _ } -> ()
      done;
      let completed = List.length !times in
      let mean =
        match !times with
        | [] -> None
        | ts ->
            Some
              (float_of_int (List.fold_left ( + ) 0 ts)
              /. float_of_int completed)
      in
      { cp_model = model; cp_mean = mean; cp_completed = completed;
        cp_trials = trials; cp_cap = cap })
    models

let model_params_json model =
  let module J = Gossip_util.Json in
  match model with
  | Iid { p } -> [ ("probability", J.Float p) ]
  | Permanent { k } -> [ ("k", J.Int k) ]
  | Bursty { p_fail; p_recover } ->
      [ ("p_fail", J.Float p_fail); ("p_recover", J.Float p_recover) ]

let curve_point_to_json pt =
  let module J = Gossip_util.Json in
  J.Obj
    (("model", J.Str (model_name pt.cp_model))
     :: model_params_json pt.cp_model
    @ [
        ( "mean",
          match pt.cp_mean with Some m -> J.Float m | None -> J.Null );
        ("completed", J.Int pt.cp_completed);
        ("trials", J.Int pt.cp_trials);
        ("cap", J.Int pt.cp_cap);
        ( "completed_fraction",
          J.Float
            (if pt.cp_trials = 0 then 0.0
             else float_of_int pt.cp_completed /. float_of_int pt.cp_trials) );
      ])
