module Systolic = Gossip_protocol.Systolic
module Prng = Gossip_util.Prng

type outcome = {
  completed_at : int option;
  drops : int;
  activations : int;
}

let gossip_time_with_faults ?cap p ~drop_probability ~seed =
  if drop_probability < 0.0 || drop_probability > 1.0 then
    invalid_arg "Faults: drop_probability must be in [0, 1]";
  let g = Systolic.graph p in
  let n = Gossip_topology.Digraph.n_vertices g in
  let cap =
    match cap with Some c -> c | None -> (16 * Systolic.period p * n) + 64
  in
  let rng = Prng.create seed in
  let st = Engine.initial_state n in
  let drops = ref 0 and activations = ref 0 in
  let completed = ref None in
  let i = ref 0 in
  while !completed = None && !i < cap do
    let round = Systolic.period_round p !i in
    let surviving =
      List.filter
        (fun _ ->
          incr activations;
          if Prng.float rng 1.0 < drop_probability then begin
            incr drops;
            false
          end
          else true)
        round
    in
    (* dropping arcs from a matching keeps it a matching, so the
       synchronous engine applies unchanged *)
    Engine.apply_round st surviving;
    incr i;
    if Engine.all_complete st then completed := Some !i
  done;
  { completed_at = !completed; drops = !drops; activations = !activations }

type slowdown_point = {
  probability : float;
  mean : float option;
  completed : int;
  trials : int;
}

let slowdown_curve ?cap ?(trials = 5) p ~probabilities ~seed =
  List.map
    (fun prob ->
      let times = ref [] in
      for t = 1 to trials do
        match
          gossip_time_with_faults ?cap p ~drop_probability:prob
            ~seed:(seed + (t * 7919))
        with
        | { completed_at = Some time; _ } -> times := time :: !times
        | { completed_at = None; _ } -> ()
      done;
      let completed = List.length !times in
      let mean =
        match !times with
        | [] -> None
        | ts ->
            Some
              (float_of_int (List.fold_left ( + ) 0 ts)
              /. float_of_int completed)
      in
      { probability = prob; mean; completed; trials })
    probabilities

let point_to_json pt =
  let module J = Gossip_util.Json in
  J.Obj
    [
      ("probability", J.Float pt.probability);
      ("mean", match pt.mean with Some m -> J.Float m | None -> J.Null);
      ("completed", J.Int pt.completed);
      ("trials", J.Int pt.trials);
    ]
