(** Fault injection for gossip protocols.

    A systolic protocol is attractive precisely because it is oblivious —
    the same period repeats regardless of what has been delivered — which
    also makes it naturally tolerant to transient link failures: a lost
    transmission is retried [s] rounds later by the very same arc.  This
    module drops each arc activation independently with probability [p]
    and measures the slowdown, giving the examples and benches a
    robustness axis the paper's model treats implicitly (its bounds hold
    a fortiori under failures, since failures only remove transmissions).

    Faults are deterministic given the seed. *)

type outcome = {
  completed_at : int option;  (** completion round under faults *)
  drops : int;  (** arc activations suppressed *)
  activations : int;  (** arc activations attempted *)
}

(** [gossip_time_with_faults ?cap p ~drop_probability ~seed] runs the
    systolic protocol with i.i.d. arc drops.
    @raise Invalid_argument unless [0 ≤ drop_probability ≤ 1]. *)
val gossip_time_with_faults :
  ?cap:int ->
  Gossip_protocol.Systolic.t ->
  drop_probability:float ->
  seed:int ->
  outcome

(** One drop probability on a slowdown curve.  The mean is taken over the
    {e completing} trials only, so it is meaningless without [completed]:
    at high drop rates a protocol can look "fast" because only its lucky
    runs finish.  [completed]/[trials] makes the survivorship explicit. *)
type slowdown_point = {
  probability : float;
  mean : float option;
      (** mean completion round over completing trials; [None] when no
          trial completed within the cap *)
  completed : int;  (** trials that completed within the cap *)
  trials : int;  (** trials attempted *)
}

(** [slowdown_curve ?cap ?trials p ~probabilities ~seed] — one
    {!slowdown_point} per drop probability ([trials] defaults to 5). *)
val slowdown_curve :
  ?cap:int ->
  ?trials:int ->
  Gossip_protocol.Systolic.t ->
  probabilities:float list ->
  seed:int ->
  slowdown_point list

(** [point_to_json pt] — [{probability, mean, completed, trials}] with
    [mean = null] when no trial completed; the element schema of the
    ["curve"] array in [gossip_lab faults --json]. *)
val point_to_json : slowdown_point -> Gossip_util.Json.t
