(** Fault injection for gossip protocols.

    A systolic protocol is attractive precisely because it is oblivious —
    the same period repeats regardless of what has been delivered — which
    also makes it naturally tolerant to transient link failures: a lost
    transmission is retried [s] rounds later by the very same arc.  This
    module drops arc activations under three fault models and measures
    the slowdown, giving the examples and benches a robustness axis the
    paper's model treats implicitly (its bounds hold a fortiori under
    failures, since failures only remove transmissions):

    - {e i.i.d.} — each activation is dropped independently with
      probability [p]; the transient-noise model;
    - {e permanent} — [k] distinct arcs of the period, chosen by a
      seeded shuffle, fail for the whole run; models broken links.  A
      systolic protocol has no routing around them, so this probes how
      much redundancy the period itself carries;
    - {e bursty} — each arc runs its own seeded on/off (Gilbert) chain:
      a good arc fails with [p_fail] per activation, a failed one
      recovers with [p_recover]; losses arrive in runs, the way real
      links misbehave.  Expected burst length is [1/p_recover]
      activations of that arc.

    Faults are deterministic given the seed; the bursty model derives
    one stream per arc, so an arc's state depends only on the seed and
    its own activation count, never on how rounds interleave arcs. *)

type outcome = {
  completed_at : int option;  (** completion round under faults *)
  drops : int;  (** arc activations suppressed *)
  activations : int;  (** arc activations attempted *)
  failed_arcs : (int * int) list;
      (** the permanently failed arcs the seeded shuffle chose, sorted —
          empty for the transient (i.i.d. / bursty) models.  Makes a
          stochastic run cross-checkable against an adversarial
          [Certifier] counterexample on the same arc universe. *)
}

type model =
  | Iid of { p : float }  (** independent per-activation drops *)
  | Permanent of { k : int }  (** [k] arcs removed for the whole run *)
  | Bursty of { p_fail : float; p_recover : float }
      (** per-arc on/off process; drops while "off" *)

(** The wire name of a model: ["iid"], ["permanent"], ["bursty"]. *)
val model_name : model -> string

(** [run ?cap p ~model ~seed] — one faulted run.  [cap] defaults to
    [16 · period · n + 64] rounds, after which [completed_at = None].
    With [Iid] this reproduces {!gossip_time_with_faults} draw for draw.
    [Permanent {k}] requires [k <= m] where [m] is the number of
    distinct arcs in one period (killing more arcs than the period
    carries is a spec error, not an empty run).
    @raise Invalid_argument on probabilities outside [0, 1], [k < 0] or
    [Permanent] [k] exceeding the period's distinct arc count. *)
val run :
  ?cap:int -> Gossip_protocol.Systolic.t -> model:model -> seed:int -> outcome

(** [iid_drop ~seed ~p] is a stateless i.i.d. drop predicate for
    {!Gossip_protocol.Schedule.with_drops}: activation [(u, v)] at
    (absolute) [round] is dropped with probability [p], decided by a
    deterministic hash of [(seed, round, u, v)].  No per-arc state, so
    it works on arc streams that are never materialized and is safe to
    evaluate from any worker domain.  The permanent and bursty models
    remain materialized-only — they need the period's arc set, or
    per-arc chains.
    @raise Invalid_argument unless [0 ≤ p ≤ 1]. *)
val iid_drop : seed:int -> p:float -> round:int -> u:int -> v:int -> bool

(** [implicit_gossip ?domains ?cap ?checkpoint_every ?items sched
    ~drop_probability ~seed] runs the chunked engine over [sched] with
    i.i.d. drops (the [p = 0] run is exactly the fault-free schedule)
    and returns the final state with the outcome. *)
val implicit_gossip :
  ?domains:int ->
  ?cap:int ->
  ?checkpoint_every:int ->
  ?items:int ->
  Gossip_protocol.Schedule.t ->
  drop_probability:float ->
  seed:int ->
  Chunked.state * Chunked.outcome

(** [gossip_time_with_faults ?cap p ~drop_probability ~seed] runs the
    systolic protocol with i.i.d. arc drops.
    @raise Invalid_argument unless [0 ≤ drop_probability ≤ 1]. *)
val gossip_time_with_faults :
  ?cap:int ->
  Gossip_protocol.Systolic.t ->
  drop_probability:float ->
  seed:int ->
  outcome

(** One drop probability on a slowdown curve.  The mean is taken over the
    {e completing} trials only, so it is meaningless without [completed]:
    at high drop rates a protocol can look "fast" because only its lucky
    runs finish.  [completed]/[trials] makes the survivorship explicit. *)
type slowdown_point = {
  probability : float;
  mean : float option;
      (** mean completion round over completing trials; [None] when no
          trial completed within the cap *)
  completed : int;  (** trials that completed within the cap *)
  trials : int;  (** trials attempted *)
}

(** [slowdown_curve ?cap ?trials p ~probabilities ~seed] — one
    {!slowdown_point} per drop probability ([trials] defaults to 5). *)
val slowdown_curve :
  ?cap:int ->
  ?trials:int ->
  Gossip_protocol.Systolic.t ->
  probabilities:float list ->
  seed:int ->
  slowdown_point list

(** [point_to_json pt] — [{probability, mean, completed, trials}] with
    [mean = null] when no trial completed; the element schema of the
    ["curve"] array in [gossip_lab faults --json] under the i.i.d.
    model. *)
val point_to_json : slowdown_point -> Gossip_util.Json.t

(** One fault model on a multi-model curve; same survivorship caveat as
    {!slowdown_point}. *)
type curve_point = {
  cp_model : model;
  cp_mean : float option;
  cp_completed : int;
  cp_trials : int;
  cp_cap : int;  (** the round budget every trial of the point ran under *)
}

(** [curve ?cap ?trials p ~models ~seed] — one {!curve_point} per model
    ([trials] defaults to 5; trial [t] runs with seed [seed + 7919·t],
    matching {!slowdown_curve}'s offsets). *)
val curve :
  ?cap:int ->
  ?trials:int ->
  Gossip_protocol.Systolic.t ->
  models:model list ->
  seed:int ->
  curve_point list

(** [curve_point_to_json pt] — the point with its model spelled out:
    [{"model": "iid", "probability": p, ...}] /
    [{"model": "permanent", "k": k, ...}] /
    [{"model": "bursty", "p_fail": f, "p_recover": r, ...}], each
    followed by [mean] / [completed] / [trials] / [cap] /
    [completed_fraction] — the cap and survivorship are explicit, so a
    capped point is distinguishable without comparing [completed] to
    [trials] by hand. *)
val curve_point_to_json : curve_point -> Gossip_util.Json.t
