type t = {
  name : string;
  n : int;
  slots : int;
  slot : int -> int -> int;
}

let make ~name ~n ~slots ~slot =
  if n < 0 then invalid_arg "Implicit.make: negative vertex count";
  if slots < 1 then invalid_arg "Implicit.make: slots must be >= 1";
  { name; n; slots; slot }

let name t = t.name
let n_vertices t = t.n
let slots t = t.slots

let slot t v k =
  if v < 0 || v >= t.n then invalid_arg "Implicit.slot: vertex out of range";
  if k < 0 || k >= t.slots then invalid_arg "Implicit.slot: slot out of range";
  t.slot v k

(* Deduplicated, self-free neighbor fill.  Degrees are tiny (<= slots),
   so the quadratic duplicate scan never allocates and beats sorting. *)
let fill_neighbors t v buf =
  if Array.length buf < t.slots then
    invalid_arg "Implicit.fill_neighbors: buffer shorter than slot count";
  let count = ref 0 in
  for k = 0 to t.slots - 1 do
    let u = t.slot v k in
    if u <> v && u >= 0 && u < t.n then begin
      let dup = ref false in
      for j = 0 to !count - 1 do
        if buf.(j) = u then dup := true
      done;
      if not !dup then begin
        buf.(!count) <- u;
        incr count
      end
    end
  done;
  !count

let neighbors t v =
  let buf = Array.make t.slots 0 in
  let c = fill_neighbors t v buf in
  Array.sub buf 0 c

let degree t v =
  let buf = Array.make t.slots 0 in
  fill_neighbors t v buf

(* --- generators ------------------------------------------------------ *)

let require name cond =
  if not cond then invalid_arg ("Implicit." ^ name ^ ": invalid dimension")

let ipow base e =
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * b) (b * b) (e lsr 1)
    else go acc (b * b) (e lsr 1)
  in
  go 1 base e

let cycle n =
  require "cycle" (n >= 3);
  make ~name:(Printf.sprintf "C(%d)" n) ~n ~slots:2 ~slot:(fun v k ->
      if k = 0 then (v + n - 1) mod n else (v + 1) mod n)

let hypercube dim =
  require "hypercube" (dim >= 1);
  let n = 1 lsl dim in
  make ~name:(Printf.sprintf "Q(%d)" dim) ~n ~slots:dim ~slot:(fun v k ->
      v lxor (1 lsl k))

let torus rows cols =
  require "torus" (rows >= 3 && cols >= 3);
  let n = rows * cols in
  make
    ~name:(Printf.sprintf "Torus(%dx%d)" rows cols)
    ~n ~slots:4
    ~slot:(fun v k ->
      let r = v / cols and c = v mod cols in
      match k with
      | 0 -> (r * cols) + ((c + cols - 1) mod cols)
      | 1 -> (r * cols) + ((c + 1) mod cols)
      | 2 -> (((r + rows - 1) mod rows) * cols) + c
      | _ -> (((r + 1) mod rows) * cols) + c)

(* CCC vertex (w, i) at index w*dim + i — exactly the layout of
   Extra_families.cube_connected_cycles. *)
let ccc dim =
  require "ccc" (dim >= 3);
  let n = dim * (1 lsl dim) in
  make ~name:(Printf.sprintf "CCC(%d)" dim) ~n ~slots:3 ~slot:(fun v k ->
      let w = v / dim and i = v mod dim in
      match k with
      | 0 -> (w * dim) + ((i + dim - 1) mod dim)
      | 1 -> (w * dim) + ((i + 1) mod dim)
      | _ -> ((w lxor (1 lsl i)) * dim) + i)

(* Symmetric de Bruijn: out-arcs shift a digit in (x -> (x mod D)·d + s),
   in-arcs shift one out (x -> x/d + t·D); the symmetric closure is their
   union.  Slots may collide with v (the constant words' self-loops) or
   with each other (dim = 1) — fill_neighbors reconciles, exactly like
   Digraph.make's duplicate merge does for the materialized family. *)
let de_bruijn d dim =
  require "de_bruijn" (d >= 2 && dim >= 1);
  let n = ipow d dim in
  let shift = ipow d (dim - 1) in
  make
    ~name:(Printf.sprintf "DB(%d,%d)" d dim)
    ~n ~slots:(2 * d)
    ~slot:(fun v k ->
      if k < d then (v mod shift * d) + k else (v / d) + ((k - d) * shift))

(* Symmetric Kautz via the string coding of Families: out-neighbors
   prepend an allowed symbol, in-neighbors append one. *)
let kautz d dim =
  require "kautz" (d >= 2 && dim >= 1);
  let n = (d + 1) * ipow d (dim - 1) in
  let slot v k =
    let s = Families.kautz_string_of_vertex ~d ~dim v in
    let t = Array.make dim 0 in
    if k < d then begin
      (* k-th symbol of {1..d+1} \ {s.(0)}, prepended *)
      Array.blit s 0 t 1 (dim - 1);
      let sym = if k + 1 < s.(0) then k + 1 else k + 2 in
      t.(0) <- sym
    end
    else begin
      (* (k-d)-th symbol of {1..d+1} \ {s.(dim-1)}, appended *)
      Array.blit s 1 t 0 (dim - 1);
      let j = k - d in
      let sym = if j + 1 < s.(dim - 1) then j + 1 else j + 2 in
      t.(dim - 1) <- sym
    end;
    Families.kautz_vertex_of_string ~d t
  in
  make ~name:(Printf.sprintf "K(%d,%d)" d dim) ~n ~slots:(2 * d) ~slot

(* --- bridges to the materialized world ------------------------------- *)

let of_digraph g =
  let n = Digraph.n_vertices g in
  let slots = max 1 (max (Digraph.max_out_degree g) 1) in
  make ~name:(Digraph.name g) ~n ~slots ~slot:(fun v k ->
      let nbrs = Digraph.out_neighbors g v in
      if k < Array.length nbrs then nbrs.(k) else v)

let materialize t =
  let arcs = ref [] in
  let buf = Array.make t.slots 0 in
  for v = t.n - 1 downto 0 do
    let c = fill_neighbors t v buf in
    for j = 0 to c - 1 do
      arcs := (v, buf.(j)) :: !arcs
    done
  done;
  Digraph.make ~name:t.name t.n !arcs

(* Structural agreement, not name agreement: same vertex count and the
   same arc set (Digraph.arcs is canonically sorted on both sides). *)
let agrees_with t g =
  t.n = Digraph.n_vertices g
  && (t.n = 0 || Digraph.arcs (materialize t) = Digraph.arcs g)

(* --- family resolution by target size -------------------------------- *)

let known_families =
  [ "de-bruijn"; "db"; "kautz"; "k"; "hypercube"; "torus"; "cycle"; "ccc" ]

let of_family ~family ~n ~degree =
  if n < 3 then Error "implicit families need n >= 3"
  else if degree < 2 || degree > 16 then Error "degree must be in [2, 16]"
  else
    let smallest_dim ~lo size_of =
      let rec go dim = if size_of dim >= n then dim else go (dim + 1) in
      go lo
    in
    match family with
    | "de-bruijn" | "db" ->
        let dim = smallest_dim ~lo:1 (fun dim -> ipow degree dim) in
        Ok (de_bruijn degree dim)
    | "kautz" | "k" ->
        let dim =
          smallest_dim ~lo:1 (fun dim -> (degree + 1) * ipow degree (dim - 1))
        in
        Ok (kautz degree dim)
    | "hypercube" ->
        let dim = smallest_dim ~lo:1 (fun dim -> 1 lsl dim) in
        Ok (hypercube dim)
    | "torus" ->
        let side = max 3 (int_of_float (ceil (sqrt (float_of_int n)))) in
        Ok (torus side side)
    | "cycle" -> Ok (cycle n)
    | "ccc" ->
        let dim = smallest_dim ~lo:3 (fun dim -> dim * (1 lsl dim)) in
        Ok (ccc dim)
    | other -> Error (Printf.sprintf "unknown implicit family %S" other)
