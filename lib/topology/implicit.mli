(** Implicit topologies: neighbor functions instead of adjacency arrays.

    The paper's lower bounds are stated for topology {e families} — de
    Bruijn, Kautz, hypercubes, tori, cycles, CCC — whose adjacency is a
    closed-form function of the vertex index.  This module represents such
    a network as [n] plus a {e slot} function [slot v k] enumerating the
    candidate neighbors of [v], so million-node instances never
    materialize a {!Digraph.t}: memory stays proportional to simulation
    state, and per-vertex adjacency is recomputed on the fly in O(1).

    Slots are a fixed-width raw view: a slot may return [v] itself (an
    absent neighbor, e.g. a de Bruijn self-loop word) or repeat another
    slot's value (e.g. [DB(d,1)]); {!fill_neighbors} reconciles both,
    matching exactly the self-loop rejection and duplicate merge that
    {!Digraph.make} performs for the materialized families.  The
    {!materialize} / {!agrees_with} bridge pins the two representations
    together on small instances. *)

type t

(** [make ~name ~n ~slots ~slot] wraps a slot function.  [slot v k] must
    be pure and total for [0 <= v < n], [0 <= k < slots]; out-of-universe
    values and [v] itself denote an absent neighbor.
    @raise Invalid_argument on [n < 0] or [slots < 1]. *)
val make : name:string -> n:int -> slots:int -> slot:(int -> int -> int) -> t

val name : t -> string
val n_vertices : t -> int

(** [slots t] is the fixed candidate-slot count (an upper bound on every
    vertex degree). *)
val slots : t -> int

(** [slot t v k] is the raw value of slot [k] of vertex [v]; may equal
    [v] (absent) or duplicate another slot.
    @raise Invalid_argument when [v] or [k] is out of range. *)
val slot : t -> int -> int -> int

(** [fill_neighbors t v buf] writes the deduplicated, self-free neighbors
    of [v] into [buf] (which must hold at least [slots t] entries) and
    returns their count.  Allocation-free — the chunked engine's hot
    path.
    @raise Invalid_argument when [buf] is too short. *)
val fill_neighbors : t -> int -> int array -> int

(** [neighbors t v] is a fresh array of the neighbors of [v]. *)
val neighbors : t -> int -> int array

(** [degree t v] is the deduplicated degree of [v]. *)
val degree : t -> int -> int

(** {1 Generators}

    Each generator agrees arc-for-arc with its materialized counterpart:
    {!cycle} with {!Families.cycle}, {!hypercube} with
    {!Families.hypercube}, {!torus} with {!Families.torus}, {!de_bruijn}
    with {!Families.de_bruijn}, {!kautz} with {!Families.kautz}, and
    {!ccc} with {!Extra_families.cube_connected_cycles} — the property
    {!agrees_with} checks. *)

val cycle : int -> t
val hypercube : int -> t
val torus : int -> int -> t
val ccc : int -> t
val de_bruijn : int -> int -> t
val kautz : int -> int -> t

(** {1 Bridges} *)

(** [of_digraph g] views a materialized digraph through the implicit
    interface (slots are its out-neighbor lists). *)
val of_digraph : Digraph.t -> t

(** [materialize t] builds the explicit {!Digraph.t} — small instances
    only; memory is O(arcs). *)
val materialize : t -> Digraph.t

(** [agrees_with t g] — same vertex count and same arc set.  The property
    check pinning implicit generators to the materialized families. *)
val agrees_with : t -> Digraph.t -> bool

(** {1 Family resolution} *)

(** Accepted [~family] names for {!of_family}. *)
val known_families : string list

(** [of_family ~family ~n ~degree] resolves a family name and a {e target}
    vertex count to the smallest instance with at least [n] vertices
    ([degree] parameterizes the string families; ignored elsewhere).
    Family names: ["de-bruijn"]/["db"], ["kautz"]/["k"], ["hypercube"],
    ["torus"], ["cycle"], ["ccc"]. *)
val of_family : family:string -> n:int -> degree:int -> (t, string) result
