let unreachable = max_int

let bfs_multi g srcs =
  let n = Digraph.n_vertices g in
  let dist = Array.make n unreachable in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Metrics.bfs_multi: source out of range";
      if dist.(s) = unreachable then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    srcs;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = dist.(u) in
    Array.iter
      (fun v ->
        if dist.(v) = unreachable then begin
          dist.(v) <- du + 1;
          Queue.add v queue
        end)
      (Digraph.out_neighbors g u)
  done;
  dist

let bfs g src = bfs_multi g [ src ]

let distance g u v =
  let dist = bfs g u in
  dist.(v)

let set_distance g v1 v2 =
  if v1 = [] || v2 = [] then invalid_arg "Metrics.set_distance: empty set";
  let dist = bfs_multi g v1 in
  List.fold_left (fun acc v -> min acc dist.(v)) unreachable v2

let eccentricity g v =
  let dist = bfs g v in
  Array.fold_left
    (fun acc d -> if d = unreachable || acc = unreachable then unreachable else max acc d)
    0 dist

let diameter_seq g =
  let n = Digraph.n_vertices g in
  let best = ref 0 in
  (try
     for v = 0 to n - 1 do
       let e = eccentricity g v in
       if e = unreachable then begin
         best := unreachable;
         raise Exit
       end;
       if e > !best then best := e
     done
   with Exit -> ());
  !best

let diameter ?domains g =
  let n = Digraph.n_vertices g in
  Gossip_util.Instrument.span "topology.diameter" (fun () ->
      (* tiny networks: the early-exit sequential sweep beats any domain
         spawn; otherwise one BFS per source, parallel over sources, with
         a fold keeping the sequential semantics (any unreachable vertex
         poisons the max) *)
      if n < 64 && domains = None then diameter_seq g
      else
        let eccs =
          Gossip_util.Parallel.init ?domains n (fun v -> eccentricity g v)
        in
        Array.fold_left
          (fun acc e ->
            if e = unreachable || acc = unreachable then unreachable
            else max acc e)
          0 eccs)

let diameter_sampled g ~samples ~seed =
  let n = Digraph.n_vertices g in
  if samples >= n then diameter g
  else begin
    let rng = Gossip_util.Prng.create seed in
    let best = ref 0 in
    for _ = 1 to samples do
      let v = Gossip_util.Prng.int rng n in
      let e = eccentricity g v in
      if e <> unreachable && e > !best then best := e
    done;
    !best
  end

let all_pairs ?domains g =
  Gossip_util.Parallel.init ?domains (Digraph.n_vertices g) (fun v -> bfs g v)
