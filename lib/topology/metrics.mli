(** Distance computations on digraphs.

    Lower bounds talk about distances twice: the diameter is the trivial
    gossip bound (some item must travel a full diameter), and the
    separator bounds of Theorem 5.1 need the minimum directed distance
    between two vertex sets.  Everything here is plain breadth-first
    search; arcs are unweighted rounds. *)

(** [unreachable] marks unreachable vertices in distance arrays
    ([max_int]). *)
val unreachable : int

(** [bfs g src] is the array of directed distances from [src]. *)
val bfs : Digraph.t -> int -> int array

(** [bfs_multi g srcs] is the array of distances from the nearest source. *)
val bfs_multi : Digraph.t -> int list -> int array

(** [distance g u v] is the directed distance, or [unreachable]. *)
val distance : Digraph.t -> int -> int -> int

(** [set_distance g v1 v2] is [min { dist(x, y) | x ∈ v1, y ∈ v2 }] — the
    quantity the ⟨α, l⟩-separator definition (Def. 3.5) bounds from below.
    @raise Invalid_argument if either set is empty. *)
val set_distance : Digraph.t -> int list -> int list -> int

(** [eccentricity g v] is the largest distance from [v]; [unreachable] if
    some vertex cannot be reached. *)
val eccentricity : Digraph.t -> int -> int

(** [diameter ?domains g] is the exact diameter by [n] BFS runs, one per
    source, parallel over sources ([domains] defaults to
    {!Gossip_util.Parallel.recommended_domains}); [unreachable] when not
    strongly connected. *)
val diameter : ?domains:int -> Digraph.t -> int

(** [diameter_sampled g ~samples ~seed] is a lower estimate of the
    diameter from BFS at randomly sampled sources; exact when
    [samples >= n]. *)
val diameter_sampled : Digraph.t -> samples:int -> seed:int -> int

(** [all_pairs ?domains g] is the full distance matrix [d.(u).(v)],
    parallel over sources; quadratic memory, intended for small test
    networks. *)
val all_pairs : ?domains:int -> Digraph.t -> int array array
