type t = { n : int; words : int array }

let bits_per_word = 63
(* We keep one bit of each OCaml int unused so the representation is
   identical on every platform dune targets here. *)

let words_for n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; words = Array.make (max 1 (words_for n)) 0 }

let capacity s = s.n

let check s i =
  if i < 0 || i >= s.n then
    invalid_arg (Printf.sprintf "Bitset: element %d outside universe %d" i s.n)

let add s i =
  check s i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) <- s.words.(w) lor (1 lsl b)

let remove s i =
  check s i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) <- s.words.(w) land lnot (1 lsl b)

let mem s i =
  if i < 0 || i >= s.n then false
  else
    let w = i / bits_per_word and b = i mod bits_per_word in
    s.words.(w) land (1 lsl b) <> 0

let singleton n i =
  let s = create n in
  add s i;
  s

let union_into ~src ~dst =
  if src.n <> dst.n then invalid_arg "Bitset.union_into: capacity mismatch";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let union_into_count ~src ~dst =
  if src.n <> dst.n then
    invalid_arg "Bitset.union_into_count: capacity mismatch";
  let added = ref 0 in
  for w = 0 to Array.length dst.words - 1 do
    let d = dst.words.(w) in
    let u = d lor src.words.(w) in
    if u <> d then begin
      added := !added + popcount (u land lnot d);
      dst.words.(w) <- u
    end
  done;
  !added

let blit ~src ~dst =
  if src.n <> dst.n then invalid_arg "Bitset.blit: capacity mismatch";
  Array.blit src.words 0 dst.words 0 (Array.length dst.words)

let copy s = { n = s.n; words = Array.copy s.words }

let union a b =
  let r = copy a in
  union_into ~src:b ~dst:r;
  r

let inter a b =
  if a.n <> b.n then invalid_arg "Bitset.inter: capacity mismatch";
  let r = create a.n in
  for w = 0 to Array.length r.words - 1 do
    r.words.(w) <- a.words.(w) land b.words.(w)
  done;
  r

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let is_full s = cardinal s = s.n

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let equal a b = a.n = b.n && a.words = b.words

let subset a b =
  a.n = b.n
  && Array.for_all2 (fun wa wb -> wa land lnot wb = 0) a.words b.words

let iter f s =
  for i = 0 to s.n - 1 do
    if mem s i then f i
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n xs =
  let s = create n in
  List.iter (add s) xs;
  s

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (elements s)
