(** Fixed-capacity bitsets.

    Knowledge sets in gossip simulations are subsets of the [n] information
    items, one per processor, so the whole simulator state is an array of
    [n] bitsets of capacity [n].  This module provides a compact array-of-
    words representation tuned for the two hot operations of the simulator:
    in-place union and full-set detection. *)

type t

(** [create n] is the empty set over the universe [{0, ..., n-1}].
    @raise Invalid_argument if [n < 0]. *)
val create : int -> t

(** [capacity s] is the size of the universe [s] was created with. *)
val capacity : t -> int

(** [singleton n i] is the set [{i}] over universe size [n]. *)
val singleton : int -> int -> t

(** [add s i] inserts element [i] in place.
    @raise Invalid_argument if [i] is outside the universe. *)
val add : t -> int -> unit

(** [remove s i] deletes element [i] in place. *)
val remove : t -> int -> unit

(** [mem s i] tests membership. Elements outside the universe are absent. *)
val mem : t -> int -> bool

(** [union_into ~src ~dst] adds every element of [src] to [dst] in place.
    The two sets must share the same capacity. *)
val union_into : src:t -> dst:t -> unit

(** [union_into_count ~src ~dst] is {!union_into} fused with the count of
    elements of [src] that were {e not} already in [dst] — the simulation
    engine's incremental knowledge bookkeeping.  One pass, no allocation. *)
val union_into_count : src:t -> dst:t -> int

(** [blit ~src ~dst] overwrites [dst] with the contents of [src] in place
    (same capacity required) — reusable snapshot buffers for the engine. *)
val blit : src:t -> dst:t -> unit

(** [union a b] is a fresh set holding the union of [a] and [b]. *)
val union : t -> t -> t

(** [inter a b] is a fresh set holding the intersection. *)
val inter : t -> t -> t

(** [cardinal s] is the number of elements in [s]. *)
val cardinal : t -> int

(** [is_full s] is [true] iff [s] contains its whole universe. *)
val is_full : t -> bool

(** [is_empty s] is [true] iff [s] has no element. *)
val is_empty : t -> bool

(** [copy s] is an independent copy of [s]. *)
val copy : t -> t

(** [equal a b] is set equality (capacities must match for [true]). *)
val equal : t -> t -> bool

(** [subset a b] is [true] iff every element of [a] belongs to [b]. *)
val subset : t -> t -> bool

(** [iter f s] applies [f] to every element in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f s init] folds over elements in increasing order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [elements s] lists the elements in increasing order. *)
val elements : t -> int list

(** [of_list n xs] is the set over universe [n] holding the elements of
    [xs]. *)
val of_list : int -> int list -> t

(** [pp] prints as [{e1, e2, ...}]. *)
val pp : Format.formatter -> t -> unit
