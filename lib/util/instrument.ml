external monotonic_ns : unit -> (int64[@unboxed])
  = "gossip_monotonic_ns" "gossip_monotonic_ns_unboxed"
[@@noalloc]

let now_ns = monotonic_ns

let env_truthy name =
  match Sys.getenv_opt name with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let enabled_flag = Atomic.make (env_truthy "GOSSIP_TRACE")
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

type span_stat = {
  span_name : string;
  calls : int;
  total_s : float;
  max_s : float;
}

type histogram = {
  hist_name : string;
  upper_bounds : float array;
  bucket_counts : int array;
  count : int;
  sum : float;
  min_value : float;
  max_value : float;
}

(* Mutable accumulator behind a {!histogram} snapshot. *)
type hist_acc = {
  bounds : float array;
  counts : int array;
  mutable n : int;
  mutable total : float;
  mutable lo : float;
  mutable hi : float;
}

(* Half-decade latency buckets, 1 µs .. 10 s.  Span durations and any
   other [observe] without explicit bounds land here. *)
let latency_bounds =
  [|
    1e-6; 3.16e-6; 1e-5; 3.16e-5; 1e-4; 3.16e-4; 1e-3; 3.16e-3; 1e-2;
    3.16e-2; 1e-1; 3.16e-1; 1.0; 3.16; 10.0;
  |]

(* All accumulators live behind one mutex: span exits, counter bumps and
   trace lines are rare relative to the work they measure, so contention
   is not a concern even from worker domains. *)
let lock = Mutex.create ()
let span_tbl : (string, span_stat) Hashtbl.t = Hashtbl.create 32
let counter_tbl : (string, int) Hashtbl.t = Hashtbl.create 32
let gauge_tbl : (string, float) Hashtbl.t = Hashtbl.create 16
let hist_tbl : (string, hist_acc) Hashtbl.t = Hashtbl.create 32

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* {2 JSONL trace sink} *)

let sink : out_channel option Atomic.t = Atomic.make None

(* Recent-event ring: a bounded in-memory copy of the event stream that
   the [trace_pull] wire op drains fleet-wide.  Guarded by [lock] like
   the sink; [ring_on] is the cheap atomic the hot path polls. *)
let ring_on = Atomic.make false
let ring_buf : Json.t array ref = ref [||]
let ring_cap = ref 0
let ring_pos = ref 0 (* next write slot *)
let ring_len = ref 0
let ring_overwritten = ref 0

let set_ring_capacity n =
  locked (fun () ->
      if n <= 0 then begin
        Atomic.set ring_on false;
        ring_buf := [||];
        ring_cap := 0;
        ring_pos := 0;
        ring_len := 0;
        ring_overwritten := 0
      end
      else begin
        ring_buf := Array.make n Json.Null;
        ring_cap := n;
        ring_pos := 0;
        ring_len := 0;
        ring_overwritten := 0;
        Atomic.set ring_on true
      end)

let ring_drain ?max () =
  locked (fun () ->
      let len = !ring_len in
      let keep =
        match max with
        | Some m when m < 0 -> 0
        | Some m when m < len -> m
        | _ -> len
      in
      let cap = !ring_cap in
      (* oldest-first chronological order, newest [keep] events *)
      let events =
        List.init keep (fun i ->
            let back = keep - i in
            !ring_buf.((!ring_pos - back + (2 * cap)) mod cap))
      in
      let dropped = !ring_overwritten + (len - keep) in
      if cap > 0 then Array.fill !ring_buf 0 cap Json.Null;
      ring_pos := 0;
      ring_len := 0;
      ring_overwritten := 0;
      (events, dropped))

(* Per-domain streaming suppression: the head-sampling verdict for
   sampled-out requests.  Read only after the atomic switches say some
   sink is live, so the untraced hot path never touches domain-local
   storage.  Like the ambient attributes this is domain-local, not
   thread-local; on a domain running several sys-threads (the server's
   readers) a suppression window can briefly leak across interleaved
   threads — the cost is a stray trace line, never corruption. *)
let suppress_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let sampled_out () = Domain.DLS.get suppress_key

let with_sampled_out f =
  let prev = Domain.DLS.get suppress_key in
  Domain.DLS.set suppress_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set suppress_key prev) f

let tracing () =
  (Atomic.get sink <> None || Atomic.get ring_on)
  && not (Domain.DLS.get suppress_key)

let close_sink () =
  match Atomic.exchange sink None with
  | None -> ()
  | Some oc -> ( try flush oc; close_out oc with Sys_error _ -> ())

let set_trace_file path =
  close_sink ();
  match path with
  | None -> ()
  | Some p -> Atomic.set sink (Some (open_out p))

let () = at_exit close_sink

let domain_id () = (Domain.self () :> int)

(* Ambient attributes: a per-domain stack of attribute lists that every
   span/event emitted by that domain attaches automatically.  The
   serving layer's worker domains scope a request's [req_id]/[op]/[conn]
   here, so the spans of artifact builders deep inside the analysis
   pipeline tag themselves with the request that triggered them without
   any plumbing.  Domain-local, not thread-local: only safe to set from
   a domain running a single thread (worker domains are). *)
let ambient_key : (string * Json.t) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let ambient_attrs () = Domain.DLS.get ambient_key

let with_ambient_attrs attrs f =
  let prev = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key (attrs @ prev);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key prev) f

(* Process-wide attributes stamped on every emitted line — the node id,
   in a cluster member.  The fleet stitcher needs each line to name the
   process it came from even after files are concatenated. *)
let global_attrs_ref : (string * Json.t) list Atomic.t = Atomic.make []

let set_global_attrs attrs = Atomic.set global_attrs_ref attrs
let global_attrs () = Atomic.get global_attrs_ref

let emit fields =
  let oc = Atomic.get sink in
  let ringing = Atomic.get ring_on in
  if oc <> None || ringing then begin
    let j = Json.Obj fields in
    let line = match oc with Some _ -> Json.to_string j | None -> "" in
    locked (fun () ->
        (match oc with
        | Some oc ->
            output_string oc line;
            output_char oc '\n';
            flush oc
        | None -> ());
        if ringing && !ring_cap > 0 then begin
          if !ring_len = !ring_cap then incr ring_overwritten
          else incr ring_len;
          !ring_buf.(!ring_pos) <- j;
          ring_pos := (!ring_pos + 1) mod !ring_cap
        end)
  end

(* Wall clock for event timestamps only; all durations are monotonic.
   On a name clash, explicit attributes win over ambient ones, which
   win over the global ones. *)
let base_fields ev name attrs =
  let ambient =
    match Domain.DLS.get ambient_key with
    | [] -> []
    | amb -> List.filter (fun (k, _) -> not (List.mem_assoc k attrs)) amb
  in
  let globals =
    match Atomic.get global_attrs_ref with
    | [] -> []
    | glob ->
        List.filter
          (fun (k, _) ->
            not (List.mem_assoc k attrs || List.mem_assoc k ambient))
          glob
  in
  ("ev", Json.Str ev)
  :: ("name", Json.Str name)
  :: ("ts", Json.Float (Unix.gettimeofday ()))
  :: ("mono_ns", Json.Int (Int64.to_int (monotonic_ns ())))
  :: ("dom", Json.Int (domain_id ()))
  :: (attrs @ ambient @ globals)

let event ?(attrs = []) name =
  if tracing () then emit (base_fields "point" name attrs)

(* {2 Metrics registry (unconditional)} *)

let add name k =
  locked (fun () ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt counter_tbl name) in
      Hashtbl.replace counter_tbl name (prev + k))

let set_gauge name v = locked (fun () -> Hashtbl.replace gauge_tbl name v)

let observe_locked ?(bounds = latency_bounds) name v =
  let acc =
    match Hashtbl.find_opt hist_tbl name with
    | Some a -> a
    | None ->
        let a =
          {
            bounds;
            counts = Array.make (Array.length bounds + 1) 0;
            n = 0;
            total = 0.0;
            lo = Float.infinity;
            hi = Float.neg_infinity;
          }
        in
        Hashtbl.add hist_tbl name a;
        a
  in
  let nb = Array.length acc.bounds in
  let rec bucket i = if i >= nb || v <= acc.bounds.(i) then i else bucket (i + 1) in
  acc.counts.(bucket 0) <- acc.counts.(bucket 0) + 1;
  acc.n <- acc.n + 1;
  acc.total <- acc.total +. v;
  acc.lo <- Float.min acc.lo v;
  acc.hi <- Float.max acc.hi v

let observe ?bounds name v = locked (fun () -> observe_locked ?bounds name v)

let snapshot_hist name (a : hist_acc) =
  {
    hist_name = name;
    upper_bounds = Array.copy a.bounds;
    bucket_counts = Array.copy a.counts;
    count = a.n;
    sum = a.total;
    min_value = a.lo;
    max_value = a.hi;
  }

let histograms () =
  locked (fun () ->
      Hashtbl.fold (fun k a acc -> snapshot_hist k a :: acc) hist_tbl [])
  |> List.sort (fun a b -> compare a.hist_name b.hist_name)

let histogram name =
  locked (fun () ->
      Option.map (snapshot_hist name) (Hashtbl.find_opt hist_tbl name))

(* Linear interpolation within the bucket holding the q-th rank; the
   first bucket starts at the observed minimum and the overflow bucket
   ends at the observed maximum, so the estimate is always within the
   observed range. *)
let quantile h q =
  if h.count = 0 then Float.nan
  else begin
    let target = q *. float_of_int h.count in
    let nb = Array.length h.upper_bounds in
    let rec go i cum =
      if i > nb then h.max_value
      else
        let c = h.bucket_counts.(i) in
        let cum' = cum +. float_of_int c in
        if c > 0 && cum' >= target then begin
          let lo = if i = 0 then h.min_value else h.upper_bounds.(i - 1) in
          let hi = if i = nb then h.max_value else h.upper_bounds.(i) in
          let frac = (target -. cum) /. float_of_int c in
          Float.min h.max_value (Float.max h.min_value (lo +. ((hi -. lo) *. frac)))
        end
        else go (i + 1) cum'
    in
    go 0 0.0
  end

(* {2 Spans} *)

let record_span name dt =
  locked (fun () ->
      let prev =
        match Hashtbl.find_opt span_tbl name with
        | Some s -> s
        | None -> { span_name = name; calls = 0; total_s = 0.0; max_s = 0.0 }
      in
      Hashtbl.replace span_tbl name
        {
          prev with
          calls = prev.calls + 1;
          total_s = prev.total_s +. dt;
          max_s = Float.max prev.max_s dt;
        };
      observe_locked name dt)

(* Cumulative words allocated by the calling domain (minor + direct
   major; promotions counted once).  Read only on the streamed path —
   the quick_stat cost must never reach untraced spans.  The minor part
   comes from [Gc.minor_words] (a live young-pointer read) because
   [quick_stat]'s own counter lags behind by up to a minor heap. *)
let allocated_words () =
  let s = Gc.quick_stat () in
  Gc.minor_words () +. s.Gc.major_words -. s.Gc.promoted_words

let span ?(attrs = []) name f =
  let streamed = tracing () in
  if not (enabled () || streamed) then f ()
  else begin
    if streamed then emit (base_fields "span_begin" name attrs);
    (* after the span_begin emit, so its own JSON rendering is not
       charged to the span's allocation delta *)
    let alloc0 = if streamed then allocated_words () else 0.0 in
    let t0 = monotonic_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dt_ns = Int64.sub (monotonic_ns ()) t0 in
        record_span name (Int64.to_float dt_ns /. 1e9);
        if streamed then begin
          let dw = Float.max 0.0 (allocated_words () -. alloc0) in
          emit
            (base_fields "span_end" name
               (("dur_ns", Json.Int (Int64.to_int dt_ns))
               :: ("alloc_words", Json.Int (int_of_float dw))
               :: attrs))
        end)
      f
  end

(* {2 Reading back} *)

let spans () =
  locked (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) span_tbl [])
  |> List.sort (fun a b ->
         match compare b.total_s a.total_s with
         | 0 -> compare a.span_name b.span_name
         | c -> c)

let counters () =
  locked (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) counter_tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let gauges () =
  locked (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauge_tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset () =
  locked (fun () ->
      Hashtbl.reset span_tbl;
      Hashtbl.reset counter_tbl;
      Hashtbl.reset gauge_tbl;
      Hashtbl.reset hist_tbl)

(* {2 Rendering} *)

let span_quantiles name =
  match histogram name with
  | Some h when h.count > 0 -> (quantile h 0.5, quantile h 0.95)
  | _ -> (Float.nan, Float.nan)

let pp_summary ppf () =
  let ss = spans () and cs = counters () and gs = gauges () in
  if ss = [] && cs = [] && gs = [] then
    Format.fprintf ppf "instrumentation: nothing recorded@."
  else begin
    if ss <> [] then begin
      Format.fprintf ppf "%-36s %8s %12s %12s %12s %12s@." "span" "calls"
        "total ms" "max ms" "p50 ms" "p95 ms";
      List.iter
        (fun s ->
          let p50, p95 = span_quantiles s.span_name in
          Format.fprintf ppf "%-36s %8d %12.3f %12.3f %12.3f %12.3f@."
            s.span_name s.calls (1000.0 *. s.total_s) (1000.0 *. s.max_s)
            (1000.0 *. p50) (1000.0 *. p95))
        ss
    end;
    if cs <> [] then begin
      if ss <> [] then Format.pp_print_newline ppf ();
      Format.fprintf ppf "%-36s %8s@." "counter" "value";
      List.iter (fun (k, v) -> Format.fprintf ppf "%-36s %8d@." k v) cs
    end;
    if gs <> [] then begin
      if ss <> [] || cs <> [] then Format.pp_print_newline ppf ();
      Format.fprintf ppf "%-36s %12s@." "gauge" "value";
      List.iter (fun (k, v) -> Format.fprintf ppf "%-36s %12.3f@." k v) gs
    end
  end

let summary_string () = Format.asprintf "%a" pp_summary ()

let finite_or_null f = if Float.is_nan f || Float.abs f = Float.infinity then Json.Null else Json.Float f

let histogram_json h =
  let buckets =
    List.init
      (Array.length h.bucket_counts)
      (fun i ->
        Json.Obj
          [
            ( "le",
              if i < Array.length h.upper_bounds then
                Json.Float h.upper_bounds.(i)
              else Json.Str "inf" );
            ("count", Json.Int h.bucket_counts.(i));
          ])
  in
  Json.Obj
    [
      ("name", Json.Str h.hist_name);
      ("count", Json.Int h.count);
      ("sum", finite_or_null h.sum);
      ("min", finite_or_null h.min_value);
      ("max", finite_or_null h.max_value);
      ("p50", finite_or_null (quantile h 0.5));
      ("p95", finite_or_null (quantile h 0.95));
      ("buckets", Json.List buckets);
    ]

let metrics_json () =
  let span_json s =
    let p50, p95 = span_quantiles s.span_name in
    Json.Obj
      [
        ("name", Json.Str s.span_name);
        ("calls", Json.Int s.calls);
        ("total_s", Json.Float s.total_s);
        ("max_s", Json.Float s.max_s);
        ("p50_s", finite_or_null p50);
        ("p95_s", finite_or_null p95);
      ]
  in
  Json.Obj
    [
      ("spans", Json.List (List.map span_json (spans ())));
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters ())) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (gauges ())) );
      ("histograms", Json.List (List.map histogram_json (histograms ())));
    ]

(* Install the environment-selected trace file at program start. *)
let () =
  match Sys.getenv_opt "GOSSIP_TRACE_FILE" with
  | Some p when p <> "" -> set_trace_file (Some p)
  | _ -> ()
