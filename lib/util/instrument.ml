let env_enabled =
  match Sys.getenv_opt "GOSSIP_TRACE" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let enabled_flag = Atomic.make env_enabled
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

type span_stat = {
  span_name : string;
  calls : int;
  total_s : float;
  max_s : float;
}

(* All accumulators live behind one mutex: span exits and counter bumps
   are rare relative to the work they measure, so contention is not a
   concern even from worker domains. *)
let lock = Mutex.create ()
let span_tbl : (string, span_stat) Hashtbl.t = Hashtbl.create 32
let counter_tbl : (string, int) Hashtbl.t = Hashtbl.create 32

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let record_span name dt =
  locked (fun () ->
      let prev =
        match Hashtbl.find_opt span_tbl name with
        | Some s -> s
        | None -> { span_name = name; calls = 0; total_s = 0.0; max_s = 0.0 }
      in
      Hashtbl.replace span_tbl name
        {
          prev with
          calls = prev.calls + 1;
          total_s = prev.total_s +. dt;
          max_s = Float.max prev.max_s dt;
        })

let span name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> record_span name (Unix.gettimeofday () -. t0))
      f
  end

let add name k =
  if enabled () then
    locked (fun () ->
        let prev = Option.value ~default:0 (Hashtbl.find_opt counter_tbl name) in
        Hashtbl.replace counter_tbl name (prev + k))

let spans () =
  locked (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) span_tbl [])
  |> List.sort (fun a b -> compare b.total_s a.total_s)

let counters () =
  locked (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) counter_tbl [])
  |> List.sort compare

let reset () =
  locked (fun () ->
      Hashtbl.reset span_tbl;
      Hashtbl.reset counter_tbl)

let pp_summary ppf () =
  let ss = spans () and cs = counters () in
  if ss = [] && cs = [] then
    Format.fprintf ppf "instrumentation: nothing recorded@."
  else begin
    if ss <> [] then begin
      Format.fprintf ppf "%-36s %8s %12s %12s@." "span" "calls" "total ms"
        "max ms";
      List.iter
        (fun s ->
          Format.fprintf ppf "%-36s %8d %12.3f %12.3f@." s.span_name s.calls
            (1000.0 *. s.total_s) (1000.0 *. s.max_s))
        ss
    end;
    if cs <> [] then begin
      if ss <> [] then Format.pp_print_newline ppf ();
      Format.fprintf ppf "%-36s %8s@." "counter" "value";
      List.iter (fun (k, v) -> Format.fprintf ppf "%-36s %8d@." k v) cs
    end
  end

let summary_string () = Format.asprintf "%a" pp_summary ()
