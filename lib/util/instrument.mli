(** Lightweight instrumentation: named spans, timers and counters.

    The analysis pipeline measures itself through this module: every
    heavy artifact build (delay digraph expansion, norm evaluation, BFS
    diameter sweep, certificate search) runs inside a {!span}, and the
    memoizing context counts its cache hits and misses with {!add}.

    Recording is off by default and costs one branch per call site.  It
    turns on when the environment variable [GOSSIP_TRACE] is set to
    [1]/[true]/[yes]/[on] at program start, or programmatically with
    {!set_enabled} (the [--trace] flag of [gossip_lab]).  All state is
    global, mutex-protected — spans may be entered from worker domains —
    and cleared by {!reset}. *)

(** [enabled ()] — is recording currently on? *)
val enabled : unit -> bool

(** [set_enabled b] switches recording on or off at runtime. *)
val set_enabled : bool -> unit

(** [span name f] runs [f ()] and, when enabled, adds its wall-clock
    duration to the accumulator for [name].  Exceptions propagate; the
    time until the raise is still recorded.  Nesting is fine — each name
    accumulates independently. *)
val span : string -> (unit -> 'a) -> 'a

(** [add name k] adds [k] to counter [name] (created at 0), when
    enabled.  Use for event counts: cache hits, evictions, spawned
    domains. *)
val add : string -> int -> unit

(** Accumulated statistics of one span name. *)
type span_stat = {
  span_name : string;
  calls : int;  (** completed invocations *)
  total_s : float;  (** summed wall-clock seconds *)
  max_s : float;  (** longest single invocation *)
}

(** [spans ()] — all span accumulators, sorted by descending total
    time.  Empty when nothing was recorded. *)
val spans : unit -> span_stat list

(** [counters ()] — all counters, sorted by name. *)
val counters : unit -> (string * int) list

(** [reset ()] clears every span and counter (the enabled flag is
    untouched). *)
val reset : unit -> unit

(** [pp_summary ppf ()] prints a two-part formatted report: span table
    (name, calls, total ms, max ms) then counter table.  Prints a
    placeholder line when nothing was recorded. *)
val pp_summary : Format.formatter -> unit -> unit

(** [summary_string ()] is {!pp_summary} rendered to a string. *)
val summary_string : unit -> string
