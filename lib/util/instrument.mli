(** Structured telemetry: spans, events, counters, gauges, histograms.

    The analysis pipeline measures itself through this module: every
    heavy artifact build (delay digraph expansion, norm evaluation, BFS
    diameter sweep, certificate search) runs inside a {!span}, the
    memoizing context counts its cache traffic with {!add}, and the
    simulation engine streams its per-round coverage curve with
    {!event}.

    Two independent switches control what happens:

    - {b Aggregation} ({!enabled}, [GOSSIP_TRACE=1], the [--trace] flag
      of [gossip_lab]): when on, spans accumulate per-name call counts,
      total/max durations and a latency {e histogram} (p50/p95 in
      {!pp_summary}).  Span durations are measured on the {e monotonic}
      clock, so wall-clock steps (NTP) can never produce negative or
      inflated times.
    - {b Streaming} ({!set_trace_file}, [GOSSIP_TRACE_FILE], the
      [--trace-out] flag): when a trace file is installed, every span
      emits [span_begin]/[span_end] events and {!event} emits [point]
      events, one compact JSON object per line (JSONL).  Each line
      carries a wall-clock timestamp [ts], a monotonic [mono_ns], the
      worker domain id [dom] and the caller's attributes; [span_end]
      additionally carries the monotonic [dur_ns] and the words the
      calling domain allocated inside the span ([alloc_words] — read
      from the GC counters only on this streamed path, so the untraced
      hot path pays nothing).  Streaming implies span aggregation for
      the streamed spans.  See [doc/telemetry.md] for the schema.

    The {e metrics registry} — counters ({!add}), gauges ({!set_gauge})
    and histograms ({!observe}) — records {b unconditionally}: cache
    hit/miss accounting must not vanish just because tracing is off.
    Only span {e timing} is gated on the switches above.

    All state is global and mutex-protected — spans and events may be
    entered from worker domains (trace lines never interleave) — and
    cleared by {!reset}. *)

(** {1 Switches} *)

(** [enabled ()] — is span aggregation currently on? *)
val enabled : unit -> bool

(** [set_enabled b] switches span aggregation on or off at runtime. *)
val set_enabled : bool -> unit

(** [set_trace_file (Some path)] opens [path] (truncating) and streams
    JSONL events to it until [set_trace_file None] (which flushes and
    closes; also done automatically at exit).  The environment variable
    [GOSSIP_TRACE_FILE] installs a trace file at program start. *)
val set_trace_file : string option -> unit

(** [tracing ()] — is some event sink live (a JSONL trace file or the
    recent-event ring) and streaming not suppressed for this domain
    ({!with_sampled_out})?  Cheap — two atomic reads when everything is
    off; poll it before building per-round event attributes in hot
    loops. *)
val tracing : unit -> bool

(** [set_ring_capacity n] installs a bounded in-memory ring that keeps
    the last [n] emitted events (in addition to any trace file); the
    [trace_pull] wire op drains it so a fleet's recent spans can be
    collected without per-node files.  [n <= 0] disables and frees the
    ring.  Enabling the ring turns event streaming on ({!tracing})
    even without a trace file. *)
val set_ring_capacity : int -> unit

(** [ring_drain ?max ()] — the ring's events, oldest first, capped at
    the newest [max] when given, paired with the number of events lost
    (overwritten while the ring was full, plus any cut by [max]).  The
    ring is left empty. *)
val ring_drain : ?max:int -> unit -> Json.t list * int

(** [with_sampled_out f] runs [f ()] with event streaming suppressed on
    the calling domain: {!tracing} answers [false] inside, so spans and
    events are built and emitted nowhere — the head-sampling "drop"
    verdict.  Span {e aggregation} ({!enabled}) and the metrics
    registry still record.  Domain-local like the ambient attributes,
    with the same caveat about multi-threaded domains. *)
val with_sampled_out : (unit -> 'a) -> 'a

(** [sampled_out ()] — is streaming currently suppressed on this
    domain? *)
val sampled_out : unit -> bool

(** [set_global_attrs attrs] installs process-wide attributes stamped
    on {e every} emitted line (after explicit and ambient ones on a
    name clash).  Cluster members put their node id here so merged
    fleet traces stay attributable per line. *)
val set_global_attrs : (string * Json.t) list -> unit

(** [global_attrs ()] — the currently installed global attributes. *)
val global_attrs : unit -> (string * Json.t) list

(** {1 Clock} *)

(** [now_ns ()] — the monotonic clock, in nanoseconds from an arbitrary
    origin.  Differences are meaningful; absolute values are not. *)
val now_ns : unit -> int64

(** {1 Spans and events} *)

(** [span ?attrs name f] runs [f ()] and, when aggregation or streaming
    is on, records its monotonic duration under [name] (and into the
    [name] latency histogram), emitting [span_begin]/[span_end] events
    when streaming; [span_end] carries [dur_ns] and the calling
    domain's [alloc_words] delta across the span.  [attrs] — e.g. a
    structural fingerprint of the artifact being built — are attached
    to both events.  Exceptions propagate; the time until the raise is
    still recorded.  Nesting is fine — each name accumulates
    independently. *)
val span : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

(** [event ?attrs name] emits one [point] JSONL event when streaming is
    on; a no-op otherwise.  Use for instants: per-round coverage probes,
    worker start-up. *)
val event : ?attrs:(string * Json.t) list -> string -> unit

(** [with_ambient_attrs attrs f] runs [f ()] with [attrs] pushed onto
    the calling {e domain}'s ambient attribute stack: every span and
    event the domain emits inside [f] carries them in addition to its
    own attributes (explicit attributes win on a name clash).  This is
    how the serving layer threads [req_id]/[op]/[conn] through to the
    artifact-builder spans a request triggers.  Domain-local, not
    thread-local — only use from a domain running a single thread, or
    the attributes may leak across sys-thread interleavings. *)
val with_ambient_attrs : (string * Json.t) list -> (unit -> 'a) -> 'a

(** [ambient_attrs ()] — the calling domain's current ambient stack,
    outermost scope last. *)
val ambient_attrs : unit -> (string * Json.t) list

(** {1 Metrics registry (unconditional)} *)

(** [add name k] adds [k] to counter [name] (created at 0).  Use for
    event counts: cache hits, evictions, spawned domains.  Always
    records, independent of the tracing switches. *)
val add : string -> int -> unit

(** [set_gauge name v] sets gauge [name] to its latest value [v]. *)
val set_gauge : string -> float -> unit

(** [observe ?bounds name v] adds [v] to histogram [name].  [bounds]
    (strictly increasing bucket upper edges, default: half-decade
    latency buckets 1µs..10s) is fixed at the histogram's first
    observation; later [bounds] arguments are ignored.  Values above the
    last edge land in an overflow bucket. *)
val observe : ?bounds:float array -> string -> float -> unit

(** {1 Reading back} *)

(** Accumulated statistics of one span name. *)
type span_stat = {
  span_name : string;
  calls : int;  (** completed invocations *)
  total_s : float;  (** summed monotonic seconds *)
  max_s : float;  (** longest single invocation *)
}

(** Immutable snapshot of one histogram. *)
type histogram = {
  hist_name : string;
  upper_bounds : float array;  (** bucket upper edges, increasing *)
  bucket_counts : int array;
      (** per-bucket counts; one longer than [upper_bounds] — the last
          entry is the overflow bucket *)
  count : int;
  sum : float;
  min_value : float;
  max_value : float;
}

(** [spans ()] — all span accumulators, sorted by descending total time
    with the name as tiebreak (fully deterministic across runs). *)
val spans : unit -> span_stat list

(** [counters ()] — all counters, sorted by name. *)
val counters : unit -> (string * int) list

(** [gauges ()] — all gauges, sorted by name. *)
val gauges : unit -> (string * float) list

(** [histograms ()] — snapshots of all histograms, sorted by name. *)
val histograms : unit -> histogram list

(** [histogram name] — snapshot of one histogram, if it exists. *)
val histogram : string -> histogram option

(** [quantile h q] estimates the [q]-quantile ([0 ≤ q ≤ 1]) of [h] by
    linear interpolation inside the bucket holding the target rank; the
    estimate is clamped to the observed [min]/[max].  NaN on an empty
    histogram. *)
val quantile : histogram -> float -> float

(** [reset ()] clears every span, counter, gauge and histogram (the
    switches and trace file are untouched). *)
val reset : unit -> unit

(** {1 Rendering} *)

(** [pp_summary ppf ()] prints a formatted report: span table (name,
    calls, total/max/p50/p95 ms), counter table, gauge table.  Ordering
    is fully deterministic (total-time descending, name tiebreak).
    Prints a placeholder line when nothing was recorded. *)
val pp_summary : Format.formatter -> unit -> unit

(** [summary_string ()] is {!pp_summary} rendered to a string. *)
val summary_string : unit -> string

(** [histogram_json h] — one histogram as JSON: name, count, sum,
    min/max, p50/p95 and the cumulative-style bucket list
    [{le, count}] (the overflow bucket has [le = "inf"]). *)
val histogram_json : histogram -> Json.t

(** [metrics_json ()] — the whole registry as one JSON object:
    [{spans, counters, gauges, histograms}].  This is the [metrics]
    section of the bench report and of [gossip_lab stats --json]. *)
val metrics_json : unit -> Json.t
