/* Monotonic clock for Gossip_util.Instrument span timing.
 *
 * OCaml's Unix library exposes only the wall clock (gettimeofday),
 * which NTP can step backwards or forwards mid-span; CLOCK_MONOTONIC
 * cannot.  One tiny stub keeps the library free of external timing
 * packages. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <stdint.h>
#include <time.h>

CAMLprim value gossip_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}

/* Unboxed fast path for native code: no caml_copy_int64 allocation, no
 * generic C-call prologue.  clock_gettime neither allocates nor raises,
 * so the OCaml side declares it [@@noalloc]. */
CAMLprim int64_t gossip_monotonic_ns_unboxed(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}
