type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* {2 Printing} *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Shortest %g rendering that parses back to the same float; forced to
   contain '.' or an exponent so the reader can tell floats from ints. *)
let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else begin
    let try_fmt fmt =
      let s = Printf.sprintf fmt f in
      if float_of_string s = f then Some s else None
    in
    let s =
      match try_fmt "%.12g" with
      | Some s -> s
      | None -> (
          match try_fmt "%.15g" with
          | Some s -> s
          | None -> Printf.sprintf "%.17g" f)
    in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let rec write ~indent ~level buf j =
  let pad n = Buffer.add_string buf (String.make (n * 2) ' ') in
  let sep_items items f =
    match indent with
    | false ->
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            f x)
          items
    | true ->
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '\n';
            pad (level + 1);
            f x)
          items;
        Buffer.add_char buf '\n';
        pad level
  in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      sep_items items (write ~indent ~level:(level + 1) buf);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      sep_items fields (fun (k, v) ->
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          if indent then Buffer.add_char buf ' ';
          write ~indent ~level:(level + 1) buf v);
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write ~indent:false ~level:0 buf j;
  Buffer.contents buf

let to_string_pretty j =
  let buf = Buffer.create 256 in
  write ~indent:true ~level:0 buf j;
  Buffer.contents buf

let pp ppf j = Format.pp_print_string ppf (to_string_pretty j)

(* {2 Parsing} *)

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let continue = ref true in
  while !continue do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c
    | _ -> continue := false
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c.pos (Printf.sprintf "expected %c, found %c" ch x)
  | None -> fail c.pos (Printf.sprintf "expected %c, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos (Printf.sprintf "invalid literal, expected %s" word)

let utf8_of_code buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 c =
  let digit ch =
    match ch with
    | '0' .. '9' -> Char.code ch - Char.code '0'
    | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
    | _ -> fail c.pos "invalid hex digit in \\u escape"
  in
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek c with
    | Some ch -> v := (!v * 16) + digit ch
    | None -> fail c.pos "truncated \\u escape");
    advance c
  done;
  !v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c.pos "truncated escape"
        | Some ch ->
            advance c;
            (match ch with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let u = hex4 c in
                if u >= 0xD800 && u <= 0xDBFF then begin
                  (* high surrogate: a low surrogate must follow *)
                  (match (peek c, c.pos + 1 < String.length c.src) with
                  | Some '\\', true when c.src.[c.pos + 1] = 'u' ->
                      advance c;
                      advance c;
                      let lo = hex4 c in
                      if lo >= 0xDC00 && lo <= 0xDFFF then
                        utf8_of_code buf
                          (0x10000
                          + ((u - 0xD800) lsl 10)
                          + (lo - 0xDC00))
                      else fail c.pos "unpaired surrogate"
                  | _ -> fail c.pos "unpaired surrogate")
                end
                else if u >= 0xDC00 && u <= 0xDFFF then
                  fail c.pos "unpaired surrogate"
                else utf8_of_code buf u
            | _ -> fail (c.pos - 1) "invalid escape character");
            go ())
    | Some ch when Char.code ch < 0x20 ->
        fail c.pos "unescaped control character in string"
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  if peek c = Some '-' then advance c;
  let digits () =
    let saw = ref false in
    let continue = ref true in
    while !continue do
      match peek c with
      | Some '0' .. '9' ->
          saw := true;
          advance c
      | _ -> continue := false
    done;
    if not !saw then fail c.pos "expected digit"
  in
  digits ();
  if peek c = Some '.' then begin
    is_float := true;
    advance c;
    digits ()
  end;
  (match peek c with
  | Some ('e' | 'E') ->
      is_float := true;
      advance c;
      (match peek c with Some ('+' | '-') -> advance c | _ -> ());
      digits ()
  | _ -> ());
  let s = String.sub c.src start (c.pos - start) in
  if !is_float then Float (float_of_string s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> Float (float_of_string s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [ parse_value c ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          items := parse_value c :: !items;
          skip_ws c
        done;
        expect c ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          fields := field () :: !fields;
          skip_ws c
        done;
        expect c '}';
        Obj (List.rev !fields)
      end
  | Some ch -> fail c.pos (Printf.sprintf "unexpected character %c" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then fail c.pos "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "at offset %d: %s" pos msg)

(* {2 Accessors} *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_list_opt = function List l -> Some l | _ -> None
