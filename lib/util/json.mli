(** Zero-dependency JSON values, printing and parsing.

    The telemetry layer ({!Instrument}, the JSONL trace export, the
    [--json] modes of [gossip_lab] and the benchmark report) needs a
    small, deterministic JSON representation with no external package.
    This module provides exactly that: a value type, escaped compact and
    pretty printers, and a strict recursive-descent parser used by the
    tests and the CI lint to validate everything the tools emit.

    Numbers are split into {!Int} and {!Float}.  The printer renders
    floats with the shortest [%g] precision that round-trips (always
    containing ['.'], ['e'] or ['E']), so [of_string (to_string j)]
    reconstructs [j] exactly; NaN and infinities — which JSON cannot
    represent — print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [to_string j] — compact rendering, no whitespace.  One line, fit for
    JSONL streams. *)
val to_string : t -> string

(** [to_string_pretty j] — 2-space-indented rendering for humans. *)
val to_string_pretty : t -> string

(** [pp ppf j] prints the pretty rendering. *)
val pp : Format.formatter -> t -> unit

(** [of_string s] parses one JSON value occupying the whole string
    (surrounding whitespace allowed).  Strict: rejects trailing garbage,
    unescaped control characters, unpaired surrogates and malformed
    numbers.  [\uXXXX] escapes (including surrogate pairs) decode to
    UTF-8.  Numbers with a fraction or exponent parse as {!Float},
    others as {!Int}. *)
val of_string : string -> (t, string) result

(** {1 Accessors} *)

(** [member key j] — the field [key] of an object, [None] on a missing
    key or a non-object. *)
val member : string -> t -> t option

(** [to_float_opt j] — the numeric value of an {!Int} or {!Float}. *)
val to_float_opt : t -> float option

val to_int_opt : t -> int option

val to_string_opt : t -> string option

val to_list_opt : t -> t list option
