(* One process-wide knob: the CLI's --domains flag (or a library user)
   sets it once and every parallel loop in the stack picks it up without
   threading a parameter through each layer. *)
let default_override = Atomic.make None

let set_default_domains d =
  (match d with
  | Some d when d < 1 -> invalid_arg "Parallel.set_default_domains: d < 1"
  | _ -> ());
  Atomic.set default_override d

let default_domains () = Atomic.get default_override

let recommended_domains () =
  match Atomic.get default_override with
  | Some d -> d
  | None ->
      let cpus =
        match Domain.recommended_domain_count () with
        | c when c > 0 -> c
        | _ -> 1
      in
      max 1 (min 8 (cpus - 1))

(* Per-worker busy time of the last parallel call, as gauges: a skewed
   block split shows up as one worker's busy-ns dwarfing the others'
   (utilization = mean busy / max busy, 1.0 = perfectly balanced).
   Gated on the same switches as span timing — the clocks are only read
   and the registry only touched when telemetry is on, so untraced
   per-round reduces at small n pay nothing. *)
let timed_workers () = Instrument.enabled () || Instrument.tracing ()

let publish_busy busy_ns workers =
  let total = Array.fold_left ( +. ) 0.0 busy_ns in
  let maxb = Array.fold_left Float.max 0.0 busy_ns in
  Array.iteri
    (fun w b ->
      Instrument.set_gauge (Printf.sprintf "parallel.worker_busy_ms.%d" w)
        (b /. 1e6))
    busy_ns;
  Instrument.set_gauge "parallel.utilization"
    (if maxb > 0.0 then total /. (float_of_int workers *. maxb) else 1.0)

(* Static chunking: worker [w] handles indices with [i mod workers = w].
   Interleaving balances load when costs vary smoothly across the index
   range (e.g. vertex blocks of growing size). *)
let init ?domains n f =
  let workers = match domains with Some d -> max 1 d | None -> recommended_domains () in
  if n <= 0 then [||]
  else if workers = 1 || n < 4 then Array.init n f
  else begin
    Instrument.add "parallel.domain-spawns" (workers - 1);
    let timed = timed_workers () in
    let busy_ns = if timed then Array.make workers 0.0 else [||] in
    let results = Array.make n None in
    let work w () =
      (* Emitted from inside the worker, so the event's [dom] field is
         stamped with the worker's own domain id. *)
      if Instrument.tracing () then
        Instrument.event "parallel.worker"
          ~attrs:
            [
              ("worker", Json.Int w);
              ("workers", Json.Int workers);
              ("items", Json.Int n);
            ];
      let t0 = if timed then Instrument.now_ns () else 0L in
      let i = ref w in
      while !i < n do
        results.(!i) <- Some (f !i);
        i := !i + workers
      done;
      if timed then
        busy_ns.(w) <- Int64.to_float (Int64.sub (Instrument.now_ns ()) t0)
    in
    let handles =
      List.init (workers - 1) (fun w -> Domain.spawn (work (w + 1)))
    in
    work 0 ();
    List.iter Domain.join handles;
    if timed then publish_busy busy_ns workers;
    Array.map
      (function Some x -> x | None -> assert false (* all indices covered *))
      results
  end

let map ?domains f arr = init ?domains (Array.length arr) (fun i -> f arr.(i))

(* Fused map-reduce: each worker folds its strided slice into a local
   accumulator, and the per-worker partials are combined in worker order.
   Nothing of size [n] is ever materialized.  Workers fold different
   interleavings of the index range, so [combine] must be associative and
   commutative for the result to be domain-count independent. *)
let reduce ?domains n f combine init =
  let workers = match domains with Some d -> max 1 d | None -> recommended_domains () in
  if n <= 0 then init
  else if workers = 1 || n < 4 then begin
    let acc = ref init in
    for i = 0 to n - 1 do
      acc := combine !acc (f i)
    done;
    !acc
  end
  else begin
    Instrument.add "parallel.domain-spawns" (workers - 1);
    let timed = timed_workers () in
    let busy_ns = if timed then Array.make workers 0.0 else [||] in
    let work w () =
      if Instrument.tracing () then
        Instrument.event "parallel.worker"
          ~attrs:
            [
              ("worker", Json.Int w);
              ("workers", Json.Int workers);
              ("items", Json.Int n);
            ];
      let t0 = if timed then Instrument.now_ns () else 0L in
      let acc = ref init in
      let i = ref w in
      while !i < n do
        acc := combine !acc (f !i);
        i := !i + workers
      done;
      if timed then
        busy_ns.(w) <- Int64.to_float (Int64.sub (Instrument.now_ns ()) t0);
      !acc
    in
    let handles =
      List.init (workers - 1) (fun w -> Domain.spawn (work (w + 1)))
    in
    let first = work 0 () in
    let res =
      List.fold_left (fun acc h -> combine acc (Domain.join h)) first handles
    in
    if timed then publish_busy busy_ns workers;
    res
  end

let max_float ?domains f arr =
  reduce ?domains (Array.length arr) (fun i -> f arr.(i)) Float.max neg_infinity
