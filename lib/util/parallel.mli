(** Multicore helpers (OCaml 5 domains).

    The heavy loops of this library are embarrassingly parallel: the norm
    of the delay matrix is a max over independent per-vertex blocks
    (norm property 8), table generation is a map over independent
    families, BFS sweeps are per-source.  This module provides a static
    chunking parallel map over arrays — deterministic output, pure worker
    functions required — sized to the machine.

    The functions degrade gracefully: with [domains = 1] (or on tiny
    inputs) they run sequentially with no domain spawn. *)

(** [set_default_domains d] installs a process-wide default worker count
    used by every call site that does not pass [?domains] explicitly —
    the single knob behind the CLI's [--domains] flag.  [None] restores
    the machine-sized default.
    @raise Invalid_argument if [d < 1]. *)
val set_default_domains : int option -> unit

(** [default_domains ()] is the current override, if any. *)
val default_domains : unit -> int option

(** [recommended_domains ()] is the installed default
    ({!set_default_domains}), or a conservative machine-sized count:
    [max 1 (min 8 (cpu_count - 1))] (the runtime's own domain counts as
    one). *)
val recommended_domains : unit -> int

(** [map ?domains f arr] is [Array.map f arr] computed on [domains]
    workers (default {!recommended_domains}).  [f] must be pure — it runs
    concurrently on OCaml domains. *)
val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [init ?domains n f] is [Array.init n f] in parallel. *)
val init : ?domains:int -> int -> (int -> 'a) -> 'a array

(** [max_float ?domains f arr] is [max over x of f x], [neg_infinity] on
    the empty array. *)
val max_float : ?domains:int -> ('a -> float) -> 'a array -> float
