(** Multicore helpers (OCaml 5 domains).

    The heavy loops of this library are embarrassingly parallel: the norm
    of the delay matrix is a max over independent per-vertex blocks
    (norm property 8), table generation is a map over independent
    families, BFS sweeps are per-source.  This module provides a static
    chunking parallel map over arrays — deterministic output, pure worker
    functions required — sized to the machine.

    The functions degrade gracefully: with [domains = 1] (or on tiny
    inputs) they run sequentially with no domain spawn.

    {b Utilization telemetry}: when span timing is on
    ({!Instrument.enabled} or {!Instrument.tracing}), every multi-worker
    call records each worker's busy time as the
    [parallel.worker_busy_ms.<w>] gauges plus a [parallel.utilization]
    gauge (mean busy / max busy over the call's workers; 1.0 means a
    perfectly balanced split).  Like span timing, the clocks are not
    read when both switches are off, so untraced hot loops pay
    nothing. *)

(** [set_default_domains d] installs a process-wide default worker count
    used by every call site that does not pass [?domains] explicitly —
    the single knob behind the CLI's [--domains] flag.  [None] restores
    the machine-sized default.
    @raise Invalid_argument if [d < 1]. *)
val set_default_domains : int option -> unit

(** [default_domains ()] is the current override, if any. *)
val default_domains : unit -> int option

(** [recommended_domains ()] is the installed default
    ({!set_default_domains}), or a conservative machine-sized count:
    [max 1 (min 8 (cpu_count - 1))] (the runtime's own domain counts as
    one). *)
val recommended_domains : unit -> int

(** [map ?domains f arr] is [Array.map f arr] computed on [domains]
    workers (default {!recommended_domains}).  [f] must be pure — it runs
    concurrently on OCaml domains. *)
val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [init ?domains n f] is [Array.init n f] in parallel. *)
val init : ?domains:int -> int -> (int -> 'a) -> 'a array

(** [reduce ?domains n f combine init] folds [combine] over
    [f 0 … f (n-1)] starting from [init], fused: each worker folds its
    strided slice into a local accumulator and the per-worker partials
    are combined at the join — no intermediate array of size [n] is ever
    allocated (unlike reducing over the result of {!map}).  Workers fold
    different interleavings of the index range, so [combine] must be
    associative {e and} commutative (and [init] its identity) for the
    result to be independent of the worker count — true for [max], [min],
    and exact sums; floating-point [+.] is only approximately so.
    Returns [init] when [n <= 0]. *)
val reduce : ?domains:int -> int -> (int -> 'a) -> ('a -> 'a -> 'a) -> 'a -> 'a

(** [max_float ?domains f arr] is [max over x of f x], [neg_infinity] on
    the empty array.  Implemented as a fused {!reduce}. *)
val max_float : ?domains:int -> ('a -> float) -> 'a array -> float
