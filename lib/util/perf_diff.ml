type delta = {
  d_name : string;
  base_s : float;
  cur_s : float;
  pct : float option;
  base_alloc_words : float option;
  cur_alloc_words : float option;
}

type comparison = {
  matched : delta list;
  only_base : string list;
  only_current : string list;
  base_total_s : float;
  cur_total_s : float;
}

let str_field j k = Option.bind (Json.member k j) Json.to_string_opt
let float_field j k = Option.bind (Json.member k j) Json.to_float_opt

let of_report j =
  match str_field j "schema" with
  | Some "gossip-bench/1" -> (
      match Option.bind (Json.member "parts" j) Json.to_list_opt with
      | None -> Error "report has no parts list"
      | Some parts ->
          let rec rows acc = function
            | [] -> Ok (List.rev acc)
            | p :: rest -> (
                match (str_field p "name", float_field p "seconds") with
                | Some name, Some seconds ->
                    let alloc =
                      Option.bind (Json.member "resource" p) (fun r ->
                          float_field r "allocated_words")
                    in
                    rows ((name, seconds, alloc) :: acc) rest
                | _ -> Error "part row without name or seconds")
          in
          rows [] parts)
  | Some other -> Error (Printf.sprintf "unexpected schema %S" other)
  | None -> Error "not a gossip-bench/1 report (no schema field)"

let first_by_name rows name =
  List.find_opt (fun (n, _, _) -> n = name) rows

let compare_reports ~base ~current =
  match (of_report base, of_report current) with
  | Error e, _ -> Error (Printf.sprintf "baseline: %s" e)
  | _, Error e -> Error (Printf.sprintf "current: %s" e)
  | Ok b, Ok c ->
      let matched =
        List.filter_map
          (fun (name, base_s, base_alloc) ->
            match first_by_name c name with
            | None -> None
            | Some (_, cur_s, cur_alloc) ->
                Some
                  {
                    d_name = name;
                    base_s;
                    cur_s;
                    pct =
                      (if base_s > 0.0 then
                         Some ((cur_s -. base_s) /. base_s *. 100.0)
                       else None);
                    base_alloc_words = base_alloc;
                    cur_alloc_words = cur_alloc;
                  })
          b
      in
      let names rows = List.map (fun (n, _, _) -> n) rows in
      let missing_from other rows =
        List.filter (fun n -> first_by_name other n = None) (names rows)
      in
      let total rows = List.fold_left (fun a (_, s, _) -> a +. s) 0.0 rows in
      Ok
        {
          matched;
          only_base = missing_from c b;
          only_current = missing_from b c;
          base_total_s = total b;
          cur_total_s = total c;
        }

let gates ~tolerance_pct ~min_seconds d =
  d.base_s >= min_seconds
  && match d.pct with Some p -> p > tolerance_pct | None -> false

let regressions ?(tolerance_pct = 25.0) ?(min_seconds = 0.01) c =
  List.filter (gates ~tolerance_pct ~min_seconds) c.matched

let describe d =
  Printf.sprintf "%s: %.4fs -> %.4fs (%+.1f%%)" d.d_name d.base_s d.cur_s
    (Option.value ~default:0.0 d.pct)

let check ?tolerance_pct ?min_seconds c =
  match regressions ?tolerance_pct ?min_seconds c with
  | [] -> Ok ()
  | rs -> Error (List.map describe rs)

let render ?(tolerance_pct = 25.0) ?(min_seconds = 0.01) c =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "%-44s %10s %10s %8s %12s\n" "part" "base s" "cur s" "delta%"
    "alloc delta";
  List.iter
    (fun d ->
      let pct =
        match d.pct with Some p -> Printf.sprintf "%+7.1f" p | None -> "      -"
      in
      let alloc =
        match (d.base_alloc_words, d.cur_alloc_words) with
        | Some b, Some cu -> Printf.sprintf "%+.2e w" (cu -. b)
        | _ -> "-"
      in
      pf "%-44s %10.4f %10.4f %8s %12s%s\n" d.d_name d.base_s d.cur_s pct alloc
        (if gates ~tolerance_pct ~min_seconds d then "  REGRESSED" else ""))
    c.matched;
  pf "%-44s %10.4f %10.4f\n" "TOTAL" c.base_total_s c.cur_total_s;
  List.iter (fun n -> pf "removed part: %s\n" n) c.only_base;
  List.iter (fun n -> pf "new part: %s\n" n) c.only_current;
  (match regressions ~tolerance_pct ~min_seconds c with
  | [] ->
      pf "no regressions beyond %.0f%% (parts under %.2fs are informational)\n"
        tolerance_pct min_seconds
  | rs -> pf "%d regression(s) beyond %.0f%%\n" (List.length rs) tolerance_pct);
  Buffer.contents buf

let opt_f = function Some v -> Json.Float v | None -> Json.Null

let to_json ?(tolerance_pct = 25.0) ?(min_seconds = 0.01) c =
  let row d =
    Json.Obj
      [
        ("name", Json.Str d.d_name);
        ("base_s", Json.Float d.base_s);
        ("cur_s", Json.Float d.cur_s);
        ("delta_pct", opt_f d.pct);
        ("base_alloc_words", opt_f d.base_alloc_words);
        ("cur_alloc_words", opt_f d.cur_alloc_words);
        ("regressed", Json.Bool (gates ~tolerance_pct ~min_seconds d));
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str "gossip-perf-diff/1");
      ("tolerance_pct", Json.Float tolerance_pct);
      ("min_seconds", Json.Float min_seconds);
      ("parts", Json.List (List.map row c.matched));
      ("only_base", Json.List (List.map (fun n -> Json.Str n) c.only_base));
      ( "only_current",
        Json.List (List.map (fun n -> Json.Str n) c.only_current) );
      ("base_total_s", Json.Float c.base_total_s);
      ("cur_total_s", Json.Float c.cur_total_s);
      ( "regressions",
        Json.List
          (List.map row (regressions ~tolerance_pct ~min_seconds c)) );
    ]
