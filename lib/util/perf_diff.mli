(** Comparison of two [gossip-bench/1] reports — the regression gate.

    The bench writes one JSON report per run ([--json]): a [parts] list
    of [{part, name, seconds}] rows, each now carrying a [resource]
    object (allocation/GC deltas and end-of-part heap/RSS).  This module
    pairs the parts of a {e baseline} report with those of a {e current}
    report {b by name} (part numbers may shift as the bench grows),
    computes per-part wall-time and allocation deltas, and decides
    whether the current run {e regressed}: any matched part whose time
    grew by more than [tolerance_pct] percent {e and} whose baseline
    time is at least [min_seconds] (sub-hundredth-second parts are pure
    noise and are reported but never gate).

    [tools/perf_diff] is a thin CLI over this module; CI runs it as
    [perf_diff --check --tolerance 25 BENCH_BASELINE.json report.json]
    and fails the build on a nonzero exit.  The committed
    [BENCH_BASELINE.json] is re-seeded deliberately whenever a PR moves
    a number for a defensible reason. *)

(** One part present in both reports. *)
type delta = {
  d_name : string;
  base_s : float;
  cur_s : float;
  pct : float option;  (** [(cur - base) / base * 100]; [None] when [base_s = 0] *)
  base_alloc_words : float option;  (** from the part's [resource.allocated_words] *)
  cur_alloc_words : float option;
}

(** The full pairing of two reports. *)
type comparison = {
  matched : delta list;  (** in baseline part order *)
  only_base : string list;  (** parts that disappeared *)
  only_current : string list;  (** parts that are new *)
  base_total_s : float;
  cur_total_s : float;
}

(** [of_report j] — the [(name, seconds, alloc_words option)] rows of a
    [gossip-bench/1] report, or [Error] describing what is malformed
    (wrong/missing schema, missing [parts], rows without name or
    seconds). *)
val of_report : Json.t -> ((string * float * float option) list, string) result

(** [compare_reports ~base ~current] pairs two parsed reports.
    Duplicate part names are resolved by first occurrence. *)
val compare_reports :
  base:Json.t -> current:Json.t -> (comparison, string) result

(** [regressions ?tolerance_pct ?min_seconds c] — the matched parts that
    gate: slower than [tolerance_pct] percent (default 25.0) with a
    baseline of at least [min_seconds] (default 0.01). *)
val regressions :
  ?tolerance_pct:float -> ?min_seconds:float -> comparison -> delta list

(** [check ?tolerance_pct ?min_seconds c] — [Ok ()] when nothing gates,
    else [Error lines] with one human-readable line per regression. *)
val check :
  ?tolerance_pct:float ->
  ?min_seconds:float ->
  comparison ->
  (unit, string list) result

(** [render ?tolerance_pct ?min_seconds c] — the delta table: one row
    per matched part (baseline s, current s, delta %, allocation delta
    when both sides carry it, and a [REGRESSED] marker on gating rows),
    plus totals and any added/removed parts.  This is the artifact CI
    uploads. *)
val render :
  ?tolerance_pct:float -> ?min_seconds:float -> comparison -> string

(** [to_json ?tolerance_pct ?min_seconds c] — the comparison as a
    [gossip-perf-diff/1] object: per-part rows, totals, added/removed
    parts and the gating regression list. *)
val to_json :
  ?tolerance_pct:float -> ?min_seconds:float -> comparison -> Json.t
