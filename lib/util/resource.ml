type snapshot = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  forced_major_collections : int;
  heap_words : int;
  heap_mb : float;
  rss_mb : float option;
}

let words_to_mb w = w *. float_of_int (Sys.word_size / 8) /. (1024.0 *. 1024.0)

(* [Gc.quick_stat]'s minor_words only advances at minor-collection
   boundaries, which undercounts a fresh delta by up to a full minor
   heap (~256k words).  [Gc.minor_words] reads the live young pointer,
   so span-sized deltas are exact. *)
let allocated_words () =
  let s = Gc.quick_stat () in
  Gc.minor_words () +. s.Gc.major_words -. s.Gc.promoted_words

(* Resident pages from /proc/self/statm, field 2.  The page size is not
   exposed by the stdlib; 4 KiB is correct on every platform that has
   statm at all, and platforms that don't simply report None. *)
let page_bytes = 4096.0

let rss_mb () =
  match open_in "/proc/self/statm" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match String.split_on_char ' ' (input_line ic) with
          | _ :: resident :: _ -> (
              match int_of_string_opt resident with
              | Some pages ->
                  Some (float_of_int pages *. page_bytes /. (1024.0 *. 1024.0))
              | None -> None)
          | _ | (exception End_of_file) -> None)

let sample () =
  let s = Gc.quick_stat () in
  {
    (* live young-pointer read, not the stale quick_stat counter *)
    minor_words = Gc.minor_words ();
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
    forced_major_collections = s.Gc.forced_major_collections;
    heap_words = s.Gc.heap_words;
    heap_mb = words_to_mb (float_of_int s.Gc.heap_words);
    rss_mb = rss_mb ();
  }

let opt_mb = function None -> Json.Null | Some v -> Json.Float v

let to_json s =
  Json.Obj
    [
      ("minor_words", Json.Float s.minor_words);
      ("promoted_words", Json.Float s.promoted_words);
      ("major_words", Json.Float s.major_words);
      ("minor_collections", Json.Int s.minor_collections);
      ("major_collections", Json.Int s.major_collections);
      ("compactions", Json.Int s.compactions);
      ("forced_major_collections", Json.Int s.forced_major_collections);
      ("heap_words", Json.Int s.heap_words);
      ("heap_mb", Json.Float s.heap_mb);
      ("rss_mb", opt_mb s.rss_mb);
    ]

let delta_json ~before ~after =
  let dw a b = Json.Float (Float.max 0.0 (a -. b)) in
  let di a b = Json.Int (max 0 (a - b)) in
  let allocated s = s.minor_words +. s.major_words -. s.promoted_words in
  Json.Obj
    [
      ("minor_words", dw after.minor_words before.minor_words);
      ("promoted_words", dw after.promoted_words before.promoted_words);
      ("major_words", dw after.major_words before.major_words);
      ("allocated_words", dw (allocated after) (allocated before));
      ("minor_collections", di after.minor_collections before.minor_collections);
      ("major_collections", di after.major_collections before.major_collections);
      ("heap_mb", Json.Float after.heap_mb);
      ("rss_mb", opt_mb after.rss_mb);
    ]

let publish s =
  Instrument.set_gauge "gc.minor_words" s.minor_words;
  Instrument.set_gauge "gc.promoted_words" s.promoted_words;
  Instrument.set_gauge "gc.major_words" s.major_words;
  Instrument.set_gauge "gc.minor_collections" (float_of_int s.minor_collections);
  Instrument.set_gauge "gc.major_collections" (float_of_int s.major_collections);
  Instrument.set_gauge "gc.compactions" (float_of_int s.compactions);
  Instrument.set_gauge "gc.heap_mb" s.heap_mb;
  match s.rss_mb with
  | Some v -> Instrument.set_gauge "proc.rss_mb" v
  | None -> ()

let sample_and_publish () =
  let s = sample () in
  publish s;
  Instrument.add "resource.samples" 1;
  s

(* {2 Background sampler} *)

(* One sampler per process.  The thread sleeps in short slices so
   [stop_sampler] never waits more than ~50 ms behind a long interval. *)
type sampler = { stop : bool Atomic.t; thread : Thread.t }

let sampler_lock = Mutex.create ()
let sampler : sampler option ref = ref None

let sampler_loop ~interval_s ~on_sample stop =
  while not (Atomic.get stop) do
    (try
       let s = sample_and_publish () in
       match on_sample with
       | Some f -> ( try f s with _ -> ())
       | None -> ()
     with _ -> ());
    let slept = ref 0.0 in
    while (not (Atomic.get stop)) && !slept < interval_s do
      let slice = Float.min 0.05 (interval_s -. !slept) in
      Thread.delay slice;
      slept := !slept +. slice
    done
  done

let start_sampler ?(interval_ms = 1000) ?on_sample () =
  let interval_s = float_of_int (max 10 interval_ms) /. 1000.0 in
  Mutex.lock sampler_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sampler_lock)
    (fun () ->
      match !sampler with
      | Some _ -> false
      | None ->
          let stop = Atomic.make false in
          let thread =
            Thread.create (fun () -> sampler_loop ~interval_s ~on_sample stop) ()
          in
          sampler := Some { stop; thread };
          true)

let sampler_running () =
  Mutex.lock sampler_lock;
  let r = !sampler <> None in
  Mutex.unlock sampler_lock;
  r

let stop_sampler () =
  Mutex.lock sampler_lock;
  let s = !sampler in
  sampler := None;
  Mutex.unlock sampler_lock;
  match s with
  | None -> ()
  | Some { stop; thread } ->
      Atomic.set stop true;
      Thread.join thread

let () = at_exit stop_sampler
