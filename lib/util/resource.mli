(** Process-resource observability: GC and memory telemetry.

    Everything else in the stack measures {e time}; this module measures
    {e space and collector work} — the other half of any performance
    claim.  One {!snapshot} captures the allocation counters and heap
    size from [Gc.quick_stat] plus the process resident set size (read
    from [/proc/self/statm] on Linux; [None] where that file does not
    exist, so every caller stays portable).

    Three ways to consume it:

    - {b One-shot}: {!sample} (and {!to_json} / {!delta_json}) for
      report sections — bench parts, [gossip_lab stats --json], the
      loadgen client-side accounting.
    - {b Registry}: {!publish} pushes a snapshot into the
      {!Instrument} gauge registry ([gc.minor_words], [gc.major_words],
      [gc.promoted_words], [gc.minor_collections],
      [gc.major_collections], [gc.compactions], [gc.heap_mb],
      [proc.rss_mb]), so resource numbers ride along in every
      [metrics_json] surface without new plumbing.
    - {b Sampler}: {!start_sampler} runs a background thread that
      samples and publishes every [interval_ms], optionally feeding each
      snapshot to a callback — this is how [gossip_served] keeps its
      [metrics]/[health] wire ops' memory numbers live.

    Allocation counters in OCaml 5 are per-domain: {!allocated_words}
    reads the calling domain's cumulative allocation, which is exactly
    the right scope for the per-span [alloc_words] deltas
    {!Instrument.span} emits.  Counters are monotone within a domain;
    heap and RSS gauges move both ways. *)

(** One point-in-time resource reading. *)
type snapshot = {
  minor_words : float;  (** cumulative words allocated in the minor heap *)
  promoted_words : float;  (** cumulative words promoted minor → major *)
  major_words : float;  (** cumulative words allocated in the major heap *)
  minor_collections : int;  (** cumulative minor GC cycles *)
  major_collections : int;  (** cumulative major GC cycles *)
  compactions : int;  (** cumulative heap compactions *)
  forced_major_collections : int;  (** major cycles forced by [Gc.full_major] &c. *)
  heap_words : int;  (** current major heap size, words *)
  heap_mb : float;  (** current major heap size, MiB *)
  rss_mb : float option;  (** resident set size, MiB; [None] off-Linux *)
}

(** [allocated_words ()] — cumulative words allocated by the calling
    domain (minor + direct major, promotions counted once).  Monotone
    per domain; cheap enough for per-span deltas on traced paths. *)
val allocated_words : unit -> float

(** [rss_mb ()] — resident set size in MiB from [/proc/self/statm]
    (pages × 4 KiB), or [None] when unreadable (non-Linux). *)
val rss_mb : unit -> float option

(** [sample ()] — snapshot the calling domain's GC counters, the shared
    heap size and the process RSS.  No allocation beyond the returned
    record; safe from any domain or thread. *)
val sample : unit -> snapshot

(** [to_json s] — the snapshot as a flat JSON object with the field
    names of {!snapshot} ([rss_mb] is [null] when unavailable).  This is
    the [resource] object embedded in bench parts, cache stats and
    checkpoint events; documented in [doc/telemetry.md]. *)
val to_json : snapshot -> Json.t

(** [delta_json ~before ~after] — the allocation/collection {e deltas}
    between two snapshots ([minor_words], [promoted_words],
    [major_words], [allocated_words], [minor_collections],
    [major_collections]) plus the {e end-state} gauges [heap_mb] /
    [rss_mb].  Negative deltas (another domain's counters folded in
    between reads) clamp to zero. *)
val delta_json : before:snapshot -> after:snapshot -> Json.t

(** [publish s] — write [s] into the {!Instrument} gauge registry under
    the [gc.*] / [proc.*] names listed above. *)
val publish : snapshot -> unit

(** [sample_and_publish ()] = [sample] + [publish], returning the
    snapshot; also bumps the [resource.samples] counter. *)
val sample_and_publish : unit -> snapshot

(** {1 Background sampler} *)

(** [start_sampler ?interval_ms ?on_sample ()] starts one background
    thread that calls {!sample_and_publish} every [interval_ms]
    (default 1000, clamped to ≥ 10) and passes each snapshot to
    [on_sample] (exceptions from the callback are swallowed).  Returns
    [true] if a sampler was started, [false] if one was already running
    — at most one sampler exists per process, so a second [start] is a
    no-op rather than a second thread. *)
val start_sampler :
  ?interval_ms:int -> ?on_sample:(snapshot -> unit) -> unit -> bool

(** [sampler_running ()] — is the background sampler currently alive? *)
val sampler_running : unit -> bool

(** [stop_sampler ()] signals the sampler thread and joins it; a no-op
    when none is running.  Idempotent. *)
val stop_sampler : unit -> unit
